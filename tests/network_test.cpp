// Unit tests for the simulated switched fabric.
#include "simnet/network.hpp"

#include <gtest/gtest.h>

#include "util/bytes.hpp"

namespace accelring::simnet {
namespace {

std::vector<std::byte> blob(size_t n, uint8_t fill = 0xAA) {
  return std::vector<std::byte>(n, std::byte{fill});
}

struct Rx {
  Nanos at = -1;
  SocketId sock = -1;
  size_t size = 0;
  int count = 0;
};

class NetworkTest : public ::testing::Test {
 protected:
  void attach_all(Network& net, EventQueue& eq, std::vector<Rx>& rx) {
    rx.resize(net.num_hosts());
    for (int h = 0; h < net.num_hosts(); ++h) {
      net.attach(h, [&eq, &rx, h](SocketId sock,
                                  const Network::Payload& data) {
        rx[h].at = eq.now();
        rx[h].sock = sock;
        rx[h].size = data->size();
        ++rx[h].count;
      });
    }
  }
};

TEST_F(NetworkTest, UnicastDeliversWithExpectedLatency) {
  EventQueue eq;
  FabricParams p = FabricParams::one_gig();
  Network net(eq, p, 2);
  std::vector<Rx> rx;
  attach_all(net, eq, rx);

  const size_t payload = 1000;
  net.send(0, 1, kDataSocket, blob(payload), 0);
  eq.run_all();

  ASSERT_EQ(rx[1].count, 1);
  const size_t wire = Wire::wire_bytes(payload);
  const Nanos ser = p.serialization_delay(wire);
  const Nanos expected = p.host_tx_latency + ser + p.prop_delay +
                         p.switch_latency + ser + p.prop_delay +
                         p.host_rx_latency;
  EXPECT_EQ(rx[1].at, expected);
  EXPECT_EQ(rx[1].sock, kDataSocket);
  EXPECT_EQ(rx[1].size, payload);
  EXPECT_EQ(rx[0].count, 0);  // sender does not hear its own unicast
}

TEST_F(NetworkTest, MulticastReachesAllButSender) {
  EventQueue eq;
  Network net(eq, FabricParams::one_gig(), 5);
  std::vector<Rx> rx;
  attach_all(net, eq, rx);
  net.send(2, kMulticast, kDataSocket, blob(100), 0);
  eq.run_all();
  for (int h = 0; h < 5; ++h) {
    EXPECT_EQ(rx[h].count, h == 2 ? 0 : 1) << "host " << h;
  }
  EXPECT_EQ(net.stats().datagrams_delivered, 4u);
}

TEST_F(NetworkTest, BackToBackSendsSerializeAtTheNic) {
  EventQueue eq;
  FabricParams p = FabricParams::one_gig();
  Network net(eq, p, 2);
  std::vector<Rx> rx;
  attach_all(net, eq, rx);
  Nanos first = -1;
  net.attach(1, [&](SocketId, const Network::Payload&) {
    if (first < 0) {
      first = eq.now();
    } else {
      // Second packet is one serialization time behind the first.
      EXPECT_EQ(eq.now() - first,
                p.serialization_delay(Wire::wire_bytes(1000)));
    }
  });
  net.send(0, 1, kDataSocket, blob(1000), 0);
  net.send(0, 1, kDataSocket, blob(1000), 0);
  eq.run_all();
  EXPECT_GE(first, 0);
}

TEST_F(NetworkTest, TenGigIsFasterThanOneGig) {
  auto one_way = [&](FabricParams p) {
    EventQueue eq;
    Network net(eq, p, 2);
    Nanos at = -1;
    net.attach(1,
               [&](SocketId, const Network::Payload&) { at = eq.now(); });
    net.send(0, 1, kDataSocket, blob(1350), 0);
    eq.run_all();
    return at;
  };
  EXPECT_LT(one_way(FabricParams::ten_gig()),
            one_way(FabricParams::one_gig()));
}

TEST_F(NetworkTest, PortBufferOverflowTailDrops) {
  EventQueue eq;
  FabricParams p = FabricParams::one_gig();
  p.port_buffer_bytes = 4 * Wire::wire_bytes(1400);  // room for ~4 packets
  Network net(eq, p, 3);
  std::vector<Rx> rx;
  attach_all(net, eq, rx);
  // Two senders blast host 2 simultaneously; its downlink can't drain fast
  // enough and the output queue overflows.
  for (int i = 0; i < 20; ++i) {
    net.send(0, 2, kDataSocket, blob(1400), 0);
    net.send(1, 2, kDataSocket, blob(1400), 0);
  }
  eq.run_all();
  EXPECT_GT(net.stats().drops_buffer, 0u);
  EXPECT_LT(rx[2].count, 40);
  EXPECT_GT(rx[2].count, 0);
}

TEST_F(NetworkTest, RandomLossDropsApproximatelyAtRate) {
  EventQueue eq;
  FabricParams p = FabricParams::ten_gig();
  p.loss_rate = 0.2;
  Network net(eq, p, 2, /*seed=*/42);
  std::vector<Rx> rx;
  attach_all(net, eq, rx);
  for (int i = 0; i < 1000; ++i) net.send(0, 1, kDataSocket, blob(64), 0);
  eq.run_all();
  EXPECT_NEAR(rx[1].count, 800, 60);
  EXPECT_EQ(net.stats().drops_random + rx[1].count, 1000u);
}

TEST_F(NetworkTest, PartitionBlocksAndHealRestores) {
  EventQueue eq;
  Network net(eq, FabricParams::one_gig(), 4);
  std::vector<Rx> rx;
  attach_all(net, eq, rx);
  net.set_partition(0, 0);
  net.set_partition(1, 0);
  net.set_partition(2, 1);
  net.set_partition(3, 1);
  net.send(0, kMulticast, kDataSocket, blob(64), 0);
  eq.run_all();
  EXPECT_EQ(rx[1].count, 1);
  EXPECT_EQ(rx[2].count, 0);
  EXPECT_EQ(rx[3].count, 0);
  net.heal();
  net.send(0, kMulticast, kDataSocket, blob(64), 0);
  eq.run_all();
  EXPECT_EQ(rx[2].count, 1);
  EXPECT_EQ(rx[3].count, 1);
}

TEST_F(NetworkTest, DownHostNeitherSendsNorReceives) {
  EventQueue eq;
  Network net(eq, FabricParams::one_gig(), 3);
  std::vector<Rx> rx;
  attach_all(net, eq, rx);
  net.set_host_down(1, true);
  net.send(0, kMulticast, kDataSocket, blob(64), 0);
  net.send(1, 2, kDataSocket, blob(64), 0);
  eq.run_all();
  EXPECT_EQ(rx[1].count, 0);
  EXPECT_EQ(rx[2].count, 1);  // only host 0's multicast
  net.set_host_down(1, false);
  net.send(1, 2, kDataSocket, blob(64), 0);
  eq.run_all();
  EXPECT_EQ(rx[2].count, 2);
}

TEST(Wire, SingleFrameForSmallDatagrams) {
  EXPECT_EQ(Wire::frames(100), 1u);
  EXPECT_EQ(Wire::frames(Wire::kMaxFirstFragment), 1u);
  EXPECT_EQ(Wire::wire_bytes(1350),
            1350 + Wire::kUdpHeader + Wire::kIpHeader + Wire::kEthOverhead);
}

TEST(Wire, LargeDatagramsFragment) {
  // 8850B payload + 8B UDP header = 8858B of IP payload over 1480B pieces.
  EXPECT_EQ(Wire::frames(8850), 6u);
  EXPECT_GT(Wire::frames(8850), Wire::frames(1350));
  EXPECT_EQ(Wire::wire_bytes(8850),
            8850 + Wire::kUdpHeader +
                6 * (Wire::kIpHeader + Wire::kEthOverhead));
}

TEST(Wire, FragmentLossLosesWholeDatagram) {
  EventQueue eq;
  FabricParams p = FabricParams::ten_gig();
  p.loss_rate = 0.05;
  Network net(eq, p, 2, /*seed=*/7);
  int small = 0;
  int large = 0;
  net.attach(1, [&](SocketId, const Network::Payload& data) {
    (data->size() > 2000 ? large : small) += 1;
  });
  for (int i = 0; i < 2000; ++i) {
    net.send(0, 1, kDataSocket, blob(1350), 0);
    net.send(0, 1, kDataSocket, blob(8850), 0);
  }
  eq.run_all();
  // 6-fragment datagrams survive with (1-p)^6, noticeably worse than 1-p.
  EXPECT_LT(large, small);
  EXPECT_NEAR(small / 2000.0, 0.95, 0.03);
  EXPECT_NEAR(large / 2000.0, 0.735, 0.05);
}

}  // namespace
}  // namespace accelring::simnet
