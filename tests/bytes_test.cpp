// Unit tests for the serialization primitives (util/bytes).
#include "util/bytes.hpp"

#include <gtest/gtest.h>

namespace accelring::util {
namespace {

TEST(Writer, FixedWidthLittleEndian) {
  Writer w;
  w.u8(0xAB);
  w.u16(0x1234);
  w.u32(0xDEADBEEF);
  w.u64(0x0102030405060708ULL);
  const auto v = w.view();
  ASSERT_EQ(v.size(), 1u + 2 + 4 + 8);
  EXPECT_EQ(static_cast<uint8_t>(v[0]), 0xAB);
  EXPECT_EQ(static_cast<uint8_t>(v[1]), 0x34);  // LE low byte first
  EXPECT_EQ(static_cast<uint8_t>(v[2]), 0x12);
  EXPECT_EQ(static_cast<uint8_t>(v[3]), 0xEF);
  EXPECT_EQ(static_cast<uint8_t>(v[6]), 0xDE);
  EXPECT_EQ(static_cast<uint8_t>(v[7]), 0x08);
  EXPECT_EQ(static_cast<uint8_t>(v[14]), 0x01);
}

TEST(RoundTrip, AllScalarTypes) {
  Writer w;
  w.u8(7);
  w.u16(65535);
  w.u32(4000000000u);
  w.u64(1ULL << 60);
  w.i64(-42);
  w.boolean(true);
  w.boolean(false);
  Reader r(w.view());
  EXPECT_EQ(r.u8(), 7);
  EXPECT_EQ(r.u16(), 65535);
  EXPECT_EQ(r.u32(), 4000000000u);
  EXPECT_EQ(r.u64(), 1ULL << 60);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_TRUE(r.boolean());
  EXPECT_FALSE(r.boolean());
  EXPECT_TRUE(r.done());
}

TEST(RoundTrip, LengthPrefixedBytesAndStrings) {
  Writer w;
  const std::vector<std::byte> blob = {std::byte{1}, std::byte{2},
                                       std::byte{3}};
  w.bytes(blob);
  w.str("hello group");
  w.bytes({});  // empty byte string
  Reader r(w.view());
  auto got = r.bytes();
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[1], std::byte{2});
  EXPECT_EQ(r.str(), "hello group");
  EXPECT_TRUE(r.bytes().empty());
  EXPECT_TRUE(r.done());
}

TEST(Reader, UnderrunSetsErrorAndReturnsZero) {
  Writer w;
  w.u16(0x0102);
  Reader r(w.view());
  EXPECT_EQ(r.u16(), 0x0102);
  EXPECT_EQ(r.u32(), 0u);  // past end
  EXPECT_FALSE(r.ok());
  EXPECT_FALSE(r.done());
}

TEST(Reader, TruncatedLengthPrefixFailsSoftly) {
  Writer w;
  w.u32(100);  // claims 100 bytes follow; none do
  Reader r(w.view());
  EXPECT_TRUE(r.bytes().empty());
  EXPECT_FALSE(r.ok());
}

TEST(Reader, DoneOnlyWhenFullyConsumed) {
  Writer w;
  w.u8(1);
  w.u8(2);
  Reader r(w.view());
  r.u8();
  EXPECT_FALSE(r.done());
  r.u8();
  EXPECT_TRUE(r.done());
}

TEST(Writer, PatchU32BackfillsLength) {
  Writer w;
  w.u8(9);
  const size_t pos = w.size();
  w.u32(0);  // placeholder
  w.u8(1);
  w.u8(2);
  w.patch_u32(pos, 0xCAFEBABE);
  Reader r(w.view());
  r.u8();
  EXPECT_EQ(r.u32(), 0xCAFEBABE);
}

TEST(Writer, ReserveDoesNotAffectContents) {
  Writer w(1024);
  w.u64(5);
  EXPECT_EQ(w.size(), 8u);
}

}  // namespace
}  // namespace accelring::util
