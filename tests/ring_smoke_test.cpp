// End-to-end smoke tests: full clusters on the simulated fabric, checking
// delivery completeness and total order for both protocol variants.
#include <gtest/gtest.h>

#include <map>

#include "harness/cluster.hpp"
#include "harness/workload.hpp"

namespace accelring::harness {
namespace {

using protocol::Service;
using protocol::Variant;

struct DeliveryLog {
  // Per node: (sender, seq) in delivery order.
  std::vector<std::vector<std::pair<uint16_t, protocol::SeqNum>>> per_node;

  explicit DeliveryLog(int nodes) : per_node(nodes) {}

  void attach(SimCluster& cluster) {
    cluster.set_on_deliver(
        [this](int node, const protocol::Delivery& d, Nanos) {
          per_node[node].emplace_back(d.sender, d.seq);
        });
  }
};

using SmokeParam = std::tuple<Variant, Service, ImplProfile>;

class RingSmokeTest : public ::testing::TestWithParam<SmokeParam> {};

std::string smoke_name(const ::testing::TestParamInfo<SmokeParam>& info) {
  const Variant variant = std::get<0>(info.param);
  const Service service = std::get<1>(info.param);
  const ImplProfile profile = std::get<2>(info.param);
  std::string name =
      variant == Variant::kOriginal ? "original" : "accelerated";
  name += service == Service::kAgreed ? "_agreed" : "_safe";
  name += "_";
  name += profile_name(profile);
  return name;
}

TEST_P(RingSmokeTest, AllMessagesDeliveredInIdenticalOrder) {
  const auto [variant, service, profile] = GetParam();
  protocol::ProtocolConfig cfg;
  cfg.variant = variant;
  const int kNodes = 8;
  SimCluster cluster(kNodes, simnet::FabricParams::one_gig(), cfg, profile,
                     /*seed=*/3);
  DeliveryLog log(kNodes);
  log.attach(cluster);
  cluster.start_static();

  // Every node sends 25 messages.
  const int kPerNode = 25;
  for (int round = 0; round < kPerNode; ++round) {
    for (int node = 0; node < kNodes; ++node) {
      cluster.eq().schedule(
          util::usec(100) + round * util::usec(200), [&cluster, node, service,
                                                      round] {
            PayloadStamp stamp{cluster.eq().now(),
                               static_cast<uint32_t>(node),
                               static_cast<uint32_t>(round)};
            cluster.submit(node, service, make_payload(64, stamp));
          });
    }
  }
  cluster.run_until(util::sec(2));

  // Completeness: every node delivered every message exactly once.
  for (int node = 0; node < kNodes; ++node) {
    EXPECT_EQ(log.per_node[node].size(),
              static_cast<size_t>(kNodes * kPerNode))
        << "node " << node;
  }
  // Total order: all delivery sequences are identical.
  for (int node = 1; node < kNodes; ++node) {
    EXPECT_EQ(log.per_node[node], log.per_node[0]) << "node " << node;
  }
  // Gap-free sequence numbers in delivery order.
  for (size_t i = 0; i < log.per_node[0].size(); ++i) {
    EXPECT_EQ(log.per_node[0][i].second, static_cast<protocol::SeqNum>(i + 1));
  }
}

INSTANTIATE_TEST_SUITE_P(
    VariantsServicesProfiles, RingSmokeTest,
    ::testing::Combine(::testing::Values(Variant::kOriginal,
                                         Variant::kAccelerated),
                       ::testing::Values(Service::kAgreed, Service::kSafe),
                       ::testing::Values(ImplProfile::kLibrary,
                                         ImplProfile::kDaemon,
                                         ImplProfile::kSpread)),
    smoke_name);

TEST(RingSmoke, TwoNodeRingWorks) {
  protocol::ProtocolConfig cfg;
  SimCluster cluster(2, simnet::FabricParams::one_gig(), cfg,
                     ImplProfile::kLibrary);
  DeliveryLog log(2);
  log.attach(cluster);
  cluster.start_static();
  for (int i = 0; i < 10; ++i) {
    cluster.eq().schedule(util::usec(50 + i * 100), [&cluster, i] {
      PayloadStamp stamp{cluster.eq().now(), 0, static_cast<uint32_t>(i)};
      cluster.submit(i % 2, Service::kAgreed, make_payload(100, stamp));
    });
  }
  cluster.run_until(util::sec(1));
  EXPECT_EQ(log.per_node[0].size(), 10u);
  EXPECT_EQ(log.per_node[0], log.per_node[1]);
}

TEST(RingSmoke, AcceleratedSurvivesRandomLoss) {
  protocol::ProtocolConfig cfg;
  cfg.variant = Variant::kAccelerated;
  SimCluster cluster(8, simnet::FabricParams::one_gig(), cfg,
                     ImplProfile::kLibrary, /*seed=*/11);
  cluster.net().set_loss_rate(0.02);
  DeliveryLog log(8);
  log.attach(cluster);
  cluster.start_static();
  for (int i = 0; i < 200; ++i) {
    cluster.eq().schedule(util::usec(100 + i * 50), [&cluster, i] {
      PayloadStamp stamp{cluster.eq().now(), static_cast<uint32_t>(i % 8),
                         static_cast<uint32_t>(i)};
      cluster.submit(i % 8, Service::kAgreed, make_payload(200, stamp));
    });
  }
  cluster.run_until(util::sec(3));
  for (int node = 0; node < 8; ++node) {
    EXPECT_EQ(log.per_node[node].size(), 200u) << "node " << node;
    EXPECT_EQ(log.per_node[node], log.per_node[0]);
  }
  // Loss actually happened and was repaired via retransmissions.
  uint64_t retrans = 0;
  for (int i = 0; i < 8; ++i) {
    retrans += cluster.engine(i).stats().retransmitted;
  }
  EXPECT_GT(retrans, 0u);
}

TEST(RingSmoke, SelfDeliveryIncluded) {
  protocol::ProtocolConfig cfg;
  SimCluster cluster(4, simnet::FabricParams::one_gig(), cfg,
                     ImplProfile::kLibrary);
  DeliveryLog log(4);
  log.attach(cluster);
  cluster.start_static();
  cluster.eq().schedule(util::usec(100), [&cluster] {
    PayloadStamp stamp{cluster.eq().now(), 2, 0};
    cluster.submit(2, Service::kAgreed, make_payload(64, stamp));
  });
  cluster.run_until(util::sec(1));
  // The sender itself delivers its own message.
  ASSERT_EQ(log.per_node[2].size(), 1u);
  EXPECT_EQ(log.per_node[2][0].first, 2);
}

}  // namespace
}  // namespace accelring::harness
