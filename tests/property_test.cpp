// Property-based tests: protocol invariants checked across a parameter
// sweep of variants, loss rates, window configurations, payload sizes, and
// PRNG seeds. Each run drives a full simulated cluster with mixed
// Agreed/Safe traffic and verifies:
//
//   1. Total order      — all nodes deliver identical sequences.
//   2. Gap-free         — delivered sequence numbers are 1..k with no holes.
//   3. Completeness     — every submitted message is delivered everywhere
//                         (liveness under loss).
//   4. Per-sender FIFO  — payload indexes from one sender never reorder.
//   5. Safe stability   — at the instant a Safe message is delivered
//                         anywhere, every other node has received it.
//   6. Self-delivery    — senders deliver their own messages.
#include <gtest/gtest.h>

#include <map>

#include "harness/cluster.hpp"
#include "harness/workload.hpp"

namespace accelring::harness {
namespace {

using protocol::SeqNum;
using protocol::Service;
using protocol::Variant;

struct PropertyParam {
  Variant variant;
  double loss_rate;
  uint32_t personal_window;
  uint32_t accel_window;
  size_t payload_size;
  uint64_t seed;
};

std::string param_name(const ::testing::TestParamInfo<PropertyParam>& info) {
  const PropertyParam& p = info.param;
  std::string name =
      p.variant == Variant::kOriginal ? "orig" : "accel";
  name += "_loss" + std::to_string(static_cast<int>(p.loss_rate * 1000));
  name += "_pw" + std::to_string(p.personal_window);
  name += "_aw" + std::to_string(p.accel_window);
  name += "_pl" + std::to_string(p.payload_size);
  name += "_s" + std::to_string(p.seed);
  return name;
}

class ProtocolProperties : public ::testing::TestWithParam<PropertyParam> {};

TEST_P(ProtocolProperties, InvariantsHold) {
  const PropertyParam param = GetParam();
  const int kNodes = 6;
  const int kMessages = 240;

  protocol::ProtocolConfig cfg;
  cfg.variant = param.variant;
  cfg.personal_window = param.personal_window;
  cfg.accelerated_window = param.accel_window;

  SimCluster cluster(kNodes, simnet::FabricParams::one_gig(), cfg,
                     ImplProfile::kLibrary, param.seed);
  cluster.net().set_loss_rate(param.loss_rate);

  struct Event {
    uint16_t sender;
    SeqNum seq;
    uint32_t index;
    Service service;
  };
  std::vector<std::vector<Event>> log(kNodes);
  bool safe_stability_ok = true;

  cluster.set_on_deliver([&](int node, const protocol::Delivery& d,
                             protocol::Nanos) {
    PayloadStamp stamp;
    ASSERT_TRUE(parse_payload(d.payload, stamp));
    log[node].push_back(Event{d.sender, d.seq, stamp.index, d.service});
    if (requires_safe(d.service)) {
      // Stability: at this instant every node must have the message.
      for (int j = 0; j < kNodes; ++j) {
        safe_stability_ok =
            safe_stability_ok && cluster.engine(j).has_message(d.seq);
      }
    }
  });
  cluster.start_static();

  // Mixed Agreed/Safe traffic, random-ish senders (deterministic per seed).
  util::Rng rng(param.seed * 7919 + 13);
  for (int i = 0; i < kMessages; ++i) {
    const int sender = static_cast<int>(rng.below(kNodes));
    const Service service = rng.chance(0.3) ? Service::kSafe
                                            : Service::kAgreed;
    cluster.eq().schedule(
        util::usec(100) + i * util::usec(60), [&cluster, sender, service, i,
                                               &param] {
          PayloadStamp stamp{cluster.eq().now(),
                             static_cast<uint32_t>(sender),
                             static_cast<uint32_t>(i)};
          cluster.submit(sender, service,
                         make_payload(param.payload_size, stamp));
        });
  }
  cluster.run_until(util::sec(5));

  // 3. Completeness.
  for (int node = 0; node < kNodes; ++node) {
    ASSERT_EQ(log[node].size(), static_cast<size_t>(kMessages))
        << "node " << node << " incomplete";
  }
  // 1. Total order (identical streams).
  for (int node = 1; node < kNodes; ++node) {
    for (int k = 0; k < kMessages; ++k) {
      ASSERT_EQ(log[node][k].seq, log[0][k].seq)
          << "node " << node << " diverges at " << k;
      ASSERT_EQ(log[node][k].sender, log[0][k].sender);
    }
  }
  // 2. Gap-free.
  for (int k = 0; k < kMessages; ++k) {
    EXPECT_EQ(log[0][k].seq, static_cast<SeqNum>(k + 1));
  }
  // 4. Per-sender FIFO: indexes from each sender strictly increase.
  std::map<uint16_t, uint32_t> last_index;
  for (const Event& e : log[0]) {
    const auto it = last_index.find(e.sender);
    if (it != last_index.end()) {
      EXPECT_GT(e.index, it->second)
          << "sender " << e.sender << " reordered";
    }
    last_index[e.sender] = e.index;
  }
  // 5. Safe stability.
  EXPECT_TRUE(safe_stability_ok);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ProtocolProperties,
    ::testing::Values(
        // Clean fabric, both variants, default windows.
        PropertyParam{Variant::kOriginal, 0.0, 20, 0, 200, 1},
        PropertyParam{Variant::kAccelerated, 0.0, 20, 15, 200, 1},
        // Loss from light to heavy.
        PropertyParam{Variant::kAccelerated, 0.005, 20, 15, 200, 2},
        PropertyParam{Variant::kAccelerated, 0.02, 20, 15, 200, 3},
        PropertyParam{Variant::kAccelerated, 0.05, 20, 15, 200, 4},
        PropertyParam{Variant::kOriginal, 0.02, 20, 0, 200, 5},
        // Window extremes.
        PropertyParam{Variant::kAccelerated, 0.01, 1, 1, 200, 6},
        PropertyParam{Variant::kAccelerated, 0.01, 50, 50, 200, 7},
        PropertyParam{Variant::kAccelerated, 0.0, 4, 40, 200, 8},
        // Large payloads (fragmented datagrams) with loss.
        PropertyParam{Variant::kAccelerated, 0.01, 10, 8, 8850, 9},
        // Different seeds, mixed settings.
        PropertyParam{Variant::kAccelerated, 0.02, 20, 15, 1350, 10},
        PropertyParam{Variant::kAccelerated, 0.02, 20, 15, 1350, 11},
        PropertyParam{Variant::kAccelerated, 0.02, 20, 15, 1350, 12},
        PropertyParam{Variant::kOriginal, 0.01, 20, 0, 1350, 13},
        PropertyParam{Variant::kAccelerated, 0.03, 8, 30, 512, 14},
        PropertyParam{Variant::kAccelerated, 0.0, 20, 15, 16, 15}),
    param_name);

}  // namespace
}  // namespace accelring::harness
