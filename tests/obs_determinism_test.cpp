// The observability layer's core contract: attaching metrics must not
// perturb the execution. Recording is plain memory writes against pure
// clock getters, so a run with registries attached and queried must be
// event-identical — same trace streams, same deliveries, same event count,
// same wire bytes — to the same seed without them. This A/B is what lets
// run_point / run_multiring_point / the campaign runner enable metrics
// unconditionally without invalidating seed-reproducibility.
#include <gtest/gtest.h>

#include "harness/sweep.hpp"
#include "multiring/measure.hpp"
#include "obs/export.hpp"

namespace accelring::harness {
namespace {

using TraceTuple = std::tuple<Nanos, int, int64_t, int64_t>;

std::vector<TraceTuple> serialize(const util::Tracer& tracer) {
  std::vector<TraceTuple> out;
  for (const util::TraceRecord& r : tracer.snapshot()) {
    out.emplace_back(r.at, static_cast<int>(r.event), r.a, r.b);
  }
  return out;
}

struct RunFingerprint {
  std::vector<std::tuple<int, uint16_t, protocol::SeqNum, Nanos>> deliveries;
  std::vector<std::vector<TraceTuple>> traces;  // per node
  std::vector<uint64_t> trace_totals;           // per node, pre-wrap count
  uint64_t events = 0;
  uint64_t wire_bytes = 0;

  bool operator==(const RunFingerprint&) const = default;
};

RunFingerprint run_single(uint64_t seed, bool metrics, double loss) {
  protocol::ProtocolConfig cfg;
  SimCluster cluster(5, simnet::FabricParams::one_gig(), cfg,
                     ImplProfile::kDaemon, seed);
  if (metrics) cluster.enable_metrics();
  cluster.net().set_loss_rate(loss);
  RunFingerprint fp;
  cluster.set_on_deliver(
      [&fp](int node, const protocol::Delivery& d, Nanos at) {
        fp.deliveries.emplace_back(node, d.sender, d.seq, at);
      });
  cluster.start_static();
  RateInjector::Options opt;
  opt.aggregate_mbps = 250;
  opt.payload_size = 700;
  opt.stop = util::msec(60);
  RateInjector injector(cluster, opt);
  injector.arm();
  cluster.run_until(util::msec(150));
  if (metrics) {
    // Query while the run's registry is live: exporting must also be inert
    // (it only reads), and the A/B proves the queries changed nothing.
    obs::MetricsRegistry merged = cluster.merged_metrics();
    EXPECT_FALSE(obs::registry_to_json(merged).empty());
    EXPECT_GT(
        merged.histogram("protocol", "token_rotation_ns").count(), 0u);
    EXPECT_GT(merged.histogram("protocol", "origin_agreed_ns").count(), 0u);
  }
  for (int i = 0; i < cluster.size(); ++i) {
    fp.traces.push_back(serialize(cluster.tracer(i)));
    fp.trace_totals.push_back(cluster.tracer(i).total_recorded());
  }
  fp.events = cluster.eq().events_executed();
  fp.wire_bytes = cluster.net().stats().wire_bytes;
  return fp;
}

RunFingerprint run_multi(uint64_t seed, bool metrics) {
  multiring::MultiRingConfig mcfg;
  mcfg.rings = 4;
  mcfg.nodes_per_ring = 4;
  mcfg.fabric = simnet::FabricParams::ten_gig();
  mcfg.seed = seed;
  multiring::RingSet rings(mcfg);
  if (metrics) rings.enable_metrics();
  RunFingerprint fp;
  rings.set_on_merged([&fp](int node, int ring, const protocol::Delivery& d,
                            Nanos at) {
    fp.deliveries.emplace_back(node * 16 + ring, d.sender, d.seq, at);
  });
  rings.start_static();
  for (int k = 0; k < 200; ++k) {
    rings.eq().schedule(util::usec(200) + util::usec(40) * k, [&rings, k] {
      const int node = k % rings.nodes_per_ring();
      std::vector<std::byte> payload(64, std::byte{0x5a});
      rings.submit_keyed(node, static_cast<uint64_t>(k) * 1315423911u,
                         protocol::Service::kAgreed, std::move(payload));
    });
  }
  rings.run_until(util::msec(60));
  if (metrics) {
    obs::MetricsRegistry merged = rings.merged_metrics();
    EXPECT_GT(merged.counter("merger", "merged").value(), 0u);
    EXPECT_GT(
        merged.histogram("protocol", "token_rotation_ns").count(), 0u);
  }
  for (int r = 0; r < rings.num_rings(); ++r) {
    for (int n = 0; n < rings.nodes_per_ring(); ++n) {
      fp.traces.push_back(serialize(rings.ring(r).tracer(n)));
      fp.trace_totals.push_back(rings.ring(r).tracer(n).total_recorded());
    }
    fp.wire_bytes += rings.ring(r).net().stats().wire_bytes;
  }
  fp.events = rings.eq().events_executed();
  return fp;
}

TEST(ObsDeterminism, MetricsDoNotPerturbSingleRing) {
  for (uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    const RunFingerprint off = run_single(seed, /*metrics=*/false, 0.0);
    const RunFingerprint on = run_single(seed, /*metrics=*/true, 0.0);
    EXPECT_EQ(off, on) << "seed " << seed;
    EXPECT_FALSE(off.deliveries.empty()) << "seed " << seed;
  }
}

TEST(ObsDeterminism, MetricsDoNotPerturbSingleRingUnderLoss) {
  // Loss exercises the retransmission instrumentation (rtr counters, token
  // retransmits) — the recording paths a clean run never reaches.
  for (uint64_t seed : {11u, 12u, 13u, 14u, 15u}) {
    const RunFingerprint off = run_single(seed, /*metrics=*/false, 0.02);
    const RunFingerprint on = run_single(seed, /*metrics=*/true, 0.02);
    EXPECT_EQ(off, on) << "seed " << seed;
  }
}

TEST(ObsDeterminism, MetricsDoNotPerturbMultiRing) {
  for (uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    const RunFingerprint off = run_multi(seed, /*metrics=*/false);
    const RunFingerprint on = run_multi(seed, /*metrics=*/true);
    EXPECT_EQ(off, on) << "seed " << seed;
    EXPECT_FALSE(off.deliveries.empty()) << "seed " << seed;
  }
}

TEST(ObsDeterminism, MeasuredPointIsSeedStable) {
  // run_point enables metrics internally; two invocations at one seed must
  // produce identical measured numbers (the bench-level restatement).
  PointConfig pc;
  pc.nodes = 5;
  pc.offered_mbps = 200;
  pc.warmup = util::msec(30);
  pc.measure = util::msec(60);
  pc.seed = 9;
  const PointResult a = run_point(pc);
  const PointResult b = run_point(pc);
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(a.p50_latency, b.p50_latency);
  EXPECT_EQ(a.p999_latency, b.p999_latency);
  EXPECT_DOUBLE_EQ(a.achieved_mbps, b.achieved_mbps);
  ASSERT_TRUE(a.metrics && b.metrics);
  EXPECT_EQ(obs::registry_to_json(*a.metrics),
            obs::registry_to_json(*b.metrics));
  const obs::Histogram* dist =
      a.metrics->find_histogram("harness", "delivery_latency_ns");
  ASSERT_NE(dist, nullptr);
  EXPECT_GT(dist->count(), 0u);
}

}  // namespace
}  // namespace accelring::harness
