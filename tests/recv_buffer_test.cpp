// Unit tests for the sequence-ordered receive buffer.
#include "protocol/recv_buffer.hpp"

#include <gtest/gtest.h>

namespace accelring::protocol {
namespace {

DataMsg msg(SeqNum seq, Service service = Service::kAgreed) {
  DataMsg m;
  m.seq = seq;
  m.pid = 1;
  m.service = service;
  return m;
}

TEST(RecvBuffer, AruAdvancesOverContiguousPrefix) {
  RecvBuffer b;
  EXPECT_EQ(b.local_aru(), 0);
  EXPECT_TRUE(b.insert(msg(1)));
  EXPECT_EQ(b.local_aru(), 1);
  EXPECT_TRUE(b.insert(msg(3)));
  EXPECT_EQ(b.local_aru(), 1);  // gap at 2
  EXPECT_TRUE(b.insert(msg(2)));
  EXPECT_EQ(b.local_aru(), 3);  // gap filled, jumps over 3
  EXPECT_EQ(b.high_seq(), 3);
}

TEST(RecvBuffer, DuplicatesRejected) {
  RecvBuffer b;
  EXPECT_TRUE(b.insert(msg(1)));
  EXPECT_FALSE(b.insert(msg(1)));
  EXPECT_TRUE(b.insert(msg(5)));
  EXPECT_FALSE(b.insert(msg(5)));
}

TEST(RecvBuffer, HasAnswersBelowAndAboveAru) {
  RecvBuffer b;
  b.insert(msg(1));
  b.insert(msg(2));
  b.insert(msg(4));
  EXPECT_TRUE(b.has(1));
  EXPECT_TRUE(b.has(2));
  EXPECT_FALSE(b.has(3));
  EXPECT_TRUE(b.has(4));
  EXPECT_FALSE(b.has(5));
}

TEST(RecvBuffer, AgreedDeliversInSeqOrder) {
  RecvBuffer b;
  b.insert(msg(2));
  EXPECT_EQ(b.next_deliverable(0), nullptr);  // 1 missing
  b.insert(msg(1));
  const DataMsg* m = b.next_deliverable(0);
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->seq, 1);
  b.mark_delivered();
  m = b.next_deliverable(0);
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->seq, 2);
  b.mark_delivered();
  EXPECT_EQ(b.next_deliverable(0), nullptr);
  EXPECT_EQ(b.delivered_up_to(), 2);
}

TEST(RecvBuffer, SafeBlocksUntilSafeLine) {
  RecvBuffer b;
  b.insert(msg(1, Service::kSafe));
  b.insert(msg(2));
  // Safe message 1 blocks everything until the safe line reaches it.
  EXPECT_EQ(b.next_deliverable(0), nullptr);
  const DataMsg* m = b.next_deliverable(1);
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->seq, 1);
  b.mark_delivered();
  // The agreed message behind it is now free.
  m = b.next_deliverable(1);
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->seq, 2);
}

TEST(RecvBuffer, AgreedAfterBlockedSafeIsHeldBack) {
  RecvBuffer b;
  b.insert(msg(1));
  b.insert(msg(2, Service::kSafe));
  b.insert(msg(3));  // agreed, but must not bypass the safe message
  const DataMsg* m = b.next_deliverable(0);
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->seq, 1);
  b.mark_delivered();
  EXPECT_EQ(b.next_deliverable(0), nullptr);
  EXPECT_EQ(b.next_deliverable(1), nullptr);
  EXPECT_NE(b.next_deliverable(2), nullptr);
}

TEST(RecvBuffer, DiscardReleasesOnlyDelivered) {
  RecvBuffer b;
  for (SeqNum s = 1; s <= 5; ++s) b.insert(msg(s));
  while (b.next_deliverable(0) != nullptr && b.delivered_up_to() < 3) {
    b.mark_delivered();
  }
  EXPECT_EQ(b.delivered_up_to(), 3);
  b.discard_up_to(5);  // clamped to delivered (3)
  EXPECT_EQ(b.size(), 2u);
  EXPECT_FALSE(b.find(2));
  EXPECT_TRUE(b.find(4));
}

TEST(RecvBuffer, ReinsertBelowDiscardLineIgnored) {
  RecvBuffer b;
  b.insert(msg(1));
  (void)b.next_deliverable(0);
  b.mark_delivered();
  b.discard_up_to(1);
  EXPECT_FALSE(b.insert(msg(1)));  // stable: never needed again
}

TEST(RecvBuffer, MissingUpToListsHoles) {
  RecvBuffer b;
  b.insert(msg(1));
  b.insert(msg(4));
  b.insert(msg(6));
  const auto missing = b.missing_up_to(7, {});
  EXPECT_EQ(missing, (std::vector<SeqNum>{2, 3, 5, 7}));
}

TEST(RecvBuffer, MissingExcludesAlreadyRequested) {
  RecvBuffer b;
  b.insert(msg(1));
  const auto missing = b.missing_up_to(4, {2, 4});
  EXPECT_EQ(missing, (std::vector<SeqNum>{3}));
}

TEST(RecvBuffer, MissingBoundBelowAruIsEmpty) {
  RecvBuffer b;
  b.insert(msg(1));
  b.insert(msg(2));
  EXPECT_TRUE(b.missing_up_to(2, {}).empty());
  EXPECT_TRUE(b.missing_up_to(0, {}).empty());
}

TEST(RecvBuffer, UndeliveredCount) {
  RecvBuffer b;
  b.insert(msg(1));
  b.insert(msg(2));
  b.insert(msg(4));
  EXPECT_EQ(b.undelivered(), 3u);
  (void)b.next_deliverable(0);
  b.mark_delivered();
  EXPECT_EQ(b.undelivered(), 2u);
}

TEST(RecvBuffer, FindReturnsStoredMessage) {
  RecvBuffer b;
  DataMsg m = msg(7, Service::kSafe);
  m.round = 42;
  b.insert(m);
  const DataMsg* found = b.find(7);
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->round, 42u);
  EXPECT_EQ(b.find(8), nullptr);
}

TEST(RecvBuffer, LargeOutOfOrderStress) {
  RecvBuffer b;
  // Insert 1..500 in a scrambled but deterministic order.
  for (SeqNum s = 500; s >= 1; s -= 2) b.insert(msg(s));
  for (SeqNum s = 1; s <= 500; s += 2) b.insert(msg(s));
  EXPECT_EQ(b.local_aru(), 500);
  int delivered = 0;
  while (b.next_deliverable(0) != nullptr) {
    b.mark_delivered();
    ++delivered;
  }
  EXPECT_EQ(delivered, 500);
}

}  // namespace
}  // namespace accelring::protocol
