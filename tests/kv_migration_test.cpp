// KV-layer shard migration: Frontend/KvService::apply_map moves routing,
// in-flight ops, and lease authority with the shard (docs/MULTIRING.md §KV).
//
// The handoff contract under test:
//  * routing — after apply_map every node's shard_of answers with the new
//    owner, and the map version bumps everywhere at once;
//  * leases — the fast path on a handoff destination is suppressed until
//    its local machine applies past the handoff point, so a leaseholder
//    cannot serve moved keys from pre-handoff state;
//  * in-flight ops — pending ops whose key moved are resubmitted to the new
//    shard's stream and resolve there (dedup floors absorb the old frame);
//  * oracle — KvOracle::note_map_change opens a routing epoch; outcomes for
//    a key hopping shards inside one epoch are violations, across the
//    handoff they are expected.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "check/kv_oracle.hpp"
#include "kv/service.hpp"
#include "multiring/ring_set.hpp"

namespace accelring::kv {
namespace {

using check::KvOracle;

multiring::MultiRingConfig ring_cfg(uint64_t seed) {
  multiring::MultiRingConfig cfg;
  cfg.rings = 2;
  cfg.nodes_per_ring = 4;
  cfg.fabric = simnet::FabricParams::one_gig();
  cfg.proto.timeouts.token_loss = util::msec(30);
  cfg.proto.timeouts.join = util::msec(5);
  cfg.proto.timeouts.consensus = util::msec(60);
  cfg.seed = seed;
  return cfg;
}

KvOp put_op(std::string key, std::string value) {
  KvOp op;
  op.type = OpType::kPut;
  op.key = std::move(key);
  op.value = std::move(value);
  return op;
}

KvOp get_op(std::string key) {
  KvOp op;
  op.type = OpType::kGet;
  op.key = std::move(key);
  return op;
}

/// Does `plan` move this KV key's routing hash? (Frontend::shard_of hashes
/// names exactly like ShardMap::ring_of.)
bool plan_moves(const multiring::MigrationPlan& plan, const std::string& key) {
  return plan.move_of(multiring::mix64(multiring::fnv1a(key))) != nullptr;
}

/// One op issued with a retry watchdog (frames shed or lost around faults
/// are resubmitted; the session dedup floor absorbs duplicates).
void issue_with_retry(KvService& service, int node, uint64_t uuid,
                      uint64_t seq, const KvOp& op,
                      Frontend::CompleteFn done) {
  ASSERT_TRUE(service.frontend(node).issue(uuid, seq, op, 0, std::move(done)));
  struct Watchdog {
    static void arm(KvService& service, int node, uint64_t uuid) {
      service.eq().schedule_after(util::msec(60), [&service, node, uuid] {
        if (service.frontend(node).in_flight(uuid)) {
          service.frontend(node).retry(uuid);
          arm(service, node, uuid);
        }
      });
    }
  };
  Watchdog::arm(service, node, uuid);
}

TEST(KvMigration, QuiescedHandoffMovesRoutingLeasesAndSessions) {
  multiring::RingSet rings(ring_cfg(77));
  ServiceConfig cfg;
  cfg.shards = 2;
  KvService service(rings, cfg);
  KvOracle oracle;
  oracle.attach(service);
  rings.start_static();

  // The plan is cut against the frontends' initial map: a test-side
  // ShardMap(2) with no plan history is byte-identical to every node's.
  const multiring::ShardMap reference(2);
  const multiring::MigrationPlan plan = reference.plan_move_fraction(0, 1, 0.5);
  ASSERT_FALSE(plan.empty());

  // Phase 1: write keys that do NOT move (the data-migration contract:
  // moved ranges must be empty of data at a quiesced handoff).
  std::vector<std::string> stay, moved;
  for (int i = 0; stay.size() < 6 || moved.size() < 3; ++i) {
    ASSERT_LT(i, 200);
    std::string key = "mig-key-" + std::to_string(i);
    (plan_moves(plan, key) ? moved : stay).push_back(std::move(key));
  }
  uint64_t uuid = 500;
  std::vector<Frontend::Outcome> outcomes;
  for (size_t i = 0; i < stay.size(); ++i) {
    const std::string& key = stay[i];
    const int node = static_cast<int>(i) % rings.nodes_per_ring();
    const uint64_t id = uuid++;
    rings.eq().schedule(util::msec(40) + util::msec(2) * i,
                        [&, key, node, id] {
                          issue_with_retry(service, node, id, 1,
                                           put_op(key, "before"),
                                           [&outcomes](const auto& o) {
                                             outcomes.push_back(o);
                                           });
                        });
  }
  rings.run_until(util::msec(400));
  ASSERT_EQ(outcomes.size(), stay.size()) << "phase 1 did not quiesce";
  for (int n = 0; n < rings.nodes_per_ring(); ++n) {
    ASSERT_EQ(service.frontend(n).pending(), 0u) << "node " << n;
  }

  // A lease read against the (future) destination shard proves the fast
  // path is live before the handoff — otherwise the suppression assertion
  // below would be vacuous.
  int holder = -1;
  for (int n = 0; n < rings.nodes_per_ring(); ++n) {
    if (service.lease(n, 1).can_serve(static_cast<ProcessId>(n),
                                      rings.eq().now(), cfg.lease)) {
      holder = n;
    }
  }
  ASSERT_GE(holder, 0) << "no node holds shard 1's lease after 400 ms";
  std::string dst_key;  // a key shard 1 owns before AND after the handoff
  for (int i = 0; dst_key.empty(); ++i) {
    ASSERT_LT(i, 200);
    const std::string key = "dst-key-" + std::to_string(i);
    if (service.frontend(0).shard_of(key) == 1 && !plan_moves(plan, key)) {
      dst_key = key;
    }
  }
  Frontend::Outcome pre_read;
  ASSERT_TRUE(service.frontend(holder).issue(
      uuid++, 1, get_op(dst_key), 0,
      [&pre_read](const auto& o) { pre_read = o; }));
  EXPECT_TRUE(pre_read.lease_served)
      << "lease fast path not live pre-handoff; holder " << holder;

  // The handoff: every live node's frontend installs the plan atomically
  // (simulated instant), the oracle opens a new routing epoch.
  const uint64_t moved_before = service.machine(holder, 1).version();
  EXPECT_EQ(service.apply_map(plan), 0u) << "quiesced: nothing to remap";
  oracle.note_map_change(plan.to_version);
  for (int n = 0; n < rings.nodes_per_ring(); ++n) {
    EXPECT_EQ(service.frontend(n).map_version(), 1u) << "node " << n;
    for (const std::string& key : moved) {
      EXPECT_EQ(service.frontend(n).shard_of(key), 1) << key;
    }
    for (const std::string& key : stay) {
      EXPECT_EQ(service.frontend(n).shard_of(key),
                service.frontend(0).shard_of(key))
          << key;
    }
  }

  // Lease suppression: the same holder, the same shard, the same instant —
  // but the destination took ownership of ranges its machine has not seen
  // an apply for, so the fast path must refuse until one lands.
  Frontend::Outcome post_read;
  bool post_done = false;
  ASSERT_TRUE(service.frontend(holder).issue(
      uuid++, 1, get_op(dst_key), 0, [&post_read, &post_done](const auto& o) {
        post_read = o;
        post_done = true;
      }));
  if (post_done) {
    EXPECT_FALSE(post_read.lease_served)
        << "dst lease served moved-range state before any post-handoff apply";
  }
  EXPECT_EQ(service.machine(holder, 1).version(), moved_before);

  // Phase 2: write + read moved keys on their new shard, everywhere.
  std::vector<Frontend::Outcome> phase2;
  for (size_t i = 0; i < moved.size(); ++i) {
    const std::string& key = moved[i];
    const int node = static_cast<int>(i) % rings.nodes_per_ring();
    const uint64_t id = uuid++;
    rings.eq().schedule_after(util::msec(5) + util::msec(3) * i,
                              [&, key, node, id] {
                                issue_with_retry(service, node, id, 1,
                                                 put_op(key, "after"),
                                                 [&phase2](const auto& o) {
                                                   phase2.push_back(o);
                                                 });
                              });
  }
  rings.run_until(rings.eq().now() + util::msec(300));
  ASSERT_EQ(phase2.size(), moved.size());
  for (const Frontend::Outcome& o : phase2) {
    EXPECT_EQ(o.shard, 1) << o.key;
    EXPECT_EQ(o.result.status, Status::kOk) << o.key;
  }

  oracle.finalize();
  EXPECT_TRUE(oracle.ok()) << oracle.report();
  EXPECT_GT(oracle.observed(), 0u);
}

TEST(KvMigration, InFlightOpsAreRemappedToTheNewShard) {
  multiring::RingSet rings(ring_cfg(78));
  ServiceConfig cfg;
  cfg.shards = 2;
  KvService service(rings, cfg);
  KvOracle oracle;
  oracle.attach(service);
  rings.start_static();
  rings.run_until(util::msec(60));  // rings formed, leases granted

  const multiring::ShardMap reference(2);
  const multiring::MigrationPlan plan = reference.plan_move_fraction(0, 1, 0.5);
  std::string moved_key;
  for (int i = 0; moved_key.empty(); ++i) {
    ASSERT_LT(i, 200);
    const std::string key = "inflight-" + std::to_string(i);
    if (plan_moves(plan, key)) moved_key = key;
  }
  ASSERT_EQ(service.frontend(0).shard_of(moved_key), 0);

  // Issue a PUT for the moving key, then install the handoff before the
  // frame can possibly apply: the pending op must follow the key.
  Frontend::Outcome outcome;
  bool done = false;
  ASSERT_TRUE(service.frontend(0).issue(900, 1, put_op(moved_key, "v"), 0,
                                        [&](const auto& o) {
                                          outcome = o;
                                          done = true;
                                        }));
  ASSERT_FALSE(done);
  EXPECT_EQ(service.apply_map(plan), 1u) << "one pending op should remap";
  oracle.note_map_change(plan.to_version);
  EXPECT_EQ(service.frontend(0).stats().remapped, 1u);

  struct Watchdog {
    static void arm(KvService& service) {
      service.eq().schedule_after(util::msec(60), [&service] {
        if (service.frontend(0).in_flight(900)) {
          service.frontend(0).retry(900);
          arm(service);
        }
      });
    }
  };
  Watchdog::arm(service);
  rings.run_until(rings.eq().now() + util::msec(400));

  ASSERT_TRUE(done) << "remapped op never resolved";
  EXPECT_EQ(outcome.shard, 1) << "op resolved on the old shard";
  EXPECT_EQ(outcome.result.status, Status::kOk);
  EXPECT_GE(outcome.retries, 1u);  // the remap resubmission counts

  oracle.finalize();
  EXPECT_TRUE(oracle.ok()) << oracle.report();
}

TEST(KvMigration, StaleAndEmptyPlansAreIgnored) {
  multiring::RingSet rings(ring_cfg(79));
  ServiceConfig cfg;
  cfg.shards = 2;
  KvService service(rings, cfg);
  rings.start_static();
  rings.run_until(util::msec(30));

  const multiring::ShardMap reference(2);
  const multiring::MigrationPlan plan = reference.plan_move_fraction(0, 1, 0.3);
  ASSERT_FALSE(plan.empty());
  EXPECT_EQ(service.apply_map(multiring::MigrationPlan{}), 0u);
  EXPECT_EQ(service.frontend(0).map_version(), 0u);
  service.apply_map(plan);
  EXPECT_EQ(service.frontend(0).map_version(), 1u);
  // Replaying the same plan is a no-op: from_version no longer matches.
  EXPECT_EQ(service.apply_map(plan), 0u);
  for (int n = 0; n < rings.nodes_per_ring(); ++n) {
    EXPECT_EQ(service.frontend(n).map_version(), 1u) << "node " << n;
  }
}

}  // namespace
}  // namespace accelring::kv
