// Unit tests for the single-threaded virtual CPU model.
#include "simnet/process.hpp"

#include <gtest/gtest.h>

namespace accelring::simnet {
namespace {

Network::Payload payload(size_t n) {
  return std::make_shared<const std::vector<std::byte>>(n, std::byte{1});
}

/// Scripted sink that records handling order and can charge cost or switch
/// socket preference.
class RecordingSink : public PacketSink {
 public:
  void on_packet(SocketId sock, std::span<const std::byte> data) override {
    handled.emplace_back(sock, data.size());
    if (charge_per_packet > 0 && process != nullptr) {
      process->charge(charge_per_packet);
    }
  }
  [[nodiscard]] SocketId preferred_socket() const override {
    return preferred;
  }
  void on_timer(int kind) override { timers.push_back(kind); }

  std::vector<std::pair<SocketId, size_t>> handled;
  std::vector<int> timers;
  SocketId preferred = kDataSocket;
  Nanos charge_per_packet = 0;
  Process* process = nullptr;
};

TEST(Process, DrainsPacketsAndChargesRecvCost) {
  EventQueue eq;
  ProcessCosts costs;
  costs.recv_syscall = 1000;
  costs.recv_per_byte = 1.0;
  Process proc(eq, costs, 1 << 20);
  RecordingSink sink;
  proc.set_sink(&sink);

  proc.enqueue(kDataSocket, payload(100));
  proc.enqueue(kDataSocket, payload(200));
  eq.run_all();
  ASSERT_EQ(sink.handled.size(), 2u);
  // recv cost: (1000 + 100) + (1000 + 200)
  EXPECT_EQ(proc.busy_time(), 2300);
}

TEST(Process, DataPreferredDrainsDataBeforeToken) {
  EventQueue eq;
  Process proc(eq, ProcessCosts{}, 1 << 20);
  RecordingSink sink;
  sink.preferred = kDataSocket;
  proc.set_sink(&sink);
  proc.enqueue(kTokenSocket, payload(10));
  proc.enqueue(kDataSocket, payload(20));
  proc.enqueue(kDataSocket, payload(30));
  eq.run_all();
  ASSERT_EQ(sink.handled.size(), 3u);
  EXPECT_EQ(sink.handled[0].first, kDataSocket);
  EXPECT_EQ(sink.handled[1].first, kDataSocket);
  EXPECT_EQ(sink.handled[2].first, kTokenSocket);
}

TEST(Process, TokenPreferredDrainsTokenFirst) {
  EventQueue eq;
  Process proc(eq, ProcessCosts{}, 1 << 20);
  RecordingSink sink;
  sink.preferred = kTokenSocket;
  proc.set_sink(&sink);
  proc.enqueue(kDataSocket, payload(20));
  proc.enqueue(kTokenSocket, payload(10));
  eq.run_all();
  ASSERT_EQ(sink.handled.size(), 2u);
  EXPECT_EQ(sink.handled[0].first, kTokenSocket);
}

TEST(Process, PreferenceConsultedBetweenPackets) {
  EventQueue eq;
  Process proc(eq, ProcessCosts{}, 1 << 20);
  RecordingSink sink;
  sink.preferred = kDataSocket;
  proc.set_sink(&sink);
  proc.enqueue(kDataSocket, payload(1));
  proc.enqueue(kTokenSocket, payload(2));
  proc.enqueue(kDataSocket, payload(3));
  // After the first data packet, pretend the engine raised token priority.
  eq.schedule(0, [&] {});
  eq.run_all();
  EXPECT_EQ(sink.handled[0].first, kDataSocket);
  // All drained eventually regardless of preference.
  EXPECT_EQ(sink.handled.size(), 3u);
}

TEST(Process, SocketBufferOverflowDrops) {
  EventQueue eq;
  Process proc(eq, ProcessCosts{}, /*socket_buffer_bytes=*/250);
  RecordingSink sink;
  // Make the sink very slow so packets pile up.
  sink.charge_per_packet = 1'000'000;
  sink.process = &proc;
  proc.set_sink(&sink);
  for (int i = 0; i < 10; ++i) proc.enqueue(kDataSocket, payload(100));
  eq.run_all();
  EXPECT_GT(proc.socket_drops(), 0u);
  EXPECT_LT(sink.handled.size(), 10u);
}

TEST(Process, ChargeExtendsBusyAndDefersNextPacket) {
  EventQueue eq;
  ProcessCosts costs;
  costs.recv_syscall = 0;
  costs.recv_per_byte = 0;
  Process proc(eq, costs, 1 << 20);
  RecordingSink sink;
  sink.charge_per_packet = 5'000;
  sink.process = &proc;
  proc.set_sink(&sink);
  std::vector<Nanos> times;
  proc.enqueue(kDataSocket, payload(1));
  proc.enqueue(kDataSocket, payload(1));
  // Record handler start times via a side channel: run step by step.
  eq.run_all();
  EXPECT_EQ(proc.busy_time(), 10'000);
}

TEST(Process, TimerFiresWhenIdle) {
  EventQueue eq;
  Process proc(eq, ProcessCosts{}, 1 << 20);
  RecordingSink sink;
  proc.set_sink(&sink);
  proc.set_timer(3, 1000);
  eq.run_all();
  ASSERT_EQ(sink.timers.size(), 1u);
  EXPECT_EQ(sink.timers[0], 3);
  EXPECT_GE(eq.now(), 1000);
}

TEST(Process, TimerDefersWhileBusy) {
  EventQueue eq;
  ProcessCosts costs;
  costs.recv_syscall = 10'000;  // long handling
  Process proc(eq, costs, 1 << 20);
  RecordingSink sink;
  proc.set_sink(&sink);
  proc.enqueue(kDataSocket, payload(1));
  proc.set_timer(1, 1);  // would fire mid-handling
  eq.run_all();
  ASSERT_EQ(sink.timers.size(), 1u);
  // The timer ran, but only after the packet finished.
  EXPECT_GE(eq.now(), 10'000);
}

TEST(Process, CancelTimerStopsFire) {
  EventQueue eq;
  Process proc(eq, ProcessCosts{}, 1 << 20);
  RecordingSink sink;
  proc.set_sink(&sink);
  proc.set_timer(2, 1000);
  proc.cancel_timer(2);
  eq.run_all();
  EXPECT_TRUE(sink.timers.empty());
}

TEST(Process, RearmingTimerReplacesDeadline) {
  EventQueue eq;
  Process proc(eq, ProcessCosts{}, 1 << 20);
  RecordingSink sink;
  proc.set_sink(&sink);
  proc.set_timer(2, 1000);
  proc.set_timer(2, 50'000);
  eq.run_all();
  ASSERT_EQ(sink.timers.size(), 1u);
  EXPECT_GE(eq.now(), 50'000);
}

TEST(Process, RunSoonExecutesOnCpuWithCost) {
  EventQueue eq;
  Process proc(eq, ProcessCosts{}, 1 << 20);
  RecordingSink sink;
  proc.set_sink(&sink);
  bool ran = false;
  proc.run_soon([&] { ran = true; }, 700);
  eq.run_all();
  EXPECT_TRUE(ran);
  EXPECT_EQ(proc.busy_time(), 700);
}

TEST(Process, NowAdvancesWithChargeInsideHandler) {
  EventQueue eq;
  Process proc(eq, ProcessCosts{}, 1 << 20);
  RecordingSink sink;
  proc.set_sink(&sink);
  Nanos before = -1;
  Nanos after = -1;
  proc.run_soon([&] {
    before = proc.now();
    proc.charge(123);
    after = proc.now();
  });
  eq.run_all();
  EXPECT_EQ(after - before, 123);
}

}  // namespace
}  // namespace accelring::simnet
