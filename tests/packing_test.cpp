// Tests for message packing (Spread's small-message packing, paper
// §IV-A-3): several application messages share one protocol packet and one
// sequence number, are unpacked at receivers, and keep ordering semantics.
#include <gtest/gtest.h>

#include "harness/cluster.hpp"
#include "harness/workload.hpp"
#include "membership/membership.hpp"
#include "protocol/engine.hpp"
#include "util/bytes.hpp"

namespace accelring::protocol {
namespace {

using harness::ImplProfile;
using harness::SimCluster;

std::vector<std::byte> payload(const std::string& s) {
  return util::to_vector(util::as_bytes(s));
}

std::string text(std::span<const std::byte> bytes) {
  return {reinterpret_cast<const char*>(bytes.data()), bytes.size()};
}

TEST(Packing, CodecRoundTripsPackedFlag) {
  DataMsg msg;
  msg.packed = true;
  msg.payload = payload("irrelevant");
  const auto decoded = decode_data(encode(msg));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->packed);
}

TEST(Packing, SmallMessagesShareOnePacketAndArriveIndividually) {
  ProtocolConfig cfg;
  cfg.enable_packing = true;
  cfg.packing_budget = 1350;
  SimCluster cluster(3, simnet::FabricParams::one_gig(), cfg,
                     ImplProfile::kLibrary);
  std::vector<std::string> received;
  cluster.set_on_deliver([&](int node, const Delivery& d, Nanos) {
    if (node == 1) received.push_back(text(d.payload));
  });
  cluster.start_static();
  // 10 tiny messages submitted together: they fit in one packed packet.
  cluster.eq().schedule(util::usec(100), [&] {
    for (int i = 0; i < 10; ++i) {
      cluster.submit(0, Service::kAgreed, payload("m" + std::to_string(i)));
    }
  });
  cluster.run_until(util::msec(100));

  ASSERT_EQ(received.size(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(received[i], "m" + std::to_string(i));
  }
  // All ten consumed a single sequence number / protocol packet.
  EXPECT_EQ(cluster.engine(0).stats().initiated, 1u);
  EXPECT_EQ(cluster.engine(1).stats().delivered_agreed, 10u);
}

TEST(Packing, DifferentServicesNeverPackTogether) {
  ProtocolConfig cfg;
  cfg.enable_packing = true;
  SimCluster cluster(2, simnet::FabricParams::one_gig(), cfg,
                     ImplProfile::kLibrary);
  std::vector<std::pair<Service, std::string>> received;
  cluster.set_on_deliver([&](int node, const Delivery& d, Nanos) {
    if (node == 1) received.emplace_back(d.service, text(d.payload));
  });
  cluster.start_static();
  cluster.eq().schedule(util::usec(100), [&] {
    cluster.submit(0, Service::kAgreed, payload("a1"));
    cluster.submit(0, Service::kAgreed, payload("a2"));
    cluster.submit(0, Service::kSafe, payload("s1"));
    cluster.submit(0, Service::kAgreed, payload("a3"));
  });
  cluster.run_until(util::msec(200));

  ASSERT_EQ(received.size(), 4u);
  EXPECT_EQ(received[0], (std::pair{Service::kAgreed, std::string("a1")}));
  EXPECT_EQ(received[1], (std::pair{Service::kAgreed, std::string("a2")}));
  EXPECT_EQ(received[2], (std::pair{Service::kSafe, std::string("s1")}));
  EXPECT_EQ(received[3], (std::pair{Service::kAgreed, std::string("a3")}));
  // a1+a2 packed; s1 alone; a3 alone -> 3 protocol packets.
  EXPECT_EQ(cluster.engine(0).stats().initiated, 3u);
}

TEST(Packing, BudgetLimitsPackSize) {
  ProtocolConfig cfg;
  cfg.enable_packing = true;
  cfg.packing_budget = 100;
  SimCluster cluster(2, simnet::FabricParams::one_gig(), cfg,
                     ImplProfile::kLibrary);
  size_t received = 0;
  cluster.set_on_deliver([&](int node, const Delivery&, Nanos) {
    if (node == 1) ++received;
  });
  cluster.start_static();
  cluster.eq().schedule(util::usec(100), [&] {
    // 40-byte messages + 4-byte frames: at most 2 fit in a 100-byte budget.
    for (int i = 0; i < 6; ++i) {
      cluster.submit(0, Service::kAgreed,
                     std::vector<std::byte>(40, std::byte{1}));
    }
  });
  cluster.run_until(util::msec(100));
  EXPECT_EQ(received, 6u);
  EXPECT_EQ(cluster.engine(0).stats().initiated, 3u);  // 2+2+2
}

TEST(Packing, OversizeMessageSentUnpacked) {
  ProtocolConfig cfg;
  cfg.enable_packing = true;
  cfg.packing_budget = 100;
  SimCluster cluster(2, simnet::FabricParams::one_gig(), cfg,
                     ImplProfile::kLibrary);
  std::vector<size_t> sizes;
  cluster.set_on_deliver([&](int node, const Delivery& d, Nanos) {
    if (node == 1) sizes.push_back(d.payload.size());
  });
  cluster.start_static();
  cluster.eq().schedule(util::usec(100), [&] {
    cluster.submit(0, Service::kAgreed,
                   std::vector<std::byte>(500, std::byte{2}));
  });
  cluster.run_until(util::msec(100));
  ASSERT_EQ(sizes.size(), 1u);
  EXPECT_EQ(sizes[0], 500u);
}

TEST(Packing, TotalOrderPreservedAcrossSendersUnderPacking) {
  ProtocolConfig cfg;
  cfg.enable_packing = true;
  const int kNodes = 4;
  SimCluster cluster(kNodes, simnet::FabricParams::one_gig(), cfg,
                     ImplProfile::kLibrary, 83);
  std::vector<std::vector<std::string>> received(kNodes);
  cluster.set_on_deliver([&](int node, const Delivery& d, Nanos) {
    received[node].push_back(text(d.payload));
  });
  cluster.start_static();
  for (int i = 0; i < 100; ++i) {
    cluster.eq().schedule(util::usec(100) + i * util::usec(30), [&cluster, i] {
      cluster.submit(i % 4, Service::kAgreed,
                     payload("x" + std::to_string(i)));
    });
  }
  cluster.run_until(util::sec(1));
  for (int n = 0; n < kNodes; ++n) {
    ASSERT_EQ(received[n].size(), 100u) << "node " << n;
    EXPECT_EQ(received[n], received[0]) << "node " << n;
  }
}

TEST(Packing, PackingSurvivesLoss) {
  ProtocolConfig cfg;
  cfg.enable_packing = true;
  SimCluster cluster(4, simnet::FabricParams::one_gig(), cfg,
                     ImplProfile::kLibrary, 89);
  cluster.net().set_loss_rate(0.03);
  std::vector<std::vector<std::string>> received(4);
  cluster.set_on_deliver([&](int node, const Delivery& d, Nanos) {
    received[node].push_back(text(d.payload));
  });
  cluster.start_static();
  for (int i = 0; i < 200; ++i) {
    cluster.eq().schedule(util::usec(100) + i * util::usec(20), [&cluster, i] {
      cluster.submit(i % 4, Service::kAgreed,
                     payload("y" + std::to_string(i)));
    });
  }
  cluster.run_until(util::sec(3));
  for (int n = 0; n < 4; ++n) {
    ASSERT_EQ(received[n].size(), 200u) << "node " << n;
    EXPECT_EQ(received[n], received[0]);
  }
}

}  // namespace
}  // namespace accelring::protocol
