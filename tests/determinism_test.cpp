// Simulator determinism: identical seeds produce bit-identical executions —
// the property every debugging and regression workflow here depends on.
#include <gtest/gtest.h>

#include "harness/sweep.hpp"

namespace accelring::harness {
namespace {

struct RunFingerprint {
  std::vector<std::tuple<int, uint16_t, protocol::SeqNum, Nanos>> deliveries;
  uint64_t events = 0;
  uint64_t wire_bytes = 0;

  bool operator==(const RunFingerprint&) const = default;
};

RunFingerprint run_once(uint64_t seed, double loss) {
  protocol::ProtocolConfig cfg;
  SimCluster cluster(5, simnet::FabricParams::one_gig(), cfg,
                     ImplProfile::kDaemon, seed);
  cluster.net().set_loss_rate(loss);
  RunFingerprint fp;
  cluster.set_on_deliver(
      [&fp](int node, const protocol::Delivery& d, Nanos at) {
        fp.deliveries.emplace_back(node, d.sender, d.seq, at);
      });
  cluster.start_static();
  RateInjector::Options opt;
  opt.aggregate_mbps = 300;
  opt.payload_size = 700;
  opt.stop = util::msec(80);
  RateInjector injector(cluster, opt);
  injector.arm();
  cluster.run_until(util::msec(200));
  fp.events = cluster.eq().events_executed();
  fp.wire_bytes = cluster.net().stats().wire_bytes;
  return fp;
}

TEST(Determinism, SameSeedSameExecution) {
  const RunFingerprint a = run_once(42, 0.0);
  const RunFingerprint b = run_once(42, 0.0);
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a.deliveries.empty());
}

TEST(Determinism, SameSeedSameExecutionUnderLoss) {
  const RunFingerprint a = run_once(7, 0.03);
  const RunFingerprint b = run_once(7, 0.03);
  EXPECT_EQ(a, b);
}

TEST(Determinism, DifferentSeedsDifferUnderLoss) {
  // Loss draws differ across seeds, so timing fingerprints must diverge.
  const RunFingerprint a = run_once(1, 0.03);
  const RunFingerprint b = run_once(2, 0.03);
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace accelring::harness
