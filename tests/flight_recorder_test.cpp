// Flight recorder: a failing campaign run must leave a parseable black-box
// artifact naming the violation and carrying each node's recent trace
// events. Reuses the campaign's injected merge-ordering mutation as the
// known failure (the same one check_campaign_test proves the oracles catch),
// so the artifact under test comes from the real failure path, not a
// hand-built record.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "check/campaign.hpp"
#include "check/schedule.hpp"
#include "obs/flight.hpp"
#include "obs/json.hpp"

namespace accelring::check {
namespace {

namespace fs = std::filesystem;

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// Fresh per-test artifact directory under the build tree's cwd.
class FlightRecorderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = "flight_test_artifacts";
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }
  std::string dir_;
};

TEST_F(FlightRecorderTest, HandBuiltRecordSerializes) {
  obs::MetricsRegistry reg;
  reg.counter("protocol", "retrans_answered").inc(3);
  reg.histogram("protocol", "token_rotation_ns").record(125000);

  obs::FlightRecord record;
  record.scenario = "unit";
  record.seed = 42;
  record.captured_at = util::msec(5);
  record.violations.push_back(R"(order "diverged" at node 1)");
  obs::FlightNode node;
  node.name = "node0";
  node.events.push_back(
      util::TraceRecord{util::usec(10), util::TraceEvent::kTokenRx, 1, 2});
  node.events.push_back(
      util::TraceRecord{util::usec(20), util::TraceEvent::kDeliver, 3, 0});
  record.nodes.push_back(std::move(node));
  record.metrics = &reg;

  const std::string json = obs::flight_to_json(record);
  EXPECT_TRUE(obs::json_valid(json)) << json;
  EXPECT_NE(json.find("\"unit\""), std::string::npos);
  EXPECT_NE(json.find("token_rx"), std::string::npos);
  EXPECT_NE(json.find("deliver"), std::string::npos);
  // The violation's quotes must have been escaped, not emitted raw.
  EXPECT_NE(json.find("\\\"diverged\\\""), std::string::npos);
  EXPECT_NE(json.find("retrans_answered"), std::string::npos);
}

TEST_F(FlightRecorderTest, PathSanitizesScenarioName) {
  EXPECT_EQ(obs::flight_path("d", "loss_bursts", 11),
            "d/loss_bursts_11.json");
  EXPECT_EQ(obs::flight_path("d", "evil/../name x", 2),
            "d/evil____name_x_2.json");
}

TEST_F(FlightRecorderTest, LastNCapsSerializedEvents) {
  obs::FlightRecord record;
  record.scenario = "cap";
  record.last_n = 4;
  obs::FlightNode node;
  node.name = "node0";
  for (int i = 0; i < 100; ++i) {
    node.events.push_back(util::TraceRecord{
        i, util::TraceEvent::kDeliver, static_cast<int64_t>(i), 0});
  }
  record.nodes.push_back(std::move(node));
  const std::string json = obs::flight_to_json(record);
  EXPECT_TRUE(obs::json_valid(json));
  // Only the most recent 4 events survive; the count of "at_ns" keys says so.
  size_t events = 0;
  for (size_t pos = json.find("\"at_ns\""); pos != std::string::npos;
       pos = json.find("\"at_ns\"", pos + 1)) {
    ++events;
  }
  EXPECT_EQ(events, 4u);
  EXPECT_NE(json.find("\"events_total\":100"), std::string::npos) << json;
  // The survivors are the newest (96..99), not the oldest.
  EXPECT_NE(json.find("\"at_ns\":99"), std::string::npos);
  EXPECT_EQ(json.find("\"at_ns\":5,"), std::string::npos);
}

TEST_F(FlightRecorderTest, FailingCampaignRunDumpsArtifact) {
  RunOptions run;
  run.nodes = 5;
  run.rings = 4;
  run.horizon = util::msec(250);
  run.drain = util::msec(300);
  run.inject_merge_bug = true;
  run.artifact_dir = dir_;

  const Schedule schedule =
      find_scenario("loss_bursts")->make(11, run.nodes, run.horizon);
  const RunResult bad = run_schedule(run, schedule, 11);
  ASSERT_FALSE(bad.ok) << "mutation not caught; artifact path unexercised";
  ASSERT_FALSE(bad.artifact_path.empty());
  ASSERT_TRUE(fs::exists(bad.artifact_path)) << bad.artifact_path;

  const std::string json = slurp(bad.artifact_path);
  ASSERT_FALSE(json.empty());
  EXPECT_TRUE(obs::json_valid(json));
  // Names the violation the oracles raised.
  EXPECT_NE(json.find("diverge"), std::string::npos);
  EXPECT_NE(json.find("\"loss_bursts\""), std::string::npos);
  EXPECT_NE(json.find("\"seed\":11"), std::string::npos);
  // One trace block per (ring, node), each with events.
  for (int r = 0; r < run.rings; ++r) {
    for (int n = 0; n < run.nodes; ++n) {
      const std::string name =
          "ring" + std::to_string(r) + "/node" + std::to_string(n);
      EXPECT_NE(json.find("\"" + name + "\""), std::string::npos) << name;
    }
  }
  EXPECT_NE(json.find("token_rx"), std::string::npos);
  // Metrics snapshot rode along (metrics are enabled iff artifacts are).
  EXPECT_NE(json.find("token_rotation_ns"), std::string::npos);
}

TEST_F(FlightRecorderTest, PassingRunLeavesNoArtifact) {
  RunOptions run;
  run.nodes = 5;
  run.rings = 4;
  run.horizon = util::msec(250);
  run.drain = util::msec(300);
  run.artifact_dir = dir_;

  const Schedule schedule =
      find_scenario("loss_bursts")->make(11, run.nodes, run.horizon);
  const RunResult good = run_schedule(run, schedule, 11);
  ASSERT_TRUE(good.ok) << good.report;
  EXPECT_TRUE(good.artifact_path.empty());
  EXPECT_FALSE(fs::exists(dir_));
}

TEST_F(FlightRecorderTest, ShrinkDoesNotSpamArtifacts) {
  RunOptions run;
  run.nodes = 5;
  run.rings = 4;
  run.horizon = util::msec(250);
  run.drain = util::msec(300);
  run.inject_merge_bug = true;
  run.artifact_dir = dir_;

  const Schedule schedule =
      find_scenario("loss_bursts")->make(11, run.nodes, run.horizon);
  const Schedule minimal = shrink(run, schedule, 11);
  EXPECT_LE(minimal.events.size(), schedule.events.size());
  // shrink() replays dozens of failing candidates; none may write artifacts.
  EXPECT_FALSE(fs::exists(dir_));
}

}  // namespace
}  // namespace accelring::check
