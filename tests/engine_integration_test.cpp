// Cross-cutting integration tests: token retransmission healing, service
// levels end-to-end, submissions spanning membership changes, and group
// codec details not covered by the layer tests.
#include <gtest/gtest.h>

#include "groups/group_layer.hpp"
#include "harness/cluster.hpp"
#include "harness/workload.hpp"
#include "protocol/wire.hpp"

namespace accelring::harness {
namespace {

using protocol::PacketType;
using protocol::Service;

protocol::ProtocolConfig fast_cfg() {
  protocol::ProtocolConfig cfg;
  cfg.timeouts.token_retransmit = util::msec(3);
  cfg.timeouts.token_loss = util::msec(60);
  cfg.timeouts.join = util::msec(5);
  cfg.timeouts.consensus = util::msec(80);
  return cfg;
}

TEST(TokenRetransmission, SingleTokenLossHealsWithoutMembershipChange) {
  SimCluster cluster(4, simnet::FabricParams::one_gig(), fast_cfg(),
                     ImplProfile::kLibrary, 3);
  // Drop exactly one token.
  int dropped = 0;
  cluster.net().set_drop_filter(
      [&dropped](int, int, int sock, const std::vector<std::byte>&) {
        if (sock == simnet::kTokenSocket && dropped == 0) {
          ++dropped;
          return true;
        }
        return false;
      });
  std::vector<std::vector<protocol::SeqNum>> delivered(4);
  cluster.set_on_deliver([&](int node, const protocol::Delivery& d, Nanos) {
    delivered[node].push_back(d.seq);
  });
  cluster.start_static();
  for (int i = 0; i < 20; ++i) {
    cluster.eq().schedule(util::usec(100) + i * util::usec(200),
                          [&cluster, i] {
                            PayloadStamp stamp{cluster.eq().now(),
                                               static_cast<uint32_t>(i % 4),
                                               static_cast<uint32_t>(i)};
                            cluster.submit(i % 4, Service::kAgreed,
                                           make_payload(64, stamp));
                          });
  }
  cluster.run_until(util::msec(500));

  EXPECT_EQ(dropped, 1);
  uint64_t token_retransmits = 0;
  uint64_t memberships = 0;
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(delivered[i].size(), 20u) << "node " << i;
    token_retransmits += cluster.engine(i).stats().token_retransmits;
    memberships = std::max(memberships,
                           cluster.engine(i).stats().memberships);
  }
  EXPECT_GE(token_retransmits, 1u);
  EXPECT_EQ(memberships, 1u);  // no reconfiguration was needed
}

TEST(ServiceLevels, AllServicesDeliveredWithCorrectLabels) {
  SimCluster cluster(3, simnet::FabricParams::one_gig(), {},
                     ImplProfile::kLibrary);
  std::vector<Service> seen;
  cluster.set_on_deliver([&](int node, const protocol::Delivery& d, Nanos) {
    if (node == 1) seen.push_back(d.service);
  });
  cluster.start_static();
  cluster.eq().schedule(util::usec(100), [&] {
    for (Service s : {Service::kReliable, Service::kFifo, Service::kCausal,
                      Service::kAgreed, Service::kSafe}) {
      PayloadStamp stamp{cluster.eq().now(), 0, static_cast<uint32_t>(s)};
      cluster.submit(0, s, make_payload(64, stamp));
    }
  });
  cluster.run_until(util::msec(100));
  // All five service levels arrive, in submission order (one sender), with
  // their labels intact.
  ASSERT_EQ(seen.size(), 5u);
  EXPECT_EQ(seen[0], Service::kReliable);
  EXPECT_EQ(seen[1], Service::kFifo);
  EXPECT_EQ(seen[2], Service::kCausal);
  EXPECT_EQ(seen[3], Service::kAgreed);
  EXPECT_EQ(seen[4], Service::kSafe);
}

TEST(MembershipSpanning, SubmissionsDuringReconfigurationFlowAfterwards) {
  SimCluster cluster(4, simnet::FabricParams::one_gig(), fast_cfg(),
                     ImplProfile::kLibrary, 19);
  std::vector<std::vector<uint32_t>> got(4);
  cluster.set_on_deliver([&](int node, const protocol::Delivery& d, Nanos) {
    PayloadStamp stamp;
    if (parse_payload(d.payload, stamp)) got[node].push_back(stamp.index);
  });
  cluster.start_static();
  cluster.run_until(util::msec(20));

  // Crash node 3, then submit from node 0 IMMEDIATELY — while the others
  // are still detecting the failure and reforming.
  cluster.eq().schedule(util::msec(25),
                        [&] { cluster.net().set_host_down(3, true); });
  for (int i = 0; i < 10; ++i) {
    cluster.eq().schedule(util::msec(30) + i * util::msec(5), [&cluster, i] {
      PayloadStamp stamp{cluster.eq().now(), 0,
                         static_cast<uint32_t>(1000 + i)};
      cluster.submit(0, Service::kAgreed, make_payload(64, stamp));
    });
  }
  cluster.run_until(util::sec(2));
  for (int i = 0; i < 3; ++i) {
    ASSERT_EQ(got[i].size(), 10u) << "node " << i;
    for (int k = 0; k < 10; ++k) {
      EXPECT_EQ(got[i][k], 1000u + k);  // FIFO across the reconfiguration
    }
  }
}

TEST(GroupCodec, RoundTripAndGarbage) {
  groups::GroupMsg msg;
  msg.op = groups::GroupOp::kAppMessage;
  msg.origin = groups::Member{2, 7, "client#x"};
  msg.groups = {"alpha", "beta", "gamma"};
  msg.payload = util::to_vector(util::as_bytes("body"));
  const auto decoded = groups::decode_group(groups::encode(msg));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->origin.daemon, 2);
  EXPECT_EQ(decoded->origin.client, 7u);
  EXPECT_EQ(decoded->origin.name, "client#x");
  EXPECT_EQ(decoded->groups, msg.groups);
  EXPECT_EQ(decoded->payload, msg.payload);

  const std::byte junk[] = {std::byte{0}, std::byte{9}};
  EXPECT_FALSE(groups::decode_group(junk).has_value());
  auto truncated = groups::encode(msg);
  truncated.resize(truncated.size() / 2);
  EXPECT_FALSE(groups::decode_group(truncated).has_value());
}

TEST(EngineStatsTest, CountersAddUp) {
  SimCluster cluster(3, simnet::FabricParams::one_gig(), {},
                     ImplProfile::kLibrary);
  cluster.start_static();
  for (int i = 0; i < 30; ++i) {
    cluster.eq().schedule(util::usec(100) + i * util::usec(100),
                          [&cluster, i] {
                            PayloadStamp stamp{cluster.eq().now(),
                                               static_cast<uint32_t>(i % 3),
                                               static_cast<uint32_t>(i)};
                            cluster.submit(i % 3, Service::kAgreed,
                                           make_payload(64, stamp));
                          });
  }
  cluster.run_until(util::msec(200));
  uint64_t initiated = 0;
  for (int i = 0; i < 3; ++i) {
    initiated += cluster.engine(i).stats().initiated;
    // Every node delivered all 30 messages.
    EXPECT_EQ(cluster.engine(i).stats().delivered_agreed, 30u);
    // Tokens circulated (several rounds).
    EXPECT_GT(cluster.engine(i).stats().tokens_handled, 3u);
  }
  EXPECT_EQ(initiated, 30u);
}

TEST(ForeignTraffic, StrayOldRingPacketsIgnoredAfterReconfiguration) {
  SimCluster cluster(3, simnet::FabricParams::one_gig(), fast_cfg(),
                     ImplProfile::kLibrary, 29);
  cluster.start_static();
  cluster.run_until(util::msec(20));
  // Capture the current ring id, force a reconfiguration, then inject a
  // stale data message from the old ring. It must not disturb anything.
  const auto old_ring = cluster.engine(0).ring();
  cluster.eq().schedule(util::msec(25),
                        [&] { cluster.net().set_host_down(2, true); });
  cluster.run_until(util::sec(1));
  ASSERT_EQ(cluster.engine(0).ring().size(), 2u);
  const auto new_ring_id = cluster.engine(0).ring().ring_id;

  protocol::DataMsg stale;
  stale.ring_id = old_ring.ring_id;
  stale.seq = 999;
  stale.pid = 2;
  stale.round = 50;
  stale.payload = util::to_vector(util::as_bytes("ghost"));
  const auto bytes = encode(stale);
  cluster.eq().schedule(cluster.eq().now() + util::msec(1), [&, bytes] {
    cluster.process(0).enqueue(
        simnet::kDataSocket,
        std::make_shared<const std::vector<std::byte>>(bytes));
  });
  cluster.run_until(cluster.eq().now() + util::msec(500));
  EXPECT_TRUE(cluster.engine(0).operational());
  EXPECT_EQ(cluster.engine(0).ring().ring_id, new_ring_id);  // unmoved
}

}  // namespace
}  // namespace accelring::harness
