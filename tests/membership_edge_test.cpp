// Membership edge cases beyond the basic suite: losing the representative
// (the round-bumping, token-originating member), three-way partitions, and
// repeated sequential crashes down to a 2-member ring.
#include <gtest/gtest.h>

#include <set>

#include "harness/cluster.hpp"
#include "harness/workload.hpp"

namespace accelring::harness {
namespace {

using protocol::Service;

protocol::ProtocolConfig fast_cfg() {
  protocol::ProtocolConfig cfg;
  cfg.timeouts.token_loss = util::msec(30);
  cfg.timeouts.join = util::msec(5);
  cfg.timeouts.consensus = util::msec(60);
  return cfg;
}

void background_traffic(SimCluster& cluster, int nodes, int count,
                        protocol::Nanos start, protocol::Nanos spacing) {
  for (int i = 0; i < count; ++i) {
    cluster.eq().schedule(start + i * spacing, [&cluster, i, nodes] {
      const int sender = i % nodes;
      if (cluster.net().host_down(sender)) return;
      PayloadStamp stamp{cluster.eq().now(), static_cast<uint32_t>(sender),
                         static_cast<uint32_t>(i)};
      cluster.submit(sender, Service::kAgreed, make_payload(64, stamp));
    });
  }
}

TEST(MembershipEdge, RepresentativeCrashElectsNewRoundLeader) {
  const int kNodes = 5;
  SimCluster cluster(kNodes, simnet::FabricParams::one_gig(), fast_cfg(),
                     ImplProfile::kLibrary, 101);
  std::vector<std::vector<uint32_t>> got(kNodes);
  cluster.set_on_deliver([&](int node, const protocol::Delivery& d, Nanos) {
    PayloadStamp stamp;
    if (parse_payload(d.payload, stamp)) got[node].push_back(stamp.index);
  });
  cluster.start_static();
  background_traffic(cluster, kNodes, 150, util::msec(2), util::msec(1));

  // Node 0 is the representative: it bumps rounds and originates tokens.
  cluster.eq().schedule(util::msec(50),
                        [&] { cluster.net().set_host_down(0, true); });
  cluster.run_until(util::sec(3));

  for (int i = 1; i < kNodes; ++i) {
    ASSERT_TRUE(cluster.engine(i).operational()) << "node " << i;
    EXPECT_EQ(cluster.engine(i).ring().size(), 4u);
    // New representative is the new ring's first member (node 1); rounds
    // keep advancing (tokens keep being handled) after the change.
    EXPECT_EQ(cluster.engine(i).ring().representative(), 1);
  }
  EXPECT_GT(cluster.engine(1).stats().rounds, 0u);
  // All survivor-sent messages delivered consistently.
  for (int i = 2; i < kNodes; ++i) {
    EXPECT_EQ(got[i], got[1]) << "node " << i;
  }
  // Messages from senders 1..4 all arrive; sender 0's post-crash slots are
  // skipped by the traffic generator, so count what node 1 delivered.
  EXPECT_GT(got[1].size(), 100u);
}

TEST(MembershipEdge, ThreeWayPartitionAndFullMerge) {
  const int kNodes = 6;
  SimCluster cluster(kNodes, simnet::FabricParams::one_gig(), fast_cfg(),
                     ImplProfile::kLibrary, 103);
  cluster.start_static();
  background_traffic(cluster, kNodes, 500, util::msec(2), util::msec(2));

  cluster.eq().schedule(util::msec(50), [&] {
    for (int i = 0; i < kNodes; ++i) {
      cluster.net().set_partition(i, i / 2);  // {0,1} {2,3} {4,5}
    }
  });
  cluster.run_until(util::msec(600));
  // Three rings of two.
  std::set<protocol::RingId> rings;
  for (int i = 0; i < kNodes; ++i) {
    ASSERT_TRUE(cluster.engine(i).operational()) << "node " << i;
    EXPECT_EQ(cluster.engine(i).ring().size(), 2u) << "node " << i;
    rings.insert(cluster.engine(i).ring().ring_id);
  }
  EXPECT_EQ(rings.size(), 3u);

  cluster.eq().schedule(cluster.eq().now(), [&] { cluster.net().heal(); });
  cluster.run_until(cluster.eq().now() + util::sec(4));
  for (int i = 0; i < kNodes; ++i) {
    ASSERT_TRUE(cluster.engine(i).operational()) << "node " << i;
    EXPECT_EQ(cluster.engine(i).ring().size(), static_cast<size_t>(kNodes))
        << "node " << i;
    EXPECT_EQ(cluster.engine(i).ring().ring_id,
              cluster.engine(0).ring().ring_id);
  }
}

TEST(MembershipEdge, SequentialCrashesDownToTwo) {
  const int kNodes = 5;
  SimCluster cluster(kNodes, simnet::FabricParams::one_gig(), fast_cfg(),
                     ImplProfile::kLibrary, 107);
  std::vector<std::vector<uint32_t>> got(kNodes);
  cluster.set_on_deliver([&](int node, const protocol::Delivery& d, Nanos) {
    PayloadStamp stamp;
    if (parse_payload(d.payload, stamp)) got[node].push_back(stamp.index);
  });
  cluster.start_static();
  // Only nodes 0 and 1 send, so every message must survive all crashes.
  for (int i = 0; i < 400; ++i) {
    cluster.eq().schedule(util::msec(2) + i * util::msec(2), [&cluster, i] {
      PayloadStamp stamp{cluster.eq().now(), static_cast<uint32_t>(i % 2),
                         static_cast<uint32_t>(i)};
      cluster.submit(i % 2, Service::kAgreed, make_payload(64, stamp));
    });
  }
  cluster.eq().schedule(util::msec(100),
                        [&] { cluster.net().set_host_down(4, true); });
  cluster.eq().schedule(util::msec(300),
                        [&] { cluster.net().set_host_down(3, true); });
  cluster.eq().schedule(util::msec(500),
                        [&] { cluster.net().set_host_down(2, true); });
  cluster.run_until(util::sec(4));

  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(cluster.engine(i).operational()) << "node " << i;
    EXPECT_EQ(cluster.engine(i).ring().size(), 2u);
    EXPECT_EQ(got[i].size(), 400u) << "node " << i;
  }
  EXPECT_EQ(got[1], got[0]);
}

TEST(MembershipEdge, TotalIsolationMakesSingletons) {
  const int kNodes = 3;
  SimCluster cluster(kNodes, simnet::FabricParams::one_gig(), fast_cfg(),
                     ImplProfile::kLibrary, 109);
  cluster.start_static();
  cluster.run_until(util::msec(30));
  cluster.eq().schedule(util::msec(40), [&] {
    for (int i = 0; i < kNodes; ++i) cluster.net().set_partition(i, i);
  });
  cluster.run_until(util::sec(2));
  for (int i = 0; i < kNodes; ++i) {
    ASSERT_TRUE(cluster.engine(i).operational()) << "node " << i;
    EXPECT_EQ(cluster.engine(i).ring().size(), 1u) << "node " << i;
    // Singleton rings still make progress on their own submissions.
    PayloadStamp stamp{cluster.eq().now(), static_cast<uint32_t>(i), 7777};
    cluster.submit(i, Service::kSafe, make_payload(64, stamp));
  }
  uint64_t delivered = 0;
  cluster.set_on_deliver(
      [&](int, const protocol::Delivery&, Nanos) { ++delivered; });
  cluster.run_until(cluster.eq().now() + util::sec(1));
  EXPECT_EQ(delivered, 3u);  // each singleton delivers its own Safe message
}

}  // namespace
}  // namespace accelring::harness
