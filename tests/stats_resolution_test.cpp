// MicrosAccumulator: ns -> whole-us conversion must not lose (or invent)
// sub-microsecond time. The regression this pins: the token-health stamping
// once rounded every per-rotation CPU delta up independently
// ((held + 999) / 1000), fabricating up to 1us of phantom CPU per rotation —
// tens of milliseconds per second at benchmark rotation rates, enough to
// skew the gray-failure detector's per-rotation CPU picture. The accumulator
// instead floors with a carried remainder, so the cumulative total reported
// always equals floor(total_ns / 1000).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "util/rng.hpp"
#include "util/stats.hpp"

namespace accelring::util {
namespace {

TEST(MicrosAccumulator, CumulativeTotalIsExactFloor) {
  MicrosAccumulator acc;
  uint64_t reported = 0;
  Nanos total = 0;
  // 700ns per step: the old per-call ceil would report 1us every step
  // (1000us after 1000 steps); the true total is 700000ns = 700us.
  for (int i = 0; i < 1000; ++i) {
    reported += acc.consume(700);
    total += 700;
  }
  EXPECT_EQ(reported, static_cast<uint64_t>(total / 1000));
  EXPECT_EQ(reported, 700u);
  EXPECT_EQ(acc.remainder(), total % 1000);
}

TEST(MicrosAccumulator, RandomDeltasNeverDrift) {
  Rng rng(31337);
  MicrosAccumulator acc;
  uint64_t reported = 0;
  Nanos total = 0;
  for (int i = 0; i < 100000; ++i) {
    const Nanos delta = static_cast<Nanos>(rng.below(5000));
    reported += acc.consume(delta);
    total += delta;
    // Invariant at every step, not just at the end.
    ASSERT_EQ(reported, static_cast<uint64_t>(total / 1000)) << "step " << i;
  }
  EXPECT_EQ(acc.remainder(), total % 1000);
  EXPECT_LT(acc.remainder(), 1000);
}

TEST(MicrosAccumulator, SubMicrosecondStreamEventuallyReports) {
  // 999ns deltas: old code reported 1us each call; the accumulator reports
  // 0 until a whole microsecond has actually elapsed.
  MicrosAccumulator acc;
  EXPECT_EQ(acc.consume(999), 0u);
  EXPECT_EQ(acc.remainder(), 999);
  EXPECT_EQ(acc.consume(999), 1u);  // 1998ns -> 1us out, 998ns carried
  EXPECT_EQ(acc.remainder(), 998);
}

TEST(MicrosAccumulator, LargeDeltaPassesThrough) {
  MicrosAccumulator acc;
  EXPECT_EQ(acc.consume(msec(5) + 437), 5000u);
  EXPECT_EQ(acc.remainder(), 437);
}

TEST(MicrosAccumulator, ClearDropsCarry) {
  MicrosAccumulator acc;
  EXPECT_EQ(acc.consume(999), 0u);
  acc.clear();
  EXPECT_EQ(acc.remainder(), 0);
  EXPECT_EQ(acc.consume(1), 0u);
}

TEST(MicrosAccumulator, OldCeilBehaviorWouldHaveDrifted) {
  // Document the magnitude of the bug the accumulator fixes: at 700ns per
  // rotation, per-call ceil overstates CPU by 300ns/rotation — 30% here.
  uint64_t old_style = 0;
  MicrosAccumulator acc;
  uint64_t fixed = 0;
  for (int i = 0; i < 10000; ++i) {
    old_style += (700 + 999) / 1000;  // the removed expression
    fixed += acc.consume(700);
  }
  EXPECT_EQ(old_style, 10000u);
  EXPECT_EQ(fixed, 7000u);
}

}  // namespace
}  // namespace accelring::util
