// Membership torture: token loss storms striking *during* view changes,
// combined with a crash and a cold restart, across several seeds. The
// ClusterOracle asserts the full Extended Virtual Synchrony contract on
// every run; the test additionally demands that the survivors converge on
// one final ring containing everyone alive.
#include <gtest/gtest.h>

#include <map>

#include "check/oracle.hpp"
#include "harness/cluster.hpp"
#include "util/bytes.hpp"

namespace accelring::membership {
namespace {

using harness::SimCluster;

protocol::ProtocolConfig fast_cfg() {
  protocol::ProtocolConfig cfg;
  cfg.timeouts.token_loss = util::msec(30);
  cfg.timeouts.join = util::msec(5);
  cfg.timeouts.consensus = util::msec(60);
  return cfg;
}

std::vector<std::byte> app_payload(uint32_t index) {
  util::Writer w(48);
  w.u8(0x7F);
  w.u32(index);
  std::vector<std::byte> out = std::move(w).take();
  out.resize(48);
  return out;
}

TEST(MembershipTorture, LossDuringViewChangeWithCrashAndRestart) {
  constexpr int kNodes = 5;
  for (uint64_t seed : {101u, 202u, 303u}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    SimCluster cluster(kNodes, simnet::FabricParams::one_gig(), fast_cfg(),
                       harness::ImplProfile::kLibrary, seed);
    check::ClusterOracle oracle(kNodes);
    oracle.attach(cluster);

    // Track every node's last regular configuration for the convergence
    // assertion at the end.
    std::map<int, protocol::RingConfig> final_config;
    cluster.add_on_config(
        [&final_config](int node, const protocol::ConfigurationChange& c) {
          if (!c.transitional) final_config[node] = c.config;
        });

    cluster.start_static();

    // Background traffic from every node throughout the torture.
    for (uint32_t i = 0; i < 120; ++i) {
      cluster.eq().schedule(util::msec(5) + i * util::msec(2),
                            [&cluster, i] {
        const int node = static_cast<int>(i % kNodes);
        if (!cluster.net().host_down(node)) {
          cluster.submit(node, protocol::Service::kAgreed, app_payload(i));
        }
      });
    }

    // Crash node 4 -> the survivors start a view change; 10 ms into it a
    // loss storm eats their tokens and joins, forcing repeated gathers.
    cluster.eq().schedule(util::msec(30), [&cluster, &oracle] {
      cluster.crash_node(4);
      oracle.note_crash(4);
    });
    cluster.eq().schedule(util::msec(40),
                          [&cluster] { cluster.net().set_loss_rate(0.4); });
    cluster.eq().schedule(util::msec(110),
                          [&cluster] { cluster.net().set_loss_rate(0.0); });

    // Cold-restart node 4 mid-run; a second storm strikes while its rejoin
    // view change is in progress.
    cluster.eq().schedule(util::msec(180), [&cluster, &oracle] {
      cluster.restart_node(4);
      oracle.note_restart(4);
    });
    cluster.eq().schedule(util::msec(190),
                          [&cluster] { cluster.net().set_loss_rate(0.35); });
    cluster.eq().schedule(util::msec(260),
                          [&cluster] { cluster.net().set_loss_rate(0.0); });

    cluster.run_until(util::sec(3));

    // Safety: the oracle saw every delivery and configuration change.
    const harness::ClusterStats stats = cluster.stats();
    oracle.finalize(&stats);
    EXPECT_TRUE(oracle.ok()) << oracle.report();
    EXPECT_GT(oracle.observed(), 0u);

    // Liveness: everyone (including the restarted node) ends on the same
    // regular ring containing all five processes.
    ASSERT_EQ(final_config.size(), static_cast<size_t>(kNodes));
    const protocol::RingConfig& ref = final_config[0];
    EXPECT_EQ(ref.members.size(), static_cast<size_t>(kNodes));
    for (const auto& [node, cfg] : final_config) {
      EXPECT_EQ(cfg.ring_id, ref.ring_id) << "node " << node;
      EXPECT_EQ(cfg.members, ref.members) << "node " << node;
    }
  }
}

TEST(MembershipTorture, RepeatedStormsNeverWedgeTheRing) {
  // Four consecutive loss storms, each timed to overlap the reformation the
  // previous one caused. The ring must be operational (and consistent)
  // after the dust settles every time.
  constexpr int kNodes = 4;
  SimCluster cluster(kNodes, simnet::FabricParams::one_gig(), fast_cfg(),
                     harness::ImplProfile::kLibrary, 77);
  check::ClusterOracle oracle(kNodes);
  oracle.attach(cluster);
  std::map<int, protocol::RingConfig> final_config;
  cluster.add_on_config(
      [&final_config](int node, const protocol::ConfigurationChange& c) {
        if (!c.transitional) final_config[node] = c.config;
      });
  cluster.start_static();

  for (uint32_t i = 0; i < 150; ++i) {
    cluster.eq().schedule(util::msec(5) + i * util::msec(3), [&cluster, i] {
      cluster.submit(static_cast<int>(i % kNodes), protocol::Service::kAgreed,
                     app_payload(1000 + i));
    });
  }
  // Storm k hits at 40 + 90k ms for 50 ms: long enough to outlast the token
  // loss timeout (30 ms), so each storm triggers a reformation and then
  // keeps interfering with it.
  for (int k = 0; k < 4; ++k) {
    cluster.eq().schedule(util::msec(40 + 90 * k),
                          [&cluster] { cluster.net().set_loss_rate(0.6); });
    cluster.eq().schedule(util::msec(90 + 90 * k),
                          [&cluster] { cluster.net().set_loss_rate(0.0); });
  }
  cluster.run_until(util::sec(3));

  const harness::ClusterStats stats = cluster.stats();
  oracle.finalize(&stats);
  EXPECT_TRUE(oracle.ok()) << oracle.report();

  ASSERT_EQ(final_config.size(), static_cast<size_t>(kNodes));
  const protocol::RingConfig& ref = final_config[0];
  EXPECT_EQ(ref.members.size(), static_cast<size_t>(kNodes));
  for (const auto& [node, cfg] : final_config) {
    EXPECT_EQ(cfg.ring_id, ref.ring_id) << "node " << node;
  }
}

}  // namespace
}  // namespace accelring::membership
