// Unit tests for token-round flow control arithmetic (§III-A-1).
#include "protocol/flow_control.hpp"

#include <gtest/gtest.h>

namespace accelring::protocol {
namespace {

ProtocolConfig config(uint32_t personal, uint32_t global, SeqNum gap) {
  ProtocolConfig cfg;
  cfg.personal_window = personal;
  cfg.global_window = global;
  cfg.max_seq_gap = gap;
  return cfg;
}

TEST(FlowControl, PendingLimits) {
  const auto cfg = config(20, 160, 1000);
  FlowControl fc(cfg);
  EXPECT_EQ(fc.allowance(/*pending=*/5, /*fcc=*/0, /*retrans=*/0,
                         /*aru=*/0, /*seq=*/0),
            5u);
}

TEST(FlowControl, PersonalWindowLimits) {
  const auto cfg = config(20, 160, 1000);
  FlowControl fc(cfg);
  EXPECT_EQ(fc.allowance(100, 0, 0, 0, 0), 20u);
}

TEST(FlowControl, GlobalWindowMinusFccAndRetrans) {
  const auto cfg = config(200, 160, 100000);
  FlowControl fc(cfg);
  // 160 - 100 (in flight) - 10 (our retransmissions) = 50
  EXPECT_EQ(fc.allowance(1000, 100, 10, 0, 0), 50u);
}

TEST(FlowControl, GlobalWindowExhaustedClampsToZero) {
  const auto cfg = config(200, 160, 100000);
  FlowControl fc(cfg);
  EXPECT_EQ(fc.allowance(1000, 160, 0, 0, 0), 0u);
  EXPECT_EQ(fc.allowance(1000, 150, 30, 0, 0), 0u);  // would be negative
}

TEST(FlowControl, SeqGapLimits) {
  const auto cfg = config(200, 10000, 100);
  FlowControl fc(cfg);
  // aru=50, gap=100 -> ceiling 150; seq already at 130 -> 20 allowed.
  EXPECT_EQ(fc.allowance(1000, 0, 0, 50, 130), 20u);
  // seq at/above ceiling -> nothing allowed.
  EXPECT_EQ(fc.allowance(1000, 0, 0, 50, 150), 0u);
  EXPECT_EQ(fc.allowance(1000, 0, 0, 50, 400), 0u);
}

TEST(FlowControl, MinOfAllConstraintsWins) {
  const auto cfg = config(20, 160, 1000);
  FlowControl fc(cfg);
  // pending=7 < personal=20 < global slack=60 < gap slack=1000.
  EXPECT_EQ(fc.allowance(7, 100, 0, 0, 0), 7u);
}

TEST(FlowControl, FccReplacesOwnContribution) {
  const auto cfg = config(20, 160, 1000);
  FlowControl fc(cfg);
  // Round 1: we sent 12 (fcc had no prior contribution from us).
  EXPECT_EQ(fc.updated_fcc(/*token_fcc=*/40, /*sent=*/12), 52u);
  fc.round_complete(12);
  // Round 2: token says 52 (includes our 12); we now send 3.
  EXPECT_EQ(fc.updated_fcc(52, 3), 43u);
  fc.round_complete(3);
  EXPECT_EQ(fc.sent_last_round(), 3u);
}

TEST(FlowControl, FccNeverUnderflows) {
  const auto cfg = config(20, 160, 1000);
  FlowControl fc(cfg);
  fc.round_complete(50);
  // Token fcc smaller than our last contribution (e.g. after ring change
  // races): clamp at zero rather than wrapping.
  EXPECT_EQ(fc.updated_fcc(10, 0), 0u);
}

TEST(FlowControl, ResetForgetsHistory) {
  const auto cfg = config(20, 160, 1000);
  FlowControl fc(cfg);
  fc.round_complete(15);
  fc.reset();
  EXPECT_EQ(fc.sent_last_round(), 0u);
  EXPECT_EQ(fc.updated_fcc(100, 5), 105u);
}

TEST(FlowControl, RetransmissionsCountAgainstGlobalOnly) {
  const auto cfg = config(20, 160, 1000);
  FlowControl fc(cfg);
  // Retransmissions shrink the global budget but not the personal window.
  EXPECT_EQ(fc.allowance(1000, 0, 145, 0, 0), 15u);
  EXPECT_EQ(fc.allowance(1000, 0, 0, 0, 0), 20u);
}

}  // namespace
}  // namespace accelring::protocol
