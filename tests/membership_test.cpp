// Integration tests for the membership algorithm: discovery, crash,
// partition, merge, and Extended Virtual Synchrony configuration delivery.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "harness/cluster.hpp"
#include "harness/workload.hpp"
#include "membership/membership.hpp"

namespace accelring::harness {
namespace {

using protocol::ConfigurationChange;
using protocol::Delivery;
using protocol::Service;

/// Records deliveries and configuration changes per node, preserving order.
struct EvsLog {
  struct Event {
    bool is_config = false;
    // config event
    protocol::RingId ring_id = 0;
    bool transitional = false;
    std::vector<protocol::ProcessId> members;
    // delivery event
    uint16_t sender = 0;
    protocol::SeqNum seq = 0;
  };
  std::vector<std::vector<Event>> per_node;

  explicit EvsLog(int nodes) : per_node(nodes) {}

  void attach(SimCluster& cluster) {
    cluster.set_on_deliver([this](int node, const Delivery& d, Nanos) {
      Event e;
      e.sender = d.sender;
      e.seq = d.seq;
      e.ring_id = d.ring_id;
      per_node[node].push_back(e);
    });
    cluster.set_on_config([this](int node, const ConfigurationChange& c) {
      Event e;
      e.is_config = true;
      e.ring_id = c.config.ring_id;
      e.transitional = c.transitional;
      e.members = c.config.members;
      per_node[node].push_back(e);
    });
  }

  [[nodiscard]] std::vector<Event> configs(int node) const {
    std::vector<Event> out;
    for (const Event& e : per_node[node]) {
      if (e.is_config) out.push_back(e);
    }
    return out;
  }
  [[nodiscard]] std::vector<std::pair<uint16_t, protocol::SeqNum>> messages(
      int node) const {
    std::vector<std::pair<uint16_t, protocol::SeqNum>> out;
    for (const Event& e : per_node[node]) {
      if (!e.is_config) out.emplace_back(e.sender, e.seq);
    }
    return out;
  }
};

protocol::ProtocolConfig fast_membership_config() {
  protocol::ProtocolConfig cfg;
  cfg.timeouts.token_loss = util::msec(30);
  cfg.timeouts.join = util::msec(5);
  cfg.timeouts.consensus = util::msec(60);
  return cfg;
}

TEST(MembershipTest, DiscoveryFormsSingleRing) {
  const int kNodes = 5;
  SimCluster cluster(kNodes, simnet::FabricParams::one_gig(),
                     fast_membership_config(), ImplProfile::kLibrary, 21);
  EvsLog log(kNodes);
  log.attach(cluster);
  cluster.start_discovery();
  cluster.run_until(util::sec(2));

  for (int i = 0; i < kNodes; ++i) {
    EXPECT_TRUE(cluster.engine(i).operational()) << "node " << i;
    EXPECT_EQ(cluster.engine(i).ring().size(), static_cast<size_t>(kNodes));
  }
  // Everyone installed the same final ring.
  const auto ring_id = cluster.engine(0).ring().ring_id;
  for (int i = 1; i < kNodes; ++i) {
    EXPECT_EQ(cluster.engine(i).ring().ring_id, ring_id);
  }
  // Each node's last configuration event is a regular config with 5 members.
  for (int i = 0; i < kNodes; ++i) {
    const auto configs = log.configs(i);
    ASSERT_FALSE(configs.empty());
    EXPECT_FALSE(configs.back().transitional);
    EXPECT_EQ(configs.back().members.size(), static_cast<size_t>(kNodes));
  }
}

TEST(MembershipTest, SingletonDiscovery) {
  SimCluster cluster(1, simnet::FabricParams::one_gig(),
                     fast_membership_config(), ImplProfile::kLibrary);
  EvsLog log(1);
  log.attach(cluster);
  cluster.start_discovery();
  cluster.run_until(util::msec(500));
  EXPECT_TRUE(cluster.engine(0).operational());
  EXPECT_EQ(cluster.engine(0).ring().size(), 1u);
}

TEST(MembershipTest, MessagesFlowAfterDiscovery) {
  const int kNodes = 4;
  SimCluster cluster(kNodes, simnet::FabricParams::one_gig(),
                     fast_membership_config(), ImplProfile::kLibrary, 5);
  EvsLog log(kNodes);
  log.attach(cluster);
  cluster.start_discovery();
  // Submit before the ring even forms; messages queue and flow once up.
  for (int i = 0; i < kNodes; ++i) {
    PayloadStamp stamp{0, static_cast<uint32_t>(i), 0};
    cluster.submit(i, Service::kAgreed, make_payload(64, stamp));
  }
  cluster.run_until(util::sec(2));
  for (int i = 0; i < kNodes; ++i) {
    EXPECT_EQ(log.messages(i).size(), static_cast<size_t>(kNodes));
    EXPECT_EQ(log.messages(i), log.messages(0));
  }
}

TEST(MembershipTest, CrashTriggersReconfiguration) {
  const int kNodes = 5;
  SimCluster cluster(kNodes, simnet::FabricParams::one_gig(),
                     fast_membership_config(), ImplProfile::kLibrary, 9);
  EvsLog log(kNodes);
  log.attach(cluster);
  cluster.start_static();
  cluster.run_until(util::msec(50));

  // Kill node 2.
  cluster.eq().schedule(util::msec(60),
                        [&] { cluster.net().set_host_down(2, true); });
  cluster.run_until(util::sec(3));

  for (int i = 0; i < kNodes; ++i) {
    if (i == 2) continue;
    ASSERT_TRUE(cluster.engine(i).operational()) << "node " << i;
    EXPECT_EQ(cluster.engine(i).ring().size(), static_cast<size_t>(kNodes - 1))
        << "node " << i;
    // EVS: a transitional configuration was delivered before the new
    // regular configuration.
    const auto configs = log.configs(i);
    ASSERT_GE(configs.size(), 3u);  // initial, transitional, regular
    EXPECT_FALSE(configs.back().transitional);
    EXPECT_TRUE(configs[configs.size() - 2].transitional);
    EXPECT_EQ(configs.back().members.size(), static_cast<size_t>(kNodes - 1));
  }
}

TEST(MembershipTest, MessagesSurviveCrashRecovery) {
  const int kNodes = 4;
  SimCluster cluster(kNodes, simnet::FabricParams::one_gig(),
                     fast_membership_config(), ImplProfile::kLibrary, 13);
  EvsLog log(kNodes);
  log.attach(cluster);
  cluster.start_static();

  // Continuous traffic; node 3 dies mid-stream.
  for (int i = 0; i < 100; ++i) {
    cluster.eq().schedule(util::msec(5) + i * util::msec(1), [&cluster, i] {
      const int sender = i % 3;  // survivors only, keeps accounting simple
      PayloadStamp stamp{cluster.eq().now(), static_cast<uint32_t>(sender),
                         static_cast<uint32_t>(i)};
      cluster.submit(sender, Service::kAgreed, make_payload(64, stamp));
    });
  }
  cluster.eq().schedule(util::msec(50),
                        [&] { cluster.net().set_host_down(3, true); });
  cluster.run_until(util::sec(3));

  // All 100 messages from surviving senders are delivered everywhere, in
  // the same total order.
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(log.messages(i).size(), 100u) << "node " << i;
  }
  EXPECT_EQ(log.messages(1), log.messages(0));
  EXPECT_EQ(log.messages(2), log.messages(0));
}

TEST(MembershipTest, PartitionFormsTwoRings) {
  const int kNodes = 6;
  SimCluster cluster(kNodes, simnet::FabricParams::one_gig(),
                     fast_membership_config(), ImplProfile::kLibrary, 31);
  EvsLog log(kNodes);
  log.attach(cluster);
  cluster.start_static();
  cluster.run_until(util::msec(40));

  cluster.eq().schedule(util::msec(50), [&] {
    for (int i = 0; i < kNodes; ++i) {
      cluster.net().set_partition(i, i < 3 ? 0 : 1);
    }
  });
  cluster.run_until(util::sec(3));

  // Two operational rings of 3, one per partition.
  std::set<protocol::RingId> rings;
  for (int i = 0; i < kNodes; ++i) {
    ASSERT_TRUE(cluster.engine(i).operational()) << "node " << i;
    EXPECT_EQ(cluster.engine(i).ring().size(), 3u) << "node " << i;
    rings.insert(cluster.engine(i).ring().ring_id);
  }
  EXPECT_EQ(rings.size(), 2u);
  EXPECT_EQ(cluster.engine(0).ring().ring_id,
            cluster.engine(1).ring().ring_id);
  EXPECT_EQ(cluster.engine(3).ring().ring_id,
            cluster.engine(4).ring().ring_id);
}

TEST(MembershipTest, HealedPartitionMergesWithTraffic) {
  const int kNodes = 6;
  SimCluster cluster(kNodes, simnet::FabricParams::one_gig(),
                     fast_membership_config(), ImplProfile::kLibrary, 37);
  EvsLog log(kNodes);
  log.attach(cluster);
  cluster.start_static();

  cluster.eq().schedule(util::msec(30), [&] {
    for (int i = 0; i < kNodes; ++i) {
      cluster.net().set_partition(i, i < 3 ? 0 : 1);
    }
  });
  cluster.eq().schedule(util::msec(600), [&] { cluster.net().heal(); });
  // Traffic throughout, so the healed halves hear each other's (foreign)
  // multicasts and merge.
  for (int i = 0; i < 300; ++i) {
    cluster.eq().schedule(util::msec(5) + i * util::msec(4), [&cluster, i] {
      const int sender = i % kNodes;
      PayloadStamp stamp{cluster.eq().now(), static_cast<uint32_t>(sender),
                         static_cast<uint32_t>(i)};
      cluster.submit(sender, Service::kAgreed, make_payload(64, stamp));
    });
  }
  cluster.run_until(util::sec(5));

  // Everyone back on one 6-member ring.
  const auto ring_id = cluster.engine(0).ring().ring_id;
  for (int i = 0; i < kNodes; ++i) {
    ASSERT_TRUE(cluster.engine(i).operational()) << "node " << i;
    EXPECT_EQ(cluster.engine(i).ring().size(), static_cast<size_t>(kNodes))
        << "node " << i;
    EXPECT_EQ(cluster.engine(i).ring().ring_id, ring_id) << "node " << i;
  }
}

TEST(MembershipTest, EvsSameConfigSameMessages) {
  // Virtual synchrony: processes that install the same configurations
  // deliver the same messages between them.
  const int kNodes = 4;
  SimCluster cluster(kNodes, simnet::FabricParams::one_gig(),
                     fast_membership_config(), ImplProfile::kLibrary, 41);
  EvsLog log(kNodes);
  log.attach(cluster);
  cluster.start_static();
  for (int i = 0; i < 60; ++i) {
    cluster.eq().schedule(util::msec(2) + i * util::msec(2), [&cluster, i] {
      const int sender = i % 3;
      PayloadStamp stamp{cluster.eq().now(), static_cast<uint32_t>(sender),
                         static_cast<uint32_t>(i)};
      cluster.submit(sender, Service::kSafe, make_payload(64, stamp));
    });
  }
  cluster.eq().schedule(util::msec(60),
                        [&] { cluster.net().set_host_down(3, true); });
  cluster.run_until(util::sec(3));

  // Survivors delivered identical event streams (messages and configs
  // interleaved identically after the initial config).
  for (int i = 1; i < 3; ++i) {
    ASSERT_EQ(log.per_node[i].size(), log.per_node[0].size())
        << "node " << i;
    for (size_t k = 0; k < log.per_node[0].size(); ++k) {
      const auto& a = log.per_node[0][k];
      const auto& b = log.per_node[i][k];
      EXPECT_EQ(a.is_config, b.is_config) << "event " << k;
      if (a.is_config) {
        EXPECT_EQ(a.members, b.members) << "event " << k;
        EXPECT_EQ(a.transitional, b.transitional) << "event " << k;
      } else {
        EXPECT_EQ(a.sender, b.sender) << "event " << k;
        EXPECT_EQ(a.seq, b.seq) << "event " << k;
      }
    }
  }
}

TEST(MembershipTest, LateJoinerMergesIn) {
  const int kNodes = 4;
  SimCluster cluster(kNodes, simnet::FabricParams::one_gig(),
                     fast_membership_config(), ImplProfile::kLibrary, 47);
  EvsLog log(kNodes);
  log.attach(cluster);
  // Nodes 0-2 start immediately; node 3 starts 200 ms later.
  cluster.net().set_host_down(3, true);
  for (int i = 0; i < 3; ++i) {
    cluster.process(i).run_soon(
        [&cluster, i] { cluster.engine(i).start_discovery(); });
  }
  cluster.eq().schedule(util::msec(200), [&] {
    cluster.net().set_host_down(3, false);
    cluster.process(3).run_soon(
        [&cluster] { cluster.engine(3).start_discovery(); });
  });
  cluster.run_until(util::sec(3));
  for (int i = 0; i < kNodes; ++i) {
    ASSERT_TRUE(cluster.engine(i).operational()) << "node " << i;
    EXPECT_EQ(cluster.engine(i).ring().size(), 4u) << "node " << i;
  }
}

}  // namespace
}  // namespace accelring::harness
