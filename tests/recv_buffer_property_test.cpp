// Property sweep on RecvBuffer: for random insertion orders, duplicate
// rates, safe-message mixes, and discard points, the buffer must always
// deliver exactly 1..N in order, never deliver past a gap or an unstable
// Safe message, and never resurrect discarded messages.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "protocol/recv_buffer.hpp"
#include "util/rng.hpp"

namespace accelring::protocol {
namespace {

struct BufferParam {
  uint64_t seed;
  int count;
  double safe_fraction;
  double duplicate_rate;
};

class RecvBufferProperty : public ::testing::TestWithParam<BufferParam> {};

DataMsg msg(SeqNum seq, Service service) {
  DataMsg m;
  m.seq = seq;
  m.pid = static_cast<ProcessId>(seq % 5);
  m.service = service;
  m.round = static_cast<uint64_t>(seq / 7 + 1);
  return m;
}

TEST_P(RecvBufferProperty, InvariantsUnderRandomDrive) {
  const BufferParam param = GetParam();
  util::Rng rng(param.seed);
  RecvBuffer buffer;

  // Decide each message's service up front (the "sender" fixes it).
  std::vector<Service> services(param.count + 1, Service::kAgreed);
  for (int s = 1; s <= param.count; ++s) {
    if (rng.chance(param.safe_fraction)) services[s] = Service::kSafe;
  }

  // Shuffled insertion order with injected duplicates.
  std::vector<SeqNum> order;
  for (SeqNum s = 1; s <= param.count; ++s) order.push_back(s);
  for (size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[rng.below(i)]);
  }

  SeqNum safe_line = 0;
  SeqNum last_delivered = 0;
  std::set<SeqNum> inserted;
  for (size_t i = 0; i < order.size(); ++i) {
    const SeqNum seq = order[i];
    EXPECT_TRUE(buffer.insert(msg(seq, services[seq])));
    inserted.insert(seq);
    if (rng.chance(param.duplicate_rate)) {
      const SeqNum dup = order[rng.below(i + 1)];
      EXPECT_FALSE(buffer.insert(msg(dup, services[dup])))
          << "duplicate " << dup << " accepted";
    }
    // Local aru is exactly the contiguous prefix of what was inserted.
    SeqNum expected_aru = 0;
    while (inserted.contains(expected_aru + 1)) ++expected_aru;
    EXPECT_EQ(buffer.local_aru(), expected_aru);

    // Occasionally raise the safe line and drain deliverables.
    if (rng.chance(0.3)) {
      safe_line = std::min<SeqNum>(
          safe_line + static_cast<SeqNum>(rng.below(6)), buffer.local_aru());
    }
    while (const DataMsg* next = buffer.next_deliverable(safe_line)) {
      EXPECT_EQ(next->seq, last_delivered + 1) << "delivery gap";
      if (requires_safe(next->service)) {
        EXPECT_LE(next->seq, safe_line) << "unstable Safe delivered";
      }
      ++last_delivered;
      buffer.mark_delivered();
    }
    // Occasionally discard; discarded messages never come back.
    if (rng.chance(0.2)) {
      buffer.discard_up_to(safe_line);
      if (safe_line >= 1 && last_delivered >= safe_line) {
        EXPECT_FALSE(buffer.insert(msg(1, services[1])));
      }
    }
  }

  // Final drain with a fully advanced safe line: everything delivers.
  safe_line = static_cast<SeqNum>(param.count);
  while (const DataMsg* next = buffer.next_deliverable(safe_line)) {
    EXPECT_EQ(next->seq, last_delivered + 1);
    ++last_delivered;
    buffer.mark_delivered();
  }
  EXPECT_EQ(last_delivered, param.count);
  EXPECT_EQ(buffer.delivered_up_to(), param.count);
  EXPECT_EQ(buffer.undelivered(), 0u);
}

std::string param_name(const ::testing::TestParamInfo<BufferParam>& info) {
  const BufferParam& p = info.param;
  return "s" + std::to_string(p.seed) + "_n" + std::to_string(p.count) +
         "_safe" + std::to_string(static_cast<int>(p.safe_fraction * 100)) +
         "_dup" + std::to_string(static_cast<int>(p.duplicate_rate * 100));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RecvBufferProperty,
    ::testing::Values(BufferParam{1, 50, 0.0, 0.0},
                      BufferParam{2, 200, 0.0, 0.2},
                      BufferParam{3, 200, 0.3, 0.1},
                      BufferParam{4, 500, 0.5, 0.3},
                      BufferParam{5, 100, 1.0, 0.0},
                      BufferParam{6, 300, 0.1, 0.5},
                      BufferParam{7, 400, 0.25, 0.25},
                      BufferParam{8, 50, 0.9, 0.9},
                      BufferParam{9, 1000, 0.2, 0.1},
                      BufferParam{10, 250, 0.4, 0.0}),
    param_name);

}  // namespace
}  // namespace accelring::protocol
