// Chaos scheduling: the simulator's links are FIFO, but real UDP may
// reorder arbitrarily. This harness wires engines together through a
// scheduler that delivers every in-flight datagram in RANDOM order (no
// loss, unbounded reordering) and checks that safety — total order,
// gap-free delivery, completeness — survives any interleaving, as the paper
// asserts ("decisions about when to process messages of different types can
// impact performance but do not affect the correctness of the protocol").
#include <gtest/gtest.h>

#include <deque>
#include <map>

#include "check/campaign.hpp"
#include "check/client_fleet.hpp"
#include "check/oracle.hpp"
#include "harness/cluster.hpp"
#include "membership/membership.hpp"
#include "protocol/engine.hpp"
#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace accelring::protocol {
namespace {

/// In-flight datagram in the chaos network.
struct Flight {
  ProcessId to = 0;
  SocketId sock = 0;
  std::vector<std::byte> bytes;
};

class ChaosNet;

/// Host that forwards all sends into the chaos network. Timers are inert:
/// with zero loss nothing depends on them for safety.
class ChaosHost final : public Host {
 public:
  ChaosHost(ProcessId self, ChaosNet& net) : self_(self), net_(net) {}

  void multicast(SocketId sock, std::span<const std::byte> data) override;
  void unicast(ProcessId to, SocketId sock, std::span<const std::byte> data,
               Nanos delay) override;
  void deliver(const Delivery& delivery) override {
    delivered.emplace_back(delivery.sender, delivery.seq);
    payloads.push_back(delivery.payload);
  }
  void on_configuration(const ConfigurationChange&) override {}
  void set_timer(TimerKind, Nanos) override {}
  void cancel_timer(TimerKind) override {}
  Nanos now() override { return ++clock_; }

  std::vector<std::pair<ProcessId, SeqNum>> delivered;
  std::vector<std::vector<std::byte>> payloads;

 private:
  ProcessId self_;
  ChaosNet& net_;
  Nanos clock_ = 0;
};

class ChaosNet {
 public:
  explicit ChaosNet(int n, uint64_t seed) : rng_(seed) {
    RingConfig ring;
    ring.ring_id = membership::make_ring_id(1, 0);
    for (int i = 0; i < n; ++i) {
      ring.members.push_back(static_cast<ProcessId>(i));
    }
    ProtocolConfig cfg;
    cfg.accelerated_window = 5;
    cfg.personal_window = 8;
    for (int i = 0; i < n; ++i) {
      hosts.push_back(std::make_unique<ChaosHost>(
          static_cast<ProcessId>(i), *this));
      engines.push_back(std::make_unique<Engine>(static_cast<ProcessId>(i),
                                                 cfg, *hosts[i]));
    }
    for (int i = n - 1; i >= 0; --i) engines[i]->start_with_ring(ring);
  }

  void post(ProcessId to, SocketId sock, std::span<const std::byte> data) {
    in_flight.push_back(Flight{to, sock, util::to_vector(data)});
  }

  /// Deliver one randomly chosen in-flight datagram. Returns false if none.
  bool step() {
    if (in_flight.empty()) return false;
    const size_t pick = rng_.below(in_flight.size());
    Flight flight = std::move(in_flight[pick]);
    in_flight.erase(in_flight.begin() + static_cast<long>(pick));
    engines[flight.to]->on_packet(flight.sock, flight.bytes);
    return true;
  }

  std::vector<std::unique_ptr<ChaosHost>> hosts;
  std::vector<std::unique_ptr<Engine>> engines;
  std::vector<Flight> in_flight;
  util::Rng rng_;
};

void ChaosHost::multicast(SocketId sock, std::span<const std::byte> data) {
  for (size_t i = 0; i < net_.engines.size(); ++i) {
    if (static_cast<ProcessId>(i) == self_) continue;
    net_.post(static_cast<ProcessId>(i), sock, data);
  }
}

void ChaosHost::unicast(ProcessId to, SocketId sock,
                        std::span<const std::byte> data, Nanos) {
  net_.post(to, sock, data);
}

class ChaosSchedule : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ChaosSchedule, SafetyUnderArbitraryReordering) {
  const uint64_t seed = GetParam();
  const int kNodes = 3;
  const int kMessages = 60;
  ChaosNet net(kNodes, seed);

  // Submit everything up front (mixed services); the chaos scheduler then
  // interleaves every packet delivery at random.
  util::Rng traffic_rng(seed * 31 + 7);
  for (int i = 0; i < kMessages; ++i) {
    const int sender = static_cast<int>(traffic_rng.below(kNodes));
    const Service service =
        traffic_rng.chance(0.3) ? Service::kSafe : Service::kAgreed;
    net.engines[sender]->submit(
        service, util::to_vector(util::as_bytes("m" + std::to_string(i))));
  }

  // Run until everyone delivered everything (or a generous step bound).
  for (int steps = 0; steps < 2'000'000; ++steps) {
    if (!net.step()) break;
    bool done = true;
    for (int i = 0; i < kNodes; ++i) {
      done = done && net.hosts[i]->delivered.size() >=
                         static_cast<size_t>(kMessages);
    }
    if (done) break;
  }

  for (int i = 0; i < kNodes; ++i) {
    ASSERT_GE(net.hosts[i]->delivered.size(), static_cast<size_t>(kMessages))
        << "node " << i << " starved, seed " << seed;
  }
  // Total order: common prefix of length kMessages is identical, gap-free.
  for (int i = 0; i < kNodes; ++i) {
    for (int k = 0; k < kMessages; ++k) {
      EXPECT_EQ(net.hosts[i]->delivered[k], net.hosts[0]->delivered[k])
          << "node " << i << " position " << k << " seed " << seed;
      EXPECT_EQ(net.hosts[i]->delivered[k].second,
                static_cast<SeqNum>(k + 1));
      EXPECT_EQ(net.hosts[i]->payloads[k], net.hosts[0]->payloads[k]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosSchedule,
                         ::testing::Range<uint64_t>(1, 26),
                         [](const ::testing::TestParamInfo<uint64_t>& param) {
                           return "seed" + std::to_string(param.param);
                         });

}  // namespace
}  // namespace accelring::protocol

namespace accelring::check {
namespace {

/// Reconnect storm: a large client fleet rides through two daemons crashing
/// and cold-restarting back to back. Every client on the crashed nodes must
/// find its replacement daemon through the jittered backoff loop, resend its
/// outbox, and the fleet as a whole must end with zero duplicate and zero
/// lost delivered messages (scoped per EVS, see ClientFleet).
class ReconnectStorm : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ReconnectStorm, ManyClientsThroughDaemonCrashRestart) {
  const uint64_t seed = GetParam();
  protocol::ProtocolConfig proto = fast_proto_config();
  harness::SimCluster cluster(5, simnet::FabricParams::one_gig(), proto,
                              harness::ImplProfile::kLibrary, seed);
  ClusterOracle oracle(5);
  oracle.attach(cluster);

  FleetOptions fopt;
  fopt.clients_per_node = 4;  // 20 clients: a storm, not a trickle
  fopt.seed = seed;
  ClientFleet fleet(cluster, fopt);
  cluster.start_static();
  const Nanos horizon = util::msec(300);
  fleet.start(horizon);

  auto crash = [&](int node, Nanos at, Nanos back_at) {
    cluster.eq().schedule_after(at, [&cluster, &oracle, &fleet, node] {
      cluster.crash_node(node);
      oracle.note_crash(node);
      fleet.on_crash(node);
    });
    cluster.eq().schedule_after(back_at, [&cluster, &oracle, &fleet, node] {
      cluster.restart_node(node);
      oracle.note_restart(node);
      fleet.on_restart(node);
    });
  };
  crash(1, util::msec(70), util::msec(120));
  crash(3, util::msec(150), util::msec(200));

  cluster.run_until(horizon + util::msec(400));
  const harness::ClusterStats stats = cluster.stats();
  oracle.finalize(&stats);
  EXPECT_TRUE(oracle.ok()) << oracle.report();

  const FleetReport report = fleet.finalize();
  EXPECT_TRUE(report.ok)
      << "seed " << seed << ": "
      << (report.violations.empty() ? "" : report.violations.front().what);
  // 20 initial connections plus a reconnect for each of the 8 clients that
  // lost their daemon.
  EXPECT_GE(report.reconnects, 28u) << "seed " << seed;
  EXPECT_GT(report.sent, 0u);
  EXPECT_GT(report.delivered, report.sent);  // fan-out across the fleet
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReconnectStorm,
                         ::testing::Range<uint64_t>(1, 6),
                         [](const ::testing::TestParamInfo<uint64_t>& param) {
                           return "seed" + std::to_string(param.param);
                         });

/// Two members turn into CPU stragglers at once. The gray-failure detector
/// works against the ring *median*, so with 2-of-5 degraded the majority
/// still anchors the baseline; both stragglers must be quarantined (one
/// membership change at a time), safety must hold throughout, and the
/// healthy-member audit inside run_schedule must stay clean.
class TwoStragglers : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TwoStragglers, BothAreQuarantinedAndSafetyHolds) {
  const uint64_t seed = GetParam();
  RunOptions opt;  // 5 nodes, 250 ms horizon, gray detection on
  Schedule schedule;
  schedule.scenario = "two_stragglers";
  for (const int node : {1, 3}) {
    FaultEvent e;
    e.at = util::msec(40);
    e.kind = FaultKind::kCpuMultiplier;
    e.node = node;
    e.rate = 10.0;
    schedule.events.push_back(e);
  }
  const RunResult res = run_schedule(opt, schedule, seed);
  EXPECT_TRUE(res.ok) << "seed " << seed << ": " << res.report;
  EXPECT_GE(res.quarantines, 2u) << "seed " << seed;
  EXPECT_GT(res.delivered, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TwoStragglers,
                         ::testing::Range<uint64_t>(1, 6),
                         [](const ::testing::TestParamInfo<uint64_t>& param) {
                           return "seed" + std::to_string(param.param);
                         });

}  // namespace
}  // namespace accelring::check
