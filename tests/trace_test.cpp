// Flight-recorder tests: the tracer itself, and trace-derived *ordering*
// properties of the protocol — most importantly the defining behaviour of
// the Accelerated Ring protocol: the token is passed before the round's
// multicasting completes, and never before its retransmissions.
#include <gtest/gtest.h>

#include "harness/cluster.hpp"
#include "harness/workload.hpp"
#include "util/trace.hpp"

namespace accelring::util {
namespace {

TEST(Tracer, RecordsInOrder) {
  Tracer tracer(8);
  for (int i = 0; i < 5; ++i) {
    tracer.record(i * 10, TraceEvent::kDeliver, i);
  }
  const auto records = tracer.snapshot();
  ASSERT_EQ(records.size(), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(records[i].a, i);
  EXPECT_EQ(tracer.total_recorded(), 5u);
}

TEST(Tracer, WrapsAroundKeepingNewest) {
  Tracer tracer(4);
  for (int i = 0; i < 10; ++i) {
    tracer.record(i, TraceEvent::kDeliver, i);
  }
  const auto records = tracer.snapshot();
  ASSERT_EQ(records.size(), 4u);
  EXPECT_EQ(records.front().a, 6);
  EXPECT_EQ(records.back().a, 9);
  EXPECT_EQ(tracer.total_recorded(), 10u);
}

TEST(Tracer, ClearResets) {
  Tracer tracer(4);
  tracer.record(1, TraceEvent::kTokenRx, 0);
  tracer.clear();
  EXPECT_TRUE(tracer.snapshot().empty());
  EXPECT_EQ(tracer.total_recorded(), 0u);
}

TEST(Tracer, DrainReturnsChronologicalOrderAndEmptiesTheBuffer) {
  Tracer tracer(4);
  for (int i = 0; i < 6; ++i) {
    tracer.record(i, TraceEvent::kDeliver, i);  // wraps: 2..5 survive
  }
  const auto records = tracer.drain();
  ASSERT_EQ(records.size(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(records[i].a, i + 2);
  EXPECT_TRUE(tracer.drain().empty());
  // total_recorded is cumulative across drains.
  EXPECT_EQ(tracer.total_recorded(), 6u);
  tracer.record(99, TraceEvent::kDeliver, 99);
  EXPECT_EQ(tracer.total_recorded(), 7u);
}

TEST(Tracer, RecordsDuringDrainIterationSurviveToTheNextDrain) {
  // Regression: drain() used to clear the buffer after handing out the
  // records, so a consumer whose processing re-entrantly recorded new
  // events (an oracle tracing its own checks) had them destroyed. The
  // buffer must be detached *before* the records are returned.
  Tracer tracer(8);
  for (int i = 0; i < 3; ++i) tracer.record(i, TraceEvent::kDeliver, i);
  const auto first = tracer.drain();
  ASSERT_EQ(first.size(), 3u);
  for (const auto& r : first) {
    // Consumer reacts to each drained record by recording a new one.
    tracer.record(100 + r.a, TraceEvent::kRtrAdd, 100 + r.a);
  }
  const auto second = tracer.drain();
  ASSERT_EQ(second.size(), 3u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(second[static_cast<size_t>(i)].event, TraceEvent::kRtrAdd);
    EXPECT_EQ(second[static_cast<size_t>(i)].a, 100 + i);
  }
  EXPECT_EQ(tracer.total_recorded(), 6u);
}

TEST(Tracer, DrainAfterWrapWithReentrantRecords) {
  // Wraparound plus re-entrant recording: the rotate happens on the
  // detached buffer, so the re-entrant record starts a fresh unwrapped one.
  Tracer tracer(3);
  for (int i = 0; i < 5; ++i) tracer.record(i, TraceEvent::kDeliver, i);
  std::vector<util::TraceRecord> drained;
  for (const auto& r : tracer.drain()) {
    drained.push_back(r);
    tracer.record(r.at, TraceEvent::kDataRx, r.a);
  }
  ASSERT_EQ(drained.size(), 3u);
  EXPECT_EQ(drained.front().a, 2);
  EXPECT_EQ(drained.back().a, 4);
  const auto echoed = tracer.drain();
  ASSERT_EQ(echoed.size(), 3u);
  for (size_t i = 0; i < echoed.size(); ++i) {
    EXPECT_EQ(echoed[i].event, TraceEvent::kDataRx);
    EXPECT_EQ(echoed[i].a, drained[i].a);
  }
}

}  // namespace
}  // namespace accelring::util

namespace accelring::harness {
namespace {

using util::TraceEvent;
using util::Tracer;

/// Run a loaded cluster with a tracer on node 1 and return its records.
std::vector<util::TraceRecord> traced_run(protocol::Variant variant) {
  protocol::ProtocolConfig cfg;
  cfg.variant = variant;
  cfg.accelerated_window = 10;
  cfg.personal_window = 20;
  SimCluster cluster(4, simnet::FabricParams::one_gig(), cfg,
                     ImplProfile::kLibrary, 5);
  Tracer tracer;
  cluster.engine(1).set_tracer(&tracer);
  cluster.start_static();
  for (int i = 0; i < 120; ++i) {
    cluster.eq().schedule(util::usec(100) + i * util::usec(30), [&cluster, i] {
      PayloadStamp stamp{cluster.eq().now(), static_cast<uint32_t>(i % 4),
                         static_cast<uint32_t>(i)};
      cluster.submit(i % 4, protocol::Service::kAgreed,
                     make_payload(600, stamp));
    });
  }
  cluster.run_until(util::msec(100));
  return tracer.snapshot();
}

TEST(ProtocolTrace, AcceleratedSendsAfterPassingTheToken) {
  const auto records = traced_run(protocol::Variant::kAccelerated);
  // The defining property: post-token data sends exist, and each one
  // follows the token send of its round (same timestamp order).
  uint64_t post = 0;
  protocol::Nanos last_token_tx = -1;
  for (const auto& r : records) {
    if (r.event == TraceEvent::kTokenTx) last_token_tx = r.at;
    if (r.event == TraceEvent::kDataTxPost) {
      ++post;
      ASSERT_GE(last_token_tx, 0);
      EXPECT_GE(r.at, last_token_tx);
    }
  }
  EXPECT_GT(post, 0u);
}

TEST(ProtocolTrace, OriginalNeverSendsAfterTheToken) {
  const auto records = traced_run(protocol::Variant::kOriginal);
  uint64_t pre = 0;
  for (const auto& r : records) {
    EXPECT_NE(r.event, TraceEvent::kDataTxPost);
    pre += r.event == TraceEvent::kDataTxPre ? 1 : 0;
  }
  EXPECT_GT(pre, 0u);
}

TEST(ProtocolTrace, RetransmissionsPrecedeTheTokenOfTheirRound) {
  // Force retransmissions with loss, then check every retransmission sits
  // between a token receive and the following token send.
  protocol::ProtocolConfig cfg;
  cfg.variant = protocol::Variant::kAccelerated;
  SimCluster cluster(4, simnet::FabricParams::one_gig(), cfg,
                     ImplProfile::kLibrary, 23);
  cluster.net().set_loss_rate(0.05);
  Tracer tracer;
  cluster.engine(1).set_tracer(&tracer);
  cluster.start_static();
  for (int i = 0; i < 200; ++i) {
    cluster.eq().schedule(util::usec(100) + i * util::usec(40), [&cluster, i] {
      PayloadStamp stamp{cluster.eq().now(), static_cast<uint32_t>(i % 4),
                         static_cast<uint32_t>(i)};
      cluster.submit(i % 4, protocol::Service::kAgreed,
                     make_payload(400, stamp));
    });
  }
  cluster.run_until(util::msec(300));

  const auto records = tracer.snapshot();
  bool in_token_handling = false;
  bool saw_retrans = false;
  protocol::Nanos token_rx_at = 0;
  for (const auto& r : records) {
    if (r.event == TraceEvent::kTokenRx) {
      in_token_handling = true;
      token_rx_at = r.at;
    } else if (r.event == TraceEvent::kTokenTx) {
      in_token_handling = false;
    } else if (r.event == TraceEvent::kRetransTx) {
      saw_retrans = true;
      // All retransmissions happen during token handling, before the pass.
      EXPECT_TRUE(in_token_handling);
      EXPECT_GE(r.at, token_rx_at);
    }
  }
  EXPECT_TRUE(saw_retrans);
}

TEST(ProtocolTrace, DeliveriesAreInSeqOrder) {
  const auto records = traced_run(protocol::Variant::kAccelerated);
  int64_t last_seq = 0;
  uint64_t delivered = 0;
  for (const auto& r : records) {
    if (r.event != TraceEvent::kDeliver) continue;
    EXPECT_EQ(r.a, last_seq + 1);
    last_seq = r.a;
    ++delivered;
  }
  EXPECT_EQ(delivered, 120u);
}

TEST(ProtocolTrace, TokenAlternatesRxTx) {
  const auto records = traced_run(protocol::Variant::kAccelerated);
  int state = 0;  // 0 = expect rx, 1 = expect tx
  for (const auto& r : records) {
    if (r.event == TraceEvent::kTokenRx) {
      EXPECT_EQ(state, 0);
      state = 1;
    } else if (r.event == TraceEvent::kTokenTx) {
      EXPECT_EQ(state, 1);
      state = 0;
    }
  }
}

}  // namespace
}  // namespace accelring::harness
