// Client session failover: duplicate suppression, session frames, and the
// end-to-end contract — a client fleet rides through a daemon crash and cold
// restart with zero duplicate and zero lost delivered messages — plus the
// epoch-store guarantee that a cold restart never recreates a ring id.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "check/campaign.hpp"
#include "check/client_fleet.hpp"
#include "check/oracle.hpp"
#include "daemon/failover_client.hpp"
#include "harness/cluster.hpp"
#include "membership/epoch_store.hpp"
#include "util/bytes.hpp"

namespace accelring {
namespace {

using daemon::decode_session_frame;
using daemon::DuplicateFilter;
using daemon::encode_session_frame;

TEST(DuplicateFilter, FirstObservationIsFresh) {
  DuplicateFilter f;
  EXPECT_FALSE(f.seen(1, 1));
  EXPECT_FALSE(f.seen(1, 2));
  EXPECT_FALSE(f.seen(2, 1));  // other uuid tracked independently
  EXPECT_EQ(f.suppressed(), 0u);
}

TEST(DuplicateFilter, RepeatsAreSuppressed) {
  DuplicateFilter f;
  EXPECT_FALSE(f.seen(7, 1));
  EXPECT_TRUE(f.seen(7, 1));
  EXPECT_TRUE(f.seen(7, 1));
  EXPECT_EQ(f.suppressed(), 2u);
}

TEST(DuplicateFilter, OutOfOrderSeqsStillDeduplicate) {
  DuplicateFilter f;
  EXPECT_FALSE(f.seen(7, 3));
  EXPECT_FALSE(f.seen(7, 1));
  EXPECT_FALSE(f.seen(7, 2));  // floor advances through 1,2,3 now
  EXPECT_TRUE(f.seen(7, 1));
  EXPECT_TRUE(f.seen(7, 2));
  EXPECT_TRUE(f.seen(7, 3));
  EXPECT_FALSE(f.seen(7, 4));
}

TEST(DuplicateFilter, SparseSetIsBoundedByFloorCompaction) {
  DuplicateFilter f;
  // Seq 1 never arrives: the floor stays pinned at 0 while everything above
  // piles into the sparse set — until the compaction bound kicks in.
  const uint64_t n = 4 * DuplicateFilter::kMaxSparse;
  for (uint64_t s = 2; s <= n; ++s) {
    EXPECT_FALSE(f.seen(9, s));
    ASSERT_LE(f.sparse_size(9), DuplicateFilter::kMaxSparse)
        << "sparse set unbounded at seq " << s;
  }
  // The floor jumped over the hole: suppression stays exact for everything
  // actually observed...
  EXPECT_TRUE(f.seen(9, n));
  EXPECT_TRUE(f.seen(9, n - 1));
  // ...and the conceded gap now reads as seen (the documented trade-off).
  EXPECT_TRUE(f.seen(9, 1));
  // Recent contiguous arrivals collapsed into the floor entirely.
  EXPECT_EQ(f.sparse_size(9), 0u);
  EXPECT_FALSE(f.seen(9, n + 1));
}

TEST(SessionFrame, RoundTrips) {
  const auto payload = util::to_vector(util::as_bytes("hello"));
  const auto frame = encode_session_frame(0xABCDEF, 42, payload);
  const auto decoded = decode_session_frame(frame);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->uuid, 0xABCDEFu);
  EXPECT_EQ(decoded->seq, 42u);
  EXPECT_EQ(util::to_vector(decoded->payload), payload);
}

TEST(SessionFrame, RejectsUnframedPayloads) {
  const auto raw = util::to_vector(util::as_bytes("not a frame"));
  EXPECT_FALSE(decode_session_frame(raw).has_value());
  EXPECT_FALSE(decode_session_frame({}).has_value());
}

/// Drives a fleet through one crash + cold restart and returns the verdict.
check::FleetReport crash_restart_run(uint64_t seed, int victim) {
  protocol::ProtocolConfig proto = check::fast_proto_config();
  harness::SimCluster cluster(4, simnet::FabricParams::one_gig(), proto,
                              harness::ImplProfile::kLibrary, seed);
  check::ClusterOracle oracle(4);
  oracle.attach(cluster);
  check::FleetOptions fopt;
  fopt.seed = seed;
  check::ClientFleet fleet(cluster, fopt);
  cluster.start_static();
  fleet.start(util::msec(250));

  cluster.eq().schedule_after(util::msec(80), [&] {
    cluster.crash_node(victim);
    oracle.note_crash(victim);
    fleet.on_crash(victim);
  });
  cluster.eq().schedule_after(util::msec(140), [&] {
    cluster.restart_node(victim);
    oracle.note_restart(victim);
    fleet.on_restart(victim);
  });

  cluster.run_until(util::msec(250) + util::msec(300));
  const harness::ClusterStats stats = cluster.stats();
  oracle.finalize(&stats);
  EXPECT_TRUE(oracle.ok()) << oracle.report();
  return fleet.finalize();
}

TEST(FailoverClient, SurvivesDaemonCrashRestartWithoutDupsOrLoss) {
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    const check::FleetReport report = crash_restart_run(seed, /*victim=*/2);
    EXPECT_TRUE(report.ok) << "seed " << seed << ": "
                           << (report.violations.empty()
                                   ? ""
                                   : report.violations.front().what);
    // The victim's clients connected once, then reconnected after restart.
    EXPECT_GE(report.reconnects,
              static_cast<uint64_t>(4 * 2 + 2)) << "seed " << seed;
    EXPECT_GT(report.sent, 0u);
    EXPECT_GT(report.delivered, 0u);
  }
}

TEST(EpochStore, ColdRestartOfRingCreatorNeverReusesARingId) {
  // Node 0 created the static start ring (epoch 1). Without persisted
  // epochs its cold restart could re-mint ring id (1, 0); the epoch store
  // must push every post-restart ring id strictly past everything seen.
  protocol::ProtocolConfig proto = check::fast_proto_config();
  harness::SimCluster cluster(3, simnet::FabricParams::one_gig(), proto,
                              harness::ImplProfile::kLibrary, 11);
  check::ClusterOracle oracle(3);
  oracle.attach(cluster);

  std::vector<uint64_t> ring_ids;
  cluster.add_on_config(
      [&ring_ids](int node, const protocol::ConfigurationChange& c) {
        if (node == 0 && !c.transitional) ring_ids.push_back(c.config.ring_id);
      });

  cluster.start_static();
  cluster.eq().schedule_after(util::msec(50), [&] {
    cluster.crash_node(0);
    oracle.note_crash(0);
  });
  cluster.eq().schedule_after(util::msec(100), [&] {
    cluster.restart_node(0);
    oracle.note_restart(0);
  });
  cluster.run_until(util::msec(400));

  const harness::ClusterStats stats = cluster.stats();
  oracle.finalize(&stats);
  EXPECT_TRUE(oracle.ok()) << oracle.report();

  // The restarted node delivered at least the initial and one re-formed
  // configuration, all with distinct, strictly increasing epochs.
  ASSERT_GE(ring_ids.size(), 2u);
  for (size_t i = 1; i < ring_ids.size(); ++i) {
    EXPECT_GT(ring_ids[i], ring_ids[i - 1]) << "ring id reused at " << i;
  }
  // The surviving "disk" recorded an epoch past the initial ring's.
  EXPECT_GT(cluster.epoch_store(0).load(), 1u);
}

TEST(FileEpochStore, PersistsAcrossReopen) {
  const std::string path = ::testing::TempDir() + "/accelring_epoch_test";
  std::remove(path.c_str());
  {
    membership::FileEpochStore store(path);
    EXPECT_EQ(store.load(), 0u);
    store.store(7);
    store.store(3);  // regressions are ignored
  }
  {
    membership::FileEpochStore store(path);
    EXPECT_EQ(store.load(), 7u);
  }
  std::remove(path.c_str());
}

TEST(FileEpochStore, CorruptFileTreatedAsAbsentAndRecoverable) {
  const std::string path = ::testing::TempDir() + "/accelring_epoch_corrupt";
  const auto write_raw = [&](const char* bytes, size_t n) {
    FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(bytes, 1, n, f), n);
    std::fclose(f);
  };
  // A torn prefix of a former "4567\n" must NOT load as 45: a silently
  // lowered epoch floor is the stale-ring-id bug the store exists to close.
  write_raw("45", 2);
  {
    membership::FileEpochStore store(path);
    EXPECT_EQ(store.load(), 0u);
  }
  write_raw("not-a-number\n", 13);
  {
    membership::FileEpochStore store(path);
    EXPECT_EQ(store.load(), 0u);
  }
  write_raw("", 0);
  {
    membership::FileEpochStore store(path);
    EXPECT_EQ(store.load(), 0u);
  }
  // Round trip: a store that loaded a corrupt file re-mints and persists a
  // fresh epoch, and the next incarnation reads it back cleanly.
  write_raw("12garbage\n", 10);
  {
    membership::FileEpochStore store(path);
    EXPECT_EQ(store.load(), 0u);
    store.store(9);
  }
  {
    membership::FileEpochStore store(path);
    EXPECT_EQ(store.load(), 9u);
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace accelring
