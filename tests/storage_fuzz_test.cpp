// Crash-point fuzzing of the WAL + checkpoint store: run a fixed workload
// of appends and checkpoints against a SimDisk, cut the power after every
// possible disk-op count (cut_after), recover, and check the durability
// contract at each crash point:
//
//   * prefix, not invention — the recovered lineage is a contiguous prefix
//     of the applied command sequence, never reordered, never containing a
//     command that was not applied;
//   * acked means durable — every operation the store acknowledged (append
//     or save_checkpoint returned true) before the cut is inside the
//     recovered prefix;
//   * recovery is re-entrant — the store keeps accepting appends after
//     recovery, and a second power loss recovers the longer prefix.
//
// The sweep runs under every crash mode (drop-all, torn, reorder) and
// several disk seeds, so torn tails and zero-filled holes are both hit.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "storage/replica_store.hpp"
#include "storage/sim_disk.hpp"

namespace accelring::storage {
namespace {

std::vector<std::byte> blob(const std::string& s) {
  std::vector<std::byte> out(s.size());
  for (size_t i = 0; i < s.size(); ++i) out[i] = static_cast<std::byte>(s[i]);
  return out;
}

std::string str(const std::vector<std::byte>& b) {
  std::string out(b.size(), '\0');
  for (size_t i = 0; i < b.size(); ++i) out[i] = static_cast<char>(b[i]);
  return out;
}

std::string command_payload(uint64_t position) {
  // Varying lengths so torn cuts land mid-record at different offsets.
  std::string s = "cmd-" + std::to_string(position) + "-";
  s.append(position % 7, 'x');
  return s;
}

std::string state_payload(uint64_t position) {
  return "state-" + std::to_string(position);
}

constexpr uint64_t kTotal = 12;          // commands applied by the workload
const uint64_t kCheckpoints[] = {4, 9};  // mid-workload checkpoint positions

// Runs the fixed workload against `store`. Returns the highest position the
// store acknowledged as durable (0 = only the founding checkpoint, or
// nothing if even that failed — the caller distinguishes via `founded`).
struct WorkloadResult {
  bool founded = false;   // founding checkpoint at position 0 acked
  uint64_t acked = 0;     // highest acked-durable position
};

WorkloadResult run_workload(ReplicaStore& store) {
  WorkloadResult out;
  if (store.save_checkpoint(0, blob(state_payload(0)))) {
    out.founded = true;
  }
  for (uint64_t pos = 1; pos <= kTotal; ++pos) {
    if (store.append(blob(command_payload(pos)))) out.acked = pos;
    for (const uint64_t ckpt : kCheckpoints) {
      if (pos == ckpt &&
          store.save_checkpoint(pos, blob(state_payload(pos)))) {
        out.acked = pos;
      }
    }
  }
  return out;
}

// Checks the recovered image against the workload's ground truth.
void check_recovery(const RecoverResult& r, const WorkloadResult& truth,
                    const std::string& context) {
  if (!r.has_state) {
    // Nothing recovered is only legal if nothing was ever acked durable.
    EXPECT_FALSE(truth.founded) << context << ": acked state vanished";
    EXPECT_EQ(truth.acked, 0u) << context << ": acked commands vanished";
    return;
  }
  // The checkpoint must be one the workload actually saved, byte-exact.
  bool known_ckpt = r.position == 0;
  for (const uint64_t ckpt : kCheckpoints) known_ckpt |= r.position == ckpt;
  ASSERT_TRUE(known_ckpt) << context << ": invented checkpoint position "
                          << r.position;
  EXPECT_EQ(str(r.state), state_payload(r.position)) << context;
  // Commands must be the exact contiguous run after the checkpoint.
  const uint64_t end = r.position + r.commands.size();
  ASSERT_LE(end, kTotal) << context << ": invented commands past the end";
  for (size_t i = 0; i < r.commands.size(); ++i) {
    EXPECT_EQ(str(r.commands[i]), command_payload(r.position + 1 + i))
        << context << ": wrong command at position " << (r.position + 1 + i);
  }
  // Every acked position is inside the recovered prefix.
  EXPECT_GE(end, truth.acked) << context << ": acked position lost";
}

TEST(StorageFuzzTest, EveryCrashPointRecoversAnAckedPrefix) {
  for (const CrashMode mode :
       {CrashMode::kDropAll, CrashMode::kTorn, CrashMode::kReorder}) {
    for (uint64_t seed = 1; seed <= 4; ++seed) {
      // Dry run to learn the op count of the full workload on this seed.
      uint64_t total_ops = 0;
      {
        SimDisk disk(seed);
        disk.set_crash_mode(mode);
        ReplicaStore store(disk, "shard0");
        (void)store.recover();
        (void)run_workload(store);
        total_ops = disk.op_count();
      }
      ASSERT_GT(total_ops, 0u);
      for (uint64_t cut = 0; cut <= total_ops; ++cut) {
        const std::string context = std::string(crash_mode_name(mode)) +
                                    " seed=" + std::to_string(seed) +
                                    " cut=" + std::to_string(cut);
        SimDisk disk(seed);
        disk.set_crash_mode(mode);
        disk.cut_after(static_cast<int64_t>(cut));
        WorkloadResult truth;
        {
          ReplicaStore store(disk, "shard0");
          (void)store.recover();
          truth = run_workload(store);
        }
        disk.power_loss();
        ReplicaStore recovered(disk, "shard0");
        const RecoverResult r = recovered.recover();
        check_recovery(r, truth, context);

        // Re-entrancy: recovery normalized the WAL, so the store must keep
        // accepting appends, and a clean second crash must keep them.
        if (!r.has_state) continue;
        const uint64_t end = r.position + r.commands.size();
        if (end >= kTotal) continue;
        ASSERT_TRUE(recovered.append(blob(command_payload(end + 1))))
            << context;
        disk.power_loss();
        ReplicaStore again(disk, "shard0");
        const RecoverResult r2 = again.recover();
        ASSERT_TRUE(r2.has_state) << context;
        EXPECT_EQ(r2.position + r2.commands.size(), end + 1)
            << context << ": post-recovery append lost";
      }
    }
  }
}

TEST(StorageFuzzTest, DesyncedCacheNeverInventsState) {
  // With a lying write cache every ack is suspect; the only guarantee left
  // is prefix-not-invention. Sweep crash points with desync engaged.
  for (const CrashMode mode : {CrashMode::kTorn, CrashMode::kReorder}) {
    for (uint64_t seed = 1; seed <= 4; ++seed) {
      SimDisk disk(seed);
      disk.set_crash_mode(mode);
      disk.set_write_cache_lies(true);
      {
        ReplicaStore store(disk, "shard0");
        (void)store.recover();
        (void)run_workload(store);
      }
      disk.power_loss();
      ReplicaStore recovered(disk, "shard0");
      const RecoverResult r = recovered.recover();
      const std::string context = std::string(crash_mode_name(mode)) +
                                  " desync seed=" + std::to_string(seed);
      if (!r.has_state) continue;  // everything lost: legal under desync
      // Same prefix checks, but no acked floor — acks were lies.
      bool known_ckpt = r.position == 0;
      for (const uint64_t ckpt : kCheckpoints) {
        known_ckpt |= r.position == ckpt;
      }
      ASSERT_TRUE(known_ckpt) << context;
      EXPECT_EQ(str(r.state), state_payload(r.position)) << context;
      const uint64_t end = r.position + r.commands.size();
      ASSERT_LE(end, kTotal) << context;
      for (size_t i = 0; i < r.commands.size(); ++i) {
        EXPECT_EQ(str(r.commands[i]), command_payload(r.position + 1 + i))
            << context;
      }
    }
  }
}

}  // namespace
}  // namespace accelring::storage
