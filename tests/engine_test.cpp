// Unit tests for protocol::Engine driven directly through a mock Host: the
// paper's token-handling rules (§III-A), data handling (§III-B), and
// priority switching (§III-C), without a network or simulator.
#include "protocol/engine.hpp"

#include <gtest/gtest.h>

#include "membership/membership.hpp"
#include "util/bytes.hpp"

namespace accelring::protocol {
namespace {

/// Records every action the engine takes.
class MockHost : public Host {
 public:
  struct Sent {
    bool is_multicast = false;
    ProcessId to = kNoProcess;
    SocketId sock = 0;
    std::vector<std::byte> bytes;
    Nanos delay = 0;
  };

  void multicast(SocketId sock, std::span<const std::byte> data) override {
    sent.push_back(Sent{true, kNoProcess, sock, util::to_vector(data), 0});
  }
  void unicast(ProcessId to, SocketId sock, std::span<const std::byte> data,
               Nanos delay) override {
    sent.push_back(Sent{false, to, sock, util::to_vector(data), delay});
  }
  void deliver(const Delivery& delivery) override {
    delivered.push_back(delivery);
  }
  void on_configuration(const ConfigurationChange& change) override {
    configs.push_back(change);
  }
  void set_timer(TimerKind kind, Nanos delay) override {
    timers[kind] = delay;
  }
  void cancel_timer(TimerKind kind) override { timers.erase(kind); }
  Nanos now() override { return now_value; }

  /// Sent data messages, decoded, in send order.
  [[nodiscard]] std::vector<DataMsg> sent_data() const {
    std::vector<DataMsg> out;
    for (const Sent& s : sent) {
      if (peek_type(s.bytes) == PacketType::kData) {
        if (auto d = decode_data(s.bytes)) out.push_back(*d);
      }
    }
    return out;
  }
  /// Sent tokens, decoded, in send order.
  [[nodiscard]] std::vector<TokenMsg> sent_tokens() const {
    std::vector<TokenMsg> out;
    for (const Sent& s : sent) {
      if (peek_type(s.bytes) == PacketType::kToken) {
        if (auto t = decode_token(s.bytes)) out.push_back(*t);
      }
    }
    return out;
  }
  /// Index in `sent` of the first token (to check pre/post-token ordering).
  [[nodiscard]] int first_token_index() const {
    for (size_t i = 0; i < sent.size(); ++i) {
      if (peek_type(sent[i].bytes) == PacketType::kToken) {
        return static_cast<int>(i);
      }
    }
    return -1;
  }
  void clear() {
    sent.clear();
    delivered.clear();
    configs.clear();
  }

  std::vector<Sent> sent;
  std::vector<Delivery> delivered;
  std::vector<ConfigurationChange> configs;
  std::map<TimerKind, Nanos> timers;
  Nanos now_value = 0;
};

RingConfig ring3() {
  RingConfig ring;
  ring.ring_id = membership::make_ring_id(1, 0);
  ring.members = {0, 1, 2};
  return ring;
}

ProtocolConfig accel_config(uint32_t window) {
  ProtocolConfig cfg;
  cfg.variant = Variant::kAccelerated;
  cfg.accelerated_window = window;
  cfg.personal_window = 20;
  cfg.global_window = 160;
  return cfg;
}

std::vector<std::byte> payload(const std::string& s) {
  return util::to_vector(util::as_bytes(s));
}

TokenMsg token_for(const RingConfig& ring, uint64_t token_id, uint64_t round,
                   SeqNum seq, SeqNum aru) {
  TokenMsg t;
  t.ring_id = ring.ring_id;
  t.token_id = token_id;
  t.round = round;
  t.seq = seq;
  t.aru = aru;
  return t;
}

DataMsg data_from(const RingConfig& ring, ProcessId pid, SeqNum seq,
                  uint64_t round, bool post_token = false,
                  Service service = Service::kAgreed) {
  DataMsg d;
  d.ring_id = ring.ring_id;
  d.pid = pid;
  d.seq = seq;
  d.round = round;
  d.post_token = post_token;
  d.service = service;
  d.payload = payload("m" + std::to_string(seq));
  return d;
}

/// Engine under test as participant 1 of {0,1,2} (non-representative, so
/// tests control the token explicitly).
struct EngineFixture : public ::testing::Test {
  void start(ProtocolConfig cfg) {
    host = std::make_unique<MockHost>();
    engine = std::make_unique<Engine>(1, cfg, *host);
    engine->start_with_ring(ring3());
    host->clear();
  }
  void feed_token(const TokenMsg& t) {
    engine->on_packet(kSockToken, encode(t));
  }
  void feed_data(const DataMsg& d) {
    engine->on_packet(kSockData, encode(d));
  }

  std::unique_ptr<MockHost> host;
  std::unique_ptr<Engine> engine;
};

// --------------------------------------------------------------------------
// Pre/post-token multicasting (§III-A-1, §III-A-3)
// --------------------------------------------------------------------------

TEST_F(EngineFixture, AcceleratedWindowSplitsSending) {
  start(accel_config(3));
  for (int i = 0; i < 8; ++i) engine->submit(Service::kAgreed, payload("x"));
  feed_token(token_for(ring3(), 1, 1, 0, 0));

  // 8 new messages: 5 sent pre-token, 3 post-token.
  const auto data = host->sent_data();
  ASSERT_EQ(data.size(), 8u);
  const int token_at = host->first_token_index();
  ASSERT_GE(token_at, 0);
  EXPECT_EQ(token_at, 5);  // exactly 5 data sends before the token
  for (int i = 0; i < 5; ++i) EXPECT_FALSE(data[i].post_token) << i;
  for (int i = 5; i < 8; ++i) EXPECT_TRUE(data[i].post_token) << i;
  // Sequence numbers are assigned in send order 1..8 regardless of phase.
  for (int i = 0; i < 8; ++i) EXPECT_EQ(data[i].seq, i + 1);
  // The token reflects ALL 8 messages even though 3 were sent after it.
  const auto tokens = host->sent_tokens();
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].seq, 8);
}

TEST_F(EngineFixture, FewMessagesThanWindowAllGoPostToken) {
  start(accel_config(10));
  engine->submit(Service::kAgreed, payload("a"));
  engine->submit(Service::kAgreed, payload("b"));
  feed_token(token_for(ring3(), 1, 1, 0, 0));
  const auto data = host->sent_data();
  ASSERT_EQ(data.size(), 2u);
  EXPECT_EQ(host->first_token_index(), 0);  // token first
  EXPECT_TRUE(data[0].post_token);
  EXPECT_TRUE(data[1].post_token);
}

TEST_F(EngineFixture, OriginalVariantSendsEverythingBeforeToken) {
  ProtocolConfig cfg;
  cfg.variant = Variant::kOriginal;
  cfg.accelerated_window = 15;  // must be ignored
  start(cfg);
  for (int i = 0; i < 6; ++i) engine->submit(Service::kAgreed, payload("x"));
  feed_token(token_for(ring3(), 1, 1, 0, 0));
  const auto data = host->sent_data();
  ASSERT_EQ(data.size(), 6u);
  EXPECT_EQ(host->first_token_index(), 6);  // token after all data
  for (const auto& d : data) EXPECT_FALSE(d.post_token);
}

TEST_F(EngineFixture, PersonalWindowCapsARound) {
  auto cfg = accel_config(5);
  cfg.personal_window = 4;
  start(cfg);
  for (int i = 0; i < 10; ++i) engine->submit(Service::kAgreed, payload("x"));
  feed_token(token_for(ring3(), 1, 1, 0, 0));
  EXPECT_EQ(host->sent_data().size(), 4u);
  EXPECT_EQ(engine->pending(), 6u);
  // Next round sends the next 4.
  feed_token(token_for(ring3(), 2, 2, 4, 4));
  EXPECT_EQ(host->sent_data().size(), 8u);
}

TEST_F(EngineFixture, RetransmissionsAllSentBeforeToken) {
  start(accel_config(2));
  // Receive data 1..3 from p0 so we can answer retransmissions.
  for (SeqNum s = 1; s <= 3; ++s) feed_data(data_from(ring3(), 0, s, 1));
  host->clear();
  engine->submit(Service::kAgreed, payload("new"));
  TokenMsg t = token_for(ring3(), 1, 1, 3, 0);
  t.rtr = {2, 3};
  feed_token(t);

  const auto data = host->sent_data();
  // 2 retransmissions + 1 new message.
  ASSERT_EQ(data.size(), 3u);
  EXPECT_EQ(data[0].seq, 2);
  EXPECT_EQ(data[1].seq, 3);
  // Retransmissions precede the token; they are answered, so the outgoing
  // token's rtr is empty.
  EXPECT_GE(host->first_token_index(), 2);
  const auto tokens = host->sent_tokens();
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_TRUE(tokens[0].rtr.empty());
  EXPECT_EQ(engine->stats().retransmitted, 2u);
}

TEST_F(EngineFixture, UnansweredRtrStaysOnToken) {
  start(accel_config(2));
  TokenMsg t = token_for(ring3(), 1, 1, 5, 0);
  t.rtr = {4, 5};
  feed_token(t);  // we have nothing, can't answer
  const auto tokens = host->sent_tokens();
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].rtr, (std::vector<SeqNum>{4, 5}));
}

// --------------------------------------------------------------------------
// rtr guard (§III-A-2)
// --------------------------------------------------------------------------

TEST_F(EngineFixture, MissingMessagesNotRequestedUntilNextRound) {
  start(accel_config(5));
  // Round 1 token says seq=10; we have nothing. Under acceleration those 10
  // may simply not have been sent yet -> no requests this round.
  feed_token(token_for(ring3(), 1, 1, 10, 0));
  auto tokens = host->sent_tokens();
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_TRUE(tokens[0].rtr.empty());

  // Round 2: now the previous round's seq (10) is the bound; 1..10 still
  // missing -> requested.
  feed_token(token_for(ring3(), 2, 2, 10, 0));
  tokens = host->sent_tokens();
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[1].rtr.size(), 10u);
  EXPECT_EQ(engine->stats().rtr_requested, 10u);
}

TEST_F(EngineFixture, OriginalVariantRequestsImmediately) {
  ProtocolConfig cfg;
  cfg.variant = Variant::kOriginal;
  start(cfg);
  feed_token(token_for(ring3(), 1, 1, 10, 0));
  const auto tokens = host->sent_tokens();
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].rtr.size(), 10u);
}

TEST_F(EngineFixture, ReceivedMessagesNotRequested) {
  start(accel_config(5));
  feed_token(token_for(ring3(), 1, 1, 4, 0));
  feed_data(data_from(ring3(), 0, 1, 1));
  feed_data(data_from(ring3(), 0, 3, 1));
  feed_token(token_for(ring3(), 2, 2, 4, 0));
  const auto tokens = host->sent_tokens();
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[1].rtr, (std::vector<SeqNum>{2, 4}));
}

// --------------------------------------------------------------------------
// aru rules (§III-A-2)
// --------------------------------------------------------------------------

TEST_F(EngineFixture, LowersAruWhenMissingMessages) {
  start(accel_config(5));
  // Token claims seq=5, aru=5 but we only have 1..2.
  feed_data(data_from(ring3(), 0, 1, 1));
  feed_data(data_from(ring3(), 0, 2, 1));
  feed_token(token_for(ring3(), 1, 1, 5, 5));
  const auto tokens = host->sent_tokens();
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].aru, 2);
  EXPECT_EQ(tokens[0].aru_id, 1);  // we lowered it
}

TEST_F(EngineFixture, RaisesOwnLoweredAruWhenCaughtUp) {
  start(accel_config(5));
  feed_data(data_from(ring3(), 0, 1, 1));
  feed_data(data_from(ring3(), 0, 2, 1));
  feed_token(token_for(ring3(), 1, 1, 5, 5));  // we lower to 2

  // Catch up fully, then receive the token back with our id on the aru.
  for (SeqNum s = 3; s <= 5; ++s) feed_data(data_from(ring3(), 0, s, 1));
  TokenMsg t = token_for(ring3(), 2, 2, 5, 2);
  t.aru_id = 1;
  feed_token(t);
  const auto tokens = host->sent_tokens();
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[1].aru, 5);
  EXPECT_EQ(tokens[1].aru_id, kNoProcess);  // fully caught up: id cleared
}

TEST_F(EngineFixture, DoesNotTouchOthersLoweredAru) {
  start(accel_config(5));
  for (SeqNum s = 1; s <= 5; ++s) feed_data(data_from(ring3(), 0, s, 1));
  TokenMsg t = token_for(ring3(), 1, 1, 5, 3);
  t.aru_id = 2;  // someone else lowered it
  feed_token(t);
  const auto tokens = host->sent_tokens();
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].aru, 3);  // untouched: not ours to raise
  EXPECT_EQ(tokens[0].aru_id, 2);
}

TEST_F(EngineFixture, AruTracksSeqWhenEveryoneCaughtUp) {
  start(accel_config(2));
  for (int i = 0; i < 4; ++i) engine->submit(Service::kAgreed, payload("x"));
  // aru == seq on the received token and we're caught up: our new messages
  // advance the aru along with seq.
  feed_token(token_for(ring3(), 1, 1, 0, 0));
  const auto tokens = host->sent_tokens();
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].seq, 4);
  EXPECT_EQ(tokens[0].aru, 4);
}

TEST_F(EngineFixture, AruDoesNotTrackWhenBehind) {
  start(accel_config(2));
  engine->submit(Service::kAgreed, payload("x"));
  // aru (2) < seq (4) on the received token: somebody is missing messages;
  // our additions must not advance the aru.
  feed_data(data_from(ring3(), 0, 1, 1));
  feed_data(data_from(ring3(), 0, 2, 1));
  feed_token(token_for(ring3(), 1, 1, 4, 2));
  const auto tokens = host->sent_tokens();
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].seq, 5);
  EXPECT_EQ(tokens[0].aru, 2);
}

// --------------------------------------------------------------------------
// fcc (§III-A-2)
// --------------------------------------------------------------------------

TEST_F(EngineFixture, FccReplacedEachRound) {
  start(accel_config(0));
  for (int i = 0; i < 7; ++i) engine->submit(Service::kAgreed, payload("x"));
  TokenMsg t = token_for(ring3(), 1, 1, 0, 0);
  t.fcc = 40;  // others' traffic
  feed_token(t);
  auto tokens = host->sent_tokens();
  EXPECT_EQ(tokens[0].fcc, 47u);  // 40 + our 7

  // Next round: token comes back with fcc including our 7; we now send 0.
  TokenMsg t2 = token_for(ring3(), 2, 2, 7, 7);
  t2.fcc = 30;  // others decayed too
  feed_token(t2);
  tokens = host->sent_tokens();
  EXPECT_EQ(tokens[1].fcc, 23u);  // 30 - 7 + 0
}

TEST_F(EngineFixture, GlobalWindowThrottlesSending) {
  auto cfg = accel_config(0);
  cfg.global_window = 50;
  start(cfg);
  for (int i = 0; i < 20; ++i) engine->submit(Service::kAgreed, payload("x"));
  TokenMsg t = token_for(ring3(), 1, 1, 0, 0);
  t.fcc = 45;  // only 5 slots left in the global window
  feed_token(t);
  EXPECT_EQ(host->sent_data().size(), 5u);
}

// --------------------------------------------------------------------------
// Delivery and discard (§III-A-4, §III-B)
// --------------------------------------------------------------------------

TEST_F(EngineFixture, AgreedDeliveredInOrderIncludingOwn) {
  start(accel_config(0));
  engine->submit(Service::kAgreed, payload("mine"));
  feed_data(data_from(ring3(), 0, 1, 1));
  // Token: p0 sent seq 1; we add seq 2. We have 1, so everything delivers.
  feed_token(token_for(ring3(), 1, 1, 1, 1));
  ASSERT_EQ(host->delivered.size(), 2u);
  EXPECT_EQ(host->delivered[0].seq, 1);
  EXPECT_EQ(host->delivered[0].sender, 0);
  EXPECT_EQ(host->delivered[1].seq, 2);
  EXPECT_EQ(host->delivered[1].sender, 1);  // self-delivery
}

TEST_F(EngineFixture, SafeRequiresTwoAruConfirmations) {
  start(accel_config(0));
  feed_data(data_from(ring3(), 0, 1, 1, false, Service::kSafe));
  // Round 1: aru reaches 1 on the token we send. Not yet safe (the safe
  // line is the min of the last TWO sent arus).
  feed_token(token_for(ring3(), 1, 1, 1, 1));
  EXPECT_TRUE(host->delivered.empty());
  // Round 2: second token confirms everyone had aru >= 1 for a full round.
  feed_token(token_for(ring3(), 2, 2, 1, 1));
  ASSERT_EQ(host->delivered.size(), 1u);
  EXPECT_EQ(host->delivered[0].service, Service::kSafe);
}

TEST_F(EngineFixture, AgreedBlockedBehindUndeliveredSafe) {
  start(accel_config(0));
  feed_data(data_from(ring3(), 0, 1, 1, false, Service::kSafe));
  feed_data(data_from(ring3(), 0, 2, 1, false, Service::kAgreed));
  feed_token(token_for(ring3(), 1, 1, 2, 2));
  // Agreed message 2 must wait for Safe message 1.
  EXPECT_TRUE(host->delivered.empty());
  feed_token(token_for(ring3(), 2, 2, 2, 2));
  ASSERT_EQ(host->delivered.size(), 2u);
  EXPECT_EQ(host->delivered[0].seq, 1);
  EXPECT_EQ(host->delivered[1].seq, 2);
}

TEST_F(EngineFixture, StableMessagesDiscardedAndNotRetransmittable) {
  start(accel_config(0));
  for (SeqNum s = 1; s <= 3; ++s) feed_data(data_from(ring3(), 0, s, 1));
  feed_token(token_for(ring3(), 1, 1, 3, 3));
  feed_token(token_for(ring3(), 2, 2, 3, 3));
  host->clear();
  // All three are now stable and discarded; an rtr for them goes unanswered.
  TokenMsg t = token_for(ring3(), 3, 3, 3, 3);
  t.rtr = {1, 2, 3};
  feed_token(t);
  EXPECT_TRUE(host->sent_data().empty());
  const auto tokens = host->sent_tokens();
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].rtr.size(), 3u);
}

// --------------------------------------------------------------------------
// Duplicates and retransmitted tokens
// --------------------------------------------------------------------------

TEST_F(EngineFixture, DuplicateTokenIgnored) {
  start(accel_config(0));
  engine->submit(Service::kAgreed, payload("x"));
  const TokenMsg t = token_for(ring3(), 5, 1, 0, 0);
  feed_token(t);
  const size_t sends = host->sent.size();
  feed_token(t);  // retransmitted duplicate
  EXPECT_EQ(host->sent.size(), sends);
  EXPECT_EQ(engine->stats().duplicates, 1u);
}

TEST_F(EngineFixture, StaleTokenIdIgnored) {
  start(accel_config(0));
  feed_token(token_for(ring3(), 5, 1, 0, 0));
  const size_t sends = host->sent.size();
  feed_token(token_for(ring3(), 3, 1, 0, 0));  // older token id
  EXPECT_EQ(host->sent.size(), sends);
}

TEST_F(EngineFixture, DuplicateDataCounted) {
  start(accel_config(0));
  const auto d = data_from(ring3(), 0, 1, 1);
  feed_data(d);
  feed_data(d);
  EXPECT_EQ(engine->stats().duplicates, 1u);
}

TEST_F(EngineFixture, TokenRetransmitTimerResendsLastToken) {
  start(accel_config(0));
  feed_token(token_for(ring3(), 1, 1, 0, 0));
  ASSERT_EQ(host->sent_tokens().size(), 1u);
  engine->on_timer(kTimerTokenRetransmit);
  const auto tokens = host->sent_tokens();
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[0].token_id, tokens[1].token_id);
  EXPECT_EQ(engine->stats().token_retransmits, 1u);
}

// --------------------------------------------------------------------------
// Priority switching (§III-C)
// --------------------------------------------------------------------------

TEST_F(EngineFixture, DataHasPriorityAfterTokenProcessing) {
  start(accel_config(0));
  feed_token(token_for(ring3(), 1, 1, 0, 0));
  EXPECT_EQ(engine->preferred_socket(), kSockData);
}

TEST_F(EngineFixture, AggressiveRaisesOnAnyPredecessorNextRoundMessage) {
  auto cfg = accel_config(5);
  cfg.priority = PriorityMethod::kAggressive;
  start(cfg);
  feed_token(token_for(ring3(), 1, 1, 0, 0));  // we're in round 1
  // Predecessor (p0) message from round 1 (already seen round): no switch.
  feed_data(data_from(ring3(), 0, 1, 1, /*post_token=*/false));
  EXPECT_EQ(engine->preferred_socket(), kSockData);
  // Predecessor message from round 2 (next round), pre-token: switch.
  feed_data(data_from(ring3(), 0, 5, 2, /*post_token=*/false));
  EXPECT_EQ(engine->preferred_socket(), kSockToken);
}

TEST_F(EngineFixture, ConservativeWaitsForPostTokenMessage) {
  auto cfg = accel_config(5);
  cfg.priority = PriorityMethod::kConservative;
  start(cfg);
  feed_token(token_for(ring3(), 1, 1, 0, 0));
  feed_data(data_from(ring3(), 0, 5, 2, /*post_token=*/false));
  EXPECT_EQ(engine->preferred_socket(), kSockData);  // pre-token: no switch
  feed_data(data_from(ring3(), 0, 6, 2, /*post_token=*/true));
  EXPECT_EQ(engine->preferred_socket(), kSockToken);
}

TEST_F(EngineFixture, NonPredecessorMessagesNeverRaisePriority) {
  auto cfg = accel_config(5);
  cfg.priority = PriorityMethod::kAggressive;
  start(cfg);
  feed_token(token_for(ring3(), 1, 1, 0, 0));
  // p2 is our successor, not predecessor.
  feed_data(data_from(ring3(), 2, 7, 2, true));
  EXPECT_EQ(engine->preferred_socket(), kSockData);
}

TEST_F(EngineFixture, PriorityDropsBackAfterNextToken) {
  auto cfg = accel_config(5);
  cfg.priority = PriorityMethod::kAggressive;
  start(cfg);
  feed_token(token_for(ring3(), 1, 1, 0, 0));
  feed_data(data_from(ring3(), 0, 5, 2));
  EXPECT_EQ(engine->preferred_socket(), kSockToken);
  feed_token(token_for(ring3(), 2, 2, 6, 0));
  EXPECT_EQ(engine->preferred_socket(), kSockData);
}

// --------------------------------------------------------------------------
// Backpressure and idle behaviour
// --------------------------------------------------------------------------

TEST_F(EngineFixture, SubmitBackpressureAtMaxPending) {
  auto cfg = accel_config(0);
  cfg.max_pending = 3;
  start(cfg);
  EXPECT_TRUE(engine->submit(Service::kAgreed, payload("1")));
  EXPECT_TRUE(engine->submit(Service::kAgreed, payload("2")));
  EXPECT_TRUE(engine->submit(Service::kAgreed, payload("3")));
  EXPECT_FALSE(engine->submit(Service::kAgreed, payload("4")));
  EXPECT_EQ(engine->stats().submit_rejected, 1u);
}

TEST_F(EngineFixture, IdleRingHoldsToken) {
  start(accel_config(0));
  // Nothing to send, nothing outstanding: the token should be passed with
  // the idle hold delay.
  feed_token(token_for(ring3(), 1, 1, 0, 0));
  ASSERT_EQ(host->sent.size(), 1u);
  EXPECT_GT(host->sent[0].delay, 0);
  // With pending traffic the token is passed immediately.
  engine->submit(Service::kAgreed, payload("x"));
  feed_token(token_for(ring3(), 2, 2, 0, 0));
  const auto& last = host->sent.back();
  const auto tokens = host->sent_tokens();
  ASSERT_EQ(tokens.size(), 2u);
  // Find the second token send and check no delay.
  for (const auto& s : host->sent) {
    if (peek_type(s.bytes) == PacketType::kToken &&
        decode_token(s.bytes)->token_id == tokens[1].token_id) {
      EXPECT_EQ(s.delay, 0);
    }
  }
  (void)last;
}

TEST_F(EngineFixture, TokenGoesToSuccessor) {
  start(accel_config(0));
  feed_token(token_for(ring3(), 1, 1, 0, 0));
  ASSERT_FALSE(host->sent.empty());
  EXPECT_FALSE(host->sent[0].is_multicast);
  EXPECT_EQ(host->sent[0].to, 2);  // we are 1 in {0,1,2}
  EXPECT_EQ(host->sent[0].sock, kSockToken);
}

TEST_F(EngineFixture, ForeignRingDataDoesNotCrashOrOrder) {
  start(accel_config(0));
  RingConfig other = ring3();
  other.ring_id = membership::make_ring_id(9, 7);
  feed_data(data_from(other, 0, 1, 1));
  EXPECT_TRUE(host->delivered.empty());
  EXPECT_EQ(engine->local_aru(), 0);
}

TEST_F(EngineFixture, RoundCounterBumpedOnlyByRepresentative) {
  start(accel_config(0));  // we are participant 1, not the representative
  feed_token(token_for(ring3(), 1, 7, 0, 0));
  const auto tokens = host->sent_tokens();
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].round, 7u);  // unchanged

  // Representative bumps: build a separate engine as participant 0.
  MockHost rep_host;
  ProtocolConfig cfg = accel_config(0);
  Engine rep(0, cfg, rep_host);
  RingConfig ring;
  ring.ring_id = ring3().ring_id;
  ring.members = {0, 1, 2};
  rep.start_with_ring(ring);
  // start_with_ring originates a token as representative (round becomes 1).
  const auto rep_tokens = rep_host.sent_tokens();
  ASSERT_FALSE(rep_tokens.empty());
  EXPECT_EQ(rep_tokens[0].round, 1u);
}

}  // namespace
}  // namespace accelring::protocol
