// Unit tests for CRC-32 (known-answer vectors + properties).
#include "util/crc32.hpp"

#include <gtest/gtest.h>

#include "util/bytes.hpp"

namespace accelring::util {
namespace {

TEST(Crc32, KnownAnswerCheckString) {
  // The canonical CRC-32 check value: crc32("123456789") == 0xCBF43926.
  EXPECT_EQ(crc32(as_bytes("123456789")), 0xCBF43926u);
}

TEST(Crc32, EmptyInputIsZero) { EXPECT_EQ(crc32({}), 0u); }

TEST(Crc32, SingleBitChangeChangesCrc) {
  std::vector<std::byte> a(64, std::byte{0});
  std::vector<std::byte> b = a;
  b[17] = std::byte{0x01};
  EXPECT_NE(crc32(a), crc32(b));
}

TEST(Crc32, OrderSensitive) {
  EXPECT_NE(crc32(as_bytes("ab")), crc32(as_bytes("ba")));
}

}  // namespace
}  // namespace accelring::util
