// Storage layer unit tests: SimDisk crash/fault semantics (the simnet-style
// deterministic disk), ReplicaStore WAL+checkpoint round-trips with
// torn-write and bit-rot rejection, and the real-file backends (FileDisk,
// FileEpochStore) against an actual temp directory.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "membership/epoch_store.hpp"
#include "storage/epoch_store.hpp"
#include "storage/file_disk.hpp"
#include "storage/replica_store.hpp"
#include "storage/sim_disk.hpp"
#include "util/bytes.hpp"

namespace accelring::storage {
namespace {

std::vector<std::byte> blob(const std::string& s) {
  std::vector<std::byte> out(s.size());
  for (size_t i = 0; i < s.size(); ++i) out[i] = static_cast<std::byte>(s[i]);
  return out;
}

std::string str(const std::vector<std::byte>& b) {
  std::string out(b.size(), '\0');
  for (size_t i = 0; i < b.size(); ++i) out[i] = static_cast<char>(b[i]);
  return out;
}

// ---------------------------------------------------------------------------
// SimDisk durability semantics.

TEST(SimDiskTest, UnsyncedDataDiesAtPowerLoss) {
  SimDisk disk(1);
  ASSERT_EQ(disk.write("f", blob("hello")), IoStatus::kOk);
  ASSERT_EQ(disk.fsync("f"), IoStatus::kOk);
  ASSERT_EQ(disk.fsync_dir(), IoStatus::kOk);
  ASSERT_EQ(disk.append("f", blob(" world")), IoStatus::kOk);  // not fsynced
  disk.power_loss();
  std::vector<std::byte> out;
  ASSERT_EQ(disk.read("f", out), IoStatus::kOk);
  EXPECT_EQ(str(out), "hello");
}

TEST(SimDiskTest, CreationWithoutDirFsyncDiesAtPowerLoss) {
  SimDisk disk(2);
  ASSERT_EQ(disk.write("f", blob("data")), IoStatus::kOk);
  ASSERT_EQ(disk.fsync("f"), IoStatus::kOk);  // data synced, name is not
  disk.power_loss();
  EXPECT_FALSE(disk.exists("f"));
}

TEST(SimDiskTest, RenameWithoutDirFsyncRevertsAtPowerLoss) {
  SimDisk disk(3);
  ASSERT_EQ(disk.write("old", blob("v1")), IoStatus::kOk);
  ASSERT_EQ(disk.fsync("old"), IoStatus::kOk);
  ASSERT_EQ(disk.fsync_dir(), IoStatus::kOk);
  ASSERT_EQ(disk.write("new", blob("v2")), IoStatus::kOk);
  ASSERT_EQ(disk.fsync("new"), IoStatus::kOk);
  ASSERT_EQ(disk.rename("new", "old"), IoStatus::kOk);  // no fsync_dir
  disk.power_loss();
  std::vector<std::byte> out;
  ASSERT_EQ(disk.read("old", out), IoStatus::kOk);
  EXPECT_EQ(str(out), "v1");  // durable namespace still points at v1
  EXPECT_FALSE(disk.exists("new"));
}

TEST(SimDiskTest, FullProtocolSurvivesPowerLoss) {
  SimDisk disk(4);
  ASSERT_EQ(disk.write("f.tmp", blob("payload")), IoStatus::kOk);
  ASSERT_EQ(disk.fsync("f.tmp"), IoStatus::kOk);
  ASSERT_EQ(disk.rename("f.tmp", "f"), IoStatus::kOk);
  ASSERT_EQ(disk.fsync_dir(), IoStatus::kOk);
  disk.power_loss();
  std::vector<std::byte> out;
  ASSERT_EQ(disk.read("f", out), IoStatus::kOk);
  EXPECT_EQ(str(out), "payload");
}

TEST(SimDiskTest, TornModeKeepsOnlyAPrefixOfPendingOps) {
  SimDisk disk(5);
  disk.set_crash_mode(CrashMode::kTorn);
  ASSERT_EQ(disk.write("f", blob("base;")), IoStatus::kOk);
  ASSERT_EQ(disk.fsync("f"), IoStatus::kOk);
  ASSERT_EQ(disk.fsync_dir(), IoStatus::kOk);
  ASSERT_EQ(disk.append("f", blob("aaaa;")), IoStatus::kOk);
  ASSERT_EQ(disk.append("f", blob("bbbb;")), IoStatus::kOk);
  disk.power_loss();
  std::vector<std::byte> out;
  ASSERT_EQ(disk.read("f", out), IoStatus::kOk);
  const std::string got = str(out);
  // Whatever survives must be a (possibly cut) prefix of the full write
  // sequence — torn mode never reorders.
  const std::string full = "base;aaaa;bbbb;";
  EXPECT_TRUE(got.size() <= full.size() && got == full.substr(0, got.size()))
      << "got \"" << got << "\"";
  EXPECT_TRUE(got.size() >= 5) << "durable prefix must survive";
}

TEST(SimDiskTest, ReorderModeZeroFillsGaps) {
  // With many pending appends, reorder mode keeps each independently; a
  // dropped append under a surviving later one leaves a zero-filled gap.
  // Run several seeds so at least one produces a mid-file gap.
  bool saw_gap = false;
  for (uint64_t seed = 1; seed < 30 && !saw_gap; ++seed) {
    SimDisk disk(seed);
    disk.set_crash_mode(CrashMode::kReorder);
    ASSERT_EQ(disk.write("f", blob("")), IoStatus::kOk);
    ASSERT_EQ(disk.fsync("f"), IoStatus::kOk);
    ASSERT_EQ(disk.fsync_dir(), IoStatus::kOk);
    for (int i = 0; i < 8; ++i) {
      ASSERT_EQ(disk.append("f", blob("XXXX")), IoStatus::kOk);
    }
    disk.power_loss();
    std::vector<std::byte> out;
    ASSERT_EQ(disk.read("f", out), IoStatus::kOk);
    const std::string got = str(out);
    // Any byte must be 'X' or NUL, and a NUL below the file end is a gap.
    for (size_t i = 0; i < got.size(); ++i) {
      ASSERT_TRUE(got[i] == 'X' || got[i] == '\0');
      if (got[i] == '\0') saw_gap = true;
    }
  }
  EXPECT_TRUE(saw_gap) << "no seed produced a zero-filled gap";
}

TEST(SimDiskTest, LyingWriteCacheDropsFsyncedDataAtPowerLoss) {
  SimDisk disk(6);
  ASSERT_EQ(disk.write("f", blob("safe")), IoStatus::kOk);
  ASSERT_EQ(disk.fsync("f"), IoStatus::kOk);
  ASSERT_EQ(disk.fsync_dir(), IoStatus::kOk);
  disk.set_write_cache_lies(true);
  ASSERT_EQ(disk.append("f", blob("lost")), IoStatus::kOk);
  ASSERT_EQ(disk.fsync("f"), IoStatus::kOk);  // lies: reports ok, persists nothing
  disk.power_loss();
  std::vector<std::byte> out;
  ASSERT_EQ(disk.read("f", out), IoStatus::kOk);
  EXPECT_EQ(str(out), "safe");
  EXPECT_FALSE(disk.write_cache_lies()) << "power loss clears desync";
}

TEST(SimDiskTest, BitRotOnlyTouchesMatchingDurableFiles) {
  SimDisk disk(7);
  ASSERT_EQ(disk.write("shard0.wal", blob("aaaaaaaa")), IoStatus::kOk);
  ASSERT_EQ(disk.fsync("shard0.wal"), IoStatus::kOk);
  ASSERT_EQ(disk.write("epoch", blob("12345\n")), IoStatus::kOk);
  ASSERT_EQ(disk.fsync("epoch"), IoStatus::kOk);
  ASSERT_EQ(disk.fsync_dir(), IoStatus::kOk);
  const int flipped = disk.flip_bits(4, "shard");
  EXPECT_EQ(flipped, 4);
  std::vector<std::byte> epoch;
  ASSERT_EQ(disk.read("epoch", epoch), IoStatus::kOk);
  EXPECT_EQ(str(epoch), "12345\n") << "prefix filter must protect other files";
  std::vector<std::byte> wal;
  ASSERT_EQ(disk.read("shard0.wal", wal), IoStatus::kOk);
  EXPECT_NE(str(wal), "aaaaaaaa") << "four flipped bits must be visible";
}

TEST(SimDiskTest, CapacityLimitReportsNoSpaceWithoutSideEffects) {
  SimDisk disk(8);
  ASSERT_EQ(disk.write("f", blob("1234")), IoStatus::kOk);
  disk.set_capacity(4);
  EXPECT_EQ(disk.append("f", blob("5678")), IoStatus::kNoSpace);
  std::vector<std::byte> out;
  ASSERT_EQ(disk.read("f", out), IoStatus::kOk);
  EXPECT_EQ(str(out), "1234");
  disk.set_capacity(0);
  EXPECT_EQ(disk.append("f", blob("5678")), IoStatus::kOk);
}

TEST(SimDiskTest, StalledOpsFailThenRecover) {
  SimDisk disk(9);
  disk.stall_ops(2);
  EXPECT_EQ(disk.write("f", blob("x")), IoStatus::kIoError);
  EXPECT_EQ(disk.fsync_dir(), IoStatus::kIoError);
  EXPECT_EQ(disk.write("f", blob("x")), IoStatus::kOk);
}

TEST(SimDiskTest, CutAfterFailsEverythingUntilPowerLoss) {
  SimDisk disk(10);
  disk.cut_after(1);
  EXPECT_EQ(disk.write("f", blob("x")), IoStatus::kOk);  // the 1 allowed op
  EXPECT_EQ(disk.fsync("f"), IoStatus::kIoError);
  EXPECT_EQ(disk.write("g", blob("y")), IoStatus::kIoError);
  EXPECT_TRUE(disk.power_cut());
  disk.power_loss();
  EXPECT_FALSE(disk.power_cut());
  EXPECT_EQ(disk.write("g", blob("y")), IoStatus::kOk);
}

TEST(SimDiskTest, FaultLogRecordsInjections) {
  SimDisk disk(11);
  disk.set_write_cache_lies(true);
  disk.power_loss();
  EXPECT_GE(disk.fault_log().size(), 2u);  // desync + power loss at least
}

// ---------------------------------------------------------------------------
// ReplicaStore: WAL + checkpoint round-trips and corruption rejection.

TEST(ReplicaStoreTest, EmptyDiskRecoversToNothing) {
  SimDisk disk(20);
  ReplicaStore store(disk, "shard0");
  const RecoverResult r = store.recover();
  EXPECT_FALSE(r.has_state);
  EXPECT_TRUE(r.commands.empty());
}

TEST(ReplicaStoreTest, CheckpointPlusWalRoundTripsThroughPowerLoss) {
  SimDisk disk(21);
  {
    ReplicaStore store(disk, "shard0");
    (void)store.recover();
    ASSERT_TRUE(store.save_checkpoint(10, blob("state@10")));
    ASSERT_TRUE(store.append(blob("cmd11")));
    ASSERT_TRUE(store.append(blob("cmd12")));
  }
  disk.power_loss();
  ReplicaStore store(disk, "shard0");
  const RecoverResult r = store.recover();
  ASSERT_TRUE(r.has_state);
  EXPECT_EQ(r.position, 10u);
  EXPECT_EQ(str(r.state), "state@10");
  ASSERT_EQ(r.commands.size(), 2u);
  EXPECT_EQ(str(r.commands[0]), "cmd11");
  EXPECT_EQ(str(r.commands[1]), "cmd12");
  // Recovered store accepts further appends on the normalized WAL.
  EXPECT_TRUE(store.append(blob("cmd13")));
}

TEST(ReplicaStoreTest, NewCheckpointTruncatesWal) {
  SimDisk disk(22);
  ReplicaStore store(disk, "shard0");
  (void)store.recover();
  ASSERT_TRUE(store.save_checkpoint(0, blob("s0")));
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(store.append(blob("c")));
  const uint64_t wal_before = disk.size("shard0.wal");
  ASSERT_TRUE(store.save_checkpoint(5, blob("s5")));
  EXPECT_LT(disk.size("shard0.wal"), wal_before);
  disk.power_loss();
  ReplicaStore fresh(disk, "shard0");
  const RecoverResult r = fresh.recover();
  ASSERT_TRUE(r.has_state);
  EXPECT_EQ(r.position, 5u);
  EXPECT_TRUE(r.commands.empty());
}

TEST(ReplicaStoreTest, TornWalTailIsDroppedNotAccepted) {
  SimDisk disk(23);
  ReplicaStore store(disk, "shard0");
  (void)store.recover();
  ASSERT_TRUE(store.save_checkpoint(0, blob("s")));
  ASSERT_TRUE(store.append(blob("first-command")));
  ASSERT_TRUE(store.append(blob("second-command")));
  // Tear the last record: cut the WAL a few bytes short.
  const uint64_t sz = disk.size("shard0.wal");
  ASSERT_EQ(disk.truncate("shard0.wal", sz - 3), IoStatus::kOk);
  ASSERT_EQ(disk.fsync("shard0.wal"), IoStatus::kOk);
  disk.power_loss();
  ReplicaStore fresh(disk, "shard0");
  const RecoverResult r = fresh.recover();
  ASSERT_TRUE(r.has_state);
  ASSERT_EQ(r.commands.size(), 1u);
  EXPECT_EQ(str(r.commands[0]), "first-command");
  EXPECT_GE(r.dropped_records, 1u);
  EXPECT_TRUE(r.wal_rewritten);
}

TEST(ReplicaStoreTest, ZeroFilledHoleTerminatesTheWalScan) {
  // A reorder-mode crash can zero a dropped append under a surviving later
  // one. crc32("") == 0, so an 8-byte zero run would parse as a valid empty
  // record — recovery must treat it as end-of-log, not step across it.
  SimDisk disk(24);
  ReplicaStore store(disk, "shard0");
  (void)store.recover();
  ASSERT_TRUE(store.save_checkpoint(0, blob("s")));
  ASSERT_TRUE(store.append(blob("aaaaaaaa")));  // 8-byte payload: 16B record
  ASSERT_TRUE(store.append(blob("bbbbbbbb")));
  ASSERT_TRUE(store.append(blob("cccccccc")));
  // Overwrite the middle record (16 bytes at offset header+16) with zeros,
  // exactly what a lost reordered write leaves behind.
  std::vector<std::byte> wal;
  ASSERT_EQ(disk.read("shard0.wal", wal), IoStatus::kOk);
  for (size_t i = 16 + 16; i < 16 + 32; ++i) wal[i] = std::byte{0};
  ASSERT_EQ(disk.write("shard0.wal", wal), IoStatus::kOk);
  ASSERT_EQ(disk.fsync("shard0.wal"), IoStatus::kOk);
  disk.power_loss();
  ReplicaStore fresh(disk, "shard0");
  const RecoverResult r = fresh.recover();
  ASSERT_TRUE(r.has_state);
  ASSERT_EQ(r.commands.size(), 1u) << "scan must stop at the hole";
  EXPECT_EQ(str(r.commands[0]), "aaaaaaaa");
}

TEST(ReplicaStoreTest, EmptyCommandAppendIsRefused) {
  SimDisk disk(25);
  ReplicaStore store(disk, "shard0");
  (void)store.recover();
  ASSERT_TRUE(store.save_checkpoint(0, blob("s")));
  EXPECT_FALSE(store.append({}));
  EXPECT_TRUE(store.wal_broken());
}

TEST(ReplicaStoreTest, BitRottenCheckpointIsRejected) {
  SimDisk disk(26);
  {
    ReplicaStore store(disk, "shard0");
    (void)store.recover();
    ASSERT_TRUE(store.save_checkpoint(7, blob("important state bytes")));
  }
  ASSERT_GT(disk.flip_bits(1, "shard0.ckpt"), 0);
  ReplicaStore fresh(disk, "shard0");
  const RecoverResult r = fresh.recover();
  EXPECT_FALSE(r.has_state) << "a rotten checkpoint must not load";
  EXPECT_TRUE(r.checkpoint_corrupt);
}

TEST(ReplicaStoreTest, BitRottenWalRecordIsDropped) {
  SimDisk disk(27);
  ReplicaStore store(disk, "shard0");
  (void)store.recover();
  ASSERT_TRUE(store.save_checkpoint(0, blob("s")));
  ASSERT_TRUE(store.append(blob("command-payload-one")));
  ASSERT_TRUE(store.append(blob("command-payload-two")));
  // Rot one bit somewhere past the WAL header (offset 16): both records may
  // die (first record hit) or just the second — never an invented command.
  std::vector<std::byte> wal;
  ASSERT_EQ(disk.read("shard0.wal", wal), IoStatus::kOk);
  wal[20] = wal[20] ^ std::byte{0x10};
  ASSERT_EQ(disk.write("shard0.wal", wal), IoStatus::kOk);
  ASSERT_EQ(disk.fsync("shard0.wal"), IoStatus::kOk);
  disk.power_loss();
  ReplicaStore fresh(disk, "shard0");
  const RecoverResult r = fresh.recover();
  ASSERT_TRUE(r.has_state);
  EXPECT_TRUE(r.commands.empty()) << "the rotten first record must not load";
}

TEST(ReplicaStoreTest, AppendFailureLatchesUntilNextCheckpoint) {
  SimDisk disk(28);
  ReplicaStore store(disk, "shard0");
  (void)store.recover();
  ASSERT_TRUE(store.save_checkpoint(0, blob("s")));
  disk.stall_ops(1);  // fails the append's disk write; fsync is short-circuited
  EXPECT_FALSE(store.append(blob("lost")));
  EXPECT_TRUE(store.wal_broken());
  EXPECT_FALSE(store.append(blob("also refused")));  // latched
  ASSERT_TRUE(store.save_checkpoint(2, blob("s2")));  // heals
  EXPECT_FALSE(store.wal_broken());
  EXPECT_TRUE(store.append(blob("accepted again")));
}

// ---------------------------------------------------------------------------
// Real-file backends.

class TempDir {
 public:
  TempDir() {
    char tmpl[] = "/tmp/accelring-storage-XXXXXX";
    dir_ = ::mkdtemp(tmpl);
  }
  ~TempDir() {
    if (!dir_.empty()) {
      const std::string cmd = "rm -rf '" + dir_ + "'";
      (void)::system(cmd.c_str());
    }
  }
  [[nodiscard]] const std::string& path() const { return dir_; }

 private:
  std::string dir_;
};

TEST(FileDiskTest, WriteReadRenameRemoveRoundTrip) {
  TempDir tmp;
  ASSERT_FALSE(tmp.path().empty());
  FileDisk disk(tmp.path() + "/node0");
  ASSERT_EQ(disk.write("f.tmp", blob("content")), IoStatus::kOk);
  ASSERT_EQ(disk.fsync("f.tmp"), IoStatus::kOk);
  ASSERT_EQ(disk.rename("f.tmp", "f"), IoStatus::kOk);
  ASSERT_EQ(disk.fsync_dir(), IoStatus::kOk);
  EXPECT_TRUE(disk.exists("f"));
  EXPECT_FALSE(disk.exists("f.tmp"));
  EXPECT_EQ(disk.size("f"), 7u);
  std::vector<std::byte> out;
  ASSERT_EQ(disk.read("f", out), IoStatus::kOk);
  EXPECT_EQ(str(out), "content");
  ASSERT_EQ(disk.append("f", blob("+more")), IoStatus::kOk);
  ASSERT_EQ(disk.read("f", out), IoStatus::kOk);
  EXPECT_EQ(str(out), "content+more");
  ASSERT_EQ(disk.truncate("f", 7), IoStatus::kOk);
  ASSERT_EQ(disk.read("f", out), IoStatus::kOk);
  EXPECT_EQ(str(out), "content");
  ASSERT_EQ(disk.remove("f"), IoStatus::kOk);
  EXPECT_FALSE(disk.exists("f"));
  EXPECT_EQ(disk.read("f", out), IoStatus::kNotFound);
}

TEST(FileDiskTest, ReplicaStoreRunsUnchangedOnRealFiles) {
  TempDir tmp;
  ASSERT_FALSE(tmp.path().empty());
  FileDisk disk(tmp.path() + "/node0");
  {
    ReplicaStore store(disk, "shard0");
    (void)store.recover();
    ASSERT_TRUE(store.save_checkpoint(3, blob("real-state")));
    ASSERT_TRUE(store.append(blob("real-cmd")));
  }
  FileDisk reopened(tmp.path() + "/node0");
  ReplicaStore store(reopened, "shard0");
  const RecoverResult r = store.recover();
  ASSERT_TRUE(r.has_state);
  EXPECT_EQ(r.position, 3u);
  EXPECT_EQ(str(r.state), "real-state");
  ASSERT_EQ(r.commands.size(), 1u);
  EXPECT_EQ(str(r.commands[0]), "real-cmd");
}

TEST(FileEpochStoreTest, PersistsAcrossReopen) {
  TempDir tmp;
  ASSERT_FALSE(tmp.path().empty());
  const std::string path = tmp.path() + "/epoch";
  {
    membership::FileEpochStore store(path);
    EXPECT_EQ(store.load(), 0u);
    store.store(41);
    store.store(42);
  }
  membership::FileEpochStore reopened(path);
  EXPECT_EQ(reopened.load(), 42u);
}

TEST(DiskEpochStoreTest, CorruptFileLoadsAsAbsentAndMonotonicGuardHolds) {
  SimDisk disk(30);
  ASSERT_EQ(disk.write("epoch", blob("not-a-number\n")), IoStatus::kOk);
  ASSERT_EQ(disk.fsync("epoch"), IoStatus::kOk);
  ASSERT_EQ(disk.fsync_dir(), IoStatus::kOk);
  DiskEpochStore store(disk, "epoch");
  EXPECT_EQ(store.load(), 0u);  // corrupt ⇒ absent, never a boot stopper
  store.store(10);
  store.store(5);  // lower than cached: must not regress
  DiskEpochStore fresh(disk, "epoch");
  EXPECT_EQ(fresh.load(), 10u);
}

}  // namespace
}  // namespace accelring::storage
