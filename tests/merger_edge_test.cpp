// Multi-ring merge edge cases: skip/data interleavings inside one burst,
// excess skip credit, skip-only rotations, merge liveness when every ring
// but one is idle, and skip-daemon failover when the node arming the skips
// (and sole sender of a shard) crashes mid-run.
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "multiring/merger.hpp"
#include "multiring/ring_set.hpp"
#include "util/bytes.hpp"

namespace accelring::multiring {
namespace {

using protocol::Delivery;
using protocol::Service;

Delivery data_msg(protocol::SeqNum seq, uint8_t tag) {
  Delivery d;
  d.seq = seq;
  d.payload = {std::byte{tag}};
  return d;
}

Delivery skip_msg(protocol::SeqNum seq, uint32_t slots) {
  Delivery d;
  d.seq = seq;
  d.payload = make_skip(slots);
  return d;
}

// --- DeterministicMerger unit edges -----------------------------------------

TEST(MergerEdge, SkipAndDataInterleaveWithinOneBurst) {
  // Batch of 3: one real message plus a skip covering 2 slots completes the
  // burst, so the cursor rotates mid-queue and the other ring's waiting
  // message is released before ring 0's remaining data.
  DeterministicMerger merger(2, 3);
  std::vector<std::pair<int, protocol::SeqNum>> out;
  merger.set_on_merged(
      [&out](int ring, const Delivery& d) { out.emplace_back(ring, d.seq); });

  merger.push(1, data_msg(201, 9));
  merger.push(1, data_msg(202, 9));
  merger.push(1, data_msg(203, 9));
  ASSERT_TRUE(out.empty());

  merger.push(0, data_msg(1, 1));
  merger.push(0, skip_msg(2, 2));  // 1 data slot + 2 skip slots = burst done
  merger.push(0, data_msg(3, 1));  // next ring-0 burst, after ring 1's turn

  const std::vector<std::pair<int, protocol::SeqNum>> want = {
      {0, 1}, {1, 201}, {1, 202}, {1, 203}, {0, 3}};
  EXPECT_EQ(out, want);
  EXPECT_EQ(merger.stats().skip_msgs, 1u);
  EXPECT_EQ(merger.stats().skipped_slots, 2u);
}

TEST(MergerEdge, ExcessSkipCreditIsDiscardedNotCarried) {
  // A skip covering more slots than the batch must advance the cursor by
  // exactly one ring: the surplus is dropped identically at every node, so
  // an over-generous skip cannot starve the ring that sent it of turns.
  DeterministicMerger merger(3, 2);
  std::vector<std::pair<int, protocol::SeqNum>> out;
  merger.set_on_merged(
      [&out](int ring, const Delivery& d) { out.emplace_back(ring, d.seq); });

  merger.push(0, skip_msg(1, 7));  // 7 slots against a batch of 2
  EXPECT_EQ(merger.cursor(), 1);
  EXPECT_EQ(merger.stats().rotations, 1u);

  merger.push(1, data_msg(10, 2));
  merger.push(1, data_msg(11, 2));
  EXPECT_EQ(merger.cursor(), 2);
  const std::vector<std::pair<int, protocol::SeqNum>> want = {{1, 10},
                                                              {1, 11}};
  EXPECT_EQ(out, want);
}

TEST(MergerEdge, SkipsAloneRotateThroughEveryRing) {
  DeterministicMerger merger(3, 4);
  uint64_t emitted = 0;
  merger.set_on_merged([&emitted](int, const Delivery&) { ++emitted; });
  for (int r = 0; r < 3; ++r) merger.push(r, skip_msg(1, 4));
  EXPECT_EQ(emitted, 0u);
  EXPECT_EQ(merger.cursor(), 0);  // full rotation, back to the start
  EXPECT_EQ(merger.stats().rotations, 3u);
  EXPECT_EQ(merger.stats().skip_msgs, 3u);
}

TEST(MergerEdge, BackloggedRingFlushesWhenCursorArrives) {
  // Deliveries for a ring the cursor is not on queue up unbounded; the
  // first consumable message on the cursor ring releases the whole backlog
  // in order.
  DeterministicMerger merger(2, 2);
  std::vector<std::pair<int, protocol::SeqNum>> out;
  merger.set_on_merged(
      [&out](int ring, const Delivery& d) { out.emplace_back(ring, d.seq); });
  for (protocol::SeqNum s = 1; s <= 6; ++s) merger.push(1, data_msg(s, 3));
  EXPECT_EQ(merger.queued(1), 6u);
  EXPECT_TRUE(out.empty());

  merger.push(0, skip_msg(1, 2));
  // Ring 1 drains in bursts of 2, yielding back to (empty) ring 0 between
  // them; emptiness lets the rotation keep returning to ring 1.
  EXPECT_EQ(merger.queued(1), 4u);
  merger.push(0, skip_msg(2, 2));
  merger.push(0, skip_msg(3, 2));
  EXPECT_EQ(merger.queued(1), 0u);
  const std::vector<std::pair<int, protocol::SeqNum>> want = {
      {1, 1}, {1, 2}, {1, 3}, {1, 4}, {1, 5}, {1, 6}};
  EXPECT_EQ(out, want);
}

// --- RingSet integration edges ----------------------------------------------

MultiRingConfig edge_config(int rings, uint64_t seed) {
  MultiRingConfig cfg;
  cfg.rings = rings;
  cfg.nodes_per_ring = 4;
  cfg.fabric = simnet::FabricParams::one_gig();
  cfg.merge_batch = 4;
  cfg.proto.timeouts.token_loss = util::msec(30);
  cfg.proto.timeouts.join = util::msec(5);
  cfg.proto.timeouts.consensus = util::msec(60);
  cfg.seed = seed;
  return cfg;
}

std::vector<std::byte> app_payload(uint32_t index) {
  util::Writer w(32);
  w.u8(0x7F);  // outside every layer's frame-tag space
  w.u32(index);
  std::vector<std::byte> out = std::move(w).take();
  out.resize(32);
  return out;
}

TEST(MergerEdge, AllRingsButOneIdle) {
  // K=4 with every message routed to ring 2: the three idle rings must not
  // stall the rotation, and all nodes agree on the merged order.
  RingSet set(edge_config(4, 21));
  std::vector<std::vector<std::pair<int, protocol::SeqNum>>> per_node(4);
  set.set_on_merged([&](int node, int ring, const Delivery& d, Nanos) {
    per_node[static_cast<size_t>(node)].emplace_back(ring, d.seq);
  });
  set.start_static();
  const uint32_t kMessages = 60;
  for (uint32_t i = 0; i < kMessages; ++i) {
    set.eq().schedule(util::usec(400) * (i + 1), [&set, i] {
      set.submit(static_cast<int>(i % 4), /*ring=*/2, Service::kAgreed,
                 app_payload(i));
    });
  }
  set.run_until(util::msec(150));

  ASSERT_EQ(per_node[0].size(), kMessages);
  for (int n = 1; n < 4; ++n) {
    EXPECT_EQ(per_node[static_cast<size_t>(n)], per_node[0]) << "node " << n;
  }
  for (const auto& [ring, seq] : per_node[0]) EXPECT_EQ(ring, 2);
  // The idle rings kept the rotation alive via skips (at least ring 0 must
  // have skipped for any ring-2 message to clear the merge), and the skip
  // backlog the busy phase built up stays bounded: post-traffic, each full
  // rotation consumes one skip per ring per interval, matching production.
  EXPECT_GT(set.merger(0).stats().skip_msgs, 3u);
  for (int r = 0; r < 4; ++r) EXPECT_LT(set.merger(0).queued(r), 64u);
}

TEST(MergerEdge, SoleSenderCrashSkipFailover) {
  // Node 0 is both the sole sender of the ring-0 shard and the node arming
  // every ring's skip daemon. Crashing it must (a) reform all rings without
  // it, (b) hand the skip duty to node 1, and (c) leave the survivors'
  // merged streams identical and live for post-crash traffic.
  RingSet set(edge_config(2, 33));
  std::vector<std::vector<std::tuple<int, uint16_t, protocol::SeqNum>>>
      per_node(4);
  set.set_on_merged([&](int node, int ring, const Delivery& d, Nanos) {
    per_node[static_cast<size_t>(node)].emplace_back(ring, d.sender, d.seq);
  });
  set.start_static();

  // Pre-crash: node 0 alone feeds ring 0.
  for (uint32_t i = 0; i < 20; ++i) {
    set.eq().schedule(util::usec(300) * (i + 1), [&set, i] {
      set.submit(0, /*ring=*/0, Service::kAgreed, app_payload(i));
    });
  }
  uint64_t skips_at_crash = 0;
  set.eq().schedule(util::msec(40), [&set, &skips_at_crash] {
    skips_at_crash = set.merger(1).stats().skip_msgs;
    set.crash_node(0);
  });
  // Post-crash: node 1 feeds ring 0 once the rings have reformed; ring 1
  // stays idle, so progress requires the failover skips.
  size_t merged_at_resume = 0;
  set.eq().schedule(util::msec(300), [&set, &per_node, &merged_at_resume] {
    merged_at_resume = per_node[1].size();
    for (uint32_t i = 0; i < 20; ++i) {
      set.eq().schedule_after(util::usec(300) * (i + 1), [&set, i] {
        set.submit(1, /*ring=*/0, Service::kAgreed, app_payload(100 + i));
      });
    }
  });
  set.run_until(util::msec(600));

  // Survivors merged the post-crash batch...
  EXPECT_GE(per_node[1].size(), merged_at_resume + 20);
  // ...agree with each other...
  EXPECT_EQ(per_node[2], per_node[1]);
  EXPECT_EQ(per_node[3], per_node[1]);
  // ...and the crashed node's stream is a prefix of theirs.
  ASSERT_LE(per_node[0].size(), per_node[1].size());
  for (size_t i = 0; i < per_node[0].size(); ++i) {
    EXPECT_EQ(per_node[0][i], per_node[1][i]) << "position " << i;
  }
  // The skip daemon failed over: skips kept flowing after node 0 died.
  EXPECT_GT(set.merger(1).stats().skip_msgs, skips_at_crash);
  EXPECT_TRUE(set.node_down(0));
}

}  // namespace
}  // namespace accelring::multiring
