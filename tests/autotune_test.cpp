// Tests for adaptive flow control: starting from the untuned defaults the
// paper complains about, the windows grow until the ring carries the load;
// under loss they back off.
#include <gtest/gtest.h>

#include "harness/sweep.hpp"

namespace accelring::harness {
namespace {

TEST(AutoTune, GrowsWindowsUnderBacklog) {
  PointConfig pc;
  pc.nodes = 8;
  pc.offered_mbps = 700;
  pc.warmup = util::msec(150);  // give the tuner time to ramp
  pc.measure = util::msec(300);
  pc.proto = bench_protocol(protocol::Variant::kAccelerated);
  pc.proto.personal_window = 2;  // hopeless untuned start: ~2 msgs/round
  pc.proto.accelerated_window = 1;
  pc.proto.auto_tune = true;
  const PointResult tuned = run_point(pc);
  // Without tuning, personal_window=2 caps throughput far below 700 Mbps.
  pc.proto.auto_tune = false;
  const PointResult untuned = run_point(pc);
  EXPECT_LT(untuned.achieved_mbps, 450.0);
  EXPECT_GT(tuned.achieved_mbps, 650.0);
}

TEST(AutoTune, WindowActuallyAdapts) {
  protocol::ProtocolConfig cfg = bench_protocol(protocol::Variant::kAccelerated);
  cfg.personal_window = 2;
  cfg.accelerated_window = 1;
  cfg.auto_tune = true;
  SimCluster cluster(4, simnet::FabricParams::one_gig(), cfg,
                     ImplProfile::kLibrary);
  cluster.start_static();
  RateInjector::Options opt;
  opt.aggregate_mbps = 600;
  opt.payload_size = 1350;
  opt.stop = util::msec(300);
  RateInjector injector(cluster, opt);
  injector.arm();
  cluster.run_until(util::msec(400));
  EXPECT_GT(cluster.engine(0).config().personal_window, 2u);
  EXPECT_GT(cluster.engine(0).config().accelerated_window, 1u);
}

TEST(AutoTune, BacksOffUnderLoss) {
  protocol::ProtocolConfig cfg = bench_protocol(protocol::Variant::kAccelerated);
  cfg.personal_window = 60;
  cfg.accelerated_window = 45;
  cfg.global_window = 600;
  cfg.auto_tune = true;
  SimCluster cluster(4, simnet::FabricParams::one_gig(), cfg,
                     ImplProfile::kLibrary, 7);
  cluster.net().set_loss_rate(0.05);  // heavy loss: constant retransmission
  cluster.start_static();
  RateInjector::Options opt;
  opt.aggregate_mbps = 500;
  opt.payload_size = 1350;
  opt.stop = util::msec(400);
  RateInjector injector(cluster, opt);
  injector.arm();
  cluster.run_until(util::msec(500));
  EXPECT_LT(cluster.engine(0).config().personal_window, 60u);
}

TEST(AutoTune, RespectsBounds) {
  protocol::ProtocolConfig cfg = bench_protocol(protocol::Variant::kAccelerated);
  cfg.personal_window = 2;
  cfg.auto_tune = true;
  cfg.min_personal_window = 2;
  cfg.max_personal_window = 10;
  SimCluster cluster(4, simnet::FabricParams::one_gig(), cfg,
                     ImplProfile::kLibrary);
  cluster.start_static();
  RateInjector::Options opt;
  opt.aggregate_mbps = 900;  // way beyond what window 10 can carry
  opt.payload_size = 1350;
  opt.stop = util::msec(400);
  RateInjector injector(cluster, opt);
  injector.arm();
  cluster.run_until(util::msec(500));
  EXPECT_LE(cluster.engine(0).config().personal_window, 10u);
  EXPECT_GE(cluster.engine(0).config().personal_window, 2u);
}

}  // namespace
}  // namespace accelring::harness
