// Tests for the measurement harness itself: rate injection, latency
// windows, profile cost accounting — the instruments behind every figure.
#include <gtest/gtest.h>

#include "harness/sweep.hpp"

namespace accelring::harness {
namespace {

TEST(Workload, PayloadStampRoundTrip) {
  PayloadStamp in{123456789, 3, 42};
  const auto payload = make_payload(256, in);
  EXPECT_EQ(payload.size(), 256u);
  PayloadStamp out;
  ASSERT_TRUE(parse_payload(payload, out));
  EXPECT_EQ(out.inject_time, 123456789);
  EXPECT_EQ(out.sender, 3u);
  EXPECT_EQ(out.index, 42u);
}

TEST(Workload, TooShortPayloadRejected) {
  PayloadStamp out;
  std::vector<std::byte> tiny(8);
  EXPECT_FALSE(parse_payload(tiny, out));
}

TEST(Workload, InjectorHitsConfiguredRate) {
  SimCluster cluster(4, simnet::FabricParams::one_gig(), {},
                     ImplProfile::kLibrary);
  cluster.start_static();
  RateInjector::Options opt;
  opt.payload_size = 1000;
  opt.aggregate_mbps = 80;  // 10k msgs/s aggregate
  opt.start = 0;
  opt.stop = util::msec(100);
  RateInjector injector(cluster, opt);
  injector.arm();
  cluster.run_until(util::msec(200));
  // 10000 msgs/s * 0.1s = 1000 messages (+- rounding per node).
  EXPECT_NEAR(static_cast<double>(injector.injected()), 1000.0, 16.0);
}

TEST(LatencyWindow, OnlyCountsInsideWindow) {
  LatencyRecorder recorder(2, util::msec(10), util::msec(20));
  protocol::Delivery d;
  d.payload = make_payload(64, PayloadStamp{0, 0, 0});
  recorder.record(0, d, util::msec(5));   // before window
  recorder.record(0, d, util::msec(15));  // inside
  recorder.record(0, d, util::msec(25));  // after
  EXPECT_EQ(recorder.latency().count(), 1u);
  EXPECT_EQ(recorder.node_messages(0), 1u);
  EXPECT_EQ(recorder.total_messages(), 3u);
}

TEST(LatencyWindow, ThroughputFromWindowedBytes) {
  LatencyRecorder recorder(1, 0, util::msec(100));
  protocol::Delivery d;
  d.payload = make_payload(1250, PayloadStamp{0, 0, 0});
  for (int i = 0; i < 100; ++i) recorder.record(0, d, util::msec(i));
  // 100 * 1250B * 8 bits over 0.1 s = 10 Mbps.
  EXPECT_NEAR(recorder.node_mbps(0), 10.0, 0.01);
}

TEST(RunPoint, LowLoadAchievesOfferedWithSaneLatency) {
  PointConfig pc;
  pc.nodes = 4;
  pc.offered_mbps = 50;
  pc.warmup = util::msec(50);
  pc.measure = util::msec(150);
  const PointResult r = run_point(pc);
  EXPECT_NEAR(r.achieved_mbps, 50.0, 3.0);
  EXPECT_GT(r.mean_latency, 0);
  EXPECT_LT(r.mean_latency, util::msec(5));
  EXPECT_EQ(r.buffer_drops, 0u);
}

TEST(RunPoint, DaemonProfileAddsIpcLatency) {
  PointConfig pc;
  pc.nodes = 4;
  pc.offered_mbps = 50;
  pc.warmup = util::msec(50);
  pc.measure = util::msec(150);
  pc.profile = ImplProfile::kLibrary;
  const PointResult lib = run_point(pc);
  pc.profile = ImplProfile::kDaemon;
  const PointResult daemon = run_point(pc);
  // The daemon path pays one IPC hop on injection and one on delivery.
  const auto ipc = NodeSetup::for_profile(ImplProfile::kDaemon).ipc_latency;
  EXPECT_GT(daemon.mean_latency, lib.mean_latency + ipc);
}

TEST(RunPoint, AcceleratedBeatsOriginalNearSaturation) {
  // The paper's core claim at one point: at 800 Mbps offered on 1GbE the
  // accelerated protocol achieves more with less latency.
  PointConfig pc;
  pc.nodes = 8;
  pc.offered_mbps = 820;
  pc.warmup = util::msec(50);
  pc.measure = util::msec(200);
  pc.proto = bench_protocol(protocol::Variant::kOriginal);
  const PointResult orig = run_point(pc);
  pc.proto = bench_protocol(protocol::Variant::kAccelerated);
  const PointResult accel = run_point(pc);
  EXPECT_GT(accel.achieved_mbps, orig.achieved_mbps);
  EXPECT_LT(accel.mean_latency, orig.mean_latency);
}

TEST(Profiles, SpreadUsesConservativePriorityAndBigHeaders) {
  SimCluster cluster(2, simnet::FabricParams::one_gig(), {},
                     ImplProfile::kSpread);
  EXPECT_EQ(cluster.engine(0).config().priority,
            protocol::PriorityMethod::kConservative);
  EXPECT_GT(cluster.datagram_size(100),
            protocol::DataMsg::encoded_size(100, 0));
}

TEST(Curves, RunCurveProducesOnePointPerLoad) {
  PointConfig pc;
  pc.nodes = 2;
  pc.warmup = util::msec(20);
  pc.measure = util::msec(50);
  const Curve curve = run_curve("test", pc, {20, 40});
  ASSERT_EQ(curve.points.size(), 2u);
  EXPECT_EQ(curve.points[0].offered_mbps, 20);
  EXPECT_EQ(curve.points[1].offered_mbps, 40);
  EXPECT_LT(curve.points[0].achieved_mbps, curve.points[1].achieved_mbps);
}

}  // namespace
}  // namespace accelring::harness
