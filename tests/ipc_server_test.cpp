// Tests for the out-of-process client path: AF_UNIX IPC server +
// RemoteClient over a real two-daemon UDP ring, plus the config parser.
#include "daemon/ipc_server.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <fstream>

#include "daemon/config_file.hpp"
#include "membership/membership.hpp"
#include "transport/udp_transport.hpp"
#include "util/bytes.hpp"

namespace accelring::daemon {
namespace {

std::string unique_path(const char* tag) {
  return "/tmp/accelring-" + std::to_string(::getpid()) + "-" + tag + ".sock";
}

/// Two daemons over loopback UDP, each with an IPC server, one event loop.
struct TwoDaemonStack {
  transport::EventLoop loop;
  std::map<protocol::ProcessId, transport::PeerAddress> peers;
  struct Node {
    std::unique_ptr<transport::UdpTransport> transport;
    std::unique_ptr<protocol::Engine> engine;
    std::unique_ptr<Daemon> daemon;
    std::unique_ptr<IpcServer> ipc;
  };
  std::vector<Node> nodes;

  TwoDaemonStack() {
    const auto base =
        static_cast<uint16_t>(30000 + (::getpid() % 8000) * 2 % 30000);
    for (int i = 0; i < 2; ++i) {
      peers[static_cast<protocol::ProcessId>(i)] = transport::PeerAddress{
          "127.0.0.1", static_cast<uint16_t>(base + i * 2),
          static_cast<uint16_t>(base + i * 2 + 1)};
    }
    protocol::RingConfig ring;
    ring.ring_id = membership::make_ring_id(1, 0);
    ring.members = {0, 1};
    nodes.resize(2);
    for (int i = 0; i < 2; ++i) {
      auto& node = nodes[i];
      node.transport = std::make_unique<transport::UdpTransport>(
          static_cast<protocol::ProcessId>(i), peers, loop);
      node.engine = std::make_unique<protocol::Engine>(
          static_cast<protocol::ProcessId>(i), protocol::ProtocolConfig{},
          *node.transport);
      node.transport->bind(*node.engine);
      node.daemon = std::make_unique<Daemon>(
          static_cast<protocol::ProcessId>(i), *node.engine);
      node.transport->set_deliver(
          [d = node.daemon.get()](const protocol::Delivery& delivery) {
            d->on_delivery(delivery);
          });
      node.transport->set_config(
          [d = node.daemon.get()](const protocol::ConfigurationChange& c) {
            d->on_configuration(c);
          });
      node.ipc = std::make_unique<IpcServer>(
          *node.daemon, loop,
          unique_path(i == 0 ? "d0" : "d1"));
    }
    for (int i = 1; i >= 0; --i) nodes[i].engine->start_with_ring(ring);
  }
};

TEST(IpcServerTest, RemoteClientsChatAcrossDaemons) {
  TwoDaemonStack stack;
  RemoteClient alice(stack.nodes[0].ipc->socket_path(), "alice");
  RemoteClient bob(stack.nodes[1].ipc->socket_path(), "bob");
  stack.loop.run_for(util::msec(100));
  ASSERT_TRUE(alice.complete_handshake());
  ASSERT_TRUE(bob.complete_handshake());
  EXPECT_EQ(stack.nodes[0].ipc->connection_count(), 1u);

  ASSERT_TRUE(alice.join("room"));
  ASSERT_TRUE(bob.join("room"));
  stack.loop.run_for(util::msec(200));

  ASSERT_TRUE(
      alice.send({"room"}, Service::kAgreed,
                 util::to_vector(util::as_bytes("hello from outside"))));
  stack.loop.run_for(util::msec(300));

  // Both clients (including the sender) receive the ordered message, and
  // both saw membership views for the room.
  bool bob_got_message = false;
  for (const auto& ev : bob.poll_events()) {
    if (ev.op == EventOp::kMessage) {
      bob_got_message = true;
      EXPECT_EQ(ev.group, "room");
      EXPECT_EQ(ev.sender, "alice");
      EXPECT_EQ(std::string(reinterpret_cast<const char*>(ev.payload.data()),
                            ev.payload.size()),
                "hello from outside");
    }
  }
  bool alice_got_message = false;
  bool alice_saw_view = false;
  for (const auto& ev : alice.poll_events()) {
    alice_got_message = alice_got_message || ev.op == EventOp::kMessage;
    if (ev.op == EventOp::kView && ev.members.size() == 2) {
      alice_saw_view = true;
    }
  }
  EXPECT_TRUE(bob_got_message);
  EXPECT_TRUE(alice_got_message);
  EXPECT_TRUE(alice_saw_view);
}

TEST(IpcServerTest, DisconnectCleansUpSession) {
  TwoDaemonStack stack;
  {
    RemoteClient transient(stack.nodes[0].ipc->socket_path(), "t");
    stack.loop.run_for(util::msec(100));
    ASSERT_TRUE(transient.complete_handshake());
    EXPECT_EQ(stack.nodes[0].daemon->session_count(), 1u);
  }  // destructor sends kDisconnect and closes the socket
  stack.loop.run_for(util::msec(200));
  EXPECT_EQ(stack.nodes[0].daemon->session_count(), 0u);
  EXPECT_EQ(stack.nodes[0].ipc->connection_count(), 0u);
}

TEST(IpcServerTest, RequestsBeforeHandshakeRejectedClientSide) {
  TwoDaemonStack stack;
  RemoteClient c(stack.nodes[0].ipc->socket_path(), "early");
  // Handshake response not yet consumed: the client refuses to send.
  EXPECT_FALSE(c.join("room"));
  stack.loop.run_for(util::msec(100));
  ASSERT_TRUE(c.complete_handshake());
  EXPECT_TRUE(c.join("room"));
}

// ---------------------------------------------------------------------------
// Config parser
// ---------------------------------------------------------------------------

TEST(ConfigFile, ParsesFullDeployment) {
  ConfigError error;
  const auto config = parse_config_text(R"(
# test deployment
daemon 0 127.0.0.1 4803 4804
daemon 1 10.0.0.2 4803 4804   # trailing comment
protocol accelerated
option personal_window 25
option accelerated_window 18
option token_loss_timeout_ms 250
option packing 1
)",
                                        error);
  ASSERT_TRUE(config.has_value()) << error.message;
  ASSERT_EQ(config->peers.size(), 2u);
  EXPECT_EQ(config->peers.at(1).ip, "10.0.0.2");
  EXPECT_EQ(config->peers.at(0).token_port, 4804);
  EXPECT_EQ(config->proto.variant, protocol::Variant::kAccelerated);
  EXPECT_EQ(config->proto.personal_window, 25u);
  EXPECT_EQ(config->proto.accelerated_window, 18u);
  EXPECT_EQ(config->proto.timeouts.token_loss, util::msec(250));
  EXPECT_TRUE(config->proto.enable_packing);
}

TEST(ConfigFile, OriginalProtocolSelectable) {
  ConfigError error;
  const auto config = parse_config_text(
      "daemon 0 127.0.0.1 1 2\nprotocol original\n", error);
  ASSERT_TRUE(config.has_value());
  EXPECT_EQ(config->proto.variant, protocol::Variant::kOriginal);
}

TEST(ConfigFile, ErrorsCarryLineNumbers) {
  ConfigError error;
  EXPECT_FALSE(parse_config_text("daemon 0 127.0.0.1 1 2\nbogus line\n",
                                 error)
                   .has_value());
  EXPECT_EQ(error.line, 2);

  EXPECT_FALSE(parse_config_text("daemon 0 127.0.0.1 1\n", error).has_value());
  EXPECT_EQ(error.line, 1);

  EXPECT_FALSE(
      parse_config_text("daemon 0 127.0.0.1 1 2\noption nope 5\n", error)
          .has_value());
  EXPECT_EQ(error.line, 2);

  EXPECT_FALSE(parse_config_text("# just a comment\n", error).has_value());
}

TEST(ConfigFile, RejectsDuplicatesAndBadNumbers) {
  ConfigError error;
  EXPECT_FALSE(parse_config_text(
                   "daemon 0 127.0.0.1 1 2\ndaemon 0 127.0.0.1 3 4\n", error)
                   .has_value());
  EXPECT_FALSE(
      parse_config_text("daemon x 127.0.0.1 1 2\n", error).has_value());
  EXPECT_FALSE(
      parse_config_text("daemon 0 127.0.0.1 99999 2\n", error).has_value());
}

TEST(ConfigFile, LoadFromDisk) {
  const std::string path =
      "/tmp/accelring-conf-" + std::to_string(::getpid()) + ".conf";
  {
    std::ofstream out(path);
    out << "daemon 0 127.0.0.1 4000 4001\n";
  }
  ConfigError error;
  const auto config = load_config_file(path, error);
  ASSERT_TRUE(config.has_value());
  EXPECT_EQ(config->peers.size(), 1u);
  ::unlink(path.c_str());

  EXPECT_FALSE(load_config_file("/nonexistent/x.conf", error).has_value());
}

}  // namespace
}  // namespace accelring::daemon
