// Property tests for the consistent-hash ShardMap.
//
// 1. Full coverage: on random maps (ring count, vnode count, active subset),
//    the per-ring ranges tile [0, 2^64-1] exactly — no gap, no overlap,
//    wrap-around arc included — and successor lookup agrees with the tiling
//    for adversarial probes (range endpoints and their neighbours).
// 2. Balance: with the default vnode count, every active ring's ownership
//    stays within a constant factor of its fair share.
// 3. Minimal disruption: applying a plan changes the owner of exactly the
//    keys inside the plan's moves — everything else keeps its ring. Ring
//    add/remove moves only ~1/k of the space, not a full reshuffle.
// 4. Plan/apply consistency: plans compose (apply -> plan -> apply ...) with
//    versions advancing by one, every move's src owns its range when the
//    plan is cut, and removing-then-re-adding a ring restores its exact arcs
//    (vnode_point is a pure function).
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "multiring/shard_map.hpp"
#include "util/rng.hpp"

namespace accelring::multiring {
namespace {

constexpr uint64_t kMax = std::numeric_limits<uint64_t>::max();

std::vector<ShardMap::Range> all_ranges(const ShardMap& map) {
  std::vector<ShardMap::Range> all;
  for (int r = 0; r < map.num_rings(); ++r) {
    const auto ranges = map.ranges_of(r);
    all.insert(all.end(), ranges.begin(), ranges.end());
  }
  std::sort(all.begin(), all.end(),
            [](const auto& a, const auto& b) { return a.lo < b.lo; });
  return all;
}

/// Gap-free, overlap-free tiling of the whole 64-bit space.
void expect_tiles(const ShardMap& map, const char* what) {
  const auto all = all_ranges(map);
  ASSERT_FALSE(all.empty()) << what;
  EXPECT_EQ(all.front().lo, 0u) << what;
  EXPECT_EQ(all.back().hi, kMax) << what;
  for (size_t i = 0; i + 1 < all.size(); ++i) {
    ASSERT_LE(all[i].lo, all[i].hi) << what << " range " << i << " inverted";
    ASSERT_EQ(all[i].hi + 1, all[i + 1].lo)
        << what << " gap/overlap after range " << i;
  }
}

/// Successor lookup and the published ranges agree at `key`.
void expect_lookup_matches(const ShardMap& map, uint64_t key,
                           const char* what) {
  const int owner = map.ring_of_key(key);
  ASSERT_GE(owner, 0) << what;
  ASSERT_LT(owner, map.num_rings()) << what;
  bool contained = false;
  for (const auto& range : map.ranges_of(owner)) {
    contained = contained || range.contains(key);
  }
  EXPECT_TRUE(contained) << what << ": key " << key << " -> ring " << owner
                         << " but not in its ranges";
}

ShardMap random_map(util::Rng& rng) {
  const int rings = 1 + static_cast<int>(rng.below(8));
  const int vnodes = 1 + static_cast<int>(rng.below(96));
  const int active = 1 + static_cast<int>(rng.below(static_cast<uint64_t>(rings)));
  return ShardMap(rings, vnodes, active);
}

TEST(ShardMapFuzz, RandomMapsTileAndLookupAgrees) {
  util::Rng rng(0x5eed);
  for (int iter = 0; iter < 200; ++iter) {
    const ShardMap map = random_map(rng);
    expect_tiles(map, "random map");
    // Adversarial probes: every arc boundary and its neighbours, plus the
    // circle's own edges (the wrap-around arc) and random keys.
    for (const ShardMap::Point& p : map.points()) {
      expect_lookup_matches(map, p.at, "boundary");
      expect_lookup_matches(map, p.at + 1, "boundary+1");
      expect_lookup_matches(map, p.at - 1, "boundary-1");
      EXPECT_EQ(map.ring_of_key(p.at), p.ring)
          << "a point must own its own position";
    }
    expect_lookup_matches(map, 0, "zero");
    expect_lookup_matches(map, kMax, "max");
    for (int probe = 0; probe < 32; ++probe) {
      expect_lookup_matches(map, rng.next(), "random");
    }
    // Inactive rings own nothing; active ones own something.
    for (int r = 0; r < map.num_rings(); ++r) {
      EXPECT_EQ(map.ring_active(r), !map.ranges_of(r).empty());
      EXPECT_EQ(map.ring_active(r), map.owned_fraction(r) > 0.0);
    }
  }
}

TEST(ShardMapFuzz, WrapAroundArcBelongsToFirstPoint) {
  // The arc (last point, 2^64-1] ∪ [0, first point] wraps; keys on both
  // sides of the wrap must resolve to the first point's ring.
  for (int k : {2, 3, 5, 8}) {
    ShardMap map(k);
    const auto& pts = map.points();
    ASSERT_FALSE(pts.empty());
    EXPECT_EQ(map.ring_of_key(0), pts.front().ring);
    EXPECT_EQ(map.ring_of_key(pts.front().at), pts.front().ring);
    EXPECT_EQ(map.ring_of_key(kMax), pts.front().ring)
        << "keys past the last point wrap to the first point's ring";
    EXPECT_EQ(map.ring_of_key(pts.back().at + 1), pts.front().ring);
  }
}

TEST(ShardMapFuzz, DefaultVnodesBoundTheImbalance) {
  // With kDefaultVnodes the largest share stays within 2x of ideal and the
  // smallest within a third — the bound the routing layer's spread tests
  // and the rebalance heuristic rely on.
  for (int k : {2, 3, 4, 6, 8}) {
    ShardMap map(k);
    const double ideal = 1.0 / k;
    double total = 0;
    for (int r = 0; r < k; ++r) {
      const double f = map.owned_fraction(r);
      EXPECT_LT(f, 2.0 * ideal) << "rings=" << k << " ring " << r;
      EXPECT_GT(f, ideal / 3.0) << "rings=" << k << " ring " << r;
      total += f;
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

/// Owner of every probe key, for before/after disruption comparisons.
std::vector<int> owners(const ShardMap& map, const std::vector<uint64_t>& keys) {
  std::vector<int> out;
  out.reserve(keys.size());
  for (const uint64_t key : keys) out.push_back(map.ring_of_key(key));
  return out;
}

TEST(ShardMapFuzz, PlansMoveExactlyWhatTheyClaim) {
  util::Rng rng(0x6d0e);
  for (int iter = 0; iter < 120; ++iter) {
    ShardMap map = random_map(rng);
    std::vector<uint64_t> keys;
    for (int i = 0; i < 256; ++i) keys.push_back(rng.next());
    const std::vector<int> before = owners(map, keys);

    MigrationPlan plan;
    switch (rng.below(3)) {
      case 0: {
        const int ring = static_cast<int>(rng.below(
            static_cast<uint64_t>(map.num_rings())));
        plan = map.ring_active(ring) ? map.plan_remove_ring(ring)
                                     : map.plan_add_ring(ring);
        break;
      }
      case 1: {
        const int src = static_cast<int>(rng.below(
            static_cast<uint64_t>(map.num_rings())));
        const int dst = static_cast<int>(rng.below(
            static_cast<uint64_t>(map.num_rings())));
        plan = map.plan_move_fraction(src, dst, 0.05 + 0.9 * rng.uniform());
        break;
      }
      default: {
        const int ring = static_cast<int>(rng.below(
            static_cast<uint64_t>(map.num_rings())));
        plan = map.plan_add_ring(ring);  // no-op if already active
        break;
      }
    }

    const uint64_t v = map.version();
    if (plan.empty()) {
      map.apply(plan);
      EXPECT_EQ(map.version(), v) << "empty plan must not bump the version";
      EXPECT_EQ(owners(map, keys), before);
      continue;
    }
    // Every move's src must own its range when the plan is cut.
    for (const MigrationMove& mv : plan.moves) {
      ASSERT_LE(mv.range.lo, mv.range.hi);
      ASSERT_NE(mv.src, mv.dst);
      EXPECT_EQ(map.ring_of_key(mv.range.lo), mv.src);
      EXPECT_EQ(map.ring_of_key(mv.range.hi), mv.src);
    }
    map.apply(plan);
    EXPECT_EQ(map.version(), v + 1);
    // Minimal disruption: a key changes owner iff a move contains it, and
    // then to exactly the move's dst.
    for (size_t i = 0; i < keys.size(); ++i) {
      const MigrationMove* mv = plan.move_of(keys[i]);
      const int after = map.ring_of_key(keys[i]);
      if (mv == nullptr) {
        EXPECT_EQ(after, before[i]) << "iter " << iter << ": unmoved key "
                                    << keys[i] << " changed owner";
      } else {
        EXPECT_EQ(before[i], mv->src) << "iter " << iter;
        EXPECT_EQ(after, mv->dst) << "iter " << iter;
      }
    }
    expect_tiles(map, "post-apply");
  }
}

TEST(ShardMapFuzz, AddOrRemoveDisruptsAboutOneKth) {
  // Consistent hashing's headline property: ring add/remove moves ~1/k of
  // the space, never a reshuffle. (A modulo map would move (k-1)/k.)
  for (int k : {3, 4, 6, 8}) {
    ShardMap map(k, ShardMap::kDefaultVnodes, k - 1);
    const MigrationPlan add = map.plan_add_ring(k - 1);
    double moved = 0;
    for (const MigrationMove& mv : add.moves) {
      moved += static_cast<double>(mv.range.hi - mv.range.lo) /
               static_cast<double>(kMax);
    }
    const double ideal = 1.0 / k;
    EXPECT_LT(moved, 2.0 * ideal) << "rings=" << k;
    EXPECT_GT(moved, ideal / 3.0) << "rings=" << k;
  }
}

TEST(ShardMapFuzz, RemoveThenReAddRestoresExactOwnership) {
  util::Rng rng(0xabcd);
  for (int iter = 0; iter < 60; ++iter) {
    ShardMap map = random_map(rng);
    if (map.active_rings() < 2) continue;
    int victim = -1;
    for (int r = 0; r < map.num_rings(); ++r) {
      if (map.ring_active(r)) victim = r;
    }
    ASSERT_GE(victim, 0);
    std::vector<uint64_t> keys;
    for (int i = 0; i < 128; ++i) keys.push_back(rng.next());
    const std::vector<int> before = owners(map, keys);
    const auto points_before = map.points();

    map.apply(map.plan_remove_ring(victim));
    EXPECT_FALSE(map.ring_active(victim));
    map.apply(map.plan_add_ring(victim));
    EXPECT_TRUE(map.ring_active(victim));
    // vnode_point is a pure function of (ring, v): the round trip is exact.
    EXPECT_EQ(map.points(), points_before) << "iter " << iter;
    EXPECT_EQ(owners(map, keys), before) << "iter " << iter;
  }
}

TEST(ShardMapFuzz, LastActiveRingCannotBeRemoved) {
  ShardMap map(4, 8, 1);
  EXPECT_EQ(map.active_rings(), 1);
  EXPECT_TRUE(map.plan_remove_ring(0).empty());
  map.apply(map.plan_remove_ring(0));
  EXPECT_EQ(map.active_rings(), 1);
  EXPECT_EQ(map.version(), 0u);
}

TEST(ShardMapFuzz, VnodePointIsDeterministic) {
  // The canonical point positions are part of the deployment contract (all
  // nodes must agree); pin a few so accidental hash changes fail loudly.
  for (int ring = 0; ring < 4; ++ring) {
    for (int v = 0; v < 8; ++v) {
      EXPECT_EQ(ShardMap::vnode_point(ring, v), ShardMap::vnode_point(ring, v));
    }
  }
  ShardMap a(4), b(4);
  EXPECT_EQ(a.points(), b.points());
  EXPECT_EQ(ShardMap(3, 16, 2).points(), ShardMap(3, 16, 2).points());
}

}  // namespace
}  // namespace accelring::multiring
