// KvStateMachine unit tests: codec round-trips, session dedup, CAS
// semantics, scan digests, snapshot/restore fidelity, and determinism of
// two machines fed the same command sequence.
#include <gtest/gtest.h>

#include <vector>

#include "daemon/failover_client.hpp"
#include "kv/command.hpp"
#include "kv/state_machine.hpp"

namespace accelring::kv {
namespace {

std::vector<std::byte> frame(uint64_t uuid, uint64_t seq, const KvOp& op) {
  return daemon::encode_session_frame(uuid, seq, encode_op(op));
}

KvOp put_op(std::string key, std::string value) {
  KvOp op;
  op.type = OpType::kPut;
  op.key = std::move(key);
  op.value = std::move(value);
  return op;
}

KvOp get_op(std::string key) {
  KvOp op;
  op.type = OpType::kGet;
  op.key = std::move(key);
  return op;
}

TEST(KvCommand, OpAndResultCodecsRoundTrip) {
  KvOp op;
  op.type = OpType::kCas;
  op.key = "alpha";
  op.value = "new-value";
  op.expect = "old-value";
  op.scan_limit = 42;
  auto decoded = decode_op(encode_op(op));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->type, OpType::kCas);
  EXPECT_EQ(decoded->key, "alpha");
  EXPECT_EQ(decoded->value, "new-value");
  EXPECT_EQ(decoded->expect, "old-value");
  EXPECT_EQ(decoded->scan_limit, 42u);

  KvResult result;
  result.status = Status::kCasMismatch;
  result.value = "observed";
  result.scan_count = 7;
  result.scan_crc = 0xdeadbeef;
  auto round = decode_result(encode_result(result));
  ASSERT_TRUE(round.has_value());
  EXPECT_EQ(round->status, Status::kCasMismatch);
  EXPECT_EQ(round->value, "observed");
  EXPECT_EQ(round->scan_count, 7u);
  EXPECT_EQ(round->scan_crc, 0xdeadbeefu);

  EXPECT_FALSE(decode_op({}).has_value());
}

TEST(KvStateMachine, BasicMutationsAndReads) {
  KvStateMachine m;
  m.apply(frame(1, 1, put_op("a", "1")));
  m.apply(frame(1, 2, put_op("b", "2")));
  EXPECT_EQ(m.version(), 2u);
  ASSERT_NE(m.get("a"), nullptr);
  EXPECT_EQ(*m.get("a"), "1");

  KvResult read = m.execute_read(get_op("b"));
  EXPECT_EQ(read.status, Status::kOk);
  EXPECT_EQ(read.value, "2");
  EXPECT_EQ(m.execute_read(get_op("missing")).status, Status::kNotFound);

  KvOp del;
  del.type = OpType::kDel;
  del.key = "a";
  m.apply(frame(1, 3, del));
  EXPECT_EQ(m.get("a"), nullptr);
  EXPECT_EQ(m.version(), 3u);
  // Deleting again is a no-op mutation: version must not advance.
  m.apply(frame(1, 4, del));
  EXPECT_EQ(m.version(), 3u);
}

TEST(KvStateMachine, CasAppliesOnlyOnExpectedValue) {
  KvStateMachine m;
  m.apply(frame(9, 1, put_op("k", "v1")));

  KvOp cas;
  cas.type = OpType::kCas;
  cas.key = "k";
  cas.expect = "wrong";
  cas.value = "v2";
  m.apply(frame(9, 2, cas));
  EXPECT_EQ(*m.get("k"), "v1") << "mismatched CAS must not write";
  EXPECT_EQ(m.version(), 1u);

  cas.expect = "v1";
  m.apply(frame(9, 3, cas));
  EXPECT_EQ(*m.get("k"), "v2");
  EXPECT_EQ(m.version(), 2u);
}

TEST(KvStateMachine, DuplicateMutationsReplayCachedResult) {
  KvStateMachine m;
  std::vector<AppliedOp> seen;
  m.set_on_apply([&seen](const AppliedOp& op) {
    AppliedOp copy = op;
    copy.key = nullptr;  // key pointer is callback-scoped
    seen.push_back(copy);
  });

  m.apply(frame(5, 1, put_op("x", "first")));
  m.apply(frame(5, 2, put_op("x", "second")));
  // A retransmit of seq 1 after the session floor advanced: the machine
  // must answer from the cache of seq 2 (its latest mutation result),
  // not re-execute the stale write.
  m.apply(frame(5, 1, put_op("x", "first")));
  EXPECT_EQ(*m.get("x"), "second");
  EXPECT_EQ(m.version(), 2u);
  EXPECT_EQ(m.dup_suppressed(), 1u);

  ASSERT_EQ(seen.size(), 3u);
  EXPECT_FALSE(seen[0].duplicate);
  EXPECT_FALSE(seen[1].duplicate);
  EXPECT_TRUE(seen[2].duplicate);
  EXPECT_FALSE(seen[2].mutated);

  // seq 0 marks an unsessioned command: never deduplicated.
  m.apply(frame(5, 0, put_op("y", "a")));
  m.apply(frame(5, 0, put_op("y", "b")));
  EXPECT_EQ(*m.get("y"), "b");
  EXPECT_EQ(m.dup_suppressed(), 1u);
}

TEST(KvStateMachine, ScanDigestsAreOrderAndContentSensitive) {
  KvStateMachine m;
  m.apply(frame(2, 1, put_op("user:1", "alice")));
  m.apply(frame(2, 2, put_op("user:2", "bob")));
  m.apply(frame(2, 3, put_op("zz", "other")));

  // Scans walk up to scan_limit pairs starting at lower_bound(key).
  KvOp scan;
  scan.type = OpType::kScan;
  scan.key = "user:";
  scan.scan_limit = 10;
  KvResult r1 = m.execute_read(scan);
  EXPECT_EQ(r1.scan_count, 3u);

  scan.scan_limit = 2;
  KvResult r2 = m.execute_read(scan);
  EXPECT_EQ(r2.scan_count, 2u);
  EXPECT_NE(r1.scan_crc, r2.scan_crc);

  m.apply(frame(2, 4, put_op("user:2", "carol")));
  scan.scan_limit = 10;
  KvResult r3 = m.execute_read(scan);
  EXPECT_EQ(r3.scan_count, 3u);
  EXPECT_NE(r3.scan_crc, r1.scan_crc) << "content change must move the CRC";
}

TEST(KvStateMachine, SnapshotRestoreRoundTripsEverything) {
  KvStateMachine a;
  a.apply(frame(11, 1, put_op("p", "1")));
  a.apply(frame(11, 2, put_op("q", "2")));
  a.apply(frame(12, 1, put_op("r", "3")));
  a.apply(frame(11, 1, put_op("p", "stale")));  // dup, cached replay

  KvStateMachine b;
  b.restore(a.snapshot());
  EXPECT_EQ(b.version(), a.version());
  EXPECT_EQ(b.commands(), a.commands());
  EXPECT_EQ(b.dup_suppressed(), a.dup_suppressed());
  EXPECT_EQ(b.size(), a.size());
  EXPECT_EQ(b.sessions(), a.sessions());
  ASSERT_NE(b.get("q"), nullptr);
  EXPECT_EQ(*b.get("q"), "2");

  // The restored session table must keep deduplicating: a retransmit of
  // session 11 seq 2 on the restored machine is suppressed.
  const uint64_t dups_before = b.dup_suppressed();
  b.apply(frame(11, 2, put_op("q", "rewrite")));
  EXPECT_EQ(*b.get("q"), "2");
  EXPECT_EQ(b.dup_suppressed(), dups_before + 1);
}

TEST(KvStateMachine, IdenticalCommandSequencesYieldIdenticalState) {
  std::vector<std::vector<std::byte>> commands;
  for (int i = 0; i < 64; ++i) {
    const uint64_t uuid = 1 + (i % 5);
    KvOp op = put_op("key-" + std::to_string(i % 9),
                     "value-" + std::to_string(i));
    if (i % 11 == 3) {
      op.type = OpType::kDel;
      op.value.clear();
    }
    commands.push_back(frame(uuid, static_cast<uint64_t>(i / 5 + 1), op));
  }
  KvStateMachine a, b;
  for (const auto& c : commands) a.apply(c);
  for (const auto& c : commands) b.apply(c);
  EXPECT_EQ(a.version(), b.version());
  EXPECT_EQ(a.snapshot(), b.snapshot());
}

TEST(KvStateMachine, PreloadBumpsVersionAndIsSnapshotVisible) {
  KvStateMachine m;
  m.preload("warm", "data");
  EXPECT_EQ(m.version(), 1u);
  KvStateMachine copy;
  copy.restore(m.snapshot());
  ASSERT_NE(copy.get("warm"), nullptr);
  EXPECT_EQ(*copy.get("warm"), "data");
}

}  // namespace
}  // namespace accelring::kv
