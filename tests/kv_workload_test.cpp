// Statistical tests for the workload generators: Zipf key sampling must
// reproduce the configured power-law slope, and the diurnal thinning chain
// must produce arrival counts matching the closed-form intensity integral.
// Also exercises the full driver end-to-end against a live service.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "check/kv_oracle.hpp"
#include "harness/cluster.hpp"
#include "kv/service.hpp"
#include "kv/workload.hpp"
#include "util/rng.hpp"

namespace accelring::kv {
namespace {

using check::KvOracle;
using harness::ImplProfile;
using harness::SimCluster;

TEST(ZipfGen, ProbabilitiesNormalizeAndRankDecreasing) {
  ZipfGen zipf(1000, 0.99);
  double total = 0;
  for (uint64_t r = 0; r < 1000; ++r) total += zipf.probability(r);
  EXPECT_NEAR(total, 1.0, 1e-9);
  for (uint64_t r = 1; r < 1000; ++r) {
    EXPECT_LT(zipf.probability(r), zipf.probability(r - 1));
  }
  // s = 0 degenerates to uniform.
  ZipfGen uniform(100, 0.0);
  EXPECT_NEAR(uniform.probability(0), 0.01, 1e-12);
  EXPECT_NEAR(uniform.probability(99), 0.01, 1e-12);
}

TEST(ZipfGen, SampledFrequenciesFollowThePowerLawSlope) {
  // Sample heavily, then fit log(freq) against log(rank+1) over the head
  // ranks by least squares: the slope must come out near -s. (The head carries
  // almost all samples, so tail noise never enters the fit.)
  const double s = 0.99;
  const uint64_t n = 10'000;
  const int samples = 400'000;
  ZipfGen zipf(n, s);
  util::Rng rng(42);
  std::vector<uint64_t> freq(n, 0);
  for (int i = 0; i < samples; ++i) ++freq[zipf.sample(rng.uniform())];

  // Rank 0 must dominate and the empirical head frequencies must match the
  // analytic pmf within a few percent.
  for (uint64_t r = 0; r < 8; ++r) {
    const double expected = zipf.probability(r) * samples;
    EXPECT_NEAR(freq[r], expected, expected * 0.08 + 30)
        << "rank " << r;
  }

  const int head = 50;
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (int r = 0; r < head; ++r) {
    ASSERT_GT(freq[r], 0u);
    const double x = std::log(static_cast<double>(r + 1));
    const double y = std::log(static_cast<double>(freq[r]));
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
  }
  const double slope = (head * sxy - sx * sy) / (head * sxx - sx * sx);
  EXPECT_NEAR(slope, -s, 0.06)
      << "log-log frequency-rank slope drifted from the Zipf exponent";
}

TEST(Diurnal, FactorTracesTheRaisedCosine) {
  WorkloadConfig cfg;
  cfg.peak_factor = 3.0;
  cfg.period = util::sec(1);
  cfg.start = util::msec(0);
  EXPECT_NEAR(diurnal_factor(0, cfg), 1.0, 1e-9);
  EXPECT_NEAR(diurnal_factor(util::msec(500), cfg), 3.0, 1e-9);
  EXPECT_NEAR(diurnal_factor(util::sec(1), cfg), 1.0, 1e-9);
  EXPECT_NEAR(diurnal_factor(util::msec(250), cfg), 2.0, 1e-9);
  // The factor never leaves [1, peak].
  for (int i = 0; i <= 20; ++i) {
    const double f = diurnal_factor(i * util::msec(50), cfg);
    EXPECT_GE(f, 1.0 - 1e-9);
    EXPECT_LE(f, 3.0 + 1e-9);
  }
}

TEST(Diurnal, IntegralMatchesNumericQuadrature) {
  WorkloadConfig cfg;
  cfg.peak_factor = 2.5;
  cfg.period = util::msec(700);
  cfg.start = util::msec(30);
  const Nanos a = util::msec(30);
  const Nanos b = util::msec(900);  // beyond one period
  const int steps = 20'000;
  double sum = 0;
  const double dt = static_cast<double>(b - a) / steps;
  for (int i = 0; i < steps; ++i) {
    sum += diurnal_factor(a + static_cast<Nanos>((i + 0.5) * dt), cfg) * dt;
  }
  sum /= 1e9;  // seconds
  EXPECT_NEAR(diurnal_integral(a, b, cfg), sum, sum * 1e-4);
}

TEST(Workload, ArrivalCountMatchesTheIntensityIntegral) {
  // Run the real open-loop driver against a live 3-node service and compare
  // total arrivals (issued + skips) with base_rate * integral of the
  // diurnal factor. Poisson noise at N draws is ~sqrt(N); allow 5 sigma.
  SimCluster cluster(3, simnet::FabricParams::one_gig(),
                     protocol::ProtocolConfig{}, ImplProfile::kLibrary, 11);
  ServiceConfig scfg;
  KvService service(cluster, scfg);
  cluster.start_static();

  WorkloadConfig wcfg;
  wcfg.sessions = 3000;
  wcfg.keys = 500;
  wcfg.base_rate = 20'000;
  wcfg.peak_factor = 2.0;
  wcfg.period = util::msec(800);
  wcfg.start = util::msec(50);
  wcfg.stop = util::sec(1);
  wcfg.measure_from = util::msec(50);
  wcfg.read_fraction = 0.8;
  wcfg.seed = 7;
  SessionWorkload workload(service, wcfg);
  workload.start();
  cluster.run_until(util::msec(1300));

  const auto& st = workload.stats();
  const uint64_t arrivals = st.issued + st.busy_skips + st.down_skips;
  const double expected =
      wcfg.base_rate * diurnal_integral(wcfg.start, wcfg.stop, wcfg);
  EXPECT_GT(expected, 10'000.0);
  EXPECT_NEAR(static_cast<double>(arrivals), expected,
              5 * std::sqrt(expected))
      << "thinned arrival count disagrees with the closed-form integral";

  // The driver really drove the service: ops completed, sessions spread,
  // and the read/write mix is in the neighbourhood of read_fraction.
  EXPECT_GT(st.completed, arrivals / 2);
  EXPECT_GT(st.sessions_touched, 1000u);
  const double reads = static_cast<double>(st.lease_reads + st.ordered_reads);
  const double mix = reads / static_cast<double>(st.completed);
  EXPECT_NEAR(mix, wcfg.read_fraction, 0.05);
  EXPECT_GT(workload.latency().count(), 0u);
}

TEST(Workload, DriverStaysCorrectUnderOracleWithChurn) {
  SimCluster cluster(3, simnet::FabricParams::one_gig(),
                     protocol::ProtocolConfig{}, ImplProfile::kLibrary, 13);
  ServiceConfig scfg;
  KvService service(cluster, scfg);
  KvOracle oracle;
  oracle.attach(service);
  cluster.start_static();

  WorkloadConfig wcfg;
  wcfg.sessions = 60;  // small pool so churn actually hits in-flight ops
  wcfg.keys = 200;
  wcfg.base_rate = 6'000;
  wcfg.peak_factor = 1.5;
  wcfg.period = util::msec(600);
  wcfg.start = util::msec(40);
  wcfg.stop = util::msec(800);
  wcfg.churn_per_sec = 800;  // reconnect-and-replay pressure
  wcfg.op_timeout = util::msec(40);
  wcfg.seed = 23;
  SessionWorkload workload(service, wcfg);
  workload.start();
  cluster.run_until(util::msec(1200));
  oracle.finalize();

  EXPECT_TRUE(oracle.ok()) << oracle.report();
  EXPECT_GT(workload.stats().completed, 500u);
  // Churn resubmits happened and were absorbed as duplicates, not double
  // effects (the oracle above would flag version jumps).
  EXPECT_GT(workload.stats().reconnects, 0u);
}

}  // namespace
}  // namespace accelring::kv
