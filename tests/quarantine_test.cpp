// Gray-failure detection and quarantine: detector hysteresis edges, the
// quarantine/probation state machine, and cluster-level end-to-end behaviour
// (a straggler is evicted and the ring's throughput recovers; a healed
// member earns its way back through probation; borderline members never
// flap).
#include <gtest/gtest.h>


#include "harness/cluster.hpp"
#include "harness/workload.hpp"
#include "membership/quarantine.hpp"
#include "protocol/gray_detector.hpp"
#include "util/time.hpp"

namespace accelring {
namespace {

using harness::ImplProfile;
using harness::SimCluster;
using membership::QuarantineManager;
using membership::QuarantineState;
using protocol::GrayFailureDetector;
using protocol::ProcessId;
using protocol::ProtocolConfig;
using protocol::TokenHealth;

// ---------------------------------------------------------------------------
// GrayFailureDetector
// ---------------------------------------------------------------------------

ProtocolConfig::GrayConfig detector_cfg() {
  ProtocolConfig::GrayConfig cfg;
  cfg.enabled = true;
  return cfg;
}

/// Health vector for a 5-member ring where member `slow` (if >= 0) has
/// `slow_unit` µs of hold per datagram and everyone else `unit`.
std::vector<TokenHealth> health_vec(double unit, int slow = -1,
                                    double slow_unit = 0.0,
                                    uint32_t rtr_member = 0xFFFF) {
  std::vector<TokenHealth> v;
  for (ProcessId p = 0; p < 5; ++p) {
    TokenHealth h;
    h.pid = p;
    h.work = 10;
    const double u = (p == slow) ? slow_unit : unit;
    h.hold_us = static_cast<uint32_t>(u * h.work);
    h.rtr_count = p == rtr_member ? 2 : 0;
    v.push_back(h);
  }
  return v;
}

TEST(GrayDetector, SustainedSlownessConvictsAfterStreak) {
  const auto cfg = detector_cfg();
  GrayFailureDetector det(0, cfg);
  // Member 3 at ~12x the healthy unit cost, above the absolute floor.
  for (uint32_t i = 0; i + 1 < cfg.suspect_rounds; ++i) {
    det.observe(health_vec(2.0, 3, 24.0));
    EXPECT_FALSE(det.verdict().has_value()) << "round " << i;
  }
  // The EWMA needs a couple of rounds to converge past the threshold, so
  // the streak may start late — but it must fire within a small multiple.
  std::optional<ProcessId> verdict;
  for (uint32_t i = 0; i < 3 * cfg.suspect_rounds && !verdict; ++i) {
    det.observe(health_vec(2.0, 3, 24.0));
    verdict = det.verdict();
  }
  ASSERT_TRUE(verdict.has_value());
  EXPECT_EQ(*verdict, 3);
  EXPECT_GE(det.streak(3), cfg.suspect_rounds);
}

TEST(GrayDetector, OneSlowRotationResetsTheStreak) {
  const auto cfg = detector_cfg();
  GrayFailureDetector det(0, cfg);
  // Warm up the EWMA with the member solidly suspect...
  for (uint32_t i = 0; i + 2 < cfg.suspect_rounds; ++i) {
    det.observe(health_vec(2.0, 3, 40.0));
  }
  // ...then one healthy rotation (EWMA snaps down fast enough at the edge
  // of the threshold after a string of healthy samples).
  for (int i = 0; i < 20; ++i) det.observe(health_vec(2.0, 3, 2.0));
  EXPECT_EQ(det.streak(3), 0u);
  EXPECT_FALSE(det.verdict().has_value());
}

TEST(GrayDetector, RingWideSlownessIsInvisible) {
  const auto cfg = detector_cfg();
  GrayFailureDetector det(0, cfg);
  // Everyone at 30x: the median moves with the ring, nobody stands out.
  for (uint32_t i = 0; i < 4 * cfg.suspect_rounds; ++i) {
    det.observe(health_vec(60.0));
    EXPECT_FALSE(det.verdict().has_value());
  }
}

TEST(GrayDetector, IdleRingRatiosBelowFloorNeverConvict) {
  const auto cfg = detector_cfg();
  GrayFailureDetector det(0, cfg);
  // 10x ratio but everything under min_unit_cost_us: noise, not a verdict.
  const double floor_us = static_cast<double>(cfg.min_unit_cost_us);
  for (uint32_t i = 0; i < 4 * cfg.suspect_rounds; ++i) {
    det.observe(health_vec(floor_us / 100.0, 3, floor_us / 10.0));
    EXPECT_FALSE(det.verdict().has_value());
  }
}

TEST(GrayDetector, NeverConvictsSelf) {
  const auto cfg = detector_cfg();
  GrayFailureDetector det(3, cfg);  // the slow member's own detector
  for (uint32_t i = 0; i < 4 * cfg.suspect_rounds; ++i) {
    det.observe(health_vec(2.0, 3, 40.0));
  }
  EXPECT_GE(det.streak(3), cfg.suspect_rounds);  // it knows it is slow...
  EXPECT_FALSE(det.verdict().has_value());       // ...but peers must act
}

TEST(GrayDetector, SustainedRtrPressureConvictsLossyReceiver) {
  const auto cfg = detector_cfg();
  GrayFailureDetector det(0, cfg);
  std::optional<ProcessId> verdict;
  for (uint32_t i = 0; i < cfg.rtr_window + 3 * cfg.suspect_rounds && !verdict;
       ++i) {
    det.observe(health_vec(2.0, -1, 0.0, /*rtr_member=*/2));
    verdict = det.verdict();
  }
  ASSERT_TRUE(verdict.has_value());
  EXPECT_EQ(*verdict, 2);
}

TEST(GrayDetector, UniformLossConvictsNobody) {
  const auto cfg = detector_cfg();
  GrayFailureDetector det(0, cfg);
  for (uint32_t i = 0; i < cfg.rtr_window + 4 * cfg.suspect_rounds; ++i) {
    auto v = health_vec(2.0);
    for (auto& h : v) h.rtr_count = 1;  // iid loss: everyone asks
    det.observe(v);
    EXPECT_FALSE(det.verdict().has_value());
  }
}

TEST(GrayDetector, ResetDropsAllHistory) {
  const auto cfg = detector_cfg();
  GrayFailureDetector det(0, cfg);
  for (uint32_t i = 0; i < 2 * cfg.suspect_rounds; ++i) {
    det.observe(health_vec(2.0, 3, 40.0));
  }
  ASSERT_TRUE(det.verdict().has_value());
  det.reset();
  EXPECT_FALSE(det.verdict().has_value());
  EXPECT_EQ(det.observations(), 0u);
  EXPECT_EQ(det.streak(3), 0u);
}

// ---------------------------------------------------------------------------
// QuarantineManager
// ---------------------------------------------------------------------------

TEST(Quarantine, LifecycleQuarantineProbationReadmit) {
  const auto cfg = detector_cfg();
  QuarantineManager q(cfg);
  EXPECT_EQ(q.state(7), QuarantineState::kHealthy);

  const uint32_t hold = q.quarantine(7);
  EXPECT_EQ(hold, cfg.quarantine_rotations);
  EXPECT_TRUE(q.blocked(7));
  EXPECT_EQ(q.state(7), QuarantineState::kQuarantined);

  // Every probe during the hold is ignored; the last one tips probation.
  bool entered_probation = false;
  for (uint32_t i = 0; i < hold; ++i) {
    EXPECT_TRUE(q.filter_probe(7, entered_probation));
  }
  EXPECT_TRUE(entered_probation);
  EXPECT_EQ(q.state(7), QuarantineState::kProbation);

  // Probation: still blocked until the clean-probe quota is met.
  for (uint32_t i = 0; i + 1 < cfg.probation_rotations; ++i) {
    EXPECT_TRUE(q.filter_probe(7, entered_probation));
  }
  EXPECT_FALSE(q.filter_probe(7, entered_probation));  // finally admitted
  EXPECT_FALSE(q.blocked(7));

  EXPECT_TRUE(q.note_installed(7));   // entry existed: a real re-admission
  EXPECT_FALSE(q.note_installed(7));  // idempotent
  EXPECT_EQ(q.state(7), QuarantineState::kHealthy);
  ASSERT_EQ(q.victims().size(), 1u);
  EXPECT_EQ(q.victims()[0], 7);
}

TEST(Quarantine, RepeatOffendersDoubleTheHoldCappedAt16x) {
  const auto cfg = detector_cfg();
  QuarantineManager q(cfg);
  EXPECT_EQ(q.quarantine(7), cfg.quarantine_rotations);
  q.release(7);
  EXPECT_EQ(q.quarantine(7), cfg.quarantine_rotations * 2);
  q.release(7);
  EXPECT_EQ(q.quarantine(7), cfg.quarantine_rotations * 4);
  q.release(7);
  EXPECT_EQ(q.quarantine(7), cfg.quarantine_rotations * 8);
  q.release(7);
  EXPECT_EQ(q.quarantine(7), cfg.quarantine_rotations * 16);
  q.release(7);
  EXPECT_EQ(q.quarantine(7), cfg.quarantine_rotations * 16);  // capped
}

TEST(Quarantine, AdoptTakesTheStricterView) {
  const auto cfg = detector_cfg();
  QuarantineManager q(cfg);
  EXPECT_TRUE(q.adopt(5, 10));  // newly blocks a healthy pid
  EXPECT_TRUE(q.blocked(5));
  EXPECT_FALSE(q.adopt(5, 3));  // weaker peer view changes nothing
  // Stronger peer view extends the hold: 12 probes, not 10, to probation.
  EXPECT_FALSE(q.adopt(5, 12));
  bool entered = false;
  for (int i = 0; i < 12; ++i) {
    EXPECT_TRUE(q.filter_probe(5, entered));
  }
  EXPECT_EQ(q.state(5), QuarantineState::kProbation);
}

TEST(Quarantine, ExportCarriesQuarantinedButNotProbation) {
  const auto cfg = detector_cfg();
  QuarantineManager q(cfg);
  q.adopt(3, 2);
  q.adopt(4, 9);
  EXPECT_EQ(q.export_set().size(), 2u);
  bool entered = false;
  q.filter_probe(3, entered);
  q.filter_probe(3, entered);  // 3 enters probation
  ASSERT_TRUE(entered);
  const auto exported = q.export_set();
  ASSERT_EQ(exported.size(), 1u);
  EXPECT_EQ(exported[0].first, 4);
}

// ---------------------------------------------------------------------------
// Cluster end-to-end
// ---------------------------------------------------------------------------

ProtocolConfig gray_cfg() {
  ProtocolConfig cfg;
  cfg.timeouts.token_loss = util::msec(30);
  cfg.timeouts.join = util::msec(5);
  cfg.timeouts.consensus = util::msec(60);
  cfg.gray.enabled = true;
  return cfg;
}

/// Drive a 5-node cluster with a steady per-node workload; returns agreed
/// deliveries observed at node 0 inside [from, to).
struct E2eRun {
  SimCluster cluster;
  uint64_t window_delivered = 0;

  E2eRun(uint64_t seed, util::Nanos horizon, util::Nanos from, util::Nanos to)
      : cluster(5, simnet::FabricParams::one_gig(), gray_cfg(),
                ImplProfile::kLibrary, seed) {
    cluster.add_on_deliver([this, from, to](int node, const protocol::Delivery&,
                                            util::Nanos at) {
      if (node == 0 && at >= from && at < to) ++window_delivered;
    });
    const int64_t shots = horizon / util::msec(1);
    for (int node = 0; node < 5; ++node) {
      for (int64_t k = 0; k < shots; ++k) {
        const util::Nanos at =
            util::msec(1) * k + util::usec(200) * node + util::usec(50);
        cluster.eq().schedule(at, [this, node] {
          if (cluster.net().host_down(node)) return;
          cluster.submit(node, protocol::Service::kAgreed,
                         std::vector<std::byte>(64));
        });
      }
    }
    cluster.start_static();
  }
};

TEST(QuarantineE2e, StragglerIsEvictedAndThroughputRecovers) {
  const util::Nanos kHorizon = util::sec(2);
  // Measure in the steady post-quarantine window.
  const util::Nanos kFrom = util::msec(1000);
  const util::Nanos kTo = util::msec(2000);

  E2eRun baseline(21, kHorizon, kFrom, kTo);
  baseline.cluster.run_until(kHorizon);

  E2eRun faulted(21, kHorizon, kFrom, kTo);
  faulted.cluster.eq().schedule(util::msec(200), [&faulted] {
    faulted.cluster.process(3).set_cpu_multiplier(10.0);
  });
  faulted.cluster.run_until(kHorizon);

  const harness::ClusterStats stats = faulted.cluster.stats();
  EXPECT_GE(stats.quarantines(), 1u);
  bool victim_recorded = false;
  for (int n = 0; n < 5; ++n) {
    for (ProcessId v : faulted.cluster.engine(n).quarantine_victims()) {
      EXPECT_EQ(v, 3) << "only the straggler may be quarantined";
      victim_recorded = victim_recorded || v == 3;
    }
  }
  EXPECT_TRUE(victim_recorded);
  // Node 0's ring no longer contains the straggler.
  const auto& ring = faulted.cluster.engine(0).ring();
  for (ProcessId m : ring.members) EXPECT_NE(m, 3);

  // Post-quarantine agreed throughput >= 80% of the fault-free baseline.
  ASSERT_GT(baseline.window_delivered, 0u);
  const double ratio = static_cast<double>(faulted.window_delivered) /
                       static_cast<double>(baseline.window_delivered);
  EXPECT_GE(ratio, 0.8) << "baseline=" << baseline.window_delivered
                        << " faulted=" << faulted.window_delivered;
}

TEST(QuarantineE2e, HealedMemberIsReadmittedThroughProbation) {
  const util::Nanos kHorizon = util::sec(8);
  E2eRun run(22, kHorizon, 0, 0);
  run.cluster.eq().schedule(util::msec(200), [&run] {
    run.cluster.process(3).set_cpu_multiplier(10.0);
  });
  // Heal well before the horizon: the victim probes its way back.
  run.cluster.eq().schedule(util::msec(1200), [&run] {
    run.cluster.process(3).set_cpu_multiplier(1.0);
  });
  run.cluster.run_until(kHorizon);

  const harness::ClusterStats stats = run.cluster.stats();
  ASSERT_GE(stats.quarantines(), 1u);
  EXPECT_GE(stats.readmits(), 1u);
  // The final ring is whole again.
  const auto& ring = run.cluster.engine(0).ring();
  EXPECT_EQ(ring.members.size(), 5u);
  bool back = false;
  for (ProcessId m : ring.members) back = back || m == 3;
  EXPECT_TRUE(back);
}

TEST(QuarantineE2e, BorderlineLoadNeverFlaps) {
  // 2x CPU is degraded but under the 3x eviction ratio: the detector must
  // hold its fire for the whole run, and membership must not churn.
  const util::Nanos kHorizon = util::sec(3);
  E2eRun run(23, kHorizon, 0, 0);
  run.cluster.eq().schedule(util::msec(200), [&run] {
    run.cluster.process(3).set_cpu_multiplier(2.0);
  });
  run.cluster.run_until(kHorizon);

  const harness::ClusterStats stats = run.cluster.stats();
  EXPECT_EQ(stats.quarantines(), 0u);
  for (int n = 0; n < 5; ++n) {
    EXPECT_TRUE(run.cluster.engine(n).quarantine_victims().empty());
    EXPECT_EQ(run.cluster.engine(n).ring().members.size(), 5u);
  }
}

}  // namespace
}  // namespace accelring
