#include "util/backoff.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/time.hpp"

namespace accelring::util {
namespace {

TEST(Backoff, FirstDelayIsWithinBaseWindow) {
  // Equal jitter: attempt 0 draws from [base/2, base].
  for (uint64_t seed = 1; seed <= 50; ++seed) {
    Backoff b(msec(2), msec(40), seed);
    const Nanos d = b.next();
    EXPECT_GE(d, msec(1)) << "seed " << seed;
    EXPECT_LE(d, msec(2)) << "seed " << seed;
  }
}

TEST(Backoff, CeilingDoublesThenCaps) {
  Backoff b(msec(2), msec(40), 7);
  // Attempt k draws from [ceil/2, ceil] with ceil = min(base << k, cap).
  const std::vector<Nanos> ceilings = {msec(2),  msec(4),  msec(8),
                                       msec(16), msec(32), msec(40),
                                       msec(40), msec(40)};
  for (size_t k = 0; k < ceilings.size(); ++k) {
    const Nanos d = b.next();
    EXPECT_GE(d, ceilings[k] / 2) << "attempt " << k;
    EXPECT_LE(d, ceilings[k]) << "attempt " << k;
  }
  EXPECT_EQ(b.attempts(), ceilings.size());
}

TEST(Backoff, NeverExceedsCapEvenAfterManyAttempts) {
  Backoff b(msec(2), msec(40), 13);
  for (int i = 0; i < 100; ++i) {
    const Nanos d = b.next();
    EXPECT_LE(d, msec(40));
    EXPECT_GE(d, msec(1));
  }
}

TEST(Backoff, NoOverflowWithHugeAttemptCounts) {
  // The shift is clamped; 200 attempts must not wrap base << k.
  Backoff b(msec(10), util::msec(30'000), 3);
  Nanos last = 0;
  for (int i = 0; i < 200; ++i) last = b.next();
  EXPECT_GT(last, 0);
  EXPECT_LE(last, util::msec(30'000));
}

TEST(Backoff, ResetRestartsTheSchedule) {
  Backoff b(msec(2), msec(40), 21);
  for (int i = 0; i < 6; ++i) (void)b.next();
  b.reset();
  EXPECT_EQ(b.attempts(), 0u);
  const Nanos d = b.next();
  EXPECT_GE(d, msec(1));
  EXPECT_LE(d, msec(2));
}

TEST(Backoff, JitterActuallyVaries) {
  // Two clients with different seeds must not produce identical schedules
  // (that is the thundering-herd failure mode the jitter exists to break).
  Backoff a(msec(2), msec(40), 1);
  Backoff b(msec(2), msec(40), 2);
  bool differs = false;
  for (int i = 0; i < 10; ++i) differs = differs || a.next() != b.next();
  EXPECT_TRUE(differs);
}

}  // namespace
}  // namespace accelring::util
