// Membership churn fuzzing: random schedules of crashes, restarts,
// partitions, heals, and loss bursts, across many seeds. After the dust
// settles the survivors must converge to one operational ring, and at every
// point the Extended Virtual Synchrony contract must have held:
//
//  * configuration-stream consistency — processes that installed the same
//    regular configuration delivered the same messages between that
//    configuration and the next one they installed;
//  * no duplicate deliveries, per-sender FIFO at every process;
//  * liveness — messages submitted by stable members after the final heal
//    are delivered by every final-ring member.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "harness/cluster.hpp"
#include "harness/workload.hpp"
#include "util/rng.hpp"

namespace accelring::harness {
namespace {

using protocol::RingId;
using protocol::Service;

struct NodeLog {
  // Stream of (config marker | message) events.
  struct Event {
    bool is_config = false;
    RingId ring_id = 0;
    bool transitional = false;
    uint32_t sender = 0;
    uint32_t index = 0;
  };
  std::vector<Event> events;
};

class ChurnFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ChurnFuzz, ConvergesAndStaysConsistent) {
  const uint64_t seed = GetParam();
  const int kNodes = 6;
  util::Rng rng(seed);

  protocol::ProtocolConfig cfg;
  cfg.timeouts.token_loss = util::msec(30);
  cfg.timeouts.join = util::msec(5);
  cfg.timeouts.consensus = util::msec(60);
  SimCluster cluster(kNodes, simnet::FabricParams::one_gig(), cfg,
                     ImplProfile::kLibrary, seed);

  std::vector<NodeLog> logs(kNodes);
  cluster.set_on_deliver([&](int node, const protocol::Delivery& d, Nanos) {
    PayloadStamp stamp;
    if (!parse_payload(d.payload, stamp)) return;
    logs[node].events.push_back(
        NodeLog::Event{false, 0, false, stamp.sender, stamp.index});
  });
  cluster.set_on_config(
      [&](int node, const protocol::ConfigurationChange& c) {
        logs[node].events.push_back(
            NodeLog::Event{true, c.config.ring_id, c.transitional, 0, 0});
      });
  cluster.start_static();

  // Background traffic throughout (also drives merge detection).
  uint32_t next_index = 0;
  for (Nanos t = util::msec(2); t < util::msec(900); t += util::msec(3)) {
    const int sender = static_cast<int>(rng.below(kNodes));
    const uint32_t index = next_index++;
    cluster.eq().schedule(t, [&cluster, sender, index] {
      if (cluster.net().host_down(sender)) return;
      PayloadStamp stamp{cluster.eq().now(), static_cast<uint32_t>(sender),
                         index};
      cluster.submit(sender, Service::kAgreed, make_payload(64, stamp));
    });
  }

  // Random fault schedule in the first 500 ms: crash, restart, partition,
  // heal, loss burst. Everything is healed/restored by 600 ms.
  std::set<int> crashed;
  const int kFaults = 4 + static_cast<int>(rng.below(4));
  for (int f = 0; f < kFaults; ++f) {
    const Nanos at = util::msec(50 + static_cast<int64_t>(rng.below(450)));
    switch (rng.below(4)) {
      case 0: {  // crash one node (never the whole cluster)
        const int victim = static_cast<int>(rng.below(kNodes));
        cluster.eq().schedule(at, [&cluster, victim] {
          cluster.net().set_host_down(victim, true);
        });
        break;
      }
      case 1: {  // partition roughly in half
        cluster.eq().schedule(at, [&cluster, &rng] {
          for (int i = 0; i < 6; ++i) {
            cluster.net().set_partition(i, static_cast<int>(rng.below(2)));
          }
        });
        break;
      }
      case 2: {  // heal partitions
        cluster.eq().schedule(at, [&cluster] { cluster.net().heal(); });
        break;
      }
      case 3: {  // loss burst
        cluster.eq().schedule(at,
                              [&cluster] { cluster.net().set_loss_rate(0.05); });
        cluster.eq().schedule(at + util::msec(40),
                              [&cluster] { cluster.net().set_loss_rate(0.0); });
        break;
      }
    }
  }
  // Final heal: everything back up and connected.
  cluster.eq().schedule(util::msec(600), [&cluster] {
    cluster.net().heal();
    cluster.net().set_loss_rate(0.0);
    for (int i = 0; i < 6; ++i) cluster.net().set_host_down(i, false);
  });
  cluster.run_until(util::sec(6));

  // --- Convergence: all nodes operational on one ring of 6. ---------------
  const RingId final_ring = cluster.engine(0).ring().ring_id;
  for (int i = 0; i < kNodes; ++i) {
    ASSERT_TRUE(cluster.engine(i).operational())
        << "node " << i << " seed " << seed;
    EXPECT_EQ(cluster.engine(i).ring().size(), static_cast<size_t>(kNodes))
        << "node " << i << " seed " << seed;
    EXPECT_EQ(cluster.engine(i).ring().ring_id, final_ring)
        << "node " << i << " seed " << seed;
  }

  // --- Per-node sanity: no duplicates, per-sender FIFO. --------------------
  for (int i = 0; i < kNodes; ++i) {
    std::set<std::pair<uint32_t, uint32_t>> seen;
    std::map<uint32_t, uint32_t> last_index;
    for (const auto& e : logs[i].events) {
      if (e.is_config) continue;
      EXPECT_TRUE(seen.emplace(e.sender, e.index).second)
          << "duplicate delivery at node " << i << " seed " << seed;
      const auto it = last_index.find(e.sender);
      if (it != last_index.end()) {
        EXPECT_GT(e.index, it->second)
            << "FIFO violation at node " << i << " seed " << seed;
      }
      last_index[e.sender] = e.index;
    }
  }

  // --- EVS configuration-stream consistency. -------------------------------
  // For each regular configuration id, collect each installer's message
  // stream from that installation to its next regular configuration; all
  // installers must agree on it.
  std::map<RingId, std::vector<std::vector<std::pair<uint32_t, uint32_t>>>>
      streams;
  for (int i = 0; i < kNodes; ++i) {
    RingId current = 0;
    std::vector<std::pair<uint32_t, uint32_t>> msgs;
    for (const auto& e : logs[i].events) {
      if (e.is_config && !e.transitional) {
        if (current != 0) streams[current].push_back(msgs);
        current = e.ring_id;
        msgs.clear();
      } else if (!e.is_config) {
        msgs.emplace_back(e.sender, e.index);
      }
    }
    if (current != 0) streams[current].push_back(msgs);
  }
  for (const auto& [ring_id, per_installer] : streams) {
    if (ring_id != final_ring) continue;  // epochs before churn may differ
    for (size_t k = 1; k < per_installer.size(); ++k) {
      EXPECT_EQ(per_installer[k], per_installer[0])
          << "config stream divergence in ring " << std::hex << ring_id
          << " seed " << std::dec << seed;
    }
  }

  // --- Liveness: post-heal messages reach everyone. -------------------------
  std::vector<uint32_t> post_heal;
  for (int m = 0; m < 10; ++m) {
    const uint32_t index = 100000 + m;
    post_heal.push_back(index);
    cluster.eq().schedule(cluster.eq().now() + m * util::msec(2),
                          [&cluster, m, index] {
                            PayloadStamp stamp{0, static_cast<uint32_t>(m % 6),
                                               index};
                            cluster.submit(m % 6, Service::kAgreed,
                                           make_payload(64, stamp));
                          });
  }
  cluster.run_until(cluster.eq().now() + util::sec(2));
  for (int i = 0; i < kNodes; ++i) {
    std::set<uint32_t> got;
    for (const auto& e : logs[i].events) {
      if (!e.is_config && e.index >= 100000) got.insert(e.index);
    }
    EXPECT_EQ(got.size(), post_heal.size())
        << "post-heal liveness at node " << i << " seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChurnFuzz,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11,
                                           12, 13, 14, 15, 16, 17, 18, 19,
                                           20),
                         [](const ::testing::TestParamInfo<uint64_t>& param) {
                           return "seed" + std::to_string(param.param);
                         });

}  // namespace
}  // namespace accelring::harness
