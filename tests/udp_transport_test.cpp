// Integration tests for the real UDP transport: engines over loopback
// sockets, all driven by a single event loop.
#include "transport/udp_transport.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include "membership/membership.hpp"
#include "util/bytes.hpp"

namespace accelring::transport {
namespace {

using protocol::Delivery;
using protocol::Service;

/// Ports derived from the test pid so parallel test runs do not collide.
uint16_t base_port() {
  return static_cast<uint16_t>(20000 + (::getpid() % 20000));
}

std::map<protocol::ProcessId, PeerAddress> make_peers(int n) {
  std::map<protocol::ProcessId, PeerAddress> peers;
  const uint16_t base = base_port();
  for (int i = 0; i < n; ++i) {
    PeerAddress a;
    a.ip = "127.0.0.1";
    a.data_port = static_cast<uint16_t>(base + i * 2);
    a.token_port = static_cast<uint16_t>(base + i * 2 + 1);
    peers[static_cast<protocol::ProcessId>(i)] = a;
  }
  return peers;
}

struct UdpNode {
  std::unique_ptr<UdpTransport> transport;
  std::unique_ptr<protocol::Engine> engine;
  std::vector<std::pair<uint16_t, protocol::SeqNum>> delivered;
};

struct UdpRing {
  EventLoop loop;
  std::vector<UdpNode> nodes;

  explicit UdpRing(int n) {
    const auto peers = make_peers(n);
    protocol::ProtocolConfig cfg;
    cfg.timeouts.token_retransmit = util::msec(20);
    cfg.timeouts.token_loss = util::msec(500);
    nodes.resize(n);
    protocol::RingConfig ring;
    ring.ring_id = membership::make_ring_id(1, 0);
    for (int i = 0; i < n; ++i) {
      ring.members.push_back(static_cast<protocol::ProcessId>(i));
    }
    for (int i = 0; i < n; ++i) {
      auto& node = nodes[i];
      node.transport = std::make_unique<UdpTransport>(
          static_cast<protocol::ProcessId>(i), peers, loop);
      node.engine = std::make_unique<protocol::Engine>(
          static_cast<protocol::ProcessId>(i), cfg, *node.transport);
      node.transport->bind(*node.engine);
      node.transport->set_deliver([&node](const Delivery& d) {
        node.delivered.emplace_back(d.sender, d.seq);
      });
    }
    // Non-representatives first so the first token finds everyone ready.
    for (int i = n - 1; i >= 0; --i) {
      nodes[i].engine->start_with_ring(ring);
    }
  }
};

TEST(UdpTransport, ThreeNodeRingDeliversTotallyOrdered) {
  UdpRing ring(3);
  for (int i = 0; i < 30; ++i) {
    ring.nodes[i % 3].engine->submit(
        Service::kAgreed,
        util::to_vector(util::as_bytes("msg" + std::to_string(i))));
  }
  // Run until everyone has everything (or 3 s worst case).
  for (int spin = 0; spin < 60; ++spin) {
    ring.loop.run_for(util::msec(50));
    bool done = true;
    for (const auto& n : ring.nodes) done = done && n.delivered.size() >= 30;
    if (done) break;
  }
  for (const auto& n : ring.nodes) {
    ASSERT_EQ(n.delivered.size(), 30u);
  }
  EXPECT_EQ(ring.nodes[1].delivered, ring.nodes[0].delivered);
  EXPECT_EQ(ring.nodes[2].delivered, ring.nodes[0].delivered);
}

TEST(UdpTransport, SafeDeliveryWorksOverRealSockets) {
  UdpRing ring(2);
  ring.nodes[0].engine->submit(Service::kSafe,
                               util::to_vector(util::as_bytes("stable")));
  for (int spin = 0; spin < 60; ++spin) {
    ring.loop.run_for(util::msec(50));
    if (ring.nodes[0].delivered.size() == 1 &&
        ring.nodes[1].delivered.size() == 1) {
      break;
    }
  }
  EXPECT_EQ(ring.nodes[0].delivered.size(), 1u);
  EXPECT_EQ(ring.nodes[1].delivered.size(), 1u);
}

TEST(UdpTransport, CountsTraffic) {
  UdpRing ring(2);
  ring.nodes[0].engine->submit(Service::kAgreed,
                               util::to_vector(util::as_bytes("x")));
  ring.loop.run_for(util::msec(300));
  EXPECT_GT(ring.nodes[0].transport->datagrams_sent(), 0u);
  EXPECT_GT(ring.nodes[1].transport->datagrams_received(), 0u);
}

TEST(EventLoopTest, TimersFireInOrder) {
  EventLoop loop;
  std::vector<int> fired;
  loop.set_timer(1, util::msec(30), [&] { fired.push_back(1); });
  loop.set_timer(2, util::msec(10), [&] {
    fired.push_back(2);
    loop.set_timer(3, util::msec(5), [&] { fired.push_back(3); });
  });
  loop.run_for(util::msec(100));
  ASSERT_EQ(fired.size(), 3u);
  EXPECT_EQ(fired[0], 2);
  EXPECT_EQ(fired[1], 3);
  EXPECT_EQ(fired[2], 1);
}

TEST(EventLoopTest, CancelTimerPreventsFire) {
  EventLoop loop;
  bool fired = false;
  loop.set_timer(1, util::msec(10), [&] { fired = true; });
  loop.cancel_timer(1);
  loop.run_for(util::msec(50));
  EXPECT_FALSE(fired);
}

TEST(EventLoopTest, RearmReplacesDeadline) {
  EventLoop loop;
  int count = 0;
  loop.set_timer(1, util::msec(5), [&] { ++count; });
  loop.set_timer(1, util::msec(20), [&] { ++count; });
  loop.run_for(util::msec(60));
  EXPECT_EQ(count, 1);
}

}  // namespace
}  // namespace accelring::transport
