// Unit tests for the deterministic PRNG.
#include "util/rng.hpp"

#include <gtest/gtest.h>

namespace accelring::util {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(12345);
  Rng b(12345);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, BelowStaysInRange) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(r.below(17), 17u);
}

TEST(Rng, RangeInclusive) {
  Rng r(7);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const int64_t v = r.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo = saw_lo || v == -3;
    saw_hi = saw_hi || v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(99);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, ChanceMatchesProbability) {
  Rng r(5);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) hits += r.chance(0.1) ? 1 : 0;
  EXPECT_NEAR(hits / 100000.0, 0.1, 0.01);
}

}  // namespace
}  // namespace accelring::util
