// Unit tests for the discrete-event queue.
#include "simnet/event_queue.hpp"

#include <gtest/gtest.h>

namespace accelring::simnet {
namespace {

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue eq;
  std::vector<int> order;
  eq.schedule(30, [&] { order.push_back(3); });
  eq.schedule(10, [&] { order.push_back(1); });
  eq.schedule(20, [&] { order.push_back(2); });
  eq.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(eq.now(), 30);
}

TEST(EventQueue, EqualTimesFireInScheduleOrder) {
  EventQueue eq;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    eq.schedule(100, [&order, i] { order.push_back(i); });
  }
  eq.run_all();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueue, PastTimesClampToNow) {
  EventQueue eq;
  eq.schedule(100, [] {});
  eq.run_all();
  Nanos fired_at = -1;
  eq.schedule(50, [&] { fired_at = eq.now(); });  // in the past
  eq.run_all();
  EXPECT_EQ(fired_at, 100);
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue eq;
  bool fired = false;
  const EventId id = eq.schedule(10, [&] { fired = true; });
  eq.cancel(id);
  eq.run_all();
  EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelAfterFireIsNoop) {
  EventQueue eq;
  int count = 0;
  const EventId id = eq.schedule(10, [&] { ++count; });
  eq.run_all();
  eq.cancel(id);
  eq.run_all();
  EXPECT_EQ(count, 1);
}

TEST(EventQueue, CallbacksCanScheduleMoreEvents) {
  EventQueue eq;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 5) eq.schedule_after(10, chain);
  };
  eq.schedule(0, chain);
  eq.run_all();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(eq.now(), 40);
}

TEST(EventQueue, RunUntilStopsAtDeadline) {
  EventQueue eq;
  int fired = 0;
  for (Nanos t = 10; t <= 100; t += 10) {
    eq.schedule(t, [&] { ++fired; });
  }
  eq.run_until(50);
  EXPECT_EQ(fired, 5);
  EXPECT_FALSE(eq.empty());
  eq.run_until(1000);
  EXPECT_EQ(fired, 10);
}

TEST(EventQueue, CancelledHeadDoesNotBlockRunUntil) {
  EventQueue eq;
  bool fired = false;
  const EventId id = eq.schedule(10, [] {});
  eq.schedule(20, [&] { fired = true; });
  eq.cancel(id);
  eq.run_until(25);
  EXPECT_TRUE(fired);
}

TEST(EventQueue, ScheduleAfterUsesCurrentTime) {
  EventQueue eq;
  Nanos fired_at = 0;
  eq.schedule(100, [&] {
    eq.schedule_after(50, [&] { fired_at = eq.now(); });
  });
  eq.run_all();
  EXPECT_EQ(fired_at, 150);
}

TEST(EventQueue, ExecutedCounterCountsOnlyLiveEvents) {
  EventQueue eq;
  const EventId id = eq.schedule(5, [] {});
  eq.schedule(6, [] {});
  eq.cancel(id);
  eq.run_all();
  EXPECT_EQ(eq.events_executed(), 1u);
}

}  // namespace
}  // namespace accelring::simnet
