// Tests for the replicated-state-machine library: identical state under
// concurrency and loss, snapshot state transfer to late joiners, and
// primary-side reconciliation after partition merges.
#include <gtest/gtest.h>

#include <map>

#include "harness/cluster.hpp"
#include "rsm/replica.hpp"
#include "util/bytes.hpp"

namespace accelring::rsm {
namespace {

using harness::ImplProfile;
using harness::SimCluster;

/// Test state machine: a map<uint32, int64> with add operations.
class KvMachine final : public StateMachine {
 public:
  void apply(std::span<const std::byte> command) override {
    util::Reader r(command);
    const uint32_t key = r.u32();
    const int64_t delta = r.i64();
    if (r.done()) values_[key] += delta;
  }
  [[nodiscard]] std::vector<std::byte> snapshot() const override {
    util::Writer w(16 * values_.size() + 4);
    w.u32(static_cast<uint32_t>(values_.size()));
    for (const auto& [k, v] : values_) {
      w.u32(k);
      w.i64(v);
    }
    return std::move(w).take();
  }
  void restore(std::span<const std::byte> snapshot) override {
    values_.clear();
    util::Reader r(snapshot);
    const uint32_t n = r.u32();
    for (uint32_t i = 0; i < n && r.ok(); ++i) {
      const uint32_t k = r.u32();
      values_[k] = r.i64();
    }
  }
  [[nodiscard]] const std::map<uint32_t, int64_t>& values() const {
    return values_;
  }

 private:
  std::map<uint32_t, int64_t> values_;
};

std::vector<std::byte> add_command(uint32_t key, int64_t delta) {
  util::Writer w(12);
  w.u32(key);
  w.i64(delta);
  return std::move(w).take();
}

/// SimCluster with one Replica+KvMachine per node.
struct RsmCluster {
  SimCluster cluster;
  std::vector<std::unique_ptr<KvMachine>> machines;
  std::vector<std::unique_ptr<Replica>> replicas;

  RsmCluster(int n, protocol::ProtocolConfig cfg, uint64_t seed,
             bool founders = true, ReplicaOptions options = {})
      : cluster(n, simnet::FabricParams::one_gig(), cfg,
                ImplProfile::kLibrary, seed) {
    for (int i = 0; i < n; ++i) {
      machines.push_back(std::make_unique<KvMachine>());
      auto submit = [this, i](std::vector<std::byte> payload) {
        return cluster.engine(i).submit(protocol::Service::kAgreed,
                                        std::move(payload));
      };
      replicas.push_back(std::make_unique<Replica>(
          static_cast<protocol::ProcessId>(i), *machines[i], submit,
          founders, options));
    }
    cluster.set_on_deliver(
        [this](int node, const protocol::Delivery& d, protocol::Nanos) {
          replicas[node]->on_delivery(d);
        });
    cluster.set_on_config(
        [this](int node, const protocol::ConfigurationChange& c) {
          replicas[node]->on_configuration(c);
        });
  }

  void propose(int node, uint32_t key, int64_t delta) {
    cluster.eq().schedule(cluster.eq().now(), [this, node, key, delta] {
      replicas[node]->submit(add_command(key, delta));
    });
  }
};

protocol::ProtocolConfig fast_cfg() {
  protocol::ProtocolConfig cfg;
  cfg.timeouts.token_loss = util::msec(30);
  cfg.timeouts.join = util::msec(5);
  cfg.timeouts.consensus = util::msec(60);
  return cfg;
}

TEST(Rsm, ReplicasConvergeUnderConcurrencyAndLoss) {
  RsmCluster rc(5, fast_cfg(), 3);
  rc.cluster.net().set_loss_rate(0.02);
  rc.cluster.start_static();
  for (int i = 0; i < 200; ++i) {
    rc.cluster.eq().schedule(util::usec(50) + i * util::usec(40),
                             [&rc, i] {
                               rc.replicas[i % 5]->submit(
                                   add_command(i % 7, (i % 13) - 6));
                             });
  }
  rc.cluster.run_until(util::sec(3));
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(rc.replicas[i]->stats().applied, 200u) << "replica " << i;
    EXPECT_EQ(rc.machines[i]->values(), rc.machines[0]->values())
        << "replica " << i;
    EXPECT_EQ(rc.replicas[i]->stats().divergence_detected, 0u);
  }
}

TEST(Rsm, LateJoinerCatchesUpViaSnapshot) {
  RsmCluster rc(4, fast_cfg(), 7, /*founders=*/false);
  // Nodes 0-2 bootstrap as founders; node 3 starts 200 ms later and must
  // receive a snapshot.
  for (int i = 0; i < 3; ++i) {
    rc.replicas[i] = std::make_unique<Replica>(
        static_cast<protocol::ProcessId>(i), *rc.machines[i],
        [&rc, i](std::vector<std::byte> p) {
          return rc.cluster.engine(i).submit(protocol::Service::kAgreed,
                                             std::move(p));
        },
        /*founder=*/true);
  }
  rc.cluster.net().set_host_down(3, true);
  for (int i = 0; i < 3; ++i) {
    rc.cluster.process(i).run_soon(
        [&rc, i] { rc.cluster.engine(i).start_discovery(); });
  }
  // Pre-join history.
  for (int i = 0; i < 60; ++i) {
    rc.cluster.eq().schedule(util::msec(30) + i * util::msec(1), [&rc, i] {
      rc.replicas[i % 3]->submit(add_command(i % 5, 10));
    });
  }
  rc.cluster.eq().schedule(util::msec(200), [&rc] {
    rc.cluster.net().set_host_down(3, false);
    rc.cluster.process(3).run_soon(
        [&rc] { rc.cluster.engine(3).start_discovery(); });
  });
  // Post-join traffic.
  for (int i = 0; i < 40; ++i) {
    rc.cluster.eq().schedule(util::msec(800) + i * util::msec(1), [&rc, i] {
      rc.replicas[i % 3]->submit(add_command(i % 5, 1));
    });
  }
  rc.cluster.run_until(util::sec(4));

  ASSERT_TRUE(rc.replicas[3]->initialized());
  EXPECT_EQ(rc.replicas[3]->stats().snapshots_restored, 1u);
  // The joiner's state equals the founders' despite missing the first 60
  // commands as deliveries.
  for (int i = 1; i < 4; ++i) {
    EXPECT_EQ(rc.machines[i]->values(), rc.machines[0]->values())
        << "replica " << i;
  }
  EXPECT_FALSE(rc.machines[3]->values().empty());
  // Exactly one veteran shipped state.
  uint64_t snapshots = 0;
  for (int i = 0; i < 4; ++i) {
    snapshots += rc.replicas[i]->stats().snapshots_sent;
  }
  EXPECT_EQ(snapshots, 1u);
}

TEST(Rsm, PartitionMergeReconcilesToLowestSide) {
  RsmCluster rc(6, fast_cfg(), 11);
  rc.cluster.start_static();
  rc.cluster.run_until(util::msec(30));

  // Partition {0,1,2} | {3,4,5}; both sides keep mutating key 1.
  rc.cluster.eq().schedule(util::msec(40), [&rc] {
    for (int i = 0; i < 6; ++i) {
      rc.cluster.net().set_partition(i, i < 3 ? 0 : 1);
    }
  });
  for (int i = 0; i < 30; ++i) {
    rc.cluster.eq().schedule(util::msec(120) + i * util::msec(2), [&rc, i] {
      rc.replicas[0]->submit(add_command(1, 100));   // side A
      rc.replicas[3]->submit(add_command(1, -1));    // side B diverges
    });
  }
  rc.cluster.eq().schedule(util::msec(400), [&rc] { rc.cluster.net().heal(); });
  // Keep traffic flowing so the merge is detected, then settle.
  for (int i = 0; i < 50; ++i) {
    rc.cluster.eq().schedule(util::msec(410) + i * util::msec(4), [&rc, i] {
      rc.replicas[i % 6]->submit(add_command(2, 1));
    });
  }
  rc.cluster.run_until(util::sec(4));

  // Everyone converged to identical state...
  for (int i = 1; i < 6; ++i) {
    EXPECT_EQ(rc.machines[i]->values(), rc.machines[0]->values())
        << "replica " << i;
  }
  // ...and the authoritative lineage is side A's (positive key-1 total:
  // side B's divergent decrements were discarded at the merge).
  ASSERT_TRUE(rc.machines[0]->values().contains(1));
  EXPECT_GT(rc.machines[0]->values().at(1), 0);
  // The old side-B replicas adopted a snapshot.
  uint64_t adopted = 0;
  for (int i = 3; i < 6; ++i) {
    adopted += rc.replicas[i]->stats().snapshots_restored;
  }
  EXPECT_GE(adopted, 3u);
}

TEST(Rsm, ContinuousAuditDetectsNoDivergenceInHealthyRuns) {
  // Force extra membership changes (crash) and verify the snapshot audits
  // never fire divergence.
  RsmCluster rc(5, fast_cfg(), 13);
  rc.cluster.start_static();
  for (int i = 0; i < 100; ++i) {
    rc.cluster.eq().schedule(util::msec(5) + i * util::msec(2), [&rc, i] {
      if (!rc.cluster.net().host_down(i % 5)) {
        rc.replicas[i % 5]->submit(add_command(i % 3, 5));
      }
    });
  }
  rc.cluster.eq().schedule(util::msec(80), [&rc] {
    rc.cluster.net().set_host_down(4, true);
  });
  rc.cluster.run_until(util::sec(3));
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(rc.replicas[i]->stats().divergence_detected, 0u)
        << "replica " << i;
    EXPECT_EQ(rc.machines[i]->values(), rc.machines[0]->values());
  }
}

TEST(Rsm, StateTransferIsChunkedAtTheConfiguredBound) {
  // Tiny chunks force a wide multi-frame transfer: with ~1 KiB of state and
  // 128-byte chunks the sender must ship many frames, none above the bound.
  ReplicaOptions opt;
  opt.max_chunk_bytes = 128;
  opt.checkpoint_interval = 16;
  RsmCluster rc(4, fast_cfg(), 17, /*founders=*/false, opt);
  for (int i = 0; i < 3; ++i) {
    rc.replicas[i] = std::make_unique<Replica>(
        static_cast<protocol::ProcessId>(i), *rc.machines[i],
        [&rc, i](std::vector<std::byte> p) {
          return rc.cluster.engine(i).submit(protocol::Service::kAgreed,
                                             std::move(p));
        },
        /*founder=*/true, opt);
  }
  rc.cluster.net().set_host_down(3, true);
  for (int i = 0; i < 3; ++i) {
    rc.cluster.process(i).run_soon(
        [&rc, i] { rc.cluster.engine(i).start_discovery(); });
  }
  // ~90 distinct keys -> a checkpoint far larger than one chunk.
  for (int i = 0; i < 90; ++i) {
    rc.cluster.eq().schedule(util::msec(30) + i * util::msec(1), [&rc, i] {
      rc.replicas[i % 3]->submit(add_command(static_cast<uint32_t>(i), 7));
    });
  }
  rc.cluster.eq().schedule(util::msec(250), [&rc] {
    rc.cluster.net().set_host_down(3, false);
    rc.cluster.process(3).run_soon(
        [&rc] { rc.cluster.engine(3).start_discovery(); });
  });
  rc.cluster.run_until(util::sec(4));

  ASSERT_TRUE(rc.replicas[3]->initialized());
  EXPECT_GE(rc.replicas[3]->stats().snapshots_restored, 1u);
  uint64_t chunks = 0;
  uint64_t bytes = 0;
  for (int i = 0; i < 3; ++i) {
    chunks += rc.replicas[i]->stats().chunks_sent;
    bytes += rc.replicas[i]->stats().snapshot_bytes;
  }
  EXPECT_GT(chunks, 3u) << "transfer was not split into multiple chunks";
  EXPECT_GT(bytes, 3u * 128u);
  EXPECT_EQ(rc.machines[3]->values(), rc.machines[0]->values());
  // Compaction ran: the retained log never outgrows one interval.
  for (int i = 0; i < 3; ++i) {
    EXPECT_GT(rc.replicas[i]->stats().checkpoints, 0u);
    EXPECT_LE(rc.replicas[i]->retained_log_size(), opt.checkpoint_interval);
  }
}

/// A deliberately non-deterministic machine: applies every delta doubled,
/// so its state silently drifts from its peers'.
class FaultyMachine final : public StateMachine {
 public:
  void apply(std::span<const std::byte> command) override {
    util::Reader r(command);
    const uint32_t key = r.u32();
    const int64_t delta = r.i64();
    if (r.done()) values_[key] += 2 * delta;
  }
  [[nodiscard]] std::vector<std::byte> snapshot() const override {
    util::Writer w(16 * values_.size() + 4);
    w.u32(static_cast<uint32_t>(values_.size()));
    for (const auto& [k, v] : values_) {
      w.u32(k);
      w.i64(v);
    }
    return std::move(w).take();
  }
  void restore(std::span<const std::byte> snapshot) override {
    values_.clear();
    util::Reader r(snapshot);
    const uint32_t n = r.u32();
    for (uint32_t i = 0; i < n && r.ok(); ++i) {
      const uint32_t k = r.u32();
      values_[k] = r.i64();
    }
  }

 private:
  std::map<uint32_t, int64_t> values_;
};

TEST(Rsm, BoundaryAuditCatchesNondeterministicStateMachine) {
  // Node 1 runs a machine that applies commands differently. The drift is
  // invisible until a membership change triggers a transfer: the sender's
  // boundary CRC then disagrees with node 1's own boundary capture, and the
  // continuous audit must flag divergence.
  RsmCluster rc(4, fast_cfg(), 19, /*founders=*/false);
  FaultyMachine faulty;
  for (int i = 0; i < 3; ++i) {
    StateMachine& machine =
        i == 1 ? static_cast<StateMachine&>(faulty) : *rc.machines[i];
    rc.replicas[i] = std::make_unique<Replica>(
        static_cast<protocol::ProcessId>(i), machine,
        [&rc, i](std::vector<std::byte> p) {
          return rc.cluster.engine(i).submit(protocol::Service::kAgreed,
                                             std::move(p));
        },
        /*founder=*/true);
  }
  rc.cluster.net().set_host_down(3, true);
  for (int i = 0; i < 3; ++i) {
    rc.cluster.process(i).run_soon(
        [&rc, i] { rc.cluster.engine(i).start_discovery(); });
  }
  for (int i = 0; i < 50; ++i) {
    rc.cluster.eq().schedule(util::msec(30) + i * util::msec(1), [&rc, i] {
      rc.replicas[i % 3]->submit(add_command(i % 5, 3));
    });
  }
  rc.cluster.eq().schedule(util::msec(200), [&rc] {
    rc.cluster.net().set_host_down(3, false);
    rc.cluster.process(3).run_soon(
        [&rc] { rc.cluster.engine(3).start_discovery(); });
  });
  rc.cluster.run_until(util::sec(4));

  uint64_t divergence = 0;
  for (int i = 0; i < 4; ++i) {
    divergence += rc.replicas[i]->stats().divergence_detected;
  }
  EXPECT_GE(divergence, 1u)
      << "non-deterministic replica escaped the boundary audit";
}

TEST(Rsm, MetricsBindingMirrorsStatsWithoutPerturbingTheRun) {
  // Identical seeded runs with and without registry bindings: final state
  // and stats must match exactly (zero-perturbation contract), and bound
  // counters must mirror ReplicaStats.
  auto drive = [](bool bind, std::map<uint32_t, int64_t>& out,
                  ReplicaStats& stats, obs::MetricsRegistry* registry) {
    ReplicaOptions opt;
    opt.checkpoint_interval = 32;  // low enough that 120 commands checkpoint
    RsmCluster rc(3, fast_cfg(), 23, /*founders=*/true, opt);
    if (bind) {
      for (auto& replica : rc.replicas) {
        replica->set_metrics(RsmMetrics::bind(*registry));
      }
    }
    rc.cluster.start_static();
    for (int i = 0; i < 120; ++i) {
      rc.cluster.eq().schedule(util::usec(80) + i * util::usec(60), [&rc, i] {
        rc.replicas[i % 3]->submit(add_command(i % 9, i));
      });
    }
    rc.cluster.run_until(util::sec(2));
    out = rc.machines[0]->values();
    stats = rc.replicas[0]->stats();
  };

  std::map<uint32_t, int64_t> plain_state, bound_state;
  ReplicaStats plain_stats, bound_stats;
  obs::MetricsRegistry registry;
  drive(false, plain_state, plain_stats, nullptr);
  drive(true, bound_state, bound_stats, &registry);

  EXPECT_EQ(plain_state, bound_state);
  EXPECT_EQ(plain_stats.applied, bound_stats.applied);
  EXPECT_EQ(plain_stats.proposed, bound_stats.proposed);
  EXPECT_EQ(plain_stats.checkpoints, bound_stats.checkpoints);

  // The registry holds the summed stats of all three bound replicas.
  const obs::Counter* applied = registry.find_counter("rsm", "applied");
  ASSERT_NE(applied, nullptr);
  EXPECT_EQ(applied->value(), 3 * bound_stats.applied);
  const obs::Counter* checkpoints =
      registry.find_counter("rsm", "checkpoints");
  ASSERT_NE(checkpoints, nullptr);
  EXPECT_GT(checkpoints->value(), 0u);
}

}  // namespace
}  // namespace accelring::rsm
