// Unit tests for group membership bookkeeping.
#include "groups/group_set.hpp"

#include <gtest/gtest.h>

namespace accelring::groups {
namespace {

Member member(ProcessId daemon, uint32_t client, const std::string& name) {
  return Member{daemon, client, name};
}

TEST(GroupSet, JoinCreatesGroupAndView) {
  GroupSet gs;
  const auto view = gs.join("chat", member(0, 1, "alice"));
  ASSERT_TRUE(view.has_value());
  EXPECT_EQ(view->group, "chat");
  EXPECT_EQ(view->view_id, 1u);
  ASSERT_EQ(view->members.size(), 1u);
  EXPECT_EQ(view->members[0].name, "alice");
  EXPECT_EQ(gs.group_count(), 1u);
}

TEST(GroupSet, DuplicateJoinIsNoop) {
  GroupSet gs;
  EXPECT_TRUE(gs.join("g", member(0, 1, "a")).has_value());
  EXPECT_FALSE(gs.join("g", member(0, 1, "a")).has_value());
}

TEST(GroupSet, ViewIdsIncrementPerGroup) {
  GroupSet gs;
  EXPECT_EQ(gs.join("g", member(0, 1, "a"))->view_id, 1u);
  EXPECT_EQ(gs.join("g", member(0, 2, "b"))->view_id, 2u);
  EXPECT_EQ(gs.join("other", member(0, 1, "a"))->view_id, 1u);
}

TEST(GroupSet, LeaveRemovesAndEmptyGroupVanishes) {
  GroupSet gs;
  gs.join("g", member(0, 1, "a"));
  gs.join("g", member(1, 1, "b"));
  auto view = gs.leave("g", member(0, 1, "a"));
  ASSERT_TRUE(view.has_value());
  EXPECT_EQ(view->members.size(), 1u);
  view = gs.leave("g", member(1, 1, "b"));
  ASSERT_TRUE(view.has_value());
  EXPECT_TRUE(view->members.empty());
  EXPECT_EQ(gs.group_count(), 0u);
}

TEST(GroupSet, LeaveNonMemberIsNoop) {
  GroupSet gs;
  gs.join("g", member(0, 1, "a"));
  EXPECT_FALSE(gs.leave("g", member(9, 9, "x")).has_value());
  EXPECT_FALSE(gs.leave("missing", member(0, 1, "a")).has_value());
}

TEST(GroupSet, MembersSortedDeterministically) {
  GroupSet gs;
  gs.join("g", member(2, 1, "c"));
  gs.join("g", member(0, 5, "a"));
  gs.join("g", member(1, 3, "b"));
  const auto members = gs.members_of("g");
  ASSERT_EQ(members.size(), 3u);
  EXPECT_EQ(members[0].daemon, 0);
  EXPECT_EQ(members[1].daemon, 1);
  EXPECT_EQ(members[2].daemon, 2);
}

TEST(GroupSet, RetainDaemonsDropsDeadDaemonsMembers) {
  GroupSet gs;
  gs.join("g1", member(0, 1, "a"));
  gs.join("g1", member(3, 1, "d"));
  gs.join("g2", member(3, 2, "e"));
  gs.join("g3", member(1, 1, "b"));
  const auto views = gs.retain_daemons({0, 1, 2});
  // g1 shrank, g2 vanished (view emitted, empty), g3 untouched.
  ASSERT_EQ(views.size(), 2u);
  EXPECT_EQ(gs.members_of("g1").size(), 1u);
  EXPECT_TRUE(gs.members_of("g2").empty());
  EXPECT_EQ(gs.members_of("g3").size(), 1u);
  EXPECT_EQ(gs.group_count(), 2u);
}

TEST(GroupSet, DropClientLeavesAllItsGroups) {
  GroupSet gs;
  gs.join("g1", member(0, 1, "a"));
  gs.join("g2", member(0, 1, "a"));
  gs.join("g2", member(0, 2, "b"));
  const auto views = gs.drop_client(0, 1);
  EXPECT_EQ(views.size(), 2u);
  EXPECT_TRUE(gs.members_of("g1").empty());
  EXPECT_EQ(gs.members_of("g2").size(), 1u);
}

TEST(GroupSet, ContainsQueries) {
  GroupSet gs;
  gs.join("g", member(0, 1, "a"));
  EXPECT_TRUE(gs.contains("g", member(0, 1, "a")));
  EXPECT_FALSE(gs.contains("g", member(0, 2, "a")));
  EXPECT_FALSE(gs.contains("h", member(0, 1, "a")));
}

TEST(GroupSet, GroupNamesListsAll) {
  GroupSet gs;
  gs.join("beta", member(0, 1, "a"));
  gs.join("alpha", member(0, 1, "a"));
  const auto names = gs.group_names();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "alpha");  // map order: sorted
  EXPECT_EQ(names[1], "beta");
}

}  // namespace
}  // namespace accelring::groups
