// Property tests for the Topology builder and the multi-DC fabric.
//
// 1. Validation == reachability: across hundreds of randomly wired DC
//    graphs, validate() accepts exactly the configurations where every DC
//    can reach DC 0 over the WAN links (checked independently by
//    union-find), so no unreachable-host configuration ever passes.
// 2. Determinism: on random valid topologies, two fabrics built from the
//    same seed produce bit-identical delivery traces for the same sends —
//    the property every campaign reproducer and regression seed relies on.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "simnet/network.hpp"
#include "simnet/topology.hpp"
#include "util/rng.hpp"

namespace accelring::simnet {
namespace {

struct UnionFind {
  std::vector<int> parent;
  explicit UnionFind(int n) : parent(static_cast<size_t>(n)) {
    std::iota(parent.begin(), parent.end(), 0);
  }
  int find(int x) {
    while (parent[static_cast<size_t>(x)] != x) {
      x = parent[static_cast<size_t>(x)] =
          parent[static_cast<size_t>(parent[static_cast<size_t>(x)])];
    }
    return x;
  }
  void unite(int a, int b) { parent[static_cast<size_t>(find(a))] = find(b); }
};

/// Random topology with well-formed parameters; only the *wiring* varies,
/// so reachability is the single property deciding validity.
Topology random_topology(util::Rng& rng) {
  Topology topo;
  topo.num_dcs = 1 + static_cast<int>(rng.below(5));
  const int hosts = 2 + static_cast<int>(rng.below(9));
  for (int h = 0; h < hosts; ++h) {
    HostSpec spec;
    spec.dc = static_cast<int>(rng.below(static_cast<uint64_t>(topo.num_dcs)));
    spec.rack = static_cast<int>(rng.below(3));
    if (rng.chance(0.3)) spec.nic_bps = 1e8 * static_cast<double>(1 + rng.below(10));
    spec.cpu_multiplier = 0.5 + 0.25 * static_cast<double>(rng.below(7));
    topo.hosts.push_back(spec);
  }
  // Each possible DC pair gets a link with probability 1/2: dense enough to
  // often connect, sparse enough to often strand a DC.
  for (int a = 0; a < topo.num_dcs; ++a) {
    for (int b = a + 1; b < topo.num_dcs; ++b) {
      if (!rng.chance(0.5)) continue;
      WanLinkParams link{a, b};
      link.bps_ab = 1e8 * static_cast<double>(1 + rng.below(100));
      link.bps_ba = 1e8 * static_cast<double>(1 + rng.below(100));
      link.prop_delay = util::usec(10 + rng.below(100'000));
      link.buffer_bytes = 64 * 1024 * (1 + rng.below(32));
      topo.wan_links.push_back(link);
    }
  }
  return topo;
}

TEST(TopologyFuzz, ValidationEqualsReachability) {
  util::Rng rng(0xf00d);
  int valid = 0, invalid = 0;
  for (int iter = 0; iter < 300; ++iter) {
    const Topology topo = random_topology(rng);
    UnionFind uf(topo.num_dcs);
    for (const WanLinkParams& w : topo.wan_links) uf.unite(w.dc_a, w.dc_b);
    bool reachable = true;
    for (int dc = 0; dc < topo.num_dcs; ++dc) {
      reachable = reachable && uf.find(dc) == uf.find(0);
    }
    const std::string err = topo.validate();
    EXPECT_EQ(err.empty(), reachable)
        << "iter " << iter << ": dcs=" << topo.num_dcs
        << " links=" << topo.wan_links.size() << " -> " << err;
    (err.empty() ? valid : invalid) += 1;
  }
  // The generator must actually exercise both outcomes.
  EXPECT_GT(valid, 30);
  EXPECT_GT(invalid, 30);
}

TEST(TopologyFuzz, MalformedParametersNeverPass) {
  util::Rng rng(0xbad);
  for (int iter = 0; iter < 100; ++iter) {
    Topology topo = random_topology(rng);
    if (!topo.validate().empty()) continue;  // only corrupt valid ones
    Topology broken = topo;
    switch (rng.below(5)) {
      case 0:
        broken.hosts[rng.below(broken.hosts.size())].dc = broken.num_dcs;
        break;
      case 1:
        broken.hosts[rng.below(broken.hosts.size())].cpu_multiplier = 0;
        break;
      case 2:
        broken.hosts[rng.below(broken.hosts.size())].nic_bps = -1;
        break;
      case 3:
        if (broken.wan_links.empty()) continue;
        broken.wan_links[rng.below(broken.wan_links.size())].loss_rate = 1.01;
        break;
      default:
        if (broken.wan_links.empty()) continue;
        broken.wan_links[rng.below(broken.wan_links.size())].buffer_bytes = 0;
        break;
    }
    EXPECT_FALSE(broken.validate().empty()) << "iter " << iter;
  }
}

struct TraceEntry {
  int host;
  Nanos at;
  size_t size;
  bool operator==(const TraceEntry& o) const {
    return host == o.host && at == o.at && size == o.size;
  }
};

/// Drive `sends` random datagrams (drawn from `workload_seed`) through a
/// fabric built on `topo` with `fabric_seed`, recording every delivery.
std::vector<TraceEntry> run_trace(const Topology& topo, uint64_t fabric_seed,
                                  uint64_t workload_seed, int sends) {
  EventQueue eq;
  FabricParams params = FabricParams::one_gig();
  params.loss_rate = 0.05;  // exercises the rng stream too
  Network net(eq, params, topo, fabric_seed);
  std::vector<TraceEntry> trace;
  const int n = topo.num_hosts();
  for (int h = 0; h < n; ++h) {
    net.attach(h, [&trace, &eq, h](SocketId, const Network::Payload& data) {
      trace.push_back({h, eq.now(), data->size()});
    });
  }
  util::Rng wl(workload_seed);
  Nanos when = 0;
  for (int i = 0; i < sends; ++i) {
    const int src = static_cast<int>(wl.below(static_cast<uint64_t>(n)));
    const int dst = wl.chance(0.4)
                        ? kMulticast
                        : static_cast<int>(wl.below(static_cast<uint64_t>(n)));
    const size_t size = 32 + wl.below(4000);
    when += static_cast<Nanos>(wl.below(20'000));
    if (dst != src) net.send(src, dst, kDataSocket,
                             std::vector<std::byte>(size, std::byte{0x42}),
                             when);
  }
  eq.run_all();
  return trace;
}

TEST(TopologyFuzz, IdenticalSeedsYieldIdenticalTraces) {
  util::Rng rng(0xcafe);
  int tested = 0;
  for (int iter = 0; iter < 40 && tested < 12; ++iter) {
    const Topology topo = random_topology(rng);
    if (!topo.validate().empty()) continue;
    ++tested;
    const uint64_t fs = rng.below(1u << 30) + 1;
    const uint64_t ws = rng.below(1u << 30) + 1;
    const auto a = run_trace(topo, fs, ws, 200);
    const auto b = run_trace(topo, fs, ws, 200);
    ASSERT_EQ(a.size(), b.size()) << "iter " << iter;
    for (size_t i = 0; i < a.size(); ++i) {
      ASSERT_TRUE(a[i] == b[i]) << "iter " << iter << " entry " << i;
    }
    EXPECT_FALSE(a.empty()) << "iter " << iter;
  }
  EXPECT_GE(tested, 12);
}

}  // namespace
}  // namespace accelring::simnet
