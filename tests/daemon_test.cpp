// Daemon-level tests: multiple clients per daemon, session lifecycle, and
// routing (which local sessions see which deliveries).
#include "daemon/daemon.hpp"

#include <gtest/gtest.h>

#include "daemon/client.hpp"
#include "harness/cluster.hpp"
#include "util/bytes.hpp"

namespace accelring::daemon {
namespace {

using protocol::Service;

struct Fixture {
  harness::SimCluster cluster;
  std::vector<std::unique_ptr<Daemon>> daemons;

  explicit Fixture(int n)
      : cluster(n, simnet::FabricParams::one_gig(), {},
                harness::ImplProfile::kLibrary) {
    for (int i = 0; i < n; ++i) {
      daemons.push_back(std::make_unique<Daemon>(
          static_cast<protocol::ProcessId>(i), cluster.engine(i)));
    }
    cluster.set_on_deliver(
        [this](int node, const protocol::Delivery& d, protocol::Nanos) {
          daemons[node]->on_delivery(d);
        });
    cluster.set_on_config(
        [this](int node, const protocol::ConfigurationChange& c) {
          daemons[node]->on_configuration(c);
        });
    cluster.start_static();
  }
  void run_ms(int64_t ms) {
    cluster.run_until(cluster.eq().now() + util::msec(ms));
  }
};

std::vector<std::byte> text(const std::string& s) {
  return util::to_vector(util::as_bytes(s));
}

TEST(DaemonSessions, MultipleClientsPerDaemonRoutedIndependently) {
  Fixture fx(2);
  std::vector<std::string> at_a;
  std::vector<std::string> at_b;
  Client a(*fx.daemons[0], "a",
           [&](const std::string&, const std::string&, Service,
               std::span<const std::byte> p) {
             at_a.emplace_back(reinterpret_cast<const char*>(p.data()),
                               p.size());
           });
  Client b(*fx.daemons[0], "b",
           [&](const std::string&, const std::string&, Service,
               std::span<const std::byte> p) {
             at_b.emplace_back(reinterpret_cast<const char*>(p.data()),
                               p.size());
           });
  Client sender(*fx.daemons[1], "s");
  a.join("only-a");
  b.join("only-b");
  a.join("both");
  b.join("both");
  fx.run_ms(50);

  sender.send("only-a", Service::kAgreed, text("for-a"));
  sender.send("only-b", Service::kAgreed, text("for-b"));
  sender.send("both", Service::kAgreed, text("for-all"));
  fx.run_ms(50);

  EXPECT_EQ(at_a, (std::vector<std::string>{"for-a", "for-all"}));
  EXPECT_EQ(at_b, (std::vector<std::string>{"for-b", "for-all"}));
  EXPECT_EQ(fx.daemons[0]->session_count(), 2u);
}

TEST(DaemonSessions, SameDaemonSenderAndReceiver) {
  Fixture fx(2);
  std::vector<std::string> got;
  Client rx(*fx.daemons[0], "rx",
            [&](const std::string&, const std::string& sender, Service,
                std::span<const std::byte>) { got.push_back(sender); });
  Client tx(*fx.daemons[0], "tx");
  rx.join("g");
  fx.run_ms(50);
  tx.send("g", Service::kAgreed, text("local"));
  fx.run_ms(50);
  // Routing through the ordering layer works even daemon-locally.
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], "tx");
}

TEST(DaemonSessions, DisconnectedSessionStopsReceiving) {
  Fixture fx(2);
  std::vector<std::string> got;
  auto rx = std::make_unique<Client>(
      *fx.daemons[0], "rx",
      [&](const std::string&, const std::string&, Service,
          std::span<const std::byte> p) {
        got.emplace_back(reinterpret_cast<const char*>(p.data()), p.size());
      });
  Client tx(*fx.daemons[1], "tx");
  rx->join("g");
  fx.run_ms(50);
  tx.send("g", Service::kAgreed, text("one"));
  fx.run_ms(50);
  rx.reset();  // disconnect
  fx.run_ms(50);
  tx.send("g", Service::kAgreed, text("two"));
  fx.run_ms(50);
  EXPECT_EQ(got, (std::vector<std::string>{"one"}));
  EXPECT_EQ(fx.daemons[0]->session_count(), 0u);
}

TEST(DaemonSessions, SendFromUnknownSessionRejected) {
  Fixture fx(1);
  EXPECT_FALSE(fx.daemons[0]->send(999, {"g"}, Service::kAgreed, text("x")));
  EXPECT_FALSE(fx.daemons[0]->join(999, "g"));
  EXPECT_FALSE(fx.daemons[0]->leave(999, "g"));
}

TEST(DaemonSessions, ViewsDeliveredOnlyToMembers) {
  Fixture fx(2);
  int views_member = 0;
  int views_outsider = 0;
  Client member(*fx.daemons[0], "m", {},
                [&](const groups::GroupView&) { ++views_member; });
  Client outsider(*fx.daemons[1], "o", {},
                  [&](const groups::GroupView&) { ++views_outsider; });
  member.join("g");
  fx.run_ms(50);
  EXPECT_EQ(views_member, 1);
  EXPECT_EQ(views_outsider, 0);
}

}  // namespace
}  // namespace accelring::daemon
