// Multi-ring subsystem tests: shard-map invariants, the deterministic merge
// rule (round-robin with skip credits), run-to-run and node-to-node
// determinism of the merged order under loss, merge liveness with an idle
// ring, group routing across shards, and RSM convergence atop K rings.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "groups/group_layer.hpp"
#include "multiring/measure.hpp"
#include "multiring/merger.hpp"
#include "multiring/ring_set.hpp"
#include "multiring/shard_map.hpp"
#include "rsm/replica.hpp"
#include "util/bytes.hpp"

namespace accelring::multiring {
namespace {

using protocol::Delivery;
using protocol::Service;

// --- ShardMap ---------------------------------------------------------------

TEST(ShardMap, RangesTileTheHashSpace) {
  for (int k : {1, 2, 3, 4, 8}) {
    ShardMap map(k);
    ASSERT_EQ(map.num_rings(), k);
    std::vector<ShardMap::Range> all;
    for (int r = 0; r < k; ++r) {
      const auto ranges = map.ranges_of(r);
      EXPECT_FALSE(ranges.empty()) << "ring " << r << " owns nothing";
      all.insert(all.end(), ranges.begin(), ranges.end());
    }
    std::sort(all.begin(), all.end(),
              [](const auto& a, const auto& b) { return a.lo < b.lo; });
    ASSERT_FALSE(all.empty());
    EXPECT_EQ(all.front().lo, 0u);
    EXPECT_EQ(all.back().hi, std::numeric_limits<uint64_t>::max());
    for (size_t i = 0; i + 1 < all.size(); ++i) {
      EXPECT_LE(all[i].lo, all[i].hi);
      EXPECT_EQ(all[i].hi + 1, all[i + 1].lo) << "gap/overlap after range " << i;
    }
  }
}

TEST(ShardMap, LookupMatchesRanges) {
  ShardMap map(4);
  for (uint64_t probe :
       {uint64_t{0}, uint64_t{1} << 62, uint64_t{3} << 62,
        std::numeric_limits<uint64_t>::max(), mix64(42), mix64(4242)}) {
    const int r = map.ring_of_key(probe);
    bool contained = false;
    for (const auto& range : map.ranges_of(r)) {
      contained = contained || range.contains(probe);
    }
    EXPECT_TRUE(contained) << "key " << probe << " not in ring " << r
                           << "'s own ranges";
  }
}

TEST(ShardMap, NamesSpreadAcrossRings) {
  ShardMap map(4);
  std::map<int, int> counts;
  for (int i = 0; i < 400; ++i) {
    const int r = map.ring_of("group-" + std::to_string(i));
    ASSERT_GE(r, 0);
    ASSERT_LT(r, 4);
    ++counts[r];
  }
  // Uniform would be 100 each; with kDefaultVnodes per ring the largest
  // ownership share stays within ~2x of ideal, so demand every ring gets at
  // least a third of its fair share of names.
  for (int r = 0; r < 4; ++r) EXPECT_GT(counts[r], 33) << "ring " << r;
}

TEST(ShardMap, MixedSequentialKeysSpread) {
  ShardMap map(8);
  std::set<int> rings;
  for (uint64_t key = 0; key < 512; ++key) {
    rings.insert(map.ring_of_key(mix64(key)));
  }
  EXPECT_EQ(rings.size(), 8u);
}

TEST(ShardMap, AddRemoveRingRoundTrips) {
  ShardMap map(4, /*vnodes_per_ring=*/16, /*active_rings=*/3);
  EXPECT_FALSE(map.ring_active(3));
  EXPECT_EQ(map.active_rings(), 3);

  const MigrationPlan add = map.plan_add_ring(3);
  ASSERT_FALSE(add.empty());
  EXPECT_EQ(add.from_version, 0u);
  EXPECT_EQ(add.to_version, 1u);
  for (const MigrationMove& mv : add.moves) EXPECT_EQ(mv.dst, 3);
  map.apply(add);
  EXPECT_EQ(map.version(), 1u);
  EXPECT_TRUE(map.ring_active(3));
  EXPECT_GT(map.owned_fraction(3), 0.0);

  // Removing it cedes every arc back; re-adding restores the identical
  // ownership because vnode_point is a pure function.
  const MigrationPlan rm = map.plan_remove_ring(3);
  ASSERT_FALSE(rm.empty());
  for (const MigrationMove& mv : rm.moves) EXPECT_EQ(mv.src, 3);
  map.apply(rm);
  EXPECT_FALSE(map.ring_active(3));
  EXPECT_EQ(map.version(), 2u);
  EXPECT_EQ(map.owned_fraction(3), 0.0);
}

TEST(ShardMap, StalePlanIsRejected) {
  ShardMap map(3);
  const MigrationPlan plan = map.plan_move_fraction(0, 1, 0.5);
  ASSERT_FALSE(plan.empty());
  map.apply(plan);
  EXPECT_EQ(map.version(), 1u);
  map.apply(plan);  // same plan again: from_version no longer matches
  EXPECT_EQ(map.version(), 1u);
}

// --- DeterministicMerger ----------------------------------------------------

Delivery data_msg(protocol::SeqNum seq, uint8_t tag) {
  Delivery d;
  d.seq = seq;
  d.payload = {std::byte{tag}};
  return d;
}

Delivery skip_msg(protocol::SeqNum seq, uint32_t slots) {
  Delivery d;
  d.seq = seq;
  d.payload = make_skip(slots);
  return d;
}

TEST(Merger, SkipCodecRoundTrips) {
  const auto skip = make_skip(16);
  const auto slots = decode_skip(skip);
  ASSERT_TRUE(slots.has_value());
  EXPECT_EQ(*slots, 16u);
  EXPECT_FALSE(decode_skip(data_msg(1, 7).payload).has_value());
  EXPECT_FALSE(decode_skip({}).has_value());
}

TEST(Merger, RoundRobinConsumesBatchPerRing) {
  DeterministicMerger merger(2, 2);  // M = 2
  std::vector<std::pair<int, protocol::SeqNum>> out;
  merger.set_on_merged(
      [&out](int ring, const Delivery& d) { out.emplace_back(ring, d.seq); });
  // Ring 1 first: nothing can merge until ring 0 produces its burst.
  merger.push(1, data_msg(101, 1));
  merger.push(1, data_msg(102, 1));
  EXPECT_TRUE(out.empty());
  merger.push(0, data_msg(1, 0));
  merger.push(0, data_msg(2, 0));
  // Burst of 2 from ring 0, then the waiting burst from ring 1.
  const std::vector<std::pair<int, protocol::SeqNum>> want = {
      {0, 1}, {0, 2}, {1, 101}, {1, 102}};
  EXPECT_EQ(out, want);
}

TEST(Merger, SkipCreditsAdvanceTheCursor) {
  DeterministicMerger merger(2, 4);
  std::vector<std::pair<int, protocol::SeqNum>> out;
  merger.set_on_merged(
      [&out](int ring, const Delivery& d) { out.emplace_back(ring, d.seq); });
  merger.push(1, data_msg(50, 1));
  merger.push(0, skip_msg(1, 4));  // covers ring 0's whole burst
  const std::vector<std::pair<int, protocol::SeqNum>> want = {{1, 50}};
  EXPECT_EQ(out, want);
  EXPECT_EQ(merger.stats().skip_msgs, 1u);
  EXPECT_EQ(merger.stats().skipped_slots, 4u);
  EXPECT_EQ(merger.cursor(), 1);
}

TEST(Merger, TracesMergeAndSkipEvents) {
  DeterministicMerger merger(2, 1);
  util::Tracer tracer;
  Nanos fake_now = 7;
  merger.set_tracer(&tracer, [&fake_now] { return fake_now; });
  merger.set_on_merged([](int, const Delivery&) {});
  merger.push(0, data_msg(1, 3));
  merger.push(1, skip_msg(9, 1));
  const auto records = tracer.drain();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].event, util::TraceEvent::kMergeDeliver);
  EXPECT_EQ(records[0].a, 0);
  EXPECT_EQ(records[0].b, 1);
  EXPECT_EQ(records[1].event, util::TraceEvent::kSkipMsg);
  EXPECT_EQ(records[1].a, 1);
  EXPECT_EQ(records[1].b, 9);
  // drain() emptied the buffer.
  EXPECT_TRUE(tracer.drain().empty());
}

// --- RingSet ----------------------------------------------------------------

MultiRingConfig small_config(int rings, uint64_t seed) {
  MultiRingConfig cfg;
  cfg.rings = rings;
  cfg.nodes_per_ring = 4;
  cfg.fabric = simnet::FabricParams::one_gig();
  cfg.merge_batch = 8;
  cfg.seed = seed;
  return cfg;
}

std::vector<std::byte> tagged_payload(uint32_t sender, uint32_t index) {
  util::Writer w(64);
  w.u8(0x7F);  // outside every layer's frame-tag space
  w.u32(sender);
  w.u32(index);
  std::vector<std::byte> out = std::move(w).take();
  out.resize(64);
  return out;
}

/// Merged-order fingerprint of one run: every (node, ring, sender, seq)
/// emission, in emission order — byte-identical across deterministic runs.
struct MergedFingerprint {
  std::vector<std::tuple<int, int, uint16_t, protocol::SeqNum>> emissions;
  uint64_t events = 0;

  bool operator==(const MergedFingerprint&) const = default;
};

MergedFingerprint run_sharded(int rings, uint64_t seed, double loss) {
  RingSet set(small_config(rings, seed));
  for (int r = 0; r < rings; ++r) set.ring(r).net().set_loss_rate(loss);
  MergedFingerprint fp;
  set.set_on_merged(
      [&fp](int node, int ring, const Delivery& d, Nanos) {
        fp.emissions.emplace_back(node, ring, d.sender, d.seq);
      });
  set.start_static();
  // Inject 120 keyed messages per node, spread over the first 40 ms.
  for (int node = 0; node < set.nodes_per_ring(); ++node) {
    for (uint32_t i = 0; i < 120; ++i) {
      const Nanos at = util::usec(200) + util::usec(330) * i;
      set.eq().schedule(at, [&set, node, i] {
        set.submit_keyed(node, static_cast<uint64_t>(node) * 1000 + i % 10,
                         Service::kAgreed,
                         tagged_payload(static_cast<uint32_t>(node), i));
      });
    }
  }
  set.run_until(util::msec(120));
  fp.events = set.eq().events_executed();
  return fp;
}

TEST(RingSet, MergedOrderDeterministicAcrossRuns) {
  const MergedFingerprint a = run_sharded(3, 11, 0.0);
  const MergedFingerprint b = run_sharded(3, 11, 0.0);
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a.emissions.empty());
}

TEST(RingSet, MergedOrderDeterministicUnderLoss) {
  // Same RNG seed + loss schedule => byte-identical merged delivery order
  // and an identical event count (full simulation determinism).
  const MergedFingerprint a = run_sharded(3, 23, 0.02);
  const MergedFingerprint b = run_sharded(3, 23, 0.02);
  EXPECT_EQ(a, b);
}

TEST(RingSet, AllNodesSeeTheSameMergedOrder) {
  RingSet set(small_config(2, 5));
  std::vector<std::vector<std::tuple<int, uint16_t, protocol::SeqNum>>>
      per_node(static_cast<size_t>(set.nodes_per_ring()));
  set.set_on_merged([&](int node, int ring, const Delivery& d, Nanos) {
    per_node[static_cast<size_t>(node)].emplace_back(ring, d.sender, d.seq);
  });
  set.start_static();
  for (int node = 0; node < set.nodes_per_ring(); ++node) {
    for (uint32_t i = 0; i < 60; ++i) {
      const Nanos at = util::usec(300) * (i + 1);
      set.eq().schedule(at, [&set, node, i] {
        set.submit_keyed(node, static_cast<uint64_t>(i), Service::kAgreed,
                         tagged_payload(static_cast<uint32_t>(node), i));
      });
    }
  }
  set.run_until(util::msec(150));
  ASSERT_FALSE(per_node[0].empty());
  for (int node = 1; node < set.nodes_per_ring(); ++node) {
    EXPECT_EQ(per_node[static_cast<size_t>(node)], per_node[0])
        << "node " << node << " merged a different order";
  }
  // The load really was sharded: both rings contributed.
  std::set<int> rings_seen;
  for (const auto& [ring, sender, seq] : per_node[0]) rings_seen.insert(ring);
  EXPECT_EQ(rings_seen.size(), 2u);
}

TEST(RingSet, IdleRingDoesNotStallTheMerge) {
  // All traffic goes to ring 0; ring 1 is completely idle. Without skip
  // messages the round-robin would consume one batch from ring 0 and then
  // wait forever on ring 1.
  RingSet set(small_config(2, 9));
  uint64_t merged = 0;
  Nanos last_merge = 0;
  set.set_on_merged([&](int node, int, const Delivery&, Nanos at) {
    if (node == 0) {
      ++merged;
      last_merge = at;
    }
  });
  set.start_static();
  const uint32_t kMessages = 100;  // > several merge batches
  for (uint32_t i = 0; i < kMessages; ++i) {
    set.eq().schedule(util::usec(300) * (i + 1), [&set, i] {
      set.submit(0, /*ring=*/0, Service::kAgreed, tagged_payload(0, i));
    });
  }
  set.run_until(util::msec(200));
  EXPECT_EQ(merged, kMessages);
  // The merger kept up throughout (skips arrived every interval), rather
  // than flushing everything at the end.
  EXPECT_LT(last_merge, util::msec(60));
  EXPECT_GT(set.merger(0).stats().skip_msgs, 10u);
  EXPECT_EQ(set.merger(0).queued(0), 0u);
}

TEST(RingSet, PerRingStatsExposeDeliveriesAndTraffic) {
  RingSet set(small_config(2, 3));
  set.set_on_merged([](int, int, const Delivery&, Nanos) {});
  set.start_static();
  for (uint32_t i = 0; i < 40; ++i) {
    set.eq().schedule(util::usec(400) * (i + 1), [&set, i] {
      set.submit(0, static_cast<int>(i % 2), Service::kAgreed,
                 tagged_payload(0, i));
    });
  }
  set.run_until(util::msec(100));
  const std::vector<harness::ClusterStats> stats = set.ring_stats();
  ASSERT_EQ(stats.size(), 2u);
  for (const harness::ClusterStats& cs : stats) {
    ASSERT_EQ(cs.nodes.size(), 4u);
    // Every node saw the ring's data messages plus its skip traffic.
    EXPECT_GT(cs.delivered_total(), 0u);
    EXPECT_GT(cs.net.datagrams_delivered, 0u);
    EXPECT_GT(cs.max_cpu_utilization(), 0.0);
  }
  // The always-on per-node flight recorders saw protocol activity.
  EXPECT_GT(set.ring(0).tracer(0).total_recorded(), 0u);
}

// --- live migration ----------------------------------------------------------

TEST(RingSetMigration, AddRingUnderLoadCompletesWithIdenticalOrders) {
  MultiRingConfig cfg = small_config(3, 31);
  cfg.active_rings = 2;  // ring 2 runs but owns no hash space yet
  RingSet set(cfg);
  ASSERT_EQ(set.shards().active_rings(), 2);
  std::vector<std::vector<std::tuple<int, uint16_t, protocol::SeqNum>>>
      per_node(static_cast<size_t>(set.nodes_per_ring()));
  set.set_on_merged([&](int node, int ring, const Delivery& d, Nanos) {
    per_node[static_cast<size_t>(node)].emplace_back(ring, d.sender, d.seq);
  });
  set.start_static();

  // Steady keyed load across the whole run; the handoff happens underneath.
  for (int node = 0; node < set.nodes_per_ring(); ++node) {
    for (uint32_t i = 0; i < 150; ++i) {
      const Nanos at = util::usec(200) + util::usec(600) * i;
      set.eq().schedule(at, [&set, node, i] {
        set.submit_keyed(node, static_cast<uint64_t>(node) * 1000 + i % 24,
                         Service::kAgreed,
                         tagged_payload(static_cast<uint32_t>(node), i));
      });
    }
  }
  set.eq().schedule(util::msec(20), [&set] {
    EXPECT_TRUE(set.start_migration(set.shards().plan_add_ring(2)));
  });
  set.run_until(util::msec(250));

  EXPECT_TRUE(set.migration_idle());
  EXPECT_EQ(set.completed_migrations(), 1u);
  EXPECT_EQ(set.shards().version(), 1u);
  EXPECT_TRUE(set.shards().ring_active(2));
  EXPECT_EQ(set.held_messages(), 0u);
  // Every node applied the same map transition (marker-driven).
  for (int node = 0; node < set.nodes_per_ring(); ++node) {
    EXPECT_EQ(set.router(node).version(), 1u) << "node " << node;
    EXPECT_FALSE(set.router(node).migrating());
  }
  // The merged order stayed identical at every node across the handoff.
  ASSERT_FALSE(per_node[0].empty());
  for (int node = 1; node < set.nodes_per_ring(); ++node) {
    EXPECT_EQ(per_node[static_cast<size_t>(node)], per_node[0])
        << "node " << node << " merged a different order across the handoff";
  }
  // The new ring actually took traffic, and markers were merged (but hidden
  // from the application callback, which only saw rings' data).
  std::set<int> rings_seen;
  for (const auto& [ring, sender, seq] : per_node[0]) rings_seen.insert(ring);
  EXPECT_TRUE(rings_seen.contains(2));
  EXPECT_GT(set.merger(0).stats().handoff_markers, 0u);
}

TEST(RingSetMigration, MoveFractionFlushesHeldToDestination) {
  RingSet set(small_config(2, 47));
  uint64_t merged = 0;
  set.set_on_merged(
      [&merged](int node, int, const Delivery&, Nanos) { merged += node == 0; });
  set.start_static();
  for (int node = 0; node < set.nodes_per_ring(); ++node) {
    for (uint32_t i = 0; i < 120; ++i) {
      set.eq().schedule(util::usec(300) * (i + 1), [&set, node, i] {
        set.submit_keyed(node, static_cast<uint64_t>(i % 32), Service::kAgreed,
                         tagged_payload(static_cast<uint32_t>(node), i));
      });
    }
  }
  set.eq().schedule(util::msec(10), [&set] {
    EXPECT_TRUE(set.start_migration(set.shards().plan_move_fraction(0, 1, 0.5)));
  });
  set.run_until(util::msec(250));
  EXPECT_TRUE(set.migration_idle());
  EXPECT_EQ(set.completed_migrations(), 1u);
  // Nothing stranded: every submission held across freeze->activate was
  // flushed to the destination and merged.
  EXPECT_EQ(set.held_messages(), 0u);
  EXPECT_EQ(merged,
            static_cast<uint64_t>(set.nodes_per_ring()) * 120u);
}

TEST(RingSetMigration, SecondMigrationRejectedWhileInFlight) {
  RingSet set(small_config(2, 7));
  set.set_on_merged([](int, int, const Delivery&, Nanos) {});
  set.start_static();
  const MigrationPlan plan = set.shards().plan_move_fraction(0, 1, 0.25);
  ASSERT_FALSE(plan.empty());
  EXPECT_TRUE(set.start_migration(plan));
  EXPECT_FALSE(set.migration_idle());
  EXPECT_FALSE(set.start_migration(set.shards().plan_move_fraction(1, 0, 0.25)))
      << "overlapping migrations must be refused";
  // An empty plan is refused outright.
  set.run_until(util::msec(100));
  EXPECT_TRUE(set.migration_idle());
  EXPECT_FALSE(set.start_migration(MigrationPlan{}));
  EXPECT_EQ(set.completed_migrations(), 1u);
}

// --- GroupLayer over sharded rings ------------------------------------------

/// N logical daemons over a RingSet: every daemon runs one GroupLayer whose
/// sends are routed to each group's shard ring and whose deliveries come
/// from the merged stream.
struct ShardedGroups {
  RingSet set;
  std::vector<std::unique_ptr<groups::GroupLayer>> layers;
  // (node, client, group, payload byte) in merged delivery order.
  std::vector<std::tuple<int, uint32_t, std::string, char>> messages;

  explicit ShardedGroups(int rings, uint64_t seed = 1)
      : set(small_config(rings, seed)) {
    for (int n = 0; n < set.nodes_per_ring(); ++n) {
      std::vector<groups::GroupLayer::SubmitFn> submits;
      for (int r = 0; r < rings; ++r) {
        submits.push_back([this, n, r](Service service,
                                       std::vector<std::byte> payload) {
          set.submit(n, r, service, std::move(payload));
          return true;
        });
      }
      layers.push_back(std::make_unique<groups::GroupLayer>(
          static_cast<protocol::ProcessId>(n), std::move(submits),
          [this](std::string_view group) { return set.shards().ring_of(group); }));
      layers.back()->set_on_message(
          [this, n](uint32_t client, const std::string& group,
                    const std::string&, Service,
                    std::span<const std::byte> payload) {
            messages.emplace_back(n, client, group,
                                  payload.empty()
                                      ? '\0'
                                      : static_cast<char>(payload[0]));
          });
    }
    set.set_on_merged([this](int node, int, const Delivery& d, Nanos) {
      layers[static_cast<size_t>(node)]->on_delivery(d);
    });
    set.start_static();
  }

  void run_ms(int64_t ms) { set.run_until(set.eq().now() + util::msec(ms)); }
};

TEST(ShardedGroupLayer, GroupsOnDifferentRingsStayConsistent) {
  ShardedGroups sg(3);
  // Find two group names that hash to different rings.
  std::string ga = "alpha";
  std::string gb;
  for (int i = 0; i < 64 && gb.empty(); ++i) {
    std::string candidate = "beta-" + std::to_string(i);
    if (sg.set.shards().ring_of(candidate) != sg.set.shards().ring_of(ga)) {
      gb = candidate;
    }
  }
  ASSERT_FALSE(gb.empty());

  ASSERT_TRUE(sg.layers[0]->join(1, "alice", ga));
  ASSERT_TRUE(sg.layers[1]->join(2, "bob", gb));
  sg.run_ms(50);
  // Both groups exist at every daemon, despite living on different rings.
  for (int n = 0; n < sg.set.nodes_per_ring(); ++n) {
    EXPECT_FALSE(sg.layers[static_cast<size_t>(n)]->groups().members_of(ga).empty());
    EXPECT_FALSE(sg.layers[static_cast<size_t>(n)]->groups().members_of(gb).empty());
  }

  ASSERT_TRUE(sg.layers[2]->send(7, "carol", {ga},
                                 Service::kAgreed,
                                 util::to_vector(util::as_bytes("A"))));
  ASSERT_TRUE(sg.layers[3]->send(8, "dave", {gb}, Service::kAgreed,
                                 util::to_vector(util::as_bytes("B"))));
  sg.run_ms(50);

  // alice (node 0, client 1) got A; bob (node 1, client 2) got B.
  std::set<std::tuple<int, uint32_t, std::string, char>> got(
      sg.messages.begin(), sg.messages.end());
  EXPECT_TRUE(got.contains({0, 1u, ga, 'A'}));
  EXPECT_TRUE(got.contains({1, 2u, gb, 'B'}));
  EXPECT_EQ(sg.messages.size(), 2u);
}

TEST(ShardedGroupLayer, DisconnectLeavesGroupsOnEveryRing) {
  ShardedGroups sg(2);
  // Two groups guaranteed to be on both rings (search for a pair).
  std::string g0, g1;
  for (int i = 0; i < 64 && (g0.empty() || g1.empty()); ++i) {
    std::string candidate = "room-" + std::to_string(i);
    const int r = sg.set.shards().ring_of(candidate);
    if (r == 0 && g0.empty()) g0 = candidate;
    if (r == 1 && g1.empty()) g1 = candidate;
  }
  ASSERT_FALSE(g0.empty());
  ASSERT_FALSE(g1.empty());
  ASSERT_TRUE(sg.layers[0]->join(1, "alice", g0));
  ASSERT_TRUE(sg.layers[0]->join(1, "alice", g1));
  sg.run_ms(50);
  ASSERT_FALSE(sg.layers[2]->groups().members_of(g0).empty());
  ASSERT_FALSE(sg.layers[2]->groups().members_of(g1).empty());

  ASSERT_TRUE(sg.layers[0]->disconnect(1, "alice"));
  sg.run_ms(50);
  // alice's memberships are gone everywhere, on both rings.
  for (int n = 0; n < sg.set.nodes_per_ring(); ++n) {
    EXPECT_TRUE(sg.layers[static_cast<size_t>(n)]->groups().members_of(g0).empty());
    EXPECT_TRUE(sg.layers[static_cast<size_t>(n)]->groups().members_of(g1).empty());
  }
}

TEST(ShardedGroupLayer, ElasticRoutingSurvivesRingRemoval) {
  // The elastic assembly: group routing lives in the substrate's versioned
  // ShardRouter (submit_named), so a group's home ring can be drained out
  // from under the layer while clients keep sending.
  RingSet set(small_config(3, 13));
  std::vector<std::unique_ptr<groups::GroupLayer>> layers;
  std::vector<std::vector<std::pair<int, char>>> delivered(
      static_cast<size_t>(set.nodes_per_ring()));
  for (int n = 0; n < set.nodes_per_ring(); ++n) {
    std::vector<groups::GroupLayer::SubmitFn> submits;
    for (int r = 0; r < set.num_rings(); ++r) {
      submits.push_back(
          [&set, n, r](Service service, std::vector<std::byte> payload) {
            set.submit(n, r, service, std::move(payload));
            return true;
          });
    }
    layers.push_back(std::make_unique<groups::GroupLayer>(
        static_cast<protocol::ProcessId>(n), std::move(submits),
        groups::GroupLayer::KeyedSubmitFn(
            [&set, n](std::string_view group, Service service,
                      std::vector<std::byte> payload) {
              set.submit_named(n, group, service, std::move(payload));
              return true;
            })));
    layers.back()->set_on_message(
        [&delivered, n](uint32_t client, const std::string&,
                        const std::string&, Service,
                        std::span<const std::byte> payload) {
          delivered[static_cast<size_t>(n)].emplace_back(
              static_cast<int>(client),
              payload.empty() ? '\0' : static_cast<char>(payload[0]));
        });
  }
  set.set_on_merged([&layers](int node, int, const Delivery& d, Nanos) {
    layers[static_cast<size_t>(node)]->on_delivery(d);
  });
  set.start_static();

  const std::string group = "elastic-room";
  const int home = set.shards().ring_of(group);
  // One member client per daemon, so every daemon delivers every send and
  // the delivery sequences are comparable across nodes.
  for (int n = 0; n < set.nodes_per_ring(); ++n) {
    ASSERT_TRUE(layers[static_cast<size_t>(n)]->join(
        static_cast<uint32_t>(100 + n), "m" + std::to_string(n), group));
  }
  set.run_until(util::msec(40));
  ASSERT_EQ(layers[2]->groups().members_of(group).size(),
            static_cast<size_t>(set.nodes_per_ring()));

  // Drain the group's home ring while node 1 keeps sending: sends landing in
  // the freeze->activate window are held and flushed to the new owner.
  set.eq().schedule(set.eq().now() + util::usec(100), [&set, home] {
    EXPECT_TRUE(set.start_migration(set.shards().plan_remove_ring(home)));
  });
  const uint32_t kSends = 30;
  for (uint32_t i = 0; i < kSends; ++i) {
    set.eq().schedule(set.eq().now() + util::usec(400) * (i + 1),
                      [&layers, &group, i] {
                        EXPECT_TRUE(layers[1]->send(
                            2, "bob", {group}, Service::kAgreed,
                            util::to_vector(util::as_bytes("x"))));
                        (void)i;
                      });
  }
  set.run_until(set.eq().now() + util::msec(200));

  EXPECT_TRUE(set.migration_idle());
  EXPECT_EQ(set.completed_migrations(), 1u);
  EXPECT_FALSE(set.shards().ring_active(home));
  EXPECT_NE(set.shards().ring_of(group), home);
  EXPECT_EQ(set.held_messages(), 0u);
  // Every daemon's local member received every send exactly once — no gap,
  // no dup across the handoff.
  for (int n = 0; n < set.nodes_per_ring(); ++n) {
    const auto& got = delivered[static_cast<size_t>(n)];
    ASSERT_EQ(got.size(), static_cast<size_t>(kSends)) << "node " << n;
    for (const auto& [client, byte] : got) {
      EXPECT_EQ(client, 100 + n);
      EXPECT_EQ(byte, 'x');
    }
  }
}

// --- RSM over the merged stream ---------------------------------------------

class CounterMachine final : public rsm::StateMachine {
 public:
  void apply(std::span<const std::byte> command) override {
    util::Reader r(command);
    const uint32_t key = r.u32();
    const int64_t delta = r.i64();
    if (r.done()) values_[key] += delta;
  }
  [[nodiscard]] std::vector<std::byte> snapshot() const override {
    util::Writer w(12 * values_.size() + 4);
    w.u32(static_cast<uint32_t>(values_.size()));
    for (const auto& [k, v] : values_) {
      w.u32(k);
      w.i64(v);
    }
    return std::move(w).take();
  }
  void restore(std::span<const std::byte> snapshot) override {
    values_.clear();
    util::Reader r(snapshot);
    const uint32_t n = r.u32();
    for (uint32_t i = 0; i < n && r.ok(); ++i) {
      const uint32_t k = r.u32();
      values_[k] = r.i64();
    }
  }
  [[nodiscard]] const std::map<uint32_t, int64_t>& values() const {
    return values_;
  }

 private:
  std::map<uint32_t, int64_t> values_;
};

TEST(MultiRingRsm, ReplicasConvergeAtopShardedRings) {
  // The replicated-state-machine demo runs unchanged on K rings: proposals
  // are sharded by key, every replica applies the merged stream.
  RingSet set(small_config(3, 17));
  const int n = set.nodes_per_ring();
  std::vector<std::unique_ptr<CounterMachine>> machines;
  std::vector<std::unique_ptr<rsm::Replica>> replicas;
  for (int i = 0; i < n; ++i) {
    machines.push_back(std::make_unique<CounterMachine>());
    // Key 0's commands must all take one ring (they contend); route by key.
    auto submit = [&set, i](std::vector<std::byte> payload) {
      util::Reader r(payload);
      r.u8();  // rsm frame tag
      const uint32_t key = r.u32();
      set.submit_keyed(i, key, Service::kAgreed, std::move(payload));
      return true;
    };
    replicas.push_back(std::make_unique<rsm::Replica>(
        static_cast<protocol::ProcessId>(i), *machines[i], submit,
        /*founder=*/true));
  }
  set.set_on_merged([&replicas](int node, int, const Delivery& d, Nanos) {
    replicas[static_cast<size_t>(node)]->on_delivery(d);
  });
  set.start_static();

  // Every node increments 16 keys concurrently.
  for (int node = 0; node < n; ++node) {
    for (uint32_t i = 0; i < 80; ++i) {
      set.eq().schedule(util::usec(250) * (i + 1), [&replicas, node, i] {
        util::Writer w(12);
        w.u32(i % 16);
        w.i64(1);
        const std::vector<std::byte> cmd = std::move(w).take();
        replicas[static_cast<size_t>(node)]->submit(cmd);
      });
    }
  }
  set.run_until(util::msec(200));

  ASSERT_EQ(machines[0]->values().size(), 16u);
  int64_t total = 0;
  for (const auto& [k, v] : machines[0]->values()) total += v;
  EXPECT_EQ(total, static_cast<int64_t>(n) * 80);
  for (int i = 1; i < n; ++i) {
    EXPECT_EQ(machines[static_cast<size_t>(i)]->values(),
              machines[0]->values())
        << "replica " << i << " diverged";
    EXPECT_EQ(replicas[static_cast<size_t>(i)]->stats().applied,
              replicas[0]->stats().applied);
  }
}

// --- measurement helper -----------------------------------------------------

TEST(MultiRingMeasure, PointRunsAndAccountsPerRing) {
  MultiPointConfig cfg;
  cfg.ring = small_config(2, 2);
  cfg.offered_mbps = 60;
  cfg.payload_size = 400;
  cfg.warmup = util::msec(30);
  cfg.measure = util::msec(60);
  const MultiPointResult r = run_multiring_point(cfg);
  EXPECT_GT(r.merged_mbps, 40.0);
  EXPECT_GT(r.messages, 100u);
  EXPECT_GT(r.mean_latency, 0);
  ASSERT_EQ(r.per_ring_mbps.size(), 2u);
  EXPECT_GT(r.per_ring_mbps[0], 0.0);
  EXPECT_GT(r.per_ring_mbps[1], 0.0);
}

}  // namespace
}  // namespace accelring::multiring
