// Multi-datacenter topology: WAN serialization/propagation accounting,
// asymmetric link bandwidth, per-DC buffer isolation, correlated-fault
// primitives, additive extra latency (with the campaign's latency_shift
// pinned), and deterministic rack selection for the correlated-fault
// scenarios.
#include <gtest/gtest.h>

#include <vector>

#include "check/campaign.hpp"
#include "check/schedule.hpp"
#include "harness/cluster.hpp"
#include "simnet/network.hpp"

namespace accelring::simnet {
namespace {

std::vector<std::byte> blob(size_t n) {
  return std::vector<std::byte>(n, std::byte{0x5a});
}

/// Expected delivery time of an uncontended local unicast sent at t=0.
Nanos local_delivery(const FabricParams& p, size_t udp_size) {
  const Nanos ser = p.serialization_delay(Wire::wire_bytes(udp_size, p.mtu));
  return p.host_tx_latency + ser + p.prop_delay   // uplink
         + p.switch_latency + ser + p.prop_delay  // switch + downlink
         + p.host_rx_latency;
}

/// Two DCs with one host each, joined by a single WAN link.
Topology two_dc(const WanLinkParams& link) {
  Topology topo;
  topo.num_dcs = 2;
  topo.hosts = {HostSpec{0, 0, 0, 1.0}, HostSpec{1, 0, 0, 1.0}};
  topo.wan_links = {link};
  return topo;
}

TEST(TopologyModel, SingleDcFactoryValidates) {
  const Topology topo = Topology::single_dc(5);
  EXPECT_EQ(topo.num_hosts(), 5);
  EXPECT_TRUE(topo.single_switch());
  EXPECT_EQ(topo.validate(), "");
}

TEST(TopologyModel, ValidationRejectsBadConfigs) {
  Topology topo;  // no hosts
  EXPECT_NE(topo.validate(), "");

  topo = Topology::single_dc(2);
  topo.hosts[1].dc = 3;  // out of range
  EXPECT_NE(topo.validate(), "");

  topo = Topology::single_dc(2);
  topo.hosts[0].cpu_multiplier = 0.0;
  EXPECT_NE(topo.validate(), "");

  topo = two_dc(WanLinkParams{0, 0});  // self link
  EXPECT_NE(topo.validate(), "");

  WanLinkParams lossy{0, 1};
  lossy.loss_rate = 1.5;
  EXPECT_NE(two_dc(lossy).validate(), "");

  WanLinkParams no_buffer{0, 1};
  no_buffer.buffer_bytes = 0;
  EXPECT_NE(two_dc(no_buffer).validate(), "");
}

TEST(TopologyModel, UnreachableDcIsRejected) {
  // Three DCs, one link: DC 2 is disconnected.
  Topology topo;
  topo.num_dcs = 3;
  topo.hosts = {HostSpec{0}, HostSpec{1}, HostSpec{2}};
  topo.wan_links = {WanLinkParams{0, 1}};
  EXPECT_NE(topo.validate().find("unreachable"), std::string::npos)
      << topo.validate();
  // Closing the chain fixes it.
  topo.wan_links.push_back(WanLinkParams{1, 2});
  EXPECT_EQ(topo.validate(), "");
}

TEST(TopologyModel, MakeWanTopologySplitsContiguously) {
  const Topology topo = make_wan_topology(5, 3, util::msec(3));
  EXPECT_EQ(topo.validate(), "");
  EXPECT_EQ(topo.num_dcs, 3);
  // 5 over 3: first two DCs get 2 hosts, the last gets 1 — contiguous.
  EXPECT_EQ(topo.dc_hosts(0), (std::vector<int>{0, 1}));
  EXPECT_EQ(topo.dc_hosts(1), (std::vector<int>{2, 3}));
  EXPECT_EQ(topo.dc_hosts(2), (std::vector<int>{4}));
  // Full mesh over 3 DCs = 3 links.
  EXPECT_EQ(topo.wan_links.size(), 3u);
}

// ---------------------------------------------------------------------------
// Timing accounting. All tests use uncontended sends so the exact formula
// applies: any off-by-one in serialization or propagation accounting fails
// them with the precise nanosecond delta.

TEST(WanTiming, OneHopAddsSwitchSerializationAndPropagation) {
  const FabricParams p = FabricParams::one_gig();
  const size_t kSize = 100;
  WanLinkParams link{0, 1};
  link.prop_delay = util::msec(10);
  link.bps_ab = link.bps_ba = 1e9;

  EventQueue eq;
  Network net(eq, p, two_dc(link));
  Nanos delivered = -1;
  net.attach(1, [&](SocketId, const Network::Payload&) { delivered = eq.now(); });
  net.send(0, 1, kDataSocket, blob(kSize), 0);
  eq.run_all();

  // One extra store-and-forward stage: the source switch serializes onto the
  // WAN link (after its forwarding latency), then the WAN propagation.
  const Nanos wan_ser = p.serialization_delay(Wire::wire_bytes(kSize, p.mtu));
  const Nanos expected =
      local_delivery(p, kSize) + p.switch_latency + wan_ser + link.prop_delay;
  EXPECT_EQ(delivered, expected);
  EXPECT_EQ(net.stats().wan_datagrams, 1u);
  EXPECT_EQ(net.stats().wan_bytes, Wire::wire_bytes(kSize, p.mtu));
}

TEST(WanTiming, AsymmetricBandwidthSerializesPerDirection) {
  const FabricParams p = FabricParams::one_gig();
  const size_t kSize = 1000;
  WanLinkParams link{0, 1};
  link.prop_delay = util::msec(5);
  link.bps_ab = 1e9;
  link.bps_ba = 1e8;  // reverse direction 10x slower

  EventQueue eq;
  Network net(eq, p, two_dc(link));
  Nanos at_1 = -1, at_0 = -1;
  net.attach(1, [&](SocketId, const Network::Payload&) { at_1 = eq.now(); });
  net.attach(0, [&](SocketId, const Network::Payload&) { at_0 = eq.now(); });
  net.send(0, 1, kDataSocket, blob(kSize), 0);
  eq.run_all();
  net.send(1, 0, kDataSocket, blob(kSize), eq.now());
  const Nanos reverse_sent = eq.now();
  eq.run_all();

  const size_t on_wire = Wire::wire_bytes(kSize, p.mtu);
  const Nanos fast = static_cast<Nanos>(static_cast<double>(on_wire) * 8.0 /
                                        link.bps_ab * 1e9);
  const Nanos slow = static_cast<Nanos>(static_cast<double>(on_wire) * 8.0 /
                                        link.bps_ba * 1e9);
  ASSERT_GE(at_1, 0);
  ASSERT_GE(at_0, 0);
  // Same path both ways except the WAN serialization stage.
  EXPECT_EQ((at_0 - reverse_sent) - at_1, slow - fast);
}

TEST(WanTiming, WanBufferIsIsolatedFromLocalPorts) {
  const FabricParams p = FabricParams::one_gig();
  const size_t kSize = 1000;
  const size_t on_wire = Wire::wire_bytes(kSize, p.mtu);
  WanLinkParams link{0, 1};
  link.bps_ab = 1e8;  // WAN drains 10x slower than hosts inject
  link.buffer_bytes = 2 * on_wire - 1;  // at most one datagram queued

  // DC 0 holds hosts {0, 1}; DC 1 holds host {2}.
  Topology topo;
  topo.num_dcs = 2;
  topo.hosts = {HostSpec{0}, HostSpec{0}, HostSpec{1}};
  topo.wan_links = {link};
  ASSERT_EQ(topo.validate(), "");

  EventQueue eq;
  Network net(eq, p, topo);
  int local = 0, remote = 0;
  net.attach(1, [&](SocketId, const Network::Payload&) { ++local; });
  net.attach(2, [&](SocketId, const Network::Payload&) { ++remote; });
  for (int i = 0; i < 20; ++i) {
    net.send(0, 2, kDataSocket, blob(kSize), 0);  // cross-DC: congests WAN
    net.send(0, 1, kDataSocket, blob(kSize), 0);  // stays inside DC 0
  }
  eq.run_all();

  // The overloaded WAN queue tail-drops, but only at the WAN counter; the
  // local switch ports never congest (1 Gbps in, 1 Gbps out).
  EXPECT_GT(net.stats().drops_wan, 0u);
  EXPECT_EQ(net.stats().drops_buffer, 0u);
  EXPECT_EQ(local, 20);
  EXPECT_LT(remote, 20);
  EXPECT_GT(remote, 0);
  EXPECT_EQ(static_cast<uint64_t>(remote), net.stats().wan_datagrams);
}

TEST(WanTiming, MulticastCrossesEachWanLinkOnce) {
  // Chain 0 - 1 - 2, two hosts per DC: a multicast from DC 0 uses exactly
  // two WAN transmissions (one per chain edge), re-fanning out at each
  // switch, and DC 2 hears it one hop later than DC 1.
  const FabricParams p = FabricParams::one_gig();
  const Topology topo =
      make_wan_topology(6, 3, util::msec(2), 1e9, /*full_mesh=*/false);
  ASSERT_EQ(topo.validate(), "");

  EventQueue eq;
  Network net(eq, p, topo);
  std::vector<int> count(6, 0);
  std::vector<Nanos> at(6, -1);
  for (int h = 1; h < 6; ++h) {
    net.attach(h, [&, h](SocketId, const Network::Payload&) {
      ++count[static_cast<size_t>(h)];
      at[static_cast<size_t>(h)] = eq.now();
    });
  }
  net.send(0, kMulticast, kDataSocket, blob(200), 0);
  eq.run_all();

  EXPECT_EQ(net.stats().wan_datagrams, 2u);
  for (int h = 1; h < 6; ++h) EXPECT_EQ(count[static_cast<size_t>(h)], 1) << h;
  // Same-DC peer first, then DC 1, then DC 2 (one more hop away).
  EXPECT_LT(at[1], at[2]);
  EXPECT_EQ(at[2], at[3]);
  EXPECT_EQ(at[4], at[5]);
  EXPECT_GT(at[4], at[2]);
}

TEST(WanTiming, HeterogeneousNicRateShiftsBothDirections) {
  const size_t kSize = 500;
  const FabricParams p = FabricParams::one_gig();
  Topology topo = Topology::single_dc(2);
  topo.hosts[0].nic_bps = 1e8;  // host 0 uplink and downlink at 100 Mbps
  ASSERT_EQ(topo.validate(), "");

  EventQueue eq;
  Network net(eq, p, topo);
  Nanos at_1 = -1, at_0 = -1;
  net.attach(1, [&](SocketId, const Network::Payload&) { at_1 = eq.now(); });
  net.attach(0, [&](SocketId, const Network::Payload&) { at_0 = eq.now(); });
  net.send(0, 1, kDataSocket, blob(kSize), 0);
  eq.run_all();
  const Nanos mark = eq.now();
  net.send(1, 0, kDataSocket, blob(kSize), mark);
  eq.run_all();

  const size_t on_wire = Wire::wire_bytes(kSize, p.mtu);
  const Nanos slow = static_cast<Nanos>(static_cast<double>(on_wire) * 8.0 /
                                        1e8 * 1e9);
  const Nanos fast = p.serialization_delay(on_wire);
  // 0 -> 1: slow uplink, fast downlink. 1 -> 0: fast uplink, slow downlink.
  // Either way exactly one serialization stage runs at the slow NIC.
  const Nanos expected = local_delivery(p, kSize) + (slow - fast);
  EXPECT_EQ(at_1, expected);
  EXPECT_EQ(at_0 - mark, expected);
}

// ---------------------------------------------------------------------------
// Correlated-fault primitives.

TEST(CorrelatedFaults, WanDownDropsUntilRestored) {
  const FabricParams p = FabricParams::one_gig();
  WanLinkParams link{0, 1};
  link.prop_delay = util::msec(1);
  EventQueue eq;
  Network net(eq, p, two_dc(link));
  int delivered = 0;
  net.attach(1, [&](SocketId, const Network::Payload&) { ++delivered; });

  net.set_wan_down(0, 1, true);
  EXPECT_TRUE(net.wan_down(0, 1));
  EXPECT_TRUE(net.wan_down(1, 0));  // symmetric
  net.send(0, 1, kDataSocket, blob(100), 0);
  eq.run_all();
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(net.stats().drops_wan, 1u);

  net.set_wan_down(0, 1, false);
  net.send(0, 1, kDataSocket, blob(100), eq.now());
  eq.run_all();
  EXPECT_EQ(delivered, 1);

  // clear_link_faults() is the heal-all path.
  net.set_wan_down(0, 1, true);
  net.clear_link_faults();
  EXPECT_FALSE(net.wan_down(0, 1));
}

TEST(CorrelatedFaults, BrownoutDelaysOnlyItsOwnSwitch) {
  const FabricParams p = FabricParams::one_gig();
  const Nanos kExtra = util::usec(500);
  // DC 0: hosts {0, 1}; DC 1: host {2}.
  Topology topo;
  topo.num_dcs = 2;
  topo.hosts = {HostSpec{0}, HostSpec{0}, HostSpec{1}};
  topo.wan_links = {WanLinkParams{0, 1}};

  EventQueue eq;
  Network net(eq, p, topo);
  Nanos local_at = -1, remote_at = -1;
  net.attach(1, [&](SocketId, const Network::Payload&) { local_at = eq.now(); });
  net.attach(2, [&](SocketId, const Network::Payload&) { remote_at = eq.now(); });

  // Baseline, then the same sends under a DC 1 brownout (latency only).
  net.send(0, 1, kDataSocket, blob(100), 0);
  net.send(0, 2, kDataSocket, blob(100), 0);
  eq.run_all();
  const Nanos local_base = local_at;
  const Nanos remote_base = remote_at;

  net.set_dc_brownout(1, 0.0, kExtra);
  const Nanos mark = eq.now();
  net.send(0, 1, kDataSocket, blob(100), mark);
  net.send(0, 2, kDataSocket, blob(100), mark);
  eq.run_all();

  // DC 0's switch is healthy: intra-DC latency is unchanged. Delivery into
  // DC 1 picks up the browned-out switch's forwarding delay exactly once.
  EXPECT_EQ(local_at - mark, local_base);
  EXPECT_EQ(remote_at - mark, remote_base + kExtra);

  net.set_dc_brownout(1, 0.0, 0);  // heals
  const Nanos mark2 = eq.now();
  net.send(0, 1, kDataSocket, blob(100), mark2);  // same NIC contention
  net.send(0, 2, kDataSocket, blob(100), mark2);
  eq.run_all();
  EXPECT_EQ(remote_at - mark2, remote_base);
}

TEST(CorrelatedFaults, BrownoutLossDropsAtThatSwitchOnly) {
  const FabricParams p = FabricParams::one_gig();
  Topology topo;
  topo.num_dcs = 2;
  topo.hosts = {HostSpec{0}, HostSpec{0}, HostSpec{1}};
  topo.wan_links = {WanLinkParams{0, 1}};

  EventQueue eq;
  Network net(eq, p, topo, /*seed=*/99);
  int local = 0, remote = 0;
  net.attach(1, [&](SocketId, const Network::Payload&) { ++local; });
  net.attach(2, [&](SocketId, const Network::Payload&) { ++remote; });

  net.set_dc_brownout(1, 0.5, 0);
  for (int i = 0; i < 200; ++i) {
    net.send(0, 1, kDataSocket, blob(64), 0);
    net.send(0, 2, kDataSocket, blob(64), 0);
  }
  eq.run_all();
  EXPECT_EQ(local, 200);  // DC 0 unaffected
  EXPECT_LT(remote, 200);
  EXPECT_GT(remote, 0);
  EXPECT_EQ(net.stats().drops_wan, static_cast<uint64_t>(200 - remote));
}

TEST(CorrelatedFaults, RackSelectionIsDeterministic) {
  using check::campaign_wan_topology;
  const simnet::Topology topo = campaign_wan_topology(5);
  ASSERT_EQ(topo.validate(), "");
  const auto racks = topo.racks();
  // 5 hosts, 3 DCs, racks of 2: {0,1} {2,3} {4} — stable across calls.
  ASSERT_EQ(racks.size(), 3u);
  EXPECT_EQ(racks[0], (std::vector<int>{0, 1}));
  EXPECT_EQ(racks[1], (std::vector<int>{2, 3}));
  EXPECT_EQ(racks[2], (std::vector<int>{4}));

  // The rack_power generator picks its victim group from those racks,
  // deterministically per seed, and never takes out so many hosts that the
  // survivors lose quorum-forming headroom.
  const check::Scenario* sc = check::find_scenario("rack_power");
  ASSERT_NE(sc, nullptr);
  EXPECT_TRUE(sc->wan);
  for (uint64_t seed = 1; seed <= 40; ++seed) {
    const check::Schedule a = sc->make(seed, 5, util::msec(250));
    const check::Schedule b = sc->make(seed, 5, util::msec(250));
    EXPECT_EQ(check::describe(a), check::describe(b)) << seed;
    for (const check::FaultEvent& e : a.events) {
      if (e.kind != check::FaultKind::kRackPower) continue;
      ASSERT_FALSE(e.group.empty());
      EXPECT_LE(e.group.size(), 3u);  // <= nodes - 2
      for (int h : e.group) {
        EXPECT_GE(h, 0);
        EXPECT_LT(h, 5);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Additive extra latency (the set_extra_latency composition fix).

TEST(ExtraLatency, ShiftsComposeAdditivelyAndClampAtZero) {
  EventQueue eq;
  Network net(eq, FabricParams::one_gig(), 2);
  net.add_extra_latency(util::usec(5));
  net.add_extra_latency(util::usec(3));
  EXPECT_EQ(net.extra_latency(), util::usec(8));
  net.add_extra_latency(-util::usec(5));
  EXPECT_EQ(net.extra_latency(), util::usec(3));
  net.add_extra_latency(-util::usec(3));
  EXPECT_EQ(net.extra_latency(), 0);
  // A stale negative shift (its onset was absorbed by a heal-all setting the
  // latency to 0) must not make the fabric faster than its base latency.
  net.set_extra_latency(0);
  net.add_extra_latency(-util::usec(7));
  EXPECT_EQ(net.extra_latency(), 0);
}

TEST(ExtraLatency, OverlappingShiftsDelayDeliveryBySum) {
  const FabricParams p = FabricParams::one_gig();
  EventQueue eq;
  Network net(eq, p, 2);
  Nanos at = -1;
  net.attach(1, [&](SocketId, const Network::Payload&) { at = eq.now(); });

  const Nanos base = local_delivery(p, 100);
  net.add_extra_latency(util::usec(10));
  net.add_extra_latency(util::usec(4));
  net.send(0, 1, kDataSocket, blob(100), 0);
  eq.run_all();
  EXPECT_EQ(at, base + util::usec(14));

  // First shift expires: only its own contribution is removed.
  net.add_extra_latency(-util::usec(10));
  const Nanos mark = eq.now();
  net.send(0, 1, kDataSocket, blob(100), mark);
  eq.run_all();
  EXPECT_EQ(at - mark, base + util::usec(4));
}

// The latency_shift campaign scenario drives the additive path end to end;
// pin that it stays clean (the pre-fix set-to-zero expiry masked overlapping
// shifts instead of composing them).
TEST(ExtraLatency, LatencyShiftCampaignScenarioStaysClean) {
  check::RunOptions run;
  run.nodes = 5;
  run.horizon = util::msec(250);
  run.drain = util::msec(300);
  const check::Scenario* sc = check::find_scenario("latency_shift");
  ASSERT_NE(sc, nullptr);
  for (uint64_t seed : {1ull, 7ull, 23ull}) {
    const check::Schedule schedule = sc->make(seed, run.nodes, run.horizon);
    const check::RunResult r = check::run_schedule(run, schedule, seed);
    EXPECT_TRUE(r.ok) << "seed " << seed << "\n" << r.report;
    EXPECT_GT(r.delivered, 0u) << seed;
  }
  // wan_latency_surge is the overlap case: its generator emits two shifts
  // whose windows intersect, so expiry order matters.
  const check::Scenario* surge = check::find_scenario("wan_latency_surge");
  ASSERT_NE(surge, nullptr);
  bool found_overlap = false;
  for (uint64_t seed = 1; seed <= 10 && !found_overlap; ++seed) {
    const check::Schedule s = surge->make(seed, 5, util::msec(250));
    ASSERT_EQ(s.events.size(), 2u);
    found_overlap = s.events[1].at < s.events[0].at + s.events[0].duration;
  }
  EXPECT_TRUE(found_overlap);
}

// ---------------------------------------------------------------------------
// Per-host CPU multipliers flow from the topology into the cluster.

TEST(HeterogeneousHosts, CpuMultiplierComesFromTopology) {
  simnet::Topology topo = check::campaign_wan_topology(5);
  topo.hosts[2].cpu_multiplier = 2.5;
  harness::SimCluster cluster(topo, FabricParams::one_gig(),
                              check::wan_proto_config(),
                              harness::ImplProfile::kLibrary, /*seed=*/3);
  EXPECT_EQ(cluster.base_cpu_multiplier(0), 1.0);
  EXPECT_EQ(cluster.base_cpu_multiplier(2), 2.5);
  // The heterogeneous cluster still forms a ring and delivers.
  cluster.start_static();
  int delivered = 0;
  cluster.add_on_deliver(
      [&](int, const protocol::Delivery&, Nanos) { ++delivered; });
  cluster.eq().schedule_after(util::msec(30), [&] {
    cluster.submit(0, protocol::Service::kAgreed,
                   std::vector<std::byte>(64, std::byte{1}));
  });
  cluster.run_until(util::msec(200));
  EXPECT_GT(delivered, 0);
}

}  // namespace
}  // namespace accelring::simnet
