// Additional simulator edge cases: jumbo MTU accounting, explicit send
// times, drop filters, and port-queue draining.
#include <gtest/gtest.h>

#include "simnet/network.hpp"
#include "simnet/process.hpp"

namespace accelring::simnet {
namespace {

std::vector<std::byte> blob(size_t n) {
  return std::vector<std::byte>(n, std::byte{0x77});
}

TEST(JumboFrames, SingleFrameAt9000Mtu) {
  EXPECT_EQ(Wire::frames(8850, 9000), 1u);
  EXPECT_EQ(Wire::frames(8850, 1500), 6u);
  // Wire bytes shrink accordingly: one IP+Ethernet header set instead of 6.
  EXPECT_LT(Wire::wire_bytes(8850, 9000), Wire::wire_bytes(8850, 1500));
  EXPECT_EQ(Wire::wire_bytes(8850, 9000),
            8850 + Wire::kUdpHeader + Wire::kIpHeader + Wire::kEthOverhead);
}

TEST(JumboFrames, BoundaryExactFit) {
  // 9000 - 20 (IP) - 8 (UDP) = 8972 payload fits one jumbo frame.
  EXPECT_EQ(Wire::frames(8972, 9000), 1u);
  EXPECT_EQ(Wire::frames(8973, 9000), 2u);
  // Standard MTU boundary: 1472.
  EXPECT_EQ(Wire::frames(1472, 1500), 1u);
  EXPECT_EQ(Wire::frames(1473, 1500), 2u);
}

TEST(JumboFrames, FewerFragmentsSurviveLossBetter) {
  FabricParams p = FabricParams::ten_gig();
  p.loss_rate = 0.05;
  auto survivors = [&](size_t mtu) {
    p.mtu = mtu;
    EventQueue eq;
    Network net(eq, p, 2, /*seed=*/11);
    int count = 0;
    net.attach(1, [&](SocketId, const Network::Payload&) { ++count; });
    for (int i = 0; i < 2000; ++i) net.send(0, 1, kDataSocket, blob(8850), 0);
    eq.run_all();
    return count;
  };
  EXPECT_GT(survivors(9000), survivors(1500));
}

TEST(SendTime, ExplicitWhenDelaysDeparture) {
  EventQueue eq;
  FabricParams p = FabricParams::one_gig();
  Network net(eq, p, 2);
  Nanos arrival_now = -1;
  Nanos arrival_later = -1;
  net.attach(1, [&](SocketId, const Network::Payload& d) {
    (d->size() == 100 ? arrival_now : arrival_later) = eq.now();
  });
  net.send(0, 1, kDataSocket, blob(100), 0);
  net.send(0, 1, kDataSocket, blob(200), util::usec(50));
  eq.run_all();
  ASSERT_GE(arrival_now, 0);
  ASSERT_GE(arrival_later, 0);
  // The delayed send departs 50us later (plus its own serialization).
  EXPECT_GT(arrival_later - arrival_now, util::usec(45));
}

TEST(DropFilter, SelectiveBySocketAndSource) {
  EventQueue eq;
  Network net(eq, FabricParams::one_gig(), 3);
  int data_count = 0;
  int token_count = 0;
  net.attach(2, [&](SocketId sock, const Network::Payload&) {
    (sock == kDataSocket ? data_count : token_count)++;
  });
  net.set_drop_filter([](int src, int, int sock, const std::vector<std::byte>&) {
    return src == 0 && sock == kTokenSocket;
  });
  net.send(0, 2, kDataSocket, blob(10), 0);
  net.send(0, 2, kTokenSocket, blob(10), 0);  // dropped
  net.send(1, 2, kTokenSocket, blob(10), 0);  // passes (src 1)
  eq.run_all();
  EXPECT_EQ(data_count, 1);
  EXPECT_EQ(token_count, 1);
  EXPECT_EQ(net.stats().drops_fault, 1u);
}

TEST(PortQueue, DrainsAndAcceptsAfterBackoff) {
  EventQueue eq;
  FabricParams p = FabricParams::one_gig();
  p.port_buffer_bytes = 3 * Wire::wire_bytes(1400);
  Network net(eq, p, 3);
  int received = 0;
  net.attach(2, [&](SocketId, const Network::Payload&) { ++received; });
  // Two senders converge on host 2's downlink: their combined arrival rate
  // is twice the drain rate, so the 3-packet port queue overflows.
  for (int i = 0; i < 8; ++i) {
    net.send(0, 2, kDataSocket, blob(1400), 0);
    net.send(1, 2, kDataSocket, blob(1400), 0);
  }
  eq.run_all();
  const int first_wave = received;
  EXPECT_LT(first_wave, 16);
  EXPECT_GT(net.stats().drops_buffer, 0u);
  // ...but after the queue drains, new packets flow again.
  for (int i = 0; i < 3; ++i) {
    net.send(0, 2, kDataSocket, blob(1400), eq.now());
  }
  eq.run_all();
  EXPECT_EQ(received, first_wave + 3);
}

TEST(ProcessEdge, InboxDepthVisible) {
  EventQueue eq;
  Process proc(eq, ProcessCosts{}, 1 << 20);
  // No sink attached: packets stay queued (drain does nothing useful but
  // depth is observable before any drain event runs).
  proc.enqueue(kDataSocket,
               std::make_shared<const std::vector<std::byte>>(blob(10)));
  proc.enqueue(kDataSocket,
               std::make_shared<const std::vector<std::byte>>(blob(10)));
  EXPECT_EQ(proc.inbox_depth(kDataSocket), 2u);
  EXPECT_EQ(proc.inbox_depth(kTokenSocket), 0u);
}

}  // namespace
}  // namespace accelring::simnet
