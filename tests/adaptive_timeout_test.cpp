// Adaptive failure detection: estimator unit behaviour, plus the A/B
// experiment the feature exists for — at a loss rate where the static
// timeouts eject at least one live member, the adaptive configuration
// (same base constants) keeps the full ring.
#include <gtest/gtest.h>

#include "check/campaign.hpp"
#include "protocol/timeout_estimator.hpp"
#include "util/time.hpp"

namespace accelring {
namespace {

using protocol::ProtocolConfig;
using protocol::TimeoutEstimator;

TEST(TimeoutEstimator, ReportsStaticValuesUntilWarm) {
  ProtocolConfig cfg;
  cfg.adaptive_timeouts = true;
  TimeoutEstimator est(cfg);
  EXPECT_EQ(est.token_loss(), cfg.timeouts.token_loss);
  est.sample(util::msec(1));
  est.sample(util::msec(1));
  EXPECT_FALSE(est.warm());
  EXPECT_EQ(est.token_loss(), cfg.timeouts.token_loss);
  EXPECT_EQ(est.consensus(), cfg.timeouts.consensus);
  est.sample(util::msec(1));
  EXPECT_TRUE(est.warm());
  EXPECT_NE(est.token_loss(), cfg.timeouts.token_loss);
}

TEST(TimeoutEstimator, StaticWhenDisabled) {
  ProtocolConfig cfg;
  cfg.adaptive_timeouts = false;
  TimeoutEstimator est(cfg);
  for (int i = 0; i < 10; ++i) est.sample(util::usec(500));
  EXPECT_EQ(est.token_loss(), cfg.timeouts.token_loss);
  EXPECT_EQ(est.consensus(), cfg.timeouts.consensus);
}

TEST(TimeoutEstimator, TracksRotationAndStaysClamped) {
  ProtocolConfig cfg;
  cfg.adaptive_timeouts = true;
  TimeoutEstimator est(cfg);
  for (int i = 0; i < 20; ++i) est.sample(util::usec(800));
  // Quiet ring: detection much faster than the 100ms static constant, but
  // never below two token-retransmit intervals.
  EXPECT_LT(est.token_loss(), cfg.timeouts.token_loss);
  EXPECT_GE(est.token_loss(), 2 * cfg.timeouts.token_retransmit);

  // A sustained slowdown raises the estimate but the ceiling holds.
  for (int i = 0; i < 200; ++i) est.sample(util::msec(300));
  EXPECT_LE(est.token_loss(), 4 * cfg.timeouts.token_loss);
  EXPECT_LE(est.consensus(), 4 * cfg.timeouts.consensus);
}

TEST(TimeoutEstimator, ResetForgetsHistory) {
  ProtocolConfig cfg;
  cfg.adaptive_timeouts = true;
  TimeoutEstimator est(cfg);
  for (int i = 0; i < 5; ++i) est.sample(util::msec(2));
  est.reset();
  EXPECT_FALSE(est.warm());
  EXPECT_EQ(est.samples(), 0u);
  EXPECT_EQ(est.token_loss(), cfg.timeouts.token_loss);
}

TEST(TimeoutEstimator, VarianceWidensTheTimeout) {
  ProtocolConfig cfg;
  cfg.adaptive_timeouts = true;
  TimeoutEstimator steady(cfg);
  TimeoutEstimator jittery(cfg);
  for (int i = 0; i < 40; ++i) {
    steady.sample(util::msec(1));
    jittery.sample(i % 2 == 0 ? util::usec(200) : util::msec(2));
  }
  EXPECT_GT(jittery.token_loss(), steady.token_loss());
}

// --- A/B: live-member ejection under a loss burst --------------------------

/// One heavy loss burst against an otherwise healthy 5-node ring. The
/// schedule name is deliberately not a catalogue scenario, so run_schedule
/// treats it as a plain engine-level run.
check::Schedule burst_schedule(double rate, util::Nanos at,
                               util::Nanos duration) {
  check::Schedule s{"ab_loss_burst", {}};
  check::FaultEvent e;
  e.kind = check::FaultKind::kLossBurst;
  e.at = at;
  e.rate = rate;
  e.duration = duration;
  s.events.push_back(e);
  return s;
}

uint64_t false_ejections_across_seeds(bool adaptive, double rate) {
  check::RunOptions opt;
  opt.nodes = 5;
  opt.horizon = util::msec(250);
  opt.drain = util::msec(300);
  opt.proto = check::fast_proto_config();
  opt.proto.adaptive_timeouts = adaptive;
  uint64_t total = 0;
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    const auto schedule =
        burst_schedule(rate, util::msec(60), util::msec(120));
    const check::RunResult run = check::run_schedule(opt, schedule, seed);
    // Safety must hold in both configurations; the A/B is about liveness.
    EXPECT_TRUE(run.ok) << "adaptive=" << adaptive << " seed=" << seed
                        << "\n" << run.report;
    total += run.false_ejections;
  }
  return total;
}

TEST(AdaptiveTimeoutAB, NoFalseEjectionsWhereStaticTimeoutsEject) {
  // At this loss rate the static 30ms token-loss timeout ejects live
  // members (the token stalls longer than the constant while data still
  // flows); the adaptive configuration, with the very same base constants,
  // must keep every live member in the ring across all seeds. Much past
  // ~0.5 loss both configurations eject — the token genuinely cannot
  // circulate — so the A/B window sits below that.
  const double kRate = 0.40;
  const uint64_t fixed = false_ejections_across_seeds(false, kRate);
  const uint64_t adaptive = false_ejections_across_seeds(true, kRate);
  EXPECT_GE(fixed, 1u) << "burst too weak to eject under static timeouts; "
                          "the A/B comparison is vacuous";
  EXPECT_EQ(adaptive, 0u);
}

}  // namespace
}  // namespace accelring
