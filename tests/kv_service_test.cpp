// End-to-end KV service tests over a SimCluster: replicated puts/gets with
// oracle checking, the lease fast path, and restart recovery via chunked
// state transfer (snapshot + retained suffix, not full replay).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "check/kv_oracle.hpp"
#include "harness/cluster.hpp"
#include "kv/service.hpp"

namespace accelring::kv {
namespace {

using check::KvOracle;
using harness::ImplProfile;
using harness::SimCluster;

protocol::ProtocolConfig fast_cfg() {
  protocol::ProtocolConfig cfg;
  cfg.timeouts.token_loss = util::msec(30);
  cfg.timeouts.join = util::msec(5);
  cfg.timeouts.consensus = util::msec(60);
  return cfg;
}

/// Issues a scripted op sequence for one session, chaining each op off the
/// completion of the previous one (the session protocol's one-in-flight
/// rule), and collects every outcome.
struct ScriptedSession {
  KvService* service = nullptr;
  int node = 0;
  uint64_t uuid = 0;
  uint64_t next_seq = 0;
  std::vector<KvOp> script;
  size_t cursor = 0;
  uint64_t min_version = 0;  ///< version floor from the last acked write
  std::vector<Frontend::Outcome> outcomes;

  void start(Nanos at) {
    service->eq().schedule(at, [this] { issue_next(); });
  }

  void issue_next() {
    if (cursor >= script.size()) return;
    const KvOp& op = script[cursor++];
    const bool ok = service->frontend(node).issue(
        uuid, ++next_seq, op, is_mutation(op.type) ? 0 : min_version,
        [this](const Frontend::Outcome& outcome) {
          outcomes.push_back(outcome);
          if (is_mutation(outcome.type)) min_version = outcome.version;
          // Small gap before the next op; completion order still serial.
          service->eq().schedule_after(util::msec(2),
                                      [this] { issue_next(); });
        });
    ASSERT_TRUE(ok) << "session " << uuid << " had an op in flight";
    arm_watchdog(next_seq);
  }

  /// Ops shed or lost around view changes are resubmitted; the session
  /// dedup floor makes any duplicate harmless.
  void arm_watchdog(uint64_t seq_token) {
    service->eq().schedule_after(util::msec(60), [this, seq_token] {
      if (next_seq == seq_token && service->frontend(node).in_flight(uuid)) {
        service->frontend(node).retry(uuid);
        arm_watchdog(seq_token);
      }
    });
  }
};

KvOp put_op(std::string key, std::string value) {
  KvOp op;
  op.type = OpType::kPut;
  op.key = std::move(key);
  op.value = std::move(value);
  return op;
}

KvOp get_op(std::string key) {
  KvOp op;
  op.type = OpType::kGet;
  op.key = std::move(key);
  return op;
}

TEST(KvService, ReplicatedPutsAndGetsConvergeUnderOracle) {
  SimCluster cluster(3, simnet::FabricParams::one_gig(), fast_cfg(),
                     ImplProfile::kLibrary, 101);
  ServiceConfig cfg;
  KvService service(cluster, cfg);
  KvOracle oracle;
  oracle.attach(service);
  cluster.start_static();

  std::vector<ScriptedSession> sessions(6);
  for (int s = 0; s < 6; ++s) {
    sessions[s].service = &service;
    sessions[s].node = s % 3;
    sessions[s].uuid = 100 + s;
    for (int i = 0; i < 8; ++i) {
      const std::string key = "k" + std::to_string((s * 8 + i) % 10);
      sessions[s].script.push_back(put_op(key, "v" + std::to_string(i)));
      sessions[s].script.push_back(get_op(key));
    }
    sessions[s].start(util::msec(20) + s * util::msec(1));
  }
  cluster.run_until(util::sec(2));
  oracle.finalize();

  EXPECT_TRUE(oracle.ok()) << oracle.report();
  for (auto& session : sessions) {
    EXPECT_EQ(session.outcomes.size(), session.script.size())
        << "session " << session.uuid << " lost ops";
  }
  // All three machines agree.
  for (int n = 1; n < 3; ++n) {
    EXPECT_EQ(service.machine(n, 0).version(),
              service.machine(0, 0).version());
    EXPECT_EQ(service.machine(n, 0).snapshot(),
              service.machine(0, 0).snapshot());
  }
  // Read-your-writes: every get reflects a state at least as new as the
  // session's preceding put.
  for (auto& session : sessions) {
    for (size_t i = 1; i < session.outcomes.size(); i += 2) {
      const auto& get = session.outcomes[i];
      ASSERT_EQ(get.type, OpType::kGet);
      EXPECT_EQ(get.result.status, Status::kOk);
      EXPECT_GE(get.version, session.outcomes[i - 1].version);
    }
  }
}

TEST(KvService, LeaseHolderServesReadsLocally) {
  SimCluster cluster(3, simnet::FabricParams::one_gig(), fast_cfg(),
                     ImplProfile::kLibrary, 103);
  ServiceConfig cfg;
  KvService service(cluster, cfg);
  KvOracle oracle;
  oracle.attach(service);
  cluster.start_static();

  // One write to seed the key, then repeated reads from every node.
  ScriptedSession writer;
  writer.service = &service;
  writer.uuid = 500;
  writer.script.push_back(put_op("hot", "x"));
  writer.start(util::msec(20));

  std::vector<ScriptedSession> readers(3);
  for (int n = 0; n < 3; ++n) {
    readers[n].service = &service;
    readers[n].node = n;
    readers[n].uuid = 600 + n;
    for (int i = 0; i < 30; ++i) readers[n].script.push_back(get_op("hot"));
    // Start well after the first lease grant has been ordered.
    readers[n].start(util::msec(120));
  }
  cluster.run_until(util::sec(2));
  oracle.finalize();
  EXPECT_TRUE(oracle.ok()) << oracle.report();

  EXPECT_GT(service.stats().grants_applied, 0u);
  // Exactly one node (the designated holder of shard 0's view) serves its
  // reads under the lease; the others go through the total order.
  int lease_nodes = 0;
  uint64_t lease_reads = 0;
  for (int n = 0; n < 3; ++n) {
    const auto& st = service.frontend(n).stats();
    if (st.lease_reads > 0) ++lease_nodes;
    lease_reads += st.lease_reads;
  }
  EXPECT_EQ(lease_nodes, 1);
  EXPECT_GE(lease_reads, 25u);
  EXPECT_EQ(oracle.lease_serves(), lease_reads);

  // Lease-served reads still saw the committed value.
  for (auto& reader : readers) {
    for (const auto& outcome : reader.outcomes) {
      EXPECT_EQ(outcome.result.status, Status::kOk);
      EXPECT_EQ(outcome.result.value, "x");
    }
  }
}

TEST(KvService, LeaseRevokedOnViewChangeUntilRegrant) {
  SimCluster cluster(3, simnet::FabricParams::one_gig(), fast_cfg(),
                     ImplProfile::kLibrary, 107);
  ServiceConfig cfg;
  KvService service(cluster, cfg);
  KvOracle oracle;
  oracle.attach(service);
  cluster.start_static();

  ScriptedSession writer;
  writer.service = &service;
  writer.node = 1;
  writer.uuid = 700;
  writer.script.push_back(put_op("k", "v"));
  writer.start(util::msec(20));

  // Crash the designated holder (node 0) mid-run; the survivors must
  // re-grant among themselves and keep serving without stale reads.
  cluster.eq().schedule(util::msec(300), [&] {
    cluster.crash_node(0);
    service.on_crash(0);
  });
  std::vector<ScriptedSession> readers(2);
  for (int n = 0; n < 2; ++n) {
    readers[n].service = &service;
    readers[n].node = n + 1;
    readers[n].uuid = 800 + n;
    for (int i = 0; i < 100; ++i) readers[n].script.push_back(get_op("k"));
    readers[n].start(util::msec(150));
  }
  cluster.run_until(util::sec(3));
  oracle.finalize();

  EXPECT_TRUE(oracle.ok()) << oracle.report();
  EXPECT_GE(service.stats().grants_applied, 2u);
  // The surviving view {1, 2} designates node 1; its reads after the
  // handover are lease-served.
  EXPECT_GT(service.frontend(1).stats().lease_reads, 0u);
  for (auto& reader : readers) {
    EXPECT_EQ(reader.outcomes.size(), reader.script.size());
  }
}

TEST(KvService, RestartRecoversViaStateTransferNotFullReplay) {
  SimCluster cluster(3, simnet::FabricParams::one_gig(), fast_cfg(),
                     ImplProfile::kLibrary, 109);
  ServiceConfig cfg;
  cfg.replica.checkpoint_interval = 16;  // frequent checkpoints + compaction
  KvService service(cluster, cfg);
  KvOracle oracle;
  oracle.attach(service);
  cluster.start_static();

  // Phase 1: 120 writes, then crash node 2.
  std::vector<ScriptedSession> sessions(3);
  for (int s = 0; s < 3; ++s) {
    sessions[s].service = &service;
    sessions[s].node = s;
    sessions[s].uuid = 900 + s;
    for (int i = 0; i < 40; ++i) {
      sessions[s].script.push_back(
          put_op("k" + std::to_string(i % 12), "p1-" + std::to_string(i)));
    }
    sessions[s].start(util::msec(20));
  }
  cluster.eq().schedule(util::msec(400), [&] {
    cluster.crash_node(2);
    service.on_crash(2);
    oracle.note_restart(2);  // version floors reset with the node
  });
  // Phase 2: more traffic while node 2 is down, then restart it.
  ScriptedSession late;
  late.service = &service;
  late.uuid = 950;
  for (int i = 0; i < 30; ++i) {
    late.script.push_back(
        put_op("k" + std::to_string(i % 12), "p2-" + std::to_string(i)));
  }
  late.start(util::msec(450));
  cluster.eq().schedule(util::msec(900), [&] {
    cluster.restart_node(2);
    service.on_restart(2);
    oracle.note_restart(2);
  });
  cluster.run_until(util::sec(4));
  oracle.finalize();

  EXPECT_TRUE(oracle.ok()) << oracle.report();
  const auto& restarted = service.replica(2, 0).stats();
  const auto& veteran = service.replica(0, 0).stats();
  ASSERT_TRUE(service.replica(2, 0).initialized());
  EXPECT_GE(restarted.snapshots_restored, 1u);
  // The transfer landed the joiner at a checkpointed position: everything
  // before it arrived as state, not as replayed commands.
  EXPECT_GT(restarted.restore_position, 0u);
  EXPECT_LT(restarted.applied + restarted.suffix_replayed, veteran.applied)
      << "restart replayed (nearly) the full history instead of restoring "
         "a snapshot plus suffix";
  // Compaction kept the veterans' retained logs bounded.
  EXPECT_LE(service.replica(0, 0).retained_log_size(),
            cfg.replica.checkpoint_interval);
  // State converged.
  EXPECT_EQ(service.machine(2, 0).snapshot(), service.machine(0, 0).snapshot());
}

}  // namespace
}  // namespace accelring::kv
