// Recovery edge cases: holes (messages no survivor holds), token loss
// without crashes, and cascaded failures during recovery itself.
#include <gtest/gtest.h>

#include "harness/cluster.hpp"
#include "harness/workload.hpp"
#include "protocol/wire.hpp"

namespace accelring::harness {
namespace {

using protocol::PacketType;
using protocol::Service;

protocol::ProtocolConfig fast_config() {
  protocol::ProtocolConfig cfg;
  cfg.timeouts.token_loss = util::msec(30);
  cfg.timeouts.join = util::msec(5);
  cfg.timeouts.consensus = util::msec(60);
  return cfg;
}

struct StreamLog {
  struct Event {
    bool config = false;
    bool transitional = false;
    uint32_t sender = 0;
    uint32_t index = 0;
  };
  std::vector<std::vector<Event>> per_node;

  explicit StreamLog(int n) : per_node(n) {}
  void attach(SimCluster& cluster) {
    cluster.set_on_deliver(
        [this](int node, const protocol::Delivery& d, protocol::Nanos) {
          PayloadStamp stamp;
          if (!parse_payload(d.payload, stamp)) return;
          per_node[node].push_back(Event{false, false, stamp.sender,
                                         stamp.index});
        });
    cluster.set_on_config(
        [this](int node, const protocol::ConfigurationChange& c) {
          per_node[node].push_back(Event{true, c.transitional, 0, 0});
        });
  }
  [[nodiscard]] std::vector<std::pair<uint32_t, uint32_t>> messages(
      int node) const {
    std::vector<std::pair<uint32_t, uint32_t>> out;
    for (const Event& e : per_node[node]) {
      if (!e.config) out.emplace_back(e.sender, e.index);
    }
    return out;
  }
};

TEST(RecoveryTest, HoleSkippedAfterTransitionalConfig) {
  const int kNodes = 4;
  SimCluster cluster(kNodes, simnet::FabricParams::one_gig(), fast_config(),
                     ImplProfile::kLibrary, 61);
  StreamLog log(kNodes);
  log.attach(cluster);
  cluster.start_static();

  // From t=20ms, every data packet node 3 multicasts is lost — including
  // its retransmission answers — so its message becomes a hole once it
  // crashes.
  bool filter_active = false;
  cluster.net().set_drop_filter(
      [&filter_active](int src, int, int, const std::vector<std::byte>& d) {
        return filter_active && src == 3 &&
               protocol::peek_type(d) == PacketType::kData;
      });
  cluster.eq().schedule(util::msec(20), [&] { filter_active = true; });

  // Background traffic from the survivors so sequence numbers keep growing
  // past the doomed message.
  for (int i = 0; i < 40; ++i) {
    cluster.eq().schedule(util::msec(2) + i * util::msec(1), [&cluster, i] {
      PayloadStamp stamp{cluster.eq().now(), static_cast<uint32_t>(i % 3),
                         static_cast<uint32_t>(i)};
      cluster.submit(i % 3, Service::kAgreed, make_payload(64, stamp));
    });
  }
  // The doomed message (sender 3, index 999): sequenced but never received.
  cluster.eq().schedule(util::msec(25), [&cluster] {
    PayloadStamp stamp{cluster.eq().now(), 3, 999};
    cluster.submit(3, Service::kAgreed, make_payload(64, stamp));
  });
  cluster.eq().schedule(util::msec(32),
                        [&] { cluster.net().set_host_down(3, true); });
  cluster.run_until(util::sec(3));

  // Survivors converge on a 3-member ring and identical streams.
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(cluster.engine(i).operational()) << "node " << i;
    EXPECT_EQ(cluster.engine(i).ring().size(), 3u);
    EXPECT_EQ(log.messages(i).size(), 40u) << "node " << i;
    EXPECT_EQ(log.messages(i), log.messages(0)) << "node " << i;
  }
  // The doomed message is a hole: delivered nowhere.
  for (int i = 0; i < 3; ++i) {
    for (const auto& [sender, index] : log.messages(i)) {
      EXPECT_FALSE(sender == 3 && index == 999);
    }
  }
}

TEST(RecoveryTest, TokenLossReformsRingWithoutCrash) {
  const int kNodes = 4;
  SimCluster cluster(kNodes, simnet::FabricParams::one_gig(), fast_config(),
                     ImplProfile::kLibrary, 67);
  StreamLog log(kNodes);
  log.attach(cluster);
  cluster.start_static();

  // Eat every token (regular and commit) for 40 ms: the ring must detect
  // the loss and rebuild — with the same membership.
  bool eat_tokens = false;
  cluster.net().set_drop_filter(
      [&eat_tokens](int, int, int sock, const std::vector<std::byte>&) {
        return eat_tokens && sock == simnet::kTokenSocket;
      });
  cluster.eq().schedule(util::msec(20), [&] { eat_tokens = true; });
  cluster.eq().schedule(util::msec(60), [&] { eat_tokens = false; });

  for (int i = 0; i < 60; ++i) {
    cluster.eq().schedule(util::msec(2) + i * util::msec(2), [&cluster, i] {
      PayloadStamp stamp{cluster.eq().now(), static_cast<uint32_t>(i % 4),
                         static_cast<uint32_t>(i)};
      cluster.submit(i % 4, Service::kAgreed, make_payload(64, stamp));
    });
  }
  cluster.run_until(util::sec(3));

  uint64_t reconfigs = 0;
  for (int i = 0; i < kNodes; ++i) {
    ASSERT_TRUE(cluster.engine(i).operational()) << "node " << i;
    EXPECT_EQ(cluster.engine(i).ring().size(), static_cast<size_t>(kNodes));
    EXPECT_EQ(log.messages(i).size(), 60u) << "node " << i;
    EXPECT_EQ(log.messages(i), log.messages(0));
    reconfigs = std::max(reconfigs, cluster.engine(i).stats().memberships);
  }
  EXPECT_GE(reconfigs, 2u);  // initial + at least one reformation
}

TEST(RecoveryTest, CascadedCrashDuringRecovery) {
  const int kNodes = 5;
  SimCluster cluster(kNodes, simnet::FabricParams::one_gig(), fast_config(),
                     ImplProfile::kLibrary, 71);
  StreamLog log(kNodes);
  log.attach(cluster);
  cluster.start_static();

  for (int i = 0; i < 120; ++i) {
    cluster.eq().schedule(util::msec(2) + i * util::msec(2), [&cluster, i] {
      PayloadStamp stamp{cluster.eq().now(), static_cast<uint32_t>(i % 3),
                         static_cast<uint32_t>(i)};
      cluster.submit(i % 3, Service::kAgreed, make_payload(64, stamp));
    });
  }
  // First crash; the second lands while membership is still settling.
  cluster.eq().schedule(util::msec(50),
                        [&] { cluster.net().set_host_down(4, true); });
  cluster.eq().schedule(util::msec(88),
                        [&] { cluster.net().set_host_down(3, true); });
  cluster.run_until(util::sec(4));

  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(cluster.engine(i).operational()) << "node " << i;
    EXPECT_EQ(cluster.engine(i).ring().size(), 3u) << "node " << i;
    EXPECT_EQ(log.messages(i).size(), 120u) << "node " << i;
    EXPECT_EQ(log.messages(i), log.messages(0)) << "node " << i;
  }
}

TEST(RecoveryTest, SafeMessagesAcrossMembershipChange) {
  // Safe-service traffic spanning a crash: survivors deliver everything
  // consistently, with the transitional config separating what could be
  // confirmed under the old membership from what could not.
  const int kNodes = 4;
  SimCluster cluster(kNodes, simnet::FabricParams::one_gig(), fast_config(),
                     ImplProfile::kLibrary, 73);
  StreamLog log(kNodes);
  log.attach(cluster);
  cluster.start_static();

  for (int i = 0; i < 80; ++i) {
    cluster.eq().schedule(util::msec(2) + i * util::msec(1), [&cluster, i] {
      PayloadStamp stamp{cluster.eq().now(), static_cast<uint32_t>(i % 3),
                         static_cast<uint32_t>(i)};
      cluster.submit(i % 3, Service::kSafe, make_payload(64, stamp));
    });
  }
  cluster.eq().schedule(util::msec(40),
                        [&] { cluster.net().set_host_down(3, true); });
  cluster.run_until(util::sec(3));

  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(log.messages(i).size(), 80u) << "node " << i;
    EXPECT_EQ(log.messages(i), log.messages(0)) << "node " << i;
    // Full event streams (messages + configs interleaved) must also agree.
    ASSERT_EQ(log.per_node[i].size(), log.per_node[0].size());
    for (size_t k = 0; k < log.per_node[0].size(); ++k) {
      EXPECT_EQ(log.per_node[i][k].config, log.per_node[0][k].config);
      EXPECT_EQ(log.per_node[i][k].index, log.per_node[0][k].index);
    }
  }
}

}  // namespace
}  // namespace accelring::harness
