// Property tests for the log2 histogram against a sorted-vector oracle:
// quantile error bounded by the bucket width, merge equivalent to a single
// combined stream, and exact handling of extrema, zero, negatives
// (underflow), and the overflow bucket.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "obs/metrics.hpp"
#include "util/rng.hpp"

namespace accelring::obs {
namespace {

/// Exact quantile with the same rank convention as Histogram::quantile
/// (1-based rank ceil(q*n)).
int64_t oracle_quantile(std::vector<int64_t> samples, double q) {
  std::sort(samples.begin(), samples.end());
  if (samples.empty()) return 0;
  if (q <= 0.0) return samples.front();
  if (q >= 1.0) return samples.back();
  const auto n = static_cast<uint64_t>(samples.size());
  uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(n));
  if (static_cast<double>(rank) < q * static_cast<double>(n)) ++rank;
  if (rank < 1) rank = 1;
  if (rank > n) rank = n;
  return samples[rank - 1];
}

/// Width of the bucket holding `v` — the quantile error bound at `v`.
int64_t bucket_width(int64_t v) {
  if (v < 2) return 1;
  int i = 0;
  for (uint64_t x = static_cast<uint64_t>(v); x > 1; x >>= 1) ++i;
  if (i >= Histogram::kBuckets - 1) i = Histogram::kBuckets - 1;
  return int64_t{1} << i;  // hi - lo for [2^i, 2^(i+1))
}

void check_against_oracle(const Histogram& h,
                          const std::vector<int64_t>& samples,
                          const char* label) {
  ASSERT_EQ(h.count(), samples.size()) << label;
  for (const double q : {0.0, 0.5, 0.9, 0.99, 0.999, 1.0}) {
    const int64_t exact = oracle_quantile(samples, q);
    const int64_t est = h.quantile(q);
    // Bounded by the width of the bucket the exact sample falls into (the
    // estimate can only move within that bucket), and clamped to the true
    // extrema, so it never leaves the sample range.
    EXPECT_LE(std::abs(est - exact), bucket_width(exact))
        << label << " q=" << q << " exact=" << exact << " est=" << est;
    const int64_t lo = *std::min_element(samples.begin(), samples.end());
    const int64_t hi = *std::max_element(samples.begin(), samples.end());
    EXPECT_GE(est, lo) << label << " q=" << q;
    EXPECT_LE(est, hi) << label << " q=" << q;
  }
}

TEST(HistogramProperty, RandomStreamsMatchOracle) {
  util::Rng rng(2024);
  for (int round = 0; round < 40; ++round) {
    Histogram h;
    std::vector<int64_t> samples;
    const int n = 1 + static_cast<int>(rng.below(5000));
    // Mix scales so every round crosses several bucket magnitudes.
    const uint64_t scale = 1ULL << rng.below(40);
    for (int i = 0; i < n; ++i) {
      const auto v = static_cast<int64_t>(rng.below(scale + 1));
      h.record(v);
      samples.push_back(v);
    }
    check_against_oracle(h, samples, "random");
    // Exact-extrema invariants.
    EXPECT_EQ(h.min(), *std::min_element(samples.begin(), samples.end()));
    EXPECT_EQ(h.max(), *std::max_element(samples.begin(), samples.end()));
  }
}

TEST(HistogramProperty, MergeEqualsSingleStream) {
  util::Rng rng(7);
  for (int round = 0; round < 20; ++round) {
    Histogram parts[4];
    Histogram whole;
    std::vector<int64_t> samples;
    const uint64_t scale = 1ULL << (8 + rng.below(30));
    for (int i = 0; i < 3000; ++i) {
      const auto v = static_cast<int64_t>(rng.below(scale));
      parts[rng.below(4)].record(v);
      whole.record(v);
      samples.push_back(v);
    }
    Histogram merged;
    for (const Histogram& p : parts) merged.merge(p);
    // Merge must equal the single-stream histogram exactly: same buckets,
    // same extrema, hence identical quantiles — not merely close.
    EXPECT_EQ(merged.count(), whole.count());
    EXPECT_EQ(merged.min(), whole.min());
    EXPECT_EQ(merged.max(), whole.max());
    for (int b = 0; b < Histogram::kBuckets; ++b) {
      ASSERT_EQ(merged.bucket(b), whole.bucket(b)) << "bucket " << b;
    }
    for (const double q : {0.5, 0.9, 0.99, 0.999}) {
      EXPECT_EQ(merged.quantile(q), whole.quantile(q)) << "q=" << q;
    }
    check_against_oracle(merged, samples, "merged");
  }
}

TEST(HistogramProperty, ZeroAndOneLandInBucketZero) {
  Histogram h;
  h.record(0);
  h.record(1);
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.quantile(0.5), 0);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 1);
}

TEST(HistogramProperty, NegativesCountAsUnderflow) {
  Histogram h;
  h.record(-5);
  h.record(-1);
  h.record(10);
  h.record(20);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.underflow(), 2u);
  EXPECT_EQ(h.min(), -5);
  // Ranks 1-2 are the negative samples: quantiles there report min().
  EXPECT_EQ(h.quantile(0.25), -5);
  EXPECT_EQ(h.quantile(1.0), 20);
}

TEST(HistogramProperty, OverflowBucketKeepsExactMax) {
  Histogram h;
  const int64_t huge = int64_t{1} << 62;
  h.record(huge);
  h.record(huge + 17);
  h.record(3);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.max(), huge + 17);
  // Quantiles into the overflow bucket are clamped to the tracked max.
  EXPECT_LE(h.quantile(0.99), huge + 17);
  EXPECT_EQ(h.quantile(1.0), huge + 17);
}

TEST(HistogramProperty, EmptyHistogramIsAllZero) {
  const Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
  EXPECT_EQ(h.quantile(0.5), 0);
  EXPECT_EQ(h.mean(), 0.0);
}

TEST(HistogramProperty, SortedAndReversedStreamsAgree) {
  // Record order must not matter (pure bucket counts).
  std::vector<int64_t> samples;
  util::Rng rng(99);
  for (int i = 0; i < 2000; ++i) {
    samples.push_back(static_cast<int64_t>(rng.below(1u << 20)));
  }
  Histogram fwd;
  Histogram rev;
  std::vector<int64_t> sorted = samples;
  std::sort(sorted.begin(), sorted.end());
  for (const int64_t v : sorted) fwd.record(v);
  for (auto it = sorted.rbegin(); it != sorted.rend(); ++it) rev.record(*it);
  for (const double q : {0.5, 0.9, 0.99}) {
    EXPECT_EQ(fwd.quantile(q), rev.quantile(q));
  }
  check_against_oracle(fwd, samples, "sorted");
}

}  // namespace
}  // namespace accelring::obs
