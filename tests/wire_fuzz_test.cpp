// Wire-format robustness: every decoder must survive truncation, bit flips,
// and arbitrary garbage without crashing or over-reading, reject anything
// whose CRC does not check out, and round-trip every field of every message
// type exactly.
#include <gtest/gtest.h>

#include <vector>

#include "protocol/wire.hpp"
#include "util/rng.hpp"

namespace accelring::protocol {
namespace {

DataMsg sample_data() {
  DataMsg m;
  m.ring_id = (7u << 16) | 3u;
  m.seq = 123456789;
  m.pid = 11;
  m.round = 42;
  m.service = Service::kSafe;
  m.post_token = true;
  m.recovered = true;
  m.packed = true;
  m.header_pad = 48;
  for (int i = 0; i < 100; ++i) m.payload.push_back(std::byte{uint8_t(i)});
  return m;
}

TokenMsg sample_token() {
  TokenMsg m;
  m.ring_id = (9u << 16) | 1u;
  m.token_id = 987654;
  m.round = 321;
  m.seq = 55555;
  m.aru = 54321;
  m.aru_id = 6;
  m.fcc = 17;
  m.rtr = {100, 7, 54000, 1};
  return m;
}

JoinMsg sample_join() {
  JoinMsg m;
  m.sender = 4;
  m.old_ring_id = (3u << 16) | 2u;
  m.proc_set = {0, 1, 2, 4, 9};
  m.fail_set = {3, 7};
  return m;
}

CommitTokenMsg sample_commit() {
  CommitTokenMsg m;
  m.new_ring_id = (12u << 16) | 0u;
  m.token_id = 9;
  m.rotation = 1;
  for (ProcessId p : {0, 2, 5}) {
    CommitEntry e;
    e.pid = p;
    e.old_ring_id = (11u << 16) | p;
    e.old_aru = 1000 + p;
    e.old_high_seq = 2000 + p;
    e.old_safe_line = 900 + p;
    e.filled = p != 5;
    m.members.push_back(e);
  }
  return m;
}

/// Feed a buffer to every decoder and the type peeker; none may crash, and
/// the caller can assert on how many succeeded.
int decode_everything(std::span<const std::byte> packet) {
  int accepted = 0;
  (void)peek_type(packet);
  if (decode_data(packet)) ++accepted;
  if (decode_token(packet)) ++accepted;
  if (decode_join(packet)) ++accepted;
  if (decode_commit(packet)) ++accepted;
  return accepted;
}

// --- round trips ------------------------------------------------------------

TEST(WireFuzz, DataRoundTripsEveryField) {
  const DataMsg m = sample_data();
  const auto packet = encode(m);
  ASSERT_EQ(peek_type(packet), PacketType::kData);
  const auto d = decode_data(packet);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->ring_id, m.ring_id);
  EXPECT_EQ(d->seq, m.seq);
  EXPECT_EQ(d->pid, m.pid);
  EXPECT_EQ(d->round, m.round);
  EXPECT_EQ(d->service, m.service);
  EXPECT_EQ(d->post_token, m.post_token);
  EXPECT_EQ(d->recovered, m.recovered);
  EXPECT_EQ(d->packed, m.packed);
  EXPECT_EQ(d->header_pad, m.header_pad);
  EXPECT_EQ(d->payload, m.payload);
  EXPECT_EQ(packet.size(),
            DataMsg::encoded_size(m.payload.size(), m.header_pad));
}

TEST(WireFuzz, TokenRoundTripsEveryField) {
  const TokenMsg m = sample_token();
  const auto packet = encode(m);
  ASSERT_EQ(peek_type(packet), PacketType::kToken);
  const auto t = decode_token(packet);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->ring_id, m.ring_id);
  EXPECT_EQ(t->token_id, m.token_id);
  EXPECT_EQ(t->round, m.round);
  EXPECT_EQ(t->seq, m.seq);
  EXPECT_EQ(t->aru, m.aru);
  EXPECT_EQ(t->aru_id, m.aru_id);
  EXPECT_EQ(t->fcc, m.fcc);
  EXPECT_EQ(t->rtr, m.rtr);
}

TEST(WireFuzz, JoinRoundTripsEveryField) {
  const JoinMsg m = sample_join();
  const auto packet = encode(m);
  ASSERT_EQ(peek_type(packet), PacketType::kJoin);
  const auto j = decode_join(packet);
  ASSERT_TRUE(j.has_value());
  EXPECT_EQ(j->sender, m.sender);
  EXPECT_EQ(j->old_ring_id, m.old_ring_id);
  EXPECT_EQ(j->proc_set, m.proc_set);
  EXPECT_EQ(j->fail_set, m.fail_set);
}

TEST(WireFuzz, CommitRoundTripsEveryField) {
  const CommitTokenMsg m = sample_commit();
  const auto packet = encode(m);
  ASSERT_EQ(peek_type(packet), PacketType::kCommitToken);
  const auto c = decode_commit(packet);
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->new_ring_id, m.new_ring_id);
  EXPECT_EQ(c->token_id, m.token_id);
  EXPECT_EQ(c->rotation, m.rotation);
  ASSERT_EQ(c->members.size(), m.members.size());
  for (size_t i = 0; i < m.members.size(); ++i) {
    EXPECT_EQ(c->members[i].pid, m.members[i].pid);
    EXPECT_EQ(c->members[i].old_ring_id, m.members[i].old_ring_id);
    EXPECT_EQ(c->members[i].old_aru, m.members[i].old_aru);
    EXPECT_EQ(c->members[i].old_high_seq, m.members[i].old_high_seq);
    EXPECT_EQ(c->members[i].old_safe_line, m.members[i].old_safe_line);
    EXPECT_EQ(c->members[i].filled, m.members[i].filled);
  }
}

// --- adversarial inputs -----------------------------------------------------

std::vector<std::vector<std::byte>> sample_packets() {
  return {encode(sample_data()), encode(sample_token()),
          encode(sample_join()), encode(sample_commit())};
}

TEST(WireFuzz, EveryTruncationIsRejected) {
  // The CRC trails the packet, so any strict prefix must decode to nullopt —
  // from every decoder, not just the matching one.
  for (const auto& packet : sample_packets()) {
    for (size_t len = 0; len < packet.size(); ++len) {
      EXPECT_EQ(decode_everything(std::span(packet).first(len)), 0)
          << "accepted a " << len << "-byte prefix of a " << packet.size()
          << "-byte packet";
    }
  }
}

TEST(WireFuzz, CrossDecodingIsRejected) {
  // A valid packet of one type must not decode as any other type.
  const auto packets = sample_packets();
  EXPECT_FALSE(decode_token(packets[0]).has_value());
  EXPECT_FALSE(decode_join(packets[0]).has_value());
  EXPECT_FALSE(decode_commit(packets[0]).has_value());
  EXPECT_FALSE(decode_data(packets[1]).has_value());
  EXPECT_FALSE(decode_data(packets[2]).has_value());
  EXPECT_FALSE(decode_data(packets[3]).has_value());
}

TEST(WireFuzz, BitFlipsNeverCrashAndAlmostAlwaysReject) {
  util::Rng rng(0xF1A6);
  int accepted = 0;
  int trials = 0;
  for (const auto& packet : sample_packets()) {
    for (int iter = 0; iter < 400; ++iter) {
      std::vector<std::byte> mutated = packet;
      const int flips = 1 + static_cast<int>(rng.next() % 3);
      for (int f = 0; f < flips; ++f) {
        const size_t pos = rng.next() % mutated.size();
        mutated[pos] ^= std::byte{uint8_t(1u << (rng.next() % 8))};
      }
      ++trials;
      accepted += decode_everything(mutated) > 0 ? 1 : 0;
    }
  }
  // The 32-bit CRC makes surviving a flip astronomically unlikely; allow a
  // stray collision rather than flake, but anything visible means the CRC
  // is not actually covering the packet.
  EXPECT_LE(accepted, trials / 100);
}

TEST(WireFuzz, RandomGarbageNeverCrashes) {
  util::Rng rng(0xBAD5EED);
  for (int iter = 0; iter < 2000; ++iter) {
    const size_t len = rng.next() % 160;
    std::vector<std::byte> garbage(len);
    for (auto& b : garbage) b = std::byte{uint8_t(rng.next())};
    EXPECT_EQ(decode_everything(garbage), 0);
  }
}

TEST(WireFuzz, TrailingBytesAreRejected) {
  // A packet with extra bytes appended is not the packet that was sent.
  for (const auto& packet : sample_packets()) {
    std::vector<std::byte> padded = packet;
    padded.push_back(std::byte{0});
    EXPECT_EQ(decode_everything(padded), 0)
        << "accepted a packet with a trailing byte";
  }
}

}  // namespace
}  // namespace accelring::protocol
