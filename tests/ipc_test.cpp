// Unit tests for the client<->daemon IPC framing and request handling.
#include "daemon/ipc.hpp"

#include <gtest/gtest.h>

#include "daemon/daemon.hpp"
#include "harness/cluster.hpp"
#include "util/bytes.hpp"

namespace accelring::daemon {
namespace {

TEST(IpcCodec, RequestRoundTrip) {
  ClientRequest req;
  req.op = RequestOp::kSend;
  req.client = 42;
  req.name = "sender#3";
  req.groups = {"alpha", "beta"};
  req.service = Service::kSafe;
  req.payload = util::to_vector(util::as_bytes("data"));
  const auto d = decode_request(encode(req));
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->op, RequestOp::kSend);
  EXPECT_EQ(d->client, 42u);
  EXPECT_EQ(d->name, "sender#3");
  EXPECT_EQ(d->groups, req.groups);
  EXPECT_EQ(d->service, Service::kSafe);
  EXPECT_EQ(d->payload, req.payload);
}

TEST(IpcCodec, AllRequestOpsRoundTrip) {
  for (auto op : {RequestOp::kConnect, RequestOp::kJoin, RequestOp::kLeave,
                  RequestOp::kSend, RequestOp::kDisconnect}) {
    ClientRequest req;
    req.op = op;
    const auto d = decode_request(encode(req));
    ASSERT_TRUE(d.has_value());
    EXPECT_EQ(d->op, op);
  }
}

TEST(IpcCodec, EventRoundTrip) {
  DaemonEvent ev;
  ev.op = EventOp::kView;
  ev.client = 7;
  ev.group = "chat";
  ev.view_id = 12;
  ev.members = {"alice", "bob"};
  const auto d = decode_event(encode(ev));
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->op, EventOp::kView);
  EXPECT_EQ(d->group, "chat");
  EXPECT_EQ(d->view_id, 12u);
  EXPECT_EQ(d->members, ev.members);
}

TEST(IpcCodec, GarbageRejected) {
  const std::byte junk[] = {std::byte{0xFF}, std::byte{0x01}};
  EXPECT_FALSE(decode_request(junk).has_value());
  EXPECT_FALSE(decode_event(junk).has_value());
  EXPECT_FALSE(decode_request({}).has_value());
}

TEST(IpcCodec, BadServiceValueRejected) {
  ClientRequest req;
  auto bytes = encode(req);
  // The service byte sits right after op+client+name(len 0)+groups(count 0).
  // Corrupt it to an out-of-range value.
  bytes[1 + 4 + 2 + 1] = std::byte{9};
  EXPECT_FALSE(decode_request(bytes).has_value());
}

TEST(IpcRequests, ConnectThenJoinThenSendViaFrames) {
  harness::SimCluster cluster(2, simnet::FabricParams::one_gig(), {},
                              harness::ImplProfile::kLibrary);
  Daemon d0(0, cluster.engine(0));
  Daemon d1(1, cluster.engine(1));
  cluster.set_on_deliver([&](int node, const protocol::Delivery& d,
                             protocol::Nanos) {
    (node == 0 ? d0 : d1).on_delivery(d);
  });
  cluster.start_static();

  // Connect a receiving session on daemon 1 via the normal API (we need the
  // callback), and drive daemon 0 purely with IPC frames.
  std::vector<std::string> received;
  Session rx;
  rx.name = "rx";
  rx.on_message = [&](const std::string&, const std::string&, Service,
                      std::span<const std::byte> p) {
    received.emplace_back(reinterpret_cast<const char*>(p.data()), p.size());
  };
  const ClientId rx_id = d1.connect(std::move(rx));
  d1.join(rx_id, "room");
  cluster.run_until(util::msec(50));

  ClientRequest connect;
  connect.op = RequestOp::kConnect;
  connect.name = "tx";
  const auto ev = d0.handle_request(encode(connect));
  ASSERT_TRUE(ev.has_value());
  EXPECT_EQ(ev->op, EventOp::kConnected);
  const ClientId tx_id = ev->client;

  ClientRequest send;
  send.op = RequestOp::kSend;
  send.client = tx_id;
  send.groups = {"room"};
  send.payload = util::to_vector(util::as_bytes("via-ipc"));
  EXPECT_FALSE(d0.handle_request(encode(send)).has_value());
  cluster.run_until(util::msec(100));

  ASSERT_EQ(received.size(), 1u);
  EXPECT_EQ(received[0], "via-ipc");
}

TEST(IpcRequests, MalformedFrameIgnored) {
  harness::SimCluster cluster(1, simnet::FabricParams::one_gig(), {},
                              harness::ImplProfile::kLibrary);
  Daemon d(0, cluster.engine(0));
  const std::byte junk[] = {std::byte{7}, std::byte{7}};
  EXPECT_FALSE(d.handle_request(junk).has_value());
  EXPECT_EQ(d.session_count(), 0u);
}

}  // namespace
}  // namespace accelring::daemon
