// Unit tests for the wire codecs.
#include "protocol/wire.hpp"

#include <gtest/gtest.h>

#include "util/bytes.hpp"

namespace accelring::protocol {
namespace {

DataMsg sample_data() {
  DataMsg m;
  m.ring_id = 0x10001;
  m.seq = 12345;
  m.pid = 3;
  m.round = 77;
  m.service = Service::kSafe;
  m.post_token = true;
  m.recovered = false;
  m.header_pad = 16;
  m.payload = util::to_vector(util::as_bytes("payload-data"));
  return m;
}

TEST(DataCodec, RoundTrip) {
  const DataMsg m = sample_data();
  const auto bytes = encode(m);
  const auto d = decode_data(bytes);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->ring_id, m.ring_id);
  EXPECT_EQ(d->seq, m.seq);
  EXPECT_EQ(d->pid, m.pid);
  EXPECT_EQ(d->round, m.round);
  EXPECT_EQ(d->service, Service::kSafe);
  EXPECT_TRUE(d->post_token);
  EXPECT_FALSE(d->recovered);
  EXPECT_EQ(d->header_pad, 16);
  EXPECT_EQ(d->payload, m.payload);
}

TEST(DataCodec, EncodedSizeMatchesPrediction) {
  const DataMsg m = sample_data();
  EXPECT_EQ(encode(m).size(),
            DataMsg::encoded_size(m.payload.size(), m.header_pad));
}

TEST(DataCodec, AllServiceLevelsSurvive) {
  for (Service s : {Service::kReliable, Service::kFifo, Service::kCausal,
                    Service::kAgreed, Service::kSafe}) {
    DataMsg m = sample_data();
    m.service = s;
    const auto d = decode_data(encode(m));
    ASSERT_TRUE(d.has_value()) << service_name(s);
    EXPECT_EQ(d->service, s);
  }
}

TEST(DataCodec, EmptyPayloadAllowed) {
  DataMsg m = sample_data();
  m.payload.clear();
  m.header_pad = 0;
  const auto d = decode_data(encode(m));
  ASSERT_TRUE(d.has_value());
  EXPECT_TRUE(d->payload.empty());
}

TEST(DataCodec, CorruptionRejected) {
  auto bytes = encode(sample_data());
  bytes[10] ^= std::byte{0x40};
  EXPECT_FALSE(decode_data(bytes).has_value());
}

TEST(DataCodec, TruncationRejected) {
  const auto bytes = encode(sample_data());
  for (size_t cut : {size_t{0}, size_t{1}, size_t{4}, bytes.size() - 1}) {
    EXPECT_FALSE(
        decode_data(std::span(bytes).first(cut)).has_value());
  }
}

TEST(DataCodec, TrailingGarbageRejected) {
  auto bytes = encode(sample_data());
  bytes.push_back(std::byte{0});
  EXPECT_FALSE(decode_data(bytes).has_value());
}

TokenMsg sample_token() {
  TokenMsg t;
  t.ring_id = 0x20002;
  t.token_id = 999;
  t.round = 55;
  t.seq = 1'000'000;
  t.aru = 999'990;
  t.aru_id = 5;
  t.fcc = 123;
  t.rtr = {100, 205, 300000};
  return t;
}

TEST(TokenCodec, RoundTrip) {
  const TokenMsg t = sample_token();
  const auto d = decode_token(encode(t));
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->ring_id, t.ring_id);
  EXPECT_EQ(d->token_id, t.token_id);
  EXPECT_EQ(d->round, t.round);
  EXPECT_EQ(d->seq, t.seq);
  EXPECT_EQ(d->aru, t.aru);
  EXPECT_EQ(d->aru_id, t.aru_id);
  EXPECT_EQ(d->fcc, t.fcc);
  EXPECT_EQ(d->rtr, t.rtr);
}

TEST(TokenCodec, EmptyRtrList) {
  TokenMsg t = sample_token();
  t.rtr.clear();
  const auto d = decode_token(encode(t));
  ASSERT_TRUE(d.has_value());
  EXPECT_TRUE(d->rtr.empty());
}

TEST(TokenCodec, LargeRtrList) {
  TokenMsg t = sample_token();
  t.rtr.clear();
  for (SeqNum s = 1; s <= 500; ++s) t.rtr.push_back(s * 3);
  const auto d = decode_token(encode(t));
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->rtr.size(), 500u);
  EXPECT_EQ(d->rtr.back(), 1500);
}

TEST(TokenCodec, HealthVectorRoundTrip) {
  TokenMsg t = sample_token();
  for (ProcessId p = 0; p < 3; ++p) {
    TokenHealth h;
    h.pid = p;
    h.hold_us = 100 + p;
    h.work = 7 * (p + 1);
    h.rtr_count = static_cast<uint16_t>(p);
    h.backlog = static_cast<uint16_t>(40 + p);
    t.health.push_back(h);
  }
  const auto d = decode_token(encode(t));
  ASSERT_TRUE(d.has_value());
  ASSERT_EQ(d->health.size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(d->health[i].pid, t.health[i].pid);
    EXPECT_EQ(d->health[i].hold_us, t.health[i].hold_us);
    EXPECT_EQ(d->health[i].work, t.health[i].work);
    EXPECT_EQ(d->health[i].rtr_count, t.health[i].rtr_count);
    EXPECT_EQ(d->health[i].backlog, t.health[i].backlog);
  }
}

TEST(TokenCodec, EmptyHealthOmitsTheSection) {
  // The health vector is an optional trailing section: with no entries the
  // encoding must be byte-identical to a pre-gray-failure build's token, so
  // mixed deployments interoperate and gray-disabled benches stay
  // bit-identical.
  TokenMsg bare = sample_token();
  const size_t bare_size = encode(bare).size();
  TokenMsg with = sample_token();
  with.health.push_back(TokenHealth{});
  EXPECT_GT(encode(with).size(), bare_size);
  const auto d = decode_token(encode(bare));
  ASSERT_TRUE(d.has_value());
  EXPECT_TRUE(d->health.empty());
}

TEST(TokenCodec, TruncatedHealthRejected) {
  TokenMsg t = sample_token();
  TokenHealth h;
  h.pid = 2;
  t.health.assign(4, h);
  auto bytes = encode(t);
  bytes.resize(bytes.size() - 10);  // cut into the health entries
  EXPECT_FALSE(decode_token(bytes).has_value());
}

TEST(TokenCodec, BogusRtrCountRejected) {
  auto bytes = encode(sample_token());
  // Flip a bit in the CRC so it still fails safely, then check a direct
  // truncation: either way decode must not read out of bounds.
  bytes.resize(bytes.size() - 8);
  EXPECT_FALSE(decode_token(bytes).has_value());
}

TEST(JoinCodec, RoundTrip) {
  JoinMsg j;
  j.sender = 4;
  j.old_ring_id = 0x30003;
  j.proc_set = {1, 2, 4, 7};
  j.fail_set = {3};
  const auto d = decode_join(encode(j));
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->sender, 4);
  EXPECT_EQ(d->old_ring_id, j.old_ring_id);
  EXPECT_EQ(d->proc_set, j.proc_set);
  EXPECT_EQ(d->fail_set, j.fail_set);
}

TEST(JoinCodec, EmptySetsAllowed) {
  JoinMsg j;
  j.sender = 0;
  const auto d = decode_join(encode(j));
  ASSERT_TRUE(d.has_value());
  EXPECT_TRUE(d->proc_set.empty());
  EXPECT_TRUE(d->fail_set.empty());
}

TEST(JoinCodec, QuarantineSetRoundTrip) {
  JoinMsg j;
  j.sender = 4;
  j.proc_set = {1, 2, 4};
  j.quarantine_set = {{3, 24}, {9, 96}};
  const auto d = decode_join(encode(j));
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->quarantine_set, j.quarantine_set);
}

TEST(JoinCodec, EmptyQuarantineSetOmitsTheSection) {
  // Same optional-trailing-section contract as the token's health vector:
  // a join with no quarantine verdicts must encode byte-identically to a
  // pre-gray-failure build's join.
  JoinMsg bare;
  bare.sender = 2;
  bare.proc_set = {1, 2};
  const size_t bare_size = encode(bare).size();
  JoinMsg with = bare;
  with.quarantine_set = {{5, 24}};
  EXPECT_GT(encode(with).size(), bare_size);
  const auto d = decode_join(encode(bare));
  ASSERT_TRUE(d.has_value());
  EXPECT_TRUE(d->quarantine_set.empty());
}

TEST(JoinCodec, TruncatedQuarantineSetRejected) {
  JoinMsg j;
  j.sender = 1;
  j.proc_set = {1, 2, 3};
  j.quarantine_set = {{4, 24}, {5, 48}};
  auto bytes = encode(j);
  bytes.resize(bytes.size() - 3);  // cut into the quarantine entries
  EXPECT_FALSE(decode_join(bytes).has_value());
}

TEST(CommitCodec, RoundTrip) {
  CommitTokenMsg c;
  c.new_ring_id = 0x40004;
  c.token_id = 12;
  c.rotation = 1;
  for (int i = 0; i < 4; ++i) {
    CommitEntry e;
    e.pid = static_cast<ProcessId>(i);
    e.old_ring_id = 0x100 + i;
    e.old_aru = 50 + i;
    e.old_high_seq = 80 + i;
    e.old_safe_line = 45 + i;
    e.filled = (i % 2) == 0;
    c.members.push_back(e);
  }
  const auto d = decode_commit(encode(c));
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->new_ring_id, c.new_ring_id);
  EXPECT_EQ(d->rotation, 1);
  ASSERT_EQ(d->members.size(), 4u);
  EXPECT_EQ(d->members[2].old_aru, 52);
  EXPECT_EQ(d->members[2].old_safe_line, 47);
  EXPECT_TRUE(d->members[2].filled);
  EXPECT_FALSE(d->members[3].filled);
}

TEST(PeekType, IdentifiesAllTypes) {
  EXPECT_EQ(peek_type(encode(sample_data())), PacketType::kData);
  EXPECT_EQ(peek_type(encode(sample_token())), PacketType::kToken);
  EXPECT_EQ(peek_type(encode(JoinMsg{})), PacketType::kJoin);
  EXPECT_EQ(peek_type(encode(CommitTokenMsg{})), PacketType::kCommitToken);
  EXPECT_FALSE(peek_type({}).has_value());
  const std::byte junk[] = {std::byte{99}};
  EXPECT_FALSE(peek_type(junk).has_value());
}

TEST(CrossDecode, WrongTypeRejected) {
  const auto data_bytes = encode(sample_data());
  const auto token_bytes = encode(sample_token());
  EXPECT_FALSE(decode_token(data_bytes).has_value());
  EXPECT_FALSE(decode_data(token_bytes).has_value());
  EXPECT_FALSE(decode_join(token_bytes).has_value());
  EXPECT_FALSE(decode_commit(data_bytes).has_value());
}

TEST(DataCodec, RecoveredEncapsulationRoundTrip) {
  // A recovered message carries a fully encoded old-ring message as payload.
  DataMsg inner = sample_data();
  DataMsg outer;
  outer.ring_id = 0x50005;
  outer.seq = 1;
  outer.pid = 9;
  outer.round = 1;
  outer.recovered = true;
  outer.payload = encode(inner);
  const auto d = decode_data(encode(outer));
  ASSERT_TRUE(d.has_value());
  ASSERT_TRUE(d->recovered);
  const auto inner_decoded = decode_data(d->payload);
  ASSERT_TRUE(inner_decoded.has_value());
  EXPECT_EQ(inner_decoded->seq, inner.seq);
  EXPECT_EQ(inner_decoded->ring_id, inner.ring_id);
}

}  // namespace
}  // namespace accelring::protocol
