// The fast fault-injection campaign: every scenario in the catalogue,
// single-ring and K=4 multi-ring, driven across many seeds with the safety
// oracles attached. Also proves the oracles have teeth: hand-crafted bad
// histories trip each check, and a deliberately injected merge-ordering
// mutation is caught and shrunk to a minimal schedule.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "check/campaign.hpp"
#include "check/oracle.hpp"
#include "check/schedule.hpp"
#include "multiring/migration.hpp"

namespace accelring::check {
namespace {

protocol::Delivery make_delivery(protocol::RingId ring, protocol::SeqNum seq,
                                 protocol::ProcessId sender,
                                 std::byte tag = std::byte{0}) {
  protocol::Delivery d;
  d.ring_id = ring;
  d.seq = seq;
  d.sender = sender;
  d.payload = {tag};
  return d;
}

protocol::ConfigurationChange regular(protocol::RingId ring,
                                      std::vector<protocol::ProcessId> members) {
  protocol::ConfigurationChange c;
  c.config.ring_id = ring;
  c.config.members = std::move(members);
  c.transitional = false;
  return c;
}

protocol::ConfigurationChange transitional(
    protocol::RingId ring, std::vector<protocol::ProcessId> members) {
  protocol::ConfigurationChange c = regular(ring, std::move(members));
  c.transitional = true;
  return c;
}

// ---------------------------------------------------------------------------
// Oracle unit checks on hand-crafted histories: each safety property must
// trip on a history violating exactly it.

TEST(OracleTest, CleanHistoryPasses) {
  ClusterOracle oracle(2);
  for (int n = 0; n < 2; ++n) {
    oracle.on_config(n, regular(100, {0, 1}));
    oracle.on_deliver(n, make_delivery(100, 1, 0));
    oracle.on_deliver(n, make_delivery(100, 2, 1));
    oracle.on_deliver(n, make_delivery(100, 3, 0));
  }
  oracle.finalize();
  EXPECT_TRUE(oracle.ok()) << oracle.report();
  EXPECT_EQ(oracle.observed(), 6u);
}

TEST(OracleTest, GapInAgreedOrderIsCaught) {
  ClusterOracle oracle(1);
  oracle.on_config(0, regular(100, {0}));
  oracle.on_deliver(0, make_delivery(100, 1, 0));
  oracle.on_deliver(0, make_delivery(100, 3, 0));  // seq 2 missing
  oracle.finalize();
  ASSERT_FALSE(oracle.ok());
  EXPECT_NE(oracle.report().find("gap in agreed order"), std::string::npos)
      << oracle.report();
}

TEST(OracleTest, SequenceGoingBackwardsIsCaught) {
  ClusterOracle oracle(1);
  oracle.on_config(0, regular(100, {0}));
  oracle.on_deliver(0, make_delivery(100, 2, 0));
  oracle.on_deliver(0, make_delivery(100, 1, 0));
  oracle.finalize();
  ASSERT_FALSE(oracle.ok());
  EXPECT_NE(oracle.report().find("went backwards"), std::string::npos);
}

TEST(OracleTest, DuplicateDeliveryIsCaught) {
  ClusterOracle oracle(1);
  oracle.on_config(0, regular(100, {0}));
  oracle.on_deliver(0, make_delivery(100, 1, 0));
  oracle.on_deliver(0, make_delivery(100, 1, 0));  // same message again
  oracle.finalize();
  ASSERT_FALSE(oracle.ok());
  EXPECT_NE(oracle.report().find("duplicate delivery"), std::string::npos);
}

TEST(OracleTest, PackedMessagesMayShareSeq) {
  ClusterOracle oracle(1);
  oracle.on_config(0, regular(100, {0}));
  oracle.on_deliver(0, make_delivery(100, 1, 0, std::byte{1}));
  oracle.on_deliver(0, make_delivery(100, 1, 0, std::byte{2}));  // packed
  oracle.finalize();
  EXPECT_TRUE(oracle.ok()) << oracle.report();
}

TEST(OracleTest, CrossNodeOrderDisagreementIsCaught) {
  ClusterOracle oracle(2);
  for (int n = 0; n < 2; ++n) oracle.on_config(n, regular(100, {0, 1}));
  oracle.on_deliver(0, make_delivery(100, 1, 0));
  oracle.on_deliver(0, make_delivery(100, 2, 1));
  // Node 1 sees different content at the same positions.
  oracle.on_deliver(1, make_delivery(100, 1, 1));
  oracle.on_deliver(1, make_delivery(100, 2, 0));
  oracle.finalize();
  ASSERT_FALSE(oracle.ok());
  EXPECT_NE(oracle.report().find("different messages"), std::string::npos)
      << oracle.report();
}

TEST(OracleTest, DeliveryOutsideConfigurationIsCaught) {
  ClusterOracle oracle(1);
  oracle.on_config(0, regular(100, {0}));
  oracle.on_deliver(0, make_delivery(999, 1, 0));  // ring never installed
  oracle.finalize();
  ASSERT_FALSE(oracle.ok());
  EXPECT_NE(oracle.report().find("under configuration"), std::string::npos);
}

TEST(OracleTest, TransitionalNotSubsetOfOldRegularIsCaught) {
  ClusterOracle oracle(3);
  oracle.on_config(2, regular(100, {1, 2}));
  // Node 0 was never in ring 100, so it cannot survive out of it.
  oracle.on_config(2, transitional(200, {0, 2}));
  oracle.finalize();
  ASSERT_FALSE(oracle.ok());
  EXPECT_NE(oracle.report().find("not a subset"), std::string::npos);
}

TEST(OracleTest, TransitionalGroupsMustDeliverSameMessages) {
  ClusterOracle oracle(2);
  for (int n = 0; n < 2; ++n) {
    oracle.on_config(n, regular(100, {0, 1}));
    oracle.on_deliver(n, make_delivery(100, 1, 0));
    oracle.on_config(n, transitional(200, {0, 1}));
  }
  oracle.on_deliver(0, make_delivery(100, 3, 1));  // only node 0 gets seq 3
  oracle.on_config(0, regular(200, {0, 1}));
  oracle.on_config(1, regular(200, {0, 1}));
  oracle.finalize();
  ASSERT_FALSE(oracle.ok());
  EXPECT_NE(oracle.report().find("transitional configuration"),
            std::string::npos)
      << oracle.report();
}

TEST(OracleTest, RegularMembershipDisagreementIsCaught) {
  ClusterOracle oracle(2);
  oracle.on_config(0, regular(100, {0, 1}));
  oracle.on_config(1, regular(100, {1}));  // same ring id, different members
  oracle.finalize();
  ASSERT_FALSE(oracle.ok());
  EXPECT_NE(oracle.report().find("different members"), std::string::npos);
}

TEST(OracleTest, SelfDeliveryIsRequiredUnlessCrashed) {
  ClusterOracle oracle(1);
  oracle.on_config(0, regular(100, {0}));
  oracle.note_submit(0, 7);  // payload never comes back
  oracle.finalize();
  ASSERT_FALSE(oracle.ok());
  EXPECT_NE(oracle.report().find("its own"), std::string::npos);

  ClusterOracle waived(1);
  waived.on_config(0, regular(100, {0}));
  waived.note_submit(0, 7);
  waived.note_crash(0);
  waived.finalize();
  EXPECT_TRUE(waived.ok()) << waived.report();
}

TEST(OracleTest, MergedStreamDivergenceIsCaught) {
  MergedOracle oracle(2);
  oracle.on_merged(0, 0, make_delivery(100, 1, 0));
  oracle.on_merged(0, 1, make_delivery(101, 1, 0));
  oracle.on_merged(1, 1, make_delivery(101, 1, 0));  // rings swapped
  oracle.on_merged(1, 0, make_delivery(100, 1, 0));
  oracle.finalize();
  ASSERT_FALSE(oracle.ok());
  EXPECT_NE(oracle.report().find("diverge"), std::string::npos);
}

TEST(OracleTest, MergedPrefixPasses) {
  MergedOracle oracle(2);
  oracle.on_merged(0, 0, make_delivery(100, 1, 0));
  oracle.on_merged(0, 1, make_delivery(101, 1, 0));
  oracle.on_merged(1, 0, make_delivery(100, 1, 0));  // node 1 lags behind
  oracle.finalize();
  EXPECT_TRUE(oracle.ok()) << oracle.report();
}

// ---------------------------------------------------------------------------
// MergedOracle handoff audit on hand-crafted streams: the clean three-marker
// handoff passes, and each ownership/continuity property trips on a stream
// violating exactly it.

/// Keyed workload payload the audit KeyFn below understands: all deliveries
/// carry one fixed routing key (150, inside the move range used by
/// audit_marker), so ownership is decided purely by marker position.
protocol::Delivery audit_data(protocol::RingId ring, protocol::SeqNum seq,
                              uint32_t submitter, uint32_t index) {
  protocol::Delivery d;
  d.ring_id = ring;
  d.seq = seq;
  d.sender = static_cast<protocol::ProcessId>(submitter);
  d.payload = {std::byte{0x7E}, std::byte{static_cast<uint8_t>(submitter)},
               std::byte{static_cast<uint8_t>(index)}};
  return d;
}

MergedOracle::KeyFn audit_key_fn() {
  return [](const protocol::Delivery& d)
             -> std::optional<MergedOracle::KeyedPayload> {
    if (d.payload.size() != 3 || d.payload[0] != std::byte{0x7E}) {
      return std::nullopt;
    }
    MergedOracle::KeyedPayload kp;
    kp.key = 150;  // inside audit_marker's move range [100, 200]
    kp.submitter = std::to_integer<uint32_t>(d.payload[1]);
    kp.index = std::to_integer<uint32_t>(d.payload[2]);
    return kp;
  };
}

/// A handoff marker for plan version 1 moving range [100, 200] from ring 0
/// to ring 1 (the freeze carries the move list, like the real protocol).
protocol::Delivery audit_marker(multiring::MarkerKind kind, int ring,
                                protocol::SeqNum seq) {
  multiring::MigrationMarker m;
  m.kind = kind;
  m.version = 1;
  m.ring = ring;
  if (kind == multiring::MarkerKind::kFreeze) {
    m.moves = {multiring::MigrationMove{{100, 200}, 0, 1}};
  }
  protocol::Delivery d;
  d.ring_id = static_cast<protocol::RingId>(100 + ring);
  d.seq = seq;
  d.sender = 0;
  d.payload = multiring::make_marker(m);
  return d;
}

TEST(OracleTest, HandoffAuditCleanHandoffPasses) {
  MergedOracle oracle(1);
  oracle.enable_handoff_audit(audit_key_fn());
  oracle.on_merged(0, 0, audit_data(100, 1, 3, 0));
  oracle.on_merged(0, 0, audit_marker(multiring::MarkerKind::kFreeze, 0, 2));
  oracle.on_merged(0, 0, audit_marker(multiring::MarkerKind::kDrain, 0, 3));
  oracle.on_merged(0, 1, audit_marker(multiring::MarkerKind::kActivate, 1, 1));
  oracle.on_merged(0, 1, audit_data(101, 2, 3, 1));
  oracle.finalize();
  EXPECT_TRUE(oracle.ok()) << oracle.report();
}

TEST(OracleTest, HandoffAuditCatchesStaleOwnerDelivery) {
  // The off-by-one handoff bug: the source ring delivers a moving key after
  // the destination activated (a message routed with a stale map epoch).
  MergedOracle oracle(1);
  oracle.enable_handoff_audit(audit_key_fn());
  oracle.on_merged(0, 0, audit_marker(multiring::MarkerKind::kFreeze, 0, 1));
  oracle.on_merged(0, 0, audit_marker(multiring::MarkerKind::kDrain, 0, 2));
  oracle.on_merged(0, 1, audit_marker(multiring::MarkerKind::kActivate, 1, 1));
  oracle.on_merged(0, 0, audit_data(100, 3, 3, 0));  // ring 0 no longer owns
  oracle.finalize();
  ASSERT_FALSE(oracle.ok());
  EXPECT_NE(oracle.report().find("stale-owner delivery"), std::string::npos)
      << oracle.report();
}

TEST(OracleTest, HandoffAuditCatchesHoldWindowDelivery) {
  // Between the source's drain and the destination's activate *nobody* owns
  // the moving range; a delivery there breaks the exclusive handoff.
  MergedOracle oracle(1);
  oracle.enable_handoff_audit(audit_key_fn());
  oracle.on_merged(0, 0, audit_marker(multiring::MarkerKind::kFreeze, 0, 1));
  oracle.on_merged(0, 0, audit_marker(multiring::MarkerKind::kDrain, 0, 2));
  oracle.on_merged(0, 0, audit_data(100, 3, 3, 0));
  oracle.finalize();
  ASSERT_FALSE(oracle.ok());
  EXPECT_NE(oracle.report().find("hold window"), std::string::npos)
      << oracle.report();
}

TEST(OracleTest, HandoffAuditCatchesDuplicatedStamp) {
  // A message flushed to both sides of the handoff: same (key, submitter,
  // index) delivered twice — FIFO continuity broken.
  MergedOracle oracle(1);
  oracle.enable_handoff_audit(audit_key_fn());
  oracle.on_merged(0, 0, audit_data(100, 1, 3, 0));
  oracle.on_merged(0, 0, audit_marker(multiring::MarkerKind::kFreeze, 0, 2));
  oracle.on_merged(0, 0, audit_marker(multiring::MarkerKind::kDrain, 0, 3));
  oracle.on_merged(0, 1, audit_marker(multiring::MarkerKind::kActivate, 1, 1));
  oracle.on_merged(0, 1, audit_data(101, 2, 3, 0));  // index 0 again
  oracle.finalize();
  ASSERT_FALSE(oracle.ok());
  EXPECT_NE(oracle.report().find("duplicated or reordered"), std::string::npos)
      << oracle.report();
}

TEST(OracleTest, HandoffAuditCatchesDrainBeforeFreeze) {
  MergedOracle oracle(1);
  oracle.enable_handoff_audit(audit_key_fn());
  oracle.on_merged(0, 0, audit_marker(multiring::MarkerKind::kDrain, 0, 1));
  oracle.on_merged(0, 0, audit_marker(multiring::MarkerKind::kFreeze, 0, 2));
  oracle.finalize();
  ASSERT_FALSE(oracle.ok());
  EXPECT_NE(oracle.report().find("drain marker before its freeze"),
            std::string::npos)
      << oracle.report();
}

// ---------------------------------------------------------------------------
// Schedule DSL.

TEST(ScheduleTest, GeneratorsAreDeterministic) {
  for (const Scenario& sc : scenarios()) {
    const Schedule a = sc.make(42, 5, util::msec(250));
    const Schedule b = sc.make(42, 5, util::msec(250));
    ASSERT_EQ(a.events.size(), b.events.size()) << sc.name;
    EXPECT_EQ(describe(a), describe(b)) << sc.name;
    EXPECT_FALSE(a.events.empty()) << sc.name;
    for (const FaultEvent& e : a.events) {
      EXPECT_GE(e.at, 0) << sc.name;
      EXPECT_LE(e.at, util::msec(250)) << sc.name;
    }
  }
}

TEST(ScheduleTest, ShrinkCandidatesDropOneEventEach) {
  const Schedule s = find_scenario("mixed")->make(7, 5, util::msec(250));
  const auto cands = shrink_candidates(s);
  ASSERT_EQ(cands.size(), s.events.size());
  for (const Schedule& c : cands) {
    EXPECT_EQ(c.events.size(), s.events.size() - 1);
  }
}

// ---------------------------------------------------------------------------
// The fast campaign itself: all scenarios, 20 seeds each, single-ring and
// K=4 multi-ring, zero violations expected.

RunOptions fast_run_options() {
  RunOptions run;
  run.nodes = 5;
  run.horizon = util::msec(250);
  run.drain = util::msec(300);
  return run;
}

TEST(CampaignTest, SingleRingAllScenariosClean) {
  CampaignOptions opt;
  opt.run = fast_run_options();
  opt.seeds_per_scenario = 20;
  const CampaignResult result = run_campaign(opt);
  EXPECT_EQ(result.failures, 0);
  // Migration scenarios need K > 1 rings and are skipped single-ring.
  int single_ring_scenarios = 0;
  for (const Scenario& sc : scenarios()) {
    if (!sc.migration) ++single_ring_scenarios;
  }
  EXPECT_EQ(result.runs, single_ring_scenarios * opt.seeds_per_scenario);
  EXPECT_GT(result.delivered, 0u);
  for (const FailureCase& fc : result.cases) {
    ADD_FAILURE() << fc.scenario << " seed=" << fc.seed << "\n"
                  << describe(fc.schedule) << "\n"
                  << fc.report;
  }
}

TEST(CampaignTest, MultiRingScenariosClean) {
  CampaignOptions opt;
  opt.run = fast_run_options();
  opt.run.rings = 4;
  opt.seeds_per_scenario = 20;
  const CampaignResult result = run_campaign(opt);
  EXPECT_EQ(result.failures, 0);
  int multiring_scenarios = 0;
  for (const Scenario& sc : scenarios()) {
    if (sc.multiring_safe) ++multiring_scenarios;
  }
  EXPECT_EQ(result.runs, multiring_scenarios * opt.seeds_per_scenario);
  EXPECT_GT(result.delivered, 0u);
  for (const FailureCase& fc : result.cases) {
    ADD_FAILURE() << fc.scenario << " seed=" << fc.seed << "\n"
                  << describe(fc.schedule) << "\n"
                  << fc.report;
  }
}

// Every seed in tests/seeds/regression.seeds once exposed a real bug; replay
// the whole corpus against every scenario (no sweep seeds on top).
TEST(CampaignTest, RegressionSeedCorpusClean) {
#ifndef ACCELRING_SEED_CORPUS
  GTEST_SKIP() << "corpus path not configured";
#else
  std::vector<uint64_t> corpus;
  std::ifstream in(ACCELRING_SEED_CORPUS);
  ASSERT_TRUE(in.is_open()) << ACCELRING_SEED_CORPUS;
  std::string line;
  while (std::getline(in, line)) {
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    const size_t start = line.find_first_not_of(" \t");
    if (start == std::string::npos) continue;
    corpus.push_back(std::strtoull(line.c_str() + start, nullptr, 0));
  }
  ASSERT_FALSE(corpus.empty());

  CampaignOptions opt;
  opt.run = fast_run_options();
  opt.seeds_per_scenario = 0;
  opt.extra_seeds = corpus;
  for (int rings : {1, 4}) {
    opt.run.rings = rings;
    const CampaignResult result = run_campaign(opt);
    EXPECT_EQ(result.failures, 0) << "rings=" << rings;
    for (const FailureCase& fc : result.cases) {
      ADD_FAILURE() << fc.scenario << " seed=" << fc.seed << " rings=" << rings
                    << "\n" << describe(fc.schedule) << "\n" << fc.report;
    }
  }
#endif
}

// The WAN corpus replays only the multi-datacenter scenarios (they carry
// their own seeds file: a WAN seed stresses token rotation over 3 ms links
// and correlated rack/switch/link faults, which the LAN scenarios never
// exercise). Kept separate from regression.seeds so LAN replay time does not
// grow with WAN hardening work.
TEST(CampaignTest, WanSeedCorpusClean) {
#ifndef ACCELRING_WAN_SEED_CORPUS
  GTEST_SKIP() << "wan corpus path not configured";
#else
  std::vector<uint64_t> corpus;
  std::ifstream in(ACCELRING_WAN_SEED_CORPUS);
  ASSERT_TRUE(in.is_open()) << ACCELRING_WAN_SEED_CORPUS;
  std::string line;
  while (std::getline(in, line)) {
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    const size_t start = line.find_first_not_of(" \t");
    if (start == std::string::npos) continue;
    corpus.push_back(std::strtoull(line.c_str() + start, nullptr, 0));
  }
  ASSERT_FALSE(corpus.empty());

  CampaignOptions opt;
  opt.run = fast_run_options();
  opt.seeds_per_scenario = 0;
  opt.extra_seeds = corpus;
  for (const Scenario& sc : scenarios()) {
    if (sc.wan) opt.only.push_back(sc.name);
  }
  ASSERT_GE(opt.only.size(), 5u);  // the WAN catalogue
  const CampaignResult result = run_campaign(opt);
  EXPECT_EQ(result.failures, 0);
  EXPECT_EQ(result.runs, static_cast<int>(opt.only.size() * corpus.size()));
  for (const FailureCase& fc : result.cases) {
    ADD_FAILURE() << fc.scenario << " seed=" << fc.seed << "\n"
                  << describe(fc.schedule) << "\n"
                  << fc.report;
  }
#endif
}

// The storage corpus replays only the durable-KV scenarios (whole-cluster
// power loss, torn-write/lost-suffix injection, bit rot, ENOSPC/stall):
// each seed drives per-node SimDisk fault schedules plus the
// DurabilityOracle, which the LAN and WAN corpora never exercise. Kept
// separate so durable replay time does not grow the other suites.
TEST(CampaignTest, StorageSeedCorpusClean) {
#ifndef ACCELRING_STORAGE_SEED_CORPUS
  GTEST_SKIP() << "storage corpus path not configured";
#else
  std::vector<uint64_t> corpus;
  std::ifstream in(ACCELRING_STORAGE_SEED_CORPUS);
  ASSERT_TRUE(in.is_open()) << ACCELRING_STORAGE_SEED_CORPUS;
  std::string line;
  while (std::getline(in, line)) {
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    const size_t start = line.find_first_not_of(" \t");
    if (start == std::string::npos) continue;
    corpus.push_back(std::strtoull(line.c_str() + start, nullptr, 0));
  }
  ASSERT_FALSE(corpus.empty());

  CampaignOptions opt;
  opt.run = fast_run_options();
  opt.seeds_per_scenario = 0;
  opt.extra_seeds = corpus;
  for (const Scenario& sc : scenarios()) {
    if (sc.durable) opt.only.push_back(sc.name);
  }
  ASSERT_GE(opt.only.size(), 4u);  // the durable catalogue
  const CampaignResult result = run_campaign(opt);
  EXPECT_EQ(result.failures, 0);
  EXPECT_EQ(result.runs, static_cast<int>(opt.only.size() * corpus.size()));
  for (const FailureCase& fc : result.cases) {
    ADD_FAILURE() << fc.scenario << " seed=" << fc.seed << "\n"
                  << describe(fc.schedule) << "\n"
                  << fc.report;
  }
#endif
}

// The migration corpus replays only the live-migration scenarios (ring
// add/remove under load, migration across a partition heal, hot-shard
// rebalance): each seed drives a totally ordered handoff with the
// MergedOracle's handoff audit and the held-message liveness check attached,
// which no other corpus exercises. K = 4 rings (migration needs K > 1).
TEST(CampaignTest, MigrationSeedCorpusClean) {
#ifndef ACCELRING_MIGRATION_SEED_CORPUS
  GTEST_SKIP() << "migration corpus path not configured";
#else
  std::vector<uint64_t> corpus;
  std::ifstream in(ACCELRING_MIGRATION_SEED_CORPUS);
  ASSERT_TRUE(in.is_open()) << ACCELRING_MIGRATION_SEED_CORPUS;
  std::string line;
  while (std::getline(in, line)) {
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    const size_t start = line.find_first_not_of(" \t");
    if (start == std::string::npos) continue;
    corpus.push_back(std::strtoull(line.c_str() + start, nullptr, 0));
  }
  ASSERT_FALSE(corpus.empty());

  CampaignOptions opt;
  opt.run = fast_run_options();
  opt.run.rings = 4;
  opt.seeds_per_scenario = 0;
  opt.extra_seeds = corpus;
  for (const Scenario& sc : scenarios()) {
    if (sc.migration) opt.only.push_back(sc.name);
  }
  ASSERT_EQ(opt.only.size(), 4u);  // the migration catalogue
  const CampaignResult result = run_campaign(opt);
  EXPECT_EQ(result.failures, 0);
  EXPECT_EQ(result.runs, static_cast<int>(opt.only.size() * corpus.size()));
  for (const FailureCase& fc : result.cases) {
    ADD_FAILURE() << fc.scenario << " seed=" << fc.seed << "\n"
                  << describe(fc.schedule) << "\n"
                  << fc.report;
  }
#endif
}

// ---------------------------------------------------------------------------
// Mutation: an injected merge-ordering bug must be caught by the oracles and
// shrunk to a minimal (<= 5 event) reproducer.

TEST(CampaignTest, InjectedMergeBugIsCaughtAndShrunk) {
  RunOptions run = fast_run_options();
  run.rings = 4;
  run.inject_merge_bug = true;

  const Schedule schedule =
      find_scenario("loss_bursts")->make(11, run.nodes, run.horizon);
  const RunResult bad = run_schedule(run, schedule, 11);
  ASSERT_FALSE(bad.ok) << "mutation not caught by the oracles";
  EXPECT_NE(bad.report.find("diverge"), std::string::npos) << bad.report;

  const Schedule minimal = shrink(run, schedule, 11);
  EXPECT_LE(minimal.events.size(), 5u);
  // The bug is in the merge path, not the schedule: greedy removal should
  // strip every fault event.
  EXPECT_EQ(minimal.events.size(), 0u) << describe(minimal);
  const RunResult still_bad = run_schedule(run, minimal, 11);
  EXPECT_FALSE(still_bad.ok);

  // Same seed and schedule without the mutation: clean.
  run.inject_merge_bug = false;
  const RunResult good = run_schedule(run, schedule, 11);
  EXPECT_TRUE(good.ok) << good.report;
}

// The handoff mutation: node 1 flushes one held moving-key message to the
// *source* ring after the destination activated — the classic stale-map-epoch
// off-by-one in a live migration. The MergedOracle handoff audit must catch
// it, and greedy shrink must converge to a minimal schedule that still
// migrates (drop the migrate event and nothing is ever held, so the mutated
// run is clean).
TEST(CampaignTest, InjectedHandoffBugIsCaughtAndShrunk) {
  RunOptions run = fast_run_options();
  run.rings = 4;
  run.inject_handoff_bug = true;

  const uint64_t seed = 3;
  const Schedule schedule =
      find_scenario("ring_add_under_load")->make(seed, run.nodes, run.horizon);
  const RunResult bad = run_schedule(run, schedule, seed);
  ASSERT_FALSE(bad.ok) << "handoff mutation not caught by the oracles";
  EXPECT_NE(bad.report.find("stale-owner delivery"), std::string::npos)
      << bad.report;

  const Schedule minimal = shrink(run, schedule, seed);
  // The reproducer must keep the events the bug needs — the idle ring and
  // the migration onto it — and shed any incidental loss bursts.
  EXPECT_LE(minimal.events.size(), 2u) << describe(minimal);
  bool has_migrate = false;
  for (const FaultEvent& e : minimal.events) {
    has_migrate = has_migrate || e.kind == FaultKind::kMigrate;
  }
  EXPECT_TRUE(has_migrate) << describe(minimal);
  const RunResult still_bad = run_schedule(run, minimal, seed);
  EXPECT_FALSE(still_bad.ok);

  // Same seed and schedule without the mutation: clean.
  run.inject_handoff_bug = false;
  const RunResult good = run_schedule(run, schedule, seed);
  EXPECT_TRUE(good.ok) << good.report;
}

}  // namespace
}  // namespace accelring::check
