// Tests for the related-work baseline protocols (paper §V): the
// fixed-sequencer (JGroups-style) and the U-Ring-Paxos-style protocol.
// Both must provide total order, completeness, and loss recovery on the
// same simulated substrate as the ring protocols.
#include <gtest/gtest.h>

#include "baselines/baseline_cluster.hpp"
#include "baselines/sequencer.hpp"
#include "baselines/uring_paxos.hpp"
#include "util/bytes.hpp"

namespace accelring::baselines {
namespace {

std::vector<std::byte> payload(const std::string& s) {
  return util::to_vector(util::as_bytes(s));
}

std::string text(std::span<const std::byte> bytes) {
  return {reinterpret_cast<const char*>(bytes.data()), bytes.size()};
}

template <typename Cluster>
std::vector<std::vector<std::pair<uint16_t, std::string>>> drive(
    Cluster& cluster, int nodes, int messages, double loss = 0.0,
    int64_t run_ms = 2000) {
  cluster.net().set_loss_rate(loss);
  std::vector<std::vector<std::pair<uint16_t, std::string>>> log(nodes);
  cluster.set_on_deliver(
      [&log](int node, const protocol::Delivery& d, protocol::Nanos) {
        log[node].emplace_back(d.sender, text(d.payload));
      });
  for (int i = 0; i < messages; ++i) {
    cluster.eq().schedule(
        util::usec(100) + i * util::usec(50), [&cluster, i, nodes] {
          cluster.submit(i % nodes, payload("m" + std::to_string(i)));
        });
  }
  cluster.run_until(util::msec(run_ms));
  return log;
}

// --------------------------------------------------------------------------
// Sequencer
// --------------------------------------------------------------------------

using SeqCluster = BaselineCluster<SequencerProtocol, SequencerConfig>;

TEST(Sequencer, TotalOrderAndCompleteness) {
  SeqCluster cluster(5, simnet::FabricParams::one_gig(), {}, 3);
  const auto log = drive(cluster, 5, 100);
  for (int n = 0; n < 5; ++n) {
    ASSERT_EQ(log[n].size(), 100u) << "node " << n;
    EXPECT_EQ(log[n], log[0]) << "node " << n;
  }
  // Exactly one process assigned sequence numbers.
  EXPECT_EQ(cluster.protocol_at(0).stats().ordered, 100u);
  EXPECT_EQ(cluster.protocol_at(1).stats().ordered, 0u);
}

TEST(Sequencer, NonSequencerSendersForward) {
  SeqCluster cluster(3, simnet::FabricParams::one_gig(), {});
  const auto log = drive(cluster, 3, 30);
  ASSERT_EQ(log[0].size(), 30u);
  EXPECT_GT(cluster.protocol_at(1).stats().forwarded, 0u);
  EXPECT_EQ(cluster.protocol_at(0).stats().forwarded, 0u);  // orders directly
}

TEST(Sequencer, RecoversFromLoss) {
  SeqCluster cluster(4, simnet::FabricParams::one_gig(), {}, 11);
  const auto log = drive(cluster, 4, 200, /*loss=*/0.02, /*run_ms=*/4000);
  uint64_t retransmitted = cluster.protocol_at(0).stats().retransmitted;
  for (int n = 0; n < 4; ++n) {
    ASSERT_EQ(log[n].size(), 200u) << "node " << n;
    EXPECT_EQ(log[n], log[0]);
  }
  EXPECT_GT(retransmitted, 0u);
}

TEST(Sequencer, SenderWindowBackpressure) {
  SequencerConfig cfg;
  cfg.sender_window = 5;
  cfg.max_pending = 100;
  SeqCluster cluster(2, simnet::FabricParams::one_gig(), cfg);
  // Burst more than the window; everything still arrives (queued + windowed).
  const auto log = drive(cluster, 2, 50);
  ASSERT_EQ(log[0].size(), 50u);
  ASSERT_EQ(log[1].size(), 50u);
}

TEST(Sequencer, PerSenderFifoPreserved) {
  SeqCluster cluster(4, simnet::FabricParams::one_gig(), {}, 13);
  const auto log = drive(cluster, 4, 120, 0.01, 4000);
  ASSERT_EQ(log[0].size(), 120u);
  // Message "m<i>" from sender i%4: indexes per sender must increase.
  std::map<uint16_t, int> last;
  for (const auto& [sender, body] : log[0]) {
    const int index = std::stoi(body.substr(1));
    const auto it = last.find(sender);
    if (it != last.end()) {
      EXPECT_GT(index, it->second);
    }
    last[sender] = index;
  }
}

// --------------------------------------------------------------------------
// U-Ring Paxos
// --------------------------------------------------------------------------

using URingCluster = BaselineCluster<URingProtocol, URingConfig>;

TEST(URing, TotalOrderAndCompleteness) {
  URingCluster cluster(5, simnet::FabricParams::one_gig(), {}, 5);
  const auto log = drive(cluster, 5, 100);
  for (int n = 0; n < 5; ++n) {
    ASSERT_EQ(log[n].size(), 100u) << "node " << n;
    EXPECT_EQ(log[n], log[0]) << "node " << n;
  }
  EXPECT_GT(cluster.protocol_at(0).stats().decided, 0u);
}

TEST(URing, BatchesAmortize) {
  URingConfig cfg;
  cfg.batch_max_msgs = 16;
  URingCluster cluster(4, simnet::FabricParams::one_gig(), cfg, 7);
  const auto log = drive(cluster, 4, 160);
  ASSERT_EQ(log[0].size(), 160u);
  // Batching means far fewer consensus instances than messages.
  EXPECT_LT(cluster.protocol_at(0).stats().batches, 120u);
}

TEST(URing, NonCoordinatorsForwardValues) {
  URingCluster cluster(3, simnet::FabricParams::one_gig(), {});
  const auto log = drive(cluster, 3, 30);
  ASSERT_EQ(log[2].size(), 30u);
  EXPECT_GT(cluster.protocol_at(1).stats().forwarded, 0u);
  EXPECT_EQ(cluster.protocol_at(0).stats().forwarded, 0u);
}

TEST(URing, RecoversFromLoss) {
  URingCluster cluster(4, simnet::FabricParams::one_gig(), {}, 17);
  const auto log = drive(cluster, 4, 150, /*loss=*/0.02, /*run_ms=*/5000);
  for (int n = 0; n < 4; ++n) {
    ASSERT_EQ(log[n].size(), 150u) << "node " << n;
    EXPECT_EQ(log[n], log[0]);
  }
}

TEST(URing, MajorityPositionAcks) {
  // With 5 members, position 3 (index 2) is the majority voter; the
  // coordinator decides only after its ack, so decided lags batches by the
  // time to reach it.
  URingCluster cluster(5, simnet::FabricParams::one_gig(), {});
  const auto log = drive(cluster, 5, 20);
  ASSERT_EQ(log[4].size(), 20u);
  EXPECT_EQ(cluster.protocol_at(0).stats().decided,
            cluster.protocol_at(0).stats().batches);
}

}  // namespace
}  // namespace accelring::baselines
