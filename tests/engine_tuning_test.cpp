// Unit tests (mock host) for the engine's adaptive flow control and the
// interaction between packing, windows, and the accelerated queue.
#include <gtest/gtest.h>

#include "membership/membership.hpp"
#include "protocol/engine.hpp"
#include "util/bytes.hpp"

namespace accelring::protocol {
namespace {

/// Minimal recording host (a slimmer sibling of the one in engine_test).
class RecordingHost : public Host {
 public:
  void multicast(SocketId, std::span<const std::byte> data) override {
    if (auto msg = decode_data(data)) data_sent.push_back(*msg);
  }
  void unicast(ProcessId, SocketId, std::span<const std::byte> data,
               Nanos) override {
    if (auto token = decode_token(data)) tokens_sent.push_back(*token);
  }
  void deliver(const Delivery& delivery) override {
    delivered.push_back(delivery);
  }
  void on_configuration(const ConfigurationChange&) override {}
  void set_timer(TimerKind, Nanos) override {}
  void cancel_timer(TimerKind) override {}
  Nanos now() override { return ++clock_; }

  std::vector<DataMsg> data_sent;
  std::vector<TokenMsg> tokens_sent;
  std::vector<Delivery> delivered;

 private:
  Nanos clock_ = 0;
};

RingConfig ring2() {
  RingConfig ring;
  ring.ring_id = membership::make_ring_id(1, 0);
  ring.members = {0, 1};
  return ring;
}

TokenMsg token(uint64_t id, uint64_t round, SeqNum seq, SeqNum aru) {
  TokenMsg t;
  t.ring_id = ring2().ring_id;
  t.token_id = id;
  t.round = round;
  t.seq = seq;
  t.aru = aru;
  return t;
}

std::vector<std::byte> payload(size_t n) {
  return std::vector<std::byte>(n, std::byte{0x33});
}

TEST(AutoTuneUnit, GrowsAfterIntervalWithBacklog) {
  ProtocolConfig cfg;
  cfg.auto_tune = true;
  cfg.auto_tune_interval = 4;
  cfg.personal_window = 2;
  cfg.accelerated_window = 1;
  RecordingHost host;
  Engine engine(1, cfg, host);
  engine.start_with_ring(ring2());

  // Keep a deep backlog; after auto_tune_interval rounds the window grows.
  for (int i = 0; i < 50; ++i) engine.submit(Service::kAgreed, payload(10));
  SeqNum seq = 0;
  for (uint64_t round = 1; round <= 5; ++round) {
    engine.on_packet(kSockToken, encode(token(round, round, seq, seq)));
    seq = host.tokens_sent.back().seq;
  }
  EXPECT_GT(engine.config().personal_window, 2u);
  EXPECT_GT(engine.config().accelerated_window, 1u);
  // Larger window means later rounds carry more messages.
  EXPECT_GT(host.tokens_sent.back().seq - host.tokens_sent[3].seq, 2);
}

TEST(AutoTuneUnit, NoGrowthWithoutBacklog) {
  ProtocolConfig cfg;
  cfg.auto_tune = true;
  cfg.auto_tune_interval = 2;
  cfg.personal_window = 4;
  RecordingHost host;
  Engine engine(1, cfg, host);
  engine.start_with_ring(ring2());
  SeqNum seq = 0;
  for (uint64_t round = 1; round <= 10; ++round) {
    engine.on_packet(kSockToken, encode(token(round, round, seq, seq)));
    seq = host.tokens_sent.back().seq;
  }
  EXPECT_EQ(engine.config().personal_window, 4u);
}

TEST(PackingUnit, PackedMessageCountsOnceAgainstWindow) {
  ProtocolConfig cfg;
  cfg.enable_packing = true;
  cfg.personal_window = 2;  // two protocol packets per round
  cfg.packing_budget = 1000;
  RecordingHost host;
  Engine engine(1, cfg, host);
  engine.start_with_ring(ring2());

  // 10 tiny messages: 2 packets/round, but each packet carries ~5 packed
  // messages, so a single round moves everything.
  for (int i = 0; i < 10; ++i) engine.submit(Service::kAgreed, payload(100));
  engine.on_packet(kSockToken, encode(token(1, 1, 0, 0)));
  EXPECT_LE(host.data_sent.size(), 2u);
  EXPECT_EQ(engine.pending(), 0u);
  size_t delivered = 0;
  for (const auto& d : host.delivered) {
    (void)d;
    ++delivered;
  }
  EXPECT_EQ(delivered, 10u);  // own messages delivered individually
}

TEST(PackingUnit, PackedFlagVisibleOnWire) {
  ProtocolConfig cfg;
  cfg.enable_packing = true;
  RecordingHost host;
  Engine engine(1, cfg, host);
  engine.start_with_ring(ring2());
  engine.submit(Service::kAgreed, payload(20));
  engine.submit(Service::kAgreed, payload(20));
  engine.on_packet(kSockToken, encode(token(1, 1, 0, 0)));
  ASSERT_EQ(host.data_sent.size(), 1u);
  EXPECT_TRUE(host.data_sent[0].packed);
}

TEST(PackingUnit, SingleMessageNotFlaggedPacked) {
  ProtocolConfig cfg;
  cfg.enable_packing = true;
  RecordingHost host;
  Engine engine(1, cfg, host);
  engine.start_with_ring(ring2());
  engine.submit(Service::kAgreed, payload(20));
  engine.on_packet(kSockToken, encode(token(1, 1, 0, 0)));
  ASSERT_EQ(host.data_sent.size(), 1u);
  EXPECT_FALSE(host.data_sent[0].packed);
}

TEST(PackingUnit, AccelWindowAppliesToPackedPackets) {
  ProtocolConfig cfg;
  cfg.enable_packing = true;
  cfg.packing_budget = 250;  // ~2 x 100B messages per packet
  cfg.accelerated_window = 1;
  cfg.personal_window = 10;
  RecordingHost host;
  Engine engine(1, cfg, host);
  engine.start_with_ring(ring2());
  for (int i = 0; i < 8; ++i) engine.submit(Service::kAgreed, payload(100));
  engine.on_packet(kSockToken, encode(token(1, 1, 0, 0)));
  // 4 packed packets total; the last 1 (the accelerated window) goes after
  // the token, so exactly 3 are pre-token.
  ASSERT_EQ(host.data_sent.size(), 4u);
  EXPECT_FALSE(host.data_sent[2].post_token);
  EXPECT_TRUE(host.data_sent[3].post_token);
}

TEST(HeaderPad, PadsWireButNotDelivery) {
  ProtocolConfig cfg;
  RecordingHost host;
  Engine engine(1, cfg, host);
  engine.set_header_pad(64);
  engine.start_with_ring(ring2());
  engine.submit(Service::kAgreed, payload(100));
  engine.on_packet(kSockToken, encode(token(1, 1, 0, 0)));
  ASSERT_EQ(host.data_sent.size(), 1u);
  EXPECT_EQ(host.data_sent[0].header_pad, 64);
  EXPECT_EQ(host.data_sent[0].payload.size(), 100u);
  ASSERT_EQ(host.delivered.size(), 1u);
  EXPECT_EQ(host.delivered[0].payload.size(), 100u);
}

}  // namespace
}  // namespace accelring::protocol
