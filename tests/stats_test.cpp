// Unit tests for latency statistics and throughput meters.
#include "util/stats.hpp"

#include <gtest/gtest.h>

namespace accelring::util {
namespace {

TEST(LatencyStats, MeanMinMax) {
  LatencyStats s;
  s.add(100);
  s.add(200);
  s.add(300);
  EXPECT_EQ(s.count(), 3u);
  EXPECT_EQ(s.mean(), 200);
  EXPECT_EQ(s.min(), 100);
  EXPECT_EQ(s.max(), 300);
}

TEST(LatencyStats, EmptyIsZeroEverywhere) {
  LatencyStats s;
  EXPECT_EQ(s.mean(), 0);
  EXPECT_EQ(s.min(), 0);
  EXPECT_EQ(s.max(), 0);
  EXPECT_EQ(s.percentile(0.5), 0);
  EXPECT_EQ(s.stddev(), 0);
}

TEST(LatencyStats, PercentilesInterpolate) {
  LatencyStats s;
  for (int i = 1; i <= 100; ++i) s.add(i * 10);
  EXPECT_EQ(s.percentile(0.0), 10);
  EXPECT_EQ(s.percentile(1.0), 1000);
  // Median of 1..100 scaled by 10: between 500 and 510.
  EXPECT_GE(s.percentile(0.5), 500);
  EXPECT_LE(s.percentile(0.5), 510);
  EXPECT_GE(s.percentile(0.99), 980);
}

TEST(LatencyStats, AddAfterPercentileKeepsCorrectness) {
  LatencyStats s;
  s.add(5);
  EXPECT_EQ(s.percentile(0.5), 5);  // forces a sort
  s.add(1);
  s.add(9);
  EXPECT_EQ(s.percentile(0.5), 5);
  EXPECT_EQ(s.min(), 1);
}

TEST(LatencyStats, StddevOfConstantIsZero) {
  LatencyStats s;
  for (int i = 0; i < 10; ++i) s.add(42);
  EXPECT_EQ(s.stddev(), 0);
}

TEST(Meter, MbpsOverWindow) {
  Meter m;
  // 1250 bytes = 10000 bits; over 1 ms -> 10 Mbps.
  m.add(1250);
  EXPECT_DOUBLE_EQ(m.mbps(kMillisecond), 10.0);
  EXPECT_EQ(m.messages(), 1u);
}

TEST(Meter, ZeroWindowIsZero) {
  Meter m;
  m.add(100);
  EXPECT_DOUBLE_EQ(m.mbps(0), 0.0);
}

TEST(FormatNanos, HumanReadableRanges) {
  EXPECT_EQ(format_nanos(1'500), "1.50us");
  EXPECT_EQ(format_nanos(312'000), "312us");
  EXPECT_EQ(format_nanos(1'240'000), "1.24ms");
  EXPECT_EQ(format_nanos(2'500'000'000), "2.500s");
}

}  // namespace
}  // namespace accelring::util
