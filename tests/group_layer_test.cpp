// Integration tests for the Spread-style group layer over simulated daemons:
// consistent views, open-group sends, multi-group multicast with cross-group
// ordering, and daemon-crash handling.
#include <gtest/gtest.h>

#include <map>

#include "daemon/client.hpp"
#include "daemon/daemon.hpp"
#include "harness/cluster.hpp"
#include "util/bytes.hpp"

namespace accelring::daemon {
namespace {

using groups::GroupView;
using protocol::Service;

/// A SimCluster with one Daemon per node wired into the engines.
struct DaemonCluster {
  harness::SimCluster cluster;
  std::vector<std::unique_ptr<Daemon>> daemons;

  explicit DaemonCluster(int n, uint64_t seed = 1,
                         protocol::ProtocolConfig cfg = {})
      : cluster(n, simnet::FabricParams::one_gig(), cfg,
                harness::ImplProfile::kLibrary, seed) {
    for (int i = 0; i < n; ++i) {
      daemons.push_back(std::make_unique<Daemon>(
          static_cast<protocol::ProcessId>(i), cluster.engine(i)));
    }
    cluster.set_on_deliver(
        [this](int node, const protocol::Delivery& d, protocol::Nanos) {
          daemons[node]->on_delivery(d);
        });
    cluster.set_on_config(
        [this](int node, const protocol::ConfigurationChange& c) {
          daemons[node]->on_configuration(c);
        });
    cluster.start_static();
  }

  void run_ms(int64_t ms) { cluster.run_until(cluster.eq().now() + util::msec(ms)); }
};

struct Received {
  std::string group;
  std::string sender;
  std::string text;
};

Client::MessageFn collector(std::vector<Received>& out) {
  return [&out](const std::string& group, const std::string& sender,
                Service, std::span<const std::byte> payload) {
    out.push_back(Received{
        group, sender,
        std::string(reinterpret_cast<const char*>(payload.data()),
                    payload.size())});
  };
}

std::vector<std::byte> text(const std::string& s) {
  return util::to_vector(util::as_bytes(s));
}

TEST(GroupLayer, JoinProducesConsistentViewsEverywhere) {
  DaemonCluster dc(3);
  std::vector<GroupView> views_a;
  std::vector<GroupView> views_b;
  Client alice(*dc.daemons[0], "alice", {},
               [&](const GroupView& v) { views_a.push_back(v); });
  Client bob(*dc.daemons[2], "bob", {},
             [&](const GroupView& v) { views_b.push_back(v); });
  alice.join("chat");
  dc.run_ms(50);
  bob.join("chat");
  dc.run_ms(50);

  // Alice saw two views (herself; then herself+bob); bob saw the second.
  ASSERT_EQ(views_a.size(), 2u);
  EXPECT_EQ(views_a[0].members.size(), 1u);
  EXPECT_EQ(views_a[1].members.size(), 2u);
  ASSERT_EQ(views_b.size(), 1u);
  EXPECT_EQ(views_b[0].members.size(), 2u);
  // Same view id for the same membership change at both daemons.
  EXPECT_EQ(views_a[1].view_id, views_b[0].view_id);
}

TEST(GroupLayer, MessageReachesAllGroupMembersAcrossDaemons) {
  DaemonCluster dc(4);
  std::vector<Received> at_b;
  std::vector<Received> at_c;
  Client a(*dc.daemons[0], "a");
  Client b(*dc.daemons[1], "b", collector(at_b));
  Client c(*dc.daemons[3], "c", collector(at_c));
  b.join("room");
  c.join("room");
  dc.run_ms(50);
  a.send("room", Service::kAgreed, text("hello"));  // open group: a not a member
  dc.run_ms(50);

  ASSERT_EQ(at_b.size(), 1u);
  EXPECT_EQ(at_b[0].text, "hello");
  EXPECT_EQ(at_b[0].sender, "a");
  EXPECT_EQ(at_b[0].group, "room");
  ASSERT_EQ(at_c.size(), 1u);
  EXPECT_EQ(at_c[0].text, "hello");
}

TEST(GroupLayer, NonMembersDoNotReceive) {
  DaemonCluster dc(2);
  std::vector<Received> at_outsider;
  Client member_client(*dc.daemons[0], "m");
  Client outsider(*dc.daemons[1], "o", collector(at_outsider));
  member_client.join("private");
  dc.run_ms(50);
  member_client.send("private", Service::kAgreed, text("secret"));
  dc.run_ms(50);
  EXPECT_TRUE(at_outsider.empty());
}

TEST(GroupLayer, MultiGroupMulticastDeliversOncePerClient) {
  DaemonCluster dc(2);
  std::vector<Received> at_x;
  Client x(*dc.daemons[1], "x", collector(at_x));
  Client sender(*dc.daemons[0], "s");
  x.join("g1");
  x.join("g2");
  dc.run_ms(50);
  // x belongs to both target groups but must receive exactly one copy.
  sender.send(std::vector<std::string>{"g1", "g2"}, Service::kAgreed,
              text("multi"));
  dc.run_ms(50);
  ASSERT_EQ(at_x.size(), 1u);
  EXPECT_EQ(at_x[0].text, "multi");
}

TEST(GroupLayer, CrossGroupOrderingIsConsistent) {
  // Messages to different (overlapping) group sets are seen in the same
  // relative order by all receivers — the multi-group ordering guarantee.
  DaemonCluster dc(3);
  std::vector<Received> at_p;
  std::vector<Received> at_q;
  Client p(*dc.daemons[1], "p", collector(at_p));
  Client q(*dc.daemons[2], "q", collector(at_q));
  p.join("g1");
  p.join("g2");
  q.join("g1");
  q.join("g2");
  dc.run_ms(50);
  Client s0(*dc.daemons[0], "s0");
  Client s1(*dc.daemons[1], "s1");
  for (int i = 0; i < 10; ++i) {
    s0.send("g1", Service::kAgreed, text("a" + std::to_string(i)));
    s1.send(std::vector<std::string>{"g2", "g1"}, Service::kAgreed,
            text("b" + std::to_string(i)));
  }
  dc.run_ms(200);
  ASSERT_EQ(at_p.size(), 20u);
  ASSERT_EQ(at_q.size(), 20u);
  for (size_t i = 0; i < at_p.size(); ++i) {
    EXPECT_EQ(at_p[i].text, at_q[i].text) << "position " << i;
  }
}

TEST(GroupLayer, LeaveStopsDelivery) {
  DaemonCluster dc(2);
  std::vector<Received> at_m;
  Client m(*dc.daemons[1], "m", collector(at_m));
  Client s(*dc.daemons[0], "s");
  m.join("g");
  dc.run_ms(50);
  s.send("g", Service::kAgreed, text("one"));
  dc.run_ms(50);
  m.leave("g");
  dc.run_ms(50);
  s.send("g", Service::kAgreed, text("two"));
  dc.run_ms(50);
  ASSERT_EQ(at_m.size(), 1u);
  EXPECT_EQ(at_m[0].text, "one");
}

TEST(GroupLayer, DisconnectLeavesAllGroups) {
  DaemonCluster dc(2);
  std::vector<GroupView> views_w;
  Client watcher(*dc.daemons[0], "w", {},
                 [&](const GroupView& v) { views_w.push_back(v); });
  watcher.join("g1");
  dc.run_ms(50);
  {
    Client transient(*dc.daemons[1], "t");
    transient.join("g1");
    transient.join("g2");
    dc.run_ms(50);
    ASSERT_FALSE(views_w.empty());
    EXPECT_EQ(views_w.back().members.size(), 2u);
  }  // transient disconnects here
  dc.run_ms(50);
  EXPECT_EQ(views_w.back().members.size(), 1u);
  EXPECT_EQ(views_w.back().members[0].name, "w");
}

TEST(GroupLayer, DaemonCrashRemovesItsClientsFromGroups) {
  protocol::ProtocolConfig cfg;
  cfg.timeouts.token_loss = util::msec(30);
  cfg.timeouts.join = util::msec(5);
  cfg.timeouts.consensus = util::msec(60);
  DaemonCluster dc(3, /*seed=*/17, cfg);
  std::vector<GroupView> views_a;
  Client a(*dc.daemons[0], "a", {},
           [&](const GroupView& v) { views_a.push_back(v); });
  Client doomed(*dc.daemons[2], "d");
  a.join("g");
  doomed.join("g");
  dc.run_ms(60);
  ASSERT_FALSE(views_a.empty());
  ASSERT_EQ(views_a.back().members.size(), 2u);

  dc.cluster.net().set_host_down(2, true);
  dc.run_ms(2000);
  // After the membership change, the dead daemon's client is gone.
  ASSERT_GE(views_a.size(), 2u);
  EXPECT_EQ(views_a.back().members.size(), 1u);
  EXPECT_EQ(views_a.back().members[0].name, "a");
}

TEST(GroupLayer, SafeServiceMessagesFlowThroughGroups) {
  DaemonCluster dc(3);
  std::vector<Received> at_r;
  Client r(*dc.daemons[2], "r", collector(at_r));
  Client s(*dc.daemons[0], "s");
  r.join("g");
  dc.run_ms(50);
  s.send("g", Service::kSafe, text("stable"));
  dc.run_ms(100);
  ASSERT_EQ(at_r.size(), 1u);
  EXPECT_EQ(at_r[0].text, "stable");
}

}  // namespace
}  // namespace accelring::daemon
