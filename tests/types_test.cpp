// Unit tests for core types: ring topology helpers, config derivations,
// service classification, and ring-id encoding.
#include "protocol/types.hpp"

#include <gtest/gtest.h>

#include "membership/membership.hpp"

namespace accelring::protocol {
namespace {

RingConfig ring(std::vector<ProcessId> members) {
  RingConfig r;
  r.ring_id = membership::make_ring_id(3, members.front());
  r.members = std::move(members);
  return r;
}

TEST(RingConfigTest, SuccessorWrapsAround) {
  const RingConfig r = ring({2, 5, 9});
  EXPECT_EQ(r.successor_of(2), 5);
  EXPECT_EQ(r.successor_of(5), 9);
  EXPECT_EQ(r.successor_of(9), 2);  // wrap
}

TEST(RingConfigTest, PredecessorWrapsAround) {
  const RingConfig r = ring({2, 5, 9});
  EXPECT_EQ(r.predecessor_of(2), 9);  // wrap
  EXPECT_EQ(r.predecessor_of(5), 2);
  EXPECT_EQ(r.predecessor_of(9), 5);
}

TEST(RingConfigTest, IndexOfMissingIsNegative) {
  const RingConfig r = ring({2, 5, 9});
  EXPECT_EQ(r.index_of(5), 1);
  EXPECT_EQ(r.index_of(7), -1);
}

TEST(RingConfigTest, SingletonRingIsItsOwnNeighbour) {
  const RingConfig r = ring({4});
  EXPECT_EQ(r.successor_of(4), 4);
  EXPECT_EQ(r.predecessor_of(4), 4);
  EXPECT_EQ(r.representative(), 4);
}

TEST(ProtocolConfigTest, OriginalVariantNeutralizesAcceleration) {
  ProtocolConfig cfg;
  cfg.variant = Variant::kOriginal;
  cfg.accelerated_window = 40;
  cfg.priority = PriorityMethod::kAggressive;
  EXPECT_EQ(cfg.effective_accel_window(), 0u);
  EXPECT_EQ(cfg.effective_priority(), PriorityMethod::kConservative);
}

TEST(ProtocolConfigTest, AcceleratedVariantKeepsSettings) {
  ProtocolConfig cfg;
  cfg.variant = Variant::kAccelerated;
  cfg.accelerated_window = 40;
  cfg.priority = PriorityMethod::kAggressive;
  EXPECT_EQ(cfg.effective_accel_window(), 40u);
  EXPECT_EQ(cfg.effective_priority(), PriorityMethod::kAggressive);
}

TEST(ServiceTest, OnlySafeRequiresStability) {
  EXPECT_FALSE(requires_safe(Service::kReliable));
  EXPECT_FALSE(requires_safe(Service::kFifo));
  EXPECT_FALSE(requires_safe(Service::kCausal));
  EXPECT_FALSE(requires_safe(Service::kAgreed));
  EXPECT_TRUE(requires_safe(Service::kSafe));
}

TEST(ServiceTest, NamesAreStable) {
  EXPECT_STREQ(service_name(Service::kAgreed), "agreed");
  EXPECT_STREQ(service_name(Service::kSafe), "safe");
}

TEST(RingIdTest, EpochAndCreatorRoundTrip) {
  const RingId id = membership::make_ring_id(42, 7);
  EXPECT_EQ(membership::ring_epoch(id), 42u);
  EXPECT_EQ(id & 0xFFFF, 7u);
  // Distinct creators at the same epoch yield distinct ids.
  EXPECT_NE(membership::make_ring_id(42, 7), membership::make_ring_id(42, 8));
  // Later epochs compare greater regardless of creator.
  EXPECT_GT(membership::make_ring_id(43, 0), membership::make_ring_id(42, 999));
}

}  // namespace
}  // namespace accelring::protocol
