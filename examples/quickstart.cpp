// Quickstart: totally ordered multicast in ~60 lines.
//
// Builds a 4-node simulated cluster, sends a handful of messages from
// different nodes with Agreed and Safe delivery, and shows that every node
// delivers the identical totally ordered stream.
//
//   $ ./quickstart
#include <cstdio>
#include <string>
#include <vector>

#include "harness/cluster.hpp"
#include "util/bytes.hpp"

using namespace accelring;

int main() {
  const int kNodes = 4;

  // A cluster: 4 processes, one simulated 1GbE switch, the Accelerated Ring
  // protocol (the default ProtocolConfig).
  protocol::ProtocolConfig config;
  config.variant = protocol::Variant::kAccelerated;
  harness::SimCluster cluster(kNodes, simnet::FabricParams::one_gig(), config,
                              harness::ImplProfile::kLibrary);

  // Record what each node delivers.
  std::vector<std::vector<std::string>> delivered(kNodes);
  cluster.set_on_deliver([&](int node, const protocol::Delivery& d,
                             protocol::Nanos at) {
    delivered[node].push_back(
        std::string(reinterpret_cast<const char*>(d.payload.data()),
                    d.payload.size()));
    if (node == 0) {
      std::printf("node 0 delivered seq=%lld from p%u (%s) at t=%.0fus: %s\n",
                  static_cast<long long>(d.seq), unsigned{d.sender},
                  protocol::service_name(d.service), util::to_usec(at),
                  delivered[node].back().c_str());
    }
  });

  // Start all nodes on one pre-agreed ring (see examples/partition_demo.cpp
  // for dynamic membership instead).
  cluster.start_static();

  // Send interleaved messages from every node. Agreed delivery orders them
  // totally; the Safe message is only delivered once everyone has it.
  for (int i = 0; i < 5; ++i) {
    for (int node = 0; node < kNodes; ++node) {
      cluster.eq().schedule(util::usec(100 + i * 150), [&, node, i] {
        const std::string text =
            "msg" + std::to_string(i) + "-from-p" + std::to_string(node);
        cluster.submit(node, protocol::Service::kAgreed,
                       util::to_vector(util::as_bytes(text)));
      });
    }
  }
  cluster.eq().schedule(util::usec(900), [&] {
    cluster.submit(0, protocol::Service::kSafe,
                   util::to_vector(util::as_bytes("safe-checkpoint")));
  });

  cluster.run_until(util::msec(100));

  // Verify the total order property.
  bool identical = true;
  for (int node = 1; node < kNodes; ++node) {
    identical = identical && delivered[node] == delivered[0];
  }
  std::printf("\n%d nodes delivered %zu messages each; orders identical: %s\n",
              kNodes, delivered[0].size(), identical ? "yes" : "NO");
  return identical ? 0 : 1;
}
