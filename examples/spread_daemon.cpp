// A real, runnable daemon: the full stack (UDP transport + engine + group
// layer + AF_UNIX IPC server) configured from a spread.conf-style file.
//
//   $ cat > /tmp/ring.conf <<EOF
//   daemon 0 127.0.0.1 4803 4804
//   daemon 1 127.0.0.1 4805 4806
//   protocol accelerated
//   option accelerated_window 15
//   EOF
//   $ ./spread_daemon /tmp/ring.conf 0 /tmp/ring0.sock &
//   $ ./spread_daemon /tmp/ring.conf 1 /tmp/ring1.sock &
//
// Clients connect to the unix socket with daemon::RemoteClient (or any
// program speaking the ipc.hpp framing). With no --duration the daemon runs
// until killed; the demo default exits after a few seconds so the examples
// suite stays self-contained.
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include <string>

#include "daemon/config_file.hpp"
#include "daemon/ipc_server.hpp"
#include "membership/epoch_store.hpp"
#include "membership/membership.hpp"
#include "transport/udp_transport.hpp"

using namespace accelring;

int main(int argc, char** argv) {
  if (argc < 4) {
    std::fprintf(stderr,
                 "usage: %s <config> <pid> <ipc_socket_path> "
                 "[duration_seconds]\n",
                 argv[0]);
    return 2;
  }
  daemon::ConfigError error;
  const auto config = daemon::load_config_file(argv[1], error);
  if (!config) {
    std::fprintf(stderr, "%s:%d: %s\n", argv[1], error.line,
                 error.message.c_str());
    return 2;
  }
  const auto pid =
      static_cast<protocol::ProcessId>(std::strtoul(argv[2], nullptr, 10));
  if (!config->peers.contains(pid)) {
    std::fprintf(stderr, "pid %u not in config\n", unsigned{pid});
    return 2;
  }
  const int duration = argc > 4 ? std::atoi(argv[4]) : 3;

  transport::EventLoop loop;
  transport::UdpTransport transport(pid, config->peers, loop);
  protocol::Engine engine(pid, config->proto, transport);
  // Durable epoch counter next to the IPC socket: a cold-restarted daemon
  // must never mint a ring id it used in a previous incarnation.
  membership::FileEpochStore epochs(std::string(argv[3]) + ".epoch");
  engine.set_epoch_store(&epochs);
  transport.bind(engine);
  daemon::Daemon daemon(pid, engine);
  transport.set_deliver([&daemon](const protocol::Delivery& d) {
    daemon.on_delivery(d);
  });
  transport.set_config([&daemon](const protocol::ConfigurationChange& c) {
    daemon.on_configuration(c);
  });
  daemon::IpcServer ipc(daemon, loop, argv[3]);

  // Static ring from the config file (all daemons must be started; dynamic
  // discovery is a one-line change: engine.start_discovery()).
  protocol::RingConfig ring;
  ring.ring_id = membership::make_ring_id(1, 0);
  for (const auto& [member_pid, addr] : config->peers) {
    ring.members.push_back(member_pid);
  }
  engine.start_with_ring(ring);

  std::printf("daemon %u up: %zu-member ring, %s protocol, ipc at %s\n",
              unsigned{pid}, config->peers.size(),
              config->proto.variant == protocol::Variant::kAccelerated
                  ? "accelerated"
                  : "original",
              argv[3]);
  loop.run_for(util::sec(duration));

  const auto& stats = engine.stats();
  std::printf(
      "daemon %u exiting: rounds=%llu initiated=%llu delivered=%llu "
      "retransmitted=%llu\n",
      unsigned{pid}, static_cast<unsigned long long>(stats.tokens_handled),
      static_cast<unsigned long long>(stats.initiated),
      static_cast<unsigned long long>(stats.delivered_agreed +
                                      stats.delivered_safe),
      static_cast<unsigned long long>(stats.retransmitted));
  return 0;
}
