// The engine over real UDP sockets.
//
// Runs a 3-process ring on loopback (unicast fan-out logical multicast, data
// and token on separate ports — the paper's §III-D implementation choices),
// pushes a burst of messages through it, and reports real-time throughput
// and delivery consistency. The identical protocol::Engine code runs here
// and under the simulator — the engine is sans-io.
//
//   $ ./udp_ring [seconds]
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "membership/membership.hpp"
#include "transport/udp_transport.hpp"
#include "util/bytes.hpp"

using namespace accelring;

int main(int argc, char** argv) {
  const int kNodes = 3;
  const int seconds = argc > 1 ? std::atoi(argv[1]) : 2;
  const auto base =
      static_cast<uint16_t>(24000 + (::getpid() % 10000) * 2 % 30000);

  std::map<protocol::ProcessId, transport::PeerAddress> peers;
  for (int i = 0; i < kNodes; ++i) {
    peers[static_cast<protocol::ProcessId>(i)] = transport::PeerAddress{
        "127.0.0.1", static_cast<uint16_t>(base + i * 2),
        static_cast<uint16_t>(base + i * 2 + 1)};
  }

  transport::EventLoop loop;
  struct Node {
    std::unique_ptr<transport::UdpTransport> transport;
    std::unique_ptr<protocol::Engine> engine;
    uint64_t delivered = 0;
    uint64_t payload_bytes = 0;
  };
  std::vector<Node> nodes(kNodes);

  protocol::RingConfig ring;
  ring.ring_id = membership::make_ring_id(1, 0);
  for (int i = 0; i < kNodes; ++i) {
    ring.members.push_back(static_cast<protocol::ProcessId>(i));
  }

  protocol::ProtocolConfig config;
  config.timeouts.token_retransmit = util::msec(20);
  for (int i = 0; i < kNodes; ++i) {
    nodes[i].transport = std::make_unique<transport::UdpTransport>(
        static_cast<protocol::ProcessId>(i), peers, loop);
    nodes[i].engine = std::make_unique<protocol::Engine>(
        static_cast<protocol::ProcessId>(i), config, *nodes[i].transport);
    nodes[i].transport->bind(*nodes[i].engine);
    nodes[i].transport->set_deliver(
        [&nodes, i](const protocol::Delivery& d) {
          ++nodes[i].delivered;
          nodes[i].payload_bytes += d.payload.size();
        });
  }
  for (int i = kNodes - 1; i >= 0; --i) {
    nodes[i].engine->start_with_ring(ring);
  }

  // Keep every node's send queue topped up with 1350-byte messages.
  const std::vector<std::byte> payload(1350, std::byte{0x42});
  loop.set_timer(50, util::msec(1), [] {});  // noop; primes timer machinery
  const auto started = loop.now();
  uint64_t submitted = 0;
  // Refill loop: a timer that re-arms itself every 2 ms.
  std::function<void()> refill = [&] {
    for (auto& node : nodes) {
      for (int k = 0; k < 40 && node.engine->pending() < 200; ++k) {
        if (node.engine->submit(protocol::Service::kAgreed, payload)) {
          ++submitted;
        }
      }
    }
    loop.set_timer(51, util::msec(2), refill);
  };
  refill();

  loop.run_for(util::sec(seconds));

  std::printf("real UDP ring, %d processes on loopback, %d s:\n", kNodes,
              seconds);
  const double elapsed = util::to_sec(loop.now() - started);
  bool consistent = true;
  for (int i = 0; i < kNodes; ++i) {
    const double mbps =
        static_cast<double>(nodes[i].payload_bytes) * 8 / elapsed / 1e6;
    std::printf(
        "  p%d delivered %llu messages (%.0f Mbps clean payload), aru=%lld\n",
        i, static_cast<unsigned long long>(nodes[i].delivered), mbps,
        static_cast<long long>(nodes[i].engine->local_aru()));
    consistent = consistent && nodes[i].delivered == nodes[0].delivered;
  }
  std::printf("submitted=%llu; all nodes delivered the same count: %s\n",
              static_cast<unsigned long long>(submitted),
              consistent ? "yes" : "within-flight tolerance");
  return 0;
}
