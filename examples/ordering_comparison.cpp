// Side-by-side comparison of every total ordering protocol in this repo:
// the original Totem ring, the Accelerated Ring, a fixed-sequencer, and a
// U-Ring-Paxos-style protocol, all on the identical simulated 1GbE fabric.
//
//   $ ./ordering_comparison [offered_mbps]
#include <cstdio>
#include <cstdlib>

#include "baselines/baseline_cluster.hpp"
#include "baselines/sequencer.hpp"
#include "baselines/uring_paxos.hpp"
#include "harness/sweep.hpp"

using namespace accelring;

namespace {

struct Row {
  const char* name;
  double achieved;
  double mean_us;
  double p99_us;
};

Row run_ring(const char* name, protocol::Variant variant, double offered) {
  harness::PointConfig pc;
  pc.proto = harness::bench_protocol(variant);
  pc.offered_mbps = offered;
  const auto r = harness::run_point(pc);
  return Row{name, r.achieved_mbps, util::to_usec(r.mean_latency),
             util::to_usec(r.p99_latency)};
}

template <typename Protocol, typename Config>
Row run_baseline(const char* name, double offered) {
  const int kNodes = 8;
  const protocol::Nanos warmup = util::msec(100);
  const protocol::Nanos window_end = warmup + util::msec(300);
  baselines::BaselineCluster<Protocol, Config> cluster(
      kNodes, simnet::FabricParams::one_gig(), Config{});
  util::LatencyStats latency;
  util::Meter meter;
  cluster.set_on_deliver([&](int node, const protocol::Delivery& d,
                             protocol::Nanos at) {
    if (node != 1 || at < warmup || at >= window_end) return;
    harness::PayloadStamp stamp;
    if (!harness::parse_payload(d.payload, stamp)) return;
    latency.add(at - stamp.inject_time);
    meter.add(d.payload.size());
  });
  const double msgs_per_sec = offered * 1e6 / 8.0 / 1350.0;
  const auto interval = static_cast<protocol::Nanos>(1e9 / msgs_per_sec);
  // One global injection chain round-robining over senders.
  auto inject = std::make_shared<std::function<void(protocol::Nanos, int)>>();
  *inject = [&cluster, interval, window_end, inject](protocol::Nanos at,
                                                     int i) {
    if (at >= window_end) return;
    cluster.eq().schedule(at, [&cluster, at, i, interval, inject] {
      harness::PayloadStamp stamp{at, static_cast<uint32_t>(i % 8),
                                  static_cast<uint32_t>(i)};
      cluster.submit(i % 8, harness::make_payload(1350, stamp));
      (*inject)(at + interval, i + 1);
    });
  };
  (*inject)(util::usec(100), 0);
  cluster.run_until(window_end + util::msec(50));
  return Row{name, meter.mbps(window_end - warmup),
             util::to_usec(latency.mean()),
             util::to_usec(latency.percentile(0.99))};
}

}  // namespace

int main(int argc, char** argv) {
  const double offered = argc > 1 ? std::atof(argv[1]) : 600.0;
  std::printf("total ordering protocols, 8 nodes, simulated 1GbE, "
              "1350B payloads, %.0f Mbps offered:\n\n",
              offered);
  std::printf("%-28s %12s %12s %12s\n", "protocol", "achieved", "mean_us",
              "p99_us");

  const Row rows[] = {
      run_ring("totem single-ring (1993)", protocol::Variant::kOriginal,
               offered),
      run_ring("accelerated ring (paper)", protocol::Variant::kAccelerated,
               offered),
      run_baseline<baselines::SequencerProtocol, baselines::SequencerConfig>(
          "fixed sequencer (JGroups)", offered),
      run_baseline<baselines::URingProtocol, baselines::URingConfig>(
          "u-ring paxos (batching)", offered),
  };
  for (const Row& row : rows) {
    std::printf("%-28s %12.1f %12.1f %12.1f\n", row.name, row.achieved,
                row.mean_us, row.p99_us);
  }
  std::printf("\nthe accelerated ring keeps the token-protocol feature set "
              "(Safe delivery, EVS partitionable membership, multi-group "
              "ordering)\nwhile matching or beating the centralized "
              "alternatives on throughput at data-center loads.\n");
  return 0;
}
