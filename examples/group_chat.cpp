// Group chat over the client-daemon architecture.
//
// Demonstrates the Spread-style group layer: daemons on every node, clients
// joining named rooms, open-group sends (a sender need not be a member),
// membership views on join/leave, and a multi-group announcement ordered
// consistently across rooms.
//
//   $ ./group_chat
#include <cstdio>
#include <memory>
#include <vector>

#include "daemon/client.hpp"
#include "harness/cluster.hpp"
#include "util/bytes.hpp"

using namespace accelring;

namespace {

std::vector<std::byte> text(const std::string& s) {
  return util::to_vector(util::as_bytes(s));
}

daemon::Client::MessageFn printer(const std::string& who) {
  return [who](const std::string& group, const std::string& sender,
               protocol::Service, std::span<const std::byte> payload) {
    std::printf("  [%s] #%s <%s> %.*s\n", who.c_str(), group.c_str(),
                sender.c_str(), static_cast<int>(payload.size()),
                reinterpret_cast<const char*>(payload.data()));
  };
}

daemon::Client::ViewFn view_printer(const std::string& who) {
  return [who](const groups::GroupView& view) {
    std::printf("  [%s] view #%s v%llu:", who.c_str(), view.group.c_str(),
                static_cast<unsigned long long>(view.view_id));
    for (const auto& m : view.members) std::printf(" %s", m.name.c_str());
    std::printf("\n");
  };
}

}  // namespace

int main() {
  const int kNodes = 3;
  harness::SimCluster cluster(kNodes, simnet::FabricParams::one_gig(), {},
                              harness::ImplProfile::kLibrary);
  std::vector<std::unique_ptr<daemon::Daemon>> daemons;
  for (int i = 0; i < kNodes; ++i) {
    daemons.push_back(std::make_unique<daemon::Daemon>(
        static_cast<protocol::ProcessId>(i), cluster.engine(i)));
  }
  cluster.set_on_deliver([&](int node, const protocol::Delivery& d,
                             protocol::Nanos) {
    daemons[node]->on_delivery(d);
  });
  cluster.set_on_config([&](int node, const protocol::ConfigurationChange& c) {
    daemons[node]->on_configuration(c);
  });
  cluster.start_static();

  // Three users on three different daemons.
  daemon::Client alice(*daemons[0], "alice", printer("alice"),
                       view_printer("alice"));
  daemon::Client bob(*daemons[1], "bob", printer("bob"), view_printer("bob"));
  daemon::Client carol(*daemons[2], "carol", printer("carol"),
                       view_printer("carol"));

  auto step = [&](protocol::Nanos t, std::function<void()> fn) {
    cluster.eq().schedule(t, std::move(fn));
  };

  std::printf("--- joins (membership views are totally ordered) ---\n");
  step(util::usec(100), [&] { alice.join("general"); });
  step(util::usec(200), [&] { bob.join("general"); });
  step(util::usec(300), [&] { carol.join("general"); });
  step(util::usec(400), [&] { carol.join("ops"); });

  step(util::msec(5), [&] {
    std::printf("--- chat ---\n");
    alice.send("general", protocol::Service::kAgreed, text("hello everyone"));
    bob.send("general", protocol::Service::kAgreed, text("hi alice"));
  });

  step(util::msec(10), [&] {
    std::printf("--- open-group send: alice posts to #ops without joining ---\n");
    alice.send("ops", protocol::Service::kAgreed, text("deploy at noon"));
  });

  step(util::msec(15), [&] {
    std::printf("--- multi-group announcement, ordered across rooms ---\n");
    bob.send(std::vector<std::string>{"general", "ops"},
             protocol::Service::kSafe, text("ATTENTION: maintenance window"));
  });

  step(util::msec(20), [&] {
    std::printf("--- bob leaves; views update everywhere ---\n");
    bob.leave("general");
  });

  cluster.run_until(util::msec(50));
  return 0;
}
