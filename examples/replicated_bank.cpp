// Replicated state machine: a toy bank on totally ordered multicast.
//
// The classic use the paper's introduction motivates (financial systems,
// consistent distributed state): every replica applies the same totally
// ordered stream of operations to its local state, so all replicas stay
// identical — even with random message loss forcing retransmissions
// underneath.
//
//   $ ./replicated_bank
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "harness/cluster.hpp"
#include "util/bytes.hpp"
#include "util/rng.hpp"

using namespace accelring;

namespace {

/// Bank operation carried in ordered messages.
struct Op {
  uint32_t account = 0;
  int64_t amount = 0;  // positive deposit, negative withdrawal

  [[nodiscard]] std::vector<std::byte> encode() const {
    util::Writer w(12);
    w.u32(account);
    w.i64(amount);
    return std::move(w).take();
  }
  static Op decode(std::span<const std::byte> bytes) {
    util::Reader r(bytes);
    Op op;
    op.account = r.u32();
    op.amount = r.i64();
    return op;
  }
};

/// One replica: applies ordered operations; rejects overdrafts
/// deterministically (every replica rejects the same ones, because they all
/// see the same order — the whole point).
struct BankReplica {
  std::map<uint32_t, int64_t> balances;
  uint64_t applied = 0;
  uint64_t rejected = 0;

  void apply(const Op& op) {
    int64_t& balance = balances[op.account];
    if (op.amount < 0 && balance + op.amount < 0) {
      ++rejected;
      return;  // overdraft: rejected identically everywhere
    }
    balance += op.amount;
    ++applied;
  }

  [[nodiscard]] std::string fingerprint() const {
    std::string s;
    for (const auto& [account, balance] : balances) {
      s += std::to_string(account) + ":" + std::to_string(balance) + ";";
    }
    return s;
  }
};

}  // namespace

int main() {
  const int kReplicas = 5;
  const int kOps = 400;

  harness::SimCluster cluster(kReplicas, simnet::FabricParams::one_gig(), {},
                              harness::ImplProfile::kLibrary, /*seed=*/2026);
  cluster.net().set_loss_rate(0.01);  // 1% loss: retransmissions repair it

  std::vector<BankReplica> replicas(kReplicas);
  cluster.set_on_deliver(
      [&](int node, const protocol::Delivery& d, protocol::Nanos) {
        replicas[node].apply(Op::decode(d.payload));
      });
  cluster.start_static();

  // Concurrent clients at every replica issue random deposits/withdrawals.
  util::Rng rng(7);
  for (int i = 0; i < kOps; ++i) {
    const int node = static_cast<int>(rng.below(kReplicas));
    Op op;
    op.account = static_cast<uint32_t>(rng.below(4));
    op.amount = rng.range(-80, 100);
    cluster.eq().schedule(util::usec(50) + i * util::usec(40),
                          [&cluster, node, op] {
                            cluster.submit(node, protocol::Service::kAgreed,
                                           op.encode());
                          });
  }
  cluster.run_until(util::sec(2));

  std::printf("replica states after %d concurrent operations (1%% loss):\n",
              kOps);
  bool consistent = true;
  for (int i = 0; i < kReplicas; ++i) {
    std::printf("  replica %d: %s applied=%llu rejected=%llu\n", i,
                replicas[i].fingerprint().c_str(),
                static_cast<unsigned long long>(replicas[i].applied),
                static_cast<unsigned long long>(replicas[i].rejected));
    consistent = consistent &&
                 replicas[i].fingerprint() == replicas[0].fingerprint() &&
                 replicas[i].rejected == replicas[0].rejected;
  }
  uint64_t retransmitted = 0;
  for (int i = 0; i < kReplicas; ++i) {
    retransmitted += cluster.engine(i).stats().retransmitted;
  }
  std::printf("retransmissions repaired the loss: %llu resends\n",
              static_cast<unsigned long long>(retransmitted));
  std::printf("replicas consistent: %s\n", consistent ? "yes" : "NO");
  return consistent ? 0 : 1;
}
