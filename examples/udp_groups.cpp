// The full stack over real sockets: three daemons (engine + group layer)
// on loopback UDP, with clients joining a room and chatting — the closest
// thing in this repo to running three Spread daemons on one machine.
//
//   $ ./udp_groups
#include <unistd.h>

#include <cstdio>
#include <memory>

#include "daemon/client.hpp"
#include "membership/membership.hpp"
#include "transport/udp_transport.hpp"
#include "util/bytes.hpp"

using namespace accelring;

int main() {
  const int kDaemons = 3;
  const auto base =
      static_cast<uint16_t>(26000 + (::getpid() % 5000) * 2 % 30000);

  std::map<protocol::ProcessId, transport::PeerAddress> peers;
  for (int i = 0; i < kDaemons; ++i) {
    peers[static_cast<protocol::ProcessId>(i)] = transport::PeerAddress{
        "127.0.0.1", static_cast<uint16_t>(base + i * 2),
        static_cast<uint16_t>(base + i * 2 + 1)};
  }

  transport::EventLoop loop;
  struct Node {
    std::unique_ptr<transport::UdpTransport> transport;
    std::unique_ptr<protocol::Engine> engine;
    std::unique_ptr<daemon::Daemon> daemon;
  };
  std::vector<Node> nodes(kDaemons);

  protocol::RingConfig ring;
  ring.ring_id = membership::make_ring_id(1, 0);
  for (int i = 0; i < kDaemons; ++i) {
    ring.members.push_back(static_cast<protocol::ProcessId>(i));
  }
  for (int i = 0; i < kDaemons; ++i) {
    auto& node = nodes[i];
    node.transport = std::make_unique<transport::UdpTransport>(
        static_cast<protocol::ProcessId>(i), peers, loop);
    node.engine = std::make_unique<protocol::Engine>(
        static_cast<protocol::ProcessId>(i), protocol::ProtocolConfig{},
        *node.transport);
    node.transport->bind(*node.engine);
    node.daemon = std::make_unique<daemon::Daemon>(
        static_cast<protocol::ProcessId>(i), *node.engine);
    node.transport->set_deliver(
        [d = node.daemon.get()](const protocol::Delivery& delivery) {
          d->on_delivery(delivery);
        });
    node.transport->set_config(
        [d = node.daemon.get()](const protocol::ConfigurationChange& c) {
          d->on_configuration(c);
        });
  }
  for (int i = kDaemons - 1; i >= 0; --i) {
    nodes[i].engine->start_with_ring(ring);
  }

  auto printer = [](const char* who) {
    return [who](const std::string& group, const std::string& sender,
                 protocol::Service, std::span<const std::byte> payload) {
      std::printf("  [%s] #%s <%s> %.*s\n", who, group.c_str(),
                  sender.c_str(), static_cast<int>(payload.size()),
                  reinterpret_cast<const char*>(payload.data()));
    };
  };
  daemon::Client alice(*nodes[0].daemon, "alice", printer("alice@d0"));
  daemon::Client bob(*nodes[1].daemon, "bob", printer("bob@d1"));
  daemon::Client carol(*nodes[2].daemon, "carol", printer("carol@d2"));

  alice.join("udp-room");
  bob.join("udp-room");
  carol.join("udp-room");
  loop.run_for(util::msec(200));

  std::printf("--- three daemons over real UDP sockets ---\n");
  alice.send("udp-room", protocol::Service::kAgreed,
             util::to_vector(util::as_bytes("hello over real sockets")));
  bob.send("udp-room", protocol::Service::kSafe,
           util::to_vector(util::as_bytes("safe-delivered reply")));
  loop.run_for(util::msec(400));

  std::printf("done; engine arus: %lld %lld %lld\n",
              static_cast<long long>(nodes[0].engine->local_aru()),
              static_cast<long long>(nodes[1].engine->local_aru()),
              static_cast<long long>(nodes[2].engine->local_aru()));
  return 0;
}
