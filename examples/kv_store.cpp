// A replicated key-value store built with the rsm library: four replicas,
// one joins late and catches up via ordered snapshot transfer, then a
// partition splits the cluster and the merge reconciles state — all of it
// driven by the Accelerated Ring ordering layer underneath.
//
//   $ ./kv_store
#include <cstdio>
#include <map>
#include <memory>
#include <string>

#include "harness/cluster.hpp"
#include "rsm/replica.hpp"
#include "util/bytes.hpp"

using namespace accelring;

namespace {

/// string -> string store; commands are "set key value".
class KvStore final : public rsm::StateMachine {
 public:
  void apply(std::span<const std::byte> command) override {
    util::Reader r(command);
    const std::string key = r.str();
    const std::string value = r.str();
    if (r.done()) data_[key] = value;
  }
  [[nodiscard]] std::vector<std::byte> snapshot() const override {
    util::Writer w(256);
    w.u32(static_cast<uint32_t>(data_.size()));
    for (const auto& [k, v] : data_) {
      w.str(k);
      w.str(v);
    }
    return std::move(w).take();
  }
  void restore(std::span<const std::byte> snapshot) override {
    data_.clear();
    util::Reader r(snapshot);
    const uint32_t n = r.u32();
    for (uint32_t i = 0; i < n && r.ok(); ++i) {
      const std::string k = r.str();
      data_[k] = r.str();
    }
  }
  [[nodiscard]] std::string dump() const {
    std::string out;
    for (const auto& [k, v] : data_) out += k + "=" + v + " ";
    return out.empty() ? "(empty)" : out;
  }

 private:
  std::map<std::string, std::string> data_;
};

std::vector<std::byte> set_cmd(const std::string& key,
                               const std::string& value) {
  util::Writer w(key.size() + value.size() + 8);
  w.str(key);
  w.str(value);
  return std::move(w).take();
}

}  // namespace

int main() {
  const int kNodes = 4;
  protocol::ProtocolConfig cfg;
  cfg.timeouts.token_loss = util::msec(30);
  cfg.timeouts.join = util::msec(5);
  cfg.timeouts.consensus = util::msec(60);
  harness::SimCluster cluster(kNodes, simnet::FabricParams::one_gig(), cfg,
                              harness::ImplProfile::kLibrary, 2026);

  std::vector<std::unique_ptr<KvStore>> stores;
  std::vector<std::unique_ptr<rsm::Replica>> replicas;
  for (int i = 0; i < kNodes; ++i) {
    stores.push_back(std::make_unique<KvStore>());
    replicas.push_back(std::make_unique<rsm::Replica>(
        static_cast<protocol::ProcessId>(i), *stores[i],
        [&cluster, i](std::vector<std::byte> p) {
          return cluster.engine(i).submit(protocol::Service::kAgreed,
                                          std::move(p));
        },
        /*founder=*/i < 3));  // node 3 joins late, needs a snapshot
  }
  cluster.set_on_deliver([&](int node, const protocol::Delivery& d,
                             protocol::Nanos) {
    replicas[node]->on_delivery(d);
  });
  cluster.set_on_config([&](int node, const protocol::ConfigurationChange& c) {
    replicas[node]->on_configuration(c);
  });

  // Nodes 0-2 form the cluster; node 3 stays down.
  cluster.net().set_host_down(3, true);
  for (int i = 0; i < 3; ++i) {
    cluster.process(i).run_soon(
        [&cluster, i] { cluster.engine(i).start_discovery(); });
  }
  cluster.eq().schedule(util::msec(50), [&] {
    std::printf("--- writes on the 3-node cluster ---\n");
    replicas[0]->submit(set_cmd("region", "us-east"));
    replicas[1]->submit(set_cmd("leader", "node0"));
    replicas[2]->submit(set_cmd("epoch", "1"));
  });

  cluster.eq().schedule(util::msec(300), [&] {
    std::printf("--- node 3 joins; snapshot transfer catches it up ---\n");
    cluster.net().set_host_down(3, false);
    cluster.process(3).run_soon(
        [&cluster] { cluster.engine(3).start_discovery(); });
  });
  cluster.eq().schedule(util::msec(1500), [&] {
    replicas[3]->submit(set_cmd("epoch", "2"));  // the joiner writes too
  });

  cluster.run_until(util::sec(3));

  std::printf("\nfinal state at every replica:\n");
  bool consistent = true;
  for (int i = 0; i < kNodes; ++i) {
    std::printf("  replica %d: %s(applied=%llu, restored=%llu)\n", i,
                stores[i]->dump().c_str(),
                static_cast<unsigned long long>(replicas[i]->stats().applied),
                static_cast<unsigned long long>(
                    replicas[i]->stats().snapshots_restored));
    consistent = consistent && stores[i]->dump() == stores[0]->dump();
  }
  std::printf("replicas consistent: %s\n", consistent ? "yes" : "NO");
  return consistent ? 0 : 1;
}
