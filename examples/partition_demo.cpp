// Extended Virtual Synchrony in action: partition and merge.
//
// Six processes discover each other dynamically, a partition splits them
// 3/3, both halves install new configurations and keep ordering messages
// independently (EVS allows progress in every partition — a key advantage
// over primary-component models, paper §V), and after healing they merge
// back into one ring, with transitional and regular configuration changes
// delivered at every step.
//
//   $ ./partition_demo
#include <cstdio>
#include <string>

#include "harness/cluster.hpp"
#include "util/bytes.hpp"

using namespace accelring;

int main() {
  const int kNodes = 6;
  protocol::ProtocolConfig config;
  config.timeouts.token_loss = util::msec(30);
  config.timeouts.join = util::msec(5);
  config.timeouts.consensus = util::msec(60);
  harness::SimCluster cluster(kNodes, simnet::FabricParams::one_gig(), config,
                              harness::ImplProfile::kLibrary, /*seed=*/99);

  std::vector<uint64_t> delivered(kNodes, 0);
  cluster.set_on_config([&](int node, const protocol::ConfigurationChange& c) {
    std::string members;
    for (auto pid : c.config.members) {
      members += (members.empty() ? "p" : " p") + std::to_string(pid);
    }
    std::printf("t=%7.2fms  p%d %s config ring=%llx {%s}\n",
                util::to_msec(cluster.eq().now()), node,
                c.transitional ? "TRANSITIONAL" : "regular     ",
                static_cast<unsigned long long>(c.config.ring_id),
                members.c_str());
  });
  cluster.set_on_deliver([&](int node, const protocol::Delivery&,
                             protocol::Nanos) { ++delivered[node]; });

  std::printf("--- dynamic discovery: 6 processes find each other ---\n");
  cluster.start_discovery();

  // Background traffic the whole time (also what lets the healed halves
  // detect each other via foreign messages).
  for (int i = 0; i < 600; ++i) {
    cluster.eq().schedule(util::msec(2) + i * util::msec(2), [&cluster, i] {
      const int sender = i % kNodes;
      cluster.submit(sender, protocol::Service::kAgreed,
                     util::to_vector(util::as_bytes(
                         "update-" + std::to_string(i))));
    });
  }

  cluster.eq().schedule(util::msec(300), [&] {
    std::printf("--- partition: {p0 p1 p2} | {p3 p4 p5} ---\n");
    for (int i = 0; i < kNodes; ++i) {
      cluster.net().set_partition(i, i < 3 ? 0 : 1);
    }
  });
  cluster.eq().schedule(util::msec(700), [&] {
    std::printf("--- partition heals ---\n");
    cluster.net().heal();
  });

  cluster.run_until(util::sec(3));

  std::printf("\nfinal rings:\n");
  for (int i = 0; i < kNodes; ++i) {
    std::printf("  p%d: ring=%llx members=%zu operational=%s delivered=%llu\n",
                i,
                static_cast<unsigned long long>(
                    cluster.engine(i).ring().ring_id),
                cluster.engine(i).ring().size(),
                cluster.engine(i).operational() ? "yes" : "no",
                static_cast<unsigned long long>(delivered[i]));
  }
  const bool merged = cluster.engine(0).ring().size() == kNodes;
  std::printf("merged back into one ring: %s\n", merged ? "yes" : "NO");
  return merged ? 0 : 1;
}
