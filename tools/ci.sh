#!/usr/bin/env bash
# The full local CI gate: plain, ASan, and UBSan builds, every test suite,
# and the fast fault-injection campaign. Sanitized builds live in their own
# trees (sanitizers change the ABI of everything they touch).
#
#   tools/ci.sh              # everything (~a few minutes)
#   tools/ci.sh --fast       # plain build + tests + check-fast only
#
# Any failure stops the script with a nonzero exit.
set -euo pipefail

cd "$(dirname "$0")/.."

FAST=0
[[ "${1:-}" == "--fast" ]] && FAST=1

GENERATOR=()
command -v ninja >/dev/null 2>&1 && GENERATOR=(-G Ninja)

configure_and_test() {
  local dir="$1"
  shift
  echo "=== ${dir}: configure ==="
  # Only pick a generator for a fresh tree; an existing cache keeps its own.
  local gen=("${GENERATOR[@]}")
  [[ -f "${dir}/CMakeCache.txt" ]] && gen=()
  cmake -B "${dir}" -S . "${gen[@]}" "$@"
  echo "=== ${dir}: build ==="
  cmake --build "${dir}" -j
  echo "=== ${dir}: test ==="
  ctest --test-dir "${dir}" --output-on-failure -j "$(nproc)"
}

configure_and_test build

echo "=== build: check-fast ==="
cmake --build build --target check-fast

# Gray-failure acceptance: a 10x CPU straggler must be quarantined and the
# ring's agreed throughput must recover to >= 80% of the fault-free
# baseline (the campaign above already audits that no HEALTHY member is
# ever quarantined; this checks the flip side — the sick one actually is).
echo "=== build: gray-failure A/B acceptance ==="
cmake --build build --target fig_gray_failure
./build/bench/fig_gray_failure

# Observability acceptance: the obs smoke bench (one single-ring point and
# one K=4 multiring point) must emit machine-readable BENCH_*.json whose
# latency histograms are populated and internally consistent. This is the
# end-to-end guard that the metrics layer is actually recording — the
# determinism tests above prove it records without perturbing.
echo "=== build: obs artifact validation ==="
cmake --build build --target obs_smoke
OBS_DIR="build/obs_artifacts"
rm -rf "${OBS_DIR}"
mkdir -p "${OBS_DIR}"
ACCELRING_BENCH_DIR="${OBS_DIR}" ./build/bench/obs_smoke >/dev/null
python3 tools/validate_bench_json.py \
  "${OBS_DIR}/BENCH_obs_smoke_1ring.json" \
  "${OBS_DIR}/BENCH_obs_smoke_4ring.json"

# KV service acceptance: the sharded KV smoke (single-shard and K=4) must
# complete a short million-key-space session workload end to end — rsm
# replicas, lease reads, exactly-once frontends over the merged stream —
# and emit validating artifacts. The kv-labelled ctest suite above covers
# the protocol corners; this guards the full-stack wiring and the bench
# artifact contract.
echo "=== build: kv service smoke ==="
cmake --build build --target kv_service
KV_DIR="build/kv_artifacts"
rm -rf "${KV_DIR}"
mkdir -p "${KV_DIR}"
ACCELRING_BENCH_DIR="${KV_DIR}" ./build/bench/kv_service --smoke --shards 1 >/dev/null
ACCELRING_BENCH_DIR="${KV_DIR}" ./build/bench/kv_service --smoke --shards 4 >/dev/null
python3 tools/validate_bench_json.py \
  "${KV_DIR}/BENCH_kv_smoke_1shard.json" \
  "${KV_DIR}/BENCH_kv_smoke_4shard.json"

# WAN acceptance: every multi-datacenter campaign scenario stays clean
# across a seed sweep plus the wan.seeds regression corpus, and the
# topology-class bench (LAN/metro/regional in --smoke) emits validating
# BENCH_wan_*.json artifacts. Guards the whole multi-DC stack: topology
# routing, WAN-scaled timeouts, correlated faults, and the bench wiring.
echo "=== build: wan campaign + topology bench smoke ==="
cmake --build build --target check_campaign fig_wan_topologies
./build/tools/check_campaign --quiet --seeds 5 \
  --seed-file tests/seeds/wan.seeds \
  --scenario wan_loss_bursts --scenario wan_latency_surge \
  --scenario rack_power --scenario switch_brownout \
  --scenario dc_flap --scenario kv_wan_rack_power
WAN_DIR="build/wan_artifacts"
rm -rf "${WAN_DIR}"
mkdir -p "${WAN_DIR}"
ACCELRING_BENCH_DIR="${WAN_DIR}" ./build/bench/fig_wan_topologies --smoke >/dev/null
python3 tools/validate_bench_json.py "${WAN_DIR}"/BENCH_wan_*.json

# Storage acceptance: every durable-storage campaign scenario (whole-cluster
# power loss, torn/reordered write caches, bit rot, ENOSPC/stall) stays
# clean — DurabilityOracle + KvOracle attached — across a seed sweep plus
# the storage.seeds regression corpus, and the KV smoke with per-node WAL +
# checkpoint persistence enabled emits a validating artifact. Guards the
# whole durability stack: SimDisk crash semantics, ReplicaStore recovery,
# replica cold restart from disk, and the durability oracle itself.
echo "=== build: storage campaign + durable kv smoke ==="
./build/tools/check_campaign --quiet --seeds 20 --rings 1 \
  --seed-file tests/seeds/storage.seeds \
  --scenario kv_blackout --scenario kv_blackout_torn \
  --scenario kv_disk_bitrot --scenario kv_disk_stress
STORAGE_DIR="build/storage_artifacts"
rm -rf "${STORAGE_DIR}"
mkdir -p "${STORAGE_DIR}"
ACCELRING_BENCH_DIR="${STORAGE_DIR}" \
  ./build/bench/kv_service --smoke --shards 1 --durable >/dev/null
python3 tools/validate_bench_json.py \
  "${STORAGE_DIR}/BENCH_kv_smoke_1shard_durable.json"

# Migration acceptance: every live-migration campaign scenario (elastic
# ring add/remove, migration racing a partition heal, hot-shard rebalance)
# stays clean under the MergedOracle handoff audit across a seed sweep plus
# the migration.seeds regression corpus, and the migration bench (handoff
# latency/throughput phases in --smoke) emits a validating artifact.
# Guards the whole elastic stack: consistent-hash plans, ordered
# freeze/drain/activate markers, held-message flush, and the audit itself.
echo "=== build: migration campaign + handoff bench smoke ==="
cmake --build build --target fig_migration
./build/tools/check_campaign --quiet --seeds 20 --rings 4 \
  --seed-file tests/seeds/migration.seeds \
  --scenario ring_add_under_load --scenario ring_remove_under_load \
  --scenario migration_during_partition_heal \
  --scenario hot_shard_zipf_rebalance
MIGRATION_DIR="build/migration_artifacts"
rm -rf "${MIGRATION_DIR}"
mkdir -p "${MIGRATION_DIR}"
ACCELRING_BENCH_DIR="${MIGRATION_DIR}" \
  ./build/bench/fig_migration --smoke >/dev/null
python3 tools/validate_bench_json.py \
  "${MIGRATION_DIR}/BENCH_migration_smoke.json"

if [[ "${FAST}" == "0" ]]; then
  configure_and_test build-asan -DACCELRING_SANITIZE=address
  configure_and_test build-ubsan -DACCELRING_SANITIZE=undefined
fi

echo "=== ci.sh: all green ==="
