// Fault-injection campaign driver for long soak runs.
//
// Runs every scenario in the catalogue across a seed range, single-ring and
// (for the fault kinds that keep one merged total order) multi-ring, with
// the safety oracles attached. Any failure prints the scenario, seed, and
// schedule — rerun with --seed-base to reproduce — plus a greedily shrunk
// minimal schedule.
//
// Usage:
//   check_campaign [--seeds N] [--seed-base S] [--nodes N] [--rings K]
//                  [--horizon-ms M] [--drain-ms M] [--scenario NAME]
//                  [--seed-file PATH] [--no-shrink] [--quiet]
//                  [--artifact-dir DIR | --no-artifacts]
//
// Failing runs write a flight-recorder artifact (violations + per-node trace
// rings + metric snapshot) to --artifact-dir (default: campaign_artifacts).
//
// --seed-file points at a corpus file (one integer seed per line, '#'
// comments) replayed for every scenario in addition to the sweep; see
// tests/seeds/README.md.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "check/campaign.hpp"

namespace {

std::vector<uint64_t> load_seed_file(const std::string& path) {
  std::vector<uint64_t> seeds;
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "check_campaign: cannot open seed file %s\n",
                 path.c_str());
    std::exit(2);
  }
  std::string line;
  while (std::getline(in, line)) {
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    const size_t start = line.find_first_not_of(" \t");
    if (start == std::string::npos) continue;
    seeds.push_back(std::strtoull(line.c_str() + start, nullptr, 0));
  }
  return seeds;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace accelring;

  check::CampaignOptions opt;
  opt.seeds_per_scenario = 200;
  opt.verbose = true;
  opt.run.artifact_dir = "campaign_artifacts";
  int rings = 0;  // 0 = both single-ring and K=4

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "check_campaign: %s needs a value\n",
                     arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--seeds") {
      opt.seeds_per_scenario = std::atoi(next());
    } else if (arg == "--seed-base") {
      opt.seed_base = std::strtoull(next(), nullptr, 0);
    } else if (arg == "--nodes") {
      opt.run.nodes = std::atoi(next());
    } else if (arg == "--rings") {
      rings = std::atoi(next());
    } else if (arg == "--horizon-ms") {
      opt.run.horizon = util::msec(std::atoi(next()));
    } else if (arg == "--drain-ms") {
      opt.run.drain = util::msec(std::atoi(next()));
    } else if (arg == "--scenario") {
      opt.only.push_back(next());
    } else if (arg == "--seed-file") {
      opt.extra_seeds = load_seed_file(next());
    } else if (arg == "--artifact-dir") {
      opt.run.artifact_dir = next();
    } else if (arg == "--no-artifacts") {
      opt.run.artifact_dir.clear();
    } else if (arg == "--no-shrink") {
      opt.shrink_failures = false;
    } else if (arg == "--quiet") {
      opt.verbose = false;
    } else {
      std::fprintf(stderr, "check_campaign: unknown flag %s\n", arg.c_str());
      return 2;
    }
  }
  for (const std::string& name : opt.only) {
    if (check::find_scenario(name) == nullptr) {
      std::fprintf(stderr, "check_campaign: unknown scenario %s\n",
                   name.c_str());
      return 2;
    }
  }

  int failures = 0;
  int runs = 0;
  uint64_t delivered = 0;
  uint64_t quarantines = 0;
  uint64_t readmits = 0;
  std::vector<int> ring_counts =
      rings > 0 ? std::vector<int>{rings} : std::vector<int>{1, 4};
  for (int k : ring_counts) {
    opt.run.rings = k;
    const check::CampaignResult result = check::run_campaign(opt);
    failures += result.failures;
    runs += result.runs;
    delivered += result.delivered;
    quarantines += result.quarantines;
    readmits += result.readmits;
  }

  std::fprintf(stderr,
               "check_campaign: %d runs, %llu deliveries, %llu quarantines "
               "(%llu readmitted), %d failures\n",
               runs, static_cast<unsigned long long>(delivered),
               static_cast<unsigned long long>(quarantines),
               static_cast<unsigned long long>(readmits), failures);
  return failures == 0 ? 0 : 1;
}
