#!/usr/bin/env python3
"""Validate BENCH_*.json artifacts emitted by the bench binaries.

Usage:
    tools/validate_bench_json.py BENCH_foo.json [BENCH_bar.json ...]

Checks, per file:
  * parses as JSON with the expected shape ("bench", "curves" -> "points");
  * every point carries the full latency quantile set with sane ordering
    (p50 <= p90 <= p99 <= p999 <= max) and non-negative values;
  * any point that measured messages also measured non-zero latency;
  * every curve's embedded metric registry holds a populated
    harness.delivery_latency_ns histogram (the instrumentation-regression
    guard: an empty histogram means the observability layer silently
    stopped recording) whose internal accounting is consistent
    (bucket counts + underflow == count, quantiles ordered, extrema exact).

Exit status 0 when every file passes, 1 otherwise. This is what
tools/ci.sh's `obs` stage runs against the obs_smoke artifacts.
"""

import json
import sys

QUANTS = ["p50", "p90", "p99", "p999"]


class Failure(Exception):
    pass


def check(cond, msg):
    if not cond:
        raise Failure(msg)


def check_quantile_order(obj, where):
    values = [obj[q] for q in QUANTS] + [obj["max"]]
    for a, b, qa, qb in zip(values, values[1:], QUANTS, QUANTS[1:] + ["max"]):
        check(a <= b, f"{where}: {qa}={a} > {qb}={b}")
    for q in QUANTS + ["max"]:
        check(obj[q] >= 0, f"{where}: {q} negative")


def check_point(point, where):
    for field in ("offered_mbps", "achieved_mbps", "messages", "latency_ns"):
        check(field in point, f"{where}: missing {field}")
    lat = point["latency_ns"]
    for q in ["mean"] + QUANTS + ["max"]:
        check(q in lat, f"{where}: latency_ns missing {q}")
    check_quantile_order(lat, f"{where}: latency_ns")
    if point["messages"] > 0:
        check(lat["max"] > 0,
              f"{where}: {point['messages']} messages but zero max latency")


def check_histogram(name, hist, where):
    for field in ("count", "underflow", "min", "max", "buckets") + tuple(QUANTS):
        check(field in hist, f"{where}: {name} missing {field}")
    bucket_total = sum(n for _, n in hist["buckets"])
    check(bucket_total + hist["underflow"] == hist["count"],
          f"{where}: {name} buckets+underflow={bucket_total + hist['underflow']}"
          f" != count={hist['count']}")
    if hist["count"] > 0:
        check_quantile_order(hist, f"{where}: {name}")
        check(hist["min"] <= hist["p50"] <= hist["max"],
              f"{where}: {name} quantiles outside [min, max]")


def check_curve(curve, where):
    check(isinstance(curve.get("label"), str), f"{where}: missing label")
    points = curve.get("points")
    check(isinstance(points, list) and points, f"{where}: no points")
    for i, point in enumerate(points):
        check_point(point, f"{where} point {i}")
    metrics = curve.get("metrics")
    if metrics is None:
        return
    hists = metrics.get("histograms", {})
    check(hists, f"{where}: metrics present but no histograms")
    populated = [n for n, h in hists.items() if h.get("count", 0) > 0]
    check(populated, f"{where}: every histogram is empty "
                     "(instrumentation regression)")
    delivery = hists.get("harness.delivery_latency_ns")
    check(delivery is not None,
          f"{where}: missing harness.delivery_latency_ns histogram")
    check(delivery["count"] > 0,
          f"{where}: harness.delivery_latency_ns is empty")
    for name, hist in hists.items():
        check_histogram(name, hist, where)


def validate(path):
    with open(path) as fh:
        doc = json.load(fh)
    check(isinstance(doc.get("bench"), str), "missing bench name")
    curves = doc.get("curves")
    check(isinstance(curves, list) and curves, "no curves")
    for curve in curves:
        check_curve(curve, f"curve '{curve.get('label', '?')}'")
    return len(curves)


def main():
    if len(sys.argv) < 2:
        print(__doc__)
        return 2
    failures = 0
    for path in sys.argv[1:]:
        try:
            n = validate(path)
            print(f"ok {path} ({n} curves)")
        except (Failure, json.JSONDecodeError, OSError, KeyError,
                TypeError) as err:
            print(f"FAIL {path}: {err}", file=sys.stderr)
            failures += 1
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
