#!/usr/bin/env python3
"""Turn bench output into per-figure CSV files (and PNGs if matplotlib
is available).

Usage:
    ./build/bench/fig1_agreed_1g > out.txt   # or the full bench_output.txt
    tools/plot_figures.py bench_output.txt plots/
    tools/plot_figures.py BENCH_fig1_agreed_1g.json [more.json ...] plots/

Two input formats:
  * the stdout text format — `==== Figure N ... ====` headings with
    `# curve label` blocks of whitespace-separated rows;
  * the machine-readable BENCH_*.json artifacts the bench binaries emit
    (several may be given; each becomes its own figure).
A `.json` extension selects the JSON parser. Every figure becomes one CSV
/ one plot with achieved throughput (Mbps) on the x axis and mean latency
(us, log scale) on the y axis — the paper's presentation.
"""

import csv
import json
import os
import re
import sys


def parse_bench_json(path):
    """BENCH_*.json -> {bench_name: [(label, [(offered, achieved, mean_us)])]}."""
    with open(path) as fh:
        doc = json.load(fh)
    curves = []
    for curve in doc.get("curves", []):
        rows = [(p["offered_mbps"], p["achieved_mbps"],
                 p["latency_ns"]["mean"] / 1000.0)
                for p in curve.get("points", [])]
        if rows:
            curves.append((curve.get("label", "?"), rows))
    return {doc.get("bench", os.path.basename(path)): curves} if curves else {}


def parse(path):
    figures = {}  # title -> list[(label, rows)]
    title = "untitled"
    label = None
    with open(path) as fh:
        for line in fh:
            line = line.rstrip("\n")
            heading = re.match(r"^==== (.*?) ====", line)
            if heading:
                title = heading.group(1)
                continue
            curve = re.match(r"^# (.*)", line)
            if curve:
                label = curve.group(1)
                figures.setdefault(title, []).append((label, []))
                continue
            row = re.match(r"^\s*([\d.]+)\s+([\d.]+)\s+([\d.]+)", line)
            if row and label is not None and figures.get(title):
                figures[title][-1][1].append(
                    (float(row.group(1)), float(row.group(2)),
                     float(row.group(3))))
    return {t: c for t, c in figures.items() if any(rows for _, rows in c)}


def slug(text):
    return re.sub(r"[^a-z0-9]+", "_", text.lower()).strip("_")[:60]


def write_csv(outdir, title, curves):
    path = os.path.join(outdir, slug(title) + ".csv")
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["curve", "offered_mbps", "achieved_mbps",
                         "mean_latency_us"])
        for label, rows in curves:
            for offered, achieved, latency in rows:
                writer.writerow([label, offered, achieved, latency])
    return path


def maybe_plot(outdir, title, curves):
    try:
        import matplotlib
        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        return None
    fig, ax = plt.subplots(figsize=(7, 4.5))
    for label, rows in curves:
        xs = [achieved for _, achieved, _ in rows]
        ys = [latency for _, _, latency in rows]
        ax.plot(xs, ys, marker="o", markersize=3, label=label)
    ax.set_xlabel("achieved throughput (Mbps, clean payload)")
    ax.set_ylabel("mean latency (us)")
    ax.set_yscale("log")
    ax.set_title(title)
    ax.legend(fontsize=7)
    ax.grid(True, alpha=0.3)
    path = os.path.join(outdir, slug(title) + ".png")
    fig.tight_layout()
    fig.savefig(path, dpi=130)
    plt.close(fig)
    return path


def main():
    if len(sys.argv) < 3:
        print(__doc__)
        return 2
    sources, outdir = sys.argv[1:-1], sys.argv[-1]
    os.makedirs(outdir, exist_ok=True)
    figures = {}
    for src in sources:
        parsed = parse_bench_json(src) if src.endswith(".json") else parse(src)
        if not parsed:
            print("no curves found in", src)
            return 1
        figures.update(parsed)
    for title, curves in figures.items():
        csv_path = write_csv(outdir, title, curves)
        png_path = maybe_plot(outdir, title, curves)
        print(f"{title}: {csv_path}" + (f" + {png_path}" if png_path else ""))
    return 0


if __name__ == "__main__":
    sys.exit(main())
