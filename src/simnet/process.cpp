#include "simnet/process.hpp"

#include <cassert>

namespace accelring::simnet {

namespace {
// Generous bound on distinct timer kinds; the protocol uses a handful.
constexpr size_t kMaxTimerKinds = 16;
}  // namespace

Process::Process(EventQueue& eq, ProcessCosts costs,
                 size_t socket_buffer_bytes)
    : eq_(eq),
      costs_(costs),
      socket_buffer_bytes_(socket_buffer_bytes),
      inboxes_(kNumSockets),
      timers_(kMaxTimerKinds) {}

void Process::enqueue(SocketId sock, const Network::Payload& data) {
  assert(sock >= 0 && sock < kNumSockets);
  Inbox& inbox = inboxes_[sock];
  if (inbox.queued_bytes + data->size() > socket_buffer_bytes_) {
    ++socket_drops_;
    return;
  }
  inbox.queued_bytes += data->size();
  inbox.items.push_back(data);
  maybe_schedule_drain();
}

void Process::set_timer(int kind, Nanos delay) {
  assert(kind >= 0 && static_cast<size_t>(kind) < kMaxTimerKinds);
  Timer& t = timers_[kind];
  if (t.event != 0) eq_.cancel(t.event);
  t.pending_fire = false;
  t.event = eq_.schedule(now() + delay, [this, kind] {
    Timer& timer = timers_[kind];
    timer.event = 0;
    timer.pending_fire = true;
    maybe_schedule_drain();
  });
}

void Process::cancel_timer(int kind) {
  assert(kind >= 0 && static_cast<size_t>(kind) < kMaxTimerKinds);
  Timer& t = timers_[kind];
  if (t.event != 0) eq_.cancel(t.event);
  t.event = 0;
  t.pending_fire = false;
}

void Process::run_soon(std::function<void()> fn, Nanos cost) {
  tasks_.emplace_back(std::move(fn), cost);
  maybe_schedule_drain();
}

void Process::maybe_schedule_drain() {
  if (drain_scheduled_ || running_) return;
  drain_scheduled_ = true;
  eq_.schedule(std::max(eq_.now(), busy_until_), [this] {
    drain_scheduled_ = false;
    drain_one();
  });
}

int Process::pick_socket() const {
  const SocketId preferred = sink_ ? sink_->preferred_socket() : kDataSocket;
  // When the token socket is preferred: token, then data, then IPC. Otherwise
  // data and IPC are drained before the token (paper §III-C: "when data
  // messages have high priority, we do not read from the token receiving
  // socket unless no data message is available, and vice versa").
  const SocketId order_token_first[] = {kTokenSocket, kDataSocket, kIpcSocket};
  const SocketId order_data_first[] = {kDataSocket, kIpcSocket, kTokenSocket};
  const auto& order =
      (preferred == kTokenSocket) ? order_token_first : order_data_first;
  for (SocketId s : order) {
    if (!inboxes_[s].items.empty()) return s;
  }
  return -1;
}

void Process::drain_one() {
  assert(!running_);
  const Nanos start = std::max(eq_.now(), busy_until_);
  vnow_ = start;
  running_ = true;

  // Deferred timers fire ahead of packet processing: they represent the
  // event loop noticing a timeout before issuing the next read.
  bool did_work = false;
  for (size_t kind = 0; kind < timers_.size() && !did_work; ++kind) {
    if (timers_[kind].pending_fire) {
      timers_[kind].pending_fire = false;
      if (sink_ != nullptr) sink_->on_timer(static_cast<int>(kind));
      did_work = true;
    }
  }

  if (!did_work && !tasks_.empty()) {
    auto [fn, cost] = std::move(tasks_.front());
    tasks_.pop_front();
    charge(cost);
    fn();
    did_work = true;
  }

  if (!did_work) {
    const int sock = pick_socket();
    if (sock >= 0) {
      Inbox& inbox = inboxes_[sock];
      Network::Payload data = std::move(inbox.items.front());
      inbox.items.pop_front();
      inbox.queued_bytes -= data->size();
      const size_t extra_frames = Wire::frames(data->size(), costs_.mtu) - 1;
      charge(costs_.recv_syscall +
             static_cast<Nanos>(extra_frames) * costs_.recv_per_fragment +
             static_cast<Nanos>(static_cast<double>(data->size()) *
                                costs_.recv_per_byte));
      if (sink_ != nullptr) sink_->on_packet(sock, *data);
      did_work = true;
    }
  }

  running_ = false;
  busy_until_ = vnow_;
  busy_time_ += vnow_ - start;

  if (did_work) {
    // More work may be pending; check again once the CPU frees up.
    bool more = !tasks_.empty();
    for (const auto& t : timers_) more = more || t.pending_fire;
    for (const auto& i : inboxes_) more = more || !i.items.empty();
    if (more) maybe_schedule_drain();
  }
}

}  // namespace accelring::simnet
