#include "simnet/topology.hpp"

#include <algorithm>
#include <deque>

namespace accelring::simnet {

Topology Topology::single_dc(int num_hosts) {
  Topology t;
  t.num_dcs = 1;
  t.hosts.assign(static_cast<size_t>(num_hosts), HostSpec{});
  return t;
}

std::vector<int> Topology::dc_hosts(int dc) const {
  std::vector<int> out;
  for (int h = 0; h < num_hosts(); ++h) {
    if (hosts[static_cast<size_t>(h)].dc == dc) out.push_back(h);
  }
  return out;
}

std::vector<std::vector<int>> Topology::racks() const {
  // Group by (dc, rack); groups in (dc, rack) order, members in host order.
  std::vector<std::pair<std::pair<int, int>, std::vector<int>>> groups;
  for (int h = 0; h < num_hosts(); ++h) {
    const auto key = std::make_pair(hosts[static_cast<size_t>(h)].dc,
                                    hosts[static_cast<size_t>(h)].rack);
    auto it = std::find_if(groups.begin(), groups.end(),
                           [&key](const auto& g) { return g.first == key; });
    if (it == groups.end()) {
      groups.push_back({key, {h}});
    } else {
      it->second.push_back(h);
    }
  }
  std::sort(groups.begin(), groups.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<std::vector<int>> out;
  out.reserve(groups.size());
  for (auto& g : groups) out.push_back(std::move(g.second));
  return out;
}

std::string Topology::validate() const {
  if (hosts.empty()) return "topology has no hosts";
  if (num_dcs < 1) return "num_dcs must be >= 1";
  for (int h = 0; h < num_hosts(); ++h) {
    const HostSpec& s = hosts[static_cast<size_t>(h)];
    if (s.dc < 0 || s.dc >= num_dcs) {
      return "host " + std::to_string(h) + " references dc " +
             std::to_string(s.dc) + " outside [0," +
             std::to_string(num_dcs) + ")";
    }
    if (s.nic_bps < 0) {
      return "host " + std::to_string(h) + " has negative nic_bps";
    }
    if (s.cpu_multiplier <= 0) {
      return "host " + std::to_string(h) + " has non-positive cpu_multiplier";
    }
  }
  for (size_t l = 0; l < wan_links.size(); ++l) {
    const WanLinkParams& w = wan_links[l];
    if (w.dc_a < 0 || w.dc_a >= num_dcs || w.dc_b < 0 || w.dc_b >= num_dcs) {
      return "wan link " + std::to_string(l) + " endpoint outside [0," +
             std::to_string(num_dcs) + ")";
    }
    if (w.dc_a == w.dc_b) {
      return "wan link " + std::to_string(l) + " is a self-link";
    }
    if (w.bps_ab <= 0 || w.bps_ba <= 0) {
      return "wan link " + std::to_string(l) + " has non-positive bandwidth";
    }
    if (w.prop_delay < 0) {
      return "wan link " + std::to_string(l) + " has negative propagation";
    }
    if (w.buffer_bytes == 0) {
      return "wan link " + std::to_string(l) + " has a zero-byte buffer";
    }
    if (w.loss_rate < 0 || w.loss_rate > 1) {
      return "wan link " + std::to_string(l) + " loss outside [0,1]";
    }
  }
  // Connectivity: every DC must be reachable from DC 0 over the WAN graph,
  // otherwise some host can never exchange traffic with some other host.
  std::vector<bool> seen(static_cast<size_t>(num_dcs), false);
  std::deque<int> frontier{0};
  seen[0] = true;
  while (!frontier.empty()) {
    const int dc = frontier.front();
    frontier.pop_front();
    for (const WanLinkParams& w : wan_links) {
      const int other = w.dc_a == dc ? w.dc_b : (w.dc_b == dc ? w.dc_a : -1);
      if (other >= 0 && !seen[static_cast<size_t>(other)]) {
        seen[static_cast<size_t>(other)] = true;
        frontier.push_back(other);
      }
    }
  }
  for (int dc = 0; dc < num_dcs; ++dc) {
    if (!seen[static_cast<size_t>(dc)]) {
      return "dc " + std::to_string(dc) +
             " is unreachable from dc 0 over the wan links";
    }
  }
  return "";
}

Topology make_wan_topology(int num_hosts, int num_dcs, Nanos wan_prop,
                           double wan_bps, bool full_mesh, int rack_size) {
  Topology t;
  t.num_dcs = num_dcs;
  const int base = num_hosts / num_dcs;
  const int extra = num_hosts % num_dcs;
  for (int dc = 0; dc < num_dcs; ++dc) {
    const int count = base + (dc < extra ? 1 : 0);
    for (int i = 0; i < count; ++i) {
      HostSpec s;
      s.dc = dc;
      s.rack = rack_size > 0 ? i / rack_size : 0;
      t.hosts.push_back(s);
    }
  }
  for (int a = 0; a < num_dcs; ++a) {
    const int b_end = full_mesh ? num_dcs : std::min(a + 2, num_dcs);
    for (int b = a + 1; b < b_end; ++b) {
      WanLinkParams w;
      w.dc_a = a;
      w.dc_b = b;
      w.bps_ab = wan_bps;
      w.bps_ba = wan_bps;
      w.prop_delay = wan_prop;
      t.wan_links.push_back(w);
    }
  }
  return t;
}

}  // namespace accelring::simnet
