// Simulated switched Ethernet fabric.
//
// Models the paper's testbeds: N hosts connected to one store-and-forward
// switch (a 1-gigabit Cisco Catalyst 2960 or a 10-gigabit Arista 7100T).
// The model captures exactly the effects the Accelerated Ring paper turns on:
//
//  * serialization delay at the sender NIC and again at the switch output
//    port (store-and-forward),
//  * finite per-output-port switch buffers with tail drop — the buffering the
//    accelerated protocol exploits, and the loss mode it must avoid when
//    participants' sending overlaps too much,
//  * propagation + switch fabric latency,
//  * a fixed host tx/rx path latency (NIC + kernel UDP stack) that is *not*
//    CPU time — the CPU cost of syscalls is charged separately by Process,
//  * IP fragmentation of UDP datagrams larger than one MTU (the paper's
//    8850-byte experiments), where losing one fragment loses the datagram,
//  * optional iid random loss and host/partition fault injection for the
//    membership tests.
//
// Multicast is modelled as switch replication to every port except the
// ingress port (senders do not hear their own multicasts; the protocol engine
// self-inserts the messages it sends).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "simnet/event_queue.hpp"
#include "util/rng.hpp"

namespace accelring::simnet {

/// Socket indices per host. Token and data travel on distinct sockets so the
/// receiver can drain them with different priorities (paper §III-D).
using SocketId = int;
inline constexpr SocketId kDataSocket = 0;
inline constexpr SocketId kTokenSocket = 1;
inline constexpr SocketId kIpcSocket = 2;
inline constexpr int kNumSockets = 3;

/// Destination value meaning "multicast to every other host".
inline constexpr int kMulticast = -1;

/// Wildcard endpoint for directed-link fault rules ("any host").
inline constexpr int kAnyHost = -1;

/// Per-frame and fragmentation constants for Ethernet. The default MTU is
/// the standard 1500 bytes; pass 9000 to model jumbo frames (the paper
/// deliberately avoids jumbo frames for portability but notes they may
/// improve performance further — bench/ablation_jumbo quantifies it).
struct Wire {
  static constexpr size_t kMtu = 1500;           // standard IP MTU
  static constexpr size_t kIpHeader = 20;
  static constexpr size_t kUdpHeader = 8;
  // Ethernet header (14) + FCS (4) + preamble/SFD (8) + inter-frame gap (12).
  static constexpr size_t kEthOverhead = 38;
  static constexpr size_t kMaxFirstFragment = kMtu - kIpHeader - kUdpHeader;
  static constexpr size_t kMaxLaterFragment = kMtu - kIpHeader;

  /// Number of Ethernet frames a UDP datagram of `udp_payload` bytes needs.
  static size_t frames(size_t udp_payload, size_t mtu = kMtu);
  /// Total bytes on the wire (all frames, all headers, preamble and gap).
  static size_t wire_bytes(size_t udp_payload, size_t mtu = kMtu);
};

/// Fabric configuration. Factory functions return models of the paper's two
/// testbeds; the constants are documented in DESIGN.md §1.
struct FabricParams {
  double link_bps = 1e9;            ///< host<->switch line rate, each direction
  Nanos prop_delay = 300;           ///< one-way cable+PHY per link
  Nanos switch_latency = 4000;      ///< forwarding decision after last bit in
  size_t port_buffer_bytes = 256 * 1024;  ///< output-port queue capacity
  Nanos host_tx_latency = 3000;     ///< kernel+NIC tx path (latency, not CPU)
  Nanos host_rx_latency = 12000;    ///< kernel+NIC rx path (interrupts, stack)
  double loss_rate = 0.0;           ///< iid drop probability per receiver
  size_t mtu = Wire::kMtu;          ///< 1500 standard; 9000 for jumbo frames

  /// 1-gigabit testbed (Catalyst 2960-class store-and-forward switch).
  static FabricParams one_gig();
  /// 10-gigabit testbed (Arista 7100T-class switch, lower latency).
  static FabricParams ten_gig();

  [[nodiscard]] Nanos serialization_delay(size_t bytes_on_wire) const {
    return static_cast<Nanos>(static_cast<double>(bytes_on_wire) * 8.0 /
                              link_bps * 1e9);
  }
};

/// Aggregate fabric counters, exposed for tests and benchmark sanity checks.
struct NetworkStats {
  uint64_t datagrams_sent = 0;       ///< send() calls (multicast counts once)
  uint64_t datagrams_delivered = 0;  ///< per-receiver deliveries
  uint64_t drops_buffer = 0;         ///< tail drops at switch output ports
  uint64_t drops_random = 0;         ///< injected random loss
  uint64_t drops_fault = 0;          ///< partition / host-down drops
  uint64_t drops_link = 0;           ///< directed link-loss / link-down drops
  uint64_t duplicates = 0;           ///< injected duplicate deliveries
  uint64_t reordered = 0;            ///< deliveries delayed by reorder fault
  uint64_t wire_bytes = 0;           ///< bytes serialized at sender NICs
};

class Network {
 public:
  using Payload = std::shared_ptr<const std::vector<std::byte>>;
  /// Called when a datagram reaches a host's socket (after host_rx_latency).
  using DeliveryFn = std::function<void(SocketId sock, const Payload& data)>;

  Network(EventQueue& eq, FabricParams params, int num_hosts,
          uint64_t seed = 1);

  /// Register the delivery callback for `host` (typically Process::enqueue).
  void attach(int host, DeliveryFn fn);

  /// Send a UDP datagram from `src` to `dst` (or kMulticast) on `sock`.
  /// `when` is the time the sending process issues the send (>= the event
  /// queue's current time); processes mid-handler pass their virtual now.
  void send(int src, int dst, SocketId sock, std::vector<std::byte> data,
            Nanos when);

  [[nodiscard]] const NetworkStats& stats() const { return stats_; }
  [[nodiscard]] int num_hosts() const { return num_hosts_; }
  [[nodiscard]] const FabricParams& params() const { return params_; }

  // --- fault injection -----------------------------------------------------

  /// iid loss applied independently per receiver (fragment-aware: a datagram
  /// of k frames survives with probability (1-p)^k).
  void set_loss_rate(double p) { params_.loss_rate = p; }

  /// Additional one-way delivery latency applied to every datagram from now
  /// on (models a routing change, cross-switch failover, or congestion shift
  /// — the condition adaptive failure detection must ride through without
  /// ejecting live members). 0 restores the base fabric latency.
  void set_extra_latency(Nanos extra) { extra_latency_ = extra; }
  [[nodiscard]] Nanos extra_latency() const { return extra_latency_; }

  /// Assign `host` to partition `id`; traffic crosses only equal ids.
  void set_partition(int host, int id);
  /// Put every host back in partition 0.
  void heal();
  /// A down host neither sends nor receives.
  void set_host_down(int host, bool down);
  [[nodiscard]] bool host_down(int host) const { return down_[host]; }

  // --- gray-failure primitives (partial degradation, not crash) ------------

  /// Directed (asymmetric) loss on the src->dst link; either endpoint may be
  /// kAnyHost. `set_link_loss(kAnyHost, h, p)` models a lossy receive NIC at
  /// `h` (everyone's traffic to h drops, h's own sends are clean) — the
  /// classic half-broken-transceiver gray failure. Fragment-aware like the
  /// global loss rate. p = 0 removes the rule.
  void set_link_loss(int src, int dst, double p);

  /// Directed link cut: src->dst silently drops everything while the reverse
  /// direction still works (unidirectional link failure). Either endpoint may
  /// be kAnyHost. Used by the flapping-link scenario, which toggles it.
  void set_link_down(int src, int dst, bool down);

  /// With probability p, delay a delivery by uniform(1, max_extra] ns —
  /// packets leapfrog each other (multipath / NIC queue churn).
  void set_reorder(double p, Nanos max_extra);

  /// With probability p, deliver a second copy of a datagram shortly after
  /// the first (retransmitting middlebox / flaky switch).
  void set_duplicate(double p);

  /// Remove every link-loss/link-down rule and disable reorder/duplicate
  /// (the heal-all path at a campaign horizon).
  void clear_link_faults();

  /// Targeted fault injection: return true to drop this (src, dst, sock,
  /// payload) delivery. Called once per receiver, before buffer/loss checks;
  /// used by tests to lose specific messages at specific hosts.
  using DropFilter = std::function<bool(int src, int dst, SocketId sock,
                                        const std::vector<std::byte>& data)>;
  void set_drop_filter(DropFilter filter) { drop_filter_ = std::move(filter); }

 private:
  /// Directed fault rule; kAnyHost endpoints are wildcards.
  struct LinkRule {
    int src = kAnyHost;
    int dst = kAnyHost;
    double loss = 0.0;
    bool down = false;
  };

  void forward(int src, int dst, SocketId sock, const Payload& data,
               Nanos arrival, size_t bytes_on_wire, size_t frame_count);
  [[nodiscard]] LinkRule* find_rule(int src, int dst);
  /// Strongest rule matching a concrete (src, dst) pair, wildcards included.
  [[nodiscard]] const LinkRule* match_rule(int src, int dst) const;

  EventQueue& eq_;
  FabricParams params_;
  int num_hosts_;
  util::Rng rng_;
  std::vector<DeliveryFn> sinks_;
  std::vector<Nanos> nic_free_at_;        // per host: uplink serialization
  std::vector<Nanos> port_free_at_;       // per host: switch downlink port
  std::vector<size_t> port_queued_bytes_; // per host: downlink queue occupancy
  std::vector<int> partition_;
  std::vector<bool> down_;
  Nanos extra_latency_ = 0;
  std::vector<LinkRule> link_rules_;
  double reorder_rate_ = 0.0;
  Nanos reorder_jitter_ = 0;
  double duplicate_rate_ = 0.0;
  DropFilter drop_filter_;
  NetworkStats stats_;
};

}  // namespace accelring::simnet
