// Simulated switched Ethernet fabric.
//
// Models the paper's testbeds: N hosts connected to one store-and-forward
// switch (a 1-gigabit Cisco Catalyst 2960 or a 10-gigabit Arista 7100T).
// The model captures exactly the effects the Accelerated Ring paper turns on:
//
//  * serialization delay at the sender NIC and again at the switch output
//    port (store-and-forward),
//  * finite per-output-port switch buffers with tail drop — the buffering the
//    accelerated protocol exploits, and the loss mode it must avoid when
//    participants' sending overlaps too much,
//  * propagation + switch fabric latency,
//  * a fixed host tx/rx path latency (NIC + kernel UDP stack) that is *not*
//    CPU time — the CPU cost of syscalls is charged separately by Process,
//  * IP fragmentation of UDP datagrams larger than one MTU (the paper's
//    8850-byte experiments), where losing one fragment loses the datagram,
//  * optional iid random loss and host/partition fault injection for the
//    membership tests.
//
// Multicast is modelled as switch replication to every port except the
// ingress port (senders do not hear their own multicasts; the protocol engine
// self-inserts the messages it sends).
//
// A Topology (topology.hpp) generalises the model to several datacenters:
// each DC has its own switch, DCs are joined by WAN links with per-direction
// bandwidth, their own propagation, buffers, and loss, and hosts may carry
// per-host NIC rates. Traffic between DCs follows shortest paths over the DC
// graph (BFS, deterministic tie-break); a multicast crosses each WAN link of
// the source DC's BFS tree exactly once and is re-fanned out by the receiving
// switch. A single-DC topology is bit-identical to the classic constructor.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "simnet/event_queue.hpp"
#include "simnet/topology.hpp"
#include "util/rng.hpp"

namespace accelring::simnet {

/// Socket indices per host. Token and data travel on distinct sockets so the
/// receiver can drain them with different priorities (paper §III-D).
using SocketId = int;
inline constexpr SocketId kDataSocket = 0;
inline constexpr SocketId kTokenSocket = 1;
inline constexpr SocketId kIpcSocket = 2;
inline constexpr int kNumSockets = 3;

/// Destination value meaning "multicast to every other host".
inline constexpr int kMulticast = -1;

/// Wildcard endpoint for directed-link fault rules ("any host").
inline constexpr int kAnyHost = -1;

/// Per-frame and fragmentation constants for Ethernet. The default MTU is
/// the standard 1500 bytes; pass 9000 to model jumbo frames (the paper
/// deliberately avoids jumbo frames for portability but notes they may
/// improve performance further — bench/ablation_jumbo quantifies it).
struct Wire {
  static constexpr size_t kMtu = 1500;           // standard IP MTU
  static constexpr size_t kIpHeader = 20;
  static constexpr size_t kUdpHeader = 8;
  // Ethernet header (14) + FCS (4) + preamble/SFD (8) + inter-frame gap (12).
  static constexpr size_t kEthOverhead = 38;
  static constexpr size_t kMaxFirstFragment = kMtu - kIpHeader - kUdpHeader;
  static constexpr size_t kMaxLaterFragment = kMtu - kIpHeader;

  /// Number of Ethernet frames a UDP datagram of `udp_payload` bytes needs.
  static size_t frames(size_t udp_payload, size_t mtu = kMtu);
  /// Total bytes on the wire (all frames, all headers, preamble and gap).
  static size_t wire_bytes(size_t udp_payload, size_t mtu = kMtu);
};

/// Fabric configuration. Factory functions return models of the paper's two
/// testbeds; the constants are documented in DESIGN.md §1.
struct FabricParams {
  double link_bps = 1e9;            ///< host<->switch line rate, each direction
  Nanos prop_delay = 300;           ///< one-way cable+PHY per link
  Nanos switch_latency = 4000;      ///< forwarding decision after last bit in
  size_t port_buffer_bytes = 256 * 1024;  ///< output-port queue capacity
  Nanos host_tx_latency = 3000;     ///< kernel+NIC tx path (latency, not CPU)
  Nanos host_rx_latency = 12000;    ///< kernel+NIC rx path (interrupts, stack)
  double loss_rate = 0.0;           ///< iid drop probability per receiver
  size_t mtu = Wire::kMtu;          ///< 1500 standard; 9000 for jumbo frames

  /// 1-gigabit testbed (Catalyst 2960-class store-and-forward switch).
  static FabricParams one_gig();
  /// 10-gigabit testbed (Arista 7100T-class switch, lower latency).
  static FabricParams ten_gig();

  [[nodiscard]] Nanos serialization_delay(size_t bytes_on_wire) const {
    return static_cast<Nanos>(static_cast<double>(bytes_on_wire) * 8.0 /
                              link_bps * 1e9);
  }
};

/// Aggregate fabric counters, exposed for tests and benchmark sanity checks.
struct NetworkStats {
  uint64_t datagrams_sent = 0;       ///< send() calls (multicast counts once)
  uint64_t datagrams_delivered = 0;  ///< per-receiver deliveries
  uint64_t drops_buffer = 0;         ///< tail drops at switch output ports
  uint64_t drops_random = 0;         ///< injected random loss
  uint64_t drops_fault = 0;          ///< partition / host-down drops
  uint64_t drops_link = 0;           ///< directed link-loss / link-down drops
  uint64_t drops_wan = 0;            ///< WAN link loss/buffer/down + brownout
  uint64_t duplicates = 0;           ///< injected duplicate deliveries
  uint64_t reordered = 0;            ///< deliveries delayed by reorder fault
  uint64_t wire_bytes = 0;           ///< bytes serialized at sender NICs
  uint64_t wan_datagrams = 0;        ///< datagrams accepted onto a WAN link
  uint64_t wan_bytes = 0;            ///< wire bytes serialized onto WAN links
};

class Network {
 public:
  using Payload = std::shared_ptr<const std::vector<std::byte>>;
  /// Called when a datagram reaches a host's socket (after host_rx_latency).
  using DeliveryFn = std::function<void(SocketId sock, const Payload& data)>;

  /// Classic single-switch fabric: equivalent to a single_dc Topology.
  Network(EventQueue& eq, FabricParams params, int num_hosts,
          uint64_t seed = 1);

  /// Multi-datacenter fabric. The topology must validate (asserted); a
  /// single-DC topology with default host specs behaves bit-identically to
  /// the classic constructor (same rng stream, same event timing).
  Network(EventQueue& eq, FabricParams params, Topology topo,
          uint64_t seed = 1);

  /// Register the delivery callback for `host` (typically Process::enqueue).
  void attach(int host, DeliveryFn fn);

  /// Send a UDP datagram from `src` to `dst` (or kMulticast) on `sock`.
  /// `when` is the time the sending process issues the send (>= the event
  /// queue's current time); processes mid-handler pass their virtual now.
  void send(int src, int dst, SocketId sock, std::vector<std::byte> data,
            Nanos when);

  [[nodiscard]] const NetworkStats& stats() const { return stats_; }
  [[nodiscard]] int num_hosts() const { return num_hosts_; }
  [[nodiscard]] const FabricParams& params() const { return params_; }
  [[nodiscard]] const Topology& topology() const { return topo_; }

  // --- fault injection -----------------------------------------------------

  /// iid loss applied independently per receiver (fragment-aware: a datagram
  /// of k frames survives with probability (1-p)^k).
  void set_loss_rate(double p) { params_.loss_rate = p; }

  /// Additional one-way delivery latency applied to every datagram from now
  /// on (models a routing change, cross-switch failover, or congestion shift
  /// — the condition adaptive failure detection must ride through without
  /// ejecting live members). 0 restores the base fabric latency.
  void set_extra_latency(Nanos extra) { extra_latency_ = extra; }
  /// Shift the extra delivery latency by `delta` (may be negative). Shifts
  /// compose additively — two overlapping congestion episodes add up — and
  /// the result clamps at 0 so a stale negative shift (e.g. one whose onset
  /// was absorbed by a heal-all) can never make the fabric faster than its
  /// base latency.
  void add_extra_latency(Nanos delta) {
    extra_latency_ = std::max<Nanos>(0, extra_latency_ + delta);
  }
  [[nodiscard]] Nanos extra_latency() const { return extra_latency_; }

  /// Assign `host` to partition `id`; traffic crosses only equal ids.
  void set_partition(int host, int id);
  /// Put every host back in partition 0.
  void heal();
  /// A down host neither sends nor receives.
  void set_host_down(int host, bool down);
  [[nodiscard]] bool host_down(int host) const { return down_[host]; }

  // --- gray-failure primitives (partial degradation, not crash) ------------

  /// Directed (asymmetric) loss on the src->dst link; either endpoint may be
  /// kAnyHost. `set_link_loss(kAnyHost, h, p)` models a lossy receive NIC at
  /// `h` (everyone's traffic to h drops, h's own sends are clean) — the
  /// classic half-broken-transceiver gray failure. Fragment-aware like the
  /// global loss rate. p = 0 removes the rule.
  void set_link_loss(int src, int dst, double p);

  /// Directed link cut: src->dst silently drops everything while the reverse
  /// direction still works (unidirectional link failure). Either endpoint may
  /// be kAnyHost. Used by the flapping-link scenario, which toggles it.
  void set_link_down(int src, int dst, bool down);

  /// With probability p, delay a delivery by uniform(1, max_extra] ns —
  /// packets leapfrog each other (multipath / NIC queue churn).
  void set_reorder(double p, Nanos max_extra);

  /// With probability p, deliver a second copy of a datagram shortly after
  /// the first (retransmitting middlebox / flaky switch).
  void set_duplicate(double p);

  // --- correlated-fault primitives (multi-datacenter topologies) -----------

  /// Take every WAN link between `dc_a` and `dc_b` down (both directions) or
  /// bring them back up. Routing is static: traffic for a downed link drops
  /// rather than detouring (the DC-flap scenario toggles this).
  void set_wan_down(int dc_a, int dc_b, bool down);
  [[nodiscard]] bool wan_down(int dc_a, int dc_b) const;

  /// Switch brownout: every port of `dc`'s switch degrades — frames through
  /// it drop with probability `loss` and surviving traffic picks up `extra`
  /// forwarding latency. Applies to intra-DC traffic, traffic delivered into
  /// the DC, and traffic the DC forwards onto WAN links. (0, 0) heals.
  void set_dc_brownout(int dc, double loss, Nanos extra);

  /// Remove every link-loss/link-down rule, disable reorder/duplicate, bring
  /// every WAN link back up, and clear every brownout (the heal-all path at
  /// a campaign horizon).
  void clear_link_faults();

  /// Targeted fault injection: return true to drop this (src, dst, sock,
  /// payload) delivery. Called once per receiver, before buffer/loss checks;
  /// used by tests to lose specific messages at specific hosts.
  using DropFilter = std::function<bool(int src, int dst, SocketId sock,
                                        const std::vector<std::byte>& data)>;
  void set_drop_filter(DropFilter filter) { drop_filter_ = std::move(filter); }

 private:
  /// Directed fault rule; kAnyHost endpoints are wildcards.
  struct LinkRule {
    int src = kAnyHost;
    int dst = kAnyHost;
    double loss = 0.0;
    bool down = false;
  };

  /// One hop over the DC graph: WAN link index, direction (0 = a->b), and
  /// the DC the hop lands in.
  struct WanEdge {
    int link = 0;
    int dir = 0;
    int to_dc = 0;
  };
  /// Per-direction WAN link state (its own serializer and egress queue).
  struct WanDirState {
    Nanos free_at = 0;
    size_t queued_bytes = 0;
  };
  struct WanState {
    WanDirState dir[2];
    bool down = false;
  };
  /// Per-DC switch fault state (brownout).
  struct DcState {
    double brown_loss = 0.0;
    Nanos brown_extra = 0;
  };

  void forward(int src, int dst, SocketId sock, const Payload& data,
               Nanos arrival, size_t bytes_on_wire, size_t frame_count);
  /// Put a datagram onto one direction of a WAN link, departing `from_dc` at
  /// `ready`. Returns the arrival time at the far switch, or -1 if the
  /// datagram was dropped (link down, loss, brownout, or full buffer).
  Nanos wan_transmit(int link, int dir, int from_dc, Nanos ready,
                     size_t bytes_on_wire, size_t frame_count);
  /// Deliver a multicast into every DC below `cur_dc` in the source DC's
  /// BFS tree (each WAN link crossed once, local fan-out at each switch).
  void wan_fanout(int src, int root_dc, int cur_dc, SocketId sock,
                  const Payload& data, Nanos ready, size_t bytes_on_wire,
                  size_t frame_count);
  /// Walk a unicast along the precomputed root->dst path, hop by hop.
  void wan_unicast(int src, int dst, SocketId sock, const Payload& data,
                   size_t hop, Nanos ready, size_t bytes_on_wire,
                   size_t frame_count);
  void build_routing();
  [[nodiscard]] Nanos ser_delay(double bps, size_t bytes_on_wire) const {
    return static_cast<Nanos>(static_cast<double>(bytes_on_wire) * 8.0 / bps *
                              1e9);
  }
  [[nodiscard]] LinkRule* find_rule(int src, int dst);
  /// Strongest rule matching a concrete (src, dst) pair, wildcards included.
  [[nodiscard]] const LinkRule* match_rule(int src, int dst) const;

  EventQueue& eq_;
  FabricParams params_;
  Topology topo_;
  int num_hosts_;
  bool multi_dc_ = false;
  util::Rng rng_;
  std::vector<DeliveryFn> sinks_;
  std::vector<Nanos> nic_free_at_;        // per host: uplink serialization
  std::vector<Nanos> port_free_at_;       // per host: switch downlink port
  std::vector<size_t> port_queued_bytes_; // per host: downlink queue occupancy
  std::vector<double> host_bps_;          // per host: NIC line rate
  std::vector<int> dc_of_;                // per host: datacenter index
  std::vector<std::vector<int>> dc_hosts_;  // per DC: member hosts, in order
  std::vector<WanState> wan_;             // per WAN link
  std::vector<DcState> dcs_;              // per DC: brownout state
  /// routing_[root][dc]: BFS-tree child edges of `dc` in the tree rooted at
  /// `root` (multicast); paths_[root][dc]: edge sequence root -> dc (unicast).
  std::vector<std::vector<std::vector<WanEdge>>> routing_;
  std::vector<std::vector<std::vector<WanEdge>>> paths_;
  std::vector<int> partition_;
  std::vector<bool> down_;
  Nanos extra_latency_ = 0;
  std::vector<LinkRule> link_rules_;
  double reorder_rate_ = 0.0;
  Nanos reorder_jitter_ = 0;
  double duplicate_rate_ = 0.0;
  DropFilter drop_filter_;
  NetworkStats stats_;
};

}  // namespace accelring::simnet
