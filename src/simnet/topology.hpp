// Multi-datacenter topology description for the simulated fabric.
//
// A Topology extends the single-switch model (network.hpp) to a set of
// datacenters, each with its own store-and-forward switch, joined by explicit
// WAN links. Each WAN link has independent per-direction bandwidth
// (asymmetric provisioning is the norm between sites), its own propagation
// delay (10-100 ms for true WAN, ~1-3 ms for metro), its own output buffer,
// and its own loss rate. Hosts carry per-host NIC rates and CPU multipliers
// so one cluster can mix fast and slow machines at construction time.
//
// The same description is consumed by three layers: Network (packet timing
// and routing), SimCluster (per-host CPU multipliers), and the campaign DSL
// (correlated-fault group selection — racks for power loss, DCs for switch
// brownout, WAN links for flaps).
//
// Routing is shortest-path over the DC graph, computed once at construction
// by BFS with deterministic (link-index order) tie-breaking. Multicast
// crosses each WAN link of the source's BFS tree exactly once and is fanned
// back out by the receiving DC's switch — the bandwidth model a multicast-
// capable WAN overlay (or per-DC repeater daemon) would give.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/time.hpp"

namespace accelring::simnet {

using util::Nanos;

/// One inter-datacenter link. Bandwidth is per direction: `bps_ab` carries
/// dc_a -> dc_b traffic, `bps_ba` the reverse (asymmetric by design).
struct WanLinkParams {
  int dc_a = 0;
  int dc_b = 1;
  double bps_ab = 1e9;
  double bps_ba = 1e9;
  Nanos prop_delay = util::msec(10);        ///< one-way propagation
  size_t buffer_bytes = 2 * 1024 * 1024;    ///< per-direction egress queue
  double loss_rate = 0.0;                   ///< iid per-frame drop probability
};

/// Per-host placement and hardware description.
struct HostSpec {
  int dc = 0;                ///< datacenter (switch) this host hangs off
  int rack = 0;              ///< rack within the DC (correlated power domain)
  double nic_bps = 0;        ///< host<->switch line rate; 0 = fabric default
  double cpu_multiplier = 1.0;  ///< Process CPU cost scale (1 = baseline)
};

struct Topology {
  int num_dcs = 1;
  std::vector<HostSpec> hosts;
  std::vector<WanLinkParams> wan_links;

  /// The trivial topology: every host on one switch, homogeneous hardware.
  /// Network built from this is bit-identical to the pre-topology model.
  [[nodiscard]] static Topology single_dc(int num_hosts);

  [[nodiscard]] int num_hosts() const { return static_cast<int>(hosts.size()); }
  /// True when the topology degenerates to the single-switch model.
  [[nodiscard]] bool single_switch() const {
    return num_dcs <= 1 && wan_links.empty();
  }
  [[nodiscard]] int dc_of(int host) const {
    return hosts[static_cast<size_t>(host)].dc;
  }
  /// Hosts of one DC, in host-index order.
  [[nodiscard]] std::vector<int> dc_hosts(int dc) const;
  /// Hosts grouped by (dc, rack), groups ordered by (dc, rack) — the
  /// correlated power-failure domains. Deterministic for a given topology.
  [[nodiscard]] std::vector<std::vector<int>> racks() const;

  /// "" when the topology is well-formed; otherwise a human-readable reason.
  /// Rejects out-of-range link endpoints / host DCs, non-positive rates,
  /// loss outside [0,1], self-links, empty host sets — and any DC that is
  /// unreachable from DC 0 over the WAN graph (an unreachable host can never
  /// participate, so such configurations must not pass).
  [[nodiscard]] std::string validate() const;
};

/// Convenience builder: `num_hosts` split contiguously and near-evenly over
/// `num_dcs` datacenters (first `num_hosts % num_dcs` DCs get the extra
/// host), racks of `rack_size` hosts within each DC, and symmetric WAN links
/// of `wan_bps` / `wan_prop` between the DCs — a full mesh, or a chain when
/// `full_mesh` is false. Hosts inherit the fabric NIC rate and CPU 1.0.
[[nodiscard]] Topology make_wan_topology(int num_hosts, int num_dcs,
                                         Nanos wan_prop, double wan_bps = 1e9,
                                         bool full_mesh = true,
                                         int rack_size = 2);

}  // namespace accelring::simnet
