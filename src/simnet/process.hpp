// Single-threaded process CPU model.
//
// The paper's central observation for 10-gigabit fabrics is that
// single-threaded protocol processing, not the wire, becomes the bottleneck.
// Process models exactly that: one virtual CPU that drains prioritized socket
// inboxes one message at a time. While a handler runs, virtual time advances
// by the costs it charges (syscalls, ordering work, client IPC, group
// routing), and nothing else on this process executes — arriving packets
// queue in finite socket buffers, and timers defer until the CPU is free.
//
// Socket priority is the paper's §III-C mechanism: the sink (the protocol
// host adapter) reports which socket class it currently wants drained first;
// the other sockets are read only when the preferred one is empty.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <span>
#include <vector>

#include "simnet/event_queue.hpp"
#include "simnet/network.hpp"

namespace accelring::simnet {

/// Receiver of drained packets and fired timers; implemented by the
/// transport adapter that feeds the protocol engine.
class PacketSink {
 public:
  virtual ~PacketSink() = default;

  /// A datagram read from socket `sock`. Runs on the virtual CPU; the sink
  /// charges additional processing cost via Process::charge().
  virtual void on_packet(SocketId sock, std::span<const std::byte> data) = 0;

  /// Which socket to drain first right now (token-priority switching).
  [[nodiscard]] virtual SocketId preferred_socket() const = 0;

  /// A timer set via Process::set_timer() fired.
  virtual void on_timer(int kind) = 0;
};

/// CPU costs charged automatically on the receive path. All other costs are
/// charged explicitly by the sink.
struct ProcessCosts {
  Nanos recv_syscall = 1'200;      ///< one recvmsg() wakeup (first fragment)
  double recv_per_byte = 0.25;     ///< ns/byte copy out of the kernel
  /// Each additional Ethernet frame of a fragmented UDP datagram costs one
  /// more trip through the NIC/softirq path (the reason the paper's
  /// 8850-byte experiments do not scale linearly with payload size).
  Nanos recv_per_fragment = 1'000;
  /// MTU used for fragment-count accounting; keep in sync with the fabric.
  size_t mtu = Wire::kMtu;
};

class Process {
 public:
  Process(EventQueue& eq, ProcessCosts costs, size_t socket_buffer_bytes);

  void set_sink(PacketSink* sink) { sink_ = sink; }

  /// Network-side entry point: queue a received datagram on `sock`'s inbox,
  /// dropping it if the socket buffer is full (kernel tail drop).
  void enqueue(SocketId sock, const Network::Payload& data);

  /// Extend the current handling step by `cost` of CPU time. Only valid while
  /// a sink callback is running.
  void charge(Nanos cost) {
    vnow_ += cpu_mult_ == 1.0
                 ? cost
                 : static_cast<Nanos>(static_cast<double>(cost) * cpu_mult_);
  }

  /// Gray-failure injection: scale every subsequent CPU charge by `m` (>= 0).
  /// Models a daemon sharing its core with a noisy neighbour, thermal
  /// throttling, or a debug build — the process stays alive and responsive,
  /// just slower. 1.0 restores normal speed.
  void set_cpu_multiplier(double m) { cpu_mult_ = m; }
  [[nodiscard]] double cpu_multiplier() const { return cpu_mult_; }

  /// Virtual current time: inside a handler this includes cost charged so
  /// far, so sends issued mid-handler are stamped correctly.
  [[nodiscard]] Nanos now() const { return running_ ? vnow_ : eq_.now(); }

  /// (Re)arm the per-kind one-shot timer to fire `delay` from now().
  void set_timer(int kind, Nanos delay);
  void cancel_timer(int kind);

  /// Run `fn` on the virtual CPU as soon as it is free (used to bootstrap
  /// protocol engines and to model client injections).
  void run_soon(std::function<void()> fn, Nanos cost = 0);

  [[nodiscard]] uint64_t socket_drops() const { return socket_drops_; }
  [[nodiscard]] Nanos busy_time() const { return busy_time_; }
  [[nodiscard]] size_t inbox_depth(SocketId sock) const {
    return inboxes_[sock].items.size();
  }

 private:
  struct Inbox {
    std::deque<Network::Payload> items;
    size_t queued_bytes = 0;
  };
  struct Timer {
    EventId event = 0;
    bool pending_fire = false;  // fired while CPU busy; run at next drain
  };

  void maybe_schedule_drain();
  void drain_one();
  /// Pick the next inbox to read given the sink's preference; -1 if all empty.
  [[nodiscard]] int pick_socket() const;

  EventQueue& eq_;
  ProcessCosts costs_;
  size_t socket_buffer_bytes_;
  PacketSink* sink_ = nullptr;
  std::vector<Inbox> inboxes_;
  std::vector<Timer> timers_;
  std::deque<std::pair<std::function<void()>, Nanos>> tasks_;
  Nanos vnow_ = 0;
  double cpu_mult_ = 1.0;
  Nanos busy_until_ = 0;
  Nanos busy_time_ = 0;
  bool running_ = false;
  bool drain_scheduled_ = false;
  uint64_t socket_drops_ = 0;
};

}  // namespace accelring::simnet
