#include "simnet/event_queue.hpp"

#include <algorithm>

namespace accelring::simnet {

EventId EventQueue::schedule(Nanos when, Callback cb) {
  const EventId id = next_id_++;
  auto holder = std::make_shared<Callback>(std::move(cb));
  pending_.emplace(id, holder);
  heap_.push(Entry{std::max(when, now_), id, std::move(holder)});
  return id;
}

void EventQueue::cancel(EventId id) {
  auto it = pending_.find(id);
  if (it == pending_.end()) return;
  if (auto sp = it->second.lock()) *sp = nullptr;
  pending_.erase(it);
}

bool EventQueue::step() {
  while (!heap_.empty()) {
    Entry e = heap_.top();
    heap_.pop();
    pending_.erase(e.id);
    if (!e.cb || !*e.cb) continue;  // cancelled
    now_ = e.when;
    ++executed_;
    // Move the callback out before invoking so a callback that schedules new
    // events (the common case) cannot be affected by this entry's storage.
    Callback cb = std::move(*e.cb);
    cb();
    return true;
  }
  return false;
}

void EventQueue::run_until(Nanos deadline) {
  while (!heap_.empty()) {
    // Skip over cancelled entries without advancing time.
    if (!heap_.top().cb || !*heap_.top().cb) {
      pending_.erase(heap_.top().id);
      heap_.pop();
      continue;
    }
    if (heap_.top().when > deadline) break;
    step();
  }
}

void EventQueue::run_all() {
  while (step()) {
  }
}

}  // namespace accelring::simnet
