#include "simnet/network.hpp"

#include <algorithm>
#include <cassert>
#include <deque>

namespace accelring::simnet {

size_t Wire::frames(size_t udp_payload, size_t mtu) {
  if (udp_payload <= mtu - kIpHeader - kUdpHeader) return 1;
  // First fragment carries the UDP header; the IP payload of every fragment
  // except the last is a multiple of 8, but 1480 already is, so the simple
  // division is exact for our purposes.
  const size_t ip_payload = udp_payload + kUdpHeader;
  const size_t per_fragment = mtu - kIpHeader;
  return (ip_payload + per_fragment - 1) / per_fragment;
}

size_t Wire::wire_bytes(size_t udp_payload, size_t mtu) {
  const size_t n = frames(udp_payload, mtu);
  return udp_payload + kUdpHeader + n * (kIpHeader + kEthOverhead);
}

FabricParams FabricParams::one_gig() {
  FabricParams p;
  p.link_bps = 1e9;
  p.prop_delay = 300;            // ~60 m cable + PHY
  p.switch_latency = 4'000;      // Catalyst 2960 fabric, store-and-forward
  p.port_buffer_bytes = 192 * 1024;
  p.host_tx_latency = 3'000;     // sendmsg() to wire on 2012-era hosts
  p.host_rx_latency = 12'000;    // interrupt + stack on 2012-era hosts
  return p;
}

FabricParams FabricParams::ten_gig() {
  FabricParams p;
  p.link_bps = 1e10;
  p.prop_delay = 300;
  p.switch_latency = 2'500;      // Arista 7100T store-and-forward
  p.port_buffer_bytes = 512 * 1024;
  p.host_tx_latency = 2'000;
  p.host_rx_latency = 5'000;     // faster NICs, tighter coalescing
  return p;
}

Network::Network(EventQueue& eq, FabricParams params, int num_hosts,
                 uint64_t seed)
    : Network(eq, params, Topology::single_dc(num_hosts), seed) {}

Network::Network(EventQueue& eq, FabricParams params, Topology topo,
                 uint64_t seed)
    : eq_(eq),
      params_(params),
      topo_(std::move(topo)),
      num_hosts_(topo_.num_hosts()),
      multi_dc_(topo_.num_dcs > 1),
      rng_(seed),
      sinks_(num_hosts_),
      nic_free_at_(num_hosts_, 0),
      port_free_at_(num_hosts_, 0),
      port_queued_bytes_(num_hosts_, 0),
      host_bps_(num_hosts_, params_.link_bps),
      dc_of_(num_hosts_, 0),
      wan_(topo_.wan_links.size()),
      dcs_(static_cast<size_t>(topo_.num_dcs)),
      partition_(num_hosts_, 0),
      down_(num_hosts_, false) {
  assert(topo_.validate().empty() && "invalid topology");
  for (int h = 0; h < num_hosts_; ++h) {
    const HostSpec& spec = topo_.hosts[static_cast<size_t>(h)];
    dc_of_[h] = spec.dc;
    if (spec.nic_bps > 0) host_bps_[h] = spec.nic_bps;
  }
  dc_hosts_.resize(static_cast<size_t>(topo_.num_dcs));
  for (int h = 0; h < num_hosts_; ++h) {
    dc_hosts_[static_cast<size_t>(dc_of_[h])].push_back(h);
  }
  if (multi_dc_) build_routing();
}

void Network::build_routing() {
  const size_t dcs = static_cast<size_t>(topo_.num_dcs);
  routing_.assign(dcs, std::vector<std::vector<WanEdge>>(dcs));
  paths_.assign(dcs, std::vector<std::vector<WanEdge>>(dcs));
  // Adjacency in link-index order: BFS discovery order (hence shortest-path
  // tie-breaking) is deterministic for a given topology.
  std::vector<std::vector<WanEdge>> adj(dcs);
  for (size_t l = 0; l < topo_.wan_links.size(); ++l) {
    const WanLinkParams& w = topo_.wan_links[l];
    adj[static_cast<size_t>(w.dc_a)].push_back(
        {static_cast<int>(l), 0, w.dc_b});
    adj[static_cast<size_t>(w.dc_b)].push_back(
        {static_cast<int>(l), 1, w.dc_a});
  }
  for (size_t root = 0; root < dcs; ++root) {
    std::vector<bool> seen(dcs, false);
    std::deque<int> frontier{static_cast<int>(root)};
    seen[root] = true;
    while (!frontier.empty()) {
      const int dc = frontier.front();
      frontier.pop_front();
      for (const WanEdge& e : adj[static_cast<size_t>(dc)]) {
        if (seen[static_cast<size_t>(e.to_dc)]) continue;
        seen[static_cast<size_t>(e.to_dc)] = true;
        routing_[root][static_cast<size_t>(dc)].push_back(e);
        paths_[root][static_cast<size_t>(e.to_dc)] =
            paths_[root][static_cast<size_t>(dc)];
        paths_[root][static_cast<size_t>(e.to_dc)].push_back(e);
        frontier.push_back(e.to_dc);
      }
    }
  }
}

void Network::attach(int host, DeliveryFn fn) {
  assert(host >= 0 && host < num_hosts_);
  sinks_[host] = std::move(fn);
}

void Network::send(int src, int dst, SocketId sock,
                   std::vector<std::byte> data, Nanos when) {
  assert(src >= 0 && src < num_hosts_);
  if (down_[src]) return;
  ++stats_.datagrams_sent;

  const size_t udp_size = data.size();
  const size_t on_wire = Wire::wire_bytes(udp_size, params_.mtu);
  const size_t frame_count = Wire::frames(udp_size, params_.mtu);
  stats_.wire_bytes += on_wire;

  // Uplink: the datagram reaches the NIC after the host tx path, then
  // serializes onto the wire behind any packets already queued.
  when = std::max(when, eq_.now());
  const Nanos nic_start =
      std::max(when + params_.host_tx_latency, nic_free_at_[src]);
  const Nanos tx_done = nic_start + ser_delay(host_bps_[src], on_wire);
  nic_free_at_[src] = tx_done;
  const Nanos arrival = tx_done + params_.prop_delay;  // last bit at switch

  auto payload = std::make_shared<const std::vector<std::byte>>(std::move(data));
  eq_.schedule(arrival, [this, src, dst, sock, payload, arrival, on_wire,
                         frame_count] {
    const int src_dc = dc_of_[src];
    if (dst == kMulticast) {
      // Local fan-out first (host-index order — identical to the classic
      // single-switch loop when there is only one DC), then one copy down
      // each WAN tree edge.
      for (const int h : dc_hosts_[static_cast<size_t>(src_dc)]) {
        if (h == src) continue;
        forward(src, h, sock, payload, arrival, on_wire, frame_count);
      }
      if (multi_dc_) {
        wan_fanout(src, src_dc, src_dc, sock, payload, arrival, on_wire,
                   frame_count);
      }
    } else if (!multi_dc_ || dc_of_[dst] == src_dc) {
      forward(src, dst, sock, payload, arrival, on_wire, frame_count);
    } else {
      wan_unicast(src, dst, sock, payload, 0, arrival, on_wire, frame_count);
    }
  });
}

Nanos Network::wan_transmit(int link, int dir, int from_dc, Nanos ready,
                            size_t bytes_on_wire, size_t frame_count) {
  WanState& ws = wan_[static_cast<size_t>(link)];
  const WanLinkParams& lp = topo_.wan_links[static_cast<size_t>(link)];
  if (ws.down) {
    ++stats_.drops_wan;
    return -1;
  }
  // The egress switch's brownout hits its WAN ports like any other port.
  const DcState& dc = dcs_[static_cast<size_t>(from_dc)];
  Nanos depart = ready;
  if (dc.brown_loss > 0) {
    for (size_t f = 0; f < frame_count; ++f) {
      if (rng_.chance(dc.brown_loss)) {
        ++stats_.drops_wan;
        return -1;
      }
    }
  }
  depart += dc.brown_extra;
  if (lp.loss_rate > 0) {
    for (size_t f = 0; f < frame_count; ++f) {
      if (rng_.chance(lp.loss_rate)) {
        ++stats_.drops_wan;
        return -1;
      }
    }
  }
  WanDirState& d = ws.dir[dir];
  if (d.queued_bytes + bytes_on_wire > lp.buffer_bytes) {
    ++stats_.drops_wan;
    return -1;
  }
  d.queued_bytes += bytes_on_wire;
  const double bps = dir == 0 ? lp.bps_ab : lp.bps_ba;
  const Nanos start = std::max(depart + params_.switch_latency, d.free_at);
  const Nanos done = start + ser_delay(bps, bytes_on_wire);
  d.free_at = done;
  ++stats_.wan_datagrams;
  stats_.wan_bytes += bytes_on_wire;
  eq_.schedule(done, [this, link, dir, bytes_on_wire] {
    wan_[static_cast<size_t>(link)].dir[dir].queued_bytes -= bytes_on_wire;
  });
  return done + lp.prop_delay;
}

void Network::wan_fanout(int src, int root_dc, int cur_dc, SocketId sock,
                         const Payload& data, Nanos ready,
                         size_t bytes_on_wire, size_t frame_count) {
  for (const WanEdge& e :
       routing_[static_cast<size_t>(root_dc)][static_cast<size_t>(cur_dc)]) {
    const Nanos at =
        wan_transmit(e.link, e.dir, cur_dc, ready, bytes_on_wire, frame_count);
    if (at < 0) continue;
    eq_.schedule(at, [this, src, root_dc, child = e.to_dc, sock, data, at,
                      bytes_on_wire, frame_count] {
      for (const int h : dc_hosts_[static_cast<size_t>(child)]) {
        forward(src, h, sock, data, at, bytes_on_wire, frame_count);
      }
      wan_fanout(src, root_dc, child, sock, data, at, bytes_on_wire,
                 frame_count);
    });
  }
}

void Network::wan_unicast(int src, int dst, SocketId sock, const Payload& data,
                          size_t hop, Nanos ready, size_t bytes_on_wire,
                          size_t frame_count) {
  const std::vector<WanEdge>& path =
      paths_[static_cast<size_t>(dc_of_[src])][static_cast<size_t>(
          dc_of_[dst])];
  if (hop == path.size()) {
    forward(src, dst, sock, data, ready, bytes_on_wire, frame_count);
    return;
  }
  const WanEdge& e = path[hop];
  const int from_dc = hop == 0 ? dc_of_[src] : path[hop - 1].to_dc;
  const Nanos at =
      wan_transmit(e.link, e.dir, from_dc, ready, bytes_on_wire, frame_count);
  if (at < 0) return;
  eq_.schedule(at, [this, src, dst, sock, data, hop, at, bytes_on_wire,
                    frame_count] {
    wan_unicast(src, dst, sock, data, hop + 1, at, bytes_on_wire, frame_count);
  });
}

void Network::forward(int src, int dst, SocketId sock, const Payload& data,
                      Nanos arrival, size_t bytes_on_wire,
                      size_t frame_count) {
  assert(dst >= 0 && dst < num_hosts_);
  if (down_[dst] || partition_[src] != partition_[dst]) {
    ++stats_.drops_fault;
    return;
  }
  if (drop_filter_ && drop_filter_(src, dst, sock, *data)) {
    ++stats_.drops_fault;
    return;
  }
  if (!link_rules_.empty()) {
    if (const LinkRule* rule = match_rule(src, dst)) {
      if (rule->down) {
        ++stats_.drops_link;
        return;
      }
      if (rule->loss > 0) {
        for (size_t f = 0; f < frame_count; ++f) {
          if (rng_.chance(rule->loss)) {
            ++stats_.drops_link;
            return;
          }
        }
      }
    }
  }
  if (params_.loss_rate > 0) {
    // A multi-fragment datagram is lost if any fragment is lost.
    for (size_t f = 0; f < frame_count; ++f) {
      if (rng_.chance(params_.loss_rate)) {
        ++stats_.drops_random;
        return;
      }
    }
  }
  // Brownout at the delivering switch: every output port drops and delays.
  // Drawn only when armed, so pre-existing runs see an unchanged rng stream.
  const DcState& dcf = dcs_[static_cast<size_t>(dc_of_[dst])];
  if (dcf.brown_loss > 0) {
    for (size_t f = 0; f < frame_count; ++f) {
      if (rng_.chance(dcf.brown_loss)) {
        ++stats_.drops_wan;
        return;
      }
    }
  }
  // Output-port tail drop: if the queue cannot hold the whole datagram, it is
  // dropped. (Fragments of one datagram are treated as a unit; per-fragment
  // partial drops would lose the datagram anyway.)
  if (port_queued_bytes_[dst] + bytes_on_wire > params_.port_buffer_bytes) {
    ++stats_.drops_buffer;
    return;
  }
  port_queued_bytes_[dst] += bytes_on_wire;

  const Nanos start =
      std::max(arrival + params_.switch_latency + dcf.brown_extra,
               port_free_at_[dst]);
  const Nanos done = start + ser_delay(host_bps_[dst], bytes_on_wire);
  port_free_at_[dst] = done;

  eq_.schedule(done, [this, dst, bytes_on_wire] {
    port_queued_bytes_[dst] -= bytes_on_wire;
  });

  Nanos delivered =
      done + params_.prop_delay + params_.host_rx_latency + extra_latency_;
  // Reorder: with probability p, hold this datagram back so later traffic can
  // overtake it. Drawn only when the fault is armed, so pre-existing
  // scenarios consume an unchanged rng stream.
  if (reorder_rate_ > 0 && rng_.chance(reorder_rate_)) {
    delivered += 1 + static_cast<Nanos>(
                         rng_.below(static_cast<uint64_t>(reorder_jitter_)));
    ++stats_.reordered;
  }
  auto deliver = [this, dst, sock, data] {
    ++stats_.datagrams_delivered;
    if (sinks_[dst]) sinks_[dst](sock, data);
  };
  eq_.schedule(delivered, deliver);
  if (duplicate_rate_ > 0 && rng_.chance(duplicate_rate_)) {
    ++stats_.duplicates;
    // The copy trails the original by a few microseconds to tens of
    // microseconds — close enough to land inside the same protocol round.
    eq_.schedule(delivered + 2'000 + static_cast<Nanos>(rng_.below(40'000)),
                 deliver);
  }
}

Network::LinkRule* Network::find_rule(int src, int dst) {
  for (LinkRule& r : link_rules_) {
    if (r.src == src && r.dst == dst) return &r;
  }
  return nullptr;
}

const Network::LinkRule* Network::match_rule(int src, int dst) const {
  // Exact match wins over wildcard; a down rule wins over a loss rule.
  const LinkRule* best = nullptr;
  for (const LinkRule& r : link_rules_) {
    const bool src_ok = r.src == kAnyHost || r.src == src;
    const bool dst_ok = r.dst == kAnyHost || r.dst == dst;
    if (!src_ok || !dst_ok) continue;
    if (best == nullptr || (r.down && !best->down) ||
        (r.down == best->down && r.loss > best->loss)) {
      best = &r;
    }
  }
  return best;
}

void Network::set_link_loss(int src, int dst, double p) {
  if (LinkRule* r = find_rule(src, dst)) {
    r->loss = p;
    if (p <= 0 && !r->down) {
      link_rules_.erase(link_rules_.begin() + (r - link_rules_.data()));
    }
    return;
  }
  if (p <= 0) return;
  link_rules_.push_back({src, dst, p, false});
}

void Network::set_link_down(int src, int dst, bool down) {
  if (LinkRule* r = find_rule(src, dst)) {
    r->down = down;
    if (!down && r->loss <= 0) {
      link_rules_.erase(link_rules_.begin() + (r - link_rules_.data()));
    }
    return;
  }
  if (!down) return;
  link_rules_.push_back({src, dst, 0.0, true});
}

void Network::set_reorder(double p, Nanos max_extra) {
  reorder_rate_ = p;
  reorder_jitter_ = max_extra > 0 ? max_extra : 1;
}

void Network::set_duplicate(double p) { duplicate_rate_ = p; }

void Network::set_wan_down(int dc_a, int dc_b, bool down) {
  for (size_t l = 0; l < topo_.wan_links.size(); ++l) {
    const WanLinkParams& w = topo_.wan_links[l];
    if ((w.dc_a == dc_a && w.dc_b == dc_b) ||
        (w.dc_a == dc_b && w.dc_b == dc_a)) {
      wan_[l].down = down;
    }
  }
}

bool Network::wan_down(int dc_a, int dc_b) const {
  for (size_t l = 0; l < topo_.wan_links.size(); ++l) {
    const WanLinkParams& w = topo_.wan_links[l];
    if ((w.dc_a == dc_a && w.dc_b == dc_b) ||
        (w.dc_a == dc_b && w.dc_b == dc_a)) {
      return wan_[l].down;
    }
  }
  return false;
}

void Network::set_dc_brownout(int dc, double loss, Nanos extra) {
  assert(dc >= 0 && dc < static_cast<int>(dcs_.size()));
  dcs_[static_cast<size_t>(dc)].brown_loss = loss;
  dcs_[static_cast<size_t>(dc)].brown_extra = extra;
}

void Network::clear_link_faults() {
  link_rules_.clear();
  reorder_rate_ = 0.0;
  reorder_jitter_ = 0;
  duplicate_rate_ = 0.0;
  for (WanState& w : wan_) w.down = false;
  for (DcState& d : dcs_) d = DcState{};
}

void Network::set_partition(int host, int id) {
  assert(host >= 0 && host < num_hosts_);
  partition_[host] = id;
}

void Network::heal() {
  for (auto& p : partition_) p = 0;
}

void Network::set_host_down(int host, bool down) {
  assert(host >= 0 && host < num_hosts_);
  down_[host] = down;
}

}  // namespace accelring::simnet
