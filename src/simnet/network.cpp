#include "simnet/network.hpp"

#include <cassert>

namespace accelring::simnet {

size_t Wire::frames(size_t udp_payload, size_t mtu) {
  if (udp_payload <= mtu - kIpHeader - kUdpHeader) return 1;
  // First fragment carries the UDP header; the IP payload of every fragment
  // except the last is a multiple of 8, but 1480 already is, so the simple
  // division is exact for our purposes.
  const size_t ip_payload = udp_payload + kUdpHeader;
  const size_t per_fragment = mtu - kIpHeader;
  return (ip_payload + per_fragment - 1) / per_fragment;
}

size_t Wire::wire_bytes(size_t udp_payload, size_t mtu) {
  const size_t n = frames(udp_payload, mtu);
  return udp_payload + kUdpHeader + n * (kIpHeader + kEthOverhead);
}

FabricParams FabricParams::one_gig() {
  FabricParams p;
  p.link_bps = 1e9;
  p.prop_delay = 300;            // ~60 m cable + PHY
  p.switch_latency = 4'000;      // Catalyst 2960 fabric, store-and-forward
  p.port_buffer_bytes = 192 * 1024;
  p.host_tx_latency = 3'000;     // sendmsg() to wire on 2012-era hosts
  p.host_rx_latency = 12'000;    // interrupt + stack on 2012-era hosts
  return p;
}

FabricParams FabricParams::ten_gig() {
  FabricParams p;
  p.link_bps = 1e10;
  p.prop_delay = 300;
  p.switch_latency = 2'500;      // Arista 7100T store-and-forward
  p.port_buffer_bytes = 512 * 1024;
  p.host_tx_latency = 2'000;
  p.host_rx_latency = 5'000;     // faster NICs, tighter coalescing
  return p;
}

Network::Network(EventQueue& eq, FabricParams params, int num_hosts,
                 uint64_t seed)
    : eq_(eq),
      params_(params),
      num_hosts_(num_hosts),
      rng_(seed),
      sinks_(num_hosts),
      nic_free_at_(num_hosts, 0),
      port_free_at_(num_hosts, 0),
      port_queued_bytes_(num_hosts, 0),
      partition_(num_hosts, 0),
      down_(num_hosts, false) {}

void Network::attach(int host, DeliveryFn fn) {
  assert(host >= 0 && host < num_hosts_);
  sinks_[host] = std::move(fn);
}

void Network::send(int src, int dst, SocketId sock,
                   std::vector<std::byte> data, Nanos when) {
  assert(src >= 0 && src < num_hosts_);
  if (down_[src]) return;
  ++stats_.datagrams_sent;

  const size_t udp_size = data.size();
  const size_t on_wire = Wire::wire_bytes(udp_size, params_.mtu);
  const size_t frame_count = Wire::frames(udp_size, params_.mtu);
  stats_.wire_bytes += on_wire;

  // Uplink: the datagram reaches the NIC after the host tx path, then
  // serializes onto the wire behind any packets already queued.
  when = std::max(when, eq_.now());
  const Nanos nic_start =
      std::max(when + params_.host_tx_latency, nic_free_at_[src]);
  const Nanos tx_done = nic_start + params_.serialization_delay(on_wire);
  nic_free_at_[src] = tx_done;
  const Nanos arrival = tx_done + params_.prop_delay;  // last bit at switch

  auto payload = std::make_shared<const std::vector<std::byte>>(std::move(data));
  eq_.schedule(arrival, [this, src, dst, sock, payload, arrival, on_wire,
                         frame_count] {
    if (dst == kMulticast) {
      for (int h = 0; h < num_hosts_; ++h) {
        if (h == src) continue;
        forward(src, h, sock, payload, arrival, on_wire, frame_count);
      }
    } else {
      forward(src, dst, sock, payload, arrival, on_wire, frame_count);
    }
  });
}

void Network::forward(int src, int dst, SocketId sock, const Payload& data,
                      Nanos arrival, size_t bytes_on_wire,
                      size_t frame_count) {
  assert(dst >= 0 && dst < num_hosts_);
  if (down_[dst] || partition_[src] != partition_[dst]) {
    ++stats_.drops_fault;
    return;
  }
  if (drop_filter_ && drop_filter_(src, dst, sock, *data)) {
    ++stats_.drops_fault;
    return;
  }
  if (!link_rules_.empty()) {
    if (const LinkRule* rule = match_rule(src, dst)) {
      if (rule->down) {
        ++stats_.drops_link;
        return;
      }
      if (rule->loss > 0) {
        for (size_t f = 0; f < frame_count; ++f) {
          if (rng_.chance(rule->loss)) {
            ++stats_.drops_link;
            return;
          }
        }
      }
    }
  }
  if (params_.loss_rate > 0) {
    // A multi-fragment datagram is lost if any fragment is lost.
    for (size_t f = 0; f < frame_count; ++f) {
      if (rng_.chance(params_.loss_rate)) {
        ++stats_.drops_random;
        return;
      }
    }
  }
  // Output-port tail drop: if the queue cannot hold the whole datagram, it is
  // dropped. (Fragments of one datagram are treated as a unit; per-fragment
  // partial drops would lose the datagram anyway.)
  if (port_queued_bytes_[dst] + bytes_on_wire > params_.port_buffer_bytes) {
    ++stats_.drops_buffer;
    return;
  }
  port_queued_bytes_[dst] += bytes_on_wire;

  const Nanos start =
      std::max(arrival + params_.switch_latency, port_free_at_[dst]);
  const Nanos done = start + params_.serialization_delay(bytes_on_wire);
  port_free_at_[dst] = done;

  eq_.schedule(done, [this, dst, bytes_on_wire] {
    port_queued_bytes_[dst] -= bytes_on_wire;
  });

  Nanos delivered =
      done + params_.prop_delay + params_.host_rx_latency + extra_latency_;
  // Reorder: with probability p, hold this datagram back so later traffic can
  // overtake it. Drawn only when the fault is armed, so pre-existing
  // scenarios consume an unchanged rng stream.
  if (reorder_rate_ > 0 && rng_.chance(reorder_rate_)) {
    delivered += 1 + static_cast<Nanos>(
                         rng_.below(static_cast<uint64_t>(reorder_jitter_)));
    ++stats_.reordered;
  }
  auto deliver = [this, dst, sock, data] {
    ++stats_.datagrams_delivered;
    if (sinks_[dst]) sinks_[dst](sock, data);
  };
  eq_.schedule(delivered, deliver);
  if (duplicate_rate_ > 0 && rng_.chance(duplicate_rate_)) {
    ++stats_.duplicates;
    // The copy trails the original by a few microseconds to tens of
    // microseconds — close enough to land inside the same protocol round.
    eq_.schedule(delivered + 2'000 + static_cast<Nanos>(rng_.below(40'000)),
                 deliver);
  }
}

Network::LinkRule* Network::find_rule(int src, int dst) {
  for (LinkRule& r : link_rules_) {
    if (r.src == src && r.dst == dst) return &r;
  }
  return nullptr;
}

const Network::LinkRule* Network::match_rule(int src, int dst) const {
  // Exact match wins over wildcard; a down rule wins over a loss rule.
  const LinkRule* best = nullptr;
  for (const LinkRule& r : link_rules_) {
    const bool src_ok = r.src == kAnyHost || r.src == src;
    const bool dst_ok = r.dst == kAnyHost || r.dst == dst;
    if (!src_ok || !dst_ok) continue;
    if (best == nullptr || (r.down && !best->down) ||
        (r.down == best->down && r.loss > best->loss)) {
      best = &r;
    }
  }
  return best;
}

void Network::set_link_loss(int src, int dst, double p) {
  if (LinkRule* r = find_rule(src, dst)) {
    r->loss = p;
    if (p <= 0 && !r->down) {
      link_rules_.erase(link_rules_.begin() + (r - link_rules_.data()));
    }
    return;
  }
  if (p <= 0) return;
  link_rules_.push_back({src, dst, p, false});
}

void Network::set_link_down(int src, int dst, bool down) {
  if (LinkRule* r = find_rule(src, dst)) {
    r->down = down;
    if (!down && r->loss <= 0) {
      link_rules_.erase(link_rules_.begin() + (r - link_rules_.data()));
    }
    return;
  }
  if (!down) return;
  link_rules_.push_back({src, dst, 0.0, true});
}

void Network::set_reorder(double p, Nanos max_extra) {
  reorder_rate_ = p;
  reorder_jitter_ = max_extra > 0 ? max_extra : 1;
}

void Network::set_duplicate(double p) { duplicate_rate_ = p; }

void Network::clear_link_faults() {
  link_rules_.clear();
  reorder_rate_ = 0.0;
  reorder_jitter_ = 0;
  duplicate_rate_ = 0.0;
}

void Network::set_partition(int host, int id) {
  assert(host >= 0 && host < num_hosts_);
  partition_[host] = id;
}

void Network::heal() {
  for (auto& p : partition_) p = 0;
}

void Network::set_host_down(int host, bool down) {
  assert(host >= 0 && host < num_hosts_);
  down_[host] = down;
}

}  // namespace accelring::simnet
