// Discrete-event simulation core.
//
// A single EventQueue drives an entire simulated cluster: network elements,
// process CPU models, and protocol timers all schedule callbacks at absolute
// simulated times. Events at equal times fire in scheduling order (a
// monotonically increasing tie-break sequence number), which keeps runs
// deterministic for a given seed.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <unordered_map>
#include <vector>

#include "util/time.hpp"

namespace accelring::simnet {

using util::Nanos;

/// Handle for cancelling a scheduled event.
using EventId = uint64_t;

class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Schedule `cb` to run at absolute time `when` (clamped to >= now).
  EventId schedule(Nanos when, Callback cb);

  /// Schedule `cb` to run `delay` after the current time.
  EventId schedule_after(Nanos delay, Callback cb) {
    return schedule(now_ + delay, std::move(cb));
  }

  /// Cancel a pending event. Cancelling an already-fired event is a no-op.
  void cancel(EventId id);

  /// Run the next pending event; returns false when the queue is empty.
  bool step();

  /// Run events with time <= `deadline`; time stops at the last event run.
  void run_until(Nanos deadline);

  /// Run until the queue is completely empty.
  void run_all();

  [[nodiscard]] Nanos now() const { return now_; }
  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] uint64_t events_executed() const { return executed_; }

 private:
  struct Entry {
    Nanos when;
    EventId id;
    // Cancellation is lazy: cancel() clears the function object through the
    // shared pointer; popped entries with an empty callback are skipped.
    std::shared_ptr<Callback> cb;

    bool operator>(const Entry& other) const {
      if (when != other.when) return when > other.when;
      return id > other.id;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
  std::unordered_map<EventId, std::weak_ptr<Callback>> pending_;
  Nanos now_ = 0;
  EventId next_id_ = 1;
  uint64_t executed_ = 0;
};

}  // namespace accelring::simnet
