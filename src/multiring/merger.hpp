// Deterministic merge of K independent totally ordered streams.
//
// Each ring delivers its own total order; a subscriber that consumes several
// rings needs one combined total order that every subscriber agrees on. The
// merge rule is Multi-Ring Paxos's deterministic round-robin (Marandi et al.):
// consume up to M slots from ring 0, then ring 1, ... wrapping around. The
// merged order is a pure function of the per-ring streams — arrival timing
// never influences it — so every node that feeds the same per-ring orders in
// gets byte-identical merged output.
//
// A ring with nothing to say would stall the rotation, so idle (or slow)
// rings periodically order a *skip message* covering M slots (the RingSet
// arms these). Skips are ordered within their ring like any message, so all
// subscribers consume them at the same stream positions; the merger credits
// the slots and rotates on without emitting anything.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <span>
#include <vector>

#include "obs/metrics.hpp"
#include "protocol/types.hpp"
#include "util/trace.hpp"

namespace accelring::multiring {

using protocol::Nanos;

/// Build the payload of a skip message covering `slots` merge slots.
[[nodiscard]] std::vector<std::byte> make_skip(uint32_t slots);
/// Slot count if `payload` is a skip message, nullopt otherwise.
[[nodiscard]] std::optional<uint32_t> decode_skip(
    std::span<const std::byte> payload);

struct MergerStats {
  uint64_t merged = 0;           ///< application messages emitted
  uint64_t skip_msgs = 0;        ///< skip messages consumed
  uint64_t skipped_slots = 0;    ///< slots those skips covered
  uint64_t rotations = 0;        ///< cursor advances to the next ring
  uint64_t handoff_markers = 0;  ///< migration markers merged (migration.hpp)
};

/// Observation points for the merge (all optional; see obs/metrics.hpp for
/// the zero-perturbation contract). merge_stall_ns measures head-of-line
/// blocking: how long messages from other rings sat queued while the cursor
/// ring had nothing ordered — the cost skip messages exist to bound.
struct MergerMetrics {
  obs::Histogram* merge_stall_ns = nullptr;
  obs::Counter* merged = nullptr;
  obs::Counter* skip_msgs = nullptr;
  obs::Counter* skipped_slots = nullptr;
  obs::Counter* rotations = nullptr;
  obs::Counter* handoff_markers = nullptr;

  [[nodiscard]] static MergerMetrics bind(obs::MetricsRegistry& registry);
};

class DeterministicMerger {
 public:
  /// (ring, delivery) — one merged-stream emission.
  using MergedFn =
      std::function<void(int ring, const protocol::Delivery& delivery)>;

  DeterministicMerger(int num_rings, uint32_t batch)
      : batch_(batch < 1 ? 1 : batch),
        queues_(static_cast<size_t>(num_rings)) {}

  void set_on_merged(MergedFn fn) { on_merged_ = std::move(fn); }

  /// Attach a flight recorder for kMergeDeliver / kSkipMsg events; `clock`
  /// supplies the timestamps (e.g. the simulation clock).
  void set_tracer(util::Tracer* tracer, std::function<Nanos()> clock) {
    tracer_ = tracer;
    clock_ = std::move(clock);
  }

  /// Attach observation points. `clock` supplies stall timestamps; when null
  /// the tracer clock (if any) is reused.
  void set_metrics(const MergerMetrics& metrics,
                   std::function<Nanos()> clock = nullptr) {
    metrics_ = metrics;
    if (clock) clock_ = std::move(clock);
  }

  /// Feed the next in-order delivery of `ring`; emits every merged message
  /// that becomes consumable (possibly none, possibly many).
  void push(int ring, const protocol::Delivery& delivery);

  [[nodiscard]] const MergerStats& stats() const { return stats_; }
  [[nodiscard]] int num_rings() const {
    return static_cast<int>(queues_.size());
  }
  [[nodiscard]] uint32_t batch() const { return batch_; }
  /// Deliveries of `ring` waiting for the cursor.
  [[nodiscard]] size_t queued(int ring) const {
    return queues_[static_cast<size_t>(ring)].size();
  }
  /// Ring the rotation is currently consuming from.
  [[nodiscard]] int cursor() const { return cursor_; }
  /// Highest shard-map epoch whose activate marker this merger has consumed:
  /// the routing epoch in force at the merger's current merged-stream
  /// position. All mergers fed the same per-ring streams agree on it at
  /// every position — that is the "deterministic deliverer switch".
  [[nodiscard]] uint64_t map_version() const { return map_version_; }

 private:
  void pump();
  void trace(util::TraceEvent event, int64_t a, int64_t b) {
    if (tracer_ != nullptr) tracer_->record(clock_ ? clock_() : 0, event, a, b);
  }

  uint32_t batch_;
  std::vector<std::deque<protocol::Delivery>> queues_;
  int cursor_ = 0;
  uint32_t credit_ = 0;  ///< slots consumed from queues_[cursor_] this burst
  MergedFn on_merged_;
  util::Tracer* tracer_ = nullptr;
  std::function<Nanos()> clock_;
  MergerStats stats_;
  MergerMetrics metrics_;
  Nanos stall_started_ = 0;   ///< 0 = not currently stalled
  uint64_t map_version_ = 0;  ///< see map_version()
};

}  // namespace accelring::multiring
