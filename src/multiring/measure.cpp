#include "multiring/measure.hpp"

#include <algorithm>
#include <cstdio>

#include "harness/workload.hpp"
#include "util/stats.hpp"

namespace accelring::multiring {

namespace {

using harness::PayloadStamp;

/// Fixed-rate sharded injection: every node sends at offered/nodes, cycling
/// through `streams_per_node` ordering keys so the shard map spreads the
/// load across rings (the multi-ring analogue of harness::RateInjector).
class ShardedInjector {
 public:
  ShardedInjector(RingSet& rings, const MultiPointConfig& cfg, Nanos stop)
      : rings_(rings), cfg_(cfg), stop_(stop) {
    const double msgs_per_sec = cfg.offered_mbps * 1e6 / 8.0 /
                                static_cast<double>(cfg.payload_size);
    const double per_node =
        msgs_per_sec / rings_.nodes_per_ring();
    interval_ = per_node > 0 ? static_cast<Nanos>(1e9 / per_node)
                             : util::sec(3600);
  }

  void arm() {
    for (int node = 0; node < rings_.nodes_per_ring(); ++node) {
      const Nanos phase = interval_ * node / rings_.nodes_per_ring();
      schedule_next(node, util::usec(100) + phase, 0);
    }
  }

 private:
  void schedule_next(int node, Nanos at, uint32_t index) {
    if (at >= stop_) return;
    rings_.eq().schedule(at, [this, node, at, index] {
      PayloadStamp stamp;
      stamp.inject_time = at;
      stamp.sender = static_cast<uint32_t>(node);
      stamp.index = index;
      const uint64_t stream =
          static_cast<uint64_t>(node) *
              static_cast<uint64_t>(cfg_.streams_per_node) +
          index % static_cast<uint32_t>(cfg_.streams_per_node);
      rings_.submit_keyed(node, stream, cfg_.service,
                          harness::make_payload(cfg_.payload_size, stamp));
      schedule_next(node, at + interval_, index + 1);
    });
  }

  RingSet& rings_;
  const MultiPointConfig& cfg_;
  Nanos stop_;
  Nanos interval_ = 0;
};

}  // namespace

MultiPointResult run_multiring_point(const MultiPointConfig& config) {
  RingSet rings(config.ring);
  // Always-on, like harness::run_point: recording never perturbs the run
  // (obs_determinism_test pins this for the multi-ring assembly too).
  rings.enable_metrics();
  const Nanos window_start = config.warmup;
  const Nanos window_end = config.warmup + config.measure;

  util::LatencyStats latency;
  std::vector<util::Meter> node_meter(
      static_cast<size_t>(config.ring.nodes_per_ring));
  std::vector<uint64_t> ring_bytes(static_cast<size_t>(config.ring.rings), 0);

  rings.set_on_merged([&](int node, int ring, const protocol::Delivery& d,
                          Nanos at) {
    if (at < window_start || at >= window_end) return;
    PayloadStamp stamp;
    if (!harness::parse_payload(d.payload, stamp)) return;
    latency.add(at - stamp.inject_time);
    node_meter[static_cast<size_t>(node)].add(d.payload.size());
    if (node == 0) ring_bytes[static_cast<size_t>(ring)] += d.payload.size();
  });

  ShardedInjector injector(rings, config, window_end);
  rings.start_static();
  injector.arm();
  rings.run_until(window_end + util::msec(50));

  MultiPointResult r;
  r.offered_mbps = config.offered_mbps;
  double sum = 0;
  for (const auto& m : node_meter) sum += m.mbps(window_end - window_start);
  r.merged_mbps = sum / static_cast<double>(node_meter.size());
  r.mean_latency = latency.mean();
  r.p50_latency = latency.percentile(0.5);
  r.p90_latency = latency.percentile(0.90);
  r.p99_latency = latency.percentile(0.99);
  r.p999_latency = latency.percentile(0.999);
  r.max_latency = latency.max();
  r.messages = node_meter[0].messages();
  r.skip_msgs = rings.merger(0).stats().skip_msgs;
  const double window_sec = util::to_sec(window_end - window_start);
  for (const uint64_t bytes : ring_bytes) {
    r.per_ring_mbps.push_back(static_cast<double>(bytes) * 8.0 / 1e6 /
                              window_sec);
  }
  for (const harness::ClusterStats& cs : rings.ring_stats()) {
    r.retransmits += cs.retransmits();
    r.buffer_drops += cs.net.drops_buffer;
    r.submit_rejected += cs.submit_rejected();
    r.max_cpu_utilization =
        std::max(r.max_cpu_utilization, cs.max_cpu_utilization());
  }
  auto merged = std::make_shared<obs::MetricsRegistry>(rings.merged_metrics());
  obs::Histogram& dist = merged->histogram("harness", "delivery_latency_ns");
  for (const Nanos sample : latency.samples()) dist.record(sample);
  r.metrics = std::move(merged);
  return r;
}

void print_multiring_row(int rings, const MultiPointResult& r,
                         double baseline_mbps) {
  std::printf(
      "%5d %12.0f %12.1f %8.2fx %12.1f %12.1f %10llu %10llu %8.1f\n", rings,
      r.offered_mbps, r.merged_mbps,
      baseline_mbps > 0 ? r.merged_mbps / baseline_mbps : 1.0,
      util::to_usec(r.mean_latency), util::to_usec(r.p99_latency),
      static_cast<unsigned long long>(r.retransmits),
      static_cast<unsigned long long>(r.buffer_drops + r.submit_rejected),
      100.0 * r.max_cpu_utilization);
}

}  // namespace accelring::multiring
