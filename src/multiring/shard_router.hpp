// Per-node shard router: map-version-aware routing with hold-and-flush.
//
// Every logical node owns one ShardRouter. It wraps the node's copy of the
// versioned ShardMap and advances it through migrations *driven only by the
// markers the node merges* (migration.hpp), so all nodes apply the same map
// transition at the same merged-stream position:
//
//   steady            — keys route to their map owner
//   freeze(S) merged  — new submissions for moving keys of S are HELD by the
//                       caller (Decision::hold); non-moving keys unaffected
//   drain(S) merged   — source ownership closed; holds continue
//   activate(D) merged— moving keys whose destination is D route to D (held
//                       submissions flush); when every destination of the
//                       plan has activated the map is applied and version()
//                       bumps
//
// The router decides; the caller (RingSet) owns payloads, performs the
// actual holds/flushes, and runs the controller that submits the markers.
#pragma once

#include <cassert>
#include <optional>
#include <string_view>
#include <vector>

#include "multiring/migration.hpp"
#include "multiring/shard_map.hpp"

namespace accelring::multiring {

class ShardRouter {
 public:
  struct Decision {
    int ring = 0;
    bool hold = false;  ///< true: do not submit yet, park until flush
  };

  /// What a merged marker changed, so the caller can react (flush holds on
  /// activation, account completions).
  struct MarkerEffect {
    bool activated = false;  ///< an activate marker was merged
    bool completed = false;  ///< the migration finished; map version bumped
  };

  explicit ShardRouter(ShardMap map) : map_(std::move(map)) {}

  /// Route an already-mixed 64-bit key (RingSet mixes raw keys first).
  [[nodiscard]] Decision route_key(uint64_t mixed_key) const {
    if (plan_.has_value()) {
      if (const MigrationMove* mv = plan_->move_of(mixed_key)) {
        if (contains(activated_, mv->dst)) return {mv->dst, false};
        if (contains(frozen_, mv->src)) return {mv->src, true};
        return {mv->src, false};
      }
    }
    return {map_.ring_of_key(mixed_key), false};
  }

  /// Coarse routing for layers that cannot hold (group names): the owner
  /// under the last *completed* map version. Switches atomically when the
  /// migration completes rather than per-range at activation.
  [[nodiscard]] int steady_ring(std::string_view name) const {
    return map_.ring_of(name);
  }

  /// Out-of-band plan staging by the controller. The decision to act on the
  /// plan is still marker-driven — staging alone changes no routing — but it
  /// carries the successor point set that apply() installs (the freeze
  /// marker's wire form carries only the moves).
  void stage_plan(const MigrationPlan& plan) {
    assert(!plan_.has_value());
    assert(plan.from_version == map_.version());
    if (plan.empty()) return;
    plan_ = plan;
    frozen_.clear();
    drained_.clear();
    activated_.clear();
  }

  /// Feed one marker in this node's merged-stream order.
  MarkerEffect on_marker(const MigrationMarker& m) {
    MarkerEffect effect;
    if (!plan_.has_value() || m.version != plan_->to_version) return effect;
    switch (m.kind) {
      case MarkerKind::kFreeze:
        insert(frozen_, m.ring);
        break;
      case MarkerKind::kDrain:
        insert(drained_, m.ring);
        break;
      case MarkerKind::kActivate:
        insert(activated_, m.ring);
        effect.activated = true;
        if (covers(activated_, plan_->dests()) &&
            covers(drained_, plan_->sources())) {
          map_.apply(*plan_);
          plan_.reset();
          frozen_.clear();
          drained_.clear();
          activated_.clear();
          effect.completed = true;
        }
        break;
    }
    return effect;
  }

  [[nodiscard]] uint64_t version() const { return map_.version(); }
  [[nodiscard]] bool migrating() const { return plan_.has_value(); }
  /// True when this node merged freeze markers from every source of the
  /// in-flight plan (the controller's drain precondition).
  [[nodiscard]] bool all_frozen() const {
    return plan_.has_value() && covers(frozen_, plan_->sources());
  }
  [[nodiscard]] bool all_drained() const {
    return plan_.has_value() && covers(drained_, plan_->sources());
  }
  [[nodiscard]] const ShardMap& map() const { return map_; }

 private:
  static bool contains(const std::vector<int>& v, int x) {
    for (const int e : v) {
      if (e == x) return true;
    }
    return false;
  }
  static void insert(std::vector<int>& v, int x) {
    if (!contains(v, x)) v.push_back(x);
  }
  static bool covers(const std::vector<int>& have,
                     const std::vector<int>& want) {
    for (const int w : want) {
      if (!contains(have, w)) return false;
    }
    return true;
  }

  ShardMap map_;
  std::optional<MigrationPlan> plan_;
  std::vector<int> frozen_;
  std::vector<int> drained_;
  std::vector<int> activated_;
};

}  // namespace accelring::multiring
