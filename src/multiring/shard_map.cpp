#include "multiring/shard_map.hpp"

#include <cassert>
#include <limits>

namespace accelring::multiring {

ShardMap::ShardMap(int num_rings) {
  assert(num_rings >= 1);
  constexpr uint64_t kMaxId = std::numeric_limits<uint64_t>::max();
  const uint64_t width = kMaxId / static_cast<uint64_t>(num_rings);
  ranges_.resize(static_cast<size_t>(num_rings));
  uint64_t lo = 0;
  for (int r = 0; r < num_rings; ++r) {
    // The last ring absorbs the rounding remainder so the ranges tile the
    // whole hash space with no gap at kMaxId.
    const uint64_t hi = r + 1 == num_rings ? kMaxId : lo + width - 1;
    ranges_[static_cast<size_t>(r)] = Range{lo, hi};
    lo = hi + 1;
  }
}

int ShardMap::ring_of_key(uint64_t key) const {
  // Ranges are equal-width and sorted: direct index, then clamp for the
  // remainder absorbed by the last ring.
  const uint64_t width = ranges_[0].hi - ranges_[0].lo + 1;
  if (ranges_.size() == 1 || width == 0) return 0;
  size_t idx = static_cast<size_t>(key / width);
  if (idx >= ranges_.size()) idx = ranges_.size() - 1;
  assert(ranges_[idx].contains(key));
  return static_cast<int>(idx);
}

}  // namespace accelring::multiring
