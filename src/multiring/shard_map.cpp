#include "multiring/shard_map.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace accelring::multiring {

namespace {

constexpr uint64_t kMaxId = std::numeric_limits<uint64_t>::max();

void sort_points(std::vector<ShardMap::Point>& pts) {
  std::sort(pts.begin(), pts.end(),
            [](const ShardMap::Point& a, const ShardMap::Point& b) {
              return a.at < b.at;
            });
}

}  // namespace

uint64_t ShardMap::vnode_point(int ring, int v) {
  // Two rounds of the finalizer decorrelate (ring, v) lanes: one round of a
  // near-sequential input would still be uniform, but seeding per ring keeps
  // the per-ring point streams independent.
  const uint64_t seed = mix64(0x632be59bd9b4e019ull ^
                              (static_cast<uint64_t>(ring) + 1));
  return mix64(seed + static_cast<uint64_t>(v));
}

ShardMap::ShardMap(int num_rings)
    : ShardMap(num_rings, kDefaultVnodes, num_rings) {}

ShardMap::ShardMap(int num_rings, int vnodes_per_ring, int active_rings)
    : num_rings_(num_rings), vnodes_(vnodes_per_ring) {
  assert(num_rings >= 1);
  assert(vnodes_per_ring >= 1);
  if (active_rings < 1) active_rings = 1;
  if (active_rings > num_rings) active_rings = num_rings;
  points_.reserve(static_cast<size_t>(active_rings) *
                  static_cast<size_t>(vnodes_));
  for (int r = 0; r < active_rings; ++r) {
    for (int v = 0; v < vnodes_; ++v) {
      points_.push_back(Point{vnode_point(r, v), r});
    }
  }
  sort_points(points_);
  // A point collision (two (ring, v) lanes hashing to the same position) has
  // probability ~(K*V)^2 / 2^65 — negligible, but drop duplicates so the
  // successor lookup stays well defined.
  points_.erase(std::unique(points_.begin(), points_.end(),
                            [](const Point& a, const Point& b) {
                              return a.at == b.at;
                            }),
                points_.end());
  assert(!points_.empty());
}

int ShardMap::owner_in(const std::vector<Point>& points, uint64_t key) {
  assert(!points.empty());
  // Successor lookup: the first point clockwise from the key owns it; keys
  // past the last point wrap to the first.
  const auto it = std::lower_bound(
      points.begin(), points.end(), key,
      [](const Point& p, uint64_t k) { return p.at < k; });
  return it == points.end() ? points.front().ring : it->ring;
}

int ShardMap::ring_of_key(uint64_t key) const {
  return owner_in(points_, key);
}

bool ShardMap::ring_active(int ring) const {
  return std::any_of(points_.begin(), points_.end(),
                     [ring](const Point& p) { return p.ring == ring; });
}

int ShardMap::active_rings() const {
  int n = 0;
  for (int r = 0; r < num_rings_; ++r) n += ring_active(r) ? 1 : 0;
  return n;
}

std::vector<ShardMap::Range> ShardMap::ranges_of(int ring) const {
  std::vector<Range> out;
  const size_t n = points_.size();
  for (size_t i = 0; i < n; ++i) {
    if (points_[i].ring != ring) continue;
    if (i == 0) {
      // The first point owns the wrap-around arc (last point, 2^64-1] plus
      // [0, first point]; the high piece is empty when the last point sits
      // exactly at 2^64-1 (or when this is the only point — then it owns
      // the whole circle and the high piece completes it).
      out.push_back(Range{0, points_[0].at});
      if (points_[n - 1].at != kMaxId) {
        out.push_back(Range{points_[n - 1].at + 1, kMaxId});
      }
    } else {
      out.push_back(Range{points_[i - 1].at + 1, points_[i].at});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const Range& a, const Range& b) { return a.lo < b.lo; });
  return out;
}

double ShardMap::owned_fraction(int ring) const {
  long double total = 0.0L;
  constexpr long double kSpace = 18446744073709551616.0L;  // 2^64
  for (const Range& r : ranges_of(ring)) {
    total += static_cast<long double>(r.hi - r.lo) + 1.0L;
  }
  return static_cast<double>(total / kSpace);
}

MigrationPlan ShardMap::diff_plan(std::vector<Point> next) const {
  sort_points(next);
  next.erase(std::unique(next.begin(), next.end(),
                         [](const Point& a, const Point& b) {
                           return a.at == b.at;
                         }),
             next.end());
  MigrationPlan plan;
  plan.from_version = version_;
  plan.to_version = version_ + 1;
  plan.points = std::move(next);
  if (plan.points.empty() || plan.points == points_) {
    plan.moves.clear();
    return plan;
  }

  // Elementary arcs between consecutive boundaries of the union point set:
  // within each, both the old and the new owner are constant (no point of
  // either set lies strictly inside), so ownership diffs arc by arc.
  std::vector<uint64_t> bounds;
  bounds.reserve(points_.size() + plan.points.size());
  for (const Point& p : points_) bounds.push_back(p.at);
  for (const Point& p : plan.points) bounds.push_back(p.at);
  std::sort(bounds.begin(), bounds.end());
  bounds.erase(std::unique(bounds.begin(), bounds.end()), bounds.end());

  auto push_move = [&plan](uint64_t lo, uint64_t hi, int src, int dst) {
    if (src == dst) return;
    // Coalesce with the previous move when the ranges abut.
    if (!plan.moves.empty()) {
      MigrationMove& back = plan.moves.back();
      if (back.src == src && back.dst == dst && back.range.hi != kMaxId &&
          back.range.hi + 1 == lo) {
        back.range.hi = hi;
        return;
      }
    }
    plan.moves.push_back(MigrationMove{Range{lo, hi}, src, dst});
  };

  for (size_t i = 1; i < bounds.size(); ++i) {
    push_move(bounds[i - 1] + 1, bounds[i], owner_in(points_, bounds[i]),
              owner_in(plan.points, bounds[i]));
  }
  // Wrap arc (last boundary, 2^64-1] ∪ [0, first boundary]: both pieces have
  // the owners of the first boundary (no point of either set lies beyond the
  // last boundary, so successor lookup wraps).
  const int src = owner_in(points_, bounds.front());
  const int dst = owner_in(plan.points, bounds.front());
  if (bounds.back() != kMaxId) push_move(bounds.back() + 1, kMaxId, src, dst);
  push_move(0, bounds.front(), src, dst);
  return plan;
}

MigrationPlan ShardMap::plan_add_ring(int ring) const {
  assert(ring >= 0 && ring < num_rings_);
  if (ring_active(ring)) return diff_plan(points_);  // no-op plan
  std::vector<Point> next = points_;
  for (int v = 0; v < vnodes_; ++v) {
    next.push_back(Point{vnode_point(ring, v), ring});
  }
  return diff_plan(std::move(next));
}

MigrationPlan ShardMap::plan_remove_ring(int ring) const {
  assert(ring >= 0 && ring < num_rings_);
  std::vector<Point> next;
  next.reserve(points_.size());
  for (const Point& p : points_) {
    if (p.ring != ring) next.push_back(p);
  }
  if (next.empty() || next.size() == points_.size()) {
    return diff_plan(points_);  // last active ring, or already inactive
  }
  return diff_plan(std::move(next));
}

MigrationPlan ShardMap::plan_move_fraction(int src, int dst,
                                           double fraction) const {
  assert(src >= 0 && src < num_rings_);
  assert(dst >= 0 && dst < num_rings_);
  if (src == dst) return diff_plan(points_);
  size_t owned = 0;
  for (const Point& p : points_) owned += p.ring == src ? 1 : 0;
  if (owned == 0) return diff_plan(points_);
  if (fraction < 0.0) fraction = 0.0;
  if (fraction > 1.0) fraction = 1.0;
  auto want = static_cast<size_t>(
      std::llround(fraction * static_cast<double>(owned)));
  if (want < 1) want = 1;
  if (want > owned) want = owned;
  std::vector<Point> next = points_;
  for (Point& p : next) {
    if (want == 0) break;
    if (p.ring != src) continue;
    p.ring = dst;
    --want;
  }
  return diff_plan(std::move(next));
}

void ShardMap::apply(const MigrationPlan& plan) {
  if (plan.empty()) return;
  // A plan is pinned to the version it was cut against: replays and plans
  // from another epoch are no-ops, never a second application.
  if (plan.from_version != version_) return;
  assert(plan.to_version == version_ + 1);
  assert(!plan.points.empty());
  points_ = plan.points;
  version_ = plan.to_version;
}

namespace {

std::vector<int> distinct_rings(const std::vector<MigrationMove>& moves,
                                bool source_side) {
  std::vector<int> out;
  out.reserve(moves.size());
  for (const MigrationMove& m : moves) {
    out.push_back(source_side ? m.src : m.dst);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace

std::vector<int> MigrationPlan::sources() const {
  return distinct_rings(moves, true);
}

std::vector<int> MigrationPlan::dests() const {
  return distinct_rings(moves, false);
}

const MigrationMove* MigrationPlan::move_of(uint64_t key) const {
  for (const MigrationMove& m : moves) {
    if (m.range.contains(key)) return &m;
  }
  return nullptr;
}

}  // namespace accelring::multiring
