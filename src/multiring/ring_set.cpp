#include "multiring/ring_set.hpp"

#include <algorithm>
#include <cassert>

namespace accelring::multiring {

RingSet::RingSet(const MultiRingConfig& cfg)
    : cfg_(cfg),
      shards_(cfg.rings, cfg.vnodes >= 1 ? cfg.vnodes : 1,
              cfg.active_rings > 0 ? cfg.active_rings : cfg.rings) {
  assert(cfg_.rings >= 1 && cfg_.nodes_per_ring >= 2);
  ordered_at_probe_.assign(static_cast<size_t>(cfg_.rings), 0);
  skip_baseline_.assign(static_cast<size_t>(cfg_.rings), 0);
  submitted_data_.assign(static_cast<size_t>(cfg_.rings), 0);
  drain_submitted_.assign(static_cast<size_t>(cfg_.rings), 0);

  assert(cfg_.topology.hosts.empty() ||
         cfg_.topology.num_hosts() == cfg_.nodes_per_ring);
  for (int r = 0; r < cfg_.rings; ++r) {
    // Each ring gets its own switch fabric (own multicast domain) but shares
    // the one event queue, so all rings advance on one simulated clock.
    // Seeds are ring-distinct so loss draws differ across rings.
    const uint64_t ring_seed = cfg_.seed + static_cast<uint64_t>(r) * 7919;
    if (cfg_.topology.hosts.empty()) {
      clusters_.push_back(std::make_unique<harness::SimCluster>(
          eq_, cfg_.nodes_per_ring, cfg_.fabric, cfg_.proto, cfg_.profile,
          ring_seed));
    } else {
      clusters_.push_back(std::make_unique<harness::SimCluster>(
          eq_, cfg_.topology, cfg_.fabric, cfg_.proto, cfg_.profile,
          ring_seed));
    }
  }
  held_.resize(static_cast<size_t>(cfg_.nodes_per_ring));
  merged_data_.assign(static_cast<size_t>(cfg_.nodes_per_ring),
                      std::vector<uint64_t>(static_cast<size_t>(cfg_.rings)));
  for (int n = 0; n < cfg_.nodes_per_ring; ++n) {
    routers_.push_back(std::make_unique<ShardRouter>(shards_));
    mergers_.push_back(
        std::make_unique<DeterministicMerger>(cfg_.rings, cfg_.merge_batch));
    mergers_.back()->set_on_merged(
        [this, n](int ring, const protocol::Delivery& d) {
          if (const auto marker = decode_marker(d.payload)) {
            // Handoff markers advance this node's router at its own merged
            // position; they reach the check observers (the oracles audit
            // them) but not the application callback — like skip messages,
            // they are protocol-internal.
            const ShardRouter::MarkerEffect effect =
                routers_[static_cast<size_t>(n)]->on_marker(*marker);
            for (const MergedFn& fn : merged_observers_) {
              fn(n, ring, d, push_at_);
            }
            if (effect.activated) flush_held(n);
            return;
          }
          ++merged_data_[static_cast<size_t>(n)][static_cast<size_t>(ring)];
          for (const MergedFn& fn : merged_observers_) fn(n, ring, d, push_at_);
          if (on_merged_) on_merged_(n, ring, d, push_at_);
        });
  }
  for (int r = 0; r < cfg_.rings; ++r) {
    clusters_[static_cast<size_t>(r)]->set_on_deliver(
        [this, r](int node, const protocol::Delivery& d, Nanos at) {
          if (node == 0) ++ordered_at_probe_[static_cast<size_t>(r)];
          push_at_ = at;
          mergers_[static_cast<size_t>(node)]->push(r, d);
        });
  }
}

void RingSet::set_on_config(ConfigFn fn) {
  for (int r = 0; r < cfg_.rings; ++r) {
    clusters_[static_cast<size_t>(r)]->set_on_config(
        [fn, r](int node, const protocol::ConfigurationChange& change) {
          fn(node, r, change);
        });
  }
}

void RingSet::start_static() {
  for (auto& cluster : clusters_) cluster->start_static();
  for (int r = 0; r < cfg_.rings; ++r) {
    // Offset the first ticks so K skip daemons do not fire in lockstep.
    eq_.schedule_after(
        cfg_.skip_interval + cfg_.skip_interval * r / cfg_.rings,
        [this, r] { skip_tick(r); });
  }
}

void RingSet::skip_tick(int ring) {
  const uint64_t ordered = ordered_at_probe_[static_cast<size_t>(ring)];
  if (ordered - skip_baseline_[static_cast<size_t>(ring)] < cfg_.merge_batch) {
    // The ring moved less than one merge batch since the last tick: order a
    // skip so the merger's rotation passes this ring without waiting. The
    // lowest live node arms the skip; if node 0 crashed, its successor takes
    // over (every node runs the same deterministic rule, so exactly one
    // submits).
    harness::SimCluster& cluster = *clusters_[static_cast<size_t>(ring)];
    for (int n = 0; n < cfg_.nodes_per_ring; ++n) {
      if (cluster.net().host_down(n)) continue;
      cluster.submit(n, protocol::Service::kAgreed,
                     make_skip(cfg_.merge_batch));
      break;
    }
  }
  skip_baseline_[static_cast<size_t>(ring)] = ordered;
  eq_.schedule_after(cfg_.skip_interval, [this, ring] { skip_tick(ring); });
}

void RingSet::crash_node(int node) {
  assert(node >= 0 && node < cfg_.nodes_per_ring);
  // One machine hosts this node's K engines: all of them go silent at once.
  for (auto& cluster : clusters_) cluster->crash_node(node);
}

void RingSet::submit(int node, int ring, protocol::Service service,
                     std::vector<std::byte> payload) {
  ++submitted_data_[static_cast<size_t>(ring)];
  clusters_[static_cast<size_t>(ring)]->submit(node, service,
                                               std::move(payload));
}

void RingSet::submit_keyed(int node, uint64_t key, protocol::Service service,
                           std::vector<std::byte> payload) {
  const uint64_t mixed = mix64(key);
  const size_t ni = static_cast<size_t>(node);
  const ShardRouter::Decision dec = routers_[ni]->route_key(mixed);
  if (dec.hold) {
    held_[ni].push_back(Held{mixed, service, std::move(payload)});
    return;
  }
  int ring = dec.ring;
  if (node == stale_flush_node_ && !stale_flush_done_ && plan_.has_value()) {
    // Injected-bug fallback: if nothing was held at flush time, misroute the
    // next post-activate moving-key submission to the old owner instead.
    if (const MigrationMove* mv = plan_->move_of(mixed)) {
      if (ring == mv->dst && mv->dst != mv->src) {
        ring = mv->src;
        stale_flush_done_ = true;
      }
    }
  }
  submit(node, ring, service, std::move(payload));
}

void RingSet::submit_named(int node, std::string_view name,
                           protocol::Service service,
                           std::vector<std::byte> payload) {
  submit_keyed(node, fnv1a(name), service, std::move(payload));
}

int RingSet::lowest_live_node() const {
  for (int n = 0; n < cfg_.nodes_per_ring; ++n) {
    if (!node_down(n)) return n;
  }
  return 0;
}

void RingSet::submit_marker(int ring, const MigrationMarker& marker) {
  // Like the skip daemon: the lowest live node submits, so a controller node
  // crash does not strand the protocol on a dead submitter.
  harness::SimCluster& cluster = *clusters_[static_cast<size_t>(ring)];
  for (int n = 0; n < cfg_.nodes_per_ring; ++n) {
    if (cluster.net().host_down(n)) continue;
    cluster.submit(n, protocol::Service::kAgreed, make_marker(marker));
    return;
  }
}

bool RingSet::start_migration(const MigrationPlan& plan) {
  if (plan_.has_value() || plan.empty()) return false;
  if (plan.from_version != shards_.version()) return false;
  plan_ = plan;
  for (int n = 0; n < cfg_.nodes_per_ring; ++n) {
    ShardRouter& router = *routers_[static_cast<size_t>(n)];
    // A node that crashed mid-way through an earlier migration may hold a
    // stale plan or an old map version; it never routes again, so skip it.
    if (router.migrating() || router.version() != plan.from_version) continue;
    router.stage_plan(plan);
  }
  std::fill(drain_submitted_.begin(), drain_submitted_.end(), char{0});
  activates_submitted_ = false;
  for (const int src : plan_->sources()) {
    MigrationMarker m;
    m.kind = MarkerKind::kFreeze;
    m.version = plan_->to_version;
    m.ring = src;
    m.moves = plan_->moves;
    submit_marker(src, m);
  }
  eq_.schedule_after(cfg_.migration_tick, [this] { migration_tick(); });
  return true;
}

void RingSet::migration_tick() {
  if (!plan_.has_value()) return;
  const int ctrl = lowest_live_node();
  const size_t ctrl_i = static_cast<size_t>(ctrl);

  // Freeze -> drain, per source ring: every live node's router must have
  // merged the freeze (no node can still be routing moving keys to the
  // source) and the source's lifetime submitted-vs-merged counters must
  // agree at the controller (no data message still in flight toward the
  // source's ordered stream). Only then is it safe to close the source side:
  // the drain marker is ordered after every moving-key message.
  for (const int src : plan_->sources()) {
    const size_t si = static_cast<size_t>(src);
    if (drain_submitted_[si] != 0) continue;
    bool frozen_everywhere = true;
    for (int n = 0; n < cfg_.nodes_per_ring && frozen_everywhere; ++n) {
      if (node_down(n)) continue;
      const ShardRouter& router = *routers_[static_cast<size_t>(n)];
      frozen_everywhere = router.migrating() && router.all_frozen();
    }
    if (!frozen_everywhere) continue;
    if (submitted_data_[si] != merged_data_[ctrl_i][si]) continue;
    MigrationMarker m;
    m.kind = MarkerKind::kDrain;
    m.version = plan_->to_version;
    m.ring = src;
    submit_marker(src, m);
    drain_submitted_[si] = 1;
  }

  // Drain -> activate: once the controller's own merged stream contains
  // every drain, the activates it submits are ordered after all of them at
  // every node (the merged order is a pure function of the ring streams).
  if (!activates_submitted_ && routers_[ctrl_i]->all_drained()) {
    for (const int dst : plan_->dests()) {
      MigrationMarker m;
      m.kind = MarkerKind::kActivate;
      m.version = plan_->to_version;
      m.ring = dst;
      submit_marker(dst, m);
    }
    activates_submitted_ = true;
  }

  // Completion: every live router applied the plan (merged all activates).
  bool done = true;
  for (int n = 0; n < cfg_.nodes_per_ring && done; ++n) {
    if (node_down(n)) continue;
    done = routers_[static_cast<size_t>(n)]->version() == plan_->to_version;
  }
  if (done) {
    shards_.apply(*plan_);
    plan_.reset();
    ++completed_migrations_;
    return;  // stop ticking; the next start_migration re-arms
  }
  eq_.schedule_after(cfg_.migration_tick, [this] { migration_tick(); });
}

void RingSet::flush_held(int node) {
  const size_t ni = static_cast<size_t>(node);
  std::vector<Held>& held = held_[ni];
  if (held.empty()) return;
  std::vector<Held> keep;
  std::vector<Held> flush;
  for (Held& h : held) {
    if (routers_[ni]->route_key(h.key).hold) {
      keep.push_back(std::move(h));
    } else {
      flush.push_back(std::move(h));
    }
  }
  held = std::move(keep);
  for (Held& h : flush) {
    int ring = routers_[ni]->route_key(h.key).ring;
    if (node == stale_flush_node_ && !stale_flush_done_ &&
        plan_.has_value()) {
      // Injected bug (test hook): flush one held message with the *old* map
      // epoch — it lands on the source ring after the drain marker, exactly
      // the off-by-one handoff the MergedOracle audit exists to catch.
      if (const MigrationMove* mv = plan_->move_of(h.key)) {
        if (mv->src != ring) {
          ring = mv->src;
          stale_flush_done_ = true;
        }
      }
    }
    submit(node, ring, h.service, std::move(h.payload));
  }
}

size_t RingSet::held_messages() const {
  size_t total = 0;
  for (const auto& h : held_) total += h.size();
  return total;
}

void RingSet::enable_metrics() {
  if (metrics_enabled()) return;
  for (auto& cluster : clusters_) cluster->enable_metrics();
  node_metrics_.reserve(mergers_.size());
  for (auto& merger : mergers_) {
    node_metrics_.push_back(std::make_unique<obs::MetricsRegistry>());
    merger->set_metrics(MergerMetrics::bind(*node_metrics_.back()),
                        [this] { return eq_.now(); });
  }
}

obs::MetricsRegistry RingSet::merged_metrics() const {
  obs::MetricsRegistry merged;
  for (const auto& cluster : clusters_) {
    if (cluster->metrics_enabled()) merged.merge_from(cluster->merged_metrics());
  }
  for (const auto& reg : node_metrics_) merged.merge_from(*reg);
  return merged;
}

std::vector<harness::ClusterStats> RingSet::ring_stats() const {
  std::vector<harness::ClusterStats> out;
  out.reserve(clusters_.size());
  for (const auto& cluster : clusters_) out.push_back(cluster->stats());
  return out;
}

}  // namespace accelring::multiring
