#include "multiring/ring_set.hpp"

#include <cassert>

namespace accelring::multiring {

RingSet::RingSet(const MultiRingConfig& cfg)
    : cfg_(cfg), shards_(cfg.rings) {
  assert(cfg_.rings >= 1 && cfg_.nodes_per_ring >= 2);
  ordered_at_probe_.assign(static_cast<size_t>(cfg_.rings), 0);
  skip_baseline_.assign(static_cast<size_t>(cfg_.rings), 0);

  assert(cfg_.topology.hosts.empty() ||
         cfg_.topology.num_hosts() == cfg_.nodes_per_ring);
  for (int r = 0; r < cfg_.rings; ++r) {
    // Each ring gets its own switch fabric (own multicast domain) but shares
    // the one event queue, so all rings advance on one simulated clock.
    // Seeds are ring-distinct so loss draws differ across rings.
    const uint64_t ring_seed = cfg_.seed + static_cast<uint64_t>(r) * 7919;
    if (cfg_.topology.hosts.empty()) {
      clusters_.push_back(std::make_unique<harness::SimCluster>(
          eq_, cfg_.nodes_per_ring, cfg_.fabric, cfg_.proto, cfg_.profile,
          ring_seed));
    } else {
      clusters_.push_back(std::make_unique<harness::SimCluster>(
          eq_, cfg_.topology, cfg_.fabric, cfg_.proto, cfg_.profile,
          ring_seed));
    }
  }
  for (int n = 0; n < cfg_.nodes_per_ring; ++n) {
    mergers_.push_back(
        std::make_unique<DeterministicMerger>(cfg_.rings, cfg_.merge_batch));
    mergers_.back()->set_on_merged(
        [this, n](int ring, const protocol::Delivery& d) {
          for (const MergedFn& fn : merged_observers_) fn(n, ring, d, push_at_);
          if (on_merged_) on_merged_(n, ring, d, push_at_);
        });
  }
  for (int r = 0; r < cfg_.rings; ++r) {
    clusters_[static_cast<size_t>(r)]->set_on_deliver(
        [this, r](int node, const protocol::Delivery& d, Nanos at) {
          if (node == 0) ++ordered_at_probe_[static_cast<size_t>(r)];
          push_at_ = at;
          mergers_[static_cast<size_t>(node)]->push(r, d);
        });
  }
}

void RingSet::set_on_config(ConfigFn fn) {
  for (int r = 0; r < cfg_.rings; ++r) {
    clusters_[static_cast<size_t>(r)]->set_on_config(
        [fn, r](int node, const protocol::ConfigurationChange& change) {
          fn(node, r, change);
        });
  }
}

void RingSet::start_static() {
  for (auto& cluster : clusters_) cluster->start_static();
  for (int r = 0; r < cfg_.rings; ++r) {
    // Offset the first ticks so K skip daemons do not fire in lockstep.
    eq_.schedule_after(
        cfg_.skip_interval + cfg_.skip_interval * r / cfg_.rings,
        [this, r] { skip_tick(r); });
  }
}

void RingSet::skip_tick(int ring) {
  const uint64_t ordered = ordered_at_probe_[static_cast<size_t>(ring)];
  if (ordered - skip_baseline_[static_cast<size_t>(ring)] < cfg_.merge_batch) {
    // The ring moved less than one merge batch since the last tick: order a
    // skip so the merger's rotation passes this ring without waiting. The
    // lowest live node arms the skip; if node 0 crashed, its successor takes
    // over (every node runs the same deterministic rule, so exactly one
    // submits).
    harness::SimCluster& cluster = *clusters_[static_cast<size_t>(ring)];
    for (int n = 0; n < cfg_.nodes_per_ring; ++n) {
      if (cluster.net().host_down(n)) continue;
      cluster.submit(n, protocol::Service::kAgreed,
                     make_skip(cfg_.merge_batch));
      break;
    }
  }
  skip_baseline_[static_cast<size_t>(ring)] = ordered;
  eq_.schedule_after(cfg_.skip_interval, [this, ring] { skip_tick(ring); });
}

void RingSet::crash_node(int node) {
  assert(node >= 0 && node < cfg_.nodes_per_ring);
  // One machine hosts this node's K engines: all of them go silent at once.
  for (auto& cluster : clusters_) cluster->crash_node(node);
}

void RingSet::submit(int node, int ring, protocol::Service service,
                     std::vector<std::byte> payload) {
  clusters_[static_cast<size_t>(ring)]->submit(node, service,
                                               std::move(payload));
}

void RingSet::submit_keyed(int node, uint64_t key, protocol::Service service,
                           std::vector<std::byte> payload) {
  submit(node, shards_.ring_of_key(mix64(key)), service, std::move(payload));
}

void RingSet::submit_named(int node, std::string_view name,
                           protocol::Service service,
                           std::vector<std::byte> payload) {
  submit(node, shards_.ring_of(name), service, std::move(payload));
}

void RingSet::enable_metrics() {
  if (metrics_enabled()) return;
  for (auto& cluster : clusters_) cluster->enable_metrics();
  node_metrics_.reserve(mergers_.size());
  for (auto& merger : mergers_) {
    node_metrics_.push_back(std::make_unique<obs::MetricsRegistry>());
    merger->set_metrics(MergerMetrics::bind(*node_metrics_.back()),
                        [this] { return eq_.now(); });
  }
}

obs::MetricsRegistry RingSet::merged_metrics() const {
  obs::MetricsRegistry merged;
  for (const auto& cluster : clusters_) {
    if (cluster->metrics_enabled()) merged.merge_from(cluster->merged_metrics());
  }
  for (const auto& reg : node_metrics_) merged.merge_from(*reg);
  return merged;
}

std::vector<harness::ClusterStats> RingSet::ring_stats() const {
  std::vector<harness::ClusterStats> out;
  out.reserve(clusters_.size());
  for (const auto& cluster : clusters_) out.push_back(cluster->stats());
  return out;
}

}  // namespace accelring::multiring
