// Multi-ring assembly: K independent Accelerated Ring instances, sharded
// traffic, and a deterministic per-node merge of their delivery streams.
//
// The single-ring protocol's aggregate throughput is capped by one token
// rotation and one daemon's CPU. Following Multi-Ring Paxos, this subsystem
// runs K rings side by side: every logical node participates in all K rings
// (one engine per ring, each on its own virtual CPU — a daemon per core),
// every ring has its own switch fabric (its own multicast domain), and a
// versioned ShardMap routes each ordering key to one ring. A
// DeterministicMerger at every node interleaves the K per-ring total orders
// into one combined total order that is identical at all nodes, so
// applications written against a single ordered stream (groups, RSM) run
// unchanged at K× the capacity.
//
// Liveness of the merge: node 0 of each ring arms a periodic skip daemon
// that orders a skip message whenever its ring moved fewer than one merge
// batch in the last interval, so an idle ring cannot stall the rotation
// (merger.hpp explains the rule).
//
// Elasticity: the physical ring set K is fixed, but hash-space ownership
// migrates live (migration.hpp). start_migration() stages a MigrationPlan on
// every node's ShardRouter and runs the controller: freeze markers on each
// source ring, then — once every live router merged the freeze and the
// source's submitted-vs-merged counters agree (nothing in flight) — a drain
// marker per source, then activate markers on the destinations once the
// controller merged all drains. Keyed submissions for moving ranges are held
// between freeze and activation and flushed to the destination, so no message
// is ever ordered on the wrong side of its handoff.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "harness/cluster.hpp"
#include "multiring/merger.hpp"
#include "multiring/migration.hpp"
#include "multiring/shard_map.hpp"
#include "multiring/shard_router.hpp"

namespace accelring::multiring {

using harness::ImplProfile;
using protocol::Nanos;

struct MultiRingConfig {
  int rings = 2;           ///< K
  int nodes_per_ring = 8;  ///< logical nodes; each runs one engine per ring
  /// When non-empty, every ring's fabric is built from this multi-datacenter
  /// topology (one host per logical node; host count must equal
  /// nodes_per_ring). Empty = the classic single-switch fabric.
  simnet::Topology topology;
  simnet::FabricParams fabric = simnet::FabricParams::ten_gig();
  protocol::ProtocolConfig proto;
  ImplProfile profile = ImplProfile::kLibrary;
  uint32_t merge_batch = 16;               ///< M slots per ring per rotation
  Nanos skip_interval = util::usec(500);   ///< skip-daemon period
  uint64_t seed = 1;
  /// Rings initially owning hash space; 0 = all. Rings beyond this count
  /// still run (their skip daemons keep the merge rotating) but carry no
  /// keyed traffic until a migration moves ranges in — the "ring add under
  /// load" setup.
  int active_rings = 0;
  int vnodes = ShardMap::kDefaultVnodes;   ///< virtual nodes per ring
  Nanos migration_tick = util::usec(300);  ///< controller poll period
};

class RingSet {
 public:
  /// (node, ring, delivery, client-receipt time) — one merged emission.
  using MergedFn = std::function<void(int node, int ring,
                                      const protocol::Delivery& delivery,
                                      Nanos at)>;
  using ConfigFn = std::function<void(
      int node, int ring, const protocol::ConfigurationChange& change)>;

  explicit RingSet(const MultiRingConfig& cfg);

  /// Start all K rings on pre-agreed static membership and arm the skip
  /// daemons (the benchmark setup).
  void start_static();

  /// Submit to an explicit ring (callers that already routed).
  void submit(int node, int ring, protocol::Service service,
              std::vector<std::byte> payload);
  /// Submit under an arbitrary 64-bit stream id; the submitting node's
  /// ShardRouter picks the ring (the id is mixed, so small sequential ids
  /// still spread). During a migration, submissions for moving ranges are
  /// held from freeze to activation and then flushed to the destination.
  void submit_keyed(int node, uint64_t key, protocol::Service service,
                    std::vector<std::byte> payload);
  /// Submit under a name (group name / sender stream), sharded by hash.
  void submit_named(int node, std::string_view name, protocol::Service service,
                    std::vector<std::byte> payload);

  /// Begin a live migration (must have been planned against the current
  /// canonical map). Returns false — and changes nothing — if a migration is
  /// already in flight or the plan is empty/stale. Progress is driven by
  /// ordered markers plus a periodic controller tick; completion is visible
  /// via completed_migrations() and shards().version().
  bool start_migration(const MigrationPlan& plan);
  [[nodiscard]] bool migration_idle() const { return !plan_.has_value(); }
  [[nodiscard]] uint64_t completed_migrations() const {
    return completed_migrations_;
  }
  /// Keyed submissions currently held (all nodes) awaiting activation.
  [[nodiscard]] size_t held_messages() const;

  /// Test hook (check campaigns): on `node`, misroute one moving-key message
  /// to the *source* ring after its destination activated — the classic
  /// stale-map-epoch handoff bug the MergedOracle audit must catch.
  void inject_stale_flush(int node) { stale_flush_node_ = node; }

  void set_on_merged(MergedFn fn) { on_merged_ = std::move(fn); }
  /// Additional merged-stream observers, invoked before the primary callback
  /// on every merged emission (accumulate; used by the check oracles). The
  /// observers also see handoff markers; the primary callback — the
  /// application — does not (markers are protocol-internal, like skips).
  void add_on_merged(MergedFn fn) {
    merged_observers_.push_back(std::move(fn));
  }
  void set_on_config(ConfigFn fn);

  /// Fault injection: take logical node `node` down in every ring at once
  /// (one machine hosting K engines loses power). The node stays down.
  void crash_node(int node);
  [[nodiscard]] bool node_down(int node) const {
    return clusters_.front()->net().host_down(node);
  }

  void run_until(Nanos deadline) { eq_.run_until(deadline); }

  [[nodiscard]] simnet::EventQueue& eq() { return eq_; }
  /// The canonical shard map: advances when a migration completes.
  [[nodiscard]] const ShardMap& shards() const { return shards_; }
  [[nodiscard]] const ShardRouter& router(int node) const {
    return *routers_[static_cast<size_t>(node)];
  }
  [[nodiscard]] harness::SimCluster& ring(int r) { return *clusters_[r]; }
  [[nodiscard]] DeterministicMerger& merger(int node) {
    return *mergers_[node];
  }
  [[nodiscard]] int num_rings() const { return cfg_.rings; }
  [[nodiscard]] int nodes_per_ring() const { return cfg_.nodes_per_ring; }
  [[nodiscard]] const MultiRingConfig& config() const { return cfg_; }

  /// Per-ring cluster counters (ClusterStats per ring, in ring order).
  [[nodiscard]] std::vector<harness::ClusterStats> ring_stats() const;

  /// Attach metrics to every ring's engines and every node's merger (see
  /// SimCluster::enable_metrics; recording never perturbs the run).
  void enable_metrics();
  [[nodiscard]] bool metrics_enabled() const { return !node_metrics_.empty(); }
  /// Everything merged: all rings' engine registries plus all nodes' merger
  /// registries, in one aggregate.
  [[nodiscard]] obs::MetricsRegistry merged_metrics() const;

 private:
  struct Held {
    uint64_t key = 0;  ///< mixed
    protocol::Service service = protocol::Service::kAgreed;
    std::vector<std::byte> payload;
  };

  void skip_tick(int ring);
  void migration_tick();
  void flush_held(int node);
  void submit_marker(int ring, const MigrationMarker& marker);
  [[nodiscard]] int lowest_live_node() const;

  MultiRingConfig cfg_;
  simnet::EventQueue eq_;
  ShardMap shards_;
  std::vector<std::unique_ptr<harness::SimCluster>> clusters_;   // per ring
  std::vector<std::unique_ptr<DeterministicMerger>> mergers_;    // per node
  std::vector<std::unique_ptr<ShardRouter>> routers_;            // per node
  std::vector<std::vector<Held>> held_;                          // per node
  /// Per-node merger registries; empty until enable_metrics().
  std::vector<std::unique_ptr<obs::MetricsRegistry>> node_metrics_;
  std::vector<uint64_t> ordered_at_probe_;  ///< per ring: node-0 deliveries
  std::vector<uint64_t> skip_baseline_;     ///< ... at the last skip tick
  Nanos push_at_ = 0;  ///< receipt time of the delivery being merged
  MergedFn on_merged_;
  std::vector<MergedFn> merged_observers_;

  // Migration controller state.
  std::optional<MigrationPlan> plan_;  ///< in flight
  std::vector<char> drain_submitted_;  ///< per source ring
  bool activates_submitted_ = false;
  uint64_t completed_migrations_ = 0;
  std::vector<uint64_t> submitted_data_;  ///< per ring, via submit()
  std::vector<std::vector<uint64_t>> merged_data_;  ///< [node][ring], no markers
  int stale_flush_node_ = -1;  ///< inject_stale_flush target, -1 = off
  bool stale_flush_done_ = false;
};

}  // namespace accelring::multiring
