// Multi-ring assembly: K independent Accelerated Ring instances, sharded
// traffic, and a deterministic per-node merge of their delivery streams.
//
// The single-ring protocol's aggregate throughput is capped by one token
// rotation and one daemon's CPU. Following Multi-Ring Paxos, this subsystem
// runs K rings side by side: every logical node participates in all K rings
// (one engine per ring, each on its own virtual CPU — a daemon per core),
// every ring has its own switch fabric (its own multicast domain), and a
// ShardMap routes each ordering key to one ring. A DeterministicMerger at
// every node interleaves the K per-ring total orders into one combined total
// order that is identical at all nodes, so applications written against a
// single ordered stream (groups, RSM) run unchanged at K× the capacity.
//
// Liveness of the merge: node 0 of each ring arms a periodic skip daemon
// that orders a skip message whenever its ring moved fewer than one merge
// batch in the last interval, so an idle ring cannot stall the rotation
// (merger.hpp explains the rule).
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "harness/cluster.hpp"
#include "multiring/merger.hpp"
#include "multiring/shard_map.hpp"

namespace accelring::multiring {

using harness::ImplProfile;
using protocol::Nanos;

struct MultiRingConfig {
  int rings = 2;           ///< K
  int nodes_per_ring = 8;  ///< logical nodes; each runs one engine per ring
  /// When non-empty, every ring's fabric is built from this multi-datacenter
  /// topology (one host per logical node; host count must equal
  /// nodes_per_ring). Empty = the classic single-switch fabric.
  simnet::Topology topology;
  simnet::FabricParams fabric = simnet::FabricParams::ten_gig();
  protocol::ProtocolConfig proto;
  ImplProfile profile = ImplProfile::kLibrary;
  uint32_t merge_batch = 16;               ///< M slots per ring per rotation
  Nanos skip_interval = util::usec(500);   ///< skip-daemon period
  uint64_t seed = 1;
};

class RingSet {
 public:
  /// (node, ring, delivery, client-receipt time) — one merged emission.
  using MergedFn = std::function<void(int node, int ring,
                                      const protocol::Delivery& delivery,
                                      Nanos at)>;
  using ConfigFn = std::function<void(
      int node, int ring, const protocol::ConfigurationChange& change)>;

  explicit RingSet(const MultiRingConfig& cfg);

  /// Start all K rings on pre-agreed static membership and arm the skip
  /// daemons (the benchmark setup).
  void start_static();

  /// Submit to an explicit ring (callers that already routed).
  void submit(int node, int ring, protocol::Service service,
              std::vector<std::byte> payload);
  /// Submit under an arbitrary 64-bit stream id; the shard map picks the
  /// ring (the id is mixed, so small sequential ids still spread).
  void submit_keyed(int node, uint64_t key, protocol::Service service,
                    std::vector<std::byte> payload);
  /// Submit under a name (group name / sender stream), sharded by hash.
  void submit_named(int node, std::string_view name, protocol::Service service,
                    std::vector<std::byte> payload);

  void set_on_merged(MergedFn fn) { on_merged_ = std::move(fn); }
  /// Additional merged-stream observers, invoked before the primary callback
  /// on every merged emission (accumulate; used by the check oracles).
  void add_on_merged(MergedFn fn) {
    merged_observers_.push_back(std::move(fn));
  }
  void set_on_config(ConfigFn fn);

  /// Fault injection: take logical node `node` down in every ring at once
  /// (one machine hosting K engines loses power). The node stays down.
  void crash_node(int node);
  [[nodiscard]] bool node_down(int node) const {
    return clusters_.front()->net().host_down(node);
  }

  void run_until(Nanos deadline) { eq_.run_until(deadline); }

  [[nodiscard]] simnet::EventQueue& eq() { return eq_; }
  [[nodiscard]] const ShardMap& shards() const { return shards_; }
  [[nodiscard]] harness::SimCluster& ring(int r) { return *clusters_[r]; }
  [[nodiscard]] DeterministicMerger& merger(int node) {
    return *mergers_[node];
  }
  [[nodiscard]] int num_rings() const { return cfg_.rings; }
  [[nodiscard]] int nodes_per_ring() const { return cfg_.nodes_per_ring; }
  [[nodiscard]] const MultiRingConfig& config() const { return cfg_; }

  /// Per-ring cluster counters (ClusterStats per ring, in ring order).
  [[nodiscard]] std::vector<harness::ClusterStats> ring_stats() const;

  /// Attach metrics to every ring's engines and every node's merger (see
  /// SimCluster::enable_metrics; recording never perturbs the run).
  void enable_metrics();
  [[nodiscard]] bool metrics_enabled() const { return !node_metrics_.empty(); }
  /// Everything merged: all rings' engine registries plus all nodes' merger
  /// registries, in one aggregate.
  [[nodiscard]] obs::MetricsRegistry merged_metrics() const;

 private:
  void skip_tick(int ring);

  MultiRingConfig cfg_;
  simnet::EventQueue eq_;
  ShardMap shards_;
  std::vector<std::unique_ptr<harness::SimCluster>> clusters_;   // per ring
  std::vector<std::unique_ptr<DeterministicMerger>> mergers_;    // per node
  /// Per-node merger registries; empty until enable_metrics().
  std::vector<std::unique_ptr<obs::MetricsRegistry>> node_metrics_;
  std::vector<uint64_t> ordered_at_probe_;  ///< per ring: node-0 deliveries
  std::vector<uint64_t> skip_baseline_;     ///< ... at the last skip tick
  Nanos push_at_ = 0;  ///< receipt time of the delivery being merged
  MergedFn on_merged_;
  std::vector<MergedFn> merged_observers_;
};

}  // namespace accelring::multiring
