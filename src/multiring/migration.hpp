// Live shard migration: totally ordered handoff markers.
//
// Moving a hash range from ring S to ring D must not create a gap (a key's
// message lost between deliverers) or a dup (delivered by both), and every
// node must switch deliverers at the *same point* of its merged stream. The
// protocol gets both for free from total order itself: the handoff is driven
// by three marker messages that are ordered like any application message —
//
//   freeze(S, plan)  on each source ring    — stop *new* submissions for the
//                                             moving ranges (they are held);
//                                             carries the full plan, so every
//                                             node learns the moves from its
//                                             own merged stream
//   drain(S, v)      on each source ring    — the source's ownership of the
//                                             moving ranges is closed: every
//                                             message submitted to S for a
//                                             moving key is ordered before
//                                             this marker
//   activate(D, v)   on each destination    — destination ownership opens:
//                                             held submissions flush to D and
//                                             are ordered after this marker
//
// The controller (RingSet) submits drain only after every live node merged
// the freeze and the source ring's submitted-vs-merged counters agree, and
// submits activate only after it merged *all* drains. Because the merged
// order is a pure function of the per-ring streams, "drain before activate"
// at the controller implies the same order at every node — so each node's
// merger switches deliverers at an identical merged-stream position, with
// no coordination beyond the ordered markers themselves.
//
// This file defines the marker wire format (and the plan payload embedded in
// freeze markers); shard_router.hpp holds the per-node state machine and
// ring_set.cpp the controller.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "multiring/shard_map.hpp"

namespace accelring::multiring {

enum class MarkerKind : uint8_t {
  kFreeze = 1,
  kDrain = 2,
  kActivate = 3,
};

/// One handoff marker as it appears in an ordered stream. `ring` is the ring
/// the marker was submitted to: a source ring for freeze/drain, a
/// destination for activate. Only freeze markers carry the move list.
struct MigrationMarker {
  MarkerKind kind = MarkerKind::kFreeze;
  uint64_t version = 0;  ///< MigrationPlan::to_version
  int ring = 0;
  std::vector<MigrationMove> moves;  ///< freeze only; empty otherwise
};

/// Encode a marker payload. Layout (little-endian):
///   u8  tag (0x4D)         — outside every frame-type byte of the layers
///   u32 magic ("MRMG")       sharing ordered streams, like skip messages
///   u8  kind
///   u64 version
///   u8  ring
///   [freeze only] u16 n_moves, then per move: u64 lo, u64 hi, u8 src, u8 dst
[[nodiscard]] std::vector<std::byte> make_marker(const MigrationMarker& m);

/// Decode if `payload` is a handoff marker, nullopt otherwise. Exact-size
/// match like decode_skip: trailing bytes reject the payload.
[[nodiscard]] std::optional<MigrationMarker> decode_marker(
    std::span<const std::byte> payload);

}  // namespace accelring::multiring
