#include "multiring/merger.hpp"

#include "multiring/migration.hpp"
#include "util/bytes.hpp"

namespace accelring::multiring {

namespace {

// First bytes of a skip payload. Chosen to be outside every frame-type byte
// the layers sharing ordered streams use (groups: 1-3, rsm: 1-2), with a
// 32-bit magic on top so an application payload cannot collide by accident.
constexpr uint8_t kSkipTag = 0x5C;
constexpr uint32_t kSkipMagic = 0x4B52524Du;  // "MRRK"

}  // namespace

std::vector<std::byte> make_skip(uint32_t slots) {
  util::Writer w(9);
  w.u8(kSkipTag);
  w.u32(kSkipMagic);
  w.u32(slots);
  return std::move(w).take();
}

std::optional<uint32_t> decode_skip(std::span<const std::byte> payload) {
  if (payload.size() != 9) return std::nullopt;
  util::Reader r(payload);
  if (r.u8() != kSkipTag || r.u32() != kSkipMagic) return std::nullopt;
  const uint32_t slots = r.u32();
  if (!r.done()) return std::nullopt;
  return slots;
}

MergerMetrics MergerMetrics::bind(obs::MetricsRegistry& registry) {
  MergerMetrics m;
  m.merge_stall_ns = &registry.histogram("merger", "merge_stall_ns");
  m.merged = &registry.counter("merger", "merged");
  m.skip_msgs = &registry.counter("merger", "skip_msgs");
  m.skipped_slots = &registry.counter("merger", "skipped_slots");
  m.rotations = &registry.counter("merger", "rotations");
  m.handoff_markers = &registry.counter("merger", "handoff_markers");
  return m;
}

void DeterministicMerger::push(int ring, const protocol::Delivery& delivery) {
  queues_[static_cast<size_t>(ring)].push_back(delivery);
  pump();
}

void DeterministicMerger::pump() {
  auto* queue = &queues_[static_cast<size_t>(cursor_)];
  if (!queue->empty() && stall_started_ > 0) {
    // Head-of-line block resolved: the cursor ring finally ordered something
    // (a message or a skip) while other rings sat queued behind it.
    if (metrics_.merge_stall_ns != nullptr && clock_) {
      metrics_.merge_stall_ns->record(clock_() - stall_started_);
    }
    stall_started_ = 0;
  }
  while (!queue->empty()) {
    const protocol::Delivery d = std::move(queue->front());
    queue->pop_front();
    if (const auto slots = decode_skip(d.payload)) {
      trace(util::TraceEvent::kSkipMsg, cursor_, d.seq);
      ++stats_.skip_msgs;
      stats_.skipped_slots += *slots;
      credit_ += *slots;
      if (metrics_.skip_msgs != nullptr) metrics_.skip_msgs->inc();
      if (metrics_.skipped_slots != nullptr) {
        metrics_.skipped_slots->inc(*slots);
      }
    } else {
      trace(util::TraceEvent::kMergeDeliver, cursor_, d.seq);
      ++stats_.merged;
      credit_ += 1;
      if (metrics_.merged != nullptr) metrics_.merged->inc();
      // Handoff markers are ordinary merged data (one credit, emitted to the
      // subscriber like anything else), but the merger tracks the map epoch
      // they announce: after an activate marker, deliveries for the moved
      // ranges come from the new owner ring.
      if (const auto marker = decode_marker(d.payload)) {
        ++stats_.handoff_markers;
        if (metrics_.handoff_markers != nullptr) {
          metrics_.handoff_markers->inc();
        }
        if (marker->kind == MarkerKind::kActivate &&
            marker->version > map_version_) {
          map_version_ = marker->version;
        }
      }
      if (on_merged_) on_merged_(cursor_, d);
    }
    if (credit_ >= batch_) {
      // Burst complete (excess skip credit is discarded — identically at
      // every subscriber, so determinism is preserved).
      credit_ = 0;
      cursor_ = (cursor_ + 1) % num_rings();
      ++stats_.rotations;
      if (metrics_.rotations != nullptr) metrics_.rotations->inc();
      queue = &queues_[static_cast<size_t>(cursor_)];
    }
  }
  if (stall_started_ == 0 && metrics_.merge_stall_ns != nullptr && clock_) {
    // The cursor ring is dry; if any other ring has ordered output waiting,
    // a stall starts now and ends at the next consumable push.
    for (const auto& q : queues_) {
      if (!q.empty()) {
        stall_started_ = clock_();
        break;
      }
    }
  }
}

}  // namespace accelring::multiring
