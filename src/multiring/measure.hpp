// Multi-ring experiment driver: inject sharded load into a RingSet and
// measure the *merged* stream — the number an application sitting on top of
// K rings actually sees. Mirrors harness::run_point's methodology (warmup,
// measurement window, clean-payload throughput, injection-to-client latency)
// so single-ring and multi-ring numbers are directly comparable.
#pragma once

#include <memory>
#include <vector>

#include "multiring/ring_set.hpp"

namespace accelring::multiring {

struct MultiPointConfig {
  MultiRingConfig ring;
  protocol::Service service = protocol::Service::kAgreed;
  size_t payload_size = 1350;
  /// Aggregate clean payload Mbps across all senders and all rings.
  double offered_mbps = 1000.0;
  /// Distinct ordering keys per sender; messages round-robin across them and
  /// the shard map spreads the keys over rings (models many groups).
  int streams_per_node = 32;
  Nanos warmup = util::msec(100);
  Nanos measure = util::msec(300);
};

struct MultiPointResult {
  double offered_mbps = 0;
  double merged_mbps = 0;  ///< clean payload through one node's merger (mean)
  Nanos mean_latency = 0;  ///< injection -> merged client receipt
  Nanos p50_latency = 0;
  Nanos p90_latency = 0;
  Nanos p99_latency = 0;
  Nanos p999_latency = 0;
  Nanos max_latency = 0;
  uint64_t messages = 0;         ///< merged messages inside the window (node 0)
  uint64_t skip_msgs = 0;        ///< skips consumed by node 0's merger
  uint64_t retransmits = 0;      ///< data retransmissions, all rings
  uint64_t buffer_drops = 0;     ///< switch drops, all rings
  uint64_t submit_rejected = 0;  ///< backpressure, all rings
  double max_cpu_utilization = 0;          ///< busiest engine CPU, all rings
  std::vector<double> per_ring_mbps;       ///< ring share of the merged stream
  /// Aggregate registry: every ring's engine metrics plus every node's merger
  /// metrics, plus the merged-stream latency histogram under
  /// ("harness", "delivery_latency_ns"). Mirrors harness::PointResult.
  std::shared_ptr<const obs::MetricsRegistry> metrics;
};

/// Run one multi-ring point: K rings, sharded fixed-rate injection, merged
/// delivery measurement.
[[nodiscard]] MultiPointResult run_multiring_point(
    const MultiPointConfig& config);

/// Print one K-sweep row set (the fig_multiring_scaling output format).
void print_multiring_row(int rings, const MultiPointResult& r,
                         double baseline_mbps);

}  // namespace accelring::multiring
