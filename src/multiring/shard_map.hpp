// Shard map: assigns ordering keys (group names, sender streams) to rings.
//
// The multi-ring subsystem runs K independent Accelerated Ring instances and
// multiplies aggregate throughput by spreading disjoint traffic across them
// (Multi-Ring Paxos; Benz et al., "Stretching Multi-Ring Paxos"). The shard
// map is the routing half of that design: a 64-bit hash ring split into K
// contiguous, equal ranges, one per protocol ring. A key is hashed once and
// the owning ring found by range lookup, so everything that must stay
// FIFO-ordered relative to itself (one group, one sender stream) lands on one
// ring, while unrelated keys spread uniformly across all K.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

namespace accelring::multiring {

/// splitmix64 finalizer: turns small sequential stream ids into uniform
/// 64-bit keys before the range lookup (a raw counter would always land in
/// ring 0's range).
[[nodiscard]] constexpr uint64_t mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// FNV-1a 64-bit; stable across platforms so shard assignment is part of the
/// deployment contract (every node must route a group to the same ring).
[[nodiscard]] constexpr uint64_t fnv1a(std::string_view s) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : s) {
    h ^= static_cast<uint8_t>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

class ShardMap {
 public:
  /// Inclusive range of the 64-bit hash space owned by one ring.
  struct Range {
    uint64_t lo = 1;
    uint64_t hi = 0;  // default-constructed range matches nothing

    [[nodiscard]] bool contains(uint64_t id) const {
      return lo <= id && id <= hi;
    }
  };

  explicit ShardMap(int num_rings);

  /// Ring owning a raw 64-bit key.
  [[nodiscard]] int ring_of_key(uint64_t key) const;
  /// Ring owning a named entity (group name, sender name). The FNV hash is
  /// finalized with mix64: FNV-1a concentrates its avalanche in the low bits
  /// while the range lookup keys off the high bits.
  [[nodiscard]] int ring_of(std::string_view name) const {
    return ring_of_key(mix64(fnv1a(name)));
  }

  [[nodiscard]] int num_rings() const {
    return static_cast<int>(ranges_.size());
  }
  [[nodiscard]] const Range& range_of(int ring) const { return ranges_[ring]; }

 private:
  std::vector<Range> ranges_;
};

}  // namespace accelring::multiring
