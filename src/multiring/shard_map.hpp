// Shard map: assigns ordering keys (group names, sender streams) to rings.
//
// The multi-ring subsystem runs K independent Accelerated Ring instances and
// multiplies aggregate throughput by spreading disjoint traffic across them
// (Multi-Ring Paxos; Benz et al., "Stretching Multi-Ring Paxos"). The shard
// map is the routing half of that design — and, since the map can now change
// while traffic flows, it is *versioned*: a consistent hash ring places a
// fixed set of virtual-node points per protocol ring on the 64-bit circle,
// each point owning the wrap-around arc that ends at it. A key is hashed once
// and the owning ring found by successor lookup, so everything that must stay
// FIFO-ordered relative to itself (one group, one sender stream) lands on one
// ring, while unrelated keys spread uniformly across all active rings.
//
// Elasticity is ownership-only: the set of provisioned rings K is fixed at
// construction, but which rings own hash space changes over time. "Adding" a
// ring inserts its canonical virtual-node points (stealing the arcs they cut),
// "removing" one erases its points (ceding each arc to its clockwise
// successor), and rebalancing reassigns individual points. Every such change
// is described by a MigrationPlan — the exact set of (range, src, dst) moves
// plus the complete successor point set — which the live-migration protocol
// (migration.hpp) turns into totally ordered freeze/drain/activate markers.
// apply() installs the plan and bumps the version; two maps that applied the
// same plan sequence are byte-identical, so the version number alone names
// the routing epoch on the wire.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

namespace accelring::multiring {

/// splitmix64 finalizer: turns small sequential stream ids into uniform
/// 64-bit keys before the arc lookup (a raw counter would always land in
/// one point's arc).
[[nodiscard]] constexpr uint64_t mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// FNV-1a 64-bit; stable across platforms so shard assignment is part of the
/// deployment contract (every node must route a group to the same ring).
[[nodiscard]] constexpr uint64_t fnv1a(std::string_view s) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : s) {
    h ^= static_cast<uint8_t>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

struct MigrationPlan;

class ShardMap {
 public:
  /// Inclusive range of the 64-bit hash space owned by one ring.
  struct Range {
    uint64_t lo = 1;
    uint64_t hi = 0;  // default-constructed range matches nothing

    [[nodiscard]] bool contains(uint64_t id) const {
      return lo <= id && id <= hi;
    }
    [[nodiscard]] bool operator==(const Range& o) const {
      return lo == o.lo && hi == o.hi;
    }
  };

  /// One virtual-node point on the hash circle. The point owns the arc
  /// (previous point, at], wrapping past 2^64-1 for the first point.
  struct Point {
    uint64_t at = 0;
    int ring = 0;

    [[nodiscard]] bool operator==(const Point& o) const {
      return at == o.at && ring == o.ring;
    }
  };

  /// Virtual nodes per ring. Enough that the largest ownership share stays
  /// within ~2x of ideal (the fuzz test pins the bound) and a 4-ring map
  /// gives every ring a usable share of a few hundred keys.
  static constexpr int kDefaultVnodes = 64;

  /// All `num_rings` rings own hash space (the classic static split).
  explicit ShardMap(int num_rings);
  /// `num_rings` rings are provisioned as routing targets but only the first
  /// `active_rings` own hash space; the rest join later via plan_add_ring
  /// (the elastic "ring add under load" setup).
  ShardMap(int num_rings, int vnodes_per_ring, int active_rings);

  /// Ring owning a raw 64-bit key.
  [[nodiscard]] int ring_of_key(uint64_t key) const;
  /// Ring owning a named entity (group name, sender name). The FNV hash is
  /// finalized with mix64: FNV-1a concentrates its avalanche in the low bits
  /// while the arc lookup needs uniform placement on the whole circle.
  [[nodiscard]] int ring_of(std::string_view name) const {
    return ring_of_key(mix64(fnv1a(name)));
  }

  [[nodiscard]] int num_rings() const { return num_rings_; }
  [[nodiscard]] int vnodes_per_ring() const { return vnodes_; }
  /// Routing epoch: 0 at construction, +1 per applied plan. Two nodes with
  /// equal versions (and the same plan history) route identically.
  [[nodiscard]] uint64_t version() const { return version_; }
  /// True when the ring currently owns at least one arc.
  [[nodiscard]] bool ring_active(int ring) const;
  [[nodiscard]] int active_rings() const;

  /// Every (non-wrapping) inclusive range the ring owns, sorted by lo.
  /// The union over all rings tiles [0, 2^64-1] exactly.
  [[nodiscard]] std::vector<Range> ranges_of(int ring) const;
  /// Fraction of the hash space the ring owns, in [0, 1].
  [[nodiscard]] double owned_fraction(int ring) const;
  [[nodiscard]] const std::vector<Point>& points() const { return points_; }

  /// Plan inserting `ring`'s canonical points (no-op plan if already
  /// active). Sources are the rings whose arcs the new points cut.
  [[nodiscard]] MigrationPlan plan_add_ring(int ring) const;
  /// Plan erasing `ring`'s points; each arc goes to its clockwise successor
  /// (no-op plan if inactive or it is the last active ring).
  [[nodiscard]] MigrationPlan plan_remove_ring(int ring) const;
  /// Plan reassigning ~`fraction` of `src`'s points to `dst` (at least one;
  /// no-op plan if src owns nothing or src == dst). dst need not be active:
  /// moving arcs into an inactive ring activates it.
  [[nodiscard]] MigrationPlan plan_move_fraction(int src, int dst,
                                                 double fraction) const;

  /// Install a plan produced by this map at its current version. Empty and
  /// stale plans (from_version mismatch — replays, other epochs) are
  /// ignored; otherwise the point set is replaced and version() bumps.
  void apply(const MigrationPlan& plan);

  /// Canonical circle position of virtual node `v` of `ring` — a pure
  /// function, so re-adding a removed ring restores its exact arcs.
  [[nodiscard]] static uint64_t vnode_point(int ring, int v);

 private:
  [[nodiscard]] MigrationPlan diff_plan(std::vector<Point> next) const;
  static int owner_in(const std::vector<Point>& points, uint64_t key);

  int num_rings_ = 1;
  int vnodes_ = kDefaultVnodes;
  uint64_t version_ = 0;
  std::vector<Point> points_;  ///< sorted by at, unique
};

/// One contiguous hash range changing owner: deliveries for keys in `range`
/// switch from ring `src` to ring `dst` when the plan's handoff completes.
struct MigrationMove {
  ShardMap::Range range;
  int src = 0;
  int dst = 0;

  [[nodiscard]] bool operator==(const MigrationMove& o) const {
    return range == o.range && src == o.src && dst == o.dst;
  }
};

/// A complete map transition: every move, plus the successor point set that
/// apply() installs. from/to_version pin the plan to one routing epoch so a
/// stale plan can never be applied twice.
struct MigrationPlan {
  uint64_t from_version = 0;
  uint64_t to_version = 0;
  std::vector<MigrationMove> moves;
  std::vector<ShardMap::Point> points;

  [[nodiscard]] bool empty() const { return moves.empty(); }
  /// Distinct source rings, ascending (the rings that freeze + drain).
  [[nodiscard]] std::vector<int> sources() const;
  /// Distinct destination rings, ascending (the rings that activate).
  [[nodiscard]] std::vector<int> dests() const;
  /// The move containing `key`, or nullptr if the key does not migrate.
  [[nodiscard]] const MigrationMove* move_of(uint64_t key) const;
};

}  // namespace accelring::multiring
