#include "multiring/migration.hpp"

#include "util/bytes.hpp"

namespace accelring::multiring {

namespace {

// Tag byte + magic chosen like the skip message's: outside the frame-type
// bytes of the group/rsm layers and backed by a 32-bit magic, so an
// application payload cannot collide by accident.
constexpr uint8_t kMarkerTag = 0x4D;
constexpr uint32_t kMarkerMagic = 0x474d524du;  // "MRMG"

}  // namespace

std::vector<std::byte> make_marker(const MigrationMarker& m) {
  util::Writer w(15 + 18 * m.moves.size() + 2);
  w.u8(kMarkerTag);
  w.u32(kMarkerMagic);
  w.u8(static_cast<uint8_t>(m.kind));
  w.u64(m.version);
  w.u8(static_cast<uint8_t>(m.ring));
  if (m.kind == MarkerKind::kFreeze) {
    w.u16(static_cast<uint16_t>(m.moves.size()));
    for (const MigrationMove& mv : m.moves) {
      w.u64(mv.range.lo);
      w.u64(mv.range.hi);
      w.u8(static_cast<uint8_t>(mv.src));
      w.u8(static_cast<uint8_t>(mv.dst));
    }
  }
  return std::move(w).take();
}

std::optional<MigrationMarker> decode_marker(
    std::span<const std::byte> payload) {
  if (payload.size() < 15) return std::nullopt;
  util::Reader r(payload);
  if (r.u8() != kMarkerTag || r.u32() != kMarkerMagic) return std::nullopt;
  MigrationMarker m;
  const uint8_t kind = r.u8();
  if (kind < 1 || kind > 3) return std::nullopt;
  m.kind = static_cast<MarkerKind>(kind);
  m.version = r.u64();
  m.ring = r.u8();
  if (m.kind == MarkerKind::kFreeze) {
    const uint16_t n = r.u16();
    m.moves.reserve(n);
    for (uint16_t i = 0; i < n; ++i) {
      MigrationMove mv;
      mv.range.lo = r.u64();
      mv.range.hi = r.u64();
      mv.src = r.u8();
      mv.dst = r.u8();
      m.moves.push_back(mv);
    }
  }
  if (!r.done()) return std::nullopt;
  return m;
}

}  // namespace accelring::multiring
