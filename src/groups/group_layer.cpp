#include "groups/group_layer.hpp"

#include <algorithm>
#include <set>

#include "util/bytes.hpp"

namespace accelring::groups {

namespace {

void write_member(util::Writer& w, const Member& m) {
  w.u16(m.daemon);
  w.u32(m.client);
  w.str(m.name);
}

Member read_member(util::Reader& r) {
  Member m;
  m.daemon = r.u16();
  m.client = r.u32();
  m.name = r.str();
  return m;
}

}  // namespace

std::vector<std::byte> encode(const GroupMsg& msg) {
  util::Writer w(64 + msg.payload.size());
  w.u8(static_cast<uint8_t>(msg.op));
  write_member(w, msg.origin);
  w.u8(static_cast<uint8_t>(msg.groups.size()));
  for (const auto& g : msg.groups) w.str(g);
  w.bytes(msg.payload);
  return std::move(w).take();
}

std::optional<GroupMsg> decode_group(std::span<const std::byte> packet) {
  util::Reader r(packet);
  GroupMsg msg;
  const uint8_t op = r.u8();
  if (op < 1 || op > 3) return std::nullopt;
  msg.op = static_cast<GroupOp>(op);
  msg.origin = read_member(r);
  const uint8_t n = r.u8();
  for (uint8_t i = 0; i < n && r.ok(); ++i) msg.groups.push_back(r.str());
  msg.payload = util::to_vector(r.bytes());
  if (!r.done()) return std::nullopt;
  return msg;
}

size_t GroupLayer::ring_for(std::string_view group) const {
  if (!route_ || submits_.size() == 1) return 0;
  const int ring = route_(group);
  return ring >= 0 && static_cast<size_t>(ring) < submits_.size()
             ? static_cast<size_t>(ring)
             : 0;
}

bool GroupLayer::submit_to_ring(size_t ring, Service service,
                                std::vector<std::byte> payload) {
  return submits_[ring](service, std::move(payload));
}

bool GroupLayer::submit_for_group(std::string_view group, Service service,
                                  std::vector<std::byte> payload) {
  if (keyed_submit_) return keyed_submit_(group, service, std::move(payload));
  return submit_to_ring(ring_for(group), service, std::move(payload));
}

bool GroupLayer::join(uint32_t client, const std::string& name,
                      const std::string& group) {
  GroupMsg msg;
  msg.op = GroupOp::kJoin;
  msg.origin = Member{self_, client, name};
  msg.groups = {group};
  return submit_for_group(group, Service::kAgreed, encode(msg));
}

bool GroupLayer::leave(uint32_t client, const std::string& name,
                       const std::string& group) {
  GroupMsg msg;
  msg.op = GroupOp::kLeave;
  msg.origin = Member{self_, client, name};
  msg.groups = {group};
  return submit_for_group(group, Service::kAgreed, encode(msg));
}

bool GroupLayer::send(uint32_t client, const std::string& name,
                      const std::vector<std::string>& target_groups,
                      Service service, std::vector<std::byte> payload) {
  if (target_groups.empty() || target_groups.size() > 255) return false;
  GroupMsg msg;
  msg.op = GroupOp::kAppMessage;
  msg.origin = Member{self_, client, name};
  msg.groups = target_groups;
  msg.payload = std::move(payload);
  // Multi-group sends route by the lowest destination name so every sender
  // picks the same ring for the same group set; the deterministic merge
  // fixes the message's position relative to the other rings' traffic.
  const std::string& anchor =
      *std::min_element(target_groups.begin(), target_groups.end());
  return submit_for_group(anchor, service, encode(msg));
}

bool GroupLayer::disconnect(uint32_t client, const std::string& name) {
  GroupMsg msg;
  msg.op = GroupOp::kLeave;
  msg.origin = Member{self_, client, name};
  // Empty group list means "leave everything". The client may hold
  // memberships sharded across every ring, so fan the leave-all out to all
  // of them (GroupSet::drop_client is idempotent).
  bool ok = true;
  for (size_t ring = 0; ring < submits_.size(); ++ring) {
    ok = submit_to_ring(ring, Service::kAgreed, encode(msg)) && ok;
  }
  return ok;
}

void GroupLayer::on_delivery(const protocol::Delivery& delivery) {
  const auto msg = decode_group(delivery.payload);
  if (!msg) return;
  switch (msg->op) {
    case GroupOp::kJoin: {
      if (msg->groups.size() != 1) return;
      if (auto view = set_.join(msg->groups[0], msg->origin)) {
        emit_view(*view);
      }
      break;
    }
    case GroupOp::kLeave: {
      if (msg->groups.empty()) {
        emit_views(set_.drop_client(msg->origin.daemon, msg->origin.client));
      } else if (auto view = set_.leave(msg->groups[0], msg->origin)) {
        emit_view(*view);
      }
      break;
    }
    case GroupOp::kAppMessage: {
      // Resolve local recipients: each local client receives one copy even
      // if it belongs to several destination groups (multi-group multicast).
      std::set<uint32_t> seen;
      for (const std::string& group : msg->groups) {
        for (const Member& m : set_.members_of(group)) {
          if (m.daemon != self_) continue;
          if (!seen.insert(m.client).second) continue;
          if (on_message_) {
            on_message_(m.client, group, msg->origin.name, delivery.service,
                        msg->payload);
          }
        }
      }
      break;
    }
  }
}

void GroupLayer::on_configuration(const protocol::ConfigurationChange& change) {
  if (change.transitional) return;
  std::set<protocol::ProcessId> alive(change.config.members.begin(),
                                      change.config.members.end());
  emit_views(set_.retain_daemons(alive));
}

void GroupLayer::emit_views(const std::vector<GroupView>& views) {
  for (const GroupView& v : views) emit_view(v);
}

void GroupLayer::emit_view(const GroupView& view) {
  if (!on_view_) return;
  for (const Member& m : view.members) {
    if (m.daemon == self_) on_view_(m.client, view);
  }
}

}  // namespace accelring::groups
