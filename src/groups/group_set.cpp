#include "groups/group_set.hpp"

namespace accelring::groups {

GroupView GroupSet::snapshot(const std::string& name, Group& g) {
  GroupView view;
  view.group = name;
  view.view_id = ++g.view_id;
  view.members.assign(g.members.begin(), g.members.end());
  return view;
}

std::optional<GroupView> GroupSet::join(const std::string& group,
                                        const Member& m) {
  Group& g = groups_[group];
  if (!g.members.insert(m).second) return std::nullopt;
  return snapshot(group, g);
}

std::optional<GroupView> GroupSet::leave(const std::string& group,
                                         const Member& m) {
  const auto it = groups_.find(group);
  if (it == groups_.end()) return std::nullopt;
  if (it->second.members.erase(m) == 0) return std::nullopt;
  GroupView view = snapshot(group, it->second);
  if (it->second.members.empty()) groups_.erase(it);
  return view;
}

std::vector<GroupView> GroupSet::retain_daemons(
    const std::set<ProcessId>& alive) {
  std::vector<GroupView> views;
  for (auto it = groups_.begin(); it != groups_.end();) {
    Group& g = it->second;
    bool changed = false;
    for (auto mit = g.members.begin(); mit != g.members.end();) {
      if (!alive.contains(mit->daemon)) {
        mit = g.members.erase(mit);
        changed = true;
      } else {
        ++mit;
      }
    }
    if (changed) views.push_back(snapshot(it->first, g));
    if (g.members.empty()) {
      it = groups_.erase(it);
    } else {
      ++it;
    }
  }
  return views;
}

std::vector<GroupView> GroupSet::drop_client(ProcessId daemon,
                                             uint32_t client) {
  std::vector<GroupView> views;
  for (auto it = groups_.begin(); it != groups_.end();) {
    Group& g = it->second;
    bool changed = false;
    for (auto mit = g.members.begin(); mit != g.members.end();) {
      if (mit->daemon == daemon && mit->client == client) {
        mit = g.members.erase(mit);
        changed = true;
      } else {
        ++mit;
      }
    }
    if (changed) views.push_back(snapshot(it->first, g));
    if (g.members.empty()) {
      it = groups_.erase(it);
    } else {
      ++it;
    }
  }
  return views;
}

std::vector<Member> GroupSet::members_of(const std::string& group) const {
  const auto it = groups_.find(group);
  if (it == groups_.end()) return {};
  return {it->second.members.begin(), it->second.members.end()};
}

bool GroupSet::contains(const std::string& group, const Member& m) const {
  const auto it = groups_.find(group);
  return it != groups_.end() && it->second.members.contains(m);
}

std::vector<std::string> GroupSet::group_names() const {
  std::vector<std::string> names;
  names.reserve(groups_.size());
  for (const auto& [name, g] : groups_) names.push_back(name);
  return names;
}

}  // namespace accelring::groups
