// The Spread-style group communication layer.
//
// Sits between the ordering engine and client sessions. All group events
// (join, leave, application messages) travel as payloads of ordered engine
// messages, so every daemon applies them in the same total order and all
// daemons' group views agree — the classic trick of bootstrapping group
// membership consistency from totally ordered multicast.
//
// Provides the features the paper credits for Spread's production success
// (§I): descriptive group and sender names, open-group semantics (a sender
// need not be a member), many groups over one daemon set, and multi-group
// multicast with ordering guarantees across groups (one ordered message
// listing several destination groups is delivered at every daemon in the
// same position relative to all other messages, whatever groups they target).
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "groups/group_set.hpp"
#include "protocol/engine.hpp"

namespace accelring::groups {

using protocol::Service;

/// Group-layer events carried inside ordered engine payloads.
enum class GroupOp : uint8_t {
  kAppMessage = 1,
  kJoin = 2,
  kLeave = 3,
};

struct GroupMsg {
  GroupOp op = GroupOp::kAppMessage;
  Member origin;                     ///< sending client (join/leave subject)
  std::vector<std::string> groups;   ///< destination groups (1+ for sends)
  std::vector<std::byte> payload;    ///< application data (kAppMessage only)
};

[[nodiscard]] std::vector<std::byte> encode(const GroupMsg& msg);
[[nodiscard]] std::optional<GroupMsg> decode_group(
    std::span<const std::byte> packet);

/// Per-daemon group logic. The daemon forwards engine deliveries and
/// configuration changes in; the layer calls back with what each local
/// client should see.
///
/// The layer can sit on a single ordered ring (the classic assembly) or on K
/// sharded rings merged deterministically (src/multiring): in multi-ring
/// mode every group's events are routed to the group's shard ring, so a
/// group stays internally ordered on one ring, while cross-group positions
/// are fixed — identically at every daemon — by the merge. on_delivery must
/// then be fed from the merged stream.
class GroupLayer {
 public:
  /// (local client id, view) — group membership notification.
  using ViewFn = std::function<void(uint32_t client, const GroupView& view)>;
  /// (local client id, group, sender name, service, payload).
  using MessageFn = std::function<void(
      uint32_t client, const std::string& group, const std::string& sender,
      Service service, std::span<const std::byte> payload)>;
  /// Submits one ordered message to a specific ring's stream.
  using SubmitFn = std::function<bool(Service, std::vector<std::byte>)>;
  /// Maps a group name to the ring that orders it (e.g. ShardMap::ring_of).
  using RouteFn = std::function<int(std::string_view group)>;
  /// Submits one ordered message under a group-name routing key; the
  /// substrate picks the ring (e.g. RingSet::submit_named, whose per-node
  /// ShardRouter holds messages for migrating ranges across a handoff).
  using KeyedSubmitFn = std::function<bool(std::string_view group, Service,
                                           std::vector<std::byte>)>;

  /// Single-ring assembly: everything is ordered by one engine.
  GroupLayer(protocol::ProcessId self, protocol::Engine& engine)
      : self_(self) {
    submits_.push_back([&engine](Service service,
                                 std::vector<std::byte> payload) {
      return engine.submit(service, std::move(payload));
    });
  }

  /// Multi-ring assembly: `ring_submits[i]` feeds ring i and `route` assigns
  /// groups to rings. Multi-group sends go to the lowest destination group's
  /// ring (deterministic whatever order the caller lists the groups);
  /// leave-all disconnects fan out to every ring.
  GroupLayer(protocol::ProcessId self, std::vector<SubmitFn> ring_submits,
             RouteFn route)
      : self_(self), submits_(std::move(ring_submits)),
        route_(std::move(route)) {}

  /// Elastic multi-ring assembly: routing lives in the substrate's versioned
  /// ShardRouter (RingSet::submit_named), so group->ring ownership migrates
  /// live under the layer — sends for a moving group are held across the
  /// handoff and flushed to the new ring, with no layer involvement. The
  /// per-ring submits remain for the operations that must reach *every*
  /// ring regardless of ownership (leave-all disconnects).
  GroupLayer(protocol::ProcessId self, std::vector<SubmitFn> ring_submits,
             KeyedSubmitFn keyed_submit)
      : self_(self), submits_(std::move(ring_submits)),
        keyed_submit_(std::move(keyed_submit)) {}

  void set_on_view(ViewFn fn) { on_view_ = std::move(fn); }
  void set_on_message(MessageFn fn) { on_message_ = std::move(fn); }

  // --- client-initiated operations (called by the daemon) -------------------
  bool join(uint32_t client, const std::string& name,
            const std::string& group);
  bool leave(uint32_t client, const std::string& name,
             const std::string& group);
  /// Open-group multi-group send (sender need not belong to any group).
  bool send(uint32_t client, const std::string& name,
            const std::vector<std::string>& groups, Service service,
            std::vector<std::byte> payload);
  /// Client disconnect: leave everything (driven locally by each daemon from
  /// the ordered stream via a leave-all message).
  bool disconnect(uint32_t client, const std::string& name);

  // --- engine-side events ----------------------------------------------------
  /// An ordered message was delivered by the engine.
  void on_delivery(const protocol::Delivery& delivery);
  /// A regular configuration was installed (drop members of dead daemons).
  void on_configuration(const protocol::ConfigurationChange& change);

  /// Local registry so the layer knows which local clients are in a group
  /// (receivers are resolved locally; remote clients are their own daemons'
  /// concern).
  [[nodiscard]] const GroupSet& groups() const { return set_; }

 private:
  void emit_views(const std::vector<GroupView>& views);
  void emit_view(const GroupView& view);
  /// Ring that orders `group` (always 0 in the single-ring assembly).
  [[nodiscard]] size_t ring_for(std::string_view group) const;
  bool submit_to_ring(size_t ring, Service service,
                      std::vector<std::byte> payload);
  /// Route by group name: the substrate's router in elastic mode, the
  /// static RouteFn otherwise.
  bool submit_for_group(std::string_view group, Service service,
                        std::vector<std::byte> payload);

  protocol::ProcessId self_;
  std::vector<SubmitFn> submits_;  ///< one per ring
  RouteFn route_;                  ///< unset => single ring
  KeyedSubmitFn keyed_submit_;     ///< set => substrate-routed (elastic)
  GroupSet set_;
  ViewFn on_view_;
  MessageFn on_message_;
};

}  // namespace accelring::groups
