// Group membership bookkeeping (the data model behind Spread-style groups).
//
// A group is a named set of members; a member is a client identified by
// (daemon pid, local client id, name). GroupSet is pure state: it applies
// join/leave/daemon-partition events and answers queries. Consistency across
// daemons comes from the ordering layer — every daemon applies the same
// totally-ordered stream of group events to its own GroupSet, so all views
// agree (groups/group_layer.hpp wires that up).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "protocol/types.hpp"

namespace accelring::groups {

using protocol::ProcessId;

/// A client endpoint within the deployment.
struct Member {
  ProcessId daemon = 0;   ///< pid of the daemon the client is connected to
  uint32_t client = 0;    ///< daemon-local client session id
  std::string name;       ///< private name ("#user#daemon3")

  auto operator<=>(const Member&) const = default;
};

/// Immutable snapshot of one group's membership, tagged with a view id that
/// increments on every change (delivered to clients as a membership view).
struct GroupView {
  std::string group;
  uint64_t view_id = 0;
  std::vector<Member> members;
};

class GroupSet {
 public:
  /// Apply a join; returns the new view, or nullopt if it was a no-op
  /// (member already present).
  std::optional<GroupView> join(const std::string& group, const Member& m);

  /// Apply a leave; returns the new view (empty view if the group vanished),
  /// or nullopt if the member was not in the group.
  std::optional<GroupView> leave(const std::string& group, const Member& m);

  /// Remove every member whose daemon is not in `alive` (daemon-level
  /// membership change). Returns a view per modified group.
  std::vector<GroupView> retain_daemons(const std::set<ProcessId>& alive);

  /// Remove every member registered by (daemon, client) — client disconnect.
  std::vector<GroupView> drop_client(ProcessId daemon, uint32_t client);

  [[nodiscard]] std::vector<Member> members_of(const std::string& group) const;
  [[nodiscard]] bool contains(const std::string& group,
                              const Member& m) const;
  [[nodiscard]] size_t group_count() const { return groups_.size(); }
  [[nodiscard]] std::vector<std::string> group_names() const;

 private:
  struct Group {
    uint64_t view_id = 0;
    std::set<Member> members;
  };

  GroupView snapshot(const std::string& name, Group& g);

  std::map<std::string, Group> groups_;
};

}  // namespace accelring::groups
