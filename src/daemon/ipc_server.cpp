#include "daemon/ipc_server.hpp"

#include <fcntl.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>
#include <stdexcept>

#include "util/log.hpp"

namespace accelring::daemon {

namespace {

constexpr const char* kTag = "ipc";

sockaddr_un make_addr(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    throw std::runtime_error("socket path too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

}  // namespace

// ---------------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------------

IpcServer::IpcServer(Daemon& daemon, transport::EventLoop& loop,
                     std::string socket_path)
    : daemon_(daemon), loop_(loop), path_(std::move(socket_path)) {
  listen_fd_ = ::socket(AF_UNIX, SOCK_SEQPACKET, 0);
  if (listen_fd_ < 0) throw std::runtime_error("socket(AF_UNIX) failed");
  ::unlink(path_.c_str());
  sockaddr_un addr = make_addr(path_);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(listen_fd_);
    throw std::runtime_error("bind failed on " + path_);
  }
  if (::listen(listen_fd_, 16) != 0) {
    ::close(listen_fd_);
    throw std::runtime_error("listen failed on " + path_);
  }
  set_nonblocking(listen_fd_);
  loop_.add_fd(listen_fd_, [this] { on_accept(); });
}

IpcServer::~IpcServer() {
  for (auto& [fd, conn] : conns_) {
    loop_.remove_fd(fd);
    ::close(fd);
  }
  if (listen_fd_ >= 0) {
    loop_.remove_fd(listen_fd_);
    ::close(listen_fd_);
    ::unlink(path_.c_str());
  }
}

void IpcServer::on_accept() {
  const int fd = ::accept(listen_fd_, nullptr, nullptr);
  if (fd < 0) return;
  set_nonblocking(fd);
  conns_[fd] = Connection{fd, 0};
  loop_.add_fd(fd, [this, fd] { on_readable(fd); });
}

void IpcServer::send_event(int fd, const DaemonEvent& event) {
  const auto frame = encode(event);
  ::send(fd, frame.data(), frame.size(), MSG_NOSIGNAL);
}

void IpcServer::on_readable(int fd) {
  std::byte buf[65536];
  while (true) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), MSG_DONTWAIT);
    if (n == 0) {
      close_connection(fd);
      return;
    }
    if (n < 0) return;  // EAGAIN: drained
    const auto it = conns_.find(fd);
    if (it == conns_.end()) return;
    const auto request = decode_request(
        std::span<const std::byte>(buf, static_cast<size_t>(n)));
    if (!request) continue;

    if (request->op == RequestOp::kConnect) {
      // Build a session whose callbacks serialize events back to this fd.
      Session session;
      session.name = request->name;
      session.on_message = [this, fd](const std::string& group,
                                      const std::string& sender,
                                      Service service,
                                      std::span<const std::byte> payload) {
        DaemonEvent ev;
        ev.op = EventOp::kMessage;
        ev.group = group;
        ev.sender = sender;
        ev.service = service;
        ev.payload.assign(payload.begin(), payload.end());
        send_event(fd, ev);
      };
      session.on_view = [this, fd](const groups::GroupView& view) {
        DaemonEvent ev;
        ev.op = EventOp::kView;
        ev.group = view.group;
        ev.view_id = view.view_id;
        for (const auto& m : view.members) ev.members.push_back(m.name);
        send_event(fd, ev);
      };
      session.on_flow = [this, fd](bool slowed) {
        DaemonEvent ev;
        ev.op = slowed ? EventOp::kSlowdown : EventOp::kResume;
        send_event(fd, ev);
      };
      session.on_membership =
          [this, fd](const protocol::ConfigurationChange& change) {
            DaemonEvent ev;
            ev.op = EventOp::kMembership;
            ev.view_id = change.config.ring_id;
            ev.service = change.transitional ? Service::kReliable
                                             : Service::kAgreed;
            for (const auto member : change.config.members) {
              ev.members.push_back(std::to_string(member));
            }
            send_event(fd, ev);
          };
      it->second.client = daemon_.connect(std::move(session));
      DaemonEvent ack;
      ack.op = EventOp::kConnected;
      ack.client = it->second.client;
      send_event(fd, ack);
      ACCELRING_LOG_INFO(kTag, "accepted client '%s' as session %u",
                         request->name.c_str(),
                         unsigned{it->second.client});
      continue;
    }
    if (it->second.client == 0) continue;  // must connect first
    // Stamp the authenticated session id; clients cannot spoof others.
    ClientRequest authed = *request;
    authed.client = it->second.client;
    daemon_.handle_request(encode(authed));
    if (request->op == RequestOp::kDisconnect) {
      close_connection(fd);
      return;
    }
  }
}

void IpcServer::close_connection(int fd) {
  const auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  if (it->second.client != 0) daemon_.disconnect(it->second.client);
  loop_.remove_fd(fd);
  ::close(fd);
  conns_.erase(it);
}

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

RemoteClient::RemoteClient(const std::string& socket_path, std::string name)
    : name_(std::move(name)) {
  fd_ = ::socket(AF_UNIX, SOCK_SEQPACKET, 0);
  if (fd_ < 0) throw std::runtime_error("socket(AF_UNIX) failed");
  sockaddr_un addr = make_addr(socket_path);
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error("connect failed to " + socket_path);
  }
  set_nonblocking(fd_);
  ClientRequest req;
  req.op = RequestOp::kConnect;
  req.name = name_;
  send_request(req);
}

RemoteClient::~RemoteClient() {
  if (fd_ >= 0) {
    if (id_ != 0) {
      ClientRequest req;
      req.op = RequestOp::kDisconnect;
      req.client = id_;
      send_request(req);
    }
    ::close(fd_);
  }
}

bool RemoteClient::send_request(const ClientRequest& request) {
  if (fd_ < 0) return false;
  const auto frame = encode(request);
  return ::send(fd_, frame.data(), frame.size(), MSG_NOSIGNAL) ==
         static_cast<ssize_t>(frame.size());
}

bool RemoteClient::complete_handshake() {
  if (id_ != 0) return true;
  for (const DaemonEvent& ev : poll_events()) {
    if (ev.op == EventOp::kConnected) {
      id_ = ev.client;
      return true;
    }
  }
  return id_ != 0;
}

std::vector<DaemonEvent> RemoteClient::poll_events() {
  std::vector<DaemonEvent> events;
  std::byte buf[65536];
  while (fd_ >= 0) {
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), MSG_DONTWAIT);
    if (n <= 0) break;
    auto ev = decode_event(
        std::span<const std::byte>(buf, static_cast<size_t>(n)));
    if (!ev) continue;
    if (ev->op == EventOp::kConnected && id_ == 0) id_ = ev->client;
    if (ev->op == EventOp::kSlowdown) slowed_ = true;
    if (ev->op == EventOp::kResume) slowed_ = false;
    events.push_back(std::move(*ev));
  }
  return events;
}

bool RemoteClient::join(const std::string& group) {
  if (id_ == 0) return false;
  ClientRequest req;
  req.op = RequestOp::kJoin;
  req.client = id_;
  req.groups = {group};
  return send_request(req);
}

bool RemoteClient::leave(const std::string& group) {
  if (id_ == 0) return false;
  ClientRequest req;
  req.op = RequestOp::kLeave;
  req.client = id_;
  req.groups = {group};
  return send_request(req);
}

bool RemoteClient::send(const std::vector<std::string>& groups,
                        Service service, std::vector<std::byte> payload) {
  if (id_ == 0) return false;
  ClientRequest req;
  req.op = RequestOp::kSend;
  req.client = id_;
  req.groups = groups;
  req.service = service;
  req.payload = std::move(payload);
  return send_request(req);
}

}  // namespace accelring::daemon
