// The daemon: Spread's client-daemon architecture (paper §I, §III-D).
//
// One daemon per machine embeds the ordering engine and serves local client
// sessions. Clients join groups, send to groups (open-group semantics), and
// receive ordered messages and membership views. The daemon wires the
// engine's delivery/configuration callbacks into the group layer and fans
// results out to sessions.
//
// The daemon is transport-agnostic: it hangs off whatever Host the engine
// was built with (simulator or real UDP), so the same class backs the
// simulated benchmarks, the in-process examples, and a real deployment.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "daemon/ipc.hpp"
#include "groups/group_layer.hpp"
#include "protocol/engine.hpp"

namespace accelring::daemon {

using ClientId = uint32_t;

/// One connected client session and its callbacks.
struct Session {
  std::string name;
  /// (group, sender name, service, payload)
  std::function<void(const std::string&, const std::string&, Service,
                     std::span<const std::byte>)>
      on_message;
  std::function<void(const groups::GroupView&)> on_view;
};

class Daemon {
 public:
  /// The engine must outlive the daemon. Call attach() on the engine's host
  /// callbacks (see bind_to_sim_host / examples) so deliveries reach us.
  Daemon(protocol::ProcessId pid, protocol::Engine& engine);

  // --- host-side wiring ------------------------------------------------------
  /// Feed an engine delivery (install as the Host's deliver callback).
  void on_delivery(const protocol::Delivery& delivery);
  /// Feed a configuration change.
  void on_configuration(const protocol::ConfigurationChange& change);

  // --- client session management ---------------------------------------------
  ClientId connect(Session session);
  void disconnect(ClientId client);

  bool join(ClientId client, const std::string& group);
  bool leave(ClientId client, const std::string& group);
  /// Multi-group multicast: ordered across groups (paper §I).
  bool send(ClientId client, const std::vector<std::string>& groups,
            Service service, std::vector<std::byte> payload);

  /// Handle a serialized IPC request frame; returns the serialized events
  /// generated synchronously (for socket-based clients / tests). Ordered
  /// messages flow back later through sessions' callbacks.
  std::optional<DaemonEvent> handle_request(std::span<const std::byte> frame);

  [[nodiscard]] const groups::GroupLayer& group_layer() const {
    return layer_;
  }
  [[nodiscard]] protocol::ProcessId pid() const { return pid_; }
  [[nodiscard]] size_t session_count() const { return sessions_.size(); }

 private:
  protocol::ProcessId pid_;
  protocol::Engine& engine_;
  groups::GroupLayer layer_;
  std::map<ClientId, Session> sessions_;
  ClientId next_client_ = 1;
};

}  // namespace accelring::daemon
