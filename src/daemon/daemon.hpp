// The daemon: Spread's client-daemon architecture (paper §I, §III-D).
//
// One daemon per machine embeds the ordering engine and serves local client
// sessions. Clients join groups, send to groups (open-group semantics), and
// receive ordered messages and membership views. The daemon wires the
// engine's delivery/configuration callbacks into the group layer and fans
// results out to sessions.
//
// Overload protection: client sends are absorbed into bounded per-session
// ingress queues whenever the engine's own send queue is near its flow
// control limit, drained in round-robin as the ring makes progress. A
// session whose queue fills past the high-water mark receives an explicit
// SLOWDOWN notification (EventOp::kSlowdown on the wire) and sheds further
// sends until it drains — bounded memory under any client behaviour, with
// the slowest clients penalized first instead of the whole daemon.
//
// The daemon is transport-agnostic: it hangs off whatever Host the engine
// was built with (simulator or real UDP), so the same class backs the
// simulated benchmarks, the in-process examples, and a real deployment.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>

#include "daemon/ipc.hpp"
#include "groups/group_layer.hpp"
#include "obs/metrics.hpp"
#include "protocol/engine.hpp"

namespace accelring::daemon {

using ClientId = uint32_t;

/// One connected client session and its callbacks.
struct Session {
  std::string name;
  /// (group, sender name, service, payload)
  std::function<void(const std::string&, const std::string&, Service,
                     std::span<const std::byte>)>
      on_message;
  std::function<void(const groups::GroupView&)> on_view;
  /// Backpressure notification: true = slow down (the daemon is queuing or
  /// shedding this session's sends), false = resume.
  std::function<void(bool slowed)> on_flow;
  /// Ring membership changed (regular or transitional configuration).
  std::function<void(const protocol::ConfigurationChange&)> on_membership;
};

/// Backpressure tuning. Fractions are of the engine's max_pending.
struct DaemonConfig {
  /// Max queued sends per session before shedding (and SLOWDOWN).
  size_t session_queue_limit = 256;
  /// Stop draining session queues into the engine above this occupancy.
  double high_water = 0.75;
  /// Send RESUME once engine occupancy falls back below this.
  double low_water = 0.50;
};

struct DaemonStats {
  uint64_t slowdowns = 0;     ///< SLOWDOWN notifications sent
  uint64_t resumes = 0;       ///< RESUME notifications sent
  uint64_t shed = 0;          ///< sends dropped: session queue full
  uint64_t queued_sends = 0;  ///< sends that took the queue path
  size_t queue_peak = 0;      ///< high-water mark of any session queue
};

/// Observation points for the overload-protection path (all optional; see
/// obs/metrics.hpp for the zero-perturbation contract). queue_depth tracks
/// total queued sends across sessions with a peak watermark; enqueue_depth
/// is the distribution of the enqueueing session's queue depth at each
/// queued send (how deep backpressure typically runs before draining).
struct DaemonMetrics {
  obs::Gauge* queue_depth = nullptr;
  obs::Histogram* enqueue_depth = nullptr;
  obs::Counter* shed = nullptr;
  obs::Counter* slowdowns = nullptr;
  obs::Counter* resumes = nullptr;

  [[nodiscard]] static DaemonMetrics bind(obs::MetricsRegistry& registry);
};

class Daemon {
 public:
  /// The engine must outlive the daemon. Call attach() on the engine's host
  /// callbacks (see bind_to_sim_host / examples) so deliveries reach us.
  Daemon(protocol::ProcessId pid, protocol::Engine& engine,
         DaemonConfig config = {});

  // --- host-side wiring ------------------------------------------------------
  /// Feed an engine delivery (install as the Host's deliver callback).
  void on_delivery(const protocol::Delivery& delivery);
  /// Feed a configuration change.
  void on_configuration(const protocol::ConfigurationChange& change);

  // --- client session management ---------------------------------------------
  ClientId connect(Session session);
  void disconnect(ClientId client);

  bool join(ClientId client, const std::string& group);
  bool leave(ClientId client, const std::string& group);
  /// Multi-group multicast: ordered across groups (paper §I). Returns false
  /// only when the send was *shed* (session queue full); a queued send
  /// returns true and goes out as the ring drains.
  bool send(ClientId client, const std::vector<std::string>& groups,
            Service service, std::vector<std::byte> payload);

  /// Handle a serialized IPC request frame; returns the serialized events
  /// generated synchronously (for socket-based clients / tests). Ordered
  /// messages flow back later through sessions' callbacks.
  std::optional<DaemonEvent> handle_request(std::span<const std::byte> frame);

  [[nodiscard]] const groups::GroupLayer& group_layer() const {
    return layer_;
  }
  [[nodiscard]] protocol::ProcessId pid() const { return pid_; }
  [[nodiscard]] size_t session_count() const { return sessions_.size(); }
  [[nodiscard]] const DaemonStats& stats() const { return stats_; }
  /// Attach observation points (see DaemonMetrics).
  void set_metrics(const DaemonMetrics& metrics) { metrics_ = metrics; }
  /// Queued (not yet submitted) sends for one session; 0 if unknown client.
  [[nodiscard]] size_t queued(ClientId client) const {
    const auto it = sessions_.find(client);
    return it == sessions_.end() ? 0 : it->second.queue.size();
  }

 private:
  struct PendingSend {
    std::vector<std::string> groups;
    Service service = Service::kAgreed;
    std::vector<std::byte> payload;
  };
  struct SessionState {
    Session session;
    std::deque<PendingSend> queue;
    bool slowed = false;
  };

  /// Engine send-queue occupancy at or above the drain-pause line?
  [[nodiscard]] bool overloaded() const;
  /// Round-robin drain of session queues into the engine, then RESUME
  /// notifications for drained sessions once occupancy is low again.
  void pump();
  void set_slowed(SessionState& state, bool slowed);

  protocol::ProcessId pid_;
  protocol::Engine& engine_;
  DaemonConfig config_;
  groups::GroupLayer layer_;
  std::map<ClientId, SessionState> sessions_;
  ClientId next_client_ = 1;
  DaemonStats stats_;
  DaemonMetrics metrics_;
};

}  // namespace accelring::daemon
