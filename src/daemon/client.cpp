#include "daemon/client.hpp"

namespace accelring::daemon {

Client::Client(Daemon& daemon, std::string name, MessageFn on_message,
               ViewFn on_view)
    : daemon_(daemon), name_(std::move(name)) {
  Session session;
  session.name = name_;
  session.on_message = std::move(on_message);
  session.on_view = std::move(on_view);
  id_ = daemon_.connect(std::move(session));
}

Client::~Client() { daemon_.disconnect(id_); }

}  // namespace accelring::daemon
