#include "daemon/daemon.hpp"

namespace accelring::daemon {

Daemon::Daemon(protocol::ProcessId pid, protocol::Engine& engine)
    : pid_(pid), engine_(engine), layer_(pid, engine) {
  layer_.set_on_message([this](uint32_t client, const std::string& group,
                               const std::string& sender, Service service,
                               std::span<const std::byte> payload) {
    const auto it = sessions_.find(client);
    if (it == sessions_.end() || !it->second.on_message) return;
    it->second.on_message(group, sender, service, payload);
  });
  layer_.set_on_view([this](uint32_t client, const groups::GroupView& view) {
    const auto it = sessions_.find(client);
    if (it == sessions_.end() || !it->second.on_view) return;
    it->second.on_view(view);
  });
}

void Daemon::on_delivery(const protocol::Delivery& delivery) {
  layer_.on_delivery(delivery);
}

void Daemon::on_configuration(const protocol::ConfigurationChange& change) {
  layer_.on_configuration(change);
}

ClientId Daemon::connect(Session session) {
  const ClientId id = next_client_++;
  sessions_.emplace(id, std::move(session));
  return id;
}

void Daemon::disconnect(ClientId client) {
  const auto it = sessions_.find(client);
  if (it == sessions_.end()) return;
  layer_.disconnect(client, it->second.name);
  sessions_.erase(it);
}

bool Daemon::join(ClientId client, const std::string& group) {
  const auto it = sessions_.find(client);
  if (it == sessions_.end()) return false;
  return layer_.join(client, it->second.name, group);
}

bool Daemon::leave(ClientId client, const std::string& group) {
  const auto it = sessions_.find(client);
  if (it == sessions_.end()) return false;
  return layer_.leave(client, it->second.name, group);
}

bool Daemon::send(ClientId client, const std::vector<std::string>& groups,
                  Service service, std::vector<std::byte> payload) {
  const auto it = sessions_.find(client);
  if (it == sessions_.end()) return false;
  return layer_.send(client, it->second.name, groups, service,
                     std::move(payload));
}

std::optional<DaemonEvent> Daemon::handle_request(
    std::span<const std::byte> frame) {
  const auto req = decode_request(frame);
  if (!req) return std::nullopt;
  switch (req->op) {
    case RequestOp::kConnect: {
      Session session;
      session.name = req->name;
      const ClientId id = connect(std::move(session));
      DaemonEvent ev;
      ev.op = EventOp::kConnected;
      ev.client = id;
      return ev;
    }
    case RequestOp::kJoin:
      if (!req->groups.empty()) join(req->client, req->groups[0]);
      return std::nullopt;
    case RequestOp::kLeave:
      if (!req->groups.empty()) leave(req->client, req->groups[0]);
      return std::nullopt;
    case RequestOp::kSend:
      send(req->client, req->groups, req->service, req->payload);
      return std::nullopt;
    case RequestOp::kDisconnect:
      disconnect(req->client);
      return std::nullopt;
  }
  return std::nullopt;
}

}  // namespace accelring::daemon
