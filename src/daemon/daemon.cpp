#include "daemon/daemon.hpp"

#include <algorithm>

namespace accelring::daemon {

DaemonMetrics DaemonMetrics::bind(obs::MetricsRegistry& registry) {
  DaemonMetrics m;
  m.queue_depth = &registry.gauge("daemon", "queue_depth");
  m.enqueue_depth = &registry.histogram("daemon", "enqueue_depth");
  m.shed = &registry.counter("daemon", "shed");
  m.slowdowns = &registry.counter("daemon", "slowdowns");
  m.resumes = &registry.counter("daemon", "resumes");
  return m;
}

Daemon::Daemon(protocol::ProcessId pid, protocol::Engine& engine,
               DaemonConfig config)
    : pid_(pid), engine_(engine), config_(config), layer_(pid, engine) {
  layer_.set_on_message([this](uint32_t client, const std::string& group,
                               const std::string& sender, Service service,
                               std::span<const std::byte> payload) {
    const auto it = sessions_.find(client);
    if (it == sessions_.end() || !it->second.session.on_message) return;
    it->second.session.on_message(group, sender, service, payload);
  });
  layer_.set_on_view([this](uint32_t client, const groups::GroupView& view) {
    const auto it = sessions_.find(client);
    if (it == sessions_.end() || !it->second.session.on_view) return;
    it->second.session.on_view(view);
  });
}

void Daemon::on_delivery(const protocol::Delivery& delivery) {
  layer_.on_delivery(delivery);
  // Every delivery implies ring progress, which implies engine send-queue
  // drain: the natural moment to move queued client sends forward.
  pump();
}

void Daemon::on_configuration(const protocol::ConfigurationChange& change) {
  layer_.on_configuration(change);
  for (auto& [id, state] : sessions_) {
    if (state.session.on_membership) state.session.on_membership(change);
  }
  pump();
}

ClientId Daemon::connect(Session session) {
  const ClientId id = next_client_++;
  SessionState state;
  state.session = std::move(session);
  sessions_.emplace(id, std::move(state));
  return id;
}

void Daemon::disconnect(ClientId client) {
  const auto it = sessions_.find(client);
  if (it == sessions_.end()) return;
  if (metrics_.queue_depth != nullptr) {
    metrics_.queue_depth->add(-static_cast<int64_t>(it->second.queue.size()));
  }
  layer_.disconnect(client, it->second.session.name);
  sessions_.erase(it);
}

bool Daemon::join(ClientId client, const std::string& group) {
  const auto it = sessions_.find(client);
  if (it == sessions_.end()) return false;
  return layer_.join(client, it->second.session.name, group);
}

bool Daemon::leave(ClientId client, const std::string& group) {
  const auto it = sessions_.find(client);
  if (it == sessions_.end()) return false;
  return layer_.leave(client, it->second.session.name, group);
}

bool Daemon::overloaded() const {
  const auto limit = static_cast<double>(engine_.config().max_pending);
  return static_cast<double>(engine_.pending()) >= config_.high_water * limit;
}

bool Daemon::send(ClientId client, const std::vector<std::string>& groups,
                  Service service, std::vector<std::byte> payload) {
  const auto it = sessions_.find(client);
  if (it == sessions_.end()) return false;
  SessionState& state = it->second;

  // Fast path: nothing queued for this session (ordering would invert
  // otherwise) and the engine has room. The submit can still fail on the
  // engine's own limit, so attempt with a copy and fall through to the
  // queue on refusal.
  if (state.queue.empty() && !overloaded()) {
    if (layer_.send(client, state.session.name, groups, service,
                    std::vector<std::byte>(payload))) {
      return true;
    }
  }

  if (state.queue.size() >= config_.session_queue_limit) {
    ++stats_.shed;
    if (metrics_.shed != nullptr) metrics_.shed->inc();
    set_slowed(state, true);
    return false;
  }
  state.queue.push_back(PendingSend{groups, service, std::move(payload)});
  ++stats_.queued_sends;
  stats_.queue_peak = std::max(stats_.queue_peak, state.queue.size());
  if (metrics_.queue_depth != nullptr) metrics_.queue_depth->add(1);
  if (metrics_.enqueue_depth != nullptr) {
    metrics_.enqueue_depth->record(static_cast<int64_t>(state.queue.size()));
  }
  if (state.queue.size() > config_.session_queue_limit / 2) {
    set_slowed(state, true);
  }
  return true;
}

void Daemon::pump() {
  bool progress = true;
  while (progress && !overloaded()) {
    progress = false;
    for (auto& [id, state] : sessions_) {
      if (state.queue.empty()) continue;
      PendingSend& next = state.queue.front();
      if (!layer_.send(id, state.session.name, next.groups, next.service,
                       std::vector<std::byte>(next.payload))) {
        // The engine refused below our high-water estimate (flow control
        // tightened mid-round); try again on the next delivery.
        progress = false;
        break;
      }
      state.queue.pop_front();
      if (metrics_.queue_depth != nullptr) metrics_.queue_depth->add(-1);
      progress = true;
      if (overloaded()) break;
    }
  }
  // RESUME only once the engine is comfortably below the pause line, so a
  // session is not flapped between slow and resumed every round.
  const auto limit = static_cast<double>(engine_.config().max_pending);
  if (static_cast<double>(engine_.pending()) > config_.low_water * limit) {
    return;
  }
  for (auto& [id, state] : sessions_) {
    if (state.slowed && state.queue.empty()) set_slowed(state, false);
  }
}

void Daemon::set_slowed(SessionState& state, bool slowed) {
  if (state.slowed == slowed) return;
  state.slowed = slowed;
  if (slowed) {
    ++stats_.slowdowns;
    if (metrics_.slowdowns != nullptr) metrics_.slowdowns->inc();
  } else {
    ++stats_.resumes;
    if (metrics_.resumes != nullptr) metrics_.resumes->inc();
  }
  if (state.session.on_flow) state.session.on_flow(slowed);
}

std::optional<DaemonEvent> Daemon::handle_request(
    std::span<const std::byte> frame) {
  const auto req = decode_request(frame);
  if (!req) return std::nullopt;
  switch (req->op) {
    case RequestOp::kConnect: {
      Session session;
      session.name = req->name;
      const ClientId id = connect(std::move(session));
      DaemonEvent ev;
      ev.op = EventOp::kConnected;
      ev.client = id;
      return ev;
    }
    case RequestOp::kJoin:
      if (!req->groups.empty()) join(req->client, req->groups[0]);
      return std::nullopt;
    case RequestOp::kLeave:
      if (!req->groups.empty()) leave(req->client, req->groups[0]);
      return std::nullopt;
    case RequestOp::kSend:
      send(req->client, req->groups, req->service, req->payload);
      return std::nullopt;
    case RequestOp::kDisconnect:
      disconnect(req->client);
      return std::nullopt;
  }
  return std::nullopt;
}

}  // namespace accelring::daemon
