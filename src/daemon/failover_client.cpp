#include "daemon/failover_client.hpp"

#include <algorithm>

#include "util/bytes.hpp"
#include "util/log.hpp"

namespace accelring::daemon {

namespace {
constexpr const char* kTag = "failover";
/// Distinguishes session frames from unframed payloads of plain clients.
constexpr uint32_t kFrameMagic = 0x53455346;  // "SESF"
/// Retry cadence while the daemon sheds our outbox flush.
constexpr util::Nanos kFlushRetry = util::msec(2);
}  // namespace

std::vector<std::byte> encode_session_frame(
    uint64_t uuid, uint64_t seq, std::span<const std::byte> payload) {
  util::Writer w(20 + payload.size());
  w.u32(kFrameMagic);
  w.u64(uuid);
  w.u64(seq);
  w.raw(payload);
  return std::move(w).take();
}

std::optional<SessionFrame> decode_session_frame(
    std::span<const std::byte> frame) {
  util::Reader r(frame);
  if (r.u32() != kFrameMagic) return std::nullopt;
  SessionFrame out;
  out.uuid = r.u64();
  out.seq = r.u64();
  if (!r.ok()) return std::nullopt;
  out.payload = r.raw(r.remaining());
  return out;
}

bool DuplicateFilter::seen(uint64_t uuid, uint64_t seq) {
  PerUuid& state = per_uuid_[uuid];
  if (seq <= state.floor || state.above.contains(seq)) {
    ++suppressed_;
    return true;
  }
  state.above.insert(seq);
  // Advance the contiguous floor through the sparse set.
  auto it = state.above.begin();
  while (it != state.above.end() && *it == state.floor + 1) {
    ++state.floor;
    it = state.above.erase(it);
  }
  // Compaction: if a hole below keeps the floor pinned and the sparse set
  // hits its bound, jump the floor over the hole (see kMaxSparse).
  while (state.above.size() > kMaxSparse) {
    state.floor = *state.above.begin();
    state.above.erase(state.above.begin());
    it = state.above.begin();
    while (it != state.above.end() && *it == state.floor + 1) {
      ++state.floor;
      it = state.above.erase(it);
    }
  }
  return false;
}

FailoverClient::FailoverClient(DaemonFn daemon, ScheduleFn schedule,
                               std::string name, uint64_t uuid,
                               util::Backoff backoff, MessageFn on_message,
                               MembershipFn on_membership)
    : daemon_(std::move(daemon)),
      schedule_(std::move(schedule)),
      name_(std::move(name)),
      uuid_(uuid),
      backoff_(backoff),
      on_message_(std::move(on_message)),
      on_membership_(std::move(on_membership)) {}

void FailoverClient::connect() { try_connect(); }

void FailoverClient::notify_disconnect() {
  if (session_ != 0) {
    ACCELRING_LOG_INFO(kTag, "%s: session %u lost, %zu unacked",
                       name_.c_str(), unsigned{session_}, outbox_.size());
  }
  session_ = 0;
  slowed_ = false;
  // Everything in flight rode the dead session: it must be resent on the
  // next one (receivers' duplicate filters absorb any that did make it).
  for (Unacked& entry : outbox_) entry.in_flight = false;
  schedule_reconnect();
}

void FailoverClient::schedule_reconnect() {
  if (reconnect_pending_) return;
  reconnect_pending_ = true;
  schedule_(backoff_.next(), [this] {
    reconnect_pending_ = false;
    try_connect();
  });
}

void FailoverClient::try_connect() {
  if (session_ != 0) return;
  Daemon* daemon = daemon_();
  if (daemon == nullptr) {
    schedule_reconnect();
    return;
  }
  Session session;
  session.name = name_;
  session.on_message = [this](const std::string& group,
                              const std::string& sender, Service service,
                              std::span<const std::byte> payload) {
    on_daemon_message(group, sender, service, payload);
  };
  session.on_flow = [this](bool slowed) { slowed_ = slowed; };
  session.on_membership = [this](const protocol::ConfigurationChange& c) {
    if (on_membership_) on_membership_(c);
  };
  session_ = daemon->connect(std::move(session));
  backoff_.reset();
  ++stats_.reconnects;
  for (const std::string& group : joined_) daemon->join(session_, group);
  if (!outbox_.empty()) {
    stats_.resends += outbox_.size();
    flush_outbox();
  }
}

bool FailoverClient::join(const std::string& group) {
  joined_.insert(group);
  if (session_ == 0) return true;  // joined on reconnect
  Daemon* daemon = daemon_();
  if (daemon == nullptr) return true;
  return daemon->join(session_, group);
}

bool FailoverClient::send(const std::string& group, Service service,
                          std::span<const std::byte> payload) {
  if (outbox_.size() >= kOutboxLimit) return false;
  Unacked entry;
  entry.seq = next_seq_++;
  entry.group = group;
  entry.service = service;
  entry.frame = encode_session_frame(uuid_, entry.seq, payload);
  outbox_.push_back(std::move(entry));
  if (session_ != 0) flush_outbox();
  return true;
}

void FailoverClient::flush_outbox() {
  Daemon* daemon = session_ != 0 ? daemon_() : nullptr;
  if (daemon == nullptr) return;
  for (Unacked& entry : outbox_) {
    if (entry.in_flight) continue;
    if (!daemon->send(session_, {entry.group}, entry.service, entry.frame)) {
      // Shed by daemon backpressure: retry on a timer (SLOWDOWN/RESUME is
      // advisory; the retry loop is what guarantees eventual submission).
      ++stats_.rejected_sends;
      schedule_(kFlushRetry, [this] { flush_outbox(); });
      return;
    }
    entry.in_flight = true;
  }
}

void FailoverClient::on_daemon_message(const std::string& group,
                                       const std::string& sender,
                                       Service service,
                                       std::span<const std::byte> payload) {
  const auto frame = decode_session_frame(payload);
  if (!frame) {
    // Unframed traffic from a plain client: pass through untouched.
    if (on_message_) on_message_(group, sender, service, payload);
    return;
  }
  if (frame->uuid == uuid_) {
    // Our own send came back through the total order: that is its ack.
    const auto it = std::find_if(
        outbox_.begin(), outbox_.end(),
        [&](const Unacked& e) { return e.seq == frame->seq; });
    if (it != outbox_.end()) {
      ++stats_.acked;
      outbox_.erase(it);
    }
  }
  if (dedup_.seen(frame->uuid, frame->seq)) {
    ++stats_.duplicates_suppressed;
    return;
  }
  if (on_message_) on_message_(group, sender, service, frame->payload);
}

}  // namespace accelring::daemon
