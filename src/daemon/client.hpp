// Client handle: the application-facing API of the client-daemon
// architecture. Mirrors the Spread client library's surface (connect, join,
// leave, multicast, receive) for in-process clients.
#pragma once

#include <string>
#include <utility>

#include "daemon/daemon.hpp"

namespace accelring::daemon {

/// RAII session with a local daemon. Connect on construction, disconnect on
/// destruction. Callbacks fire on the daemon's thread (or simulated CPU).
class Client {
 public:
  using MessageFn =
      std::function<void(const std::string& group, const std::string& sender,
                         Service service, std::span<const std::byte>)>;
  using ViewFn = std::function<void(const groups::GroupView&)>;

  Client(Daemon& daemon, std::string name, MessageFn on_message = {},
         ViewFn on_view = {});
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  bool join(const std::string& group) { return daemon_.join(id_, group); }
  bool leave(const std::string& group) { return daemon_.leave(id_, group); }

  /// Single-group send.
  bool send(const std::string& group, Service service,
            std::vector<std::byte> payload) {
    return daemon_.send(id_, {group}, service, std::move(payload));
  }
  /// Multi-group multicast with cross-group ordering.
  bool send(const std::vector<std::string>& groups, Service service,
            std::vector<std::byte> payload) {
    return daemon_.send(id_, groups, service, std::move(payload));
  }

  [[nodiscard]] ClientId id() const { return id_; }
  [[nodiscard]] const std::string& name() const { return name_; }

 private:
  Daemon& daemon_;
  std::string name_;
  ClientId id_;
};

}  // namespace accelring::daemon
