// Deployment configuration files (spread.conf-style).
//
// A daemon deployment is described by a small text file listing the ring
// members and protocol options:
//
//     # comments and blank lines are ignored
//     daemon 0 127.0.0.1 4803 4804      # pid ip data_port token_port
//     daemon 1 127.0.0.1 4805 4806
//     protocol accelerated               # or: original
//     option personal_window 20
//     option accelerated_window 15
//     option token_loss_timeout_ms 100
//
// parse_config_text() works on a string (unit-testable); load_config_file()
// reads from disk. Errors carry line numbers.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <string_view>

#include "protocol/types.hpp"
#include "transport/udp_transport.hpp"

namespace accelring::daemon {

struct DeploymentConfig {
  std::map<protocol::ProcessId, transport::PeerAddress> peers;
  protocol::ProtocolConfig proto;
};

struct ConfigError {
  int line = 0;
  std::string message;
};

/// Parse configuration text; on failure returns nullopt and fills `error`.
[[nodiscard]] std::optional<DeploymentConfig> parse_config_text(
    std::string_view text, ConfigError& error);

/// Read and parse a configuration file.
[[nodiscard]] std::optional<DeploymentConfig> load_config_file(
    const std::string& path, ConfigError& error);

}  // namespace accelring::daemon
