// Out-of-process client support: an AF_UNIX SOCK_SEQPACKET server speaking
// the ipc.hpp framing (paper §III-D: "daemons communicate with local
// clients using IPC sockets").
//
// Each accepted connection becomes one daemon session; ClientRequest frames
// flow in, DaemonEvent frames flow out (ordered messages, membership views,
// the connect acknowledgement). SOCK_SEQPACKET preserves message boundaries,
// so no stream reframing is needed on either side.
#pragma once

#include <map>
#include <string>

#include "daemon/daemon.hpp"
#include "transport/event_loop.hpp"

namespace accelring::daemon {

class IpcServer {
 public:
  /// Binds and listens on `socket_path` (unlinking any stale socket).
  /// Throws std::runtime_error on failure.
  IpcServer(Daemon& daemon, transport::EventLoop& loop,
            std::string socket_path);
  ~IpcServer();

  IpcServer(const IpcServer&) = delete;
  IpcServer& operator=(const IpcServer&) = delete;

  [[nodiscard]] size_t connection_count() const { return conns_.size(); }
  [[nodiscard]] const std::string& socket_path() const { return path_; }

 private:
  struct Connection {
    int fd = -1;
    ClientId client = 0;  ///< 0 until the kConnect request arrives
  };

  void on_accept();
  void on_readable(int fd);
  void close_connection(int fd);
  void send_event(int fd, const DaemonEvent& event);

  Daemon& daemon_;
  transport::EventLoop& loop_;
  std::string path_;
  int listen_fd_ = -1;
  std::map<int, Connection> conns_;
};

/// Client side of the same protocol: connect to a daemon's unix socket from
/// any process. Blocking connect, non-blocking event drain.
class RemoteClient {
 public:
  /// Connects and sends the kConnect handshake; complete_handshake() must
  /// run after the daemon's loop has had a chance to answer. Throws
  /// std::runtime_error on connection failure.
  RemoteClient(const std::string& socket_path, std::string name);
  ~RemoteClient();

  /// Consume the kConnected acknowledgement if it has arrived. Returns true
  /// once the session id is known; requests before that are rejected.
  bool complete_handshake();

  RemoteClient(const RemoteClient&) = delete;
  RemoteClient& operator=(const RemoteClient&) = delete;

  bool join(const std::string& group);
  bool leave(const std::string& group);
  bool send(const std::vector<std::string>& groups, Service service,
            std::vector<std::byte> payload);

  /// Drain any pending daemon events (non-blocking).
  [[nodiscard]] std::vector<DaemonEvent> poll_events();

  [[nodiscard]] ClientId id() const { return id_; }
  /// True between a kSlowdown event and the matching kResume: the daemon
  /// asked this client to stop sending.
  [[nodiscard]] bool slowed() const { return slowed_; }

 private:
  bool send_request(const ClientRequest& request);

  int fd_ = -1;
  std::string name_;
  ClientId id_ = 0;
  bool slowed_ = false;
};

}  // namespace accelring::daemon
