// Client <-> daemon IPC framing.
//
// Spread clients talk to their local daemon over IPC sockets (paper §III-D).
// These codecs define that protocol: requests flow client -> daemon, events
// flow daemon -> client. In-process clients (daemon/client.hpp) skip the
// byte encoding, but the frames are what a unix-socket client library would
// speak, and the daemon tests exercise them.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "protocol/types.hpp"

namespace accelring::daemon {

using protocol::Service;

enum class RequestOp : uint8_t {
  kConnect = 1,
  kJoin = 2,
  kLeave = 3,
  kSend = 4,
  kDisconnect = 5,
};

struct ClientRequest {
  RequestOp op = RequestOp::kConnect;
  uint32_t client = 0;               ///< session id (0 for kConnect)
  std::string name;                  ///< client private name (kConnect)
  std::vector<std::string> groups;   ///< join/leave/send targets
  Service service = Service::kAgreed;
  std::vector<std::byte> payload;    ///< kSend only
};

[[nodiscard]] std::vector<std::byte> encode(const ClientRequest& req);
[[nodiscard]] std::optional<ClientRequest> decode_request(
    std::span<const std::byte> frame);

enum class EventOp : uint8_t {
  kConnected = 1,   ///< session established; `client` carries the new id
  kMessage = 2,     ///< ordered application message
  kView = 3,        ///< group membership view
  kSlowdown = 4,    ///< backpressure: the daemon is shedding; stop sending
  kResume = 5,      ///< backpressure lifted: normal sending may resume
  kMembership = 6,  ///< ring membership changed; view_id carries the ring id
};

struct DaemonEvent {
  EventOp op = EventOp::kMessage;
  uint32_t client = 0;
  std::string group;
  std::string sender;                  ///< sending client's name (kMessage)
  Service service = Service::kAgreed;
  uint64_t view_id = 0;                ///< kView
  std::vector<std::string> members;    ///< kView: member names
  std::vector<std::byte> payload;      ///< kMessage
};

[[nodiscard]] std::vector<std::byte> encode(const DaemonEvent& event);
[[nodiscard]] std::optional<DaemonEvent> decode_event(
    std::span<const std::byte> frame);

}  // namespace accelring::daemon
