#include "daemon/ipc.hpp"

#include "util/bytes.hpp"

namespace accelring::daemon {

std::vector<std::byte> encode(const ClientRequest& req) {
  util::Writer w(64 + req.payload.size());
  w.u8(static_cast<uint8_t>(req.op));
  w.u32(req.client);
  w.str(req.name);
  w.u8(static_cast<uint8_t>(req.groups.size()));
  for (const auto& g : req.groups) w.str(g);
  w.u8(static_cast<uint8_t>(req.service));
  w.bytes(req.payload);
  return std::move(w).take();
}

std::optional<ClientRequest> decode_request(std::span<const std::byte> frame) {
  util::Reader r(frame);
  ClientRequest req;
  const uint8_t op = r.u8();
  if (op < 1 || op > 5) return std::nullopt;
  req.op = static_cast<RequestOp>(op);
  req.client = r.u32();
  req.name = r.str();
  const uint8_t n = r.u8();
  for (uint8_t i = 0; i < n && r.ok(); ++i) req.groups.push_back(r.str());
  const uint8_t service = r.u8();
  if (service > 4) return std::nullopt;
  req.service = static_cast<Service>(service);
  req.payload = util::to_vector(r.bytes());
  if (!r.done()) return std::nullopt;
  return req;
}

std::vector<std::byte> encode(const DaemonEvent& event) {
  util::Writer w(64 + event.payload.size());
  w.u8(static_cast<uint8_t>(event.op));
  w.u32(event.client);
  w.str(event.group);
  w.str(event.sender);
  w.u8(static_cast<uint8_t>(event.service));
  w.u64(event.view_id);
  w.u16(static_cast<uint16_t>(event.members.size()));
  for (const auto& m : event.members) w.str(m);
  w.bytes(event.payload);
  return std::move(w).take();
}

std::optional<DaemonEvent> decode_event(std::span<const std::byte> frame) {
  util::Reader r(frame);
  DaemonEvent event;
  const uint8_t op = r.u8();
  if (op < 1 || op > 6) return std::nullopt;
  event.op = static_cast<EventOp>(op);
  event.client = r.u32();
  event.group = r.str();
  event.sender = r.str();
  const uint8_t service = r.u8();
  if (service > 4) return std::nullopt;
  event.service = static_cast<Service>(service);
  event.view_id = r.u64();
  const uint16_t n = r.u16();
  for (uint16_t i = 0; i < n && r.ok(); ++i) event.members.push_back(r.str());
  event.payload = util::to_vector(r.bytes());
  if (!r.done()) return std::nullopt;
  return event;
}

}  // namespace accelring::daemon
