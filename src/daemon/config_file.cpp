#include "daemon/config_file.hpp"

#include <charconv>
#include <fstream>
#include <sstream>
#include <vector>

namespace accelring::daemon {

namespace {

std::vector<std::string> tokenize(std::string_view line) {
  std::vector<std::string> tokens;
  std::string current;
  for (char c : line) {
    if (c == '#') break;  // comment until end of line
    if (c == ' ' || c == '\t' || c == '\r') {
      if (!current.empty()) {
        tokens.push_back(std::move(current));
        current.clear();
      }
    } else {
      current.push_back(c);
    }
  }
  if (!current.empty()) tokens.push_back(std::move(current));
  return tokens;
}

template <typename T>
bool parse_number(const std::string& s, T& out) {
  const auto [ptr, ec] =
      std::from_chars(s.data(), s.data() + s.size(), out);
  return ec == std::errc{} && ptr == s.data() + s.size();
}

bool apply_option(const std::string& key, uint64_t value,
                  protocol::ProtocolConfig& proto) {
  if (key == "personal_window") {
    proto.personal_window = static_cast<uint32_t>(value);
  } else if (key == "global_window") {
    proto.global_window = static_cast<uint32_t>(value);
  } else if (key == "accelerated_window") {
    proto.accelerated_window = static_cast<uint32_t>(value);
  } else if (key == "max_seq_gap") {
    proto.max_seq_gap = static_cast<protocol::SeqNum>(value);
  } else if (key == "max_pending") {
    proto.max_pending = value;
  } else if (key == "token_retransmit_timeout_ms") {
    proto.timeouts.token_retransmit = util::msec(static_cast<int64_t>(value));
  } else if (key == "token_loss_timeout_ms") {
    proto.timeouts.token_loss = util::msec(static_cast<int64_t>(value));
  } else if (key == "join_timeout_ms") {
    proto.timeouts.join = util::msec(static_cast<int64_t>(value));
  } else if (key == "consensus_timeout_ms") {
    proto.timeouts.consensus = util::msec(static_cast<int64_t>(value));
  } else if (key == "idle_token_hold_us") {
    proto.timeouts.idle_token_hold = util::usec(static_cast<int64_t>(value));
  } else if (key == "packing") {
    proto.enable_packing = value != 0;
  } else if (key == "packing_budget") {
    proto.packing_budget = value;
  } else if (key == "auto_tune") {
    proto.auto_tune = value != 0;
  } else if (key == "adaptive_timeouts") {
    proto.adaptive_timeouts = value != 0;
  } else {
    return false;
  }
  return true;
}

}  // namespace

std::optional<DeploymentConfig> parse_config_text(std::string_view text,
                                                  ConfigError& error) {
  DeploymentConfig config;
  int line_number = 0;
  std::istringstream stream{std::string(text)};
  std::string line;
  while (std::getline(stream, line)) {
    ++line_number;
    const auto tokens = tokenize(line);
    if (tokens.empty()) continue;
    const std::string& directive = tokens[0];

    if (directive == "daemon") {
      if (tokens.size() != 5) {
        error = {line_number, "daemon needs: pid ip data_port token_port"};
        return std::nullopt;
      }
      uint32_t pid = 0;
      uint32_t data_port = 0;
      uint32_t token_port = 0;
      if (!parse_number(tokens[1], pid) || pid > 0xFFFE) {
        error = {line_number, "bad daemon pid: " + tokens[1]};
        return std::nullopt;
      }
      if (!parse_number(tokens[3], data_port) || data_port > 65535 ||
          !parse_number(tokens[4], token_port) || token_port > 65535) {
        error = {line_number, "bad port"};
        return std::nullopt;
      }
      const auto id = static_cast<protocol::ProcessId>(pid);
      if (config.peers.contains(id)) {
        error = {line_number, "duplicate daemon pid: " + tokens[1]};
        return std::nullopt;
      }
      config.peers[id] = transport::PeerAddress{
          tokens[2], static_cast<uint16_t>(data_port),
          static_cast<uint16_t>(token_port)};
    } else if (directive == "protocol") {
      if (tokens.size() != 2 ||
          (tokens[1] != "accelerated" && tokens[1] != "original")) {
        error = {line_number, "protocol must be 'accelerated' or 'original'"};
        return std::nullopt;
      }
      config.proto.variant = tokens[1] == "original"
                                 ? protocol::Variant::kOriginal
                                 : protocol::Variant::kAccelerated;
    } else if (directive == "option") {
      uint64_t value = 0;
      if (tokens.size() != 3 || !parse_number(tokens[2], value)) {
        error = {line_number, "option needs: name numeric_value"};
        return std::nullopt;
      }
      if (!apply_option(tokens[1], value, config.proto)) {
        error = {line_number, "unknown option: " + tokens[1]};
        return std::nullopt;
      }
    } else {
      error = {line_number, "unknown directive: " + directive};
      return std::nullopt;
    }
  }
  if (config.peers.empty()) {
    error = {line_number, "no daemons defined"};
    return std::nullopt;
  }
  return config;
}

std::optional<DeploymentConfig> load_config_file(const std::string& path,
                                                 ConfigError& error) {
  std::ifstream file(path);
  if (!file) {
    error = {0, "cannot open " + path};
    return std::nullopt;
  }
  std::stringstream buffer;
  buffer << file.rdbuf();
  return parse_config_text(buffer.str(), error);
}

}  // namespace accelring::daemon
