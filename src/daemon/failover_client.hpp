// Session failover: a client that survives its daemon's death.
//
// The plain daemon::Client is a thin RAII handle — if the daemon restarts,
// the session and everything in flight is gone. FailoverClient wraps the
// same surface with the three mechanisms a deployable client library needs
// (the paper's Spread deployments assume the client library provides them):
//
//  * Reconnect with jittered exponential backoff (util::Backoff): on
//    disconnect the client schedules reconnect attempts through a
//    caller-supplied timer, so a fleet of clients that lost the same daemon
//    does not stampede the replacement.
//  * Session resumption with duplicate suppression: every send is framed
//    with a stable session uuid and a per-session sequence number, kept in
//    an outbox until the framed message comes back through the total order
//    (its ack). On reconnect the outbox is resent — and every receiver
//    suppresses (uuid, seq) pairs at or below the highest contiguously
//    delivered seq per uuid, so a message acked-but-unobserved-by-the-sender
//    is not delivered twice anywhere. Exactly-once delivery per surviving
//    receiver, at the cost of 16 bytes per message.
//  * Membership-change delivery: ring configuration changes reach the
//    application callback, so it can distinguish "my daemon is reachable
//    but the ring is reforming" from silence.
//
// Transport-agnostic: the client reaches its daemon through a DaemonFn
// (returning nullptr while the daemon is down) and schedules its own timers
// through a ScheduleFn, so the identical class runs under the discrete-event
// simulator (src/check/ client fleet) and a real event loop.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <set>
#include <string>

#include "daemon/client.hpp"
#include "daemon/daemon.hpp"
#include "util/backoff.hpp"

namespace accelring::daemon {

/// [u64 session uuid][u64 seq][payload] — the resumption frame wrapped
/// around every application payload.
struct SessionFrame {
  uint64_t uuid = 0;
  uint64_t seq = 0;
  std::span<const std::byte> payload;
};

[[nodiscard]] std::vector<std::byte> encode_session_frame(
    uint64_t uuid, uint64_t seq, std::span<const std::byte> payload);
[[nodiscard]] std::optional<SessionFrame> decode_session_frame(
    std::span<const std::byte> frame);

/// Suppresses duplicate (uuid, seq) observations across daemon failover:
/// per uuid, a contiguous floor plus a sparse set of seqs above it.
class DuplicateFilter {
 public:
  /// Hard bound on the per-uuid sparse set. A seq that never arrives would
  /// otherwise pin the floor forever and let the set grow without limit (a
  /// slow leak keyed by whichever client reorders worst). At the cap the
  /// floor jumps to the smallest sparse element, conceding the gap as
  /// "seen": suppression stays exact for any reordering window narrower
  /// than the cap, and memory stays O(kMaxSparse) per session regardless.
  static constexpr size_t kMaxSparse = 1024;

  /// Returns true when (uuid, seq) was seen before (a duplicate).
  bool seen(uint64_t uuid, uint64_t seq);
  [[nodiscard]] uint64_t suppressed() const { return suppressed_; }
  /// Sparse entries currently held for `uuid` (tests / monitoring).
  [[nodiscard]] size_t sparse_size(uint64_t uuid) const {
    const auto it = per_uuid_.find(uuid);
    return it == per_uuid_.end() ? 0 : it->second.above.size();
  }

 private:
  struct PerUuid {
    uint64_t floor = 0;  ///< all seqs <= floor observed (seqs start at 1)
    std::set<uint64_t> above;
  };
  std::map<uint64_t, PerUuid> per_uuid_;
  uint64_t suppressed_ = 0;
};

class FailoverClient {
 public:
  using MessageFn = Client::MessageFn;
  using MembershipFn =
      std::function<void(const protocol::ConfigurationChange&)>;
  /// The client's window to its local daemon; nullptr while it is down.
  using DaemonFn = std::function<Daemon*()>;
  /// Run `fn` after `delay` (simulated or real time).
  using ScheduleFn = std::function<void(util::Nanos delay,
                                        std::function<void()> fn)>;

  struct Stats {
    uint64_t reconnects = 0;   ///< successful (re)connections
    uint64_t resends = 0;      ///< outbox messages resent after reconnect
    uint64_t acked = 0;        ///< sends confirmed through the total order
    uint64_t rejected_sends = 0;  ///< sends shed by daemon backpressure
    uint64_t duplicates_suppressed = 0;
  };

  /// `uuid` must be unique across all clients of the deployment and stable
  /// across this client's own reconnects (it keys duplicate suppression).
  FailoverClient(DaemonFn daemon, ScheduleFn schedule, std::string name,
                 uint64_t uuid, util::Backoff backoff,
                 MessageFn on_message = {}, MembershipFn on_membership = {});

  FailoverClient(const FailoverClient&) = delete;
  FailoverClient& operator=(const FailoverClient&) = delete;

  /// First connection attempt (immediate); retries follow the backoff.
  void connect();
  /// The daemon died (or the IPC broke): drop the session and start the
  /// reconnect loop. Idempotent; safe to call on every observed failure.
  void notify_disconnect();

  bool join(const std::string& group);
  /// Framed, tracked send to one group. Returns false — the message is
  /// dropped — only when the outbox is full; a send the daemon sheds stays
  /// in the outbox and is retried, so `true` means at-least-once submission
  /// (and the receivers' duplicate filter makes it exactly-once).
  bool send(const std::string& group, Service service,
            std::span<const std::byte> payload);

  [[nodiscard]] bool connected() const { return session_ != 0; }
  [[nodiscard]] bool slowed() const { return slowed_; }
  [[nodiscard]] size_t unacked() const { return outbox_.size(); }
  [[nodiscard]] uint64_t uuid() const { return uuid_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  struct Unacked {
    uint64_t seq = 0;
    std::string group;
    Service service = Service::kAgreed;
    std::vector<std::byte> frame;  ///< encoded session frame, ready to send
    bool in_flight = false;  ///< submitted to the current daemon session
  };

  void try_connect();
  void schedule_reconnect();
  void on_daemon_message(const std::string& group, const std::string& sender,
                         Service service, std::span<const std::byte> payload);
  /// Submit every outbox entry not yet in flight on the current session;
  /// reschedules itself while the daemon sheds.
  void flush_outbox();

  DaemonFn daemon_;
  ScheduleFn schedule_;
  std::string name_;
  uint64_t uuid_;
  util::Backoff backoff_;
  MessageFn on_message_;
  MembershipFn on_membership_;

  ClientId session_ = 0;  ///< 0 = disconnected
  bool reconnect_pending_ = false;
  bool slowed_ = false;
  uint64_t next_seq_ = 1;
  std::deque<Unacked> outbox_;
  std::set<std::string> joined_;
  DuplicateFilter dedup_;
  Stats stats_;

  /// Bound on unacked sends while disconnected; beyond it send() sheds.
  static constexpr size_t kOutboxLimit = 1024;
};

}  // namespace accelring::daemon
