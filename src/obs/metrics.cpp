#include "obs/metrics.hpp"

namespace accelring::obs {

int64_t Histogram::quantile(double q) const {
  if (count_ == 0) return 0;
  if (q <= 0.0) return min();
  if (q >= 1.0) return max();
  // Rank of the requested sample, 1-based: ceil(q * n), clamped to [1, n].
  uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(count_));
  if (static_cast<double>(rank) < q * static_cast<double>(count_)) ++rank;
  if (rank < 1) rank = 1;
  if (rank > count_) rank = count_;

  if (rank <= underflow_) return min();  // inside the negative samples
  uint64_t seen = underflow_;
  for (int i = 0; i < kBuckets; ++i) {
    const uint64_t in_bucket = buckets_[i];
    if (in_bucket == 0) continue;
    if (rank > seen + in_bucket) {
      seen += in_bucket;
      continue;
    }
    // Interpolate by rank position within [lo, hi); clamp to the true
    // extrema so single-bucket distributions report exact values.
    const int64_t lo = i == 0 ? 0 : (int64_t{1} << i);
    const int64_t hi = (int64_t{1} << (i + 1));
    const double frac = in_bucket <= 1
                            ? 0.0
                            : static_cast<double>(rank - seen - 1) /
                                  static_cast<double>(in_bucket - 1);
    int64_t est =
        lo + static_cast<int64_t>(frac * static_cast<double>(hi - 1 - lo));
    if (est > max_) est = max_;
    if (est < min_) est = min_;
    return est;
  }
  return max();
}

void Histogram::merge(const Histogram& other) {
  if (other.count_ == 0) return;
  if (count_ == 0 || other.min_ < min_) min_ = other.min_;
  if (count_ == 0 || other.max_ > max_) max_ = other.max_;
  count_ += other.count_;
  sum_ += other.sum_;
  underflow_ += other.underflow_;
  for (int i = 0; i < kBuckets; ++i) buckets_[i] += other.buckets_[i];
}

Counter& MetricsRegistry::counter(std::string_view component,
                                  std::string_view name) {
  auto& slot = counters_[Key{std::string(component), std::string(name)}];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(std::string_view component,
                              std::string_view name) {
  auto& slot = gauges_[Key{std::string(component), std::string(name)}];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(std::string_view component,
                                      std::string_view name) {
  auto& slot = histograms_[Key{std::string(component), std::string(name)}];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

namespace {

template <typename Map>
auto* find_in(const Map& map, std::string_view component,
              std::string_view name) {
  const auto it =
      map.find(MetricsRegistry::Key{std::string(component), std::string(name)});
  return it == map.end() ? nullptr : it->second.get();
}

}  // namespace

const Counter* MetricsRegistry::find_counter(std::string_view component,
                                             std::string_view name) const {
  return find_in(counters_, component, name);
}

const Gauge* MetricsRegistry::find_gauge(std::string_view component,
                                         std::string_view name) const {
  return find_in(gauges_, component, name);
}

const Histogram* MetricsRegistry::find_histogram(std::string_view component,
                                                 std::string_view name) const {
  return find_in(histograms_, component, name);
}

void MetricsRegistry::merge_from(const MetricsRegistry& other) {
  for (const auto& [key, metric] : other.counters_) {
    counter(key.first, key.second).merge(*metric);
  }
  for (const auto& [key, metric] : other.gauges_) {
    gauge(key.first, key.second).merge(*metric);
  }
  for (const auto& [key, metric] : other.histograms_) {
    histogram(key.first, key.second).merge(*metric);
  }
}

}  // namespace accelring::obs
