// Serialization of a MetricsRegistry to machine-readable artifacts.
//
// JSON layout (consumed by tools/validate_bench_json.py and
// tools/plot_figures.py):
//
//   {"counters": {"component.name": 42, ...},
//    "gauges":   {"component.name": {"value": 3, "peak": 17}, ...},
//    "histograms": {"component.name": {
//        "count": 1000, "underflow": 0, "overflow": 0,
//        "min": 120, "max": 91000, "mean": 4512.8,
//        "p50": 4100, "p90": 8200, "p99": 30100, "p999": 88000,
//        "buckets": [[12, 3], [13, 997]]   // [bucket index, count], nonzero
//    }, ...}}
//
// Iteration order comes from the registry's std::map, so output is
// byte-stable for a given set of recorded values.
#pragma once

#include <string>

#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace accelring::obs {

/// Append the registry as a JSON object value (caller controls surrounding
/// structure — used both for standalone exports and for embedding the metric
/// snapshot inside a flight-recorder artifact).
void append_registry(JsonWriter& w, const MetricsRegistry& registry);

/// The registry alone as a complete JSON document.
[[nodiscard]] std::string registry_to_json(const MetricsRegistry& registry);

/// Flat CSV: kind,component,name,count,min,mean,p50,p90,p99,p999,max,value.
/// Counters/gauges fill only the `value` column; histograms only the latency
/// columns. One header row.
[[nodiscard]] std::string registry_to_csv(const MetricsRegistry& registry);

}  // namespace accelring::obs
