#include "obs/json.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>

namespace accelring::obs {

JsonWriter& JsonWriter::open(char c) {
  if (!after_key_) comma();
  after_key_ = false;
  out_.push_back(c);
  needs_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::close(char c) {
  out_.push_back(c);
  if (!needs_comma_.empty()) needs_comma_.pop_back();
  if (!needs_comma_.empty()) needs_comma_.back() = true;
  return *this;
}

void JsonWriter::comma() {
  if (!needs_comma_.empty()) {
    if (needs_comma_.back()) out_.push_back(',');
    needs_comma_.back() = true;
  }
}

JsonWriter& JsonWriter::key(std::string_view k) {
  comma();
  needs_comma_.back() = false;  // the value completes this member
  out_.push_back('"');
  out_ += json_escape(k);
  out_ += "\":";
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view s) {
  if (!after_key_) comma();
  after_key_ = false;
  if (!needs_comma_.empty()) needs_comma_.back() = true;
  out_.push_back('"');
  out_ += json_escape(s);
  out_.push_back('"');
  return *this;
}

JsonWriter& JsonWriter::value(int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  if (!after_key_) comma();
  after_key_ = false;
  if (!needs_comma_.empty()) needs_comma_.back() = true;
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  if (!after_key_) comma();
  after_key_ = false;
  if (!needs_comma_.empty()) needs_comma_.back() = true;
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  char buf[48];
  // %.10g round-trips every value we emit (latencies, rates) and never
  // produces inf/nan-free surprises for the magnitudes involved; guard the
  // non-finite cases explicitly since JSON has no spelling for them.
  if (v != v || v > 1e300 || v < -1e300) {
    return value(int64_t{0});
  }
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  if (!after_key_) comma();
  after_key_ = false;
  if (!needs_comma_.empty()) needs_comma_.back() = true;
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  if (!after_key_) comma();
  after_key_ = false;
  if (!needs_comma_.empty()) needs_comma_.back() = true;
  out_ += v ? "true" : "false";
  return *this;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

namespace {

/// Recursive-descent validator. `pos` advances past the parsed value.
class Validator {
 public:
  explicit Validator(std::string_view text) : text_(text) {}

  [[nodiscard]] bool document() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == text_.size();
  }

 private:
  [[nodiscard]] bool value() {
    if (depth_ > 256 || pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{':
        return object();
      case '[':
        return array();
      case '"':
        return string();
      case 't':
        return literal("true");
      case 'f':
        return literal("false");
      case 'n':
        return literal("null");
      default:
        return number();
    }
  }

  [[nodiscard]] bool object() {
    ++depth_;
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      --depth_;
      return true;
    }
    while (true) {
      skip_ws();
      if (peek() != '"' || !string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') {
        ++pos_;
        --depth_;
        return true;
      }
      return false;
    }
  }

  [[nodiscard]] bool array() {
    ++depth_;
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      --depth_;
      return true;
    }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') {
        ++pos_;
        --depth_;
        return true;
      }
      return false;
    }
  }

  [[nodiscard]] bool string() {
    ++pos_;  // opening quote
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
        const char esc = text_[pos_];
        if (esc == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= text_.size() || !is_hex(text_[pos_])) return false;
          }
        } else if (esc != '"' && esc != '\\' && esc != '/' && esc != 'b' &&
                   esc != 'f' && esc != 'n' && esc != 'r' && esc != 't') {
          return false;
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        return false;
      }
      ++pos_;
    }
    return false;
  }

  [[nodiscard]] bool number() {
    const size_t start = pos_;
    if (peek() == '-') ++pos_;
    if (!is_digit(peek())) return false;
    while (is_digit(peek())) ++pos_;
    if (peek() == '.') {
      ++pos_;
      if (!is_digit(peek())) return false;
      while (is_digit(peek())) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      if (!is_digit(peek())) return false;
      while (is_digit(peek())) ++pos_;
    }
    return pos_ > start;
  }

  [[nodiscard]] bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  [[nodiscard]] char peek() const {
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }
  [[nodiscard]] static bool is_digit(char c) { return c >= '0' && c <= '9'; }
  [[nodiscard]] static bool is_hex(char c) {
    return is_digit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F');
  }

  std::string_view text_;
  size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

bool json_valid(std::string_view text) { return Validator(text).document(); }

bool write_text_file(const std::string& path, std::string_view text) {
  std::error_code ec;
  const std::filesystem::path p(path);
  if (p.has_parent_path()) {
    std::filesystem::create_directories(p.parent_path(), ec);
    if (ec) return false;
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out.write(text.data(), static_cast<std::streamsize>(text.size()));
  out.close();
  return out.good();
}

}  // namespace accelring::obs
