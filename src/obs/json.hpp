// Minimal JSON emission (and validation) for observability artifacts.
//
// The exporters produce machine-readable files — BENCH_*.json next to every
// figure binary's stdout, and flight-recorder artifacts on campaign
// failures — consumed by tools/plot_figures.py and
// tools/validate_bench_json.py. A third-party JSON library is deliberately
// avoided: the writer is ~100 lines, emission order is fully under our
// control (deterministic, so artifacts diff cleanly across runs), and the
// container ships no such dependency.
//
// JsonWriter tracks nesting and comma placement; keys and string values are
// escaped per RFC 8259. valid() is a strict structural validator used by
// tests to assert artifacts parse without shelling out to python.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace accelring::obs {

class JsonWriter {
 public:
  JsonWriter& begin_object() { return open('{'); }
  JsonWriter& end_object() { return close('}'); }
  JsonWriter& begin_array() { return open('['); }
  JsonWriter& end_array() { return close(']'); }

  /// Key inside an object; follow with a value or begin_*.
  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::string_view s);
  JsonWriter& value(const char* s) { return value(std::string_view(s)); }
  JsonWriter& value(int64_t v);
  JsonWriter& value(uint64_t v);
  JsonWriter& value(int v) { return value(static_cast<int64_t>(v)); }
  JsonWriter& value(double v);
  JsonWriter& value(bool v);

  /// Convenience: key + scalar value in one call.
  template <typename T>
  JsonWriter& kv(std::string_view k, T v) {
    key(k);
    return value(v);
  }

  [[nodiscard]] std::string take() && { return std::move(out_); }
  [[nodiscard]] const std::string& str() const { return out_; }

 private:
  JsonWriter& open(char c);
  JsonWriter& close(char c);
  void comma();

  std::string out_;
  std::vector<bool> needs_comma_;  ///< per open container
  bool after_key_ = false;
};

/// Escape a string for embedding in JSON (no surrounding quotes).
[[nodiscard]] std::string json_escape(std::string_view s);

/// Strict structural validation of a complete JSON document (objects,
/// arrays, strings, numbers, true/false/null; UTF-8 passed through).
[[nodiscard]] bool json_valid(std::string_view text);

/// Write `text` to `path` atomically enough for test artifacts (truncate +
/// write + close). Returns false on any I/O error. Parent directories are
/// created as needed.
[[nodiscard]] bool write_text_file(const std::string& path,
                                   std::string_view text);

}  // namespace accelring::obs
