#include "obs/flight.hpp"

#include <cstdio>

#include "obs/export.hpp"
#include "obs/json.hpp"

namespace accelring::obs {

const char* trace_event_name(util::TraceEvent event) {
  using util::TraceEvent;
  switch (event) {
    case TraceEvent::kTokenRx:
      return "token_rx";
    case TraceEvent::kTokenTx:
      return "token_tx";
    case TraceEvent::kDataTxPre:
      return "data_tx_pre";
    case TraceEvent::kDataTxPost:
      return "data_tx_post";
    case TraceEvent::kRetransTx:
      return "retrans_tx";
    case TraceEvent::kDataRx:
      return "data_rx";
    case TraceEvent::kDeliver:
      return "deliver";
    case TraceEvent::kRtrAdd:
      return "rtr_add";
    case TraceEvent::kMembership:
      return "membership";
    case TraceEvent::kMergeDeliver:
      return "merge_deliver";
    case TraceEvent::kSkipMsg:
      return "skip_msg";
    case TraceEvent::kGatherEnter:
      return "gather_enter";
    case TraceEvent::kViewChange:
      return "view_change";
    case TraceEvent::kQuarantine:
      return "quarantine";
    case TraceEvent::kProbation:
      return "probation";
    case TraceEvent::kReadmit:
      return "readmit";
  }
  return "unknown";
}

std::string flight_to_json(const FlightRecord& record) {
  JsonWriter w;
  w.begin_object();
  w.kv("scenario", record.scenario);
  w.kv("seed", record.seed);
  w.kv("captured_at_ns", record.captured_at);
  w.key("violations").begin_array();
  for (const auto& v : record.violations) w.value(v);
  w.end_array();
  if (!record.storage_faults.empty()) {
    w.key("storage_faults").begin_array();
    for (const auto& f : record.storage_faults) w.value(f);
    w.end_array();
  }
  w.key("nodes").begin_array();
  for (const auto& node : record.nodes) {
    w.begin_object();
    w.kv("name", node.name);
    w.kv("events_total", static_cast<uint64_t>(node.events.size()));
    const size_t first = node.events.size() > record.last_n
                             ? node.events.size() - record.last_n
                             : 0;
    w.key("events").begin_array();
    for (size_t i = first; i < node.events.size(); ++i) {
      const auto& r = node.events[i];
      w.begin_object()
          .kv("at_ns", r.at)
          .kv("event", trace_event_name(r.event))
          .kv("a", r.a)
          .kv("b", r.b)
          .end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  if (record.metrics != nullptr) {
    w.key("metrics");
    append_registry(w, *record.metrics);
  }
  w.end_object();
  return std::move(w).take();
}

std::string flight_path(const std::string& dir, const std::string& scenario,
                        uint64_t seed) {
  std::string safe;
  safe.reserve(scenario.size());
  for (const char c : scenario) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '-';
    safe.push_back(ok ? c : '_');
  }
  if (safe.empty()) safe = "run";
  char tail[48];
  std::snprintf(tail, sizeof(tail), "_%llu.json",
                static_cast<unsigned long long>(seed));
  return dir + "/" + safe + tail;
}

std::string dump_flight(const FlightRecord& record, const std::string& dir) {
  if (dir.empty()) return "";
  const std::string path = flight_path(dir, record.scenario, record.seed);
  if (!write_text_file(path, flight_to_json(record))) return "";
  return path;
}

}  // namespace accelring::obs
