// Failure flight recorder.
//
// When a fault campaign's oracle trips (or a healthy member is quarantined),
// the raw material for diagnosis is already in memory: every node carries a
// util::Tracer ring of its recent protocol events, and — when metrics are
// enabled — a registry of counters and latency histograms. A FlightRecord
// bundles those into one JSON artifact written to
// `<artifact_dir>/<scenario>_<seed>.json`, so a CI failure ships its own
// black box instead of a bare seed number. Bench binaries can dump the same
// record on demand for healthy runs.
//
// Artifact layout:
//   {"scenario": ..., "seed": ..., "captured_at_ns": ...,
//    "violations": ["..."],
//    "nodes": [{"name": "ring0/node1",
//               "events": [{"at_ns":..., "event":"token_rx",
//                           "a":..., "b":...}, ...]}, ...],
//    "metrics": {...}}               // registry snapshot, may be absent
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "util/time.hpp"
#include "util/trace.hpp"

namespace accelring::obs {

struct FlightNode {
  std::string name;  ///< "node2" single-ring, "ring1/node2" multi-ring
  std::vector<util::TraceRecord> events;
};

struct FlightRecord {
  std::string scenario;
  uint64_t seed = 0;
  util::Nanos captured_at = 0;
  std::vector<std::string> violations;  ///< empty for on-demand dumps
  /// Injected storage-fault schedule (per-node SimDisk fault logs, prefixed
  /// with the node name). Serialized only when non-empty, so artifacts from
  /// non-durable runs are unchanged.
  std::vector<std::string> storage_faults;
  std::vector<FlightNode> nodes;
  const MetricsRegistry* metrics = nullptr;  ///< optional, not owned

  /// Per-node cap on serialized events (the most recent kept). The tracer
  /// ring already bounds memory; this bounds artifact size.
  size_t last_n = 256;
};

/// Stable lowercase name for a trace event ("token_rx", "merge_deliver", …).
[[nodiscard]] const char* trace_event_name(util::TraceEvent event);

[[nodiscard]] std::string flight_to_json(const FlightRecord& record);

/// `<dir>/<scenario>_<seed>.json`, scenario sanitized to [A-Za-z0-9_-].
[[nodiscard]] std::string flight_path(const std::string& dir,
                                      const std::string& scenario,
                                      uint64_t seed);

/// Serialize and write in one step. Returns the path written, or "" on I/O
/// failure (artifact dumping must never turn a diagnosed failure into a
/// crash).
std::string dump_flight(const FlightRecord& record, const std::string& dir);

}  // namespace accelring::obs
