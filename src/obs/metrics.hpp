// Observability substrate: counters, gauges, and log2 latency histograms in
// a registry keyed by (component, name).
//
// Design constraints, in priority order:
//
//  1. Zero perturbation. Recording writes plain memory and never reads a
//     clock, allocates, or charges simulated CPU, so a run with metrics
//     attached is event-for-event identical to a run without them
//     (tests/obs_determinism_test.cpp pins this as an invariant — every
//     seed-identical A/B experiment in the repo depends on it).
//  2. Zero heap allocation on the hot path. Histograms are fixed arrays of
//     buckets; registry lookups happen once at wiring time and hand back
//     stable pointers that instrumentation sites keep.
//  3. Mergeable. Bucket counts, counters, and extrema combine across nodes
//     (and across rings) so a cluster-wide latency distribution is the
//     element-wise sum of the per-node ones, with quantiles computed after
//     the merge — which is exactly as accurate as recording into one shared
//     histogram would have been.
//
// Histogram buckets are powers of two: bucket i counts values in
// [2^i, 2^(i+1)). Quantile estimates interpolate linearly inside the bucket,
// so the error is bounded by the bucket width (a fixed relative error of at
// most 2x, typically far less; tests/histogram_property_test.cpp checks the
// bound against a sorted-vector oracle). The true maximum and minimum are
// tracked exactly.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "util/time.hpp"

namespace accelring::obs {

using util::Nanos;

/// Monotonic event count. merge() sums.
class Counter {
 public:
  void inc(uint64_t n = 1) { value_ += n; }
  /// Overwrite (snapshot-style mirroring of an externally kept counter).
  void set(uint64_t v) { value_ = v; }
  [[nodiscard]] uint64_t value() const { return value_; }
  void merge(const Counter& other) { value_ += other.value_; }

 private:
  uint64_t value_ = 0;
};

/// Instantaneous level with a peak watermark. merge() sums levels and takes
/// the max of peaks (the natural combination for per-node queue depths).
class Gauge {
 public:
  void set(int64_t v) {
    value_ = v;
    if (v > peak_) peak_ = v;
  }
  void add(int64_t delta) { set(value_ + delta); }
  [[nodiscard]] int64_t value() const { return value_; }
  [[nodiscard]] int64_t peak() const { return peak_; }
  void merge(const Gauge& other) {
    value_ += other.value_;
    if (other.peak_ > peak_) peak_ = other.peak_;
  }

 private:
  int64_t value_ = 0;
  int64_t peak_ = 0;
};

/// Fixed-bucket log2 histogram of non-negative integer samples (typically
/// nanoseconds). record() is two array stores and a handful of compares.
class Histogram {
 public:
  /// Bucket i spans [2^i, 2^(i+1)); bucket 0 also absorbs the value 0 and
  /// bucket kBuckets-1 absorbs everything at or above 2^(kBuckets-1)
  /// (overflow). Negative samples land in a dedicated underflow count and
  /// participate in rank arithmetic as "below every bucket".
  static constexpr int kBuckets = 63;

  void record(int64_t value) {
    ++count_;
    sum_ += value;
    if (count_ == 1 || value < min_) min_ = value;
    if (count_ == 1 || value > max_) max_ = value;
    if (value < 0) {
      ++underflow_;
      return;
    }
    ++buckets_[bucket_of(value)];
  }

  [[nodiscard]] uint64_t count() const { return count_; }
  [[nodiscard]] uint64_t underflow() const { return underflow_; }
  /// Samples in the top (overflow) bucket.
  [[nodiscard]] uint64_t overflow() const { return buckets_[kBuckets - 1]; }
  [[nodiscard]] int64_t min() const { return count_ == 0 ? 0 : min_; }
  [[nodiscard]] int64_t max() const { return count_ == 0 ? 0 : max_; }
  [[nodiscard]] double mean() const {
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_) / static_cast<double>(count_);
  }
  [[nodiscard]] uint64_t bucket(int i) const { return buckets_[i]; }

  /// Quantile estimate for q in [0, 1]: the rank-⌈q·n⌉ sample's bucket,
  /// linearly interpolated by rank position inside the bucket. q=0 and q=1
  /// return the exact tracked extrema. Error within a bucket is bounded by
  /// the bucket's width.
  [[nodiscard]] int64_t quantile(double q) const;

  /// Element-wise sum of bucket counts and extrema; quantiles of the merged
  /// histogram equal quantiles of the concatenated sample streams (within
  /// the same bucket-width bound).
  void merge(const Histogram& other);

  void clear() { *this = Histogram{}; }

 private:
  [[nodiscard]] static int bucket_of(int64_t value) {
    // value >= 0. Index of the highest set bit, clamped to the top bucket.
    int i = 0;
    for (uint64_t v = static_cast<uint64_t>(value); v > 1; v >>= 1) ++i;
    return i < kBuckets ? i : kBuckets - 1;
  }

  uint64_t buckets_[kBuckets] = {};
  uint64_t underflow_ = 0;
  uint64_t count_ = 0;
  int64_t sum_ = 0;
  int64_t min_ = 0;
  int64_t max_ = 0;
};

/// Owning registry of metrics keyed by (component, name), e.g.
/// ("protocol", "token_rotation_ns"). Lookup interns the metric on first use
/// and returns a stable reference instrumentation sites keep for the run
/// (the map is never erased from). Iteration order is deterministic
/// (lexicographic), so exports are byte-stable across runs.
class MetricsRegistry {
 public:
  using Key = std::pair<std::string, std::string>;

  Counter& counter(std::string_view component, std::string_view name);
  Gauge& gauge(std::string_view component, std::string_view name);
  Histogram& histogram(std::string_view component, std::string_view name);

  /// Read-only lookup (no interning): nullptr when the metric was never
  /// created. The accessors snapshot consumers (exporters, tests) want.
  [[nodiscard]] const Counter* find_counter(std::string_view component,
                                            std::string_view name) const;
  [[nodiscard]] const Gauge* find_gauge(std::string_view component,
                                        std::string_view name) const;
  [[nodiscard]] const Histogram* find_histogram(std::string_view component,
                                                std::string_view name) const;

  [[nodiscard]] const std::map<Key, std::unique_ptr<Counter>>& counters()
      const {
    return counters_;
  }
  [[nodiscard]] const std::map<Key, std::unique_ptr<Gauge>>& gauges() const {
    return gauges_;
  }
  [[nodiscard]] const std::map<Key, std::unique_ptr<Histogram>>& histograms()
      const {
    return histograms_;
  }

  /// Fold another registry in (cross-node aggregation). Metrics missing here
  /// are created; matching keys merge element-wise.
  void merge_from(const MetricsRegistry& other);

  [[nodiscard]] bool empty() const {
    return counters_.empty() && gauges_.empty() && histograms_.empty();
  }

 private:
  std::map<Key, std::unique_ptr<Counter>> counters_;
  std::map<Key, std::unique_ptr<Gauge>> gauges_;
  std::map<Key, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace accelring::obs
