#include "obs/export.hpp"

#include <cstdio>

namespace accelring::obs {

namespace {

std::string joined(const MetricsRegistry::Key& key) {
  return key.first + "." + key.second;
}

void append_histogram(JsonWriter& w, const Histogram& h) {
  w.begin_object();
  w.kv("count", h.count());
  w.kv("underflow", h.underflow());
  w.kv("overflow", h.overflow());
  w.kv("min", h.min());
  w.kv("max", h.max());
  w.kv("mean", h.mean());
  w.kv("p50", h.quantile(0.50));
  w.kv("p90", h.quantile(0.90));
  w.kv("p99", h.quantile(0.99));
  w.kv("p999", h.quantile(0.999));
  w.key("buckets").begin_array();
  for (int i = 0; i < Histogram::kBuckets; ++i) {
    if (h.bucket(i) == 0) continue;
    w.begin_array().value(i).value(h.bucket(i)).end_array();
  }
  w.end_array();
  w.end_object();
}

}  // namespace

void append_registry(JsonWriter& w, const MetricsRegistry& registry) {
  w.begin_object();
  w.key("counters").begin_object();
  for (const auto& [key, metric] : registry.counters()) {
    w.kv(joined(key), metric->value());
  }
  w.end_object();
  w.key("gauges").begin_object();
  for (const auto& [key, metric] : registry.gauges()) {
    w.key(joined(key))
        .begin_object()
        .kv("value", metric->value())
        .kv("peak", metric->peak())
        .end_object();
  }
  w.end_object();
  w.key("histograms").begin_object();
  for (const auto& [key, metric] : registry.histograms()) {
    w.key(joined(key));
    append_histogram(w, *metric);
  }
  w.end_object();
  w.end_object();
}

std::string registry_to_json(const MetricsRegistry& registry) {
  JsonWriter w;
  append_registry(w, registry);
  return std::move(w).take();
}

std::string registry_to_csv(const MetricsRegistry& registry) {
  std::string out =
      "kind,component,name,count,min,mean,p50,p90,p99,p999,max,value\n";
  char buf[256];
  for (const auto& [key, metric] : registry.counters()) {
    std::snprintf(buf, sizeof(buf), "counter,%s,%s,,,,,,,,,%llu\n",
                  key.first.c_str(), key.second.c_str(),
                  static_cast<unsigned long long>(metric->value()));
    out += buf;
  }
  for (const auto& [key, metric] : registry.gauges()) {
    std::snprintf(buf, sizeof(buf), "gauge,%s,%s,,,,,,,,%lld,%lld\n",
                  key.first.c_str(), key.second.c_str(),
                  static_cast<long long>(metric->peak()),
                  static_cast<long long>(metric->value()));
    out += buf;
  }
  for (const auto& [key, metric] : registry.histograms()) {
    std::snprintf(
        buf, sizeof(buf),
        "histogram,%s,%s,%llu,%lld,%.1f,%lld,%lld,%lld,%lld,%lld,\n",
        key.first.c_str(), key.second.c_str(),
        static_cast<unsigned long long>(metric->count()),
        static_cast<long long>(metric->min()), metric->mean(),
        static_cast<long long>(metric->quantile(0.50)),
        static_cast<long long>(metric->quantile(0.90)),
        static_cast<long long>(metric->quantile(0.99)),
        static_cast<long long>(metric->quantile(0.999)),
        static_cast<long long>(metric->max()));
    out += buf;
  }
  return out;
}

}  // namespace accelring::obs
