// Receive buffer: sequence-ordered message store with delivery tracking.
//
// One instance per ring incarnation. Holds every data message received (or
// self-inserted by the sender) until it has been delivered and become stable
// (Safe-delivered everywhere, §III-A-4), tracks the local
// all-received-up-to value, the delivery cursor, and produces retransmission
// request lists for the token's rtr field.
#pragma once

#include <map>
#include <vector>

#include "protocol/wire.hpp"

namespace accelring::protocol {

class RecvBuffer {
 public:
  /// Insert a received or self-originated message. Duplicates and messages
  /// at or below the discard line are ignored. Returns true if inserted.
  bool insert(DataMsg msg);

  [[nodiscard]] bool has(SeqNum seq) const;
  [[nodiscard]] const DataMsg* find(SeqNum seq) const;

  /// Local aru: highest seq such that every message <= it has been received.
  [[nodiscard]] SeqNum local_aru() const { return local_aru_; }

  /// Highest sequence number seen in any received message.
  [[nodiscard]] SeqNum high_seq() const { return high_seq_; }

  /// Sequence number of the last message handed to the application.
  [[nodiscard]] SeqNum delivered_up_to() const { return delivered_; }

  /// Pop the next deliverable message, honouring Safe-delivery blocking:
  /// messages are delivered strictly in sequence order; a Safe message with
  /// seq > `safe_line` blocks itself and everything after it (§III-B).
  /// Returns nullptr when nothing further can be delivered.
  [[nodiscard]] const DataMsg* next_deliverable(SeqNum safe_line);
  /// Mark the message returned by next_deliverable as delivered.
  void mark_delivered();

  /// Discard messages with seq <= line; they are stable and will never be
  /// requested again (§III-A-4). Never discards undelivered messages.
  void discard_up_to(SeqNum line);

  /// All sequence numbers in (local_aru, bound] that are missing, excluding
  /// those already in `already_requested` — the token rtr update (§III-A-2).
  [[nodiscard]] std::vector<SeqNum> missing_up_to(
      SeqNum bound, const std::vector<SeqNum>& already_requested) const;

  [[nodiscard]] size_t size() const { return messages_.size(); }

  /// Number of messages not yet delivered (for test introspection).
  [[nodiscard]] size_t undelivered() const;

 private:
  void advance_aru();

  std::map<SeqNum, DataMsg> messages_;
  SeqNum local_aru_ = 0;
  SeqNum high_seq_ = 0;
  SeqNum delivered_ = 0;
  SeqNum discard_line_ = 0;
};

}  // namespace accelring::protocol
