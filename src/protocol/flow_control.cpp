// FlowControl is header-only; this translation unit exists so the build
// catches any missing-definition issues in the header early.
#include "protocol/flow_control.hpp"
