// Adaptive failure-detection timeouts from observed token rotation time.
//
// The static token-loss and consensus timeouts in Timeouts are a compromise:
// set them long and a crashed member stalls the ring for the full constant;
// set them short and a loss burst that merely *stretches* rotation gets a
// live member ejected. This estimator adapts them with the Jacobson/Karels
// RTO filter (SIGCOMM '88) applied to the token rotation time the engine
// actually observes:
//
//   err     = rotation - srtt
//   srtt   += err / 8
//   rttvar += (|err| - rttvar) / 4
//   timeout = srtt + 4 * rttvar + allowance
//
// clamped between a floor (never react faster than a couple of token
// retransmit intervals) and a ceiling (never wait longer than a small
// multiple of the configured static timeout, so a mis-trained estimator
// cannot wedge failure detection). Until `kWarmup` rotations have been
// sampled the estimator reports the static base values unchanged.
//
// The estimator alone cannot ride out the *onset* of a burst — the timer was
// armed with the pre-burst estimate, and fires before the first stretched
// rotation completes and gets sampled. The engine closes that gap with
// liveness-evidence deferral: when adaptive_timeouts is on, any
// authenticated data datagram from the current ring re-arms the token-loss
// timer, because surviving traffic proves the ring is making progress even
// when the token itself keeps getting dropped. Genuine silence for a full
// estimated timeout still triggers membership, so crash detection is
// preserved (and usually *faster* than the static constant on a quiet,
// low-latency network).
#pragma once

#include <algorithm>
#include <cstdint>

#include "protocol/types.hpp"
#include "util/time.hpp"

namespace accelring::protocol {

class TimeoutEstimator {
 public:
  explicit TimeoutEstimator(const ProtocolConfig& cfg) : cfg_(cfg) {}

  /// Feed one observed token rotation (time between consecutive accepted
  /// tokens at this member, operational state only).
  void sample(Nanos rotation) {
    if (rotation <= 0) return;
    if (samples_ == 0) {
      srtt_ = rotation;
      rttvar_ = rotation / 2;
    } else {
      const Nanos err = rotation - srtt_;
      srtt_ += err / 8;
      rttvar_ += ((err < 0 ? -err : err) - rttvar_) / 4;
    }
    ++samples_;
  }

  /// Forget everything (membership change installs a new ring whose rotation
  /// time may be nothing like the old one's).
  void reset() {
    srtt_ = 0;
    rttvar_ = 0;
    samples_ = 0;
  }

  [[nodiscard]] bool warm() const { return samples_ >= kWarmup; }

  /// Token-loss timeout to arm right now.
  [[nodiscard]] Nanos token_loss() const {
    const Timeouts& t = cfg_.timeouts;
    if (!cfg_.adaptive_timeouts || !warm()) return t.token_loss;
    return std::clamp(srtt_ + 4 * rttvar_ + 2 * t.token_retransmit,
                      2 * t.token_retransmit, 4 * t.token_loss);
  }

  /// Consensus timeout for the membership algorithm. Gather/commit needs a
  /// couple of message exchanges among the candidates, not a token rotation,
  /// so the estimate is scaled up and floored at a few join intervals.
  [[nodiscard]] Nanos consensus() const {
    const Timeouts& t = cfg_.timeouts;
    if (!cfg_.adaptive_timeouts || !warm()) return t.consensus;
    return std::clamp(2 * (srtt_ + 4 * rttvar_) + 4 * t.join, 4 * t.join,
                      4 * t.consensus);
  }

  [[nodiscard]] Nanos srtt() const { return srtt_; }
  [[nodiscard]] Nanos rttvar() const { return rttvar_; }
  [[nodiscard]] uint64_t samples() const { return samples_; }

 private:
  static constexpr uint64_t kWarmup = 3;

  const ProtocolConfig& cfg_;
  Nanos srtt_ = 0;
  Nanos rttvar_ = 0;
  uint64_t samples_ = 0;
};

}  // namespace accelring::protocol
