// Gray-failure detection from token-carried health telemetry.
//
// A gray failure is a member that is degraded but not dead: an overloaded or
// throttled CPU, a half-broken NIC that drops a large fraction of received
// frames, a flapping link. The PR-3 failure detector never fires — the
// member keeps forwarding the token — yet the whole ring runs at the
// degraded member's speed (the protocol's throughput is bounded by its
// slowest member).
//
// Every member stamps a TokenHealth entry as the token passes (hold time,
// datagrams sent during the hold, retransmission requests added, send
// backlog), so each rotation delivers a ring-wide health vector. The
// detector scores members from that vector with two *relative* signals:
//
//  * work-normalized hold time (hold_us / datagrams sent) against the ring
//    MEDIAN — a slow CPU makes every unit of work expensive, while a busy
//    but healthy member has a long hold with proportionally more work.
//    Comparing to the median makes ring-wide conditions (uniform loss,
//    congestion, a fabric latency shift) invisible: if everyone slows down,
//    nobody stands out.
//  * sustained retransmit pressure: the fraction of recent rotations in
//    which the member requested retransmissions, compared against the ring
//    median share. A lossy receive path shows up as the one member forever
//    asking for repeats while nobody else does; iid loss makes everyone
//    ask, which again cancels out.
//
// Both signals pass through hysteresis (EWMA smoothing plus a
// consecutive-rotation streak requirement) so a single congested rotation
// never convicts anyone. The verdict only *identifies* the degraded member;
// the eviction itself is a deliberate membership change owned by
// membership::QuarantineManager.
#pragma once

#include <map>
#include <optional>
#include <vector>

#include "protocol/types.hpp"
#include "protocol/wire.hpp"

namespace accelring::protocol {

class GrayFailureDetector {
 public:
  GrayFailureDetector(ProcessId self, const ProtocolConfig::GrayConfig& cfg)
      : self_(self), cfg_(cfg) {}

  /// Ring changed: all history is about the old ring — drop it.
  void reset();

  /// Feed the health vector from one accepted token.
  void observe(const std::vector<TokenHealth>& health);

  /// The member (never self) whose suspect streak crossed the hysteresis
  /// threshold, if any. Ties break to the lowest pid so every observer of
  /// the same history names the same victim.
  [[nodiscard]] std::optional<ProcessId> verdict() const;

  // --- introspection (tests) ----------------------------------------------
  [[nodiscard]] uint32_t streak(ProcessId pid) const;
  [[nodiscard]] double smoothed_unit_cost(ProcessId pid) const;
  [[nodiscard]] uint64_t observations() const { return observations_; }

 private:
  struct MemberScore {
    double unit_ewma = 0.0;  ///< smoothed µs per datagram of token-hold work
    bool initialized = false;
    uint32_t streak = 0;        ///< consecutive suspect rotations
    uint32_t rtr_bits = 0;      ///< rolling window: bit = rotation had rtr
    uint32_t rtr_seen = 0;      ///< rotations recorded into rtr_bits (<= 32)
  };

  [[nodiscard]] double rtr_share(const MemberScore& m) const;

  ProcessId self_;
  const ProtocolConfig::GrayConfig& cfg_;
  std::map<ProcessId, MemberScore> scores_;
  uint64_t observations_ = 0;
};

}  // namespace accelring::protocol
