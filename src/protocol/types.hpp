// Core identifier types and configuration for the ring ordering protocols.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "util/time.hpp"

namespace accelring::protocol {

using util::Nanos;

/// Protocol participant identifier (a daemon, not a client).
using ProcessId = uint16_t;
inline constexpr ProcessId kNoProcess = std::numeric_limits<ProcessId>::max();

/// Position in the total order. 64-bit so wraparound never occurs in
/// practice (Totem used 32-bit sequence numbers with wrap handling).
using SeqNum = int64_t;

/// Identifies one ring configuration (membership epoch).
using RingId = uint64_t;

/// Delivery service requested per message (§II). FIFO and Causal are
/// delivered with Agreed latency and are subsumed by it (paper §II), but are
/// kept distinct on the wire so applications can express intent.
enum class Service : uint8_t {
  kReliable = 0,
  kFifo = 1,
  kCausal = 2,
  kAgreed = 3,
  kSafe = 4,
};

[[nodiscard]] constexpr bool requires_safe(Service s) {
  return s == Service::kSafe;
}

[[nodiscard]] constexpr const char* service_name(Service s) {
  switch (s) {
    case Service::kReliable:
      return "reliable";
    case Service::kFifo:
      return "fifo";
    case Service::kCausal:
      return "causal";
    case Service::kAgreed:
      return "agreed";
    case Service::kSafe:
      return "safe";
  }
  return "?";
}

/// Which ordering protocol to run (§III vs the Totem baseline of [2],[3]).
enum class Variant : uint8_t {
  kOriginal = 0,     ///< Totem single-ring: send everything, then the token
  kAccelerated = 1,  ///< pass the token before multicasting completes
};

/// Token-priority switching method (§III-C).
enum class PriorityMethod : uint8_t {
  /// Method 1: raise token priority on any predecessor data message from the
  /// next round. Fastest rotation; used for the prototypes in the paper.
  kAggressive = 0,
  /// Method 2: additionally require the message to have been sent *after*
  /// the token (post-token flag). Shipped in Spread 4.4; with an accelerated
  /// window of 0 this is identical to the original Ring protocol.
  kConservative = 1,
};

/// One ring configuration: an ordered list of members. The member at index 0
/// is the representative (it increments the round counter and originates the
/// first token).
struct RingConfig {
  RingId ring_id = 0;
  std::vector<ProcessId> members;

  [[nodiscard]] size_t size() const { return members.size(); }
  [[nodiscard]] int index_of(ProcessId pid) const {
    for (size_t i = 0; i < members.size(); ++i) {
      if (members[i] == pid) return static_cast<int>(i);
    }
    return -1;
  }
  [[nodiscard]] ProcessId successor_of(ProcessId pid) const {
    const int i = index_of(pid);
    return members[(static_cast<size_t>(i) + 1) % members.size()];
  }
  [[nodiscard]] ProcessId predecessor_of(ProcessId pid) const {
    const int i = index_of(pid);
    return members[(static_cast<size_t>(i) + members.size() - 1) %
                   members.size()];
  }
  [[nodiscard]] ProcessId representative() const { return members.front(); }
};

/// Every protocol timer base value, in one place. These used to be loose
/// fields scattered through the config; naming the group gives the adaptive
/// failure detector (timeout_estimator.hpp) a single anchor: when
/// ProtocolConfig::adaptive_timeouts is on, the estimator derives the live
/// token-loss and consensus timeouts from observed token rotation time,
/// clamped between floors and ceilings expressed in these base values.
struct Timeouts {
  /// Token retransmission timeout: resend the token if no evidence of
  /// progress after passing it.
  Nanos token_retransmit = util::msec(10);
  /// Token loss timeout: trigger the membership algorithm.
  Nanos token_loss = util::msec(100);
  /// Membership: how long to wait collecting join messages.
  Nanos join = util::msec(20);
  /// Membership: restart gather if consensus/commit stalls this long.
  Nanos consensus = util::msec(200);
  /// Hold the token this long before passing it when the ring is fully idle
  /// (nothing sent for a round, no outstanding retransmissions, aru == seq).
  /// Bounds CPU (and simulated event) load of an idle ring.
  Nanos idle_token_hold = util::usec(200);
};

/// Flow control and protocol tuning (§III-A). Defaults follow Spread's
/// data-center defaults, scaled for an 8-member ring.
struct ProtocolConfig {
  Variant variant = Variant::kAccelerated;
  PriorityMethod priority = PriorityMethod::kAggressive;

  /// Max new messages one participant may initiate per token round.
  uint32_t personal_window = 20;
  /// Max messages (new + retransmitted) all participants may send per round.
  uint32_t global_window = 160;
  /// Max messages a participant may still send after passing the token.
  /// Ignored (treated as 0) when variant == kOriginal.
  uint32_t accelerated_window = 15;
  /// Bound on token.seq - Global_aru: limits how far sequencing may run
  /// ahead of the slowest receiver (receive-buffer bound).
  SeqNum max_seq_gap = 4096;
  /// Bound on the application send queue; submit() fails beyond this.
  size_t max_pending = 10'000;
  /// Adapt the personal and accelerated windows at runtime instead of
  /// relying on hand tuning (the paper notes out-of-the-box Spread 4.3
  /// reached only 50% utilization because "careful tuning of the flow
  /// control parameters ... many users are unlikely to attempt"). Every
  /// `auto_tune_interval` token rounds: halve the window when loss was
  /// observed (retransmissions answered or requested), grow it additively
  /// while the send queue is backlogged and the ring is clean.
  bool auto_tune = false;
  uint32_t auto_tune_interval = 32;   ///< rounds between adjustments
  uint32_t min_personal_window = 2;
  uint32_t max_personal_window = 120;

  /// Pack small application messages into one protocol packet (Spread's
  /// built-in packing, paper §IV-A-3). Messages are packed greedily per
  /// round while they share a service level and fit under packing_budget.
  bool enable_packing = false;
  /// Maximum packed payload size; the default keeps the whole protocol
  /// packet within a standard 1500-byte MTU, like Spread.
  size_t packing_budget = 1350;
  /// ABLATION ONLY: request retransmissions up to the *current* token's seq
  /// instead of the previous round's (§III-A-2). Under acceleration this
  /// floods the ring with spurious requests for messages still in flight;
  /// bench/ablation_rtr_guard quantifies the damage.
  bool naive_rtr_guard = false;

  /// Gray-failure detection: score ring members from the token's health
  /// vector and quarantine a persistently degraded one (gray_detector.hpp,
  /// membership/quarantine.hpp). All signals are *relative* to the ring
  /// median so a ring-wide condition (uniform loss, congestion) never looks
  /// like one bad member.
  struct GrayConfig {
    /// Master switch. Off by default: detection costs nothing when disabled
    /// and the baseline benches stay bit-identical.
    bool enabled = false;
    /// EWMA smoothing factor for the per-member unit-cost ratio.
    double alpha = 0.25;
    /// Suspect when smoothed unit cost exceeds `hold_ratio` × ring median.
    double hold_ratio = 3.0;
    /// Absolute floor (µs of rotation CPU per datagram of work) below which
    /// a member is never suspected, however skewed the ratio — an idle
    /// healthy ring has tiny costs where ratios are all noise. A healthy
    /// loaded member measures ~5 µs/unit in the simulator, so 15 µs is ~3x
    /// headroom yet still convicts a 4x CPU straggler (~22 µs/unit).
    uint32_t min_unit_cost_us = 15;
    /// Alternative signal: fraction of recent rotations in which the member
    /// requested retransmissions (a lossy receive path shows up as rtr
    /// pressure, not hold time).
    double rtr_share = 0.6;
    /// Rotations of history the rtr-share window covers.
    uint32_t rtr_window = 16;
    /// Hysteresis: a member must be suspect this many *consecutive*
    /// rotations before quarantine fires.
    uint32_t suspect_rounds = 12;
    /// Probe rotations a quarantined member sits out before probation.
    uint32_t quarantine_rotations = 24;
    /// Clean observations on probation before the verdict is forgotten.
    uint32_t probation_rotations = 8;
  };
  GrayConfig gray;

  /// Protocol timer base values (see Timeouts).
  Timeouts timeouts;
  /// Adaptive failure detection: estimate token rotation time with a
  /// Jacobson-style EWMA + variance filter and derive the token-loss and
  /// consensus timeouts from it (floor/ceiling anchored in `timeouts`),
  /// instead of using the static values directly. Additionally, any
  /// authenticated current-ring data traffic defers the token-loss timer:
  /// a ring making (slow, lossy) progress is alive, so membership fires
  /// only on genuine silence. Off by default so static-timeout behaviour
  /// stays reproducible; the fault campaigns run with it on.
  bool adaptive_timeouts = false;

  /// Effective accelerated window given the variant.
  [[nodiscard]] uint32_t effective_accel_window() const {
    return variant == Variant::kOriginal ? 0u : accelerated_window;
  }
  /// Effective priority method given the variant (original == conservative).
  [[nodiscard]] PriorityMethod effective_priority() const {
    return variant == Variant::kOriginal ? PriorityMethod::kConservative
                                         : priority;
  }
};

/// A message handed to the application, or a membership notification.
struct Delivery {
  ProcessId sender = kNoProcess;
  SeqNum seq = 0;
  Service service = Service::kAgreed;
  uint64_t round = 0;
  RingId ring_id = 0;
  std::vector<std::byte> payload;
};

/// EVS configuration-change notification (§II). A transitional configuration
/// contains the members of the next regular configuration that came directly
/// from the process's previous regular configuration; messages that could not
/// be delivered in the old regular configuration are delivered in it.
struct ConfigurationChange {
  RingConfig config;
  bool transitional = false;
};

}  // namespace accelring::protocol
