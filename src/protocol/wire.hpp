// Wire formats for all protocol messages.
//
// Every datagram starts with a one-byte packet type followed by a
// type-specific body and ends with a CRC-32 over everything before it. The
// codecs are pure functions over byte buffers: encode_* builds a datagram,
// decode_* parses one and reports failure via std::optional. Decoding copies
// the payload so the protocol can hold messages beyond the life of the
// receive buffer.
#pragma once

#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "protocol/types.hpp"
#include "util/bytes.hpp"

namespace accelring::protocol {

enum class PacketType : uint8_t {
  kData = 1,
  kToken = 2,
  kJoin = 3,
  kCommitToken = 4,
};

/// Peek the packet type without full decoding (for socket demux and tests).
[[nodiscard]] std::optional<PacketType> peek_type(
    std::span<const std::byte> packet);

// ---------------------------------------------------------------------------
// Data messages (§III-B)
// ---------------------------------------------------------------------------

struct DataMsg {
  RingId ring_id = 0;
  SeqNum seq = 0;        ///< position in the total order
  ProcessId pid = 0;     ///< initiating participant
  uint64_t round = 0;    ///< token round in which the message was initiated
  Service service = Service::kAgreed;
  bool post_token = false;  ///< sent during the post-token multicast phase
  bool recovered = false;   ///< encapsulates an old-ring message (recovery)
  /// Payload holds several packed application messages (each framed as
  /// [u32 length][bytes]); they are unpacked and delivered individually.
  /// All packed messages share this message's service level.
  bool packed = false;
  /// Extra header bytes emulating implementation overhead (e.g. Spread's
  /// group/sender names); transmitted as zero padding.
  uint16_t header_pad = 0;
  std::vector<std::byte> payload;

  /// Serialized datagram size for a given payload length and padding.
  [[nodiscard]] static size_t encoded_size(size_t payload_len,
                                           uint16_t header_pad);
};

[[nodiscard]] std::vector<std::byte> encode(const DataMsg& msg);
[[nodiscard]] std::optional<DataMsg> decode_data(
    std::span<const std::byte> packet);

// ---------------------------------------------------------------------------
// Token messages (§III-A)
// ---------------------------------------------------------------------------

/// Per-member health sample piggybacked on the token (gray-failure
/// telemetry). Each member overwrites its own entry as the token passes, so
/// after one rotation every member sees a ring-wide health vector at most one
/// rotation old — no extra datagrams, ~14 bytes per member on the token.
struct TokenHealth {
  ProcessId pid = 0;
  uint32_t hold_us = 0;   ///< token hold time last visit (µs)
  uint32_t work = 0;      ///< datagrams sent during that hold (normalizer)
  uint16_t rtr_count = 0; ///< retransmission requests the member added
  uint16_t backlog = 0;   ///< flow-control backlog (pending new messages)
};

struct TokenMsg {
  RingId ring_id = 0;
  uint64_t token_id = 0;  ///< hop counter; detects duplicate/retransmitted tokens
  uint64_t round = 0;     ///< rotation counter, incremented by the representative
  SeqNum seq = 0;         ///< last sequence number claimed (§III-A field 1)
  SeqNum aru = 0;         ///< all-received-up-to (§III-A field 2)
  ProcessId aru_id = kNoProcess;  ///< who last lowered the aru
  uint32_t fcc = 0;       ///< messages multicast during the last round (field 3)
  std::vector<SeqNum> rtr;  ///< retransmission requests (field 4)
  std::vector<TokenHealth> health;  ///< ring health vector (one per member)
};

[[nodiscard]] std::vector<std::byte> encode(const TokenMsg& msg);
[[nodiscard]] std::optional<TokenMsg> decode_token(
    std::span<const std::byte> packet);

// ---------------------------------------------------------------------------
// Membership messages (Totem/Spread membership, §II)
// ---------------------------------------------------------------------------

struct JoinMsg {
  ProcessId sender = 0;
  RingId old_ring_id = 0;
  /// Processes the sender currently believes should form the next ring.
  std::vector<ProcessId> proc_set;
  /// Processes the sender has explicitly failed (timeouts during gather).
  std::vector<ProcessId> fail_set;
  /// Processes the sender holds in gray-failure quarantine (with the hold in
  /// remaining probe rotations). Peers adopt the stricter verdict so a
  /// quarantined member cannot rejoin through a peer that missed the
  /// eviction.
  std::vector<std::pair<ProcessId, uint32_t>> quarantine_set;
};

[[nodiscard]] std::vector<std::byte> encode(const JoinMsg& msg);
[[nodiscard]] std::optional<JoinMsg> decode_join(
    std::span<const std::byte> packet);

/// Per-member state carried by the commit token so every member learns what
/// must be recovered from each old ring.
struct CommitEntry {
  ProcessId pid = 0;
  RingId old_ring_id = 0;
  SeqNum old_aru = 0;       ///< member's all-received-up-to in its old ring
  SeqNum old_high_seq = 0;  ///< highest sequence number member saw in old ring
  /// Member's Safe-delivery line in the old ring (min of the aru values on
  /// the last two tokens it sent). Any message at or below *any* member's
  /// line was token-confirmed received by every old-ring member, so during
  /// recovery the max over present members bounds what may still be
  /// delivered under the old configuration's rules — a bound every member
  /// computes identically from this table.
  SeqNum old_safe_line = 0;
  bool filled = false;      ///< entry populated on the first rotation
};

struct CommitTokenMsg {
  RingId new_ring_id = 0;
  uint64_t token_id = 0;
  /// Ring order of the proposed membership (sorted by pid; index 0 is the
  /// representative).
  std::vector<CommitEntry> members;
  /// 0 while the first rotation fills entries; 1 once complete info loops.
  uint8_t rotation = 0;
};

[[nodiscard]] std::vector<std::byte> encode(const CommitTokenMsg& msg);
[[nodiscard]] std::optional<CommitTokenMsg> decode_commit(
    std::span<const std::byte> packet);

}  // namespace accelring::protocol
