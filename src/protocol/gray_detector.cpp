#include "protocol/gray_detector.hpp"

#include <algorithm>

namespace accelring::protocol {

namespace {

/// Median of a small scratch vector (destroys order).
double median_of(std::vector<double>& v) {
  const size_t mid = v.size() / 2;
  std::nth_element(v.begin(), v.begin() + static_cast<long>(mid), v.end());
  return v[mid];
}

}  // namespace

void GrayFailureDetector::reset() {
  scores_.clear();
  observations_ = 0;
}

double GrayFailureDetector::rtr_share(const MemberScore& m) const {
  const uint32_t window = std::min(cfg_.rtr_window, m.rtr_seen);
  if (window == 0) return 0.0;
  uint32_t hits = 0;
  for (uint32_t i = 0; i < window; ++i) hits += (m.rtr_bits >> i) & 1u;
  return static_cast<double>(hits) / static_cast<double>(window);
}

void GrayFailureDetector::observe(const std::vector<TokenHealth>& health) {
  // A meaningful median needs at least three stamped entries; below that a
  // two-member ring would forever suspect whichever member is busier.
  struct Sample {
    ProcessId pid;
    double unit;
    bool rtr;
  };
  std::vector<Sample> samples;
  samples.reserve(health.size());
  for (const TokenHealth& h : health) {
    if (h.work == 0) continue;  // not stamped yet (first rotation)
    samples.push_back({h.pid,
                       static_cast<double>(h.hold_us) /
                           static_cast<double>(h.work),
                       h.rtr_count > 0});
  }
  if (samples.size() < 3) return;
  ++observations_;

  for (const Sample& s : samples) {
    MemberScore& m = scores_[s.pid];
    if (!m.initialized) {
      m.unit_ewma = s.unit;
      m.initialized = true;
    } else {
      m.unit_ewma += cfg_.alpha * (s.unit - m.unit_ewma);
    }
    m.rtr_bits = (m.rtr_bits << 1) | (s.rtr ? 1u : 0u);
    if (m.rtr_seen < 32) ++m.rtr_seen;
  }

  // Ring medians over the members sampled *this* rotation, from the smoothed
  // per-member state so one noisy rotation shifts nothing.
  std::vector<double> units;
  std::vector<double> shares;
  units.reserve(samples.size());
  shares.reserve(samples.size());
  for (const Sample& s : samples) {
    const MemberScore& m = scores_[s.pid];
    units.push_back(m.unit_ewma);
    shares.push_back(rtr_share(m));
  }
  const double median_unit = std::max(median_of(units), 0.25);
  const double median_share = median_of(shares);

  for (const Sample& s : samples) {
    MemberScore& m = scores_[s.pid];
    const bool slow_cpu =
        m.unit_ewma > cfg_.hold_ratio * median_unit &&
        m.unit_ewma >= static_cast<double>(cfg_.min_unit_cost_us);
    const bool lossy_rx = m.rtr_seen >= cfg_.rtr_window &&
                          rtr_share(m) >= cfg_.rtr_share &&
                          median_share <= cfg_.rtr_share * 0.5;
    if (slow_cpu || lossy_rx) {
      ++m.streak;
    } else {
      m.streak = 0;
    }
  }
  // Members absent from this rotation's vector contribute nothing; their
  // streaks freeze rather than decay, which is fine — the vector carries
  // every ring member once the first rotation stamped it.
}

std::optional<ProcessId> GrayFailureDetector::verdict() const {
  std::optional<ProcessId> victim;
  uint32_t best = 0;
  for (const auto& [pid, m] : scores_) {
    if (pid == self_) continue;  // never self-evict; peers judge us
    if (m.streak >= cfg_.suspect_rounds && m.streak > best) {
      victim = pid;
      best = m.streak;
    }
  }
  return victim;
}

uint32_t GrayFailureDetector::streak(ProcessId pid) const {
  const auto it = scores_.find(pid);
  return it == scores_.end() ? 0 : it->second.streak;
}

double GrayFailureDetector::smoothed_unit_cost(ProcessId pid) const {
  const auto it = scores_.find(pid);
  return it == scores_.end() ? 0.0 : it->second.unit_ewma;
}

}  // namespace accelring::protocol
