#include "protocol/engine.hpp"

#include <algorithm>
#include <cassert>

#include "membership/membership.hpp"
#include "util/log.hpp"

namespace accelring::protocol {

namespace {
constexpr const char* kTag = "engine";
}

Engine::Engine(ProcessId self, const ProtocolConfig& cfg, Host& host)
    : self_(self),
      cfg_(cfg),
      host_(host),
      membership_(std::make_unique<membership::Membership>(*this)),
      flow_(cfg_),
      timers_(cfg_),
      gray_(self, cfg_.gray) {}

Engine::~Engine() = default;

EngineMetrics EngineMetrics::bind(obs::MetricsRegistry& registry) {
  EngineMetrics m;
  m.token_rotation_ns = &registry.histogram("protocol", "token_rotation_ns");
  m.token_hold_cpu_ns = &registry.histogram("protocol", "token_hold_cpu_ns");
  m.origin_agreed_ns = &registry.histogram("protocol", "origin_agreed_ns");
  m.origin_safe_ns = &registry.histogram("protocol", "origin_safe_ns");
  m.view_change_ns = &registry.histogram("membership", "view_change_ns");
  m.dwell_gather_ns = &registry.histogram("membership", "dwell_gather_ns");
  m.dwell_commit_ns = &registry.histogram("membership", "dwell_commit_ns");
  m.dwell_recover_ns = &registry.histogram("membership", "dwell_recover_ns");
  m.dwell_operational_ns =
      &registry.histogram("membership", "dwell_operational_ns");
  m.retrans_answered = &registry.counter("protocol", "retrans_answered");
  m.retrans_requested = &registry.counter("protocol", "retrans_requested");
  m.token_retransmits = &registry.counter("protocol", "token_retransmits");
  return m;
}

void Engine::set_metrics(const EngineMetrics& metrics) {
  metrics_ = metrics;
  if (metrics_.origin_agreed_ns != nullptr ||
      metrics_.origin_safe_ns != nullptr) {
    // Power-of-two ring deep enough to outlive any delivery pipeline: seqs
    // are discarded once safe, which trails the head by at most a couple of
    // rounds of the global window.
    origin_stamps_.assign(8192, OriginStamp{});
  } else {
    origin_stamps_.clear();
  }
}

obs::Histogram* Engine::dwell_for(State s) const {
  switch (s) {
    case State::kGather:
      return metrics_.dwell_gather_ns;
    case State::kCommit:
      return metrics_.dwell_commit_ns;
    case State::kRecover:
      return metrics_.dwell_recover_ns;
    case State::kOperational:
      return metrics_.dwell_operational_ns;
    case State::kIdle:
      return nullptr;
  }
  return nullptr;
}

void Engine::set_state(State next) {
  if (next == state_) return;
  const Nanos at = host_.now();
  if (obs::Histogram* dwell = dwell_for(state_)) {
    dwell->record(at - state_entered_);
  }
  if (next == State::kGather && view_change_started_ == 0 &&
      state_ != State::kIdle) {
    view_change_started_ = at;
  }
  if (next == State::kOperational) {
    if (metrics_.view_change_ns != nullptr && view_change_started_ > 0) {
      metrics_.view_change_ns->record(at - view_change_started_);
    }
    view_change_started_ = 0;
  }
  state_ = next;
  state_entered_ = at;
}

void Engine::start_with_ring(const RingConfig& ring) {
  assert(state_ == State::kIdle);
  assert(ring.index_of(self_) >= 0);
  membership_->adopt_ring(ring);
  enter_operational(ring, /*notify_config=*/true);
  if (ring.representative() == self_) originate_token();
}

void Engine::start_discovery() {
  assert(state_ == State::kIdle);
  membership_->start_discovery();
}

void Engine::set_epoch_store(membership::EpochStore* store) {
  membership_->set_epoch_store(store);
}

void Engine::enter_operational(const RingConfig& ring, bool notify_config) {
  ring_ = ring;
  my_index_ = ring_.index_of(self_);
  assert(my_index_ >= 0);
  reset_ordering_state();
  set_state(State::kOperational);
  ++stats_.memberships;
  trace(util::TraceEvent::kMembership,
        static_cast<int64_t>(ring_.ring_id & 0xFFFFFFFF),
        static_cast<int64_t>(ring_.size()));
  if (notify_config) {
    host_.on_configuration(ConfigurationChange{ring_, /*transitional=*/false});
  }
  host_.set_timer(kTimerTokenLoss, timers_.token_loss());
}

void Engine::reset_ordering_state() {
  buffer_ = RecvBuffer{};
  flow_.reset();
  my_round_ = 0;
  last_token_id_ = 0;
  prev_token_seq_ = 0;
  aru_sent_this_ = 0;
  aru_sent_prev_ = 0;
  safe_line_ = 0;
  token_high_priority_ = false;
  last_token_sent_.clear();
  timers_.reset();
  gray_.reset();
  last_token_rx_ = 0;
  host_.cancel_timer(kTimerTokenRetransmit);
}

const std::vector<ProcessId>& Engine::quarantine_victims() const {
  return membership_->quarantine().victims();
}

void Engine::originate_token() {
  TokenMsg token;
  token.ring_id = ring_.ring_id;
  token.token_id = 1;
  token.round = 0;
  handle_token(token);
}

bool Engine::submit(Service service, std::vector<std::byte> payload) {
  if (app_queue_.size() >= cfg_.max_pending) {
    ++stats_.submit_rejected;
    return false;
  }
  PendingMsg msg{service, std::move(payload), false};
  msg.submitted_at = host_.now();
  app_queue_.push_back(std::move(msg));
  return true;
}

void Engine::on_packet(SocketId sock, std::span<const std::byte> packet) {
  (void)sock;  // demux is by packet type; sockets only affect drain priority
  const auto type = peek_type(packet);
  if (!type) return;
  switch (*type) {
    case PacketType::kData: {
      if (auto msg = decode_data(packet)) handle_data(*msg);
      break;
    }
    case PacketType::kToken: {
      if (auto token = decode_token(packet)) handle_token(*token);
      break;
    }
    case PacketType::kJoin: {
      if (auto join = decode_join(packet)) membership_->on_join(*join);
      break;
    }
    case PacketType::kCommitToken: {
      if (auto commit = decode_commit(packet)) membership_->on_commit(*commit);
      break;
    }
  }
}

void Engine::on_timer(TimerKind kind) {
  switch (kind) {
    case kTimerTokenRetransmit:
      if ((state_ == State::kOperational || state_ == State::kRecover) &&
          !last_token_sent_.empty()) {
        ++stats_.token_retransmits;
        if (metrics_.token_retransmits != nullptr) {
          metrics_.token_retransmits->inc();
        }
        host_.unicast(ring_.successor_of(self_), kSockToken,
                      last_token_sent_);
        host_.set_timer(kTimerTokenRetransmit, cfg_.timeouts.token_retransmit);
      }
      break;
    case kTimerTokenLoss:
      if (state_ == State::kOperational || state_ == State::kRecover) {
        ACCELRING_LOG_INFO(kTag, "p%u: token loss on ring %llu",
                           unsigned{self_},
                           static_cast<unsigned long long>(ring_.ring_id));
        membership_->on_token_loss();
      }
      break;
    case kTimerJoin:
    case kTimerConsensus:
      membership_->on_timer(kind);
      break;
    default:
      break;  // baseline timer ids: not used by the ring engine
  }
}

// ---------------------------------------------------------------------------
// Data handling (§III-B)
// ---------------------------------------------------------------------------

void Engine::handle_data(const DataMsg& msg) {
  if (state_ == State::kIdle) return;
  if (msg.ring_id != ring_.ring_id) {
    membership_->on_foreign(msg.pid, msg.ring_id);
    return;
  }
  ++stats_.data_handled;
  trace(util::TraceEvent::kDataRx, msg.seq, msg.pid);

  // Liveness-evidence deferral: a data message on our current ring proves
  // the ring is making progress even while the token itself keeps getting
  // lost, so push the token-loss timer out. Without this, a loss burst whose
  // stretched rotation exceeds the timer armed *before* the burst would
  // falsely trigger membership against live members. Genuine silence for a
  // full estimated timeout still fires the timer, preserving crash
  // detection. Applies even to duplicate data (a retransmission answered by
  // a live member is evidence too).
  if (cfg_.adaptive_timeouts &&
      (state_ == State::kOperational || state_ == State::kRecover)) {
    host_.set_timer(kTimerTokenLoss, timers_.token_loss());
  }

  // Token-priority switching (§III-C): raise token priority when we process
  // a data message our immediate ring predecessor sent in the next token
  // round — for the conservative method, only one sent after the token.
  if ((state_ == State::kOperational || state_ == State::kRecover) &&
      !token_high_priority_ && ring_.size() > 1 &&
      msg.pid == ring_.predecessor_of(self_)) {
    // The representative bumps the round counter, so its predecessor's
    // messages for the upcoming token carry the round it just processed;
    // everyone else sees the next round number.
    const uint64_t trigger_round = my_round_ + (my_index_ == 0 ? 0 : 1);
    if (msg.round >= trigger_round &&
        (cfg_.effective_priority() == PriorityMethod::kAggressive ||
         msg.post_token)) {
      token_high_priority_ = true;
    }
  }

  // Evidence that the token we passed moved on: a later participant of this
  // round, or anyone in a newer round, is multicasting.
  if (msg.round > my_round_ ||
      (msg.round == my_round_ && ring_.index_of(msg.pid) > my_index_)) {
    host_.cancel_timer(kTimerTokenRetransmit);
  }

  if (!buffer_.insert(msg)) {
    ++stats_.duplicates;
    return;
  }
  deliver_ready();
}

// ---------------------------------------------------------------------------
// Token handling (§III-A)
// ---------------------------------------------------------------------------

void Engine::handle_token(const TokenMsg& received) {
  if (state_ != State::kOperational && state_ != State::kRecover) return;
  if (received.ring_id != ring_.ring_id) {
    membership_->on_foreign(kNoProcess, received.ring_id);
    return;
  }
  if (received.token_id <= last_token_id_) {
    ++stats_.duplicates;  // retransmitted token we already handled
    return;
  }
  last_token_id_ = received.token_id;
  host_.cancel_timer(kTimerTokenRetransmit);
  // Feed the failure detector one rotation sample (time between consecutive
  // accepted tokens at this member), then arm the loss timer with whatever
  // the estimator currently believes.
  const Nanos token_now = host_.now();
  if (state_ == State::kOperational && last_token_rx_ > 0) {
    timers_.sample(token_now - last_token_rx_);
    if (metrics_.token_rotation_ns != nullptr) {
      metrics_.token_rotation_ns->record(token_now - last_token_rx_);
    }
  }
  last_token_rx_ = token_now;
  host_.set_timer(kTimerTokenLoss, timers_.token_loss());

  trace(util::TraceEvent::kTokenRx, static_cast<int64_t>(received.round),
        received.seq);

  // Gray-failure scoring: fold in the ring health vector the token carries.
  // When a member has been suspect past the hysteresis threshold, the acting
  // member — the lowest-indexed member that is not the victim, so exactly one
  // process acts and it is never the victim itself — evicts it through a
  // deliberate membership change instead of forwarding the token.
  if (cfg_.gray.enabled && state_ == State::kOperational && ring_.size() >= 3) {
    gray_.observe(received.health);
    if (const auto victim = gray_.verdict()) {
      const ProcessId acting =
          ring_.members[0] == *victim ? ring_.members[1] : ring_.members[0];
      if (acting == self_) {
        membership_->quarantine_evict(*victim);
        return;  // the ring is reforming; the token dies here
      }
    }
  }

  TokenMsg token = received;
  if (my_index_ == 0) ++token.round;
  my_round_ = token.round;
  ++stats_.tokens_handled;
  if (my_index_ == 0) ++stats_.rounds;

  // --- 1. Retransmissions: always sent in the pre-token phase -------------
  const uint32_t num_retrans = answer_retransmissions(token.rtr);

  // --- 2. Flow control ------------------------------------------------------
  const uint32_t allowed =
      flow_.allowance(pending_count(), token.fcc, num_retrans,
                      /*global_aru=*/token.aru, token.seq);

  // --- 3. Pre-token multicast phase (§III-A-1) ------------------------------
  // Prepare every message we will send this round; multicast only those that
  // overflow the accelerated window, keeping the rest queued for the
  // post-token phase. Own messages are self-inserted into the receive buffer
  // at creation (a sender trivially "has" its own messages).
  const uint32_t accel_window = cfg_.effective_accel_window();
  const bool aru_was_current = (received.aru == received.seq);
  std::deque<DataMsg> post_queue;
  uint32_t initiated = 0;
  for (uint32_t i = 0; i < allowed; ++i) {
    auto pending = pop_pending();
    if (!pending) break;
    if (cfg_.enable_packing && !pending->recovered) pack_pending(*pending);
    DataMsg msg;
    msg.ring_id = ring_.ring_id;
    msg.seq = ++token.seq;
    msg.pid = self_;
    msg.round = my_round_;
    msg.service = pending->service;
    msg.recovered = pending->recovered;
    msg.packed = pending->packed;
    msg.header_pad = header_pad_;
    msg.payload = std::move(pending->payload);
    if (!origin_stamps_.empty() && !pending->recovered) {
      origin_stamps_[msg.seq % origin_stamps_.size()] =
          OriginStamp{msg.seq, pending->submitted_at};
    }
    ++initiated;
    buffer_.insert(msg);  // self-insertion
    post_queue.push_back(std::move(msg));
    if (post_queue.size() > accel_window) {
      DataMsg front = std::move(post_queue.front());
      post_queue.pop_front();
      trace(util::TraceEvent::kDataTxPre, front.seq);
      host_.multicast(kSockData, encode(front));
    }
  }
  stats_.initiated += initiated;

  // --- 4. aru update (§III-A-2 and [2]) --------------------------------------
  const SeqNum local_aru = buffer_.local_aru();
  if (local_aru < token.aru) {
    token.aru = local_aru;
    token.aru_id = self_;
  } else if (token.aru_id == self_) {
    // We lowered the aru previously and nobody lowered it further since:
    // raise it to our current local aru.
    token.aru = std::min(local_aru, token.seq);
    if (token.aru == token.seq) token.aru_id = kNoProcess;
  } else if (aru_was_current) {
    // Everyone had everything: the aru advances in step with seq.
    token.aru = std::min(local_aru, token.seq);
  }

  // --- 5. fcc update ---------------------------------------------------------
  const uint32_t sent_this_round = num_retrans + initiated;
  token.fcc = flow_.updated_fcc(received.fcc, sent_this_round);
  flow_.round_complete(sent_this_round);

  // --- 6. rtr additions: bounded by the *previous* round's token seq so that
  // messages reflected in this token but not yet multicast (the accelerated
  // window) are not requested unnecessarily (§III-A-2). The original
  // protocol has no post-token sending, so it may request up to the current
  // token's seq.
  const SeqNum rtr_bound =
      (cfg_.variant == Variant::kOriginal || cfg_.naive_rtr_guard)
          ? received.seq
          : prev_token_seq_;
  const auto missing = buffer_.missing_up_to(rtr_bound, token.rtr);
  for (SeqNum seq : missing) trace(util::TraceEvent::kRtrAdd, seq);
  stats_.rtr_requested += missing.size();
  if (metrics_.retrans_requested != nullptr) {
    metrics_.retrans_requested->inc(missing.size());
  }
  token.rtr.insert(token.rtr.end(), missing.begin(), missing.end());
  prev_token_seq_ = received.seq;

  // --- 6b. health stamp: overwrite our entry in the token's health vector.
  // hold_us is the CPU this process consumed since its previous stamp — one
  // full rotation of work: the prior post-token flush, every data packet
  // received and delivered, and this handler up to the previous drain. Wall
  // clock between token acceptance and here would miss nearly all of that
  // (sends happen post-token; receive costs accrue between tokens). `work`
  // normalizes it: a busy healthy member burns CPU because it sends much —
  // a gray member burns CPU per unit of work.
  Nanos held = 0;
  if (cfg_.gray.enabled || metrics_.token_hold_cpu_ns != nullptr) {
    const Nanos cpu_now = host_.cpu_time();
    held = cpu_now - last_cpu_stamp_;
    last_cpu_stamp_ = cpu_now;
    if (metrics_.token_hold_cpu_ns != nullptr) {
      metrics_.token_hold_cpu_ns->record(held);
    }
  }
  if (cfg_.gray.enabled) {
    TokenHealth mine;
    mine.pid = self_;
    // Whole microseconds with the sub-us remainder carried to the next
    // rotation, so the cumulative stamped total tracks real CPU instead of
    // drifting up to 1us per rotation (the old per-delta ceil).
    mine.hold_us = hold_accum_.consume(held);
    mine.work = sent_this_round + 1;  // +1: the token pass itself
    mine.rtr_count =
        static_cast<uint16_t>(std::min<size_t>(missing.size(), 0xFFFF));
    mine.backlog =
        static_cast<uint16_t>(std::min<size_t>(pending_count(), 0xFFFF));
    bool stamped = false;
    for (TokenHealth& e : token.health) {
      if (e.pid == self_) {
        e = mine;
        stamped = true;
        break;
      }
    }
    if (!stamped) token.health.push_back(mine);
    std::erase_if(token.health, [this](const TokenHealth& e) {
      return ring_.index_of(e.pid) < 0;  // departed members
    });
  }

  // --- 7. pass the token, then flush the post-token queue (§III-A-3) --------
  ++token.token_id;
  const bool ring_idle = sent_this_round == 0 && token.fcc == 0 &&
                         token.rtr.empty() && token.aru == token.seq;
  send_token(token, ring_idle);
  token_high_priority_ = false;  // data has high priority after the token
  while (!post_queue.empty()) {
    DataMsg msg = std::move(post_queue.front());
    post_queue.pop_front();
    msg.post_token = true;
    trace(util::TraceEvent::kDataTxPost, msg.seq);
    host_.multicast(kSockData, encode(msg));
  }

  // --- 8. deliver and discard (§III-A-4) -------------------------------------
  aru_sent_prev_ = aru_sent_this_;
  aru_sent_this_ = token.aru;
  safe_line_ = std::min(aru_sent_this_, aru_sent_prev_);
  deliver_ready();
  buffer_.discard_up_to(safe_line_);

  if (cfg_.auto_tune) maybe_auto_tune();
}

void Engine::maybe_auto_tune() {
  if (++tune_rounds_ < cfg_.auto_tune_interval) return;
  tune_rounds_ = 0;
  // Loss signal: retransmissions we answered (someone missed our messages)
  // plus retransmissions we requested (we missed someone's).
  const uint64_t loss_now = stats_.retransmitted + stats_.rtr_requested;
  const uint64_t lost = loss_now - tune_last_loss_;
  tune_last_loss_ = loss_now;

  uint32_t personal = cfg_.personal_window;
  if (lost > cfg_.auto_tune_interval / 8) {
    // The ring is dropping: back off multiplicatively.
    personal = std::max(cfg_.min_personal_window, personal / 2);
  } else if (app_queue_.size() > personal) {
    // Clean ring and a backlog: we are window-limited, grow additively.
    personal = std::min(cfg_.max_personal_window, personal + 4);
  }
  if (personal != cfg_.personal_window) {
    cfg_.personal_window = personal;
    // Keep the ring-wide cap proportional and the accelerated window at 3/4
    // of the personal window (the sweet spot in bench/ablation_accel_window).
    cfg_.global_window = std::max(
        cfg_.global_window,
        personal * static_cast<uint32_t>(std::max<size_t>(ring_.size(), 1)));
    cfg_.accelerated_window = personal * 3 / 4;
  }
}

uint32_t Engine::answer_retransmissions(std::vector<SeqNum>& rtr) {
  uint32_t sent = 0;
  std::vector<SeqNum> unanswered;
  unanswered.reserve(rtr.size());
  for (SeqNum seq : rtr) {
    if (const DataMsg* msg = buffer_.find(seq)) {
      trace(util::TraceEvent::kRetransTx, seq);
      host_.multicast(kSockData, encode(*msg));
      ++sent;
    } else {
      unanswered.push_back(seq);
    }
  }
  stats_.retransmitted += sent;
  if (metrics_.retrans_answered != nullptr) metrics_.retrans_answered->inc(sent);
  rtr = std::move(unanswered);
  return sent;
}

void Engine::send_token(const TokenMsg& token, bool idle) {
  trace(util::TraceEvent::kTokenTx, static_cast<int64_t>(token.round),
        token.seq);
  last_token_sent_ = encode(token);
  const Nanos hold = idle ? cfg_.timeouts.idle_token_hold : 0;
  host_.unicast(ring_.successor_of(self_), kSockToken, last_token_sent_, hold);
  host_.set_timer(kTimerTokenRetransmit, cfg_.timeouts.token_retransmit + hold);
}

void Engine::deliver_ready() {
  while (const DataMsg* next = buffer_.next_deliverable(safe_line_)) {
    // Copy what we need before mutating the buffer.
    const DataMsg msg = *next;
    buffer_.mark_delivered();
    if (msg.recovered) {
      membership_->on_recovered_delivery(msg);
      continue;
    }
    deliver_one(msg);
  }
}

void Engine::deliver_one(const DataMsg& msg) {
  // Origination → own-delivery latency: the originator delivers its own
  // messages through the same total order as everyone else, so this is a
  // wire-format-free measure of end-to-end ordering latency (cross-node
  // latency is the harness's job, via the payload stamp).
  if (msg.pid == self_ && !origin_stamps_.empty()) {
    const OriginStamp& stamp = origin_stamps_[msg.seq % origin_stamps_.size()];
    if (stamp.seq == msg.seq) {
      obs::Histogram* h = requires_safe(msg.service)
                              ? metrics_.origin_safe_ns
                              : metrics_.origin_agreed_ns;
      if (h != nullptr) h->record(host_.now() - stamp.at);
    }
  }
  const auto emit = [&](std::vector<std::byte> payload) {
    Delivery delivery;
    delivery.sender = msg.pid;
    delivery.seq = msg.seq;
    delivery.service = msg.service;
    delivery.round = msg.round;
    delivery.ring_id = msg.ring_id;
    delivery.payload = std::move(payload);
    if (requires_safe(msg.service)) {
      ++stats_.delivered_safe;
    } else {
      ++stats_.delivered_agreed;
    }
    trace(util::TraceEvent::kDeliver, delivery.seq,
          static_cast<int64_t>(delivery.service));
    host_.deliver(delivery);
  };
  if (!msg.packed) {
    emit(msg.payload);
    return;
  }
  // Unpack [u32 length][bytes] frames and deliver each application message
  // individually, in packing order.
  util::Reader reader(msg.payload);
  while (reader.remaining() > 0) {
    const auto sub = reader.bytes();
    if (!reader.ok()) break;  // malformed tail: stop, keep what we got
    emit(util::to_vector(sub));
  }
}

bool Engine::pack_pending(PendingMsg& first) {
  auto& queue = (state_ == State::kRecover) ? recovery_queue_ : app_queue_;
  // 4-byte length frame per packed message.
  size_t total = first.payload.size() + 4;
  if (total > cfg_.packing_budget) return false;
  std::vector<PendingMsg> extras;
  while (!queue.empty()) {
    const PendingMsg& next = queue.front();
    if (next.recovered || next.packed || next.service != first.service) break;
    if (total + next.payload.size() + 4 > cfg_.packing_budget) break;
    total += next.payload.size() + 4;
    extras.push_back(std::move(queue.front()));
    queue.pop_front();
  }
  if (extras.empty()) return false;
  util::Writer w(total);
  w.bytes(first.payload);
  for (const PendingMsg& extra : extras) w.bytes(extra.payload);
  first.payload = std::move(w).take();
  first.packed = true;
  return true;
}

std::optional<Engine::PendingMsg> Engine::pop_pending() {
  auto& queue =
      (state_ == State::kRecover) ? recovery_queue_ : app_queue_;
  if (queue.empty()) return std::nullopt;
  PendingMsg msg = std::move(queue.front());
  queue.pop_front();
  return msg;
}

size_t Engine::pending_count() const {
  return (state_ == State::kRecover) ? recovery_queue_.size()
                                     : app_queue_.size();
}

}  // namespace accelring::protocol
