// The ring ordering protocol engine (paper §III).
//
// Engine implements both the original Totem single-ring ordering protocol and
// the Accelerated Ring protocol as one state machine parameterized by
// ProtocolConfig (the original protocol is exactly the accelerated machinery
// with an accelerated window of zero and the conservative priority method,
// as the paper notes in §III-D).
//
// The engine is sans-io: bytes and timer ticks come in through on_packet()
// and on_timer(); multicasts, unicasts, deliveries, and timer (re)arms go out
// through the Host interface. It never touches sockets or clocks, so the
// identical code runs under the discrete-event simulator, the real UDP
// transport, and direct unit tests.
//
// Membership (gather / commit / recover, Extended Virtual Synchrony
// configuration delivery) lives in membership::Membership; the engine routes
// packets to it outside normal operation and exposes the hooks it needs.
#pragma once

#include <deque>
#include <memory>
#include <optional>

#include "obs/metrics.hpp"
#include "protocol/flow_control.hpp"
#include "protocol/gray_detector.hpp"
#include "protocol/recv_buffer.hpp"
#include "protocol/timeout_estimator.hpp"
#include "protocol/types.hpp"
#include "protocol/wire.hpp"
#include "util/stats.hpp"
#include "util/trace.hpp"

namespace accelring::membership {
class EpochStore;
class Membership;
}

namespace accelring::protocol {

/// Timer identifiers passed to Host::set_timer / Engine::on_timer. The
/// baseline protocols (src/baselines) share the id space so every protocol
/// can run behind the same transports.
enum TimerKind : int {
  kTimerTokenRetransmit = 0,
  kTimerTokenLoss = 1,
  kTimerJoin = 2,
  kTimerConsensus = 3,
  kTimerBaselineAck = 4,
  kTimerBaselineNak = 5,
  kTimerBaselineFlush = 6,
};

/// Socket classes re-exported so protocol code does not include simnet.
using SocketId = int;
inline constexpr SocketId kSockData = 0;
inline constexpr SocketId kSockToken = 1;

/// Environment services the engine requires. Implemented by the simulator
/// adapter (transport::SimHost), the UDP transport, and test fixtures.
class Host {
 public:
  virtual ~Host() = default;

  /// Send a datagram to every other participant (IP-multicast equivalent).
  virtual void multicast(SocketId sock, std::span<const std::byte> data) = 0;
  /// Send a datagram to one participant (token passing). `delay` > 0 asks
  /// the host to send after that long (idle token hold); the engine never
  /// relies on it for correctness.
  virtual void unicast(ProcessId to, SocketId sock,
                       std::span<const std::byte> data, Nanos delay = 0) = 0;
  /// Hand an ordered message to the application.
  virtual void deliver(const Delivery& delivery) = 0;
  /// EVS configuration change notification (transitional or regular).
  virtual void on_configuration(const ConfigurationChange& change) = 0;
  /// (Re)arm or cancel a one-shot timer.
  virtual void set_timer(TimerKind kind, Nanos delay) = 0;
  virtual void cancel_timer(TimerKind kind) = 0;
  virtual Nanos now() = 0;
  /// Cumulative CPU time consumed by this process, for gray-failure
  /// telemetry: the engine stamps the delta between token rotations into the
  /// token's health vector. Wall-clock hold time cannot see a slow CPU here —
  /// with the accelerated window, new messages are multicast *after* the
  /// token is forwarded. The simulator reads the virtual CPU's busy time; a
  /// real transport reads CLOCK_THREAD_CPUTIME_ID. The default keeps hosts
  /// that cannot account CPU inert (hold_us stays 0, never convicted).
  virtual Nanos cpu_time() { return 0; }
};

/// Minimal surface every ordering protocol in this repo exposes to a
/// transport adapter (the simulator's SimHost or the UDP transport):
/// packets in, timers in, and a drain-priority hint out. protocol::Engine
/// implements it, as do the related-work baselines under src/baselines.
class PacketHandler {
 public:
  virtual ~PacketHandler() = default;
  virtual void on_packet(SocketId sock, std::span<const std::byte> packet) = 0;
  virtual void on_timer(TimerKind kind) = 0;
  [[nodiscard]] virtual SocketId preferred_socket() const = 0;
};

/// Counters exposed for tests, benches, and the EXPERIMENTS.md tables.
struct EngineStats {
  uint64_t tokens_handled = 0;
  uint64_t rounds = 0;
  uint64_t data_handled = 0;
  uint64_t duplicates = 0;
  uint64_t initiated = 0;        ///< new messages this engine multicast
  uint64_t retransmitted = 0;    ///< retransmissions answered
  uint64_t rtr_requested = 0;    ///< retransmissions this engine requested
  uint64_t delivered_agreed = 0;
  uint64_t delivered_safe = 0;
  uint64_t token_retransmits = 0;
  uint64_t memberships = 0;      ///< regular configurations installed
  uint64_t submit_rejected = 0;  ///< backpressure at submit()
  uint64_t quarantines = 0;      ///< gray-failure evictions this engine began
  uint64_t readmits = 0;         ///< quarantined members re-admitted here
};

/// Observation points the engine records into when attached (all pointers
/// may be null — unset metrics are simply not recorded). Recording is plain
/// memory writes against clocks the engine reads anyway, so an attached
/// registry never perturbs protocol behaviour (pinned by
/// tests/obs_determinism_test.cpp).
struct EngineMetrics {
  obs::Histogram* token_rotation_ns = nullptr;  ///< between accepted tokens
  obs::Histogram* token_hold_cpu_ns = nullptr;  ///< CPU burned per rotation
  obs::Histogram* origin_agreed_ns = nullptr;   ///< submit → own delivery
  obs::Histogram* origin_safe_ns = nullptr;     ///< submit → own delivery
  obs::Histogram* view_change_ns = nullptr;     ///< gather → operational
  obs::Histogram* dwell_gather_ns = nullptr;    ///< time per state visit
  obs::Histogram* dwell_commit_ns = nullptr;
  obs::Histogram* dwell_recover_ns = nullptr;
  obs::Histogram* dwell_operational_ns = nullptr;
  obs::Counter* retrans_answered = nullptr;
  obs::Counter* retrans_requested = nullptr;
  obs::Counter* token_retransmits = nullptr;

  /// Intern the full set in `registry` under components "protocol" and
  /// "membership" and return the bound pointer table.
  [[nodiscard]] static EngineMetrics bind(obs::MetricsRegistry& registry);
};

class Engine final : public PacketHandler {
 public:
  /// `self` must be unique across the deployment. The engine starts idle;
  /// call start_with_ring() (static membership, used by the benchmarks) or
  /// start_discovery() (full membership algorithm).
  Engine(ProcessId self, const ProtocolConfig& cfg, Host& host);
  ~Engine() override;

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Begin operation on a pre-agreed ring (all participants must be started
  /// with an identical RingConfig). The representative originates the token.
  void start_with_ring(const RingConfig& ring);

  /// Begin operation by running the membership algorithm from scratch: form
  /// a singleton ring, announce, and merge with whoever answers.
  void start_discovery();

  /// Feed one received datagram (any packet type; the engine demuxes).
  void on_packet(SocketId sock, std::span<const std::byte> packet) override;

  /// A timer armed via Host::set_timer fired.
  void on_timer(TimerKind kind) override;

  /// Queue an application message for ordered multicast. Returns false when
  /// the send queue is full (backpressure).
  bool submit(Service service, std::vector<std::byte> payload);

  /// Which socket class the event loop should drain first (§III-C).
  [[nodiscard]] SocketId preferred_socket() const override {
    return token_high_priority_ ? kSockToken : kSockData;
  }

  // --- introspection ---------------------------------------------------------

  [[nodiscard]] const EngineStats& stats() const { return stats_; }
  [[nodiscard]] ProcessId self() const { return self_; }
  [[nodiscard]] const RingConfig& ring() const { return ring_; }
  [[nodiscard]] bool operational() const { return state_ == State::kOperational; }
  [[nodiscard]] bool recovering() const { return state_ == State::kRecover; }
  [[nodiscard]] SeqNum local_aru() const { return buffer_.local_aru(); }
  [[nodiscard]] SeqNum delivered_up_to() const {
    return buffer_.delivered_up_to();
  }
  [[nodiscard]] size_t pending() const { return app_queue_.size(); }
  [[nodiscard]] const ProtocolConfig& config() const { return cfg_; }
  /// Adaptive failure-detection state (srtt/rttvar of token rotation).
  [[nodiscard]] const TimeoutEstimator& timeout_estimator() const {
    return timers_;
  }
  /// Gray-failure detector state (suspect streaks, smoothed unit costs).
  [[nodiscard]] const GrayFailureDetector& gray_detector() const {
    return gray_;
  }
  /// Every pid this node's membership layer placed in quarantine (local
  /// verdicts and adopted ones) — the campaign's healthy-member audit.
  [[nodiscard]] const std::vector<ProcessId>& quarantine_victims() const;
  /// True if this engine has received (or already stably discarded) the
  /// message with sequence number `seq` — used by tests to verify the Safe
  /// delivery (stability) guarantee at the instant of delivery elsewhere.
  [[nodiscard]] bool has_message(SeqNum seq) const {
    return buffer_.has(seq);
  }

  /// Attach a flight recorder; nullptr detaches. The engine records token
  /// receipt/pass, pre/post-token multicasts, retransmissions, deliveries,
  /// and retransmission requests (see util::TraceEvent).
  void set_tracer(util::Tracer* tracer) { tracer_ = tracer; }

  /// Attach an observation-point table (see EngineMetrics). The origin
  /// latency stamp ring is sized here, so no allocation happens later on the
  /// delivery path.
  void set_metrics(const EngineMetrics& metrics);

  /// Extra zero padding added to every data message this engine initiates,
  /// emulating implementation header overhead (0 for the library prototype,
  /// larger for the daemon and Spread profiles). Affects wire size only.
  void set_header_pad(uint16_t pad) { header_pad_ = pad; }

  /// Attach durable epoch storage for membership ring-id generation (see
  /// membership::EpochStore). Call before start_*; nullptr detaches.
  void set_epoch_store(membership::EpochStore* store);

 private:
  friend class membership::Membership;

  enum class State { kIdle, kOperational, kGather, kCommit, kRecover };

  struct PendingMsg {
    Service service;
    std::vector<std::byte> payload;
    bool recovered = false;  ///< recovery-phase encapsulated message / marker
    bool packed = false;     ///< payload is a sequence of framed messages
    Nanos submitted_at = 0;  ///< origination timestamp for latency metrics
  };

  // --- token handling (§III-A) ---------------------------------------------
  void handle_token(const TokenMsg& token);
  void handle_data(const DataMsg& msg);

  /// Answer rtr entries we can; removes answered entries. Returns count sent.
  uint32_t answer_retransmissions(std::vector<SeqNum>& rtr);
  /// Deliver everything newly deliverable given the current safe line.
  void deliver_ready();
  /// Send the token to our successor and arm the retransmit timer.
  void send_token(const TokenMsg& token, bool idle);
  void originate_token();

  /// Take the next message to initiate from the pending queues.
  [[nodiscard]] std::optional<PendingMsg> pop_pending();
  [[nodiscard]] size_t pending_count() const;
  /// Pack queued same-service messages into `first`'s payload (greedy,
  /// bounded by cfg_.packing_budget). Returns true if packing happened.
  bool pack_pending(PendingMsg& first);
  /// Periodic flow-control adaptation (cfg_.auto_tune).
  void maybe_auto_tune();
  /// Deliver one (possibly packed) buffered message to the host.
  void deliver_one(const DataMsg& msg);

  // --- state shared with membership ----------------------------------------
  void enter_operational(const RingConfig& ring, bool notify_config);
  void reset_ordering_state();

  /// The one write point for state_: records per-state dwell time and the
  /// gather→operational view-change duration when metrics are attached.
  void set_state(State next);
  [[nodiscard]] obs::Histogram* dwell_for(State s) const;

  ProcessId self_;
  ProtocolConfig cfg_;
  Host& host_;
  std::unique_ptr<membership::Membership> membership_;

  State state_ = State::kIdle;
  RingConfig ring_;
  int my_index_ = -1;

  RecvBuffer buffer_;
  FlowControl flow_;
  TimeoutEstimator timers_;
  GrayFailureDetector gray_;
  Nanos last_token_rx_ = 0;  ///< rotation-time sampling (0 = no prior token)
  Nanos last_cpu_stamp_ = 0;  ///< Host::cpu_time() at the previous health stamp
  std::deque<PendingMsg> app_queue_;
  std::deque<PendingMsg> recovery_queue_;

  uint64_t my_round_ = 0;          ///< round of the last token processed
  uint64_t last_token_id_ = 0;     ///< duplicate-token detection
  SeqNum prev_token_seq_ = 0;      ///< rtr guard (§III-A-2)
  SeqNum aru_sent_this_ = 0;       ///< aru on the token we sent this round
  SeqNum aru_sent_prev_ = 0;       ///< ... and the round before (safe line)
  SeqNum safe_line_ = 0;           ///< min of the two aru values above
  bool token_high_priority_ = false;
  std::vector<std::byte> last_token_sent_;  ///< for token retransmission
  uint16_t header_pad_ = 0;
  uint64_t tune_rounds_ = 0;        ///< rounds since last window adjustment
  uint64_t tune_last_loss_ = 0;     ///< loss counters at last adjustment
  util::Tracer* tracer_ = nullptr;

  EngineMetrics metrics_;
  /// Remainder-carrying ns→us conversion for the token health stamp: the
  /// cumulative hold_us reported on the wire equals floor(total_cpu/1us)
  /// instead of drifting up to 1us per rotation (see util::MicrosAccumulator).
  util::MicrosAccumulator hold_accum_;
  /// Seq-indexed ring of origination timestamps for messages this engine
  /// initiated (sized by set_metrics; empty = origin latency not tracked).
  struct OriginStamp {
    SeqNum seq = 0;
    Nanos at = 0;
  };
  std::vector<OriginStamp> origin_stamps_;
  Nanos state_entered_ = 0;        ///< when state_ last changed
  Nanos view_change_started_ = 0;  ///< first gather entry of this change

  void trace(util::TraceEvent event, int64_t a, int64_t b = 0) {
    if (tracer_ != nullptr) tracer_->record(host_.now(), event, a, b);
  }

  EngineStats stats_;
};

}  // namespace accelring::protocol
