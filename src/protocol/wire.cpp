#include "protocol/wire.hpp"

#include "util/crc32.hpp"

namespace accelring::protocol {
namespace {

using util::Reader;
using util::Writer;

/// Append the CRC of everything written so far.
void seal(Writer& w) { w.u32(util::crc32(w.view())); }

/// Verify and strip the trailing CRC; returns the body on success.
std::optional<std::span<const std::byte>> unseal(
    std::span<const std::byte> packet) {
  if (packet.size() < 5) return std::nullopt;  // type byte + crc
  const auto body = packet.first(packet.size() - 4);
  Reader tail(packet.subspan(packet.size() - 4));
  if (tail.u32() != util::crc32(body)) return std::nullopt;
  return body;
}

constexpr uint8_t kFlagPostToken = 0x08;
constexpr uint8_t kFlagRecovered = 0x10;
constexpr uint8_t kFlagPacked = 0x20;
constexpr uint8_t kServiceMask = 0x07;

}  // namespace

std::optional<PacketType> peek_type(std::span<const std::byte> packet) {
  if (packet.empty()) return std::nullopt;
  const auto t = static_cast<uint8_t>(packet[0]);
  if (t < 1 || t > 4) return std::nullopt;
  return static_cast<PacketType>(t);
}

// --- data ------------------------------------------------------------------

size_t DataMsg::encoded_size(size_t payload_len, uint16_t pad) {
  // type + flags + pid + ring + seq + round + pad_len + pad + payload_len +
  // payload + crc
  return 1 + 1 + 2 + 8 + 8 + 8 + 2 + pad + 4 + payload_len + 4;
}

std::vector<std::byte> encode(const DataMsg& msg) {
  Writer w(DataMsg::encoded_size(msg.payload.size(), msg.header_pad));
  w.u8(static_cast<uint8_t>(PacketType::kData));
  uint8_t flags = static_cast<uint8_t>(msg.service) & kServiceMask;
  if (msg.post_token) flags |= kFlagPostToken;
  if (msg.recovered) flags |= kFlagRecovered;
  if (msg.packed) flags |= kFlagPacked;
  w.u8(flags);
  w.u16(msg.pid);
  w.u64(msg.ring_id);
  w.i64(msg.seq);
  w.u64(msg.round);
  w.u16(msg.header_pad);
  for (uint16_t i = 0; i < msg.header_pad; ++i) w.u8(0);
  w.bytes(msg.payload);
  seal(w);
  return std::move(w).take();
}

std::optional<DataMsg> decode_data(std::span<const std::byte> packet) {
  const auto body = unseal(packet);
  if (!body) return std::nullopt;
  Reader r(*body);
  if (r.u8() != static_cast<uint8_t>(PacketType::kData)) return std::nullopt;
  DataMsg msg;
  const uint8_t flags = r.u8();
  msg.service = static_cast<Service>(flags & kServiceMask);
  msg.post_token = (flags & kFlagPostToken) != 0;
  msg.recovered = (flags & kFlagRecovered) != 0;
  msg.packed = (flags & kFlagPacked) != 0;
  msg.pid = r.u16();
  msg.ring_id = r.u64();
  msg.seq = r.i64();
  msg.round = r.u64();
  msg.header_pad = r.u16();
  r.raw(msg.header_pad);
  msg.payload = util::to_vector(r.bytes());
  if (!r.done()) return std::nullopt;
  return msg;
}

// --- token -----------------------------------------------------------------

std::vector<std::byte> encode(const TokenMsg& msg) {
  Writer w(64 + 8 * msg.rtr.size() + 14 * msg.health.size());
  w.u8(static_cast<uint8_t>(PacketType::kToken));
  w.u64(msg.ring_id);
  w.u64(msg.token_id);
  w.u64(msg.round);
  w.i64(msg.seq);
  w.i64(msg.aru);
  w.u16(msg.aru_id);
  w.u32(msg.fcc);
  w.u32(static_cast<uint32_t>(msg.rtr.size()));
  for (SeqNum s : msg.rtr) w.i64(s);
  // Health vector: optional trailing section, omitted entirely when empty so
  // deployments without gray-failure detection emit byte-identical tokens to
  // older builds (and decoders for those builds still parse ours).
  if (!msg.health.empty()) {
    w.u16(static_cast<uint16_t>(msg.health.size()));
    for (const TokenHealth& h : msg.health) {
      w.u16(h.pid);
      w.u32(h.hold_us);
      w.u32(h.work);
      w.u16(h.rtr_count);
      w.u16(h.backlog);
    }
  }
  seal(w);
  return std::move(w).take();
}

std::optional<TokenMsg> decode_token(std::span<const std::byte> packet) {
  const auto body = unseal(packet);
  if (!body) return std::nullopt;
  Reader r(*body);
  if (r.u8() != static_cast<uint8_t>(PacketType::kToken)) return std::nullopt;
  TokenMsg msg;
  msg.ring_id = r.u64();
  msg.token_id = r.u64();
  msg.round = r.u64();
  msg.seq = r.i64();
  msg.aru = r.i64();
  msg.aru_id = r.u16();
  msg.fcc = r.u32();
  const uint32_t n = r.u32();
  if (static_cast<size_t>(n) * 8 > r.remaining()) return std::nullopt;
  msg.rtr.reserve(n);
  for (uint32_t i = 0; i < n; ++i) msg.rtr.push_back(r.i64());
  if (r.remaining() > 0) {
    const uint16_t nh = r.u16();
    if (static_cast<size_t>(nh) * 14 > r.remaining()) return std::nullopt;
    msg.health.reserve(nh);
    for (uint16_t i = 0; i < nh; ++i) {
      TokenHealth h;
      h.pid = r.u16();
      h.hold_us = r.u32();
      h.work = r.u32();
      h.rtr_count = r.u16();
      h.backlog = r.u16();
      msg.health.push_back(h);
    }
  }
  if (!r.done()) return std::nullopt;
  return msg;
}

// --- join ------------------------------------------------------------------

std::vector<std::byte> encode(const JoinMsg& msg) {
  Writer w(32 + 2 * (msg.proc_set.size() + msg.fail_set.size()));
  w.u8(static_cast<uint8_t>(PacketType::kJoin));
  w.u16(msg.sender);
  w.u64(msg.old_ring_id);
  w.u16(static_cast<uint16_t>(msg.proc_set.size()));
  for (ProcessId p : msg.proc_set) w.u16(p);
  w.u16(static_cast<uint16_t>(msg.fail_set.size()));
  for (ProcessId p : msg.fail_set) w.u16(p);
  // Quarantine set: optional trailing section (see the token health vector).
  if (!msg.quarantine_set.empty()) {
    w.u16(static_cast<uint16_t>(msg.quarantine_set.size()));
    for (const auto& [pid, hold] : msg.quarantine_set) {
      w.u16(pid);
      w.u32(hold);
    }
  }
  seal(w);
  return std::move(w).take();
}

std::optional<JoinMsg> decode_join(std::span<const std::byte> packet) {
  const auto body = unseal(packet);
  if (!body) return std::nullopt;
  Reader r(*body);
  if (r.u8() != static_cast<uint8_t>(PacketType::kJoin)) return std::nullopt;
  JoinMsg msg;
  msg.sender = r.u16();
  msg.old_ring_id = r.u64();
  const uint16_t np = r.u16();
  for (uint16_t i = 0; i < np && r.ok(); ++i) msg.proc_set.push_back(r.u16());
  const uint16_t nf = r.u16();
  for (uint16_t i = 0; i < nf && r.ok(); ++i) msg.fail_set.push_back(r.u16());
  if (r.remaining() > 0) {
    const uint16_t nq = r.u16();
    if (static_cast<size_t>(nq) * 6 > r.remaining()) return std::nullopt;
    for (uint16_t i = 0; i < nq; ++i) {
      const ProcessId pid = r.u16();
      const uint32_t hold = r.u32();
      msg.quarantine_set.emplace_back(pid, hold);
    }
  }
  if (!r.done()) return std::nullopt;
  return msg;
}

// --- commit token ----------------------------------------------------------

std::vector<std::byte> encode(const CommitTokenMsg& msg) {
  Writer w(32 + 32 * msg.members.size());
  w.u8(static_cast<uint8_t>(PacketType::kCommitToken));
  w.u64(msg.new_ring_id);
  w.u64(msg.token_id);
  w.u8(msg.rotation);
  w.u16(static_cast<uint16_t>(msg.members.size()));
  for (const CommitEntry& e : msg.members) {
    w.u16(e.pid);
    w.u64(e.old_ring_id);
    w.i64(e.old_aru);
    w.i64(e.old_high_seq);
    w.i64(e.old_safe_line);
    w.boolean(e.filled);
  }
  seal(w);
  return std::move(w).take();
}

std::optional<CommitTokenMsg> decode_commit(
    std::span<const std::byte> packet) {
  const auto body = unseal(packet);
  if (!body) return std::nullopt;
  Reader r(*body);
  if (r.u8() != static_cast<uint8_t>(PacketType::kCommitToken)) {
    return std::nullopt;
  }
  CommitTokenMsg msg;
  msg.new_ring_id = r.u64();
  msg.token_id = r.u64();
  msg.rotation = r.u8();
  const uint16_t n = r.u16();
  for (uint16_t i = 0; i < n && r.ok(); ++i) {
    CommitEntry e;
    e.pid = r.u16();
    e.old_ring_id = r.u64();
    e.old_aru = r.i64();
    e.old_high_seq = r.i64();
    e.old_safe_line = r.i64();
    e.filled = r.boolean();
    msg.members.push_back(e);
  }
  if (!r.done()) return std::nullopt;
  return msg;
}

}  // namespace accelring::protocol
