// Token-round flow control (§III-A-1).
//
// Pure arithmetic, kept separate from the engine so the windows' interaction
// can be unit-tested exhaustively: the number of new messages a participant
// may initiate in a round is
//
//   min( pending,                                   messages waiting to send
//        Personal_window,                           per-participant cap
//        Global_window - token.fcc - num_retrans,   ring-wide cap
//        Global_aru + Max_seq_gap - token.seq )     receiver-buffer bound
//
// and the fcc field is maintained by subtracting what this participant sent
// last round and adding what it sends this round.
#pragma once

#include <algorithm>
#include <cstdint>

#include "protocol/types.hpp"

namespace accelring::protocol {

class FlowControl {
 public:
  explicit FlowControl(const ProtocolConfig& cfg) : cfg_(cfg) {}

  /// Maximum number of new messages this participant may initiate now.
  [[nodiscard]] uint32_t allowance(size_t pending, uint32_t token_fcc,
                                   uint32_t num_retrans, SeqNum global_aru,
                                   SeqNum token_seq) const {
    const int64_t by_pending = static_cast<int64_t>(pending);
    const int64_t by_personal = cfg_.personal_window;
    const int64_t by_global = static_cast<int64_t>(cfg_.global_window) -
                              static_cast<int64_t>(token_fcc) -
                              static_cast<int64_t>(num_retrans);
    const int64_t by_gap = global_aru + cfg_.max_seq_gap - token_seq;
    const int64_t allowed = std::min(std::min(by_pending, by_personal),
                                     std::min(by_global, by_gap));
    return static_cast<uint32_t>(std::max<int64_t>(allowed, 0));
  }

  /// New fcc value to place on the token: replace this participant's
  /// last-round contribution with its current-round contribution.
  [[nodiscard]] uint32_t updated_fcc(uint32_t token_fcc,
                                     uint32_t sent_this_round) const {
    const int64_t fcc = static_cast<int64_t>(token_fcc) -
                        static_cast<int64_t>(sent_last_round_) +
                        static_cast<int64_t>(sent_this_round);
    return static_cast<uint32_t>(std::max<int64_t>(fcc, 0));
  }

  /// Record the round's sending for next round's fcc accounting.
  void round_complete(uint32_t sent_this_round) {
    sent_last_round_ = sent_this_round;
  }

  /// Forget history (ring change).
  void reset() { sent_last_round_ = 0; }

  [[nodiscard]] uint32_t sent_last_round() const { return sent_last_round_; }

 private:
  const ProtocolConfig& cfg_;
  uint32_t sent_last_round_ = 0;
};

}  // namespace accelring::protocol
