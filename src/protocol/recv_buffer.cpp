#include "protocol/recv_buffer.hpp"

#include <cassert>

namespace accelring::protocol {

bool RecvBuffer::insert(DataMsg msg) {
  if (msg.seq <= discard_line_) return false;  // already stable everywhere
  if (msg.seq <= local_aru_) return false;     // duplicate below aru
  const auto [it, inserted] = messages_.emplace(msg.seq, std::move(msg));
  if (!inserted) return false;  // duplicate
  high_seq_ = std::max(high_seq_, it->first);
  advance_aru();
  return true;
}

bool RecvBuffer::has(SeqNum seq) const {
  if (seq <= local_aru_) return true;
  return messages_.contains(seq);
}

const DataMsg* RecvBuffer::find(SeqNum seq) const {
  const auto it = messages_.find(seq);
  return it == messages_.end() ? nullptr : &it->second;
}

void RecvBuffer::advance_aru() {
  auto it = messages_.find(local_aru_ + 1);
  while (it != messages_.end() && it->first == local_aru_ + 1) {
    ++local_aru_;
    ++it;
  }
}

const DataMsg* RecvBuffer::next_deliverable(SeqNum safe_line) {
  const auto it = messages_.find(delivered_ + 1);
  if (it == messages_.end()) return nullptr;  // gap or nothing new
  const DataMsg& msg = it->second;
  if (requires_safe(msg.service) && msg.seq > safe_line) {
    // Not yet known received by all participants: blocks the total order.
    return nullptr;
  }
  return &msg;
}

void RecvBuffer::mark_delivered() { ++delivered_; }

void RecvBuffer::discard_up_to(SeqNum line) {
  line = std::min(line, delivered_);
  if (line <= discard_line_) return;
  discard_line_ = line;
  messages_.erase(messages_.begin(), messages_.upper_bound(line));
}

std::vector<SeqNum> RecvBuffer::missing_up_to(
    SeqNum bound, const std::vector<SeqNum>& already_requested) const {
  std::vector<SeqNum> missing;
  for (SeqNum s = local_aru_ + 1; s <= bound; ++s) {
    if (messages_.contains(s)) continue;
    bool requested = false;
    for (SeqNum r : already_requested) {
      if (r == s) {
        requested = true;
        break;
      }
    }
    if (!requested) missing.push_back(s);
  }
  return missing;
}

size_t RecvBuffer::undelivered() const {
  size_t n = 0;
  for (const auto& [seq, msg] : messages_) {
    if (seq > delivered_) ++n;
  }
  return n;
}

}  // namespace accelring::protocol
