// Deterministic replicated KV state machine.
//
// One instance per (node, shard), driven by an rsm::Replica: every command
// is a session-framed KvOp ([uuid][seq][op]); apply() decodes, suppresses
// duplicate mutations per session (seq at or below the session's floor
// re-answers from the cached result instead of re-executing — the receiver
// half of the FailoverClient exactly-once contract), executes, and reports
// the outcome through an observation-only callback the frontend uses to
// resolve local pending ops.
//
// Determinism contract: state (data, session table, version counters) is a
// pure function of the command sequence, and snapshot()/restore() round-trip
// all of it, so replicas restored from a chunked state transfer continue
// with identical dedup behaviour and version numbering.
//
// `version()` counts effective mutations (commands that changed the map) and
// is the currency of the consistency story: every applied/served result
// reports the shard version it reflects, the oracle replays mutation events
// into per-key histories keyed by version, and reads are checked against the
// history entry their version selects.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "kv/command.hpp"
#include "rsm/replica.hpp"

namespace accelring::kv {

/// One applied command, reported to the frontend / oracle. Spans and
/// references are valid only for the duration of the callback.
struct AppliedOp {
  uint64_t uuid = 0;
  uint64_t seq = 0;
  OpType type = OpType::kGet;
  const std::string* key = nullptr;
  KvResult result;
  uint64_t version = 0;    ///< shard state version after this command
  bool duplicate = false;  ///< answered from the session result cache
  bool mutated = false;    ///< the command changed the map
  uint32_t value_crc = 0;  ///< CRC of the value written (mutations that took)
};

class KvStateMachine final : public rsm::StateMachine {
 public:
  /// Observation only: must not feed back into machine or replica state.
  using ApplyFn = std::function<void(const AppliedOp&)>;

  void set_on_apply(ApplyFn fn) { on_apply_ = std::move(fn); }

  void apply(std::span<const std::byte> command) override;
  [[nodiscard]] std::vector<std::byte> snapshot() const override;
  void restore(std::span<const std::byte> snapshot) override;

  /// Execute a read against current state without logging it (the lease
  /// fast path; also used internally by apply for ordered reads).
  [[nodiscard]] KvResult execute_read(const KvOp& op) const;

  [[nodiscard]] const std::string* get(const std::string& key) const;
  /// Effective mutations applied (state version).
  [[nodiscard]] uint64_t version() const { return version_; }
  /// All commands processed, reads and duplicates included.
  [[nodiscard]] uint64_t commands() const { return commands_; }
  [[nodiscard]] uint64_t dup_suppressed() const { return dup_suppressed_; }
  [[nodiscard]] uint64_t malformed() const { return malformed_; }
  [[nodiscard]] size_t size() const { return data_.size(); }
  [[nodiscard]] size_t sessions() const { return sessions_.size(); }

  /// Direct mutation used to pre-populate a warm dataset before the run
  /// starts (applied identically at every founder, as if restored from a
  /// common snapshot). Never call once ordered traffic is flowing.
  void preload(const std::string& key, const std::string& value);

 private:
  struct Session {
    uint64_t floor = 0;               ///< highest mutation seq applied
    std::vector<std::byte> result;    ///< encoded result of that mutation
  };

  KvResult execute_mutation(const KvOp& op, bool& mutated);

  std::map<std::string, std::string> data_;
  std::map<uint64_t, Session> sessions_;
  uint64_t version_ = 0;
  uint64_t commands_ = 0;
  uint64_t dup_suppressed_ = 0;
  uint64_t malformed_ = 0;
  ApplyFn on_apply_;
};

}  // namespace accelring::kv
