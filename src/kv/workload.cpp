#include "kv/workload.hpp"

#include <algorithm>
#include <cmath>

namespace accelring::kv {

namespace {

constexpr double kPi = 3.14159265358979323846;

}  // namespace

ZipfGen::ZipfGen(uint64_t n, double s) {
  cdf_.resize(n);
  double total = 0;
  for (uint64_t i = 0; i < n; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf_[i] = total;
  }
  for (auto& c : cdf_) c /= total;
}

uint64_t ZipfGen::sample(double u) const {
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return cdf_.size() - 1;
  return static_cast<uint64_t>(it - cdf_.begin());
}

double ZipfGen::probability(uint64_t rank) const {
  if (rank >= cdf_.size()) return 0;
  return rank == 0 ? cdf_[0] : cdf_[rank] - cdf_[rank - 1];
}

double diurnal_factor(Nanos t, const WorkloadConfig& cfg) {
  if (t < cfg.start) return 1.0;
  const double phase = 2.0 * kPi * static_cast<double>(t - cfg.start) /
                       static_cast<double>(cfg.period);
  return 1.0 + (cfg.peak_factor - 1.0) * 0.5 * (1.0 - std::cos(phase));
}

double diurnal_integral(Nanos a, Nanos b, const WorkloadConfig& cfg) {
  // Antiderivative of 1 + (p-1)/2 (1 - cos(2π(t-start)/T)); result in
  // seconds so base_rate (ops/sec) times this is an expected op count.
  const double amp = (cfg.peak_factor - 1.0) * 0.5;
  const double w = 2.0 * kPi / static_cast<double>(cfg.period);
  auto anti = [&](Nanos t) {
    const double x = static_cast<double>(t - cfg.start);
    return (1.0 + amp) * x - amp / w * std::sin(w * x);
  };
  return (anti(b) - anti(a)) / 1e9;
}

SessionWorkload::SessionWorkload(KvService& service, const WorkloadConfig& cfg)
    : service_(service),
      cfg_(cfg),
      eq_(service.eq()),
      zipf_(cfg.keys, cfg.zipf_s),
      rng_(cfg.seed),
      sessions_(cfg.sessions) {
  // Thinning ceiling: the service-wide peak rate split evenly across nodes,
  // in arrivals per nanosecond.
  lambda_max_per_node_ =
      cfg_.base_rate * cfg_.peak_factor /
      (static_cast<double>(service_.nodes()) * 1e9);
}

void SessionWorkload::start() {
  for (int node = 0; node < service_.nodes(); ++node) arm_arrival(node);
  if (cfg_.churn_per_sec > 0) arm_churn();
}

void SessionWorkload::arm_arrival(int node) {
  // Exponential gap at the ceiling rate; accepted with probability
  // λ(t)/λ_max at fire time (Lewis-Shedler thinning), which leaves an
  // inhomogeneous Poisson process with the diurnal intensity.
  const double u = std::max(rng_.uniform(), 1e-12);
  const double gap_ns = -std::log(u) / lambda_max_per_node_;
  const Nanos at = std::max(eq_.now(), cfg_.start) +
                   static_cast<Nanos>(gap_ns) + 1;
  if (at >= cfg_.stop) return;
  eq_.schedule(at, [this, node] {
    if (rng_.chance(diurnal_factor(eq_.now(), cfg_) / cfg_.peak_factor)) {
      issue_from(node);
    }
    arm_arrival(node);
  });
}

void SessionWorkload::arm_churn() {
  const double u = std::max(rng_.uniform(), 1e-12);
  const double gap_ns = -std::log(u) / (cfg_.churn_per_sec / 1e9);
  const Nanos at = std::max(eq_.now(), cfg_.start) +
                   static_cast<Nanos>(gap_ns) + 1;
  if (at >= cfg_.stop) return;
  eq_.schedule(at, [this] {
    // A client reconnects and replays its in-flight request (the session
    // protocol absorbs the duplicate).
    const uint64_t index = rng_.below(cfg_.sessions);
    Session& session = sessions_[index];
    if (session.inflight) {
      const int node = static_cast<int>(index % service_.nodes());
      if (service_.node_up(node) &&
          service_.frontend(node).retry(index + 1)) {
        ++stats_.reconnects;
      }
    }
    arm_churn();
  });
}

void SessionWorkload::issue_from(int node) {
  if (!service_.node_up(node)) {
    ++stats_.down_skips;
    return;
  }
  // Sessions are pinned to nodes by index; sample one of this node's.
  const auto nodes = static_cast<uint64_t>(service_.nodes());
  const uint64_t per_node = cfg_.sessions / nodes;
  if (per_node == 0) return;
  const uint64_t index =
      rng_.below(per_node) * nodes + static_cast<uint64_t>(node);
  if (index >= cfg_.sessions) return;
  if (sessions_[index].inflight) {
    ++stats_.busy_skips;
    return;
  }
  issue_op(index, node);
}

KvOp SessionWorkload::draw_op() {
  KvOp op;
  const uint64_t key_id = zipf_.sample(rng_.uniform());
  op.key = make_key(key_id);
  if (rng_.chance(cfg_.read_fraction)) {
    if (rng_.chance(0.02)) {
      op.type = OpType::kScan;
      op.scan_limit = 10;
    } else {
      op.type = OpType::kGet;
    }
    return op;
  }
  const double w = rng_.uniform();
  if (w < 0.80) {
    op.type = OpType::kPut;
    op.value = make_value(rng_.next(), cfg_.value_size);
  } else if (w < 0.95) {
    op.type = OpType::kCas;
    // Guess the preloaded original; a mismatch still exercises the path.
    op.expect = make_value(key_id, cfg_.value_size);
    op.value = make_value(rng_.next(), cfg_.value_size);
  } else {
    op.type = OpType::kDel;
  }
  return op;
}

void SessionWorkload::issue_op(uint64_t session_index, int node) {
  Session& session = sessions_[session_index];
  const uint64_t uuid = session_index + 1;
  const KvOp op = draw_op();
  const bool mutation = is_mutation(op.type);
  const uint32_t seq = ++session.next_seq;

  // Read-your-writes floor: only binds when the read lands on the shard of
  // this session's last acked write.
  uint64_t min_version = 0;
  if (!mutation && session.last_write_shard >= 0 &&
      service_.frontend(node).shard_of(op.key) == session.last_write_shard) {
    min_version = session.last_write_version;
  }

  const uint32_t token = ++session.issue_count;
  const bool ok = service_.frontend(node).issue(
      uuid, seq, op, min_version,
      [this, session_index](const Frontend::Outcome& outcome) {
        Session& s = sessions_[session_index];
        s.inflight = false;
        s.retries = 0;
        ++stats_.completed;
        if (outcome.lease_served) {
          ++stats_.lease_reads;
        } else if (is_mutation(outcome.type)) {
          ++stats_.mutations;
          s.last_write_shard = outcome.shard;
          s.last_write_version = outcome.version;
        } else {
          ++stats_.ordered_reads;
        }
        if (outcome.done_at >= cfg_.measure_from) {
          const Nanos lat = outcome.done_at - outcome.issued_at;
          ++stats_.measured;
          latency_.record(lat);
          if (outcome.lease_served) {
            ++stats_.measured_lease_reads;
            lease_read_latency_.record(lat);
          } else if (is_mutation(outcome.type)) {
            ++stats_.measured_mutations;
            write_latency_.record(lat);
          } else {
            ++stats_.measured_ordered_reads;
            ordered_read_latency_.record(lat);
          }
        }
      });
  if (!ok) {
    ++stats_.busy_skips;
    return;
  }
  ++stats_.issued;
  if (!session.touched) {
    session.touched = true;
    ++stats_.sessions_touched;
  }
  if (service_.frontend(node).in_flight(uuid)) {
    // Resolved asynchronously (ordered path): arm the timeout chain.
    session.inflight = true;
    arm_timeout(session_index, node, token);
  }
}

void SessionWorkload::arm_timeout(uint64_t session_index, int node,
                                  uint32_t token) {
  eq_.schedule_after(cfg_.op_timeout, [this, session_index, node, token] {
    Session& session = sessions_[session_index];
    if (!session.inflight || session.issue_count != token) return;
    const uint64_t uuid = session_index + 1;
    if (session.retries < cfg_.max_retries && service_.node_up(node)) {
      ++session.retries;
      ++stats_.retries;
      service_.frontend(node).retry(uuid);
      arm_timeout(session_index, node, token);
      return;
    }
    service_.frontend(node).cancel(uuid);
    session.inflight = false;
    session.retries = 0;
    ++stats_.timeouts;
  });
}

double SessionWorkload::measured_ops_per_sec() const {
  const Nanos window = cfg_.stop - cfg_.measure_from;
  if (window <= 0) return 0;
  return static_cast<double>(stats_.measured) /
         (static_cast<double>(window) / 1e9);
}

}  // namespace accelring::kv
