// KV op and result wire codecs.
//
// A client operation travels as an ordered rsm command wrapped in the
// FailoverClient session frame — [u64 session uuid][u64 seq][op bytes] — so
// the state machine can suppress duplicate mutations per session exactly the
// way the daemon client library does (one shared exactly-once convention
// across the whole stack). Results are computed locally at every replica;
// only mutation results are persisted (in the per-session cache that makes
// retried mutations return their original result), so the result codec keeps
// scans as a count + content CRC instead of echoing pairs back.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace accelring::kv {

enum class OpType : uint8_t {
  kPut = 1,
  kDel = 2,
  kCas = 3,
  kGet = 4,
  kScan = 5,
};

[[nodiscard]] constexpr bool is_mutation(OpType t) {
  return t == OpType::kPut || t == OpType::kDel || t == OpType::kCas;
}

[[nodiscard]] const char* op_name(OpType t);

struct KvOp {
  OpType type = OpType::kGet;
  std::string key;
  std::string value;   ///< put / cas: the new value
  std::string expect;  ///< cas: the expected current value
  uint32_t scan_limit = 0;
};

enum class Status : uint8_t {
  kOk = 0,
  kNotFound = 1,
  kCasMismatch = 2,
};

struct KvResult {
  Status status = Status::kOk;
  std::string value;       ///< get: the value read ("" on miss)
  uint32_t scan_count = 0; ///< scan: pairs visited
  uint32_t scan_crc = 0;   ///< scan: CRC over the visited pairs
};

[[nodiscard]] std::vector<std::byte> encode_op(const KvOp& op);
[[nodiscard]] std::optional<KvOp> decode_op(std::span<const std::byte> bytes);

[[nodiscard]] std::vector<std::byte> encode_result(const KvResult& result);
[[nodiscard]] std::optional<KvResult> decode_result(
    std::span<const std::byte> bytes);

}  // namespace accelring::kv
