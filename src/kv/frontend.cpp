#include "kv/frontend.hpp"

#include <utility>

#include "daemon/failover_client.hpp"

namespace accelring::kv {

Frontend::Frontend(ProcessId self, int shards, LeaseConfig lease,
                   SubmitFn submit, NowFn now)
    : self_(self),
      map_(shards),
      lease_cfg_(lease),
      submit_(std::move(submit)),
      now_(std::move(now)),
      machines_(static_cast<size_t>(shards), nullptr),
      leases_(static_cast<size_t>(shards), nullptr),
      replicas_(static_cast<size_t>(shards), nullptr),
      lease_resume_(static_cast<size_t>(shards), 0) {}

void Frontend::attach_shard(int shard, const KvStateMachine* machine,
                            const LeaseTable* lease,
                            const rsm::Replica* replica) {
  machines_[static_cast<size_t>(shard)] = machine;
  leases_[static_cast<size_t>(shard)] = lease;
  replicas_[static_cast<size_t>(shard)] = replica;
}

void Frontend::emit(const Outcome& outcome, const CompleteFn& done) {
  ++stats_.resolved;
  if (outcome.duplicate) ++stats_.duplicate_acks;
  if (done) done(outcome);
  if (observer_) observer_(outcome);
}

bool Frontend::issue(uint64_t uuid, uint64_t seq, const KvOp& op,
                     uint64_t min_version, CompleteFn done) {
  if (pending_.contains(uuid)) return false;
  ++stats_.issued;
  const int shard = shard_of(op.key);
  const auto s = static_cast<size_t>(shard);
  const Nanos now = now_();

  if (!is_mutation(op.type) && lease_cfg_.enabled && leases_[s] != nullptr &&
      machines_[s] != nullptr && leases_[s]->can_serve(self_, now, lease_cfg_) &&
      replicas_[s] != nullptr && !replicas_[s]->catching_up() &&
      machines_[s]->version() >= min_version &&
      machines_[s]->version() >= lease_resume_[s]) {
    // Lease fast path: serve from local state, no ordered round trip. The
    // version floor keeps read-your-writes across a lease handover to a
    // node that has not yet applied this session's last write.
    ++stats_.lease_reads;
    Outcome outcome;
    outcome.uuid = uuid;
    outcome.seq = seq;
    outcome.type = op.type;
    outcome.shard = shard;
    outcome.key = op.key;
    outcome.result = machines_[s]->execute_read(op);
    outcome.version = machines_[s]->version();
    outcome.lease_served = true;
    outcome.lease = leases_[s]->id();
    outcome.issued_at = now;
    outcome.done_at = now;
    emit(outcome, done);
    return true;
  }

  if (is_mutation(op.type)) {
    ++stats_.mutations;
  } else {
    ++stats_.ordered_reads;
  }
  Pending pending;
  pending.seq = seq;
  pending.shard = shard;
  pending.type = op.type;
  pending.key = op.key;
  pending.frame = daemon::encode_session_frame(uuid, seq, encode_op(op));
  pending.issued_at = now;
  pending.done = std::move(done);
  auto frame = pending.frame;
  pending_.emplace(uuid, std::move(pending));
  if (!submit_(shard, std::move(frame))) {
    // Shed by backpressure: keep the op pending — the session's timeout
    // chain retries it exactly as it would a lost frame.
    ++stats_.submit_shed;
  }
  return true;
}

size_t Frontend::apply_map(const multiring::MigrationPlan& plan) {
  if (plan.empty() || plan.from_version != map_.version()) return 0;
  map_.apply(plan);
  for (const int dst : plan.dests()) {
    const auto d = static_cast<size_t>(dst);
    if (d >= machines_.size() || machines_[d] == nullptr) continue;
    // Local state as of the handoff cannot yet reflect the moved keys:
    // require at least one post-handoff apply before lease-serving again.
    lease_resume_[d] = machines_[d]->version() + 1;
  }
  size_t remapped = 0;
  for (auto& [uuid, p] : pending_) {
    const int shard = shard_of(p.key);
    if (shard == p.shard) continue;
    p.shard = shard;
    ++p.retries;
    ++remapped;
    if (!submit_(shard, p.frame)) ++stats_.submit_shed;
  }
  stats_.remapped += remapped;
  return remapped;
}

bool Frontend::retry(uint64_t uuid) {
  const auto it = pending_.find(uuid);
  if (it == pending_.end()) return false;
  ++stats_.retries;
  ++it->second.retries;
  if (!submit_(it->second.shard, it->second.frame)) ++stats_.submit_shed;
  return true;
}

bool Frontend::cancel(uint64_t uuid) {
  if (pending_.erase(uuid) == 0) return false;
  ++stats_.cancelled;
  return true;
}

void Frontend::on_applied(int shard, const AppliedOp& applied) {
  const auto it = pending_.find(applied.uuid);
  if (it == pending_.end() || it->second.seq != applied.seq ||
      it->second.shard != shard) {
    // A retransmit of an op we already acked, someone else's session, or a
    // session that gave up — the apply already took effect, nothing to
    // resolve here.
    if (it == pending_.end()) ++stats_.orphan_applies;
    return;
  }
  Outcome outcome;
  outcome.uuid = applied.uuid;
  outcome.seq = applied.seq;
  outcome.type = it->second.type;
  outcome.shard = shard;
  outcome.key = it->second.key;
  outcome.result = applied.result;
  outcome.version = applied.version;
  outcome.duplicate = applied.duplicate;
  outcome.issued_at = it->second.issued_at;
  outcome.done_at = now_();
  outcome.retries = it->second.retries;
  CompleteFn done = std::move(it->second.done);
  pending_.erase(it);
  emit(outcome, done);
}

}  // namespace accelring::kv
