#include "kv/command.hpp"

#include "util/bytes.hpp"

namespace accelring::kv {

namespace {

void put_blob(util::Writer& w, const std::string& s) {
  w.bytes(std::as_bytes(std::span{s.data(), s.size()}));
}

std::string take_blob(util::Reader& r) {
  const auto b = r.bytes();
  return {reinterpret_cast<const char*>(b.data()), b.size()};
}

}  // namespace

const char* op_name(OpType t) {
  switch (t) {
    case OpType::kPut:
      return "put";
    case OpType::kDel:
      return "del";
    case OpType::kCas:
      return "cas";
    case OpType::kGet:
      return "get";
    case OpType::kScan:
      return "scan";
  }
  return "?";
}

std::vector<std::byte> encode_op(const KvOp& op) {
  util::Writer w(op.key.size() + op.value.size() + op.expect.size() + 24);
  w.u8(static_cast<uint8_t>(op.type));
  w.str(op.key);
  put_blob(w, op.value);
  put_blob(w, op.expect);
  w.u32(op.scan_limit);
  return std::move(w).take();
}

std::optional<KvOp> decode_op(std::span<const std::byte> bytes) {
  util::Reader r(bytes);
  KvOp op;
  op.type = static_cast<OpType>(r.u8());
  op.key = r.str();
  op.value = take_blob(r);
  op.expect = take_blob(r);
  op.scan_limit = r.u32();
  if (!r.done()) return std::nullopt;
  switch (op.type) {
    case OpType::kPut:
    case OpType::kDel:
    case OpType::kCas:
    case OpType::kGet:
    case OpType::kScan:
      return op;
  }
  return std::nullopt;
}

std::vector<std::byte> encode_result(const KvResult& result) {
  util::Writer w(result.value.size() + 16);
  w.u8(static_cast<uint8_t>(result.status));
  put_blob(w, result.value);
  w.u32(result.scan_count);
  w.u32(result.scan_crc);
  return std::move(w).take();
}

std::optional<KvResult> decode_result(std::span<const std::byte> bytes) {
  util::Reader r(bytes);
  KvResult res;
  res.status = static_cast<Status>(r.u8());
  res.value = take_blob(r);
  res.scan_count = r.u32();
  res.scan_crc = r.u32();
  if (!r.done()) return std::nullopt;
  return res;
}

}  // namespace accelring::kv
