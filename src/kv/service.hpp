// Sharded replicated KV service assembly.
//
// Glues the pieces into a running service over either substrate:
//
//  * one `SimCluster` — a single shard on a single ring (the campaign and
//    unit-test setup, where crash/restart faults are available), or
//  * a `RingSet`  — K shards, shard s ordered by ring s, every logical node
//    replicating every shard (the benchmark setup; Multi-Ring capacity
//    scaling carries straight over to the KV service).
//
// Per (node, shard) the service owns a KvStateMachine, an rsm::Replica
// driving it (chunked state transfer, compaction, divergence audit), and a
// LeaseTable. Per node it owns a Frontend. The service wires deliveries and
// configuration changes from the substrate into the replicas and lease
// tables, runs the lease-acquisition protocol (the designated holder of each
// shard's view multicasts grant frames through the shard's ordered stream
// and renews on a timer), and exposes observer hooks the KvOracle and the
// workload driver tap.
//
// Crash/restart choreography (SimCluster substrate): the fault injector
// calls cluster.crash_node(n) then service.on_crash(n); after
// cluster.restart_node(n) it calls service.on_restart(n), which stands up
// fresh machines/replicas/lease tables for the node — state comes back via
// the replica's chunked state transfer, exactly like a rebooted daemon.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "harness/cluster.hpp"
#include "kv/frontend.hpp"
#include "kv/lease.hpp"
#include "kv/state_machine.hpp"
#include "multiring/ring_set.hpp"
#include "rsm/replica.hpp"
#include "storage/replica_store.hpp"

namespace accelring::kv {

struct ServiceConfig {
  int shards = 1;
  LeaseConfig lease;
  rsm::ReplicaOptions replica;
  /// Keys pre-populated into every founder machine before the run starts
  /// (a warm dataset, as if restored from a common snapshot): make_key(i)
  /// -> make_value(i, preload_value_size) for i in [0, preload_keys).
  uint64_t preload_keys = 0;
  size_t preload_value_size = 64;
  /// Optional durability: when set, every (node, shard) replica runs over a
  /// ReplicaStore from this factory — WAL appends before apply, durable
  /// checkpoints, cold restart from disk before peer state transfer. The
  /// factory is re-invoked on restart (fresh store object = fresh daemon
  /// memory; the disk underneath is whatever the factory hands back).
  using StoreFactory =
      std::function<std::unique_ptr<storage::ReplicaStore>(int node,
                                                           int shard)>;
  StoreFactory store_factory;
};

/// The canonical key/value naming the preloader, workload, and tests share.
[[nodiscard]] std::string make_key(uint64_t id);
[[nodiscard]] std::string make_value(uint64_t id, size_t size);

class KvService {
 public:
  using AppliedFn = std::function<void(int node, int shard,
                                       const AppliedOp& applied, Nanos at)>;
  using LeaseGrantFn =
      std::function<void(int node, int shard, const LeaseId& id, Nanos at)>;
  using OutcomeFn =
      std::function<void(int node, const Frontend::Outcome& outcome)>;

  struct Stats {
    uint64_t grants_submitted = 0;
    uint64_t grants_applied = 0;
    /// Grant frames whose sender was not the designated holder of the
    /// receiver's current view (stale holder racing a view change).
    uint64_t grants_rejected = 0;
    /// divergence_detected carried over from replicas retired by restarts
    /// (see total_divergence()).
    uint64_t divergence_carried = 0;
  };

  /// Single-shard service over one cluster. Requires cfg.shards == 1.
  KvService(harness::SimCluster& cluster, const ServiceConfig& cfg);

  /// K-shard service over a ring set: shard s is ordered by ring s, so
  /// cfg.shards must equal rings.num_rings(). Claims the ring set's
  /// set_on_config slot (deliveries use the accumulating merged observers).
  KvService(multiring::RingSet& rings, const ServiceConfig& cfg);

  /// Fault choreography (SimCluster substrate; see file comment).
  void on_crash(int node);
  void on_restart(int node);

  /// Install a completed shard-map handoff on every live node's frontend
  /// (see Frontend::apply_map): routing, in-flight ops, and lease authority
  /// move with the shard at all nodes at once. The plan must be built
  /// against the frontends' current map version. Returns the total number
  /// of pending ops remapped across nodes.
  size_t apply_map(const multiring::MigrationPlan& plan);

  /// Observers (oracle / workload taps). The applied observer fires before
  /// the frontend resolves the op, so mutation history is recorded before
  /// any dependent outcome is examined.
  void set_on_applied(AppliedFn fn) { applied_obs_ = std::move(fn); }
  void set_on_lease_grant(LeaseGrantFn fn) { lease_obs_ = std::move(fn); }
  void set_on_outcome(OutcomeFn fn);

  /// Bind every replica's stats into the substrate's per-node metrics
  /// registries (component "rsm"). Requires metrics enabled on the
  /// substrate first; restarted nodes are re-bound automatically.
  void bind_metrics();

  [[nodiscard]] Frontend& frontend(int node) { return *frontends_[node]; }
  [[nodiscard]] const KvStateMachine& machine(int node, int shard) const {
    return *machines_[node][shard];
  }
  [[nodiscard]] const rsm::Replica& replica(int node, int shard) const {
    return *replicas_[node][shard];
  }
  [[nodiscard]] const LeaseTable& lease(int node, int shard) const {
    return *leases_[node][shard];
  }
  [[nodiscard]] bool node_up(int node) const {
    return !down_[static_cast<size_t>(node)];
  }
  [[nodiscard]] simnet::EventQueue& eq() { return *eq_; }
  [[nodiscard]] int nodes() const { return nodes_; }
  [[nodiscard]] int shards() const { return cfg_.shards; }
  [[nodiscard]] const ServiceConfig& config() const { return cfg_; }
  [[nodiscard]] const Stats& stats() const { return stats_; }
  /// Boundary-CRC divergence audits across every replica incarnation this
  /// run, including ones retired by restarts. In a durable run this must
  /// stay 0: recovering from disk must never resurrect a diverged lineage.
  [[nodiscard]] uint64_t total_divergence() const;

 private:
  void init();
  void setup_node(int node, bool founder);
  void wire_shard(int node, int shard);
  bool submit_frame(int node, int shard, std::vector<std::byte> payload);
  void on_ring_delivery(int node, int shard, const protocol::Delivery& d,
                        Nanos at);
  void on_ring_config(int node, int shard,
                      const protocol::ConfigurationChange& change);
  void submit_grant(int node, int shard);
  void arm_renewal(int node, int shard, uint64_t gen);
  void bind_node_metrics(int node);

  ServiceConfig cfg_;
  harness::SimCluster* cluster_ = nullptr;  ///< single-shard substrate
  multiring::RingSet* rings_ = nullptr;     ///< K-shard substrate
  simnet::EventQueue* eq_ = nullptr;
  int nodes_ = 0;

  std::vector<std::unique_ptr<Frontend>> frontends_;  ///< per node
  /// All remaining state is [node][shard].
  std::vector<std::vector<std::unique_ptr<KvStateMachine>>> machines_;
  std::vector<std::vector<std::unique_ptr<rsm::Replica>>> replicas_;
  std::vector<std::vector<std::unique_ptr<storage::ReplicaStore>>> stores_;
  std::vector<std::vector<std::unique_ptr<LeaseTable>>> leases_;
  std::vector<std::vector<std::vector<ProcessId>>> views_;  ///< sorted
  /// Bumped on every view change / crash / restart; outstanding renewal
  /// timers compare generations and die when stale.
  std::vector<std::vector<uint64_t>> lease_gen_;
  /// True between a transitional configuration and the next regular one.
  /// Grants delivered in that window were not provably received by every
  /// member of the old view (EVS phase-2 leftovers): a lease extension only
  /// some members observe breaks the mutual-exclusion window bound, so
  /// grant frames are rejected while the flag is set.
  std::vector<std::vector<bool>> in_transitional_;
  /// Highest shard version this node has surfaced to observers/clients.
  /// Catch-up replay after a state-transfer adoption re-executes history at
  /// or below this watermark; those applies are reconstruction, not fresh
  /// events, and are not re-surfaced. Reset with the node on restart.
  std::vector<std::vector<uint64_t>> exposed_version_;
  std::vector<bool> down_;
  bool metrics_bound_ = false;

  AppliedFn applied_obs_;
  LeaseGrantFn lease_obs_;
  OutcomeFn outcome_obs_;
  Stats stats_;
};

}  // namespace accelring::kv
