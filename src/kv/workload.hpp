// Open-loop session workload driver for the KV service.
//
// Models a large population of client sessions — up to the million-session
// scale — without a million live objects doing work: sessions are compact
// records (a seq counter, a read floor, an in-flight marker), and each node
// runs one open-loop arrival chain that samples which of its sessions acts
// next. Arrivals follow an inhomogeneous Poisson process (thinning against
// the peak rate) whose intensity traces a raised-cosine diurnal ramp; keys
// follow a Zipf distribution (CDF inversion); a configurable fraction of
// ops are reads (GET with occasional SCANs), the rest PUT/CAS/DEL.
//
// Open loop means arrivals never wait for completions: when the service
// falls behind, pending ops pile up and client-observed latency grows —
// the honest way to measure a service near saturation. Each session keeps
// at most one op in flight (the session protocol's ordering unit); an
// arrival drawn for a busy session is counted (`busy_skips`) and dropped.
// Per-op timeout chains resubmit through Frontend::retry (exactly-once
// makes the duplicates harmless) and give up after `max_retries`; reconnect
// churn picks random sessions and resubmits their in-flight op, modelling
// clients that reconnect and replay, at `churn_per_sec`.
#pragma once

#include <cstdint>
#include <vector>

#include "kv/service.hpp"
#include "obs/metrics.hpp"
#include "util/rng.hpp"

namespace accelring::kv {

struct WorkloadConfig {
  uint64_t sessions = 1'000'000;
  uint64_t keys = 100'000;
  double zipf_s = 0.99;        ///< skew exponent (0 = uniform)
  double read_fraction = 0.9;
  size_t value_size = 64;
  double base_rate = 50'000;   ///< offered ops/sec across the service, trough
  double peak_factor = 2.0;    ///< peak rate = base_rate * peak_factor
  Nanos period = util::sec(2); ///< diurnal period (compressed for simulation)
  Nanos start = util::msec(50);
  Nanos stop = util::sec(2);
  double churn_per_sec = 0;    ///< reconnect-and-replay events per second
  Nanos op_timeout = util::msec(50);
  uint32_t max_retries = 3;
  uint64_t seed = 1;
  /// Completions before this time are warmup and not measured.
  Nanos measure_from = util::msec(100);
};

/// Zipf(s) over ranks [0, n): rank 0 most popular. Sampling inverts the CDF.
class ZipfGen {
 public:
  ZipfGen(uint64_t n, double s);
  [[nodiscard]] uint64_t sample(double u) const;  ///< u uniform in [0,1)
  [[nodiscard]] double probability(uint64_t rank) const;

 private:
  std::vector<double> cdf_;
};

/// Diurnal intensity multiplier at time `t`: a raised cosine from 1 at
/// `start` up to `peak_factor` half a period later and back.
[[nodiscard]] double diurnal_factor(Nanos t, const WorkloadConfig& cfg);
/// Closed-form integral of diurnal_factor over [a, b], in seconds (so
/// base_rate * diurnal_integral(a, b, cfg) = expected arrivals).
[[nodiscard]] double diurnal_integral(Nanos a, Nanos b,
                                      const WorkloadConfig& cfg);

struct WorkloadStats {
  uint64_t issued = 0;
  uint64_t completed = 0;
  uint64_t lease_reads = 0;
  uint64_t ordered_reads = 0;
  uint64_t mutations = 0;
  uint64_t busy_skips = 0;
  uint64_t down_skips = 0;   ///< arrivals at a crashed node
  uint64_t timeouts = 0;     ///< ops abandoned after max_retries
  uint64_t retries = 0;
  uint64_t reconnects = 0;
  uint64_t sessions_touched = 0;  ///< distinct sessions that issued >= 1 op
  /// Completions inside the measure window (ops/sec numerator).
  uint64_t measured = 0;
  uint64_t measured_lease_reads = 0;
  uint64_t measured_ordered_reads = 0;
  uint64_t measured_mutations = 0;
};

class SessionWorkload {
 public:
  SessionWorkload(KvService& service, const WorkloadConfig& cfg);

  /// Arm the per-node arrival chains (and the churn chain); the caller then
  /// advances the shared event queue. Call once.
  void start();

  [[nodiscard]] const WorkloadStats& stats() const { return stats_; }
  [[nodiscard]] const WorkloadConfig& config() const { return cfg_; }
  /// Completed-op latency, measure window only.
  [[nodiscard]] const obs::Histogram& latency() const { return latency_; }
  [[nodiscard]] const obs::Histogram& lease_read_latency() const {
    return lease_read_latency_;
  }
  [[nodiscard]] const obs::Histogram& ordered_read_latency() const {
    return ordered_read_latency_;
  }
  [[nodiscard]] const obs::Histogram& write_latency() const {
    return write_latency_;
  }
  /// Measured throughput in completed ops/sec over the measure window.
  [[nodiscard]] double measured_ops_per_sec() const;

 private:
  /// Compact per-session record — the whole million-session population is
  /// sized by this struct.
  struct Session {
    uint32_t next_seq = 0;
    uint32_t issue_count = 0;    ///< timeout-chain token
    uint8_t retries = 0;
    bool inflight = false;
    bool touched = false;
    int32_t last_write_shard = -1;
    uint64_t last_write_version = 0;  ///< read-your-writes floor
  };

  void arm_arrival(int node);
  void arm_churn();
  void issue_from(int node);
  void issue_op(uint64_t session_index, int node);
  void arm_timeout(uint64_t session_index, int node, uint32_t token);
  [[nodiscard]] KvOp draw_op();

  KvService& service_;
  WorkloadConfig cfg_;
  simnet::EventQueue& eq_;
  ZipfGen zipf_;
  util::Rng rng_;
  std::vector<Session> sessions_;
  double lambda_max_per_node_ = 0;  ///< arrivals/ns ceiling for thinning
  WorkloadStats stats_;
  obs::Histogram latency_;
  obs::Histogram lease_read_latency_;
  obs::Histogram ordered_read_latency_;
  obs::Histogram write_latency_;
};

}  // namespace accelring::kv
