// Per-node client frontend: routes ops to shards, serves lease reads
// locally, and resolves ordered ops at the local apply.
//
// Sessions speak the FailoverClient session protocol: every mutation is
// framed [uuid][seq][op] with a per-session sequence number, and a retry
// resubmits the identical frame — the replicated state machine's per-session
// floor turns at-least-once submission into exactly-once effect, and the
// cached result makes the retried op return its original answer. The
// frontend keeps one in-flight op per session (the session protocol's
// ordering unit) and acks it when the local replica applies it.
//
// Reads take the lease fast path when this node holds the shard's lease:
// they execute against local state immediately, no ordered round trip. A
// session's `min_version` (the shard version of its last acked write) gates
// the fast path so read-your-writes holds even around lease handovers; any
// read that cannot be served locally is submitted through the total order
// and executes at its position like everything else.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "kv/command.hpp"
#include "kv/lease.hpp"
#include "kv/state_machine.hpp"
#include "multiring/shard_map.hpp"
#include "rsm/replica.hpp"

namespace accelring::kv {

class Frontend {
 public:
  /// Submit a session-framed command to a shard's ordered stream (through
  /// the shard's replica). False = shed by backpressure (retry later).
  using SubmitFn =
      std::function<bool(int shard, std::vector<std::byte> frame)>;
  using NowFn = std::function<Nanos()>;

  struct Outcome {
    uint64_t uuid = 0;
    uint64_t seq = 0;
    OpType type = OpType::kGet;
    int shard = 0;
    std::string key;
    KvResult result;
    uint64_t version = 0;      ///< shard version the result reflects
    bool lease_served = false;
    bool duplicate = false;    ///< resolved via the session result cache
    LeaseId lease;             ///< serving lease (lease_served only)
    Nanos issued_at = 0;
    Nanos done_at = 0;
    uint32_t retries = 0;
  };
  using CompleteFn = std::function<void(const Outcome&)>;

  struct Stats {
    uint64_t issued = 0;
    uint64_t lease_reads = 0;    ///< served locally under the lease
    uint64_t ordered_reads = 0;  ///< reads pushed through the total order
    uint64_t mutations = 0;
    uint64_t resolved = 0;
    uint64_t duplicate_acks = 0; ///< resolutions via the result cache
    uint64_t orphan_applies = 0; ///< applies with no pending op (give-ups)
    uint64_t retries = 0;
    uint64_t cancelled = 0;
    uint64_t submit_shed = 0;    ///< submits rejected by backpressure
    uint64_t remapped = 0;       ///< pending ops rerouted by apply_map
  };

  Frontend(ProcessId self, int shards, LeaseConfig lease, SubmitFn submit,
           NowFn now);

  /// Wire (or re-wire after a restart) the local replica state of a shard.
  /// The replica gates the lease fast path: while it is catching up
  /// (awaiting a transfer, or deferring applies across a possible state
  /// adoption) local state may not reflect the stream, so reads fall back
  /// to the total order even if the lease clock says we hold it.
  void attach_shard(int shard, const KvStateMachine* machine,
                    const LeaseTable* lease, const rsm::Replica* replica);

  /// Shard owning a key (the hash shard map; identical at every node).
  [[nodiscard]] int shard_of(const std::string& key) const {
    return map_.ring_of(key);
  }

  /// Install a routing-map transition (a completed shard handoff, planned
  /// against this frontend's current map). Three things move with the shard:
  ///  * routing — shard_of() answers with the new owner immediately;
  ///  * in-flight ops — pending ops whose key moved are re-submitted to the
  ///    new shard's stream (the per-session dedup floor makes the extra
  ///    frame harmless) so no op strands on the old deliverer;
  ///  * leases — the fast path on every destination shard is suppressed
  ///    until its local machine applies past the handoff point, so a
  ///    leaseholder cannot serve moved keys from state that predates it.
  /// Session read floors (`min_version`) are shard-scoped, so a moved key's
  /// floor disarms with the route change and re-arms at the next write.
  /// Migrating the moved keys' *data* between shard state machines is the
  /// caller's contract (quiesced handoff, or moved ranges empty of data).
  /// Returns the number of pending ops remapped; stale or empty plans are
  /// ignored.
  size_t apply_map(const multiring::MigrationPlan& plan);
  /// Routing epoch of this frontend's map (+1 per applied plan).
  [[nodiscard]] uint64_t map_version() const { return map_.version(); }

  /// Issue one op for a session. `min_version` is the session's read floor
  /// for the key's shard (0 = none). `done` fires exactly once, possibly
  /// synchronously (lease reads). False = the session already has an op in
  /// flight.
  bool issue(uint64_t uuid, uint64_t seq, const KvOp& op,
             uint64_t min_version, CompleteFn done);

  /// Resubmit the in-flight frame (timeout or reconnect churn): the dedup
  /// floor makes the duplicate harmless. False = nothing in flight.
  bool retry(uint64_t uuid);
  /// Abandon the in-flight op without resolution (session give-up).
  bool cancel(uint64_t uuid);
  [[nodiscard]] bool in_flight(uint64_t uuid) const {
    return pending_.contains(uuid);
  }

  /// Local replica applied a command (wired by the service).
  void on_applied(int shard, const AppliedOp& applied);

  /// Observer invoked on every outcome after the per-op callback (oracle).
  void set_on_outcome(CompleteFn fn) { observer_ = std::move(fn); }

  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] size_t pending() const { return pending_.size(); }

 private:
  struct Pending {
    uint64_t seq = 0;
    int shard = 0;
    OpType type = OpType::kGet;
    std::string key;
    std::vector<std::byte> frame;
    Nanos issued_at = 0;
    uint32_t retries = 0;
    CompleteFn done;
  };

  void emit(const Outcome& outcome, const CompleteFn& done);

  ProcessId self_;
  multiring::ShardMap map_;
  LeaseConfig lease_cfg_;
  SubmitFn submit_;
  NowFn now_;
  std::vector<const KvStateMachine*> machines_;  ///< per shard
  std::vector<const LeaseTable*> leases_;        ///< per shard
  std::vector<const rsm::Replica*> replicas_;    ///< per shard
  /// Per shard: minimum machine version before the lease fast path resumes
  /// (set by apply_map on handoff destinations; 0 = no suppression).
  std::vector<uint64_t> lease_resume_;
  std::map<uint64_t, Pending> pending_;          ///< by session uuid
  CompleteFn observer_;
  Stats stats_;
};

}  // namespace accelring::kv
