// Lease-based leader-local reads.
//
// One member of each shard's view — the lowest-id member, or a rotation of
// that rule so K shards spread their leaseholders across the view — acquires
// a read lease by multicasting a grant *through the shard's ordered stream*.
// Because the grant is totally ordered, every replica observes the same
// sequence of grants; each replica stamps a grant with its own receipt time
// and derives the lease window locally:
//
//   expiry      = receipt + ttl          (renewals extend it)
//   active_from = max(receipt, previous holder's expiry + guard)
//   holder serves while  active_from <= now < expiry - guard
//
// The holder stops `guard` before its own expiry estimate and a successor
// starts `guard` after the predecessor's: receipt-time skew between any two
// replicas for the same ordered message is bounded by one delivery spread,
// so as long as that spread stays below 2*guard the serve windows of
// consecutive holders cannot overlap (docs/KV.md gives the argument; the
// KvOracle checks the global no-overlap property on every campaign run).
//
// Revocation is a view change: an EVS regular configuration change clears
// the holder at every surviving replica before any message of the new view,
// so a holder that fell out of the view can never serve past members'
// acceptance of a successor grant plus the guard.
#pragma once

#include <cstdint>

#include "protocol/types.hpp"
#include "util/time.hpp"

namespace accelring::kv {

using protocol::ProcessId;
using util::Nanos;

struct LeaseConfig {
  bool enabled = true;
  Nanos ttl = util::msec(40);
  /// Clock-skew guard: the holder under-serves its window by this much and
  /// a successor over-waits by it. Must exceed half the worst-case receipt
  /// spread of one ordered message across replicas.
  Nanos guard = util::msec(4);
  Nanos renew_every = util::msec(12);
  /// Holder = sorted view members[shard % size] instead of members[0], so K
  /// shards spread their leaseholders across the view. With one shard the
  /// rule reduces to the lowest-id member either way.
  bool rotate_holders = true;
};

/// Grant identity, unique per grant across the run: the holder plus the
/// simulated time it submitted the grant (monotonic per holder, so a holder
/// that crashes and returns never reuses an id).
struct LeaseId {
  ProcessId holder = protocol::kNoProcess;
  Nanos granted_at = 0;

  [[nodiscard]] bool operator==(const LeaseId&) const = default;
  [[nodiscard]] auto operator<=>(const LeaseId&) const = default;
};

/// One replica's local view of one shard's lease.
class LeaseTable {
 public:
  /// A totally ordered grant/renewal observed at local time `at`.
  void on_grant(const LeaseId& id, Nanos at, const LeaseConfig& cfg);

  /// An EVS regular configuration change observed at local time `at`:
  /// revoke. The expiry bound of the outgoing lease is kept so the next
  /// grant's activation still waits out a holder that missed the view
  /// change. A tainted table (see taint()) additionally bounds the lease it
  /// never saw at `at + ttl` here.
  void on_config_change(Nanos at, const LeaseConfig& cfg);

  /// Mark this table as having possibly missed an outstanding lease: a
  /// restarted or late-joining node's table is empty, but the view it is
  /// about to join may have granted a lease (to a member since expelled)
  /// that it never observed. The last ordered renewal any such holder can
  /// have received predates this node's first view install, so bounding the
  /// unknown lease at install-time + ttl is safe; grants before that bound
  /// lapse activate only after it (plus guard), like any handover.
  void taint() { tainted_ = true; }

  /// May `self` serve a linearizable local read now?
  [[nodiscard]] bool can_serve(ProcessId self, Nanos now,
                               const LeaseConfig& cfg) const {
    return id_.holder == self && now >= active_from_ && now < expiry_ - cfg.guard;
  }

  [[nodiscard]] ProcessId holder() const { return id_.holder; }
  [[nodiscard]] const LeaseId& id() const { return id_; }
  [[nodiscard]] Nanos active_from() const { return active_from_; }
  [[nodiscard]] Nanos expiry() const { return expiry_; }

 private:
  LeaseId id_;
  Nanos active_from_ = 0;
  Nanos expiry_ = 0;       ///< of the current lease (local receipt + ttl)
  Nanos prior_expiry_ = 0; ///< outgoing holder's expiry bound
  bool tainted_ = false;   ///< possible unobserved outstanding lease
};

/// The deterministic holder rule every replica evaluates on its view.
/// `members` must be the sorted members of the shard's regular view.
[[nodiscard]] ProcessId designated_holder(
    const std::vector<ProcessId>& members, int shard, const LeaseConfig& cfg);

}  // namespace accelring::kv
