#include "kv/lease.hpp"

#include <algorithm>
#include <vector>

namespace accelring::kv {

void LeaseTable::on_grant(const LeaseId& id, Nanos at,
                          const LeaseConfig& cfg) {
  if (id.holder == id_.holder && id_.holder != protocol::kNoProcess) {
    // Renewal (same holder, possibly a fresh grant after its own lapse):
    // extend; activation is already settled.
    id_ = id;
    expiry_ = std::max(expiry_, at + cfg.ttl);
    return;
  }
  // Handover: the new lease activates only after the outgoing holder's
  // window — as this replica bounds it — has lapsed, plus the skew guard.
  const Nanos prior = std::max(prior_expiry_, expiry_);
  id_ = id;
  active_from_ = std::max(at, prior + cfg.guard);
  expiry_ = at + cfg.ttl;
  prior_expiry_ = prior;
}

void LeaseTable::on_config_change(Nanos at, const LeaseConfig& cfg) {
  // Revoke: the view changed, so the holder rule may designate someone
  // else. Keep the expiry bound — a partitioned ex-holder that never saw
  // this view change still stops at its own expiry, and the next grant's
  // activation must wait that out.
  if (tainted_) {
    // First install after a restart/join: some ex-member may hold a lease
    // this table never observed. Its last ordered renewal predates this
    // install, so it lapses by at + ttl (see taint()).
    prior_expiry_ = std::max(prior_expiry_, at + cfg.ttl);
    tainted_ = false;
  }
  prior_expiry_ = std::max(prior_expiry_, expiry_);
  id_ = LeaseId{};
  active_from_ = 0;
  expiry_ = 0;
}

ProcessId designated_holder(const std::vector<ProcessId>& members, int shard,
                            const LeaseConfig& cfg) {
  if (members.empty()) return protocol::kNoProcess;
  const size_t i =
      cfg.rotate_holders ? static_cast<size_t>(shard) % members.size() : 0;
  return members[i];
}

}  // namespace accelring::kv
