#include "kv/state_machine.hpp"

#include "daemon/failover_client.hpp"
#include "util/bytes.hpp"
#include "util/crc32.hpp"

namespace accelring::kv {

namespace {

uint32_t value_crc32(const std::string& s) {
  return util::crc32(std::as_bytes(std::span{s.data(), s.size()}));
}

}  // namespace

KvResult KvStateMachine::execute_read(const KvOp& op) const {
  KvResult res;
  if (op.type == OpType::kGet) {
    const auto it = data_.find(op.key);
    if (it == data_.end()) {
      res.status = Status::kNotFound;
    } else {
      res.value = it->second;
    }
    return res;
  }
  // Range scan: up to scan_limit pairs starting at `key` (inclusive),
  // summarized as a count plus a content CRC.
  util::Writer digest;
  uint32_t seen = 0;
  for (auto it = data_.lower_bound(op.key);
       it != data_.end() && seen < op.scan_limit; ++it, ++seen) {
    digest.str(it->first);
    digest.bytes(std::as_bytes(std::span{it->second.data(),
                                         it->second.size()}));
  }
  res.scan_count = seen;
  res.scan_crc = util::crc32(digest.view());
  return res;
}

KvResult KvStateMachine::execute_mutation(const KvOp& op, bool& mutated) {
  KvResult res;
  switch (op.type) {
    case OpType::kPut:
      data_[op.key] = op.value;
      mutated = true;
      break;
    case OpType::kDel: {
      const auto it = data_.find(op.key);
      if (it == data_.end()) {
        res.status = Status::kNotFound;
      } else {
        data_.erase(it);
        mutated = true;
      }
      break;
    }
    case OpType::kCas: {
      const auto it = data_.find(op.key);
      if (it == data_.end()) {
        res.status = Status::kNotFound;
      } else if (it->second != op.expect) {
        res.status = Status::kCasMismatch;
      } else {
        it->second = op.value;
        mutated = true;
      }
      break;
    }
    default:
      break;
  }
  return res;
}

void KvStateMachine::apply(std::span<const std::byte> command) {
  const auto frame = daemon::decode_session_frame(command);
  if (!frame) {
    ++malformed_;
    return;
  }
  const auto op = decode_op(frame->payload);
  if (!op) {
    ++malformed_;
    return;
  }
  ++commands_;

  AppliedOp applied;
  applied.uuid = frame->uuid;
  applied.seq = frame->seq;
  applied.type = op->type;
  applied.key = &op->key;

  if (is_mutation(op->type) && frame->seq != 0) {
    Session& session = sessions_[frame->uuid];
    if (frame->seq <= session.floor) {
      // Retried mutation already applied: answer from the cached result
      // without touching state (exactly-once effect per session).
      ++dup_suppressed_;
      applied.duplicate = true;
      if (auto cached = decode_result(session.result)) {
        applied.result = std::move(*cached);
      }
      applied.version = version_;
      if (on_apply_) on_apply_(applied);
      return;
    }
    bool mutated = false;
    applied.result = execute_mutation(*op, mutated);
    if (mutated) {
      ++version_;
      applied.mutated = true;
      if (op->type != OpType::kDel) applied.value_crc = value_crc32(op->value);
    }
    session.floor = frame->seq;
    session.result = encode_result(applied.result);
  } else if (is_mutation(op->type)) {
    // seq 0: an unsessioned mutation (no dedup; used by internal traffic).
    bool mutated = false;
    applied.result = execute_mutation(*op, mutated);
    if (mutated) {
      ++version_;
      applied.mutated = true;
      if (op->type != OpType::kDel) applied.value_crc = value_crc32(op->value);
    }
  } else {
    // Reads are idempotent: execute against current state, no session
    // bookkeeping (a retried read simply re-reads).
    applied.result = execute_read(*op);
  }
  applied.version = version_;
  if (on_apply_) on_apply_(applied);
}

std::vector<std::byte> KvStateMachine::snapshot() const {
  size_t bytes = 32;
  for (const auto& [k, v] : data_) bytes += k.size() + v.size() + 8;
  for (const auto& [u, s] : sessions_) bytes += s.result.size() + 24;
  util::Writer w(bytes);
  w.u64(version_);
  w.u64(commands_);
  w.u64(dup_suppressed_);
  w.u32(static_cast<uint32_t>(data_.size()));
  for (const auto& [k, v] : data_) {
    w.str(k);
    w.bytes(std::as_bytes(std::span{v.data(), v.size()}));
  }
  w.u32(static_cast<uint32_t>(sessions_.size()));
  for (const auto& [uuid, s] : sessions_) {
    w.u64(uuid);
    w.u64(s.floor);
    w.bytes(s.result);
  }
  return std::move(w).take();
}

void KvStateMachine::restore(std::span<const std::byte> snapshot) {
  data_.clear();
  sessions_.clear();
  util::Reader r(snapshot);
  version_ = r.u64();
  commands_ = r.u64();
  dup_suppressed_ = r.u64();
  const uint32_t nkeys = r.u32();
  for (uint32_t i = 0; i < nkeys && r.ok(); ++i) {
    std::string key = r.str();
    const auto val = r.bytes();
    data_.emplace(std::move(key),
                  std::string(reinterpret_cast<const char*>(val.data()),
                              val.size()));
  }
  const uint32_t nsessions = r.u32();
  for (uint32_t i = 0; i < nsessions && r.ok(); ++i) {
    const uint64_t uuid = r.u64();
    Session s;
    s.floor = r.u64();
    s.result = util::to_vector(r.bytes());
    sessions_.emplace(uuid, std::move(s));
  }
}

const std::string* KvStateMachine::get(const std::string& key) const {
  const auto it = data_.find(key);
  return it == data_.end() ? nullptr : &it->second;
}

void KvStateMachine::preload(const std::string& key,
                             const std::string& value) {
  data_[key] = value;
  ++version_;
}

}  // namespace accelring::kv
