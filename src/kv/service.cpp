#include "kv/service.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>

#include "util/bytes.hpp"

namespace accelring::kv {

namespace {

/// Ordered-stream frame type for lease grants. rsm::Replica frames use
/// 1..4; replicas ignore this type and the service ignores theirs.
constexpr uint8_t kLeaseFrame = 16;

}  // namespace

std::string make_key(uint64_t id) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "k%08llu",
                static_cast<unsigned long long>(id));
  return buf;
}

std::string make_value(uint64_t id, size_t size) {
  std::string v(size, '\0');
  uint64_t x = id * 0x9e3779b97f4a7c15ULL + 1;
  for (size_t i = 0; i < size; ++i) {
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    v[i] = static_cast<char>('a' + (x % 26));
  }
  return v;
}

KvService::KvService(harness::SimCluster& cluster, const ServiceConfig& cfg)
    : cfg_(cfg), cluster_(&cluster), eq_(&cluster.eq()),
      nodes_(cluster.size()) {
  assert(cfg_.shards == 1);
  init();
  cluster_->add_on_deliver([this](int node, const protocol::Delivery& d,
                                  Nanos at) { on_ring_delivery(node, 0, d, at); });
  cluster_->add_on_config(
      [this](int node, const protocol::ConfigurationChange& change) {
        on_ring_config(node, 0, change);
      });
}

KvService::KvService(multiring::RingSet& rings, const ServiceConfig& cfg)
    : cfg_(cfg), rings_(&rings), eq_(&rings.eq()),
      nodes_(rings.nodes_per_ring()) {
  assert(cfg_.shards == rings.num_rings());
  init();
  rings_->add_on_merged([this](int node, int ring, const protocol::Delivery& d,
                               Nanos at) { on_ring_delivery(node, ring, d, at); });
  rings_->set_on_config(
      [this](int node, int ring, const protocol::ConfigurationChange& change) {
        on_ring_config(node, ring, change);
      });
}

void KvService::init() {
  const auto n = static_cast<size_t>(nodes_);
  const auto k = static_cast<size_t>(cfg_.shards);
  machines_.resize(n);
  replicas_.resize(n);
  stores_.resize(n);
  leases_.resize(n);
  views_.assign(n, std::vector<std::vector<ProcessId>>(k));
  lease_gen_.assign(n, std::vector<uint64_t>(k, 0));
  in_transitional_.assign(n, std::vector<bool>(k, false));
  exposed_version_.assign(n, std::vector<uint64_t>(k, 0));
  down_.assign(n, false);
  frontends_.resize(n);
  for (int node = 0; node < nodes_; ++node) {
    const auto pid = static_cast<ProcessId>(node);
    frontends_[node] = std::make_unique<Frontend>(
        pid, cfg_.shards, cfg_.lease,
        [this, node](int shard, std::vector<std::byte> frame) {
          return submit_frame(node, shard, std::move(frame));
        },
        [this] { return eq_->now(); });
    setup_node(node, /*founder=*/true);
  }
}

void KvService::setup_node(int node, bool founder) {
  auto& machines = machines_[static_cast<size_t>(node)];
  auto& replicas = replicas_[static_cast<size_t>(node)];
  auto& stores = stores_[static_cast<size_t>(node)];
  auto& leases = leases_[static_cast<size_t>(node)];
  // A retiring incarnation's divergence audits must stay visible: they are
  // the proof obligation that disk recovery never resurrects a forked
  // lineage (see total_divergence()).
  for (const auto& replica : replicas) {
    stats_.divergence_carried += replica->stats().divergence_detected;
  }
  machines.clear();
  replicas.clear();
  stores.clear();  // after the replicas that point into them
  leases.clear();
  if (cfg_.store_factory) {
    for (int shard = 0; shard < cfg_.shards; ++shard) {
      stores.push_back(cfg_.store_factory(node, shard));
    }
  }
  exposed_version_[static_cast<size_t>(node)].assign(
      static_cast<size_t>(cfg_.shards), 0);
  for (int shard = 0; shard < cfg_.shards; ++shard) {
    machines.push_back(std::make_unique<KvStateMachine>());
    leases.push_back(std::make_unique<LeaseTable>());
    // A restarted node's empty table may have missed an outstanding lease;
    // its first view install bounds it conservatively (see taint()).
    if (!founder) leases.back()->taint();
  }
  if (founder && cfg_.preload_keys > 0) {
    // Warm dataset, identical at every founder: loaded before the replicas
    // exist so the founding checkpoint (and therefore any state transfer)
    // carries it.
    for (uint64_t i = 0; i < cfg_.preload_keys; ++i) {
      const std::string key = make_key(i);
      const int shard = frontends_[node]->shard_of(key);
      machines[static_cast<size_t>(shard)]->preload(
          key, make_value(i, cfg_.preload_value_size));
    }
  }
  for (int shard = 0; shard < cfg_.shards; ++shard) {
    replicas.push_back(std::make_unique<rsm::Replica>(
        static_cast<ProcessId>(node), *machines[static_cast<size_t>(shard)],
        [this, node, shard](std::vector<std::byte> payload) {
          if (down_[static_cast<size_t>(node)]) return false;
          if (cluster_ != nullptr) {
            cluster_->submit(node, protocol::Service::kAgreed,
                             std::move(payload));
          } else {
            rings_->submit(node, shard, protocol::Service::kAgreed,
                           std::move(payload));
          }
          return true;
        },
        founder, cfg_.replica,
        stores.empty() ? nullptr : stores[static_cast<size_t>(shard)].get()));
    wire_shard(node, shard);
    if (replicas.back()->stats().recovered_from_disk != 0) {
      // Disk recovery re-applied history before the observer was installed;
      // catch-up replay at or below it must not re-surface those versions.
      exposed_version_[static_cast<size_t>(node)][static_cast<size_t>(shard)] =
          machines[static_cast<size_t>(shard)]->version();
    }
  }
  if (metrics_bound_) bind_node_metrics(node);
}

uint64_t KvService::total_divergence() const {
  uint64_t total = stats_.divergence_carried;
  for (const auto& per_node : replicas_) {
    for (const auto& replica : per_node) {
      if (replica != nullptr) total += replica->stats().divergence_detected;
    }
  }
  return total;
}

void KvService::wire_shard(int node, int shard) {
  auto& machine = *machines_[static_cast<size_t>(node)][static_cast<size_t>(shard)];
  machine.set_on_apply([this, node, shard](const AppliedOp& applied) {
    const auto n = static_cast<size_t>(node);
    const auto s = static_cast<size_t>(shard);
    uint64_t& exposed = exposed_version_[n][s];
    if (replicas_[n][s]->in_catchup_replay() && applied.version <= exposed) {
      // State-transfer catch-up re-executing history this node already
      // surfaced (e.g. a transiently expelled member rolled forward onto
      // the majority lineage it shares a prefix with): reconstruction, not
      // a fresh apply.
      return;
    }
    exposed = std::max(exposed, applied.version);
    // Oracle first (record mutation history), then resolve the local op.
    if (applied_obs_) applied_obs_(node, shard, applied, eq_->now());
    frontends_[static_cast<size_t>(node)]->on_applied(shard, applied);
  });
  frontends_[static_cast<size_t>(node)]->attach_shard(
      shard, machines_[static_cast<size_t>(node)][static_cast<size_t>(shard)].get(),
      leases_[static_cast<size_t>(node)][static_cast<size_t>(shard)].get(),
      replicas_[static_cast<size_t>(node)][static_cast<size_t>(shard)].get());
}

bool KvService::submit_frame(int node, int shard,
                             std::vector<std::byte> payload) {
  if (down_[static_cast<size_t>(node)]) return false;
  return replicas_[static_cast<size_t>(node)][static_cast<size_t>(shard)]
      ->submit(payload);
}

void KvService::on_ring_delivery(int node, int shard,
                                 const protocol::Delivery& d, Nanos at) {
  if (down_[static_cast<size_t>(node)] || d.payload.empty()) return;
  if (static_cast<uint8_t>(d.payload[0]) == kLeaseFrame) {
    util::Reader r(d.payload);
    r.u8();
    LeaseId id;
    id.holder = r.u16();
    id.granted_at = r.i64();
    if (!r.ok()) return;
    // Accept only grants from the designated holder of *our current view*
    // of this shard: a deposed holder's in-flight grant (racing the view
    // change that deposed it) is rejected identically everywhere, because
    // the grant is ordered against the configuration change. Grants in a
    // transitional window are rejected too — they were not provably
    // received by every member of the old view, so a minority side (e.g. a
    // transiently expelled ex-holder) could extend a lease the survivors
    // never saw extended, past the bound their successor waits out.
    const auto& view =
        views_[static_cast<size_t>(node)][static_cast<size_t>(shard)];
    if (view.empty() ||
        in_transitional_[static_cast<size_t>(node)][static_cast<size_t>(shard)] ||
        designated_holder(view, shard, cfg_.lease) != id.holder) {
      ++stats_.grants_rejected;
      return;
    }
    leases_[static_cast<size_t>(node)][static_cast<size_t>(shard)]->on_grant(
        id, at, cfg_.lease);
    ++stats_.grants_applied;
    if (lease_obs_) lease_obs_(node, shard, id, at);
    return;
  }
  replicas_[static_cast<size_t>(node)][static_cast<size_t>(shard)]
      ->on_delivery(d);
}

void KvService::on_ring_config(int node, int shard,
                               const protocol::ConfigurationChange& change) {
  if (down_[static_cast<size_t>(node)]) return;
  auto& replica =
      *replicas_[static_cast<size_t>(node)][static_cast<size_t>(shard)];
  replica.on_configuration(change);
  in_transitional_[static_cast<size_t>(node)][static_cast<size_t>(shard)] =
      change.transitional;
  if (change.transitional) return;
  auto members = change.config.members;
  std::sort(members.begin(), members.end());
  views_[static_cast<size_t>(node)][static_cast<size_t>(shard)] = members;
  leases_[static_cast<size_t>(node)][static_cast<size_t>(shard)]
      ->on_config_change(eq_->now(), cfg_.lease);
  const uint64_t gen =
      ++lease_gen_[static_cast<size_t>(node)][static_cast<size_t>(shard)];
  if (!cfg_.lease.enabled) return;
  if (designated_holder(members, shard, cfg_.lease) ==
      static_cast<ProcessId>(node)) {
    submit_grant(node, shard);
    arm_renewal(node, shard, gen);
  }
}

void KvService::submit_grant(int node, int shard) {
  util::Writer w(16);
  w.u8(kLeaseFrame);
  w.u16(static_cast<ProcessId>(node));
  w.i64(eq_->now());
  if (cluster_ != nullptr) {
    cluster_->submit(node, protocol::Service::kAgreed, std::move(w).take());
  } else {
    rings_->submit(node, shard, protocol::Service::kAgreed,
                   std::move(w).take());
  }
  ++stats_.grants_submitted;
}

void KvService::arm_renewal(int node, int shard, uint64_t gen) {
  eq_->schedule_after(cfg_.lease.renew_every, [this, node, shard, gen] {
    const auto n = static_cast<size_t>(node);
    const auto s = static_cast<size_t>(shard);
    if (down_[n] || lease_gen_[n][s] != gen) return;
    if (designated_holder(views_[n][s], shard, cfg_.lease) !=
        static_cast<ProcessId>(node)) {
      return;
    }
    submit_grant(node, shard);
    arm_renewal(node, shard, gen);
  });
}

size_t KvService::apply_map(const multiring::MigrationPlan& plan) {
  size_t remapped = 0;
  for (int n = 0; n < nodes_; ++n) {
    if (down_[static_cast<size_t>(n)]) continue;
    remapped += frontends_[static_cast<size_t>(n)]->apply_map(plan);
  }
  return remapped;
}

void KvService::on_crash(int node) {
  down_[static_cast<size_t>(node)] = true;
  for (int shard = 0; shard < cfg_.shards; ++shard) {
    ++lease_gen_[static_cast<size_t>(node)][static_cast<size_t>(shard)];
  }
}

void KvService::on_restart(int node) {
  down_[static_cast<size_t>(node)] = false;
  for (int shard = 0; shard < cfg_.shards; ++shard) {
    views_[static_cast<size_t>(node)][static_cast<size_t>(shard)].clear();
    ++lease_gen_[static_cast<size_t>(node)][static_cast<size_t>(shard)];
  }
  // Fresh machines and replicas (founder=false): all KV state is gone and
  // comes back through the chunked state transfer, like a rebooted daemon.
  // The frontend survives — it is the node's client library, and its
  // pending ops resolve when their commands (re)apply locally.
  setup_node(node, /*founder=*/false);
}

void KvService::set_on_outcome(OutcomeFn fn) {
  outcome_obs_ = std::move(fn);
  for (int node = 0; node < nodes_; ++node) {
    frontends_[static_cast<size_t>(node)]->set_on_outcome(
        [this, node](const Frontend::Outcome& outcome) {
          if (outcome_obs_) outcome_obs_(node, outcome);
        });
  }
}

void KvService::bind_node_metrics(int node) {
  for (int shard = 0; shard < cfg_.shards; ++shard) {
    obs::MetricsRegistry* registry =
        cluster_ != nullptr ? cluster_->metrics(node)
                            : rings_->ring(shard).metrics(node);
    if (registry == nullptr) continue;
    replicas_[static_cast<size_t>(node)][static_cast<size_t>(shard)]
        ->set_metrics(rsm::RsmMetrics::bind(*registry));
  }
}

void KvService::bind_metrics() {
  metrics_bound_ = true;
  for (int node = 0; node < nodes_; ++node) bind_node_metrics(node);
}

}  // namespace accelring::kv
