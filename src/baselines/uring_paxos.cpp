#include "baselines/uring_paxos.hpp"

#include <algorithm>

#include "util/bytes.hpp"
#include "util/crc32.hpp"

namespace accelring::baselines {

namespace {

constexpr uint8_t kValue = 20;  // client -> coordinator
constexpr uint8_t kBatch = 21;  // ring hop (id 0 = watermark-only message)
constexpr uint8_t kAckB = 22;   // majority position -> coordinator
constexpr uint8_t kNakB = 23;   // anyone -> coordinator

// How many delivered batches the coordinator keeps for NAK service.
constexpr uint64_t kCoordinatorHistory = 512;

void seal(util::Writer& w) { w.u32(util::crc32(w.view())); }

std::optional<util::Reader> unseal(std::span<const std::byte> packet,
                                   uint8_t expected_type) {
  if (packet.size() < 5) return std::nullopt;
  const auto body = packet.first(packet.size() - 4);
  util::Reader tail(packet.subspan(packet.size() - 4));
  if (tail.u32() != util::crc32(body)) return std::nullopt;
  util::Reader r(body);
  if (r.u8() != expected_type) return std::nullopt;
  return r;
}

}  // namespace

URingProtocol::URingProtocol(ProcessId self, RingConfig members,
                             URingConfig cfg, Host& host)
    : self_(self), members_(std::move(members)), cfg_(cfg), host_(host) {
  if (is_coordinator()) {
    host_.set_timer(protocol::kTimerBaselineFlush, cfg_.flush_interval);
  }
}

size_t URingProtocol::my_ring_position() const {
  return static_cast<size_t>(members_.index_of(self_));
}

bool URingProtocol::submit(std::vector<std::byte> payload) {
  if (pending_.size() >= cfg_.max_pending ||
      unacked_values_.size() >= cfg_.max_pending) {
    ++stats_.submit_rejected;
    return false;
  }
  ++stats_.submitted;
  if (is_coordinator()) {
    pending_.push_back(Entry{self_, std::move(payload)});
    flush_pending(/*force=*/false);
    return true;
  }
  const uint64_t seq = ++client_seq_;
  send_value(seq, payload);
  unacked_values_.emplace(seq, std::move(payload));
  if (!value_timer_armed_) {
    value_timer_armed_ = true;
    host_.set_timer(protocol::kTimerBaselineFlush, cfg_.value_retransmit);
  }
  return true;
}

void URingProtocol::send_value(uint64_t client_seq,
                               const std::vector<std::byte>& body) {
  util::Writer w(32 + body.size());
  w.u8(kValue);
  w.u16(self_);
  w.u64(client_seq);
  w.bytes(body);
  seal(w);
  ++stats_.forwarded;
  host_.unicast(members_.members.front(), protocol::kSockData,
                std::move(w).take());
}

void URingProtocol::flush_pending(bool force) {
  // Batch formation: wait for a full batch unless forced by the flush timer
  // — this is what amortizes per-instance cost ("with batching", §V).
  if (!force && pending_.size() < cfg_.batch_max_msgs) return;
  while (!pending_.empty() && next_batch_ - decided_ < cfg_.window) {
    Batch batch;
    batch.id = ++next_batch_;
    size_t bytes = 0;
    while (!pending_.empty() && batch.entries.size() < cfg_.batch_max_msgs &&
           bytes < cfg_.batch_max_bytes) {
      bytes += pending_.front().payload.size();
      batch.entries.push_back(std::move(pending_.front()));
      pending_.pop_front();
    }
    ++stats_.batches;
    send_batch_to_successor(batch, decided_);
    published_ = decided_;
    high_batch_ = batch.id;
    store_.emplace(batch.id, std::move(batch));
  }
}

std::vector<std::byte> URingProtocol::encode_batch(
    const Batch& batch, uint64_t decided_upto) const {
  size_t payload_bytes = 0;
  for (const Entry& e : batch.entries) payload_bytes += e.payload.size();
  util::Writer w(48 + payload_bytes + 8 * batch.entries.size());
  w.u8(kBatch);
  w.u64(batch.id);
  w.u64(decided_upto);
  w.u16(static_cast<uint16_t>(batch.entries.size()));
  for (const Entry& e : batch.entries) {
    w.u16(e.origin);
    w.bytes(e.payload);
  }
  seal(w);
  return std::move(w).take();
}

void URingProtocol::send_batch_to_successor(const Batch& batch,
                                            uint64_t decided_upto) {
  const ProcessId next = members_.successor_of(self_);
  if (next == members_.members.front()) return;  // full circle: stop
  host_.unicast(next, protocol::kSockData, encode_batch(batch, decided_upto));
}

void URingProtocol::on_packet(SocketId, std::span<const std::byte> packet) {
  if (packet.empty()) return;
  switch (static_cast<uint8_t>(packet[0])) {
    case kValue: {
      if (!is_coordinator()) return;
      auto r = unseal(packet, kValue);
      if (!r) return;
      const ProcessId origin = r->u16();
      const uint64_t client_seq = r->u64();
      auto payload = util::to_vector(r->bytes());
      if (!r->done()) return;
      // Per-client FIFO ingestion dedupes retransmitted values and keeps
      // client submission order.
      ClientIngest& ingest = ingest_[origin];
      if (client_seq < ingest.expected ||
          ingest.reorder.contains(client_seq)) {
        ++stats_.duplicates;
        return;
      }
      ingest.reorder.emplace(client_seq, std::move(payload));
      while (true) {
        const auto it = ingest.reorder.find(ingest.expected);
        if (it == ingest.reorder.end()) break;
        if (pending_.size() >= cfg_.max_pending) {
          ++stats_.submit_rejected;
          break;
        }
        pending_.push_back(Entry{origin, std::move(it->second)});
        ingest.reorder.erase(it);
        ++ingest.expected;
      }
      flush_pending(/*force=*/false);
      break;
    }
    case kBatch: {
      auto r = unseal(packet, kBatch);
      if (!r) return;
      Batch batch;
      batch.id = r->u64();
      const uint64_t decided_upto = r->u64();
      const uint16_t n = r->u16();
      for (uint16_t i = 0; i < n && r->ok(); ++i) {
        Entry e;
        e.origin = r->u16();
        e.payload = util::to_vector(r->bytes());
        batch.entries.push_back(std::move(e));
      }
      if (!r->done()) return;
      handle_batch(std::move(batch), decided_upto);
      break;
    }
    case kAckB: {
      if (!is_coordinator()) return;
      auto r = unseal(packet, kAckB);
      if (!r) return;
      acks_[r->u64()] = true;
      while (acks_.contains(decided_ + 1)) {
        acks_.erase(decided_ + 1);
        ++decided_;
        ++stats_.decided;
      }
      advance_decided(decided_);
      flush_pending(/*force=*/false);  // window may have opened
      break;
    }
    case kNakB: {
      if (!is_coordinator()) return;
      auto r = unseal(packet, kNakB);
      if (!r) return;
      const ProcessId requester = r->u16();
      const uint32_t n = r->u32();
      for (uint32_t i = 0; i < n && r->ok(); ++i) {
        const uint64_t id = r->u64();
        const auto it = store_.find(id);
        if (it == store_.end()) continue;
        ++stats_.retransmitted;
        host_.unicast(requester, protocol::kSockData,
                      encode_batch(it->second, decided_));
      }
      break;
    }
    default:
      break;
  }
}

void URingProtocol::handle_batch(Batch batch, uint64_t decided_upto) {
  const uint64_t id = batch.id;
  if (id == 0) {
    // Watermark-only circulation: learn the decision and pass it on.
    advance_decided(decided_upto);
    Batch watermark;  // empty, id 0
    send_batch_to_successor(watermark, decided_upto);
    return;
  }
  if (id < delivered_next_) {
    ++stats_.duplicates;  // already delivered: nothing downstream needs it
    advance_decided(decided_upto);
    return;
  }
  const bool fresh = !store_.contains(id);
  if (fresh) {
    high_batch_ = std::max(high_batch_, id);
  } else {
    // A retransmission of a batch we hold but have not delivered: the
    // coordinator is healing a lost hop somewhere downstream — keep
    // forwarding (and re-ack below, in case our ack was the loss).
    ++stats_.duplicates;
  }
  // Vote collection: the process at the majority position reports back.
  const size_t majority = members_.size() / 2 + 1;
  if (my_ring_position() + 1 == majority) {
    util::Writer w(16);
    w.u8(kAckB);
    w.u64(id);
    seal(w);
    host_.unicast(members_.members.front(), protocol::kSockData,
                  std::move(w).take());
  }
  // Keep propagating around the ring (dissemination to all learners).
  send_batch_to_successor(batch, decided_upto);
  if (fresh) store_.emplace(id, std::move(batch));
  advance_decided(decided_upto);

  // Gap detection: a missing id below the high watermark means a lost hop.
  bool gap = false;
  for (uint64_t b = delivered_next_; b < high_batch_; ++b) {
    if (!store_.contains(b) && b >= delivered_next_) {
      gap = true;
      break;
    }
  }
  if (gap && !nak_armed_ && !is_coordinator()) {
    nak_armed_ = true;
    host_.set_timer(protocol::kTimerBaselineNak, cfg_.nak_delay);
  }
}

void URingProtocol::advance_decided(uint64_t decided_upto) {
  decided_upto_ = std::max(decided_upto_, decided_upto);
  deliver_decided();
}

void URingProtocol::deliver_decided() {
  while (delivered_next_ <= decided_upto_) {
    const auto it = store_.find(delivered_next_);
    if (it == store_.end()) {
      // A decided batch we never received (lost after the majority voter):
      // it will not be re-sent on its own, so request it.
      if (!nak_armed_ && !is_coordinator()) {
        nak_armed_ = true;
        host_.set_timer(protocol::kTimerBaselineNak, cfg_.nak_delay);
      }
      return;
    }
    for (Entry& e : it->second.entries) {
      if (e.origin == self_ && !is_coordinator()) {
        // Our value came back decided: cumulative ack (the coordinator
        // ingests per-client in FIFO order).
        ++own_delivered_;
        unacked_values_.erase(unacked_values_.begin(),
                              unacked_values_.upper_bound(own_delivered_));
      }
      protocol::Delivery delivery;
      delivery.sender = e.origin;
      delivery.seq = static_cast<protocol::SeqNum>(it->first);
      delivery.service = protocol::Service::kAgreed;
      // The coordinator keeps its copy intact: it is the NAK retransmission
      // source for the whole ring.
      delivery.payload = is_coordinator() ? e.payload : std::move(e.payload);
      ++stats_.delivered;
      host_.deliver(delivery);
    }
    if (!is_coordinator()) {
      store_.erase(it);
    }
    ++delivered_next_;
  }
  if (is_coordinator()) {
    // Bounded NAK history (real Paxos acceptors persist their log; a
    // straggler further behind than this window would need state transfer).
    while (!store_.empty() &&
           store_.begin()->first + kCoordinatorHistory < delivered_next_) {
      store_.erase(store_.begin());
    }
  }
}

void URingProtocol::on_timer(protocol::TimerKind kind) {
  switch (kind) {
    case protocol::kTimerBaselineFlush: {
      if (!is_coordinator()) {
        // Client side: re-send values the coordinator has not sequenced.
        value_timer_armed_ = false;
        if (!unacked_values_.empty()) {
          int sent = 0;
          for (const auto& [seq, body] : unacked_values_) {
            if (++sent > 8) break;
            send_value(seq, body);
          }
          value_timer_armed_ = true;
          host_.set_timer(protocol::kTimerBaselineFlush,
                          cfg_.value_retransmit);
        }
        break;
      }
      flush_pending(/*force=*/true);
      // Circulate the decision watermark when receivers lack it, and
      // periodically re-circulate while idle in case a watermark hop was
      // lost (it is not NAKable: receivers cannot miss what they never
      // learn exists).
      ++flush_ticks_;
      if (decided_ > published_ ||
          (decided_ > 0 && next_batch_ == decided_ &&
           flush_ticks_ % 20 == 0)) {
        Batch watermark;  // id 0
        send_batch_to_successor(watermark, decided_);
        published_ = decided_;
      }
      // Undecided batch retransmission: only when the oldest outstanding
      // instance has made no progress for several ticks (a hop was lost
      // before the majority voter). A normal decision takes a ring
      // traversal, so retransmitting eagerly would congest the ring with
      // duplicate full batches.
      if (decided_ < next_batch_) {
        if (decided_ == last_seen_decided_) {
          ++stall_ticks_;
        } else {
          stall_ticks_ = 0;
          last_seen_decided_ = decided_;
        }
        if (stall_ticks_ >= 20) {  // ~3 ms at the default flush interval
          stall_ticks_ = 0;
          const auto it = store_.find(decided_ + 1);
          if (it != store_.end()) {
            ++stats_.retransmitted;
            send_batch_to_successor(it->second, decided_);
          }
        }
      }
      advance_decided(decided_);
      host_.set_timer(protocol::kTimerBaselineFlush, cfg_.flush_interval);
      break;
    }
    case protocol::kTimerBaselineNak: {
      nak_armed_ = false;
      std::vector<uint64_t> missing;
      for (uint64_t b = delivered_next_;
           b <= high_batch_ && missing.size() < 64; ++b) {
        if (!store_.contains(b)) missing.push_back(b);
      }
      if (!missing.empty()) {
        util::Writer w(16 + 8 * missing.size());
        w.u8(kNakB);
        w.u16(self_);
        w.u32(static_cast<uint32_t>(missing.size()));
        for (uint64_t b : missing) w.u64(b);
        seal(w);
        ++stats_.naks_sent;
        host_.unicast(members_.members.front(), protocol::kSockData,
                      std::move(w).take());
        nak_armed_ = true;
        host_.set_timer(protocol::kTimerBaselineNak, cfg_.nak_delay);
      }
      break;
    }
    default:
      break;
  }
}

}  // namespace accelring::baselines
