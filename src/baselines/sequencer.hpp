// Fixed-sequencer total ordering (the JGroups SEQUENCER design, paper §V).
//
// The paper benchmarks JGroups' sequencer-based total ordering on the same
// 8-node setup (≈650 Mbps at 1GbE with 1350-byte messages, ≈3 Gbps at
// 10GbE); this module reproduces that baseline on the same simulated
// substrate so bench/related_protocols can regenerate the comparison.
//
// Design (classic coordinator forwarding):
//  * a sender UNICASTS each message to the sequencer (the first member),
//  * the sequencer assigns the global sequence number and MULTICASTS the
//    message to everyone,
//  * receivers deliver in sequence order, detect gaps, and NAK the
//    sequencer, which retransmits from its history,
//  * receivers periodically ACK their aru so the sequencer can garbage-
//    collect history; senders are flow-controlled by a window of
//    unordered own messages.
//
// Total order holds trivially (one process assigns all sequence numbers).
// The costs relative to the ring are also visible: every message crosses
// the sender's link twice (forward + multicast) unless the sender *is* the
// sequencer, and the sequencer's CPU handles every message in the system.
// Membership/fault-tolerance is out of scope for this baseline (JGroups
// handles it with view changes); it exists for performance comparison.
#pragma once

#include <deque>
#include <map>

#include "protocol/engine.hpp"

namespace accelring::baselines {

using protocol::Host;
using protocol::Nanos;
using protocol::ProcessId;
using protocol::RingConfig;
using protocol::SeqNum;
using protocol::SocketId;

struct SequencerConfig {
  uint32_t sender_window = 400;  ///< max own messages awaiting ordering
  size_t max_pending = 10'000;   ///< submit() backpressure bound
  Nanos nak_delay = util::usec(500);
  Nanos ack_interval = util::msec(1);
  /// Re-send forwards the sequencer has not ordered yet (lost forwards).
  Nanos forward_retransmit = util::msec(5);
};

struct SequencerStats {
  uint64_t submitted = 0;
  uint64_t forwarded = 0;    ///< messages unicast to the sequencer
  uint64_t ordered = 0;      ///< sequence numbers assigned (sequencer only)
  uint64_t delivered = 0;
  uint64_t naks_sent = 0;
  uint64_t retransmitted = 0;
  uint64_t duplicates = 0;
  uint64_t submit_rejected = 0;
};

class SequencerProtocol final : public protocol::PacketHandler {
 public:
  /// `members.front()` is the sequencer.
  SequencerProtocol(ProcessId self, RingConfig members, SequencerConfig cfg,
                    Host& host);

  /// Queue an application message for total-order multicast.
  bool submit(std::vector<std::byte> payload);

  // --- protocol::PacketHandler ----------------------------------------------
  void on_packet(SocketId sock, std::span<const std::byte> packet) override;
  void on_timer(protocol::TimerKind kind) override;
  /// The sequencer design has no token; always drain data first.
  [[nodiscard]] SocketId preferred_socket() const override {
    return protocol::kSockData;
  }

  [[nodiscard]] const SequencerStats& stats() const { return stats_; }
  [[nodiscard]] SeqNum delivered_up_to() const { return delivered_; }
  [[nodiscard]] bool is_sequencer() const {
    return self_ == members_.members.front();
  }

 private:
  struct Stored {
    ProcessId sender = 0;
    uint64_t sender_seq = 0;
    std::vector<std::byte> payload;
  };

  void try_send_pending();
  void send_forward(uint64_t sender_seq, const std::vector<std::byte>& body);
  /// Sequencer path: ingest a forward in per-sender FIFO order, then assign
  /// global sequence numbers to everything newly in order.
  void ingest_forward(ProcessId sender, uint64_t sender_seq,
                      std::vector<std::byte> payload);
  void order_message(ProcessId sender, uint64_t sender_seq,
                     std::vector<std::byte> payload);
  void handle_ordered(SeqNum seq, ProcessId sender, uint64_t sender_seq,
                      std::vector<std::byte> payload);
  void deliver_ready();
  void send_naks();

  ProcessId self_;
  RingConfig members_;
  SequencerConfig cfg_;
  Host& host_;
  SequencerStats stats_;

  // Sender side.
  std::deque<std::vector<std::byte>> pending_;
  uint64_t sender_seq_ = 0;
  uint32_t outstanding_ = 0;
  /// Forwards not yet seen ordered; retransmitted until acknowledged by
  /// observing our own ordered messages.
  std::map<uint64_t, std::vector<std::byte>> unacked_;
  bool forward_timer_armed_ = false;

  // Sequencer side: per-sender FIFO ingestion.
  struct SenderIngest {
    uint64_t expected = 1;  ///< next sender_seq to order
    std::map<uint64_t, std::vector<std::byte>> reorder;
  };
  SeqNum next_seq_ = 0;
  std::map<SeqNum, Stored> history_;
  std::map<ProcessId, SenderIngest> ingest_;
  struct MemberAck {
    SeqNum aru = 0;
    SeqNum previous = -1;  ///< aru at the preceding ack (stall detection)
  };
  std::map<ProcessId, MemberAck> member_aru_;

  // Receiver side.
  std::map<SeqNum, Stored> reorder_;
  SeqNum aru_ = 0;        ///< highest contiguous sequence received
  SeqNum high_seq_ = 0;
  SeqNum delivered_ = 0;
  bool nak_timer_armed_ = false;
};

}  // namespace accelring::baselines
