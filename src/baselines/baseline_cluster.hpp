// Simulated cluster assembly for the related-work baseline protocols
// (sequencer, U-Ring Paxos). Mirrors harness::SimCluster but is generic over
// the protocol type: same fabric, same process CPU model, same SimHost cost
// model, so cross-protocol comparisons (bench/related_protocols) are
// apples-to-apples with the ring protocols — only the protocol differs.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "membership/membership.hpp"
#include "simnet/event_queue.hpp"
#include "simnet/network.hpp"
#include "simnet/process.hpp"
#include "transport/sim_host.hpp"

namespace accelring::baselines {

/// Protocol must provide: Protocol(pid, RingConfig, Config, Host&),
/// submit(payload), and implement protocol::PacketHandler.
template <typename Protocol, typename Config>
class BaselineCluster {
 public:
  using DeliverFn = std::function<void(int node, const protocol::Delivery&,
                                       protocol::Nanos at)>;

  BaselineCluster(int num_nodes, simnet::FabricParams fabric, Config cfg,
                  uint64_t seed = 1, transport::HostCosts host_costs = {})
      : net_(eq_, fabric, num_nodes, seed) {
    protocol::RingConfig members;
    members.ring_id = membership::make_ring_id(1, 0);
    for (int i = 0; i < num_nodes; ++i) {
      members.members.push_back(static_cast<protocol::ProcessId>(i));
    }
    simnet::ProcessCosts proc_costs;
    proc_costs.mtu = fabric.mtu;
    nodes_.resize(num_nodes);
    for (int i = 0; i < num_nodes; ++i) {
      Node& node = nodes_[i];
      node.process =
          std::make_unique<simnet::Process>(eq_, proc_costs, 4 * 1024 * 1024);
      node.host = std::make_unique<transport::SimHost>(net_, *node.process, i,
                                                       host_costs);
      node.protocol = std::make_unique<Protocol>(
          static_cast<protocol::ProcessId>(i), members, cfg, *node.host);
      node.host->bind(*node.protocol);
      node.process->set_sink(node.host.get());
      net_.attach(i, [proc = node.process.get()](
                         simnet::SocketId sock,
                         const simnet::Network::Payload& p) {
        proc->enqueue(sock, p);
      });
      node.host->set_deliver(
          [this, i](const protocol::Delivery& delivery) {
            if (on_deliver_) {
              on_deliver_(i, delivery, nodes_[i].process->now());
            }
          });
    }
  }

  void submit(int node, std::vector<std::byte> payload) {
    nodes_[node].process->run_soon(
        [protocol = nodes_[node].protocol.get(),
         p = std::move(payload)]() mutable { protocol->submit(std::move(p)); });
  }

  void set_on_deliver(DeliverFn fn) { on_deliver_ = std::move(fn); }

  [[nodiscard]] simnet::EventQueue& eq() { return eq_; }
  [[nodiscard]] simnet::Network& net() { return net_; }
  [[nodiscard]] Protocol& protocol_at(int node) {
    return *nodes_[node].protocol;
  }
  [[nodiscard]] int size() const { return static_cast<int>(nodes_.size()); }
  void run_until(protocol::Nanos deadline) { eq_.run_until(deadline); }

 private:
  struct Node {
    std::unique_ptr<simnet::Process> process;
    std::unique_ptr<transport::SimHost> host;
    std::unique_ptr<Protocol> protocol;
  };

  simnet::EventQueue eq_;
  simnet::Network net_;
  std::vector<Node> nodes_;
  DeliverFn on_deliver_;
};

}  // namespace accelring::baselines
