// U-Ring-Paxos-style ordering (paper §V, [25]).
//
// The paper measures U-Ring Paxos on the same 8-node setup: >750 Mbps at
// 1GbE with 1350-byte messages (with batching) and a latency profile similar
// to the original Ring protocol's Safe delivery; close to 1.5 Gbps at 10GbE.
// This module reproduces that baseline on the simulated substrate.
//
// Design (simplified from Unicast Multi-Ring Paxos, single ring):
//  * processes form a fixed unicast ring; the first member is the
//    coordinator (Paxos leader),
//  * clients forward values to the coordinator, which batches them,
//    assigns consecutive batch ids (consensus instances), and sends each
//    batch to its ring successor,
//  * the batch propagates hop by hop around the ring — this is both the
//    dissemination (no IP-multicast, values travel in the ring itself) and
//    the vote collection: when the batch has traversed a majority of
//    processes, the majority-position process unicasts an ACK back to the
//    coordinator, which decides the instance,
//  * the decision (decided-up-to watermark) piggybacks on subsequent
//    batches (plus a periodic flush when idle); processes deliver batch
//    contents in batch order once decided,
//  * gaps are NAKed to the coordinator, which resends from history.
//
// Simplifications vs full (Multi-)Ring Paxos, documented in DESIGN.md:
// single ring, stable coordinator (no leader election / view change), no
// acceptor-log persistence. Like the sequencer baseline, it exists for the
// performance comparison, where these mechanisms are off the hot path.
#pragma once

#include <deque>
#include <map>

#include "protocol/engine.hpp"

namespace accelring::baselines {

using protocol::Host;
using protocol::Nanos;
using protocol::ProcessId;
using protocol::RingConfig;
using protocol::SocketId;

struct URingConfig {
  size_t batch_max_msgs = 24;
  /// Keep batch datagrams near the 8KB values Ring Paxos uses; very large
  /// UDP datagrams fragment heavily and amplify loss.
  size_t batch_max_bytes = 8 * 1024;
  Nanos flush_interval = util::usec(150);  ///< coordinator batch/idle timer
  uint32_t window = 8;        ///< undecided batches in flight
  size_t max_pending = 10'000;
  Nanos nak_delay = util::usec(700);
  /// Client-side re-send of values the coordinator has not sequenced yet.
  Nanos value_retransmit = util::msec(5);
};

struct URingStats {
  uint64_t submitted = 0;
  uint64_t forwarded = 0;     ///< values unicast to the coordinator
  uint64_t batches = 0;       ///< consensus instances started (coordinator)
  uint64_t decided = 0;       ///< instances decided (coordinator)
  uint64_t delivered = 0;     ///< application messages delivered
  uint64_t naks_sent = 0;
  uint64_t retransmitted = 0;
  uint64_t duplicates = 0;
  uint64_t submit_rejected = 0;
};

class URingProtocol final : public protocol::PacketHandler {
 public:
  URingProtocol(ProcessId self, RingConfig members, URingConfig cfg,
                Host& host);

  bool submit(std::vector<std::byte> payload);

  // --- protocol::PacketHandler ----------------------------------------------
  void on_packet(SocketId sock, std::span<const std::byte> packet) override;
  void on_timer(protocol::TimerKind kind) override;
  [[nodiscard]] SocketId preferred_socket() const override {
    return protocol::kSockData;
  }

  [[nodiscard]] const URingStats& stats() const { return stats_; }
  [[nodiscard]] uint64_t delivered_batches() const {
    return delivered_next_ - 1;
  }
  [[nodiscard]] bool is_coordinator() const {
    return self_ == members_.members.front();
  }

 private:
  struct Entry {
    ProcessId origin = 0;
    std::vector<std::byte> payload;
  };
  struct Batch {
    uint64_t id = 0;
    std::vector<Entry> entries;
  };

  void flush_pending(bool force);
  void send_value(uint64_t client_seq, const std::vector<std::byte>& body);
  void send_batch_to_successor(const Batch& batch, uint64_t decided_upto);
  void handle_batch(Batch batch, uint64_t decided_upto);
  void advance_decided(uint64_t decided_upto);
  void deliver_decided();
  [[nodiscard]] size_t my_ring_position() const;
  [[nodiscard]] std::vector<std::byte> encode_batch(
      const Batch& batch, uint64_t decided_upto) const;

  ProcessId self_;
  RingConfig members_;
  URingConfig cfg_;
  Host& host_;
  URingStats stats_;

  // Client side (at the coordinator this doubles as the batching queue;
  // forwarded values arrive here with their true origin attached).
  std::deque<Entry> pending_;
  uint64_t client_seq_ = 0;        ///< per-client value numbering
  uint64_t own_delivered_ = 0;     ///< own values seen delivered (cum. ack)
  std::map<uint64_t, std::vector<std::byte>> unacked_values_;
  bool value_timer_armed_ = false;

  // Coordinator-side per-client FIFO ingestion (dedupes retransmissions).
  struct ClientIngest {
    uint64_t expected = 1;
    std::map<uint64_t, std::vector<std::byte>> reorder;
  };
  std::map<ProcessId, ClientIngest> ingest_;

  // Coordinator side.
  uint64_t next_batch_ = 0;
  uint64_t decided_ = 0;        ///< contiguous decided watermark
  uint64_t published_ = 0;      ///< watermark last circulated to the ring
  uint64_t flush_ticks_ = 0;
  uint64_t stall_ticks_ = 0;
  uint64_t last_seen_decided_ = 0;
  std::map<uint64_t, bool> acks_;

  // Every process.
  std::map<uint64_t, Batch> store_;   ///< batches seen, until delivered+stable
  uint64_t high_batch_ = 0;
  uint64_t decided_upto_ = 0;   ///< delivery watermark at this process
  uint64_t delivered_next_ = 1;
  bool nak_armed_ = false;
};

}  // namespace accelring::baselines
