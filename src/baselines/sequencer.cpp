#include "baselines/sequencer.hpp"

#include "util/bytes.hpp"
#include "util/crc32.hpp"

namespace accelring::baselines {

namespace {

// Packet types above the ring protocol's range so peek_type() rejects them
// and the two protocols can never be confused on the wire.
constexpr uint8_t kForward = 10;  // sender -> sequencer
constexpr uint8_t kOrdered = 11;  // sequencer -> all
constexpr uint8_t kNak = 12;      // receiver -> sequencer
constexpr uint8_t kAck = 13;      // receiver -> sequencer

// How many messages a stall-heal or NAK answer resends at once.
constexpr SeqNum kResendBurst = 32;

void seal(util::Writer& w) { w.u32(util::crc32(w.view())); }

std::optional<util::Reader> unseal(std::span<const std::byte> packet,
                                   uint8_t expected_type) {
  if (packet.size() < 5) return std::nullopt;
  const auto body = packet.first(packet.size() - 4);
  util::Reader tail(packet.subspan(packet.size() - 4));
  if (tail.u32() != util::crc32(body)) return std::nullopt;
  util::Reader r(body);
  if (r.u8() != expected_type) return std::nullopt;
  return r;
}

std::vector<std::byte> encode_ordered(SeqNum seq, ProcessId sender,
                                      uint64_t sender_seq,
                                      std::span<const std::byte> payload) {
  util::Writer w(48 + payload.size());
  w.u8(kOrdered);
  w.i64(seq);
  w.u16(sender);
  w.u64(sender_seq);
  w.bytes(payload);
  seal(w);
  return std::move(w).take();
}

}  // namespace

SequencerProtocol::SequencerProtocol(ProcessId self, RingConfig members,
                                     SequencerConfig cfg, Host& host)
    : self_(self), members_(std::move(members)), cfg_(cfg), host_(host) {
  if (!is_sequencer()) {
    host_.set_timer(protocol::kTimerBaselineAck, cfg_.ack_interval);
  }
}

bool SequencerProtocol::submit(std::vector<std::byte> payload) {
  if (pending_.size() >= cfg_.max_pending) {
    ++stats_.submit_rejected;
    return false;
  }
  ++stats_.submitted;
  pending_.push_back(std::move(payload));
  try_send_pending();
  return true;
}

void SequencerProtocol::try_send_pending() {
  while (!pending_.empty() && outstanding_ < cfg_.sender_window) {
    std::vector<std::byte> payload = std::move(pending_.front());
    pending_.pop_front();
    ++sender_seq_;
    ++outstanding_;
    if (is_sequencer()) {
      ingest_forward(self_, sender_seq_, std::move(payload));
      continue;
    }
    send_forward(sender_seq_, payload);
    unacked_.emplace(sender_seq_, std::move(payload));
    if (!forward_timer_armed_) {
      forward_timer_armed_ = true;
      host_.set_timer(protocol::kTimerBaselineFlush, cfg_.forward_retransmit);
    }
  }
}

void SequencerProtocol::send_forward(uint64_t sender_seq,
                                     const std::vector<std::byte>& body) {
  util::Writer w(32 + body.size());
  w.u8(kForward);
  w.u16(self_);
  w.u64(sender_seq);
  w.bytes(body);
  seal(w);
  ++stats_.forwarded;
  host_.unicast(members_.members.front(), protocol::kSockData,
                std::move(w).take());
}

void SequencerProtocol::ingest_forward(ProcessId sender, uint64_t sender_seq,
                                       std::vector<std::byte> payload) {
  // Per-sender FIFO: forwards may arrive duplicated (retransmissions) or
  // reordered (a retransmission overtaking); order strictly by sender_seq.
  SenderIngest& ingest = ingest_[sender];
  if (sender_seq < ingest.expected || ingest.reorder.contains(sender_seq)) {
    ++stats_.duplicates;
    return;
  }
  ingest.reorder.emplace(sender_seq, std::move(payload));
  while (true) {
    const auto it = ingest.reorder.find(ingest.expected);
    if (it == ingest.reorder.end()) break;
    order_message(sender, ingest.expected, std::move(it->second));
    ingest.reorder.erase(it);
    ++ingest.expected;
  }
}

void SequencerProtocol::order_message(ProcessId sender, uint64_t sender_seq,
                                      std::vector<std::byte> payload) {
  const SeqNum seq = ++next_seq_;
  ++stats_.ordered;
  host_.multicast(protocol::kSockData,
                  encode_ordered(seq, sender, sender_seq, payload));
  history_.emplace(seq, Stored{sender, sender_seq, payload});
  // The sequencer does not hear its own multicast; handle locally.
  handle_ordered(seq, sender, sender_seq, std::move(payload));
}

void SequencerProtocol::on_packet(SocketId, std::span<const std::byte> packet) {
  if (packet.empty()) return;
  switch (static_cast<uint8_t>(packet[0])) {
    case kForward: {
      if (!is_sequencer()) return;
      auto r = unseal(packet, kForward);
      if (!r) return;
      const ProcessId sender = r->u16();
      const uint64_t sender_seq = r->u64();
      auto payload = util::to_vector(r->bytes());
      if (!r->done()) return;
      ingest_forward(sender, sender_seq, std::move(payload));
      break;
    }
    case kOrdered: {
      auto r = unseal(packet, kOrdered);
      if (!r) return;
      const SeqNum seq = r->i64();
      const ProcessId sender = r->u16();
      const uint64_t sender_seq = r->u64();
      auto payload = util::to_vector(r->bytes());
      if (!r->done()) return;
      handle_ordered(seq, sender, sender_seq, std::move(payload));
      break;
    }
    case kNak: {
      if (!is_sequencer()) return;
      auto r = unseal(packet, kNak);
      if (!r) return;
      const ProcessId requester = r->u16();
      const uint32_t n = r->u32();
      for (uint32_t i = 0; i < n && r->ok(); ++i) {
        const SeqNum seq = r->i64();
        const auto it = history_.find(seq);
        if (it == history_.end()) continue;
        ++stats_.retransmitted;
        host_.unicast(requester, protocol::kSockData,
                      encode_ordered(seq, it->second.sender,
                                     it->second.sender_seq,
                                     it->second.payload));
      }
      break;
    }
    case kAck: {
      if (!is_sequencer()) return;
      auto r = unseal(packet, kAck);
      if (!r) return;
      const ProcessId member = r->u16();
      const SeqNum aru = r->i64();
      MemberAck& ack = member_aru_[member];
      const SeqNum previous = ack.previous;
      ack.previous = ack.aru;
      ack.aru = std::max(ack.aru, aru);
      // Tail-loss heal: a member whose aru is stuck below the frontier will
      // never NAK (it cannot see the gap); push the next messages at it.
      if (ack.aru < next_seq_ && ack.aru == previous) {
        const SeqNum end = std::min(next_seq_, ack.aru + kResendBurst);
        for (SeqNum s = ack.aru + 1; s <= end; ++s) {
          const auto it = history_.find(s);
          if (it == history_.end()) continue;
          ++stats_.retransmitted;
          host_.unicast(member, protocol::kSockData,
                        encode_ordered(s, it->second.sender,
                                       it->second.sender_seq,
                                       it->second.payload));
        }
      }
      // Stability: everyone acked -> history below the minimum is garbage.
      if (member_aru_.size() + 1 == members_.size()) {
        SeqNum stable = aru_;  // our own aru counts too
        for (const auto& [pid, value] : member_aru_) {
          stable = std::min(stable, value.aru);
        }
        history_.erase(history_.begin(), history_.upper_bound(stable));
      }
      break;
    }
    default:
      break;
  }
}

void SequencerProtocol::handle_ordered(SeqNum seq, ProcessId sender,
                                       uint64_t sender_seq,
                                       std::vector<std::byte> payload) {
  if (sender == self_) {
    // Our forward was ordered: acknowledged up to this sender_seq (the
    // sequencer ingests per-sender in FIFO order, so this is cumulative).
    unacked_.erase(unacked_.begin(), unacked_.upper_bound(sender_seq));
  }
  if (seq <= aru_ || reorder_.contains(seq)) {
    ++stats_.duplicates;
    return;
  }
  high_seq_ = std::max(high_seq_, seq);
  reorder_.emplace(seq, Stored{sender, sender_seq, std::move(payload)});
  while (reorder_.contains(aru_ + 1)) ++aru_;
  deliver_ready();
  if (aru_ < high_seq_ && !nak_timer_armed_ && !is_sequencer()) {
    nak_timer_armed_ = true;
    host_.set_timer(protocol::kTimerBaselineNak, cfg_.nak_delay);
  }
}

void SequencerProtocol::deliver_ready() {
  while (true) {
    const auto it = reorder_.find(delivered_ + 1);
    if (it == reorder_.end()) break;
    protocol::Delivery delivery;
    delivery.sender = it->second.sender;
    delivery.seq = it->first;
    delivery.service = protocol::Service::kAgreed;
    delivery.payload = std::move(it->second.payload);
    if (delivery.sender == self_) {
      // One of ours came back ordered: window slot freed.
      if (outstanding_ > 0) --outstanding_;
    }
    ++delivered_;
    ++stats_.delivered;
    reorder_.erase(it);
    host_.deliver(delivery);
  }
  try_send_pending();
}

void SequencerProtocol::send_naks() {
  std::vector<SeqNum> missing;
  for (SeqNum s = aru_ + 1; s <= high_seq_ && missing.size() < 256; ++s) {
    if (!reorder_.contains(s)) missing.push_back(s);
  }
  if (missing.empty()) return;
  util::Writer w(16 + 8 * missing.size());
  w.u8(kNak);
  w.u16(self_);
  w.u32(static_cast<uint32_t>(missing.size()));
  for (SeqNum s : missing) w.i64(s);
  seal(w);
  ++stats_.naks_sent;
  host_.unicast(members_.members.front(), protocol::kSockData,
                std::move(w).take());
}

void SequencerProtocol::on_timer(protocol::TimerKind kind) {
  switch (kind) {
    case protocol::kTimerBaselineNak:
      nak_timer_armed_ = false;
      if (aru_ < high_seq_) {
        send_naks();
        nak_timer_armed_ = true;
        host_.set_timer(protocol::kTimerBaselineNak, cfg_.nak_delay);
      }
      break;
    case protocol::kTimerBaselineAck: {
      util::Writer w(16);
      w.u8(kAck);
      w.u16(self_);
      w.i64(aru_);
      seal(w);
      host_.unicast(members_.members.front(), protocol::kSockData,
                    std::move(w).take());
      host_.set_timer(protocol::kTimerBaselineAck, cfg_.ack_interval);
      break;
    }
    case protocol::kTimerBaselineFlush: {
      // Forward retransmission: re-send the oldest unordered forwards.
      forward_timer_armed_ = false;
      if (!unacked_.empty()) {
        int sent = 0;
        for (const auto& [sender_seq, body] : unacked_) {
          if (++sent > 8) break;
          send_forward(sender_seq, body);
        }
        forward_timer_armed_ = true;
        host_.set_timer(protocol::kTimerBaselineFlush,
                        cfg_.forward_retransmit);
      }
      break;
    }
    default:
      break;
  }
}

}  // namespace accelring::baselines
