#include "transport/event_loop.hpp"

#include <poll.h>

#include <algorithm>

namespace accelring::transport {

EventLoop::EventLoop() : epoch_(std::chrono::steady_clock::now()) {}

void EventLoop::add_fd(int fd, Callback fn) {
  fds_.emplace_back(fd, std::move(fn));
}

void EventLoop::remove_fd(int fd) {
  std::erase_if(fds_, [fd](const auto& p) { return p.first == fd; });
}

void EventLoop::set_timer(int id, Nanos delay, Callback fn) {
  timers_[id] = Timer{now() + delay, std::move(fn)};
}

void EventLoop::cancel_timer(int id) { timers_.erase(id); }

Nanos EventLoop::now() const {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

Nanos EventLoop::fire_due_timers() {
  Nanos next = -1;
  // Collect due timers first: callbacks may re-arm timers.
  std::vector<Callback> due;
  const Nanos t = now();
  for (auto it = timers_.begin(); it != timers_.end();) {
    if (it->second.deadline <= t) {
      due.push_back(std::move(it->second.fn));
      it = timers_.erase(it);
    } else {
      next = next < 0 ? it->second.deadline - t
                      : std::min(next, it->second.deadline - t);
      ++it;
    }
  }
  for (auto& fn : due) fn();
  return due.empty() ? next : 0;  // re-check immediately after firing
}

void EventLoop::poll_once(Nanos max_wait) {
  const Nanos until_timer = fire_due_timers();
  Nanos wait = max_wait;
  if (until_timer >= 0) wait = std::min(wait, until_timer);
  std::vector<pollfd> pfds;
  pfds.reserve(fds_.size());
  for (const auto& [fd, fn] : fds_) {
    pfds.push_back(pollfd{fd, POLLIN, 0});
  }
  const int timeout_ms =
      static_cast<int>(std::min<Nanos>(wait / util::kMillisecond, 100));
  const int rc = ::poll(pfds.data(), pfds.size(), std::max(timeout_ms, 0));
  if (rc <= 0) return;
  for (size_t i = 0; i < pfds.size(); ++i) {
    if ((pfds[i].revents & POLLIN) != 0 && i < fds_.size()) {
      fds_[i].second();
    }
  }
}

void EventLoop::run() {
  stopped_ = false;
  while (!stopped_) poll_once(util::msec(100));
}

void EventLoop::run_for(Nanos duration) {
  stopped_ = false;
  const Nanos deadline = now() + duration;
  while (!stopped_ && now() < deadline) {
    poll_once(std::max<Nanos>(deadline - now(), 0));
  }
}

}  // namespace accelring::transport
