// Real-socket transport: the protocol engine over UDP.
//
// Mirrors the paper's implementation choices (§III-D): data and token travel
// on *separate ports / sockets* so the receiver can drain them with
// different priorities, and when IP-multicast is unavailable the transport
// falls back to unicast fan-out logical multicast (an option Spread also
// ships, and the portable default here — it works on loopback and inside
// containers).
//
// Single-threaded: everything runs on the owning EventLoop. The priority
// mechanism reads the engine's preferred socket before every receive, so a
// raised token priority takes effect mid-burst exactly as in §III-C.
#pragma once

#include <map>
#include <string>

#include "protocol/engine.hpp"
#include "transport/event_loop.hpp"

namespace accelring::transport {

struct PeerAddress {
  std::string ip = "127.0.0.1";
  uint16_t data_port = 0;
  uint16_t token_port = 0;
};

class UdpTransport final : public protocol::Host {
 public:
  using DeliverFn = std::function<void(const protocol::Delivery&)>;
  using ConfigFn = std::function<void(const protocol::ConfigurationChange&)>;

  /// Binds this process's data/token sockets per peers[self]. Throws
  /// std::runtime_error when binding fails.
  UdpTransport(protocol::ProcessId self,
               std::map<protocol::ProcessId, PeerAddress> peers,
               EventLoop& loop);
  ~UdpTransport() override;

  UdpTransport(const UdpTransport&) = delete;
  UdpTransport& operator=(const UdpTransport&) = delete;

  void bind(protocol::PacketHandler& handler) { handler_ = &handler; }
  void set_deliver(DeliverFn fn) { deliver_ = std::move(fn); }
  void set_config(ConfigFn fn) { config_ = std::move(fn); }

  // --- protocol::Host --------------------------------------------------------
  void multicast(protocol::SocketId sock,
                 std::span<const std::byte> data) override;
  void unicast(protocol::ProcessId to, protocol::SocketId sock,
               std::span<const std::byte> data, Nanos delay) override;
  void deliver(const protocol::Delivery& delivery) override;
  void on_configuration(const protocol::ConfigurationChange& change) override;
  void set_timer(protocol::TimerKind kind, Nanos delay) override;
  void cancel_timer(protocol::TimerKind kind) override;
  Nanos now() override { return loop_.now(); }
  /// Thread CPU clock for the gray-failure health stamp: single-threaded, so
  /// CLOCK_THREAD_CPUTIME_ID is exactly the daemon's protocol-processing
  /// cost, and a core shared with a noisy neighbour shows up as a higher
  /// per-rotation delta just like in the simulator.
  Nanos cpu_time() override;

  [[nodiscard]] uint64_t datagrams_sent() const { return sent_; }
  [[nodiscard]] uint64_t datagrams_received() const { return received_; }
  /// Datagrams the kernel refused to take (EAGAIN, unreachable, short
  /// write). Treated as wire loss: the protocol retransmits.
  [[nodiscard]] uint64_t send_drops() const { return send_drops_; }

 private:
  void on_readable(protocol::SocketId which);
  /// Drain up to one datagram from the preferred socket (or the other if
  /// the preferred one is empty). Returns false when both are empty.
  bool read_one();
  void send_to(protocol::ProcessId to, protocol::SocketId sock,
               std::span<const std::byte> data);

  protocol::ProcessId self_;
  std::map<protocol::ProcessId, PeerAddress> peers_;
  EventLoop& loop_;
  protocol::PacketHandler* handler_ = nullptr;
  int data_fd_ = -1;
  int token_fd_ = -1;
  DeliverFn deliver_;
  ConfigFn config_;
  std::vector<std::byte> pending_token_;  ///< delayed (idle-hold) token
  protocol::ProcessId pending_token_to_ = protocol::kNoProcess;
  uint64_t sent_ = 0;
  uint64_t received_ = 0;
  uint64_t send_drops_ = 0;
};

}  // namespace accelring::transport
