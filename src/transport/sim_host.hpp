// Simulator adapter: wires a protocol::Engine to a simnet::Process and
// simnet::Network, charging virtual CPU cost for every syscall, protocol
// handling step, and application delivery.
//
// One SimHost per simulated node. Construction order per node:
//
//   Process proc(eq, costs, sockbuf);
//   SimHost host(eq, net, proc, node_index);
//   protocol::Engine engine(pid, cfg, host);
//   host.bind(engine);
//   net.attach(node_index, [&proc](sock, data) { proc.enqueue(sock, data); });
//   proc.set_sink(&host);
//
// Process ids map 1:1 onto simulated host indices (pid p runs on host p).
#pragma once

#include <functional>

#include "protocol/engine.hpp"
#include "simnet/event_queue.hpp"
#include "simnet/network.hpp"
#include "simnet/process.hpp"

namespace accelring::transport {

using protocol::Nanos;

/// Virtual CPU costs of the protocol path, charged by SimHost. The
/// per-implementation-profile costs (client IPC, group routing) are layered
/// on top by the harness via the delivery callback.
struct HostCosts {
  Nanos send_syscall = 1'100;    ///< one sendmsg()
  double send_per_byte = 0.20;   ///< ns/byte copy into the kernel
  Nanos token_process = 900;     ///< token handling work (ordering, rtr, fc)
  Nanos data_process = 450;      ///< per-data-message ordering work
  Nanos delivery = 250;          ///< handing one message to the application
};

class SimHost final : public protocol::Host, public simnet::PacketSink {
 public:
  using DeliverFn = std::function<void(const protocol::Delivery&)>;
  using ConfigFn = std::function<void(const protocol::ConfigurationChange&)>;
  using IpcFn = std::function<void(std::span<const std::byte>)>;

  SimHost(simnet::Network& net, simnet::Process& proc, int node,
          HostCosts costs = {});

  /// Attach the engine (two-phase init: the engine's constructor needs the
  /// Host reference).
  void bind(protocol::PacketHandler& handler) { handler_ = &handler; }

  /// Application-side hooks (harness, daemon layer).
  void set_deliver(DeliverFn fn) { deliver_ = std::move(fn); }
  void set_config(ConfigFn fn) { config_ = std::move(fn); }
  /// Handler for datagrams arriving on the IPC socket (daemon profile).
  void set_ipc_handler(IpcFn fn) { ipc_ = std::move(fn); }

  [[nodiscard]] simnet::Process& process() { return proc_; }
  [[nodiscard]] int node() const { return node_; }
  [[nodiscard]] const HostCosts& costs() const { return costs_; }

  /// Permanently mute this host (crash modelling): sends, deliveries,
  /// configuration callbacks, and timer (re)arms become no-ops, and every
  /// pending protocol timer is cancelled. The host object stays alive so
  /// events already queued against it resolve harmlessly, which lets the
  /// harness replace a crashed node with a fresh engine at the same index.
  void set_dead(bool dead);
  [[nodiscard]] bool dead() const { return dead_; }

  // --- protocol::Host --------------------------------------------------------
  void multicast(protocol::SocketId sock,
                 std::span<const std::byte> data) override;
  void unicast(protocol::ProcessId to, protocol::SocketId sock,
               std::span<const std::byte> data, Nanos delay) override;
  void deliver(const protocol::Delivery& delivery) override;
  void on_configuration(const protocol::ConfigurationChange& change) override;
  void set_timer(protocol::TimerKind kind, Nanos delay) override;
  void cancel_timer(protocol::TimerKind kind) override;
  Nanos now() override { return proc_.now(); }
  /// Virtual CPU consumed so far; the gray-failure health stamp reads the
  /// per-rotation delta. Scales with Process::set_cpu_multiplier, which is
  /// exactly what makes an injected straggler measurable.
  Nanos cpu_time() override { return proc_.busy_time(); }

  // --- simnet::PacketSink ----------------------------------------------------
  void on_packet(simnet::SocketId sock,
                 std::span<const std::byte> data) override;
  [[nodiscard]] simnet::SocketId preferred_socket() const override;
  void on_timer(int kind) override;

 private:
  [[nodiscard]] Nanos send_cost(size_t bytes) const {
    return costs_.send_syscall +
           static_cast<Nanos>(static_cast<double>(bytes) *
                              costs_.send_per_byte);
  }

  simnet::Network& net_;
  simnet::Process& proc_;
  int node_;
  HostCosts costs_;
  bool dead_ = false;
  protocol::PacketHandler* handler_ = nullptr;
  DeliverFn deliver_;
  ConfigFn config_;
  IpcFn ipc_;
};

}  // namespace accelring::transport
