#include "transport/sim_host.hpp"

#include <cassert>

namespace accelring::transport {

SimHost::SimHost(simnet::Network& net, simnet::Process& proc, int node,
                 HostCosts costs)
    : net_(net), proc_(proc), node_(node), costs_(costs) {}

void SimHost::set_dead(bool dead) {
  dead_ = dead;
  if (!dead_) return;
  // A dead engine must not keep ticking: cancel every protocol timer so
  // retransmit/membership loops stop rearming themselves.
  for (int kind = protocol::kTimerTokenRetransmit;
       kind <= protocol::kTimerBaselineFlush; ++kind) {
    proc_.cancel_timer(kind);
  }
}

void SimHost::multicast(protocol::SocketId sock,
                        std::span<const std::byte> data) {
  if (dead_) return;
  proc_.charge(send_cost(data.size()));
  net_.send(node_, simnet::kMulticast, sock, util::to_vector(data),
            proc_.now());
}

void SimHost::unicast(protocol::ProcessId to, protocol::SocketId sock,
                      std::span<const std::byte> data, Nanos delay) {
  if (dead_) return;
  proc_.charge(send_cost(data.size()));
  net_.send(node_, static_cast<int>(to), sock, util::to_vector(data),
            proc_.now() + delay);
}

void SimHost::deliver(const protocol::Delivery& delivery) {
  if (dead_) return;
  proc_.charge(costs_.delivery);
  if (deliver_) deliver_(delivery);
}

void SimHost::on_configuration(const protocol::ConfigurationChange& change) {
  if (dead_) return;
  if (config_) config_(change);
}

void SimHost::set_timer(protocol::TimerKind kind, Nanos delay) {
  if (dead_) return;
  proc_.set_timer(kind, delay);
}

void SimHost::cancel_timer(protocol::TimerKind kind) {
  proc_.cancel_timer(kind);
}

void SimHost::on_packet(simnet::SocketId sock,
                        std::span<const std::byte> data) {
  if (dead_) return;  // leftover inbox items of a crashed node
  if (sock == simnet::kIpcSocket) {
    if (ipc_) ipc_(data);
    return;
  }
  assert(handler_ != nullptr);
  const auto type = protocol::peek_type(data);
  if (type == protocol::PacketType::kToken ||
      type == protocol::PacketType::kCommitToken) {
    proc_.charge(costs_.token_process);
  } else {
    proc_.charge(costs_.data_process);
  }
  handler_->on_packet(sock, data);
}

simnet::SocketId SimHost::preferred_socket() const {
  if (handler_ == nullptr) return simnet::kDataSocket;
  return handler_->preferred_socket() == protocol::kSockToken
             ? simnet::kTokenSocket
             : simnet::kDataSocket;
}

void SimHost::on_timer(int kind) {
  if (dead_) return;  // a timer that fired while the cancel was in flight
  assert(handler_ != nullptr);
  handler_->on_timer(static_cast<protocol::TimerKind>(kind));
}

}  // namespace accelring::transport
