// Minimal poll(2)-based event loop for the real UDP transport.
//
// Single-threaded, like the daemons the paper benchmarks: file-descriptor
// readiness callbacks plus one-shot timers. The poll timeout is derived from
// the nearest timer deadline, so timers fire without busy-waiting.
#pragma once

#include <chrono>
#include <functional>
#include <map>
#include <vector>

#include "util/time.hpp"

namespace accelring::transport {

using util::Nanos;

class EventLoop {
 public:
  using Callback = std::function<void()>;

  EventLoop();

  /// Register `fn` to run whenever `fd` is readable. One handler per fd.
  void add_fd(int fd, Callback fn);
  void remove_fd(int fd);

  /// (Re)arm one-shot timer `id` to fire `delay` from now.
  void set_timer(int id, Nanos delay, Callback fn);
  void cancel_timer(int id);

  /// Monotonic nanoseconds since loop construction.
  [[nodiscard]] Nanos now() const;

  /// Process events until stop() is called.
  void run();
  /// Process events for (approximately) `duration`.
  void run_for(Nanos duration);
  void stop() { stopped_ = true; }

 private:
  struct Timer {
    Nanos deadline;
    Callback fn;
  };

  /// Run timers whose deadline passed; returns ns until the next deadline
  /// (or -1 if none).
  Nanos fire_due_timers();
  void poll_once(Nanos max_wait);

  std::chrono::steady_clock::time_point epoch_;
  std::vector<std::pair<int, Callback>> fds_;
  std::map<int, Timer> timers_;
  bool stopped_ = false;
};

}  // namespace accelring::transport
