#include "transport/udp_transport.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <ctime>
#include <stdexcept>

namespace accelring::transport {

namespace {

// Loop-timer ids: 0..15 reserved for protocol TimerKind; internal uses sit
// above that range.
constexpr int kDelayedTokenTimer = 100;

int make_udp_socket(const std::string& ip, uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd < 0) throw std::runtime_error("socket() failed");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  // Size both buffers explicitly: a high-rate ring bursts a full token
  // round's worth of datagrams at once, and the kernel defaults (often a few
  // hundred KB) silently drop the tail of each burst on both directions.
  const int buf = 4 * 1024 * 1024;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &buf, sizeof(buf));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &buf, sizeof(buf));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, ip.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw std::runtime_error("bad address: " + ip);
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    throw std::runtime_error("bind() failed on " + ip + ":" +
                             std::to_string(port));
  }
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  return fd;
}

}  // namespace

UdpTransport::UdpTransport(protocol::ProcessId self,
                           std::map<protocol::ProcessId, PeerAddress> peers,
                           EventLoop& loop)
    : self_(self), peers_(std::move(peers)), loop_(loop) {
  const auto it = peers_.find(self_);
  if (it == peers_.end()) throw std::runtime_error("self not in peer map");
  data_fd_ = make_udp_socket(it->second.ip, it->second.data_port);
  token_fd_ = make_udp_socket(it->second.ip, it->second.token_port);
  loop_.add_fd(data_fd_, [this] { on_readable(protocol::kSockData); });
  loop_.add_fd(token_fd_, [this] { on_readable(protocol::kSockToken); });
}

UdpTransport::~UdpTransport() {
  loop_.remove_fd(data_fd_);
  loop_.remove_fd(token_fd_);
  if (data_fd_ >= 0) ::close(data_fd_);
  if (token_fd_ >= 0) ::close(token_fd_);
}

void UdpTransport::send_to(protocol::ProcessId to, protocol::SocketId sock,
                           std::span<const std::byte> data) {
  const auto it = peers_.find(to);
  if (it == peers_.end()) return;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(sock == protocol::kSockToken ? it->second.token_port
                                                     : it->second.data_port);
  ::inet_pton(AF_INET, it->second.ip.c_str(), &addr.sin_addr);
  // Send from the matching socket so replies/captures look sane.
  const int fd = sock == protocol::kSockToken ? token_fd_ : data_fd_;
  ssize_t n;
  do {
    n = ::sendto(fd, data.data(), data.size(), 0,
                 reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  } while (n < 0 && errno == EINTR);
  // UDP gives no delivery guarantee anyway, so a full socket buffer
  // (EAGAIN), an unreachable peer, or a short write is exactly a dropped
  // datagram: count it and move on — the ring's retransmission machinery is
  // the recovery path, not the syscall return code.
  if (n == static_cast<ssize_t>(data.size())) {
    ++sent_;
  } else {
    ++send_drops_;
  }
}

void UdpTransport::multicast(protocol::SocketId sock,
                             std::span<const std::byte> data) {
  // Unicast fan-out logical multicast (§III-D).
  for (const auto& [pid, addr] : peers_) {
    if (pid == self_) continue;
    send_to(pid, sock, data);
  }
}

void UdpTransport::unicast(protocol::ProcessId to, protocol::SocketId sock,
                           std::span<const std::byte> data, Nanos delay) {
  if (delay <= 0) {
    send_to(to, sock, data);
    return;
  }
  // Idle-hold: park the token briefly. A newer send supersedes the pending
  // one (the engine only ever has one outstanding token).
  pending_token_.assign(data.begin(), data.end());
  pending_token_to_ = to;
  loop_.set_timer(kDelayedTokenTimer, delay, [this, sock] {
    if (pending_token_to_ == protocol::kNoProcess) return;
    send_to(pending_token_to_, sock, pending_token_);
    pending_token_to_ = protocol::kNoProcess;
  });
}

void UdpTransport::deliver(const protocol::Delivery& delivery) {
  if (deliver_) deliver_(delivery);
}

void UdpTransport::on_configuration(
    const protocol::ConfigurationChange& change) {
  if (config_) config_(change);
}

void UdpTransport::set_timer(protocol::TimerKind kind, Nanos delay) {
  loop_.set_timer(static_cast<int>(kind), delay, [this, kind] {
    if (handler_ != nullptr) handler_->on_timer(kind);
  });
}

void UdpTransport::cancel_timer(protocol::TimerKind kind) {
  loop_.cancel_timer(static_cast<int>(kind));
}

void UdpTransport::on_readable(protocol::SocketId) {
  // Drain everything available, re-checking priority between datagrams.
  while (read_one()) {
  }
}

bool UdpTransport::read_one() {
  if (handler_ == nullptr) return false;
  const protocol::SocketId preferred = handler_->preferred_socket();
  const int order[2] = {
      preferred == protocol::kSockToken ? token_fd_ : data_fd_,
      preferred == protocol::kSockToken ? data_fd_ : token_fd_};
  std::byte buf[65536];
  for (const int fd : order) {
    ssize_t n;
    do {
      n = ::recv(fd, buf, sizeof(buf), MSG_DONTWAIT);
    } while (n < 0 && errno == EINTR);
    if (n > 0) {
      ++received_;
      handler_->on_packet(fd == token_fd_ ? protocol::kSockToken
                                         : protocol::kSockData,
                         std::span<const std::byte>(buf, static_cast<size_t>(n)));
      return true;
    }
  }
  return false;
}

Nanos UdpTransport::cpu_time() {
  struct timespec ts{};
  if (::clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return 0;
  return static_cast<Nanos>(ts.tv_sec) * 1'000'000'000 + ts.tv_nsec;
}

}  // namespace accelring::transport
