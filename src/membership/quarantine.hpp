// Quarantine / probation lifecycle for gray-failed members.
//
// Timeout ejection (the PR-3 path) removes a member that went silent; it may
// rejoin the moment it speaks again. Gray-failure eviction is different: the
// member is alive and will keep asking to join, so re-admitting it on first
// contact would reinstall the bottleneck and the ring would flap between
// "slow with it" and "fast without it". This state machine makes the verdict
// sticky:
//
//   kHealthy ──(GrayFailureDetector verdict)──▶ kQuarantined
//       ▲                                            │ hold join probes
//       │                                            ▼
//       └──(clean probes observed)──── kProbation ◀──┘
//
//  * kQuarantined: the member's Join messages are ignored (but counted as
//    probes — they prove it is alive and still wants in). After
//    `quarantine_rotations` probes the member moves to probation. Repeat
//    offenders double the hold each time (exponential anti-flap backoff).
//  * kProbation: still blocked while `probation_rotations` further probes
//    arrive cleanly; then the next Join is admitted through the normal
//    gather and the entry is cleared when the configuration installs.
//
// Verdicts propagate in JoinMsg::quarantine_set and peers adopt the stricter
// view, so a member that missed the eviction cannot re-admit the victim
// behind everyone's back. In the other direction, a peer that advertises the
// victim in its proc_set *without* quarantining it is evidence the fleet has
// released the verdict (probe counts drift a little between members); we
// release too rather than deadlock the gather.
#pragma once

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "protocol/types.hpp"

namespace accelring::membership {

enum class QuarantineState : uint8_t { kHealthy = 0, kQuarantined, kProbation };

class QuarantineManager {
 public:
  using ProcessId = protocol::ProcessId;
  using GrayConfig = protocol::ProtocolConfig::GrayConfig;

  explicit QuarantineManager(const GrayConfig& cfg) : cfg_(cfg) {}

  /// Local detector verdict: begin (or restart) quarantine. Returns the
  /// probe hold, doubled per prior offense, capped at 16x.
  uint32_t quarantine(ProcessId pid);

  /// A Join from `pid` arrived. Counts it as a probe, advances the state
  /// machine, and returns true when the Join must still be ignored. The
  /// transition into probation is reported via `entered_probation`.
  bool filter_probe(ProcessId pid, bool& entered_probation);

  /// Adopt a peer's quarantine verdict. Returns true when this newly blocks
  /// a pid we considered healthy (or re-blocks one on probation).
  bool adopt(ProcessId pid, uint32_t hold);

  /// Peer evidence that the fleet released `pid` (a non-quarantining peer
  /// advertises it): drop our verdict so the gather can converge. The
  /// strike history survives, so a relapse still earns a doubled hold.
  void release(ProcessId pid);

  /// `pid` was installed in a regular configuration. Clears any entry;
  /// returns true when that entry existed (a genuine re-admission).
  bool note_installed(ProcessId pid);

  [[nodiscard]] bool blocked(ProcessId pid) const;
  [[nodiscard]] QuarantineState state(ProcessId pid) const;

  /// Quarantined (pid, remaining hold) pairs for JoinMsg piggybacking.
  /// Probation entries are deliberately not exported: a verdict everyone
  /// has aged out of must be allowed to die.
  [[nodiscard]] std::vector<std::pair<ProcessId, uint32_t>> export_set() const;

  /// Every pid this manager ever placed in quarantine (locally decided or
  /// adopted), in order — the campaign's healthy-member audit reads this
  /// rather than the wrap-prone trace buffer.
  [[nodiscard]] const std::vector<ProcessId>& victims() const {
    return victims_;
  }

 private:
  struct Entry {
    QuarantineState state = QuarantineState::kQuarantined;
    uint32_t hold = 0;   ///< probes left before probation
    uint32_t clean = 0;  ///< probation probes left before re-admission
  };

  const GrayConfig& cfg_;
  std::map<ProcessId, Entry> entries_;
  std::map<ProcessId, uint32_t> strikes_;
  std::vector<ProcessId> victims_;
};

}  // namespace accelring::membership
