// Durable storage for the membership epoch counter.
//
// Ring identifiers encode (epoch, creator); stale-ring and stale-incarnation
// rejection both rely on the epoch growing monotonically along any merge
// lineage. That holds in memory, but a daemon that crashes and cold-restarts
// forgets max_epoch_seen_ and can mint a ring id it already used in a
// previous life — which the survivors would then (correctly!) reject as
// stale, or worse, confuse with the dead ring. Persisting the high-water
// epoch across restarts closes the hole: a reborn daemon resumes counting
// from strictly above everything it ever created or saw.
//
// Two implementations: FileEpochStore (a tiny write-rename-fsync file, for
// real daemons) and MemoryEpochStore (for the simulator, where "disk" is a
// heap object that survives SimCluster::restart_node while the engine does
// not).
#pragma once

#include <cstdint>
#include <memory>
#include <string>

namespace accelring::membership {

class EpochStore {
 public:
  virtual ~EpochStore() = default;
  /// Highest epoch ever stored; 0 when nothing was persisted yet.
  [[nodiscard]] virtual uint64_t load() = 0;
  /// Persist `epoch` if it exceeds the stored value (monotonic).
  virtual void store(uint64_t epoch) = 0;
};

/// Simulator / test double: survives as long as the object does.
class MemoryEpochStore final : public EpochStore {
 public:
  [[nodiscard]] uint64_t load() override { return epoch_; }
  void store(uint64_t epoch) override {
    if (epoch > epoch_) epoch_ = epoch;
  }

 private:
  uint64_t epoch_ = 0;
};

/// File-backed store: writes `path` atomically (temp file + fsync + rename +
/// directory fsync — rename alone is not power-loss durable). A missing or
/// unreadable/garbage file loads as 0 — the store must never stop a daemon
/// from booting; it only raises the epoch floor when it can.
///
/// Implemented over storage::FileDisk + storage::DiskEpochStore (pimpl to
/// keep the storage headers out of membership's public surface).
class FileEpochStore final : public EpochStore {
 public:
  explicit FileEpochStore(std::string path);
  ~FileEpochStore() override;
  [[nodiscard]] uint64_t load() override;
  void store(uint64_t epoch) override;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace accelring::membership
