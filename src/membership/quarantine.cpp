#include "membership/quarantine.hpp"

#include <algorithm>

namespace accelring::membership {

uint32_t QuarantineManager::quarantine(ProcessId pid) {
  const uint32_t strikes = std::min(strikes_[pid], 4u);
  ++strikes_[pid];
  const uint32_t hold = cfg_.quarantine_rotations << strikes;
  Entry& e = entries_[pid];
  e.state = QuarantineState::kQuarantined;
  e.hold = std::max(hold, 1u);
  e.clean = 0;
  victims_.push_back(pid);
  return e.hold;
}

bool QuarantineManager::filter_probe(ProcessId pid, bool& entered_probation) {
  entered_probation = false;
  const auto it = entries_.find(pid);
  if (it == entries_.end()) return false;
  Entry& e = it->second;
  if (e.state == QuarantineState::kQuarantined) {
    if (--e.hold == 0) {
      e.state = QuarantineState::kProbation;
      e.clean = std::max(cfg_.probation_rotations, 1u);
      entered_probation = true;
    }
    return true;
  }
  // Probation: block until the clean-probe count is met, then let the Join
  // through (the entry itself is cleared when the configuration installs).
  if (e.clean > 0) {
    --e.clean;
    return e.clean > 0;
  }
  return false;
}

bool QuarantineManager::adopt(ProcessId pid, uint32_t hold) {
  const auto it = entries_.find(pid);
  if (it != entries_.end() &&
      it->second.state == QuarantineState::kQuarantined) {
    // Already blocking; keep the stricter (longer) hold.
    it->second.hold = std::max(it->second.hold, hold);
    return false;
  }
  Entry& e = entries_[pid];
  e.state = QuarantineState::kQuarantined;
  e.hold = std::max(hold, 1u);
  e.clean = 0;
  victims_.push_back(pid);
  return true;
}

void QuarantineManager::release(ProcessId pid) { entries_.erase(pid); }

bool QuarantineManager::note_installed(ProcessId pid) {
  return entries_.erase(pid) > 0;
}

bool QuarantineManager::blocked(ProcessId pid) const {
  const auto it = entries_.find(pid);
  if (it == entries_.end()) return false;
  const Entry& e = it->second;
  return e.state == QuarantineState::kQuarantined || e.clean > 0;
}

QuarantineState QuarantineManager::state(ProcessId pid) const {
  const auto it = entries_.find(pid);
  return it == entries_.end() ? QuarantineState::kHealthy : it->second.state;
}

std::vector<std::pair<QuarantineManager::ProcessId, uint32_t>>
QuarantineManager::export_set() const {
  std::vector<std::pair<ProcessId, uint32_t>> out;
  for (const auto& [pid, e] : entries_) {
    if (e.state == QuarantineState::kQuarantined) out.emplace_back(pid, e.hold);
  }
  return out;
}

}  // namespace accelring::membership
