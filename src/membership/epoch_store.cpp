#include "membership/epoch_store.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "util/log.hpp"

namespace accelring::membership {

namespace {
constexpr const char* kTag = "epoch_store";
}

FileEpochStore::FileEpochStore(std::string path) : path_(std::move(path)) {}

uint64_t FileEpochStore::load() {
  if (loaded_) return cached_;
  loaded_ = true;
  cached_ = 0;
  FILE* f = std::fopen(path_.c_str(), "r");
  if (f == nullptr) return cached_;  // first boot: no file yet
  unsigned long long value = 0;
  if (std::fscanf(f, "%llu", &value) == 1) {
    cached_ = value;
  } else {
    ACCELRING_LOG_WARN(kTag, "garbage in %s, treating as epoch 0",
                       path_.c_str());
  }
  std::fclose(f);
  return cached_;
}

void FileEpochStore::store(uint64_t epoch) {
  if (epoch <= load()) return;
  cached_ = epoch;
  // Write-rename so a crash mid-write leaves the old value, never a torn
  // one; fsync before rename so the rename never outruns the data.
  const std::string tmp = path_ + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    ACCELRING_LOG_WARN(kTag, "cannot write %s: %s", tmp.c_str(),
                       std::strerror(errno));
    return;
  }
  char buf[32];
  const int len = std::snprintf(buf, sizeof(buf), "%llu\n",
                                static_cast<unsigned long long>(epoch));
  ssize_t written = 0;
  while (written < len) {
    const ssize_t n = ::write(fd, buf + written, static_cast<size_t>(len) -
                                                     static_cast<size_t>(written));
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    written += n;
  }
  ::fsync(fd);
  ::close(fd);
  if (written == len) {
    if (::rename(tmp.c_str(), path_.c_str()) != 0) {
      ACCELRING_LOG_WARN(kTag, "rename %s failed: %s", tmp.c_str(),
                         std::strerror(errno));
    }
  }
}

}  // namespace accelring::membership
