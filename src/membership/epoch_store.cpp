#include "membership/epoch_store.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "util/log.hpp"

namespace accelring::membership {

namespace {
constexpr const char* kTag = "epoch_store";
}

FileEpochStore::FileEpochStore(std::string path) : path_(std::move(path)) {}

uint64_t FileEpochStore::load() {
  if (loaded_) return cached_;
  loaded_ = true;
  cached_ = 0;
  FILE* f = std::fopen(path_.c_str(), "r");
  if (f == nullptr) return cached_;  // first boot: no file yet
  char buf[32];
  const size_t n = std::fread(buf, 1, sizeof(buf), f);
  std::fclose(f);
  // Strict format check: store() only ever writes digits + '\n'. Anything
  // else — a truncated write, filesystem corruption, a stray edit — is
  // treated as ABSENT, not parsed best-effort: a torn "45" left over from
  // "4567\n" would otherwise load as a plausible epoch far below the real
  // floor, which is exactly the stale-ring-id hole this store exists to
  // close. Absent means log loudly and re-mint from 0; the store must never
  // stop a daemon from booting.
  bool valid = n >= 2 && n < sizeof(buf) && buf[n - 1] == '\n';
  for (size_t i = 0; valid && i + 1 < n; ++i) {
    valid = buf[i] >= '0' && buf[i] <= '9';
  }
  if (!valid) {
    ACCELRING_LOG_WARN(kTag,
                       "corrupt epoch file %s (%zu bytes): treating as "
                       "absent, re-minting from 0",
                       path_.c_str(), n);
    return cached_;
  }
  buf[n - 1] = '\0';
  cached_ = std::strtoull(buf, nullptr, 10);
  return cached_;
}

void FileEpochStore::store(uint64_t epoch) {
  if (epoch <= load()) return;
  cached_ = epoch;
  // Write-rename so a crash mid-write leaves the old value, never a torn
  // one; fsync before rename so the rename never outruns the data.
  const std::string tmp = path_ + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    ACCELRING_LOG_WARN(kTag, "cannot write %s: %s", tmp.c_str(),
                       std::strerror(errno));
    return;
  }
  char buf[32];
  const int len = std::snprintf(buf, sizeof(buf), "%llu\n",
                                static_cast<unsigned long long>(epoch));
  ssize_t written = 0;
  while (written < len) {
    const ssize_t n = ::write(fd, buf + written, static_cast<size_t>(len) -
                                                     static_cast<size_t>(written));
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    written += n;
  }
  ::fsync(fd);
  ::close(fd);
  if (written == len) {
    if (::rename(tmp.c_str(), path_.c_str()) != 0) {
      ACCELRING_LOG_WARN(kTag, "rename %s failed: %s", tmp.c_str(),
                         std::strerror(errno));
    }
  }
}

}  // namespace accelring::membership
