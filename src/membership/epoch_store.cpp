#include "membership/epoch_store.hpp"

#include <utility>

#include "storage/epoch_store.hpp"
#include "storage/file_disk.hpp"

namespace accelring::membership {

namespace {

// Splits a file path into (directory, basename) for the FileDisk layout.
std::pair<std::string, std::string> split_path(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return {".", path};
  if (slash == 0) return {"/", path.substr(1)};
  return {path.substr(0, slash), path.substr(slash + 1)};
}

}  // namespace

struct FileEpochStore::Impl {
  explicit Impl(const std::string& path)
      : parts(split_path(path)),
        disk(parts.first),
        store(disk, parts.second) {}

  std::pair<std::string, std::string> parts;
  storage::FileDisk disk;
  storage::DiskEpochStore store;
};

FileEpochStore::FileEpochStore(std::string path)
    : impl_(std::make_unique<Impl>(path)) {}

FileEpochStore::~FileEpochStore() = default;

uint64_t FileEpochStore::load() { return impl_->store.load(); }

void FileEpochStore::store(uint64_t epoch) { impl_->store.store(epoch); }

}  // namespace accelring::membership
