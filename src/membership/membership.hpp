// Membership and recovery (the Totem/Spread membership algorithm, §II).
//
// The ordering protocol (protocol::Engine) handles the normal case; this
// class handles everything else: token loss, process crashes and joins,
// network partitions and merges. It implements the gather / commit / recover
// state machine of the Totem single-ring membership algorithm as used by
// Spread, and delivers Extended Virtual Synchrony configuration changes:
//
//  * GATHER  — multicast Join messages carrying (proc_set, fail_set); reach
//    consensus when every process in my proc_set sent a Join with identical
//    sets. Silent candidates are moved to the fail_set on a timeout.
//  * COMMIT  — the representative (smallest pid) circulates a commit token
//    around the proposed ring; the first rotation collects each member's
//    old-ring state (ring id, aru, high seq), the second distributes the
//    completed table and moves everyone to recovery.
//  * RECOVER — the new ring runs the ordering protocol, but participants
//    multicast only *recovered* messages: their undelivered old-ring
//    messages above the old ring's minimum aru, encapsulated in new-ring
//    messages, followed by one Safe end-of-recovery marker each. When every
//    member's marker has been Safe-delivered, each participant knows (a) the
//    union of surviving old-ring messages and (b) that every new-ring member
//    has received all of them. It then delivers, in order: old-ring messages
//    still deliverable under the old configuration's rules, the transitional
//    configuration, the remaining recovered messages, and the new regular
//    configuration.
//
// Simplifications relative to Totem (documented in DESIGN.md): every member
// retransmits its full recovery set rather than coordinating who sends what
// (correct, redundant), and old-ring messages that no surviving member holds
// are skipped as holes after the transitional configuration.
#pragma once

#include <map>
#include <set>

#include "membership/epoch_store.hpp"
#include "membership/quarantine.hpp"
#include "protocol/engine.hpp"
#include "protocol/recv_buffer.hpp"
#include "protocol/wire.hpp"

namespace accelring::membership {

using protocol::CommitEntry;
using protocol::CommitTokenMsg;
using protocol::DataMsg;
using protocol::JoinMsg;
using protocol::Nanos;
using protocol::ProcessId;
using protocol::RingConfig;
using protocol::RingId;
using protocol::SeqNum;

/// Ring identifiers encode (epoch, creator) so concurrently formed rings
/// never collide and epochs grow monotonically along any merge lineage.
[[nodiscard]] constexpr RingId make_ring_id(uint64_t epoch,
                                            ProcessId creator) {
  return (epoch << 16) | creator;
}
[[nodiscard]] constexpr uint64_t ring_epoch(RingId id) { return id >> 16; }

class Membership {
 public:
  explicit Membership(protocol::Engine& engine)
      : engine_(engine), quarantine_(engine.cfg_.gray) {}

  /// Static membership (benchmarks): remember `ring` as the installed
  /// configuration without running the algorithm.
  void adopt_ring(const RingConfig& ring);

  /// Dynamic start: form a singleton ring via gather, merging with any
  /// processes whose Joins we hear.
  void start_discovery();

  /// Attach durable epoch storage (nullptr detaches). The stored high-water
  /// epoch becomes the floor for every ring id this process creates, so a
  /// cold-restarted daemon can never reuse a ring id from a previous
  /// incarnation. Attach before start_discovery()/start_with_ring().
  void set_epoch_store(EpochStore* store) {
    epoch_store_ = store;
    if (store != nullptr) note_epoch(store->load());
  }

  // --- events routed from the engine ---------------------------------------
  void on_join(const JoinMsg& join);
  void on_commit(const CommitTokenMsg& commit);
  /// A data or token message from an unknown ring was received.
  void on_foreign(ProcessId sender, RingId ring_id);
  void on_token_loss();
  void on_timer(protocol::TimerKind kind);
  /// The engine delivered a recovered-flagged message on the new ring.
  void on_recovered_delivery(const DataMsg& msg);

  /// Gray-failure eviction: a deliberate membership change that removes
  /// `victim` from the ring and places it in quarantine. Distinct from
  /// timeout ejection — the victim is alive, its Joins will be held off
  /// until the quarantine/probation lifecycle completes (see
  /// QuarantineManager). Traced as kQuarantine, not a token-loss gather.
  void quarantine_evict(ProcessId victim);

  // --- introspection ---------------------------------------------------------
  [[nodiscard]] const std::set<ProcessId>& candidates() const {
    return candidates_;
  }
  [[nodiscard]] const std::set<ProcessId>& fail_set() const {
    return fail_set_;
  }
  [[nodiscard]] uint64_t gathers_started() const { return gathers_started_; }
  [[nodiscard]] const QuarantineManager& quarantine() const {
    return quarantine_;
  }
  [[nodiscard]] QuarantineManager& quarantine() { return quarantine_; }

 private:
  using State = protocol::Engine::State;

  void enter_gather(bool keep_candidates = false);
  /// Raise max_epoch_seen_ to at least `epoch` and persist the new
  /// high-water mark if an epoch store is attached.
  void note_epoch(uint64_t epoch);
  void send_join();
  void check_consensus();
  /// True when `pid`'s latest Join matches my candidate and fail sets.
  [[nodiscard]] bool join_matches(ProcessId pid) const;
  void start_commit();
  void fill_my_entry(CommitTokenMsg& commit);
  void pass_commit(CommitTokenMsg commit);
  void enter_recover(const CommitTokenMsg& commit);
  void finalize_recovery();
  /// The receive buffer holding my old ring's messages (live engine buffer
  /// until the recovery snapshot is taken, the snapshot afterwards).
  [[nodiscard]] protocol::RecvBuffer& old_source();

  protocol::Engine& engine_;

  RingConfig old_ring_;        ///< last installed regular configuration
  protocol::RecvBuffer old_buffer_;  ///< snapshot taken at first recovery
  bool have_snapshot_ = false;
  SeqNum old_safe_line_ = 0;

  std::set<ProcessId> candidates_;
  std::set<ProcessId> fail_set_;
  std::map<ProcessId, JoinMsg> joins_;
  uint64_t max_epoch_seen_ = 0;
  EpochStore* epoch_store_ = nullptr;

  CommitTokenMsg commit_;      ///< in-progress commit token view
  uint64_t last_commit_id_ = 0;
  std::vector<CommitEntry> commit_table_;

  std::set<ProcessId> eor_received_;
  std::set<RingId> stale_rings_;
  QuarantineManager quarantine_;

  uint64_t gathers_started_ = 0;
};

}  // namespace accelring::membership
